// Ring all-reduce in five minutes.
//
// Builds a 4-host collective group over the simulated RDMA fabric and runs
// one gradient-style all-reduce end to end: each rank fills its buffer with
// rank-distinct values, the ring reduce-scatter + all-gather runs entirely
// over preallocated, address-exchanged ring buffers with one-sided zero-copy
// writes (§3.2's static placement), and every rank ends up holding the exact
// element-wise sum. Also shows a broadcast from rank 0.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/ring_allreduce
#include <cstdio>

#include "src/collective/collective.h"
#include "src/net/fabric.h"
#include "src/rdma/verbs.h"
#include "src/sim/simulator.h"

using namespace rdmadl;  // NOLINT: example brevity.

int main() {
  // 1. A simulated 4-host cluster, one RDMA NIC per host.
  sim::Simulator simulator;
  net::CostModel cost;
  net::Fabric fabric(&simulator, cost, /*num_hosts=*/4);
  rdma::RdmaFabric rdma_fabric(&fabric);
  device::DeviceDirectory directory(&rdma_fabric);

  // 2. A collective group: one rank per host, ring algorithm over zero-copy
  //    RDMA. Creation allocates each rank's data buffer and receive ring
  //    slots; remote addresses are exchanged lazily over MiniRPC on first use.
  const uint64_t kElements = 1 << 20;  // 4 MB of float32 "gradients".
  collective::CollectiveOptions options;
  options.algorithm = collective::Algorithm::kRing;
  options.transport = collective::Transport::kRdmaZeroCopy;
  auto group_or = collective::CollectiveGroup::Create(&directory, {0, 1, 2, 3},
                                                      kElements, options);
  CHECK_OK(group_or.status());
  auto group = std::move(group_or).value();

  // 3. Rank r's gradient is all r+1's: the sum of 1+2+3+4 is 10 everywhere.
  for (int r = 0; r < group->size(); ++r) {
    float* data = group->data(r);
    for (uint64_t i = 0; i < kElements; ++i) data[i] = static_cast<float>(r + 1);
  }

  // 4. Run the all-reduce. Everything is asynchronous inside the simulator;
  //    Run() drains virtual time until the done callback fires.
  Status status = Internal("all-reduce never completed");
  group->AllReduce(kElements, [&](const Status& s) { status = s; });
  CHECK_OK(simulator.Run());
  CHECK_OK(status);

  for (int r = 0; r < group->size(); ++r) {
    const float* data = group->data(r);
    for (uint64_t i = 0; i < kElements; ++i) CHECK(data[i] == 10.0f);
  }
  std::printf("all-reduce: every rank holds the exact sum (10.0 x %llu)\n",
              static_cast<unsigned long long>(kElements));
  std::printf("  virtual time: %.3f ms, bytes on the wire: %.1f MB, ring steps: %llu\n",
              simulator.Now() / 1e6,
              group->stats().bytes_sent / (1024.0 * 1024.0),
              static_cast<unsigned long long>(group->stats().ring_steps));

  // 5. Broadcast rank 0's (reduced) buffer — a no-op here since all ranks
  //    already agree, but it exercises the pipelined chain broadcast.
  group->data(0)[0] = 42.0f;
  status = Internal("broadcast never completed");
  group->Broadcast(/*root=*/0, kElements, [&](const Status& s) { status = s; });
  CHECK_OK(simulator.Run());
  CHECK_OK(status);
  for (int r = 0; r < group->size(); ++r) CHECK(group->data(r)[0] == 42.0f);
  std::printf("broadcast: rank 0's update reached all %d ranks\n", group->size());
  return 0;
}
