// Quickstart: the RDMA device library in five minutes.
//
// Demonstrates the paper's Table 1 interface directly, with no deep learning
// runtime on top: create two RDMA devices on a simulated 2-server cluster,
// allocate RDMA-accessible memory, distribute the receive buffer's address
// over the library's vanilla RPC, and move a payload with a one-sided
// zero-copy Memcpy — then verify the bytes arrived intact.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <cstring>
#include <numeric>

#include "src/device/rdma_device.h"
#include "src/net/fabric.h"
#include "src/rdma/verbs.h"
#include "src/sim/simulator.h"
#include "src/util/strings.h"

using namespace rdmadl;  // NOLINT: example brevity.

int main() {
  // 1. A simulated 2-server cluster: event kernel, network fabric, one RDMA
  //    NIC per host (100 Gbps, ~2 us RTT by default; see net::CostModel).
  sim::Simulator simulator;
  net::CostModel cost;
  net::Fabric fabric(&simulator, cost, /*num_hosts=*/2);
  rdma::RdmaFabric rdma_fabric(&fabric);
  device::DeviceDirectory directory(&rdma_fabric);

  // 2. One RDMA device per server process (Table 1: CreateRdmaDevice). The
  //    paper's deployment uses 4 completion queues and 4 QPs per peer.
  auto sender = device::RdmaDevice::Create(&directory, /*num_cqs=*/4,
                                           /*num_qps_per_peer=*/4, Endpoint{0, 7000});
  auto receiver = device::RdmaDevice::Create(&directory, 4, 4, Endpoint{1, 7000});
  CHECK_OK(sender.status());
  CHECK_OK(receiver.status());

  // 3. RDMA-accessible memory on both ends (Table 1: AllocateMemRegion).
  constexpr uint64_t kTensorBytes = 1 << 20;  // A 1 MB "tensor".
  auto src_region = (*sender)->AllocateMemRegion(kTensorBytes);
  auto dst_region = (*receiver)->AllocateMemRegion(kTensorBytes);
  CHECK_OK(src_region.status());
  CHECK_OK(dst_region.status());
  std::iota(src_region->data(), src_region->data() + kTensorBytes, 0);
  std::memset(dst_region->data(), 0, kTensorBytes);

  // 4. The receiver publishes its buffer address through the library's
  //    vanilla send/recv RPC — the §3.2 address-distribution step, off the
  //    critical path.
  (*receiver)->RegisterRpcHandler("get_buffer", [&](const std::vector<uint8_t>&) {
    std::vector<uint8_t> encoded;
    dst_region->Remote().EncodeTo(&encoded);
    return encoded;
  });

  // 5. Fetch the address, then fire a one-sided zero-copy write over a
  //    channel (Table 1: GetChannel + RdmaChannel::Memcpy).
  bool transferred = false;
  int64_t transfer_started_ns = 0;
  (*sender)->Call(
      Endpoint{1, 7000}, "get_buffer", {},
      [&](const Status& status, const std::vector<uint8_t>& response) {
        CHECK_OK(status);
        auto remote = device::RemoteRegion::Decode(response.data(), response.size());
        CHECK_OK(remote.status());
        auto channel = (*sender)->GetChannel(Endpoint{1, 7000}, /*qp_idx=*/0);
        CHECK_OK(channel.status());
        transfer_started_ns = simulator.Now();
        (*channel)->Memcpy(reinterpret_cast<uint64_t>(src_region->data()), *src_region,
                           remote->addr, *remote, kTensorBytes,
                           device::Direction::kLocalToRemote, [&](const Status& s) {
                             CHECK_OK(s);
                             transferred = true;
                           });
      });

  // 6. Run the virtual clock until the transfer completes.
  CHECK_OK(simulator.Run());
  CHECK(transferred);
  CHECK(std::memcmp(src_region->data(), dst_region->data(), kTensorBytes) == 0);

  const int64_t elapsed = simulator.Now() - transfer_started_ns;
  std::printf("quickstart: moved %s by one-sided RDMA write in %s of virtual time\n",
              HumanBytes(kTensorBytes).c_str(), HumanDuration(elapsed).c_str());
  std::printf("            effective bandwidth: %.2f GB/s (NIC line rate: %.2f GB/s)\n",
              kTensorBytes / (elapsed / 1e9) / 1e9, cost.rdma_bandwidth_bytes_per_sec / 1e9);
  std::printf("            bytes verified identical on the receiver.\n");
  return 0;
}
