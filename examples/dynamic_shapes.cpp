// Transfer with dynamic allocation (§3.3): variable-length mini-batches.
//
// An RNN-style workload where the batch's sequence length changes every
// iteration, so the tensor crossing the wire has a different shape each step.
// Static placement is impossible; the mechanism falls back to the dynamic
// protocol: a fixed-size metadata block (the rank never changes) is written
// by the sender, the receiver polls its flag, allocates storage of the right
// shape from its RDMA arena, and pulls the payload with a one-sided read.
//
// Run: ./build/examples/dynamic_shapes
#include <cstdio>

#include "src/comm/zerocopy_mechanism.h"
#include "src/runtime/session.h"

using namespace rdmadl;  // NOLINT: example brevity.
using graph::Graph;
using graph::Node;
using tensor::DType;
using tensor::Tensor;
using tensor::TensorShape;

int main() {
  runtime::ClusterOptions options;
  options.num_machines = 2;
  options.mode = ops::ComputeMode::kReal;
  options.process_defaults.rdma_arena_bytes = 8ull << 20;
  runtime::Cluster cluster(options);
  CHECK_OK(cluster.AddProcess("ps:0", 0).status());
  CHECK_OK(cluster.AddProcess("worker:0", 1).status());
  ops::RegisterStandardOps();

  // The worker embeds a variable-length token batch and ships the activations
  // to a consumer on the other server.
  constexpr int64_t kFeatures = 64;
  Graph graph;
  Node* tokens = *graph.AddNode("tokens", "Placeholder", std::vector<Node*>{});
  tokens->SetAttr("shape", TensorShape{tensor::kUnknownDim, kFeatures});  // Length unknown.
  tokens->set_device("worker:0");
  Node* weights = *graph.AddNode("weights", "Const", std::vector<Node*>{});
  weights->SetAttr("shape", TensorShape{kFeatures, kFeatures});
  weights->SetAttr("fill_value", 0.5);
  weights->set_device("worker:0");
  Node* hidden = *graph.AddNode("hidden", "MatMul", {tokens, weights});
  hidden->set_device("worker:0");
  Node* pooled = *graph.AddNode("pooled", "ReduceSum", {hidden});
  pooled->set_device("ps:0");

  comm::ZeroCopyRdmaMechanism mechanism(&cluster, comm::ZeroCopyOptions{});
  runtime::DistributedSession session(&cluster, &mechanism, &graph,
                                      runtime::SessionOptions{});
  CHECK_OK(session.Setup());
  CHECK_EQ(session.transfer_edges().size(), 1u);
  std::printf("edge %s: shape %s at setup time -> dynamic protocol (§3.3)\n",
              session.transfer_edges()[0].key.c_str(),
              session.transfer_edges()[0].shape.ToString().c_str());

  // Mini-batches with different sequence lengths, like an NLP workload.
  const int lengths[] = {5, 23, 11, 64, 3, 40};
  for (int length : lengths) {
    Tensor batch(tensor::CpuAllocator::Get(), DType::kFloat32,
                 TensorShape{length, kFeatures});
    for (int64_t i = 0; i < batch.num_elements(); ++i) batch.at<float>(i) = 1.0f;
    std::unordered_map<std::string, Tensor> feeds{{"tokens", batch}};
    CHECK_OK(session.RunStep(feeds));
    const Tensor* out = session.executor_for("ps:0")->OutputOf("pooled");
    // sum over [length x 64] of (64 * 0.5) = length * 64 * 32.
    const float expected = static_cast<float>(length) * kFeatures * (kFeatures * 0.5f);
    CHECK_EQ(out->at<float>(0), expected);
    std::printf("  length %2d -> transferred [%d,%ld] (%6ld bytes), checksum OK\n", length,
                length, kFeatures, length * kFeatures * 4l);
  }

  std::printf("\n%lld dynamic transfers, %lld static — the metadata block is %s\n",
              static_cast<long long>(mechanism.stats().dynamic_transfers),
              static_cast<long long>(mechanism.stats().static_transfers),
              "fixed-size because the tensor rank never changes (§3.3).");
  return 0;
}
