// The RDMA-aware graph analyzer (§3.4) in action.
//
// Builds a graph where the tensor reaching a cross-server _Send was NOT
// allocated by the send's direct predecessor (an Identity chain passes the
// buffer through), then watches what the analyzer does step by step:
//
//   step 0: allocation-site tracing — the transferred buffer is staged
//           (one extra copy) while the tracer maps addresses to nodes;
//   step 1+: the true allocating node is in set S, its output lands in the
//           pre-registered RDMA arena, and the copy disappears.
//
// Run: ./build/examples/graph_analysis
#include <cstdio>
#include <memory>

#include "src/analyzer/shape_inference.h"
#include "src/comm/zerocopy_mechanism.h"
#include "src/runtime/session.h"

using namespace rdmadl;  // NOLINT: example brevity.
using graph::Graph;
using graph::Node;
using tensor::Tensor;
using tensor::TensorShape;

int main() {
  runtime::ClusterOptions options;
  options.num_machines = 2;
  options.mode = ops::ComputeMode::kReal;
  options.process_defaults.rdma_arena_bytes = 8ull << 20;
  runtime::Cluster cluster(options);
  CHECK_OK(cluster.AddProcess("ps:0", 0).status());
  CHECK_OK(cluster.AddProcess("worker:0", 1).status());
  ops::RegisterStandardOps();

  // worker: producer -> Identity -> Identity -> (cross-server edge) -> ps.
  // The Identities alias the producer's buffer; only dynamic tracing can tell
  // that "producer" is the node whose allocation must become RDMA-accessible.
  Graph graph;
  Node* producer = *graph.AddNode("producer", "Const", std::vector<Node*>{});
  producer->SetAttr("shape", TensorShape{256, 256});
  producer->SetAttr("fill_value", 1.0);
  producer->set_device("worker:0");
  Node* alias1 = *graph.AddNode("alias1", "Identity", {producer});
  alias1->set_device("worker:0");
  Node* alias2 = *graph.AddNode("alias2", "Identity", {alias1});
  alias2->set_device("worker:0");
  Node* consumer = *graph.AddNode("consumer", "ReduceSum", {alias2});
  consumer->set_device("ps:0");

  // Static shape inference (the §3.4 "preallocate data buffers" pass).
  CHECK_OK(analyzer::RunShapeInference(&graph));
  analyzer::ShapeInferenceStats stats = analyzer::ComputeShapeStats(graph);
  std::printf("shape inference: %d/%d nodes statically shaped -> static placement (§3.2)\n",
              stats.static_nodes, stats.total_nodes);

  comm::ZeroCopyRdmaMechanism mechanism(&cluster, comm::ZeroCopyOptions{});
  runtime::DistributedSession session(&cluster, &mechanism, &graph,
                                      runtime::SessionOptions{});
  CHECK_OK(session.Setup());
  std::printf("setup: receive tensor preallocated in ps:0's RDMA arena, address\n");
  std::printf("       distributed to worker:0 over the device library's vanilla RPC\n\n");

  int64_t prev_staged = 0, prev_zero = 0;
  for (int step = 0; step < 4; ++step) {
    CHECK_OK(session.RunStep());
    const auto& s = mechanism.stats();
    std::printf("step %d: %s send  (staged so far: %lld, zero-copy so far: %lld)\n", step,
                s.staged_sends > prev_staged ? "STAGED+COPY" : "ZERO-COPY  ",
                static_cast<long long>(s.staged_sends),
                static_cast<long long>(s.zero_copy_sends));
    prev_staged = s.staged_sends;
    prev_zero = s.zero_copy_sends;
    (void)prev_zero;
    // Correctness every step: sum of 256x256 ones.
    const Tensor* out = session.executor_for("ps:0")->OutputOf("consumer");
    CHECK_EQ(out->at<float>(0), 256.0f * 256.0f);
  }

  std::printf("\nstep 0 paid the copy while the tracer learned that 'producer' allocates\n");
  std::printf("the transferred buffer; every later step is zero-copy. Total staged bytes:\n");
  std::printf("%lld (exactly one 256 KB tensor).\n",
              static_cast<long long>(mechanism.stats().staged_bytes));
  return 0;
}
