// Distributed training end-to-end: a real two-layer MLP classifier trained
// data-parallel across two simulated machines (Figure 3's architecture:
// parameters on a PS process, compute on a worker process), with full numeric
// computation — every weight and gradient really crosses the simulated RDMA
// fabric through the zero-copy mechanism, and the loss really goes down.
//
// Also trains the identical model with gRPC-over-TCP and prints the virtual
// wall-clock both need, showing the communication gap on an intact workload.
//
// Run: ./build/examples/distributed_training
#include <cstdio>
#include <memory>

#include "src/comm/rpc_mechanism.h"
#include "src/comm/zerocopy_mechanism.h"
#include "src/runtime/session.h"
#include "src/sim/rng.h"

using namespace rdmadl;  // NOLINT: example brevity.
using graph::Graph;
using graph::Node;
using tensor::DType;
using tensor::Tensor;
using tensor::TensorShape;

namespace {

constexpr int kBatch = 32;
constexpr int kInputDim = 16;
constexpr int kHidden = 32;
constexpr int kClasses = 4;
constexpr int kSteps = 60;

// Builds: worker computes  h = relu(x W1 + b1), logits = h W2 + b2,
// loss = softmax xent; gradients flow back to the PS where SGD applies them.
// The backward pass is hand-constructed from the gradient kernels.
struct Mlp {
  std::unique_ptr<Graph> graph = std::make_unique<Graph>();
  Node* loss = nullptr;
};

Node* Var(Graph* g, const std::string& name, TensorShape shape, double scale) {
  Node* v = *g->AddNode(name, "Variable", std::vector<Node*>{});
  v->SetAttr("shape", std::move(shape));
  v->SetAttr("init", std::string("uniform"));
  v->SetAttr("init_scale", scale);
  v->set_device("ps:0");
  return v;
}

Node* Op(Graph* g, const std::string& name, const std::string& op, std::vector<Node*> in) {
  Node* n = *g->AddNode(name, op, std::move(in));
  n->set_device("worker:0");
  return n;
}

Mlp BuildMlp() {
  ops::RegisterStandardOps();
  Mlp m;
  Graph* g = m.graph.get();
  Node* w1 = Var(g, "w1", TensorShape{kInputDim, kHidden}, 0.3);
  Node* b1 = Var(g, "b1", TensorShape{kHidden}, 0.0);
  Node* w2 = Var(g, "w2", TensorShape{kHidden, kClasses}, 0.3);
  Node* b2 = Var(g, "b2", TensorShape{kClasses}, 0.0);

  Node* x = Op(g, "x", "Placeholder", {});
  x->SetAttr("shape", TensorShape{kBatch, kInputDim});
  Node* y = Op(g, "y", "Placeholder", {});
  y->SetAttr("shape", TensorShape{kBatch, kClasses});

  // Forward.
  Node* z1 = Op(g, "z1", "MatMul", {x, w1});
  Node* z1b = Op(g, "z1b", "BiasAdd", {z1, b1});
  Node* h = Op(g, "h", "Relu", {z1b});
  Node* z2 = Op(g, "z2", "MatMul", {h, w2});
  Node* logits = Op(g, "logits", "BiasAdd", {z2, b2});
  m.loss = Op(g, "loss", "SoftmaxXentLoss", {logits, y});

  // Backward (hand-derived).
  Node* dlogits = Op(g, "dlogits", "SoftmaxXentGrad", {logits, y});
  Node* db2 = Op(g, "db2", "BiasAddGrad", {dlogits});
  Node* dw2 = Op(g, "dw2", "MatMul", {h, dlogits});
  dw2->SetAttr("transpose_a", true);
  Node* dh = Op(g, "dh", "MatMul", {dlogits, w2});
  dh->SetAttr("transpose_b", true);
  Node* dz1 = Op(g, "dz1", "ReluGrad", {h, dh});
  Node* db1 = Op(g, "db1", "BiasAddGrad", {dz1});
  Node* dw1 = Op(g, "dw1", "MatMul", {x, dz1});
  dw1->SetAttr("transpose_a", true);

  // SGD on the PS.
  const std::pair<Node*, Node*> updates[] = {{w1, dw1}, {b1, db1}, {w2, dw2}, {b2, db2}};
  for (auto [var, grad] : updates) {
    Node* apply = *g->AddNode("apply_" + var->name(), "ApplySgd",
                              std::vector<Node*>{var, grad});
    apply->SetAttr("learning_rate", 0.5);
    apply->set_device("ps:0");
  }
  return m;
}

// A learnable synthetic task: class = argmax over kClasses fixed random
// projections of x.
void FillBatch(sim::Rng* rng, Tensor* x, Tensor* y) {
  static float projections[kClasses][kInputDim];
  static bool init = false;
  if (!init) {
    sim::Rng proj_rng(7);
    for (auto& row : projections) {
      for (float& v : row) v = static_cast<float>(proj_rng.Normal());
    }
    init = true;
  }
  for (int b = 0; b < kBatch; ++b) {
    float best = -1e30f;
    int label = 0;
    for (int i = 0; i < kInputDim; ++i) {
      x->at<float>(b * kInputDim + i) = static_cast<float>(rng->Normal());
    }
    for (int c = 0; c < kClasses; ++c) {
      float score = 0;
      for (int i = 0; i < kInputDim; ++i) {
        score += projections[c][i] * x->at<float>(b * kInputDim + i);
      }
      if (score > best) {
        best = score;
        label = c;
      }
    }
    for (int c = 0; c < kClasses; ++c) y->at<float>(b * kClasses + c) = (c == label) ? 1 : 0;
  }
}

struct RunResult {
  double first_loss, last_loss;
  double virtual_ms;
};

RunResult Train(runtime::TransferMechanism* mechanism, runtime::Cluster* cluster) {
  Mlp mlp = BuildMlp();
  runtime::DistributedSession session(cluster, mechanism, mlp.graph.get(),
                                      runtime::SessionOptions{});
  CHECK_OK(session.Setup());

  Tensor x(tensor::CpuAllocator::Get(), DType::kFloat32, TensorShape{kBatch, kInputDim});
  Tensor y(tensor::CpuAllocator::Get(), DType::kFloat32, TensorShape{kBatch, kClasses});
  std::unordered_map<std::string, Tensor> feeds{{"x", x}, {"y", y}};
  sim::Rng rng(1234);

  RunResult result{0, 0, 0};
  const int64_t start = cluster->simulator()->Now();
  for (int step = 0; step < kSteps; ++step) {
    FillBatch(&rng, &x, &y);
    CHECK_OK(session.RunStep(feeds));
    const Tensor* loss = session.executor_for("worker:0")->OutputOf("loss");
    const double value = loss->at<float>(0);
    if (step == 0) result.first_loss = value;
    result.last_loss = value;
    if (step % 10 == 0) {
      std::printf("  step %2d  loss %.4f\n", step, value);
    }
  }
  result.virtual_ms = (cluster->simulator()->Now() - start) / 1e6;
  return result;
}

std::unique_ptr<runtime::Cluster> MakeCluster() {
  runtime::ClusterOptions options;
  options.num_machines = 2;
  options.mode = ops::ComputeMode::kReal;  // Full numerics.
  options.process_defaults.rdma_arena_bytes = 8ull << 20;
  options.process_defaults.seed = 42;
  auto cluster = std::make_unique<runtime::Cluster>(options);
  CHECK_OK(cluster->AddProcess("ps:0", 0).status());
  CHECK_OK(cluster->AddProcess("worker:0", 1).status());
  return cluster;
}

}  // namespace

int main() {
  std::printf("Training a real MLP classifier across 2 simulated machines\n");
  std::printf("(params on ps:0, compute on worker:0; every tensor crosses the wire)\n\n");

  std::printf("[RDMA.zerocp] — the paper's zero-copy mechanism\n");
  auto cluster_rdma = MakeCluster();
  comm::ZeroCopyRdmaMechanism zerocp(cluster_rdma.get(), comm::ZeroCopyOptions{});
  RunResult rdma = Train(&zerocp, cluster_rdma.get());

  std::printf("\n[gRPC.TCP] — TensorFlow's default transport\n");
  auto cluster_tcp = MakeCluster();
  comm::RpcMechanism rpc(cluster_tcp.get(), net::Plane::kTcp);
  RunResult tcp = Train(&rpc, cluster_tcp.get());

  std::printf("\nresults after %d steps (identical seeds -> identical math):\n", kSteps);
  std::printf("  loss: %.4f -> %.4f (both mechanisms, bit-identical)\n", rdma.first_loss,
              rdma.last_loss);
  CHECK_EQ(rdma.last_loss, tcp.last_loss);
  std::printf("  virtual training time: RDMA.zerocp %.2f ms vs gRPC.TCP %.2f ms (%.1fx)\n",
              rdma.virtual_ms, tcp.virtual_ms, tcp.virtual_ms / rdma.virtual_ms);
  std::printf("  zero-copy sends: %lld, staged: %lld (step 0 traces allocation sites)\n",
              static_cast<long long>(zerocp.stats().zero_copy_sends),
              static_cast<long long>(zerocp.stats().staged_sends));
  CHECK(rdma.last_loss < rdma.first_loss * 0.5) << "training did not converge";
  return 0;
}
