// Negative-test matrix for RdmaCheck (ISSUE 4): each protocol violation
// class is committed deliberately and must surface as exactly the right
// diagnostic kind — plus clean-run tests asserting the checker is silent on
// correct protocol use and on full session teardown (the teardown tests are
// the regressions for the MR/arena leaks RdmaCheck originally surfaced in
// ZeroCopyRdmaMechanism, RdmaDevice and HostRuntime).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "src/check/rdma_check.h"
#include "src/comm/zerocopy_mechanism.h"
#include "src/ops/kernel.h"
#include "src/rdma/verbs.h"
#include "src/runtime/session.h"
#include "src/sim/fault.h"
#include "src/tensor/arena_allocator.h"

namespace rdmadl {
namespace {

using check::DiagKind;
using check::RdmaCheck;
using graph::Graph;
using graph::Node;
using rdma::CompletionQueue;
using rdma::MemoryRegion;
using rdma::NicDevice;
using rdma::Opcode;
using rdma::QueuePair;
using rdma::RdmaFabric;
using rdma::SendWorkRequest;
using rdma::WorkCompletion;
using runtime::Cluster;
using runtime::ClusterOptions;
using runtime::DistributedSession;
using runtime::SessionOptions;
using tensor::Tensor;
using tensor::TensorShape;

// ---------------------------------------------------------------------------
// Verbs-level fixture: the checker is installed before any MR or QP exists
// and outlives the whole fabric.
// ---------------------------------------------------------------------------

class RdmaCheckVerbsTest : public ::testing::Test {
 protected:
  RdmaCheckVerbsTest() : fabric_(&simulator_, cost_, 3), rdma_(&fabric_) {}

  std::pair<QueuePair*, QueuePair*> ConnectedPair(int a, int b) {
    NicDevice* na = rdma_.nic(a);
    NicDevice* nb = rdma_.nic(b);
    CompletionQueue* cqa = na->CreateCompletionQueue();
    CompletionQueue* cqb = nb->CreateCompletionQueue();
    QueuePair* qa = na->CreateQueuePair(cqa, cqa);
    QueuePair* qb = nb->CreateQueuePair(cqb, cqb);
    CHECK_OK(qa->Connect(qb));
    return {qa, qb};
  }

  SendWorkRequest WriteWr(uint64_t wr_id, const std::vector<uint8_t>& src, uint32_t lkey,
                          const std::vector<uint8_t>& dst, uint32_t rkey,
                          uint64_t length) {
    SendWorkRequest wr;
    wr.wr_id = wr_id;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = reinterpret_cast<uint64_t>(src.data());
    wr.lkey = lkey;
    wr.length = length;
    wr.remote_addr = reinterpret_cast<uint64_t>(const_cast<uint8_t*>(dst.data()));
    wr.rkey = rkey;
    return wr;
  }

  RdmaCheck checker_;
  sim::Simulator simulator_;
  net::CostModel cost_;
  net::Fabric fabric_;
  RdmaFabric rdma_;
};

TEST_F(RdmaCheckVerbsTest, CleanOneSidedWriteProducesNoDiagnostics) {
  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(256 * 1024);
  std::vector<uint8_t> dst(256 * 1024, 0);
  std::iota(src.begin(), src.end(), 0);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());
  ASSERT_TRUE(src_mr.ok() && dst_mr.ok());

  ASSERT_TRUE(qa->PostSend(WriteWr(1, src, src_mr->lkey, dst, dst_mr->rkey, src.size())).ok());
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_EQ(src, dst);

  ASSERT_TRUE(rdma_.nic(0)->DeregisterMemory(*src_mr).ok());
  ASSERT_TRUE(rdma_.nic(1)->DeregisterMemory(*dst_mr).ok());
  EXPECT_TRUE(checker_.Finalize().empty()) << checker_.Report();
}

TEST_F(RdmaCheckVerbsTest, UseAfterDeregisterMidFlightIsDetected) {
  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(1 << 20, 0xab);
  std::vector<uint8_t> dst(1 << 20, 0);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());
  ASSERT_TRUE(src_mr.ok() && dst_mr.ok());

  ASSERT_TRUE(qa->PostSend(WriteWr(2, src, src_mr->lkey, dst, dst_mr->rkey, src.size())).ok());
  // Run until the first segment has landed, then yank the target MR while the
  // rest of the write is still on the wire.
  ASSERT_TRUE(simulator_.RunUntilPredicate([&]() { return dst[0] == 0xab; }).ok());
  ASSERT_NE(dst[dst.size() - 1], 0xab) << "transfer finished before deregistration";
  ASSERT_TRUE(rdma_.nic(1)->DeregisterMemory(*dst_mr).ok());
  ASSERT_TRUE(simulator_.Run().ok());

  ASSERT_GE(checker_.count(DiagKind::kUseAfterDeregister), 1) << checker_.Report();
  const check::Diagnostic& d = checker_.diagnostics().front();
  EXPECT_EQ(d.kind, DiagKind::kUseAfterDeregister);
  EXPECT_EQ(d.src_host, 0);
  EXPECT_EQ(d.dst_host, 1);
  EXPECT_EQ(d.wr_id, 2u);
  EXPECT_GT(d.vtime_ns, 0);
}

TEST_F(RdmaCheckVerbsTest, StaleRkeyAfterRebuildIsDetected) {
  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(4096, 1);
  std::vector<uint8_t> dst(4096, 0);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto old_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());
  ASSERT_TRUE(src_mr.ok() && old_mr.ok());
  // Rebuild: the receiver re-registers its buffer; the old rkey dies.
  ASSERT_TRUE(rdma_.nic(1)->DeregisterMemory(*old_mr).ok());
  auto new_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());
  ASSERT_TRUE(new_mr.ok());

  // A sender that cached the pre-rebuild rkey commits the §3.2 rebuild bug.
  ASSERT_TRUE(qa->PostSend(WriteWr(3, src, src_mr->lkey, dst, old_mr->rkey, src.size())).ok());
  ASSERT_TRUE(simulator_.Run().ok());

  EXPECT_EQ(checker_.count(DiagKind::kStaleRkey), 1) << checker_.Report();
  // The NIC also refuses the write, as on real hardware.
  WorkCompletion wc;
  ASSERT_TRUE(qa->send_cq()->Poll(&wc));
  EXPECT_FALSE(wc.status.ok());
}

TEST_F(RdmaCheckVerbsTest, OutOfBoundsWriteIsDetected) {
  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(8192, 1);
  std::vector<uint8_t> dst(8192, 0);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  // Only the first half of dst is registered: a whole-buffer RemoteSlice
  // escapes the MR.
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size() / 2);
  ASSERT_TRUE(src_mr.ok() && dst_mr.ok());

  ASSERT_TRUE(qa->PostSend(WriteWr(4, src, src_mr->lkey, dst, dst_mr->rkey, src.size())).ok());
  ASSERT_TRUE(simulator_.Run().ok());

  EXPECT_EQ(checker_.count(DiagKind::kOutOfBounds), 1) << checker_.Report();
  EXPECT_EQ(checker_.count(DiagKind::kStaleRkey), 0);
}

TEST_F(RdmaCheckVerbsTest, OverlappingUnorderedWritesAreDetectedAsRace) {
  // Two QPs from host 0 into the same MR of host 1: the writes are posted
  // back-to-back, so they are in flight simultaneously with no completion
  // edge between them — a remote race on the overlapping range.
  auto [qa1, qb1] = ConnectedPair(0, 1);
  auto [qa2, qb2] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(512 * 1024, 7);
  std::vector<uint8_t> dst(512 * 1024, 0);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());
  ASSERT_TRUE(src_mr.ok() && dst_mr.ok());

  ASSERT_TRUE(
      qa1->PostSend(WriteWr(10, src, src_mr->lkey, dst, dst_mr->rkey, src.size())).ok());
  ASSERT_TRUE(
      qa2->PostSend(WriteWr(11, src, src_mr->lkey, dst, dst_mr->rkey, src.size())).ok());
  ASSERT_TRUE(simulator_.Run().ok());

  ASSERT_EQ(checker_.count(DiagKind::kRemoteRace), 1) << checker_.Report();
  const check::Diagnostic& d = checker_.diagnostics().front();
  EXPECT_EQ(d.dst_host, 1);
  EXPECT_EQ(d.wr_id, 11u);  // The later post is the racing access.
}

TEST_F(RdmaCheckVerbsTest, SameQpOverlappingWritesAreFifoOrderedNotARace) {
  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(512 * 1024, 7);
  std::vector<uint8_t> dst(512 * 1024, 0);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());
  ASSERT_TRUE(src_mr.ok() && dst_mr.ok());

  // Same QP, same target range: the engine serializes them (FIFO HB edge).
  ASSERT_TRUE(qa->PostSend(WriteWr(20, src, src_mr->lkey, dst, dst_mr->rkey, src.size())).ok());
  ASSERT_TRUE(qa->PostSend(WriteWr(21, src, src_mr->lkey, dst, dst_mr->rkey, src.size())).ok());
  ASSERT_TRUE(simulator_.Run().ok());

  EXPECT_EQ(checker_.count(DiagKind::kRemoteRace), 0) << checker_.Report();
}

TEST_F(RdmaCheckVerbsTest, DisjointConcurrentWritesAreNotARace) {
  auto [qa1, qb1] = ConnectedPair(0, 1);
  auto [qa2, qb2] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(512 * 1024, 7);
  std::vector<uint8_t> dst(512 * 1024, 0);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());
  ASSERT_TRUE(src_mr.ok() && dst_mr.ok());

  // Two QPs, disjoint halves of the MR — the ring-allreduce access pattern.
  SendWorkRequest lo = WriteWr(30, src, src_mr->lkey, dst, dst_mr->rkey, src.size() / 2);
  SendWorkRequest hi = lo;
  hi.wr_id = 31;
  hi.remote_addr += src.size() / 2;
  ASSERT_TRUE(qa1->PostSend(lo).ok());
  ASSERT_TRUE(qa2->PostSend(hi).ok());
  ASSERT_TRUE(simulator_.Run().ok());

  EXPECT_EQ(checker_.count(DiagKind::kRemoteRace), 0) << checker_.Report();
}

TEST_F(RdmaCheckVerbsTest, TransportRetryDoesNotFalseAlarm) {
  // A dropped segment truncates the transfer and the RC retry rewrites from
  // offset 0: the checker must treat the retry as the same WR (ascending
  // prefix resets, no fresh race window), not as a violation.
  sim::FaultInjector injector(/*seed=*/5);
  sim::LinkFaultSpec spec;
  spec.drop_first_n = 2;
  injector.SetLinkFault(0, 1, spec);
  fabric_.SetFaultInjector(&injector);

  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(256 * 1024);
  std::vector<uint8_t> dst(256 * 1024, 0);
  std::iota(src.begin(), src.end(), 0);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());
  ASSERT_TRUE(src_mr.ok() && dst_mr.ok());

  ASSERT_TRUE(qa->PostSend(WriteWr(40, src, src_mr->lkey, dst, dst_mr->rkey, src.size())).ok());
  ASSERT_TRUE(simulator_.Run().ok());

  EXPECT_EQ(src, dst);
  EXPECT_EQ(injector.stats().forced_drops, 2u);
  EXPECT_EQ(checker_.diagnostics().size(), 0u) << checker_.Report();
}

TEST_F(RdmaCheckVerbsTest, LeakedMrIsReportedAtFinalize) {
  std::vector<uint8_t> buf(4096);
  auto mr = rdma_.nic(2)->RegisterMemory(buf.data(), buf.size());
  ASSERT_TRUE(mr.ok());
  // No deregistration before Finalize: a leak.
  const auto& diags = checker_.Finalize();
  ASSERT_EQ(diags.size(), 1u) << checker_.Report();
  EXPECT_EQ(diags[0].kind, DiagKind::kLeakedMemoryRegion);
  EXPECT_EQ(diags[0].dst_host, 2);
}

TEST_F(RdmaCheckVerbsTest, DestroyingQpWithInFlightWriteIsDetected) {
  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(1 << 20, 0x5a);
  std::vector<uint8_t> dst(1 << 20, 0);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());
  ASSERT_TRUE(src_mr.ok() && dst_mr.ok());
  ASSERT_TRUE(qa->PostSend(WriteWr(1, src, src_mr->lkey, dst, dst_mr->rkey, src.size())).ok());
  // Let the transfer start, then rip the QP out mid-flight — the QP-pool
  // bug class this diagnostic exists for (evicting a non-idle lane).
  ASSERT_TRUE(simulator_.RunUntil(simulator_.Now() + 1000).ok());
  ASSERT_TRUE(rdma_.nic(0)->DestroyQueuePair(qa).ok());
  EXPECT_GE(checker_.count(DiagKind::kQpDestroyedInFlight), 1) << checker_.Report();
  // The simulator is NOT run further: queued events may name the dead QP.
}

TEST_F(RdmaCheckVerbsTest, DestroyingIdleQpIsClean) {
  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(64 * 1024, 0x21);
  std::vector<uint8_t> dst(64 * 1024, 0);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());
  ASSERT_TRUE(src_mr.ok() && dst_mr.ok());
  ASSERT_TRUE(qa->PostSend(WriteWr(1, src, src_mr->lkey, dst, dst_mr->rkey, src.size())).ok());
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_EQ(src, dst);
  ASSERT_TRUE(rdma_.nic(0)->DestroyQueuePair(qa).ok());
  ASSERT_TRUE(rdma_.nic(1)->DestroyQueuePair(qb).ok());
  EXPECT_EQ(checker_.count(DiagKind::kQpDestroyedInFlight), 0) << checker_.Report();
  ASSERT_TRUE(rdma_.nic(0)->DeregisterMemory(*src_mr).ok());
  ASSERT_TRUE(rdma_.nic(1)->DeregisterMemory(*dst_mr).ok());
  EXPECT_TRUE(checker_.Finalize().empty()) << checker_.Report();
}

// ---------------------------------------------------------------------------
// Hook-level checks for the invariants the healthy stack cannot be made to
// violate from the outside (ascending delivery, flag-read ordering): feed the
// checker the violating event sequence directly.
// ---------------------------------------------------------------------------

TEST(RdmaCheckHookTest, NonAscendingSegmentIsDetected) {
  RdmaCheck checker;
  const uint64_t id = checker.TransferStarted(0, 1, 4096, /*now_ns=*/10);
  checker.TransferSegment(id, 0, 1024, 20);
  checker.TransferSegment(id, 2048, 1024, 30);  // Skips [1024, 2048): a gap.
  ASSERT_EQ(checker.count(DiagKind::kNonAscendingSegment), 1) << checker.Report();
  checker.TransferFinished(id);
}

TEST(RdmaCheckHookTest, NonAscendingWriteSegmentIsDetected) {
  RdmaCheck checker;
  checker.WritePosted(0, 1, /*qp_num=*/5, /*wr_id=*/9, /*remote_addr=*/0x1000,
                      /*length=*/4096, /*rkey=*/77, /*now_ns=*/10);
  checker.WriteSegment(0, 5, 9, /*offset=*/1024, 1024, 20);  // First segment not at 0.
  EXPECT_EQ(checker.count(DiagKind::kNonAscendingSegment), 1) << checker.Report();
  checker.WriteFinished(0, 5, 9, 30);
}

TEST(RdmaCheckHookTest, PrematureFlagReadIsDetected) {
  RdmaCheck checker;
  uint8_t flag = 0;
  checker.FlagLocation(1, &flag, "w:grad->ps:0");
  // The receiver trusts the flag before any write covering it landed — the
  // §3.2 bug the tail-flag protocol exists to prevent.
  checker.FlagTrusted(1, &flag, /*now_ns=*/50);
  const auto& diags = checker.diagnostics();
  ASSERT_EQ(diags.size(), 1u) << checker.Report();
  EXPECT_EQ(diags[0].kind, DiagKind::kPrematureFlagRead);
  EXPECT_EQ(diags[0].dst_host, 1);
  EXPECT_NE(diags[0].message.find("w:grad->ps:0"), std::string::npos);
}

TEST(RdmaCheckHookTest, FlagReadAfterCoveringSegmentIsClean) {
  RdmaCheck checker;
  uint8_t payload[64] = {0};
  uint8_t* flag = &payload[63];  // Paper layout: flag at the buffer tail.
  checker.FlagLocation(1, flag, "w:grad->ps:0");
  checker.WritePosted(0, 1, 5, 9, reinterpret_cast<uint64_t>(payload), 64, 77, 10);
  checker.WriteSegment(0, 5, 9, 0, 64, 20);  // Covers the flag byte.
  checker.WriteFinished(0, 5, 9, 30);
  checker.FlagTrusted(1, flag, 40);
  checker.FlagCleared(1, flag);
  // After the clear the flag must land again before the next trust.
  checker.FlagTrusted(1, flag, 50);
  EXPECT_EQ(checker.count(DiagKind::kPrematureFlagRead), 1) << checker.Report();
}

// ---------------------------------------------------------------------------
// ISSUE 7 paths: the multi-level collective schedules add fabric-sourced
// fanout transfers (in-network delivery, src = -1), per-op declared flag
// sets, and deep slot layouts. The checker must keep catching violations on
// each of them — these feed the violating sequences directly, mirroring how
// the hierarchical/in-network code drives the hooks.
// ---------------------------------------------------------------------------

TEST(RdmaCheckHookTest, InNetworkFanoutDeliveryGapIsDetected) {
  RdmaCheck checker;
  // Switch-engine delivery: the reduced window leaves a ToR engine, not a
  // peer host (src_host = -1, as SwitchReduceStage posts it).
  const uint64_t id = checker.TransferStarted(-1, 3, 2048, /*now_ns=*/10);
  checker.TransferSegment(id, 1024, 1024, 20);  // First segment not at 0.
  ASSERT_EQ(checker.count(DiagKind::kNonAscendingSegment), 1) << checker.Report();
  checker.TransferFinished(id);
}

TEST(RdmaCheckHookTest, PrematureTrustOfDeclaredHierarchicalFlagIsDetected) {
  RdmaCheck checker;
  uint8_t flag = 0;
  // The hierarchical schedule declares every tree/ring/broadcast flag it
  // will poll up front; trusting one before its write landed is the same
  // §3.2 bug on the new layout.
  checker.FlagLocation(2, &flag, "allreduce h-tree r5 f2");
  checker.FlagTrusted(2, &flag, /*now_ns=*/40);
  const auto& diags = checker.diagnostics();
  ASSERT_EQ(diags.size(), 1u) << checker.Report();
  EXPECT_EQ(diags[0].kind, DiagKind::kPrematureFlagRead);
  EXPECT_NE(diags[0].message.find("h-tree r5 f2"), std::string::npos);
}

TEST(RdmaCheckHookTest, ForgottenFlagIsNoLongerTracked) {
  RdmaCheck checker;
  uint8_t payload[32] = {0};
  uint8_t* flag = &payload[31];
  checker.FlagLocation(4, flag, "allreduce h-ring r0 f7");
  checker.WritePosted(1, 4, 6, 11, reinterpret_cast<uint64_t>(payload), 32, 88, 10);
  checker.WriteSegment(1, 6, 11, 0, 32, 20);
  checker.WriteFinished(1, 6, 11, 30);
  checker.FlagTrusted(4, flag, 40);
  EXPECT_EQ(checker.diagnostics().size(), 0u) << checker.Report();
  // Op teardown forgets the declaration; the address can be reused by the
  // next op's layout without the stale landed/cleared state misfiring.
  checker.FlagForgotten(4, flag);
  checker.FlagTrusted(4, flag, 50);
  EXPECT_EQ(checker.diagnostics().size(), 0u) << checker.Report();
}

TEST(RdmaCheckHookTest, OverlappingTreeSlotWritesAreARemoteRace) {
  RdmaCheck checker;
  // Two children of one binomial-tree parent writing into the same staging
  // slot concurrently — the bug class a double-booked hierarchical slot
  // layout would produce. Different source QPs, overlapping target range,
  // both in flight: no happens-before edge.
  checker.WritePosted(5, 4, /*qp_num=*/2, /*wr_id=*/1, /*remote_addr=*/0x8000,
                      /*length=*/1024, /*rkey=*/7, /*now_ns=*/10);
  checker.WritePosted(6, 4, /*qp_num=*/3, /*wr_id=*/1, /*remote_addr=*/0x8200,
                      /*length=*/1024, /*rkey=*/7, /*now_ns=*/15);
  ASSERT_EQ(checker.count(DiagKind::kRemoteRace), 1) << checker.Report();
  checker.WriteFinished(5, 2, 1, 20);
  checker.WriteFinished(6, 3, 1, 25);

  // Disjoint slots — the layout the schedule actually computes — are clean,
  // as is reuse of the first range after its write completed (the wire
  // completion is the happens-before edge).
  checker.WritePosted(5, 4, 2, 2, 0x9000, 1024, 7, 30);
  checker.WritePosted(6, 4, 3, 2, 0x9400, 1024, 7, 35);
  checker.WriteFinished(5, 2, 2, 40);
  checker.WritePosted(7, 4, 9, 1, 0x9000, 1024, 7, 45);
  checker.WriteFinished(6, 3, 2, 50);
  checker.WriteFinished(7, 9, 1, 55);
  EXPECT_EQ(checker.count(DiagKind::kRemoteRace), 1) << checker.Report();
}

TEST(RdmaCheckHookTest, LeakedArenaCarveOutIsReportedAtArenaDestruction) {
  RdmaCheck checker;
  std::vector<uint8_t> storage(4096);
  {
    tensor::ArenaAllocator arena(storage.data(), storage.size(), "leak-test");
    ASSERT_NE(arena.Allocate(128), nullptr);
    void* returned = arena.Allocate(256);
    ASSERT_NE(returned, nullptr);
    arena.Deallocate(returned);
    // The 128-byte carve-out is never returned; the arena dies with it live.
  }
  const auto& diags = checker.diagnostics();
  ASSERT_EQ(diags.size(), 1u) << checker.Report();
  EXPECT_EQ(diags[0].kind, DiagKind::kLeakedArenaBlock);
  EXPECT_NE(diags[0].message.find("leak-test"), std::string::npos);
  EXPECT_NE(diags[0].message.find("128"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Whole-session clean runs: the zero-copy protocol, session teardown and
// cluster teardown must be diagnostic-free. These are the regression tests
// for the leaks RdmaCheck surfaced when first turned on: the mechanism's
// per-host flag-source carve-outs, RdmaDevice's RPC slab MRs, and
// HostRuntime's raw meta/virtual-arena registrations.
// ---------------------------------------------------------------------------

class RdmaCheckSessionTest : public ::testing::Test {
 protected:
  static void BuildWorld(Graph* graph, std::unique_ptr<Cluster>* cluster,
                         ops::ComputeMode mode) {
    ClusterOptions options;
    options.num_machines = 2;
    options.mode = mode;
    options.process_defaults.rdma_arena_bytes = 32ull << 20;
    *cluster = std::make_unique<Cluster>(options);
    CHECK_OK((*cluster)->AddProcess("ps:0", 0).status());
    CHECK_OK((*cluster)->AddProcess("worker:0", 1).status());
    ops::RegisterStandardOps();
    Node* w = *graph->AddNode("w", "Variable", std::vector<Node*>{});
    w->SetAttr("shape", TensorShape{int64_t{50'000}});
    w->SetAttr("init", std::string("uniform"));
    w->set_device("ps:0");
    Node* consume = *graph->AddNode("consume", "ReduceSum", {w});
    consume->set_device("worker:0");
  }

  void RunCleanSession(ops::ComputeMode mode, comm::ZeroCopyOptions zc_options) {
    RdmaCheck checker;
    {
      Graph graph;
      std::unique_ptr<Cluster> cluster;
      BuildWorld(&graph, &cluster, mode);
      auto mechanism =
          std::make_unique<comm::ZeroCopyRdmaMechanism>(cluster.get(), zc_options);
      {
        DistributedSession session(cluster.get(), mechanism.get(), &graph, SessionOptions{});
        ASSERT_TRUE(session.Setup().ok());
        for (int step = 0; step < 3; ++step) {
          ASSERT_TRUE(session.RunStep().ok());
        }
      }
      mechanism.reset();  // Rebuild-path teardown: carve-outs must come back.
      cluster.reset();    // Full teardown: every MR must be deregistered.
    }
    EXPECT_TRUE(checker.Finalize().empty())
        << "protocol violations or leaks in clean run:\n" << checker.Report();
  }
};

TEST_F(RdmaCheckSessionTest, StaticProtocolSessionAndTeardownAreDiagnosticFree) {
  RunCleanSession(ops::ComputeMode::kReal, comm::ZeroCopyOptions{});
}

TEST_F(RdmaCheckSessionTest, DynamicProtocolSessionAndTeardownAreDiagnosticFree) {
  comm::ZeroCopyOptions options;
  options.force_dynamic = true;
  RunCleanSession(ops::ComputeMode::kReal, options);
}

TEST_F(RdmaCheckSessionTest, VirtualMemorySessionAndTeardownAreDiagnosticFree) {
  // Virtual-memory mode registers raw (never-dereferenced) address ranges
  // with the NIC; those registrations must still be undone at teardown.
  RunCleanSession(ops::ComputeMode::kSimulated, comm::ZeroCopyOptions{});
}

TEST_F(RdmaCheckSessionTest, MechanismTeardownReturnsFlagSourceCarveOuts) {
  // Targeted regression for the flag-source leak: after the mechanism dies,
  // the sender's meta arena must be completely empty again.
  Graph graph;
  std::unique_ptr<Cluster> cluster;
  BuildWorld(&graph, &cluster, ops::ComputeMode::kReal);
  {
    auto mechanism = std::make_unique<comm::ZeroCopyRdmaMechanism>(
        cluster.get(), comm::ZeroCopyOptions{});
    DistributedSession session(cluster.get(), mechanism.get(), &graph, SessionOptions{});
    ASSERT_TRUE(session.Setup().ok());
    ASSERT_TRUE(session.RunStep().ok());
    ASSERT_TRUE(session.RunStep().ok());
    // The sender (ps:0) allocated its 1-byte "flag = 1" source by now.
    auto meta = cluster->host("ps:0")->meta_arena();
    ASSERT_TRUE(meta.ok());
    EXPECT_GT((*meta)->allocator->stats().bytes_in_use, 0);
  }
  for (const char* device : {"ps:0", "worker:0"}) {
    auto meta = cluster->host(device)->meta_arena();
    ASSERT_TRUE(meta.ok());
    EXPECT_EQ((*meta)->allocator->stats().bytes_in_use, 0)
        << device << " meta arena still holds mechanism carve-outs";
  }
}

}  // namespace
}  // namespace rdmadl
