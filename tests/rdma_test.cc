#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "src/rdma/qp_pool.h"
#include "src/rdma/verbs.h"
#include "src/sim/fault.h"
#include "src/util/endpoint.h"

namespace rdmadl {
namespace rdma {
namespace {

class VerbsTest : public ::testing::Test {
 protected:
  VerbsTest() : fabric_(&simulator_, cost_, 3), rdma_(&fabric_) {}

  // Creates a connected QP pair between hosts a and b; returns {qp_a, qp_b}.
  std::pair<QueuePair*, QueuePair*> ConnectedPair(int a, int b) {
    NicDevice* na = rdma_.nic(a);
    NicDevice* nb = rdma_.nic(b);
    CompletionQueue* cqa = na->CreateCompletionQueue();
    CompletionQueue* cqb = nb->CreateCompletionQueue();
    QueuePair* qa = na->CreateQueuePair(cqa, cqa);
    QueuePair* qb = nb->CreateQueuePair(cqb, cqb);
    CHECK_OK(qa->Connect(qb));
    return {qa, qb};
  }

  sim::Simulator simulator_;
  net::CostModel cost_;
  net::Fabric fabric_;
  RdmaFabric rdma_;
};

TEST_F(VerbsTest, RegisterMemoryAssignsDistinctKeys) {
  std::vector<uint8_t> buf(4096);
  auto mr1 = rdma_.nic(0)->RegisterMemory(buf.data(), buf.size());
  auto mr2 = rdma_.nic(0)->RegisterMemory(buf.data(), buf.size());
  ASSERT_TRUE(mr1.ok());
  ASSERT_TRUE(mr2.ok());
  EXPECT_NE(mr1->lkey, mr2->lkey);
  EXPECT_NE(mr1->rkey, mr2->rkey);
  EXPECT_NE(mr1->lkey, mr1->rkey);
}

TEST_F(VerbsTest, RegisterMemoryRejectsEmpty) {
  EXPECT_FALSE(rdma_.nic(0)->RegisterMemory(nullptr, 100).ok());
  std::vector<uint8_t> buf(16);
  EXPECT_FALSE(rdma_.nic(0)->RegisterMemory(buf.data(), 0).ok());
}

TEST_F(VerbsTest, MemoryRegionLimitEnforced) {
  net::CostModel tight = cost_;
  tight.max_memory_regions = 3;
  net::Fabric fabric(&simulator_, tight, 1);
  RdmaFabric rdma(&fabric);
  std::vector<uint8_t> buf(64);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(rdma.nic(0)->RegisterMemory(buf.data(), buf.size()).ok());
  }
  auto overflow = rdma.nic(0)->RegisterMemory(buf.data(), buf.size());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(VerbsTest, DeregisterFreesSlot) {
  std::vector<uint8_t> buf(64);
  auto mr = rdma_.nic(0)->RegisterMemory(buf.data(), buf.size());
  ASSERT_TRUE(mr.ok());
  EXPECT_EQ(rdma_.nic(0)->num_registered_regions(), 1);
  ASSERT_TRUE(rdma_.nic(0)->DeregisterMemory(*mr).ok());
  EXPECT_EQ(rdma_.nic(0)->num_registered_regions(), 0);
  EXPECT_EQ(rdma_.nic(0)->DeregisterMemory(*mr).code(), StatusCode::kNotFound);
}

TEST_F(VerbsTest, RegistrationCostScalesWithPages) {
  NicDevice* nic = rdma_.nic(0);
  const int64_t one_page = nic->RegistrationCost(100);
  const int64_t many_pages = nic->RegistrationCost(100 * cost_.mr_page_bytes);
  EXPECT_GT(many_pages, one_page);
  EXPECT_EQ(one_page, cost_.mr_register_base_ns + cost_.mr_register_per_page_ns);
}

TEST_F(VerbsTest, OneSidedWriteCopiesBytes) {
  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(64 * 1024);
  std::vector<uint8_t> dst(64 * 1024, 0);
  std::iota(src.begin(), src.end(), 0);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());
  ASSERT_TRUE(src_mr.ok() && dst_mr.ok());

  SendWorkRequest wr;
  wr.wr_id = 7;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = reinterpret_cast<uint64_t>(src.data());
  wr.lkey = src_mr->lkey;
  wr.length = src.size();
  wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
  wr.rkey = dst_mr->rkey;
  ASSERT_TRUE(qa->PostSend(wr).ok());
  ASSERT_TRUE(simulator_.Run().ok());

  EXPECT_EQ(src, dst);
  WorkCompletion wc;
  ASSERT_TRUE(qa->send_cq()->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 7u);
  EXPECT_TRUE(wc.status.ok());
  EXPECT_EQ(wc.byte_len, src.size());
}

TEST_F(VerbsTest, WriteSegmentsLandInAscendingAddressOrder) {
  // The flag-byte protocol (§3.2) depends on this: poll mid-transfer and
  // verify that if byte N is written, all bytes below N are written too.
  auto [qa, qb] = ConnectedPair(0, 1);
  const size_t size = 16 * cost_.rdma_mtu_bytes;
  std::vector<uint8_t> src(size, 0xAB);
  std::vector<uint8_t> dst(size, 0);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());

  SendWorkRequest wr;
  wr.wr_id = 1;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = reinterpret_cast<uint64_t>(src.data());
  wr.lkey = src_mr->lkey;
  wr.length = size;
  wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
  wr.rkey = dst_mr->rkey;
  ASSERT_TRUE(qa->PostSend(wr).ok());

  // Step the simulation in small time slices and check the prefix property.
  bool saw_partial = false;
  for (int step = 0; step < 1000; ++step) {
    ASSERT_TRUE(simulator_.RunUntil(simulator_.Now() + 500).ok());
    size_t written = 0;
    while (written < size && dst[written] == 0xAB) ++written;
    for (size_t i = written; i < size; ++i) {
      ASSERT_EQ(dst[i], 0) << "byte " << i << " written before prefix complete";
    }
    if (written > 0 && written < size) saw_partial = true;
    if (written == size) break;
  }
  EXPECT_TRUE(saw_partial) << "expected to observe a partially delivered tensor";
  EXPECT_EQ(dst, src);
}

TEST_F(VerbsTest, OneSidedReadCopiesBytes) {
  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> remote(32 * 1024);
  std::vector<uint8_t> local(32 * 1024, 0);
  std::iota(remote.begin(), remote.end(), 1);
  auto remote_mr = rdma_.nic(1)->RegisterMemory(remote.data(), remote.size());
  auto local_mr = rdma_.nic(0)->RegisterMemory(local.data(), local.size());

  SendWorkRequest wr;
  wr.wr_id = 9;
  wr.opcode = Opcode::kRead;
  wr.local_addr = reinterpret_cast<uint64_t>(local.data());
  wr.lkey = local_mr->lkey;
  wr.length = local.size();
  wr.remote_addr = reinterpret_cast<uint64_t>(remote.data());
  wr.rkey = remote_mr->rkey;
  ASSERT_TRUE(qa->PostSend(wr).ok());
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_EQ(local, remote);
}

TEST_F(VerbsTest, ReadIsSlowerThanWriteBySmallRequestTrip) {
  // An RDMA read pays an extra request trip to the target before data flows.
  const size_t size = 4096;
  int64_t write_done = 0, read_done = 0;
  {
    sim::Simulator s;
    net::Fabric f(&s, cost_, 2);
    RdmaFabric r(&f);
    auto* cqa = r.nic(0)->CreateCompletionQueue();
    auto* cqb = r.nic(1)->CreateCompletionQueue();
    QueuePair* qa = r.nic(0)->CreateQueuePair(cqa, cqa);
    QueuePair* qb = r.nic(1)->CreateQueuePair(cqb, cqb);
    CHECK_OK(qa->Connect(qb));
    std::vector<uint8_t> src(size), dst(size);
    auto src_mr = r.nic(0)->RegisterMemory(src.data(), size);
    auto dst_mr = r.nic(1)->RegisterMemory(dst.data(), size);
    cqa->SetCompletionHandler([&] { write_done = s.Now(); });
    SendWorkRequest wr{1, Opcode::kWrite, reinterpret_cast<uint64_t>(src.data()), src_mr->lkey,
                       size, reinterpret_cast<uint64_t>(dst.data()), dst_mr->rkey};
    ASSERT_TRUE(qa->PostSend(wr).ok());
    ASSERT_TRUE(s.Run().ok());
  }
  {
    sim::Simulator s;
    net::Fabric f(&s, cost_, 2);
    RdmaFabric r(&f);
    auto* cqa = r.nic(0)->CreateCompletionQueue();
    auto* cqb = r.nic(1)->CreateCompletionQueue();
    QueuePair* qa = r.nic(0)->CreateQueuePair(cqa, cqa);
    QueuePair* qb = r.nic(1)->CreateQueuePair(cqb, cqb);
    CHECK_OK(qa->Connect(qb));
    std::vector<uint8_t> local(size), remote(size);
    auto local_mr = r.nic(0)->RegisterMemory(local.data(), size);
    auto remote_mr = r.nic(1)->RegisterMemory(remote.data(), size);
    cqa->SetCompletionHandler([&] { read_done = s.Now(); });
    SendWorkRequest wr{1, Opcode::kRead, reinterpret_cast<uint64_t>(local.data()),
                       local_mr->lkey, size, reinterpret_cast<uint64_t>(remote.data()),
                       remote_mr->rkey};
    ASSERT_TRUE(qa->PostSend(wr).ok());
    ASSERT_TRUE(s.Run().ok());
  }
  EXPECT_GT(read_done, write_done);
  EXPECT_LT(read_done, write_done + 2 * cost_.rdma_one_way_latency_ns +
                           4 * cost_.rdma_nic_processing_ns);
}

TEST_F(VerbsTest, WriteWithBadRkeyFailsWithErrorCompletion) {
  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(128), dst(128);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());
  SendWorkRequest wr;
  wr.wr_id = 3;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = reinterpret_cast<uint64_t>(src.data());
  wr.lkey = src_mr->lkey;
  wr.length = src.size();
  wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
  wr.rkey = dst_mr->rkey + 999;  // Bogus key.
  ASSERT_TRUE(qa->PostSend(wr).ok());
  ASSERT_TRUE(simulator_.Run().ok());
  WorkCompletion wc;
  ASSERT_TRUE(qa->send_cq()->Poll(&wc));
  EXPECT_FALSE(wc.status.ok());
  EXPECT_EQ(rdma_.nic(1)->stats().rkey_violations, 1u);
}

TEST_F(VerbsTest, WriteBeyondRegionBoundsFails) {
  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(256), dst(128);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());
  SendWorkRequest wr;
  wr.wr_id = 4;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = reinterpret_cast<uint64_t>(src.data());
  wr.lkey = src_mr->lkey;
  wr.length = 256;  // Larger than the 128-byte target region.
  wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
  wr.rkey = dst_mr->rkey;
  ASSERT_TRUE(qa->PostSend(wr).ok());
  ASSERT_TRUE(simulator_.Run().ok());
  WorkCompletion wc;
  ASSERT_TRUE(qa->send_cq()->Poll(&wc));
  EXPECT_EQ(wc.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(VerbsTest, PostSendOnUnconnectedQpFails) {
  NicDevice* nic = rdma_.nic(0);
  CompletionQueue* cq = nic->CreateCompletionQueue();
  QueuePair* qp = nic->CreateQueuePair(cq, cq);
  std::vector<uint8_t> buf(64);
  auto mr = nic->RegisterMemory(buf.data(), buf.size());
  SendWorkRequest wr;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = reinterpret_cast<uint64_t>(buf.data());
  wr.lkey = mr->lkey;
  wr.length = 64;
  EXPECT_EQ(qp->PostSend(wr).code(), StatusCode::kFailedPrecondition);
}

TEST_F(VerbsTest, PostSendWithUnregisteredLocalBufferFails) {
  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> buf(64);
  SendWorkRequest wr;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = reinterpret_cast<uint64_t>(buf.data());
  wr.lkey = 12345;
  wr.length = 64;
  EXPECT_EQ(qa->PostSend(wr).code(), StatusCode::kInvalidArgument);
}

TEST_F(VerbsTest, SendRecvDeliversMessage) {
  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> msg(1000);
  std::iota(msg.begin(), msg.end(), 3);
  std::vector<uint8_t> recv_buf(4096, 0);
  auto msg_mr = rdma_.nic(0)->RegisterMemory(msg.data(), msg.size());
  auto recv_mr = rdma_.nic(1)->RegisterMemory(recv_buf.data(), recv_buf.size());

  RecvWorkRequest rwr;
  rwr.wr_id = 100;
  rwr.addr = reinterpret_cast<uint64_t>(recv_buf.data());
  rwr.lkey = recv_mr->lkey;
  rwr.length = recv_buf.size();
  ASSERT_TRUE(qb->PostRecv(rwr).ok());

  SendWorkRequest swr;
  swr.wr_id = 101;
  swr.opcode = Opcode::kSend;
  swr.local_addr = reinterpret_cast<uint64_t>(msg.data());
  swr.lkey = msg_mr->lkey;
  swr.length = msg.size();
  ASSERT_TRUE(qa->PostSend(swr).ok());
  ASSERT_TRUE(simulator_.Run().ok());

  WorkCompletion wc;
  ASSERT_TRUE(qb->recv_cq()->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 100u);
  EXPECT_EQ(wc.byte_len, msg.size());
  EXPECT_TRUE(std::memcmp(recv_buf.data(), msg.data(), msg.size()) == 0);
}

TEST_F(VerbsTest, SendWaitsForPostedRecv) {
  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> msg(100, 0x5A);
  std::vector<uint8_t> recv_buf(4096, 0);
  auto msg_mr = rdma_.nic(0)->RegisterMemory(msg.data(), msg.size());
  auto recv_mr = rdma_.nic(1)->RegisterMemory(recv_buf.data(), recv_buf.size());

  SendWorkRequest swr;
  swr.wr_id = 1;
  swr.opcode = Opcode::kSend;
  swr.local_addr = reinterpret_cast<uint64_t>(msg.data());
  swr.lkey = msg_mr->lkey;
  swr.length = msg.size();
  ASSERT_TRUE(qa->PostSend(swr).ok());
  ASSERT_TRUE(simulator_.Run().ok());

  // No recv posted yet: nothing delivered.
  WorkCompletion wc;
  EXPECT_FALSE(qb->recv_cq()->Poll(&wc));

  RecvWorkRequest rwr;
  rwr.wr_id = 2;
  rwr.addr = reinterpret_cast<uint64_t>(recv_buf.data());
  rwr.lkey = recv_mr->lkey;
  rwr.length = recv_buf.size();
  ASSERT_TRUE(qb->PostRecv(rwr).ok());
  ASSERT_TRUE(simulator_.Run().ok());
  ASSERT_TRUE(qb->recv_cq()->Poll(&wc));
  EXPECT_EQ(wc.byte_len, msg.size());
  EXPECT_EQ(recv_buf[0], 0x5A);
}

TEST_F(VerbsTest, OversizedSendCompletesWithError) {
  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> msg(4096, 1);
  std::vector<uint8_t> recv_buf(100);
  auto msg_mr = rdma_.nic(0)->RegisterMemory(msg.data(), msg.size());
  auto recv_mr = rdma_.nic(1)->RegisterMemory(recv_buf.data(), recv_buf.size());

  RecvWorkRequest rwr;
  rwr.wr_id = 5;
  rwr.addr = reinterpret_cast<uint64_t>(recv_buf.data());
  rwr.lkey = recv_mr->lkey;
  rwr.length = recv_buf.size();
  ASSERT_TRUE(qb->PostRecv(rwr).ok());

  SendWorkRequest swr;
  swr.wr_id = 6;
  swr.opcode = Opcode::kSend;
  swr.local_addr = reinterpret_cast<uint64_t>(msg.data());
  swr.lkey = msg_mr->lkey;
  swr.length = msg.size();
  ASSERT_TRUE(qa->PostSend(swr).ok());
  ASSERT_TRUE(simulator_.Run().ok());

  WorkCompletion wc;
  ASSERT_TRUE(qb->recv_cq()->Poll(&wc));
  EXPECT_FALSE(wc.status.ok());
}

TEST_F(VerbsTest, QpSerializesWorkRequestsInOrder) {
  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(1024, 0x11);
  std::vector<uint8_t> dst(1024, 0);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());

  std::vector<uint64_t> completion_order;
  qa->send_cq()->SetCompletionHandler([&] {
    WorkCompletion wc;
    while (qa->send_cq()->Poll(&wc)) completion_order.push_back(wc.wr_id);
  });
  for (uint64_t i = 0; i < 5; ++i) {
    SendWorkRequest wr;
    wr.wr_id = i;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = reinterpret_cast<uint64_t>(src.data());
    wr.lkey = src_mr->lkey;
    wr.length = src.size();
    wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
    wr.rkey = dst_mr->rkey;
    ASSERT_TRUE(qa->PostSend(wr).ok());
  }
  ASSERT_TRUE(simulator_.Run().ok());
  ASSERT_EQ(completion_order.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) EXPECT_EQ(completion_order[i], i);
}

TEST_F(VerbsTest, NicStatsTrackTraffic) {
  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> a(2048), b(2048);
  auto a_mr = rdma_.nic(0)->RegisterMemory(a.data(), a.size());
  auto b_mr = rdma_.nic(1)->RegisterMemory(b.data(), b.size());
  SendWorkRequest wr;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = reinterpret_cast<uint64_t>(a.data());
  wr.lkey = a_mr->lkey;
  wr.length = 2048;
  wr.remote_addr = reinterpret_cast<uint64_t>(b.data());
  wr.rkey = b_mr->rkey;
  ASSERT_TRUE(qa->PostSend(wr).ok());
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_EQ(rdma_.nic(0)->stats().writes, 1u);
  EXPECT_EQ(rdma_.nic(0)->stats().write_bytes, 2048u);
}

TEST_F(VerbsTest, ConnectTwiceFails) {
  auto [qa, qb] = ConnectedPair(0, 1);
  auto [qc, qd] = ConnectedPair(0, 1);
  EXPECT_EQ(qa->Connect(qc).code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Transport error paths under fault injection: retry, error-state flush
// semantics, and recovery.
// ---------------------------------------------------------------------------

TEST_F(VerbsTest, TransportRetryRecoversFromDroppedSegments) {
  sim::FaultInjector injector(1);
  sim::LinkFaultSpec spec;
  spec.drop_first_n = 2;  // First two wire attempts lose a segment.
  injector.SetLinkFault(0, 1, spec);
  fabric_.SetFaultInjector(&injector);

  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(64 * 1024), dst(64 * 1024, 0);
  std::iota(src.begin(), src.end(), 0);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());

  SendWorkRequest wr;
  wr.wr_id = 11;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = reinterpret_cast<uint64_t>(src.data());
  wr.lkey = src_mr->lkey;
  wr.length = src.size();
  wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
  wr.rkey = dst_mr->rkey;
  ASSERT_TRUE(qa->PostSend(wr).ok());
  ASSERT_TRUE(simulator_.Run().ok());

  // The retransmissions were transparent: one OK completion, correct bytes.
  EXPECT_EQ(src, dst);
  WorkCompletion wc;
  ASSERT_TRUE(qa->send_cq()->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 11u);
  EXPECT_TRUE(wc.status.ok());
  EXPECT_FALSE(qa->send_cq()->Poll(&wc));  // Exactly one completion.
  EXPECT_EQ(rdma_.nic(0)->stats().retransmissions, 2u);
  EXPECT_FALSE(qa->in_error());
  EXPECT_EQ(injector.stats().forced_drops, 2u);
}

TEST_F(VerbsTest, RetryExhaustionErrorsQpAndFlushesQueuedWrsInOrder) {
  sim::FaultInjector injector(1);
  sim::LinkFaultSpec spec;
  spec.drop_first_n = 1'000'000;  // The link never heals.
  injector.SetLinkFault(0, 1, spec);
  fabric_.SetFaultInjector(&injector);

  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(4096), dst(4096);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());
  for (uint64_t id = 1; id <= 3; ++id) {
    SendWorkRequest wr;
    wr.wr_id = id;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = reinterpret_cast<uint64_t>(src.data());
    wr.lkey = src_mr->lkey;
    wr.length = src.size();
    wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
    wr.rkey = dst_mr->rkey;
    ASSERT_TRUE(qa->PostSend(wr).ok());
  }
  ASSERT_TRUE(simulator_.Run().ok());

  EXPECT_TRUE(qa->in_error());
  EXPECT_EQ(qa->error_cause().code(), StatusCode::kUnavailable);
  // CQ drains in FIFO order: the failing WR first with the transport error,
  // then the flushed WRs with kAborted.
  WorkCompletion wc;
  ASSERT_TRUE(qa->send_cq()->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 1u);
  EXPECT_EQ(wc.status.code(), StatusCode::kUnavailable);
  ASSERT_TRUE(qa->send_cq()->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 2u);
  EXPECT_EQ(wc.status.code(), StatusCode::kAborted);
  ASSERT_TRUE(qa->send_cq()->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 3u);
  EXPECT_EQ(wc.status.code(), StatusCode::kAborted);
  EXPECT_FALSE(qa->send_cq()->Poll(&wc));
  EXPECT_EQ(rdma_.nic(0)->stats().flushed_wrs, 2u);
  // The retry budget was fully spent on the first WR.
  EXPECT_EQ(rdma_.nic(0)->stats().retransmissions,
            static_cast<uint64_t>(cost_.rdma_transport_retry_count));
}

TEST_F(VerbsTest, PostOnErroredQpCompletesWithFlushStatus) {
  sim::FaultInjector injector(1);
  sim::LinkFaultSpec spec;
  spec.drop_first_n = 1'000'000;
  injector.SetLinkFault(0, 1, spec);
  fabric_.SetFaultInjector(&injector);

  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(1024), dst(1024);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());
  SendWorkRequest wr;
  wr.wr_id = 21;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = reinterpret_cast<uint64_t>(src.data());
  wr.lkey = src_mr->lkey;
  wr.length = src.size();
  wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
  wr.rkey = dst_mr->rkey;
  ASSERT_TRUE(qa->PostSend(wr).ok());
  ASSERT_TRUE(simulator_.Run().ok());
  ASSERT_TRUE(qa->in_error());
  WorkCompletion wc;
  while (qa->send_cq()->Poll(&wc)) {
  }

  // Posts against the errored QP are accepted (so device-layer CHECKs hold)
  // but complete with the flush status — never silently swallowed.
  wr.wr_id = 22;
  ASSERT_TRUE(qa->PostSend(wr).ok());
  RecvWorkRequest rwr;
  rwr.wr_id = 23;
  rwr.addr = reinterpret_cast<uint64_t>(src.data());
  rwr.lkey = src_mr->lkey;
  rwr.length = src.size();
  ASSERT_TRUE(qa->PostRecv(rwr).ok());
  ASSERT_TRUE(simulator_.Run().ok());
  ASSERT_TRUE(qa->send_cq()->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 22u);
  EXPECT_EQ(wc.status.code(), StatusCode::kAborted);
  ASSERT_TRUE(qa->recv_cq()->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 23u);
  EXPECT_EQ(wc.status.code(), StatusCode::kAborted);
}

TEST_F(VerbsTest, RecoverReturnsErroredQpToService) {
  sim::FaultInjector injector(1);
  sim::LinkFaultSpec spec;
  // Exactly the initial attempt plus every retry: the budget runs dry, then
  // the link heals.
  spec.drop_first_n = 1 + cost_.rdma_transport_retry_count;
  injector.SetLinkFault(0, 1, spec);
  fabric_.SetFaultInjector(&injector);

  auto [qa, qb] = ConnectedPair(0, 1);
  std::vector<uint8_t> src(8192), dst(8192, 0);
  std::iota(src.begin(), src.end(), 0);
  auto src_mr = rdma_.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = rdma_.nic(1)->RegisterMemory(dst.data(), dst.size());
  SendWorkRequest wr;
  wr.wr_id = 31;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = reinterpret_cast<uint64_t>(src.data());
  wr.lkey = src_mr->lkey;
  wr.length = src.size();
  wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
  wr.rkey = dst_mr->rkey;
  ASSERT_TRUE(qa->PostSend(wr).ok());
  ASSERT_TRUE(simulator_.Run().ok());
  ASSERT_TRUE(qa->in_error());
  WorkCompletion wc;
  ASSERT_TRUE(qa->send_cq()->Poll(&wc));
  EXPECT_EQ(wc.status.code(), StatusCode::kUnavailable);

  ASSERT_TRUE(qa->Recover().ok());
  EXPECT_FALSE(qa->in_error());
  wr.wr_id = 32;
  ASSERT_TRUE(qa->PostSend(wr).ok());
  ASSERT_TRUE(simulator_.Run().ok());
  ASSERT_TRUE(qa->send_cq()->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 32u);
  EXPECT_TRUE(wc.status.ok());
  EXPECT_EQ(src, dst);
}

// ---------------------------------------------------------------------------
// QpPool: on-demand shared lanes, LRU eviction under the NIC QP cap,
// transparent reconnect, and determinism.
// ---------------------------------------------------------------------------

class QpPoolTest : public ::testing::Test {
 protected:
  struct EvictionRecord {
    Endpoint local;
    Endpoint remote;
    int lane;
  };

  // One self-contained stack per test so caps can vary.
  struct Stack {
    explicit Stack(net::CostModel cost, int hosts = 3)
        : fabric(&simulator, cost, hosts), rdma(&fabric), pool(&rdma) {}

    void Register(const Endpoint& ep, std::vector<EvictionRecord>* log = nullptr) {
      NicDevice* nic = rdma.nic(ep.host_id);
      CompletionQueue* cq = nic->CreateCompletionQueue();
      CHECK_OK(pool.RegisterEndpoint(
          ep, ep.host_id, [cq]() { return cq; },
          [log](const Endpoint& local, const Endpoint& remote, int lane) {
            if (log != nullptr) log->push_back({local, remote, lane});
          }));
    }

    sim::Simulator simulator;
    net::Fabric fabric;
    RdmaFabric rdma;
    QpPool pool;
  };

  static net::CostModel Capped(int max_qps) {
    net::CostModel cost;
    cost.max_queue_pairs = max_qps;
    return cost;
  }
};

TEST_F(QpPoolTest, AcquireCreatesOnceThenHitsFromBothEnds) {
  Stack s(net::CostModel{});
  const Endpoint a{0, 1}, b{1, 1};
  s.Register(a);
  s.Register(b);

  auto qa = s.pool.Acquire(a, b, /*lane=*/0);
  ASSERT_TRUE(qa.ok());
  auto qb = s.pool.Acquire(b, a, /*lane=*/0);
  ASSERT_TRUE(qb.ok());
  // Both directions share one connected lane.
  EXPECT_EQ((*qa)->peer(), *qb);
  EXPECT_EQ((*qb)->peer(), *qa);
  EXPECT_EQ(s.pool.num_lanes(), 1);
  EXPECT_EQ(s.pool.stats().creates, 1u);
  EXPECT_EQ(s.pool.stats().hits, 1u);
  EXPECT_EQ(*qa, *s.pool.Acquire(a, b, 0));
  EXPECT_EQ(s.pool.stats().hits, 2u);

  // Distinct stripe index = distinct lane.
  auto lane1 = s.pool.Acquire(a, b, /*lane=*/1);
  ASSERT_TRUE(lane1.ok());
  EXPECT_NE(*lane1, *qa);
  EXPECT_EQ(s.pool.num_lanes(), 2);

  // A pooled lane carries real traffic.
  std::vector<uint8_t> src(4096), dst(4096, 0);
  std::iota(src.begin(), src.end(), 0);
  auto src_mr = s.rdma.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = s.rdma.nic(1)->RegisterMemory(dst.data(), dst.size());
  ASSERT_TRUE(src_mr.ok() && dst_mr.ok());
  SendWorkRequest wr;
  wr.wr_id = 1;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = reinterpret_cast<uint64_t>(src.data());
  wr.lkey = src_mr->lkey;
  wr.length = src.size();
  wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
  wr.rkey = dst_mr->rkey;
  ASSERT_TRUE((*qa)->PostSend(wr).ok());
  ASSERT_TRUE(s.simulator.Run().ok());
  EXPECT_EQ(src, dst);
}

TEST_F(QpPoolTest, AcquireRequiresRegisteredEndpoints) {
  Stack s(net::CostModel{});
  const Endpoint a{0, 1}, b{1, 1};
  s.Register(a);
  auto denied = s.pool.Acquire(a, b, 0);
  EXPECT_EQ(denied.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(s.pool.Acquire(a, a, 0).ok());
  EXPECT_FALSE(s.pool.Acquire(a, b, -1).ok());
}

TEST_F(QpPoolTest, CapEvictsLruIdleLaneAndReconnectTransparently) {
  // One QP context per NIC: the a-b and a-c lanes cannot coexist on host 0.
  Stack s(Capped(1));
  std::vector<EvictionRecord> log;
  const Endpoint a{0, 1}, b{1, 1}, c{2, 1};
  s.Register(a, &log);
  s.Register(b, &log);
  s.Register(c, &log);

  ASSERT_TRUE(s.pool.Acquire(a, b, 0).ok());
  const uint64_t gen0 = s.pool.generation();

  // host 0 is full; the idle a-b lane is the LRU victim.
  ASSERT_TRUE(s.pool.Acquire(a, c, 0).ok());
  EXPECT_EQ(s.pool.stats().evictions, 1u);
  EXPECT_GT(s.pool.generation(), gen0);
  EXPECT_EQ(s.pool.num_lanes(), 1);
  // Both owners of the evicted lane were notified, each from its own side.
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].local, a);
  EXPECT_EQ(log[0].remote, b);
  EXPECT_EQ(log[1].local, b);
  EXPECT_EQ(log[1].remote, a);
  EXPECT_EQ(log[0].lane, 0);

  // Re-acquiring the evicted key reconnects rather than failing.
  ASSERT_TRUE(s.pool.Acquire(b, a, 0).ok());
  EXPECT_EQ(s.pool.stats().reconnects, 1u);
  EXPECT_EQ(s.pool.stats().evictions, 2u);
  // The NIC cap held throughout.
  for (int host = 0; host < 3; ++host) {
    EXPECT_LE(s.rdma.nic(host)->num_queue_pairs(), 1);
  }
}

TEST_F(QpPoolTest, BusyLanesAreNotEvicted) {
  Stack s(Capped(1));
  const Endpoint a{0, 1}, b{1, 1}, c{2, 1};
  s.Register(a);
  s.Register(b);
  s.Register(c);

  auto qa = s.pool.Acquire(a, b, 0);
  ASSERT_TRUE(qa.ok());
  std::vector<uint8_t> src(1 << 20), dst(1 << 20, 0);
  auto src_mr = s.rdma.nic(0)->RegisterMemory(src.data(), src.size());
  auto dst_mr = s.rdma.nic(1)->RegisterMemory(dst.data(), dst.size());
  ASSERT_TRUE(src_mr.ok() && dst_mr.ok());
  SendWorkRequest wr;
  wr.wr_id = 9;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = reinterpret_cast<uint64_t>(src.data());
  wr.lkey = src_mr->lkey;
  wr.length = src.size();
  wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
  wr.rkey = dst_mr->rkey;
  ASSERT_TRUE((*qa)->PostSend(wr).ok());
  ASSERT_FALSE((*qa)->idle());

  // The only candidate lane is mid-write: acquisition must fail, not destroy
  // a QP with posted work.
  auto denied = s.pool.Acquire(a, c, 0);
  EXPECT_EQ(denied.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.pool.stats().exhausted, 1u);

  // Once the write drains the lane is evictable again.
  ASSERT_TRUE(s.simulator.Run().ok());
  EXPECT_TRUE((*qa)->idle());
  EXPECT_TRUE(s.pool.Acquire(a, c, 0).ok());
  EXPECT_EQ(s.pool.stats().evictions, 1u);
}

TEST_F(QpPoolTest, UnregisterTearsDownLanesAndNotifiesPeers) {
  Stack s(net::CostModel{});
  std::vector<EvictionRecord> log;
  const Endpoint a{0, 1}, b{1, 1}, c{2, 1};
  s.Register(a, &log);
  s.Register(b, &log);
  s.Register(c, &log);
  ASSERT_TRUE(s.pool.Acquire(a, b, 0).ok());
  ASSERT_TRUE(s.pool.Acquire(a, b, 1).ok());
  ASSERT_TRUE(s.pool.Acquire(b, c, 0).ok());

  const uint64_t gen0 = s.pool.generation();
  s.pool.UnregisterEndpoint(b);
  // Every lane touching b is gone; the a-? and c-? owners heard about it.
  EXPECT_EQ(s.pool.num_lanes(), 0);
  EXPECT_GT(s.pool.generation(), gen0);
  EXPECT_FALSE(s.pool.registered(b));
  EXPECT_EQ(log.size(), 6u);  // 3 lanes x both sides.
  EXPECT_EQ(s.rdma.nic(1)->num_queue_pairs(), 0);

  // Idempotent for unknown endpoints.
  s.pool.UnregisterEndpoint(b);
}

TEST_F(QpPoolTest, SameSeedRunsProduceIdenticalTraces) {
  // The pooled path (creation order, LRU eviction, reconnects) must be fully
  // deterministic: two identical runs — acquisitions interleaved with writes
  // under a cap tight enough to force evictions — yield byte-identical
  // completion traces.
  auto run = [](std::vector<std::pair<uint64_t, int64_t>>* trace) {
    Stack s(Capped(2));
    const Endpoint a{0, 1}, b{1, 1}, c{2, 1};
    s.Register(a);
    s.Register(b);
    s.Register(c);
    std::vector<uint8_t> src(64 * 1024), dst(64 * 1024, 0);
    std::iota(src.begin(), src.end(), 0);
    auto src_mr = s.rdma.nic(0)->RegisterMemory(src.data(), src.size());
    auto dst_b = s.rdma.nic(1)->RegisterMemory(dst.data(), dst.size());
    auto dst_c = s.rdma.nic(2)->RegisterMemory(dst.data(), dst.size());
    CHECK(src_mr.ok() && dst_b.ok() && dst_c.ok());
    for (int round = 0; round < 6; ++round) {
      const Endpoint& remote = (round % 2 == 0) ? b : c;
      auto qp = s.pool.Acquire(a, remote, round % 3);
      CHECK(qp.ok()) << qp.status();
      SendWorkRequest wr;
      wr.wr_id = 100 + round;
      wr.opcode = Opcode::kWrite;
      wr.local_addr = reinterpret_cast<uint64_t>(src.data());
      wr.lkey = src_mr->lkey;
      wr.length = 4096 * (round + 1);
      wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
      wr.rkey = (round % 2 == 0) ? dst_b->rkey : dst_c->rkey;
      CHECK_OK((*qp)->PostSend(wr));
      CHECK_OK(s.simulator.Run());
      WorkCompletion wc;
      while ((*qp)->send_cq()->Poll(&wc)) {
        trace->push_back({wc.wr_id, s.simulator.Now()});
      }
    }
    trace->push_back({s.pool.stats().evictions, static_cast<int64_t>(s.pool.num_lanes())});
  };
  std::vector<std::pair<uint64_t, int64_t>> first, second;
  run(&first);
  run(&second);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

}  // namespace
}  // namespace rdma
}  // namespace rdmadl
