#include <gtest/gtest.h>

#include <cmath>

#include "src/models/model_spec.h"
#include "src/train/ps_training.h"

namespace rdmadl {
namespace train {
namespace {

using models::ModelSpec;

TEST(ModelSpecTest, Table2SizesMatchWithinHalfPercent) {
  for (const ModelSpec& model : models::AllBenchmarkModels()) {
    const double err =
        std::abs(model.SizeMb() - model.table_size_mb) / model.table_size_mb;
    EXPECT_LT(err, 0.005) << model.name << ": built " << model.SizeMb() << " MB, Table 2 says "
                          << model.table_size_mb << " MB";
  }
}

TEST(ModelSpecTest, Table2VariableCountsMatchExactly) {
  for (const ModelSpec& model : models::AllBenchmarkModels()) {
    EXPECT_EQ(model.NumVariables(), model.table_num_vars) << model.name;
  }
}

TEST(ModelSpecTest, LstmAndGruMatchExactly) {
  EXPECT_EQ(models::Lstm().TotalParamBytes(), 9'417'704u * 4);
  EXPECT_EQ(models::Gru().TotalParamBytes(), 7'319'528u * 4);
}

TEST(ModelSpecTest, SentenceEmbeddingHasTensorOverOneGigabyte) {
  // The variable that crashed TF's gRPC.RDMA in the paper (Figure 10c).
  bool found = false;
  for (const auto& var : models::SentenceEmbedding().AllVariables()) {
    if (var.bytes() > (1ull << 30)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ModelSpecTest, CostSharesSumToOne) {
  for (const ModelSpec& model : models::AllBenchmarkModels()) {
    double total = 0;
    for (const auto& layer : model.layers) total += layer.cost_share;
    EXPECT_NEAR(total, 1.0, 1e-9) << model.name;
  }
}

TEST(BuildGraphTest, VariableAndTransferStructure) {
  ModelSpec model = models::Fcn5();
  graph::Graph graph;
  ASSERT_TRUE(BuildDataParallelGraph(model, 2, 2, 8, false, &graph).ok());
  // 10 variables + per worker: input + 5 fwd + top + 4 dx + 10 grads, plus
  // 10 applies per worker on the PS side.
  int variables = 0, applies = 0, grads = 0;
  for (const auto& node : graph.nodes()) {
    if (node->op() == "Variable") ++variables;
    if (node->op() == "ApplySgd") ++applies;
    if (node->name().find("grad/") != std::string::npos) ++grads;
  }
  EXPECT_EQ(variables, 10);
  EXPECT_EQ(applies, 2 * 10);
  EXPECT_EQ(grads, 2 * 10);
}

TEST(BuildGraphTest, LocalModeHasNoCrossDeviceEdges) {
  ModelSpec model = models::Fcn5();
  graph::Graph graph;
  ASSERT_TRUE(BuildDataParallelGraph(model, 4, 4, 8, /*local_only=*/true, &graph).ok());
  for (const auto& node : graph.nodes()) {
    EXPECT_EQ(node->device(), "worker:0");
  }
}

TEST(BuildGraphTest, VariablesShardedRoundRobin) {
  ModelSpec model = models::Fcn5();
  graph::Graph graph;
  ASSERT_TRUE(BuildDataParallelGraph(model, 4, 4, 8, false, &graph).ok());
  int on_ps[4] = {0, 0, 0, 0};
  for (const auto& node : graph.nodes()) {
    if (node->op() != "Variable") continue;
    for (int p = 0; p < 4; ++p) {
      if (node->device() == StrCat("ps:", p)) ++on_ps[p];
    }
  }
  // 10 variables over 4 PSes: 3,3,2,2.
  EXPECT_EQ(on_ps[0] + on_ps[1] + on_ps[2] + on_ps[3], 10);
  for (int p = 0; p < 4; ++p) {
    EXPECT_GE(on_ps[p], 2);
    EXPECT_LE(on_ps[p], 3);
  }
}

TEST(TrainingDriverTest, SmokeTestTwoMachines) {
  TrainingConfig config;
  config.model = models::Fcn5();
  config.num_machines = 2;
  config.batch_size = 8;
  config.mechanism = MechanismKind::kRdmaZeroCopy;
  TrainingDriver driver(config);
  ASSERT_TRUE(driver.Initialize().ok());
  auto ms = driver.MeasureStepTimeMs(3);
  ASSERT_TRUE(ms.ok()) << ms.status();
  EXPECT_GT(*ms, 1.0);     // At least the compute time.
  EXPECT_LT(*ms, 10'000);  // And sane.
}

TEST(TrainingDriverTest, MechanismOrderingOnFcn5) {
  // FCN-5 is communication-bound: the Figure 9 ordering must hold.
  auto step_ms = [](MechanismKind kind) {
    TrainingConfig config;
    config.model = models::Fcn5();
    config.num_machines = 2;
    config.batch_size = 8;
    config.mechanism = kind;
    TrainingDriver driver(config);
    CHECK_OK(driver.Initialize());
    auto ms = driver.MeasureStepTimeMs(3);
    CHECK(ms.ok()) << ms.status();
    return *ms;
  };
  const double zerocp = step_ms(MechanismKind::kRdmaZeroCopy);
  const double cp = step_ms(MechanismKind::kRdmaCp);
  const double rpc_rdma = step_ms(MechanismKind::kGrpcRdma);
  const double rpc_tcp = step_ms(MechanismKind::kGrpcTcp);
  EXPECT_LT(zerocp, cp);
  EXPECT_LT(cp, rpc_rdma);
  EXPECT_LT(rpc_rdma, rpc_tcp);
}

TEST(TrainingDriverTest, LocalModeFasterSmallClusterSlower) {
  // With 1 machine the distributed setup still pays loopback communication;
  // local mode does not (Figure 11's Local line vs 1-server distributed).
  TrainingConfig local;
  local.model = models::Fcn5();
  local.num_machines = 1;
  local.batch_size = 32;
  local.local_only = true;
  TrainingDriver local_driver(local);
  ASSERT_TRUE(local_driver.Initialize().ok());
  auto local_ms = local_driver.MeasureStepTimeMs(3);
  ASSERT_TRUE(local_ms.ok());

  TrainingConfig dist = local;
  dist.local_only = false;
  dist.mechanism = MechanismKind::kRdmaZeroCopy;
  TrainingDriver dist_driver(dist);
  ASSERT_TRUE(dist_driver.Initialize().ok());
  auto dist_ms = dist_driver.MeasureStepTimeMs(3);
  ASSERT_TRUE(dist_ms.ok());
  EXPECT_LT(*local_ms, *dist_ms);
}

TEST(TrainingDriverTest, GpuDirectReducesStepTime) {
  auto step_ms = [](bool gdr) {
    TrainingConfig config;
    config.model = models::Fcn5();
    config.num_machines = 2;
    config.batch_size = 8;
    config.mechanism = MechanismKind::kRdmaZeroCopy;
    config.tensors_on_gpu = true;
    config.gpudirect = gdr;
    TrainingDriver driver(config);
    CHECK_OK(driver.Initialize());
    auto ms = driver.MeasureStepTimeMs(3);
    CHECK(ms.ok()) << ms.status();
    return *ms;
  };
  const double without_gdr = step_ms(false);
  const double with_gdr = step_ms(true);
  EXPECT_LT(with_gdr, without_gdr);
}

TEST(BuildGraphTest, AllReduceGraphHasPerWorkerReplicasAndNoPs) {
  ModelSpec model = models::Fcn5();
  graph::Graph graph;
  ASSERT_TRUE(BuildAllReduceGraph(model, 2, 8, &graph).ok());
  int variables = 0, applies = 0;
  for (const auto& node : graph.nodes()) {
    // Everything lives on a worker — no PS devices, no cross-device edges.
    EXPECT_EQ(node->device().rfind("worker:", 0), 0u) << node->device();
    if (node->op() == "Variable") ++variables;
    if (node->op() == "ApplySgd") ++applies;
  }
  // Each worker holds its own replica of all 10 variables and applies locally.
  EXPECT_EQ(variables, 2 * 10);
  EXPECT_EQ(applies, 2 * 10);
}

TEST(TrainingDriverTest, AllReduceModeSmokeTest) {
  TrainingConfig config;
  config.model = models::Fcn5();
  config.num_machines = 2;
  config.batch_size = 8;
  config.mechanism = MechanismKind::kRdmaZeroCopy;
  config.mode = TrainingMode::kAllReduce;
  TrainingDriver driver(config);
  ASSERT_TRUE(driver.Initialize().ok());
  ASSERT_NE(driver.collective(), nullptr);
  auto ms = driver.MeasureStepTimeMs(3);
  ASSERT_TRUE(ms.ok()) << ms.status();
  EXPECT_GT(*ms, 1.0);
  EXPECT_LT(*ms, 10'000);
  // One all-reduce per step: 2 warmups + 3 measured.
  EXPECT_EQ(driver.collective()->stats().allreduces, 5u);
}

TEST(TrainingDriverTest, GrpcRdmaFailsOnSentenceEmbedding) {
  // Figure 10(c): no gRPC.RDMA curve because TF crashed on the >1 GB tensor.
  TrainingConfig config;
  config.model = models::SentenceEmbedding();
  config.num_machines = 2;
  config.batch_size = 8;
  config.mechanism = MechanismKind::kGrpcRdma;
  TrainingDriver driver(config);
  Status status = driver.Initialize();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("1 GB"), std::string::npos) << status;
}

}  // namespace
}  // namespace train
}  // namespace rdmadl
