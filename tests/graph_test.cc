#include <gtest/gtest.h>

#include "src/graph/graph.h"
#include "src/graph/op_registry.h"
#include "src/graph/partition.h"
#include "src/ops/kernel.h"

namespace rdmadl {
namespace graph {
namespace {

using tensor::DType;
using tensor::TensorShape;

class GraphTest : public ::testing::Test {
 protected:
  void SetUp() override { ops::RegisterStandardOps(); }
  Graph g_;
};

TEST_F(GraphTest, AddNodeAndFind) {
  auto a = g_.AddNode("a", "Const", std::vector<Node*>{});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(g_.FindNode("a"), *a);
  EXPECT_EQ(g_.FindNode("missing"), nullptr);
  EXPECT_EQ((*a)->id(), 0);
  EXPECT_EQ((*a)->op(), "Const");
}

TEST_F(GraphTest, DuplicateNameRejected) {
  ASSERT_TRUE(g_.AddNode("a", "Const", std::vector<Node*>{}).ok());
  EXPECT_EQ(g_.AddNode("a", "Const", std::vector<Node*>{}).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(GraphTest, EmptyNameRejected) {
  EXPECT_FALSE(g_.AddNode("", "Const", std::vector<Node*>{}).ok());
}

TEST_F(GraphTest, InputsRecordConsumers) {
  Node* a = *g_.AddNode("a", "Const", std::vector<Node*>{});
  Node* b = *g_.AddNode("b", "Identity", {a});
  ASSERT_EQ(a->consumers().size(), 1u);
  EXPECT_EQ(a->consumers()[0], b);
  ASSERT_EQ(b->inputs().size(), 1u);
  EXPECT_EQ(b->inputs()[0].node, a);
}

TEST_F(GraphTest, TopologicalOrderRespectsEdges) {
  Node* a = *g_.AddNode("a", "Const", std::vector<Node*>{});
  Node* b = *g_.AddNode("b", "Identity", {a});
  Node* c = *g_.AddNode("c", "Identity", {b});
  Node* d = *g_.AddNode("d", "Add", {a, c});
  auto order = g_.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  std::vector<Node*> nodes = *order;
  auto pos = [&](Node* n) {
    return std::find(nodes.begin(), nodes.end(), n) - nodes.begin();
  };
  EXPECT_LT(pos(a), pos(b));
  EXPECT_LT(pos(b), pos(c));
  EXPECT_LT(pos(c), pos(d));
}

TEST_F(GraphTest, ControlEdgesCountForOrdering) {
  Node* a = *g_.AddNode("a", "Const", std::vector<Node*>{});
  Node* b = *g_.AddNode("b", "Const", std::vector<Node*>{});
  ASSERT_TRUE(g_.AddControlEdge(a, b).ok());
  auto order = g_.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ((*order)[0], a);
  EXPECT_EQ((*order)[1], b);
}

TEST_F(GraphTest, ControlEdgeValidation) {
  Node* a = *g_.AddNode("a", "Const", std::vector<Node*>{});
  EXPECT_FALSE(g_.AddControlEdge(a, a).ok());
  EXPECT_FALSE(g_.AddControlEdge(nullptr, a).ok());
}

TEST_F(GraphTest, AttrRoundTrip) {
  Node* a = *g_.AddNode("a", "Const", std::vector<Node*>{});
  a->SetAttr("shape", TensorShape{3, 4});
  a->SetAttr("fill_value", 2.5);
  a->SetAttr("label", std::string("hello"));
  a->SetAttr("count", int64_t{7});
  a->SetAttr("flag", true);
  EXPECT_EQ(a->GetAttr<TensorShape>("shape"), TensorShape({3, 4}));
  EXPECT_EQ(a->GetAttr<double>("fill_value"), 2.5);
  EXPECT_EQ(a->GetAttr<std::string>("label"), "hello");
  EXPECT_EQ(a->GetAttr<int64_t>("count"), 7);
  EXPECT_TRUE(a->GetAttr<bool>("flag"));
  EXPECT_EQ(a->GetAttrOr<int64_t>("missing", 42), 42);
  EXPECT_TRUE(a->HasAttr("shape"));
  EXPECT_FALSE(a->HasAttr("nope"));
}

TEST_F(GraphTest, OpRegistryFindsStandardOps) {
  OpRegistry* reg = OpRegistry::Global();
  EXPECT_NE(reg->Find("MatMul"), nullptr);
  EXPECT_NE(reg->Find("Variable"), nullptr);
  EXPECT_NE(reg->Find("_Send"), nullptr);
  EXPECT_NE(reg->Find("_Recv"), nullptr);
  EXPECT_EQ(reg->Find("NoSuchOp"), nullptr);
  EXPECT_TRUE(reg->Find("Variable")->is_stateful);
  EXPECT_FALSE(reg->Find("MatMul")->is_stateful);
}

TEST_F(GraphTest, MatMulShapeInference) {
  Node* a = *g_.AddNode("a", "Const", std::vector<Node*>{});
  Node* b = *g_.AddNode("b", "Const", std::vector<Node*>{});
  Node* mm = *g_.AddNode("mm", "MatMul", {a, b});
  const OpDef* def = OpRegistry::Global()->Find("MatMul");
  TensorShape out;
  ASSERT_TRUE(def->shape_fn(*mm, {TensorShape{4, 8}, TensorShape{8, 16}}, &out).ok());
  EXPECT_EQ(out, TensorShape({4, 16}));

  // Transposes.
  mm->SetAttr("transpose_a", true);
  ASSERT_TRUE(def->shape_fn(*mm, {TensorShape{8, 4}, TensorShape{8, 16}}, &out).ok());
  EXPECT_EQ(out, TensorShape({4, 16}));

  // Unknown batch dim propagates.
  mm->SetAttr("transpose_a", false);
  ASSERT_TRUE(
      def->shape_fn(*mm, {TensorShape{tensor::kUnknownDim, 8}, TensorShape{8, 16}}, &out)
          .ok());
  EXPECT_EQ(out.dim(0), tensor::kUnknownDim);
  EXPECT_EQ(out.dim(1), 16);

  // Mismatched inner dims rejected.
  EXPECT_FALSE(def->shape_fn(*mm, {TensorShape{4, 8}, TensorShape{9, 16}}, &out).ok());
}

TEST_F(GraphTest, Conv2DShapeInference) {
  Node* conv = *g_.AddNode("conv", "Conv2D", std::vector<Node*>{});
  conv->SetAttr("stride", int64_t{2});
  conv->SetAttr("padding", std::string("same"));
  const OpDef* def = OpRegistry::Global()->Find("Conv2D");
  TensorShape out;
  ASSERT_TRUE(
      def->shape_fn(*conv, {TensorShape{32, 224, 224, 3}, TensorShape{7, 7, 3, 64}}, &out)
          .ok());
  EXPECT_EQ(out, TensorShape({32, 112, 112, 64}));
}

TEST_F(GraphTest, PartitionSingleDeviceNoTransfers) {
  Node* a = *g_.AddNode("a", "Const", std::vector<Node*>{});
  Node* b = *g_.AddNode("b", "Identity", {a});
  a->set_device("worker:0");
  b->set_device("worker:0");
  auto result = PartitionGraph(g_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->partitions.size(), 1u);
  EXPECT_TRUE(result->transfers.empty());
  EXPECT_EQ(result->partitions[0].graph->num_nodes(), 2);
}

TEST_F(GraphTest, PartitionInsertsSendRecvOnCrossDeviceEdge) {
  Node* w = *g_.AddNode("weight", "Variable", std::vector<Node*>{});
  Node* use = *g_.AddNode("use", "Identity", {w});
  w->set_device("ps:0");
  w->set_output_shape(TensorShape{128, 128});
  use->set_device("worker:0");
  auto result = PartitionGraph(g_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->partitions.size(), 2u);
  ASSERT_EQ(result->transfers.size(), 1u);
  const TransferEdge& edge = result->transfers[0];
  EXPECT_EQ(edge.src_device, "ps:0");
  EXPECT_EQ(edge.dst_device, "worker:0");
  EXPECT_EQ(edge.producer, "weight");
  EXPECT_EQ(edge.shape, TensorShape({128, 128}));

  // The send node lives in the ps partition and consumes the weight copy.
  Graph* ps = nullptr;
  Graph* worker = nullptr;
  for (auto& part : result->partitions) {
    if (part.device == "ps:0") ps = part.graph.get();
    if (part.device == "worker:0") worker = part.graph.get();
  }
  ASSERT_NE(ps, nullptr);
  ASSERT_NE(worker, nullptr);
  Node* send = ps->FindNode(edge.send_node);
  ASSERT_NE(send, nullptr);
  EXPECT_EQ(send->op(), "_Send");
  EXPECT_EQ(send->inputs()[0].node->name(), "weight");
  Node* recv = worker->FindNode(edge.recv_node);
  ASSERT_NE(recv, nullptr);
  EXPECT_EQ(recv->op(), "_Recv");
  EXPECT_EQ(recv->output_shape(), TensorShape({128, 128}));
  // The consumer reads from the recv node.
  Node* use_copy = worker->FindNode("use");
  ASSERT_NE(use_copy, nullptr);
  EXPECT_EQ(use_copy->inputs()[0].node, recv);
}

TEST_F(GraphTest, PartitionSharesRecvAcrossConsumersOnSameDevice) {
  Node* w = *g_.AddNode("weight", "Variable", std::vector<Node*>{});
  Node* u1 = *g_.AddNode("u1", "Identity", {w});
  Node* u2 = *g_.AddNode("u2", "Identity", {w});
  w->set_device("ps:0");
  u1->set_device("worker:0");
  u2->set_device("worker:0");
  auto result = PartitionGraph(g_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->transfers.size(), 1u);  // One transfer feeds both consumers.
}

TEST_F(GraphTest, PartitionSeparateTransfersPerDestinationDevice) {
  Node* w = *g_.AddNode("weight", "Variable", std::vector<Node*>{});
  Node* u1 = *g_.AddNode("u1", "Identity", {w});
  Node* u2 = *g_.AddNode("u2", "Identity", {w});
  w->set_device("ps:0");
  u1->set_device("worker:0");
  u2->set_device("worker:1");
  auto result = PartitionGraph(g_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->transfers.size(), 2u);
}

TEST_F(GraphTest, PartitionRequiresPlacement) {
  Node* a = *g_.AddNode("a", "Const", std::vector<Node*>{});
  (void)a;
  EXPECT_EQ(PartitionGraph(g_).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(GraphTest, PartitionRejectsCrossDeviceControlEdge) {
  Node* a = *g_.AddNode("a", "Const", std::vector<Node*>{});
  Node* b = *g_.AddNode("b", "Const", std::vector<Node*>{});
  a->set_device("ps:0");
  b->set_device("worker:0");
  ASSERT_TRUE(g_.AddControlEdge(a, b).ok());
  EXPECT_EQ(PartitionGraph(g_).status().code(), StatusCode::kUnimplemented);
}

TEST_F(GraphTest, PartitionRoundTripPreservesAttrs) {
  Node* a = *g_.AddNode("a", "Const", std::vector<Node*>{});
  a->set_device("worker:0");
  a->SetAttr("shape", TensorShape{2});
  a->SetAttr("fill_value", 3.0);
  auto result = PartitionGraph(g_);
  ASSERT_TRUE(result.ok());
  Node* copy = result->partitions[0].graph->FindNode("a");
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->GetAttr<double>("fill_value"), 3.0);
  EXPECT_EQ(copy->GetAttr<TensorShape>("shape"), TensorShape({2}));
}

}  // namespace
}  // namespace graph
}  // namespace rdmadl
