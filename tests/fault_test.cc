// Seeded chaos suite for the fault-injection subsystem (ISSUE 2).
//
// Crosses the injector's fault classes {segment drops, latency spikes,
// flapping links, fail-stop host crashes} with the stack's transfer paths
// {fabric transfer, zero-copy session step, RPC mechanism step, ring
// all-reduce, PS training step} and asserts the typed failure/recovery
// contract everywhere:
//
//   * transient faults (drops, spikes, flaps) are absorbed by IB-style
//     transport retry / reservation queueing and the operation completes
//     with bit-exact payloads;
//   * unrecoverable faults (dead host, exhausted retry budget) surface as a
//     typed Status within the configured virtual-time budget — the
//     simulator never hangs;
//   * everything is deterministic: two runs with the same fault seed produce
//     byte-identical traces.
//
// The seed is RDMADL_FAULT_SEED when set (scripts/check.sh --chaos sweeps
// it), else a fixed default so plain ctest runs are reproducible.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/check/explore.h"
#include "src/check/testing.h"
#include "src/collective/collective.h"
#include "src/comm/rpc_mechanism.h"
#include "src/comm/zerocopy_mechanism.h"
#include "src/models/model_spec.h"
#include "src/net/topology.h"
#include "src/sim/fault.h"
#include "src/sim/trace.h"
#include "src/train/ps_training.h"
#include "src/util/strings.h"

namespace rdmadl {

// `ctest -L check` runs this suite with RDMADL_CHECK=1: every test executes
// under a fresh RdmaCheck and fails on any protocol diagnostic.
RDMADL_REGISTER_PROTOCOL_CHECK_LISTENER();

namespace {

using collective::CollectiveGroup;
using collective::CollectiveOptions;
using collective::DoneCallback;
using graph::Graph;
using graph::Node;
using runtime::Cluster;
using runtime::ClusterOptions;
using runtime::DistributedSession;
using runtime::SessionOptions;
using sim::FaultInjector;
using sim::LinkFaultSpec;
using tensor::Tensor;
using tensor::TensorShape;

uint64_t FaultSeedFromEnv(uint64_t default_seed) {
  const char* env = std::getenv("RDMADL_FAULT_SEED");
  if (env == nullptr || *env == '\0') return default_seed;
  return std::strtoull(env, nullptr, 10);
}

bool IsTypedTransportFailure(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kAborted ||
         status.code() == StatusCode::kDeadlineExceeded;
}

// ---------------------------------------------------------------------------
// Session-level helpers: a 2-process cluster moving one variable ps -> worker.
// ---------------------------------------------------------------------------

struct SessionWorld {
  explicit SessionWorld(int64_t elements) {
    ClusterOptions options;
    options.num_machines = 2;
    options.mode = ops::ComputeMode::kReal;
    options.process_defaults.rdma_arena_bytes = 32ull << 20;
    cluster = std::make_unique<Cluster>(options);
    CHECK_OK(cluster->AddProcess("ps:0", 0).status());
    CHECK_OK(cluster->AddProcess("worker:0", 1).status());
    ops::RegisterStandardOps();
    Node* w = *graph.AddNode("w", "Variable", std::vector<Node*>{});
    w->SetAttr("shape", TensorShape{elements});
    w->SetAttr("init", std::string("uniform"));
    w->set_device("ps:0");
    Node* consume = *graph.AddNode("consume", "ReduceSum", {w});
    consume->set_device("worker:0");
  }

  // The source-side checksum the worker's ReduceSum must reproduce.
  double ExpectedSum() const {
    const Tensor& source = cluster->host("ps:0")->resources()->GetVariable("w");
    double expected = 0;
    for (int64_t i = 0; i < source.num_elements(); ++i) expected += source.at<float>(i);
    return expected;
  }

  void CheckStepDeliveredExactBytes(DistributedSession* session) {
    const double expected = ExpectedSum();
    const Tensor* out = session->executor_for("worker:0")->OutputOf("consume");
    ASSERT_NE(out, nullptr);
    EXPECT_NEAR(out->at<float>(0), expected, std::abs(expected) * 1e-5 + 1e-3);
  }

  std::unique_ptr<Cluster> cluster;
  Graph graph;
};

// ---------------------------------------------------------------------------
// Collective-level helpers (mirrors collective_test's World).
// ---------------------------------------------------------------------------

struct World {
  explicit World(int num_hosts)
      : fabric(&simulator, cost, num_hosts), rdma(&fabric), directory(&rdma) {}
  World(int num_hosts, const net::TopologyConfig& topo)
      : fabric(&simulator, cost, num_hosts, topo), rdma(&fabric), directory(&rdma) {}

  std::unique_ptr<CollectiveGroup> MakeGroup(int n, uint64_t max_elements,
                                             CollectiveOptions options = {}) {
    std::vector<int> hosts;
    for (int i = 0; i < n; ++i) hosts.push_back(i);
    auto group = CollectiveGroup::Create(&directory, hosts, max_elements, options);
    CHECK(group.ok()) << group.status();
    return std::move(group).value();
  }

  sim::Simulator simulator;
  net::CostModel cost;
  net::Fabric fabric;
  rdma::RdmaFabric rdma;
  device::DeviceDirectory directory;
};

void FillInputs(CollectiveGroup* group, uint64_t count) {
  for (int r = 0; r < group->size(); ++r) {
    float* data = group->data(r);
    ASSERT_NE(data, nullptr);
    for (uint64_t i = 0; i < group->max_elements(); ++i) {
      data[i] = i < count ? static_cast<float>((r + 1) * (i % 7 + 1)) : -1.0f;
    }
  }
}

float ExpectedRankSum(int n, uint64_t i) {
  return static_cast<float>((i % 7 + 1) * n * (n + 1) / 2);
}

Status RunOp(World* world, const std::function<void(DoneCallback)>& op) {
  bool fired = false;
  Status status = Internal("done callback never ran");
  op([&](const Status& s) {
    fired = true;
    status = s;
  });
  Status run = world->simulator.Run();
  CHECK_OK(run);
  CHECK(fired);
  return status;
}

// ---------------------------------------------------------------------------
// Drop x zero-copy transfer: the dropped segments are retransmitted by the
// QP's transport retry and the step completes with correct bytes (acceptance
// criterion a).
// ---------------------------------------------------------------------------

// Wiring check for the checker CI mode: when RDMADL_CHECK=1 the listener
// must have installed a process-wide RdmaCheck before this body runs (a
// silently-inert listener would make every `ctest -L check` pass vacuously).
TEST(ProtocolCheckListenerTest, CheckerInstalledExactlyWhenEnvSet) {
  EXPECT_EQ(check::RdmaCheck::Current() != nullptr, check::CheckEnabledFromEnv());
}

TEST(FaultMatrixTest, DroppedSegmentsAreRetriedAndZeroCopyStepDeliversExactBytes) {
  SessionWorld world(100'000);
  auto mechanism =
      std::make_unique<comm::ZeroCopyRdmaMechanism>(world.cluster.get(), comm::ZeroCopyOptions{});
  DistributedSession session(world.cluster.get(), mechanism.get(), &world.graph,
                             SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  // Step 0 traces allocations, step 1 runs the first static-protocol
  // transfer; both clean so the protocol is established before faults start.
  ASSERT_TRUE(session.RunStep().ok());
  ASSERT_TRUE(session.RunStep().ok());

  FaultInjector injector(FaultSeedFromEnv(11));
  LinkFaultSpec spec;
  spec.drop_first_n = 2;  // Lose the first two wire segments ps -> worker.
  injector.SetLinkFault(0, 1, spec);
  world.cluster->fabric()->SetFaultInjector(&injector);

  ASSERT_TRUE(session.RunStep().ok());
  world.CheckStepDeliveredExactBytes(&session);
  // Both forced drops were actually injected (and therefore retried).
  EXPECT_EQ(injector.stats().forced_drops, 2u);

  // With the forced drops consumed the link is healthy again.
  ASSERT_TRUE(session.RunStep().ok());
  world.CheckStepDeliveredExactBytes(&session);
}

// ---------------------------------------------------------------------------
// Drop x RPC mechanism: the RPC path has no transport retry below it in TCP
// mode, so a dropped segment surfaces as a typed step failure — and the next
// step recovers cleanly.
// ---------------------------------------------------------------------------

TEST(FaultMatrixTest, DroppedRpcTransferFailsStepTypedThenRecovers) {
  SessionWorld world(50'000);
  auto mechanism = std::make_unique<comm::RpcMechanism>(world.cluster.get(), net::Plane::kTcp);
  DistributedSession session(world.cluster.get(), mechanism.get(), &world.graph,
                             SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  ASSERT_TRUE(session.RunStep().ok());

  FaultInjector injector(FaultSeedFromEnv(12));
  LinkFaultSpec spec;
  spec.drop_first_n = 1;
  injector.SetLinkFault(0, 1, spec);
  world.cluster->fabric()->SetFaultInjector(&injector);

  const Status failed = session.RunStep();
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(IsTypedTransportFailure(failed)) << failed;
  EXPECT_EQ(injector.stats().forced_drops, 1u);

  // The forced drop is consumed; the mechanism's per-step state reset lets
  // the very next step succeed.
  ASSERT_TRUE(world.cluster->simulator()->Run().ok());
  ASSERT_TRUE(session.RunStep().ok());
  world.CheckStepDeliveredExactBytes(&session);
}

// ---------------------------------------------------------------------------
// Spike x fabric transfer: a latency spike delays completion by exactly the
// configured amount and never fails the transfer.
// ---------------------------------------------------------------------------

TEST(FaultMatrixTest, LatencySpikeDelaysTransferWithoutFailingIt) {
  const uint64_t bytes = 1 << 20;
  auto run_transfer = [&](FaultInjector* injector) {
    sim::Simulator simulator;
    net::CostModel cost;
    net::Fabric fabric(&simulator, cost, 2);
    if (injector != nullptr) fabric.SetFaultInjector(injector);
    int64_t completed_at = -1;
    bool ok = false;
    fabric.Transfer(0, 1, bytes, net::Plane::kRdma, 0, nullptr, [&](Status s) {
      ok = s.ok();
      completed_at = simulator.Now();
    });
    CHECK_OK(simulator.Run());
    CHECK(ok);
    return completed_at;
  };

  const int64_t baseline = run_transfer(nullptr);

  FaultInjector injector(FaultSeedFromEnv(13));
  LinkFaultSpec spec;
  spec.spike_probability = 1.0;
  spec.spike_min_ns = 2'000'000;  // Degenerate range: the spike is exactly 2 ms
  spec.spike_max_ns = 2'000'000;  // regardless of what the rng draws.
  injector.SetLinkFault(0, 1, spec);
  const int64_t spiked = run_transfer(&injector);

  EXPECT_EQ(spiked - baseline, 2'000'000);
  EXPECT_GE(injector.stats().latency_spikes, 1u);
}

// ---------------------------------------------------------------------------
// Flap x ring all-reduce: down windows queue reservations instead of failing
// them, so a flapping NIC port slows the collective but the sums stay exact.
// ---------------------------------------------------------------------------

TEST(FaultMatrixTest, FlappingLinkSlowsRingAllReduceButSumsStayExact) {
  const int n = 4;
  const uint64_t count = 1024;

  int64_t baseline_ns = 0;
  {
    World world(n);
    auto group = world.MakeGroup(n, count);
    FillInputs(group.get(), count);
    ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                  group->AllReduce(count, std::move(done));
                }).ok());
    baseline_ns = world.simulator.Now();
  }

  World world(n);
  FaultInjector injector(FaultSeedFromEnv(14));
  injector.FlapLink(/*host=*/1, /*first_down_ns=*/20'000, /*down_ns=*/300'000,
                    /*up_ns=*/150'000, /*cycles=*/3);
  world.fabric.SetFaultInjector(&injector);
  auto group = world.MakeGroup(n, count);
  FillInputs(group.get(), count);
  ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                group->AllReduce(count, std::move(done));
              }).ok());
  for (int r = 0; r < n; ++r) {
    const float* data = group->data(r);
    for (uint64_t i = 0; i < count; ++i) {
      ASSERT_EQ(data[i], ExpectedRankSum(n, i)) << "rank=" << r << " i=" << i;
    }
  }
  EXPECT_GT(world.simulator.Now(), baseline_ns);
}

// ---------------------------------------------------------------------------
// Crash x ring all-reduce: a peer that fail-stops mid-group turns the next
// collective into a typed error within the op's virtual-time budget.
// ---------------------------------------------------------------------------

TEST(FaultMatrixTest, CrashedPeerFailsCollectiveTypedWithinBudget) {
  World world(2);
  CollectiveOptions options;
  options.op_timeout_ns = 20'000'000;  // 20 ms budget.
  auto group = world.MakeGroup(2, 512, options);
  FillInputs(group.get(), 512);
  ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                group->AllReduce(512, std::move(done));
              }).ok());

  FaultInjector injector(FaultSeedFromEnv(15));
  injector.CrashHost(1, world.simulator.Now() + 1'000);
  world.fabric.SetFaultInjector(&injector);

  const int64_t start = world.simulator.Now();
  FillInputs(group.get(), 512);
  const Status failed = RunOp(&world, [&](DoneCallback done) {
    group->AllReduce(512, std::move(done));
  });
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(IsTypedTransportFailure(failed)) << failed;
  // The failure surfaced within the op budget (plus quiesce slack); the
  // simulator did not hang virtual time waiting for a flag byte that will
  // never arrive.
  EXPECT_LE(world.simulator.Now(), start + 4 * options.op_timeout_ns);
}

// ---------------------------------------------------------------------------
// Crash x PS training step: RunStep surfaces a typed error naming the dead
// host within the configured step timeout (acceptance criterion b).
// ---------------------------------------------------------------------------

TEST(FaultMatrixTest, CrashedPsHostYieldsTypedErrorFromRunStepWithinTimeout) {
  train::TrainingConfig config;
  config.model = models::Fcn5();
  config.num_machines = 2;
  config.batch_size = 8;
  config.mechanism = train::MechanismKind::kRdmaZeroCopy;
  config.step_timeout_ns = 200'000'000;  // 200 ms virtual budget per step.
  config.max_step_retries = 2;
  train::TrainingDriver driver(config);
  ASSERT_TRUE(driver.Initialize().ok());
  ASSERT_TRUE(driver.RunStep().ok());  // Healthy step before the crash.

  // Machine 1 (its worker and PS processes) fail-stops just after now. The
  // injector is attached after Initialize so warm-up ran fault-free.
  FaultInjector injector(FaultSeedFromEnv(16));
  const int64_t t_crash = driver.cluster()->simulator()->Now() + 10'000;
  injector.CrashHost(1, t_crash);
  driver.cluster()->fabric()->SetFaultInjector(&injector);

  const Status failed = driver.RunStep();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable) << failed;
  EXPECT_NE(failed.message().find("crashed"), std::string::npos) << failed;
  // Bounded virtual time: one step budget to detect, plus quiesce drain.
  EXPECT_LE(driver.cluster()->simulator()->Now(), t_crash + 4 * config.step_timeout_ns);
}

// ---------------------------------------------------------------------------
// Determinism: the same fault seed produces a byte-identical trace
// (acceptance criterion c).
// ---------------------------------------------------------------------------

TEST(FaultDeterminismTest, SameSeedProducesByteIdenticalTrace) {
  const uint64_t seed = FaultSeedFromEnv(7);
  auto run_once = [&](std::string* trace_json, std::string* status_str, int64_t* end_ns) {
    sim::Tracer tracer;
    sim::Tracer::Install(&tracer);
    {
      World world(4);
      FaultInjector injector(seed);
      LinkFaultSpec spec;
      spec.drop_probability = 0.02;
      spec.spike_probability = 0.5;
      spec.spike_min_ns = 10'000;
      spec.spike_max_ns = 100'000;
      injector.SetDefaultLinkFault(spec);
      world.fabric.SetFaultInjector(&injector);
      CollectiveOptions options;
      options.op_timeout_ns = 1'000'000'000;
      auto group = world.MakeGroup(4, 2048, options);
      FillInputs(group.get(), 2048);
      const Status status = RunOp(&world, [&](DoneCallback done) {
        group->AllReduce(2048, std::move(done));
      });
      *status_str = status.ToString();
      *end_ns = world.simulator.Now();
      *trace_json = tracer.ToJson();
    }
    sim::Tracer::Install(nullptr);
  };

  std::string trace1, trace2, status1, status2;
  int64_t end1 = 0, end2 = 0;
  run_once(&trace1, &status1, &end1);
  run_once(&trace2, &status2, &end2);

  EXPECT_GT(trace1.size(), 2u) << "trace should not be empty";
  EXPECT_EQ(trace1, trace2);
  EXPECT_EQ(status1, status2);
  EXPECT_EQ(end1, end2);
}

// ---------------------------------------------------------------------------
// Seeded chaos sweep: drops + spikes + a flapping port, seed from
// RDMADL_FAULT_SEED (scripts/check.sh --chaos runs seeds 1..10). The
// invariant: every attempt either completes with exact sums or fails with a
// typed transport error, and a bounded number of retries always converges
// once the flap schedule has drained.
// ---------------------------------------------------------------------------

TEST(ChaosSweepTest, RandomFaultsEitherCompleteExactlyOrFailTyped) {
  const uint64_t seed = FaultSeedFromEnv(1);
  const int n = 4;
  const uint64_t count = 1024;

  World world(n);
  FaultInjector injector(seed);
  LinkFaultSpec spec;
  spec.drop_probability = 0.01;
  spec.spike_probability = 0.3;
  spec.spike_min_ns = 10'000;
  spec.spike_max_ns = 200'000;
  injector.SetDefaultLinkFault(spec);
  injector.FlapLink(static_cast<int>(seed % n), /*first_down_ns=*/50'000,
                    /*down_ns=*/150'000, /*up_ns=*/100'000, /*cycles=*/2);
  world.fabric.SetFaultInjector(&injector);

  CollectiveOptions options;
  options.op_timeout_ns = 2'000'000'000;
  auto group = world.MakeGroup(n, count, options);

  bool succeeded = false;
  for (int attempt = 0; attempt < 5 && !succeeded; ++attempt) {
    // Re-seed rank data every attempt: the ring reduces in place, so a failed
    // attempt leaves partially reduced vectors behind.
    FillInputs(group.get(), count);
    const Status status = RunOp(&world, [&](DoneCallback done) {
      group->AllReduce(count, std::move(done));
    });
    if (status.ok()) {
      for (int r = 0; r < n; ++r) {
        const float* data = group->data(r);
        for (uint64_t i = 0; i < count; ++i) {
          ASSERT_EQ(data[i], ExpectedRankSum(n, i))
              << "seed=" << seed << " attempt=" << attempt << " rank=" << r << " i=" << i;
        }
      }
      succeeded = true;
    } else {
      EXPECT_TRUE(IsTypedTransportFailure(status)) << "seed=" << seed << ": " << status;
      ASSERT_TRUE(group->ResetTransport().ok());
    }
  }
  EXPECT_TRUE(succeeded) << "seed=" << seed << " never converged in 5 attempts";
}

// ---------------------------------------------------------------------------
// Hierarchical / in-network chaos (ISSUE 7): the multi-level schedules obey
// the same contract as the flat ring — transient fabric faults are absorbed
// with bit-exact results, fail-stop crashes surface as typed errors within
// the op budget, and nothing ever hangs virtual time.
// ---------------------------------------------------------------------------

net::TopologyConfig RackTopo(int hosts_per_rack, bool switch_reduce = false) {
  net::TopologyConfig config;
  config.hosts_per_rack = hosts_per_rack;
  config.oversubscription = 4.0;
  config.switch_reduce = switch_reduce;
  config.switch_reduce_window_bytes = 1024;  // Many rounds even when small.
  return config;
}

// Rack-leader crash: the leader is on the critical path of all three levels
// (tree root, spine ring member, broadcast source). A dead leader must fail
// the op typed within the budget, not stall the pollers forever.
TEST(HierarchicalChaosTest, RackLeaderCrashFailsHierarchicalTypedWithinBudget) {
  World world(8, RackTopo(4));
  CollectiveOptions options;
  options.algorithm = collective::Algorithm::kHierarchical;
  options.op_timeout_ns = 20'000'000;  // 20 ms budget.
  auto group = world.MakeGroup(8, 2048, options);
  FillInputs(group.get(), 2048);
  ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                group->AllReduce(2048, std::move(done));
              }).ok());

  // Host 4 leads the second rack (ranks 4..7).
  FaultInjector injector(FaultSeedFromEnv(41));
  injector.CrashHost(4, world.simulator.Now() + 1'000);
  world.fabric.SetFaultInjector(&injector);

  const int64_t start = world.simulator.Now();
  FillInputs(group.get(), 2048);
  const Status failed = RunOp(&world, [&](DoneCallback done) {
    group->AllReduce(2048, std::move(done));
  });
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(IsTypedTransportFailure(failed)) << failed;
  EXPECT_LE(world.simulator.Now(), start + 4 * options.op_timeout_ns);
}

// Spine-link flap: scheduled down windows on every spine link stall the
// leader ring's cross-rack steps; reservations queue behind the window, the
// op completes exactly, and completion moves later by at least the outage.
// The tensor is sized so every cross-rack ring chunk exceeds the MTU —
// sub-MTU control messages bypass the shared-hop reservations by design.
TEST(HierarchicalChaosTest, SpineLinkDownWindowDelaysHierarchicalButSumsStayExact) {
  const uint64_t count = 262144;  // 1 MB.
  int64_t baseline_ns = 0;
  {
    World world(8, RackTopo(4));
    CollectiveOptions options;
    options.algorithm = collective::Algorithm::kHierarchical;
    auto group = world.MakeGroup(8, count, options);
    FillInputs(group.get(), count);
    ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                  group->AllReduce(count, std::move(done));
                }).ok());
    baseline_ns = world.simulator.Now();
  }

  World world(8, RackTopo(4));
  net::Topology* topo = world.fabric.topology();
  ASSERT_NE(topo, nullptr);
  for (int i = 0; i < topo->num_spine_links(); ++i) {
    topo->spine_link(i)->AddDownWindow(0, 2 * baseline_ns);
  }
  CollectiveOptions options;
  options.algorithm = collective::Algorithm::kHierarchical;
  auto group = world.MakeGroup(8, count, options);
  FillInputs(group.get(), count);
  ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                group->AllReduce(count, std::move(done));
              }).ok());
  for (int r = 0; r < 8; ++r) {
    const float* data = group->data(r);
    for (uint64_t i = 0; i < count; ++i) {
      ASSERT_EQ(data[i], ExpectedRankSum(8, i)) << "rank=" << r << " i=" << i;
    }
  }
  EXPECT_GT(world.simulator.Now(), 2 * baseline_ns);
}

// Mid-handoff death: a non-leader that dies after the op started (during the
// tree -> ring -> broadcast window) poisons a write some poller is waiting
// on; the transfer refusal must fail the op typed within the budget.
TEST(HierarchicalChaosTest, MidOpHostDeathFailsHierarchicalTypedWithinBudget) {
  World world(8, RackTopo(4));
  CollectiveOptions options;
  options.algorithm = collective::Algorithm::kHierarchical;
  options.op_timeout_ns = 20'000'000;
  auto group = world.MakeGroup(8, 4096, options);
  FillInputs(group.get(), 4096);
  ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                group->AllReduce(4096, std::move(done));
              }).ok());

  // Host 6 (a mid-tree member of rack 1) dies 20 us into the next op: after
  // the first tree posts, before the broadcast completes.
  FaultInjector injector(FaultSeedFromEnv(42));
  const int64_t start = world.simulator.Now();
  injector.CrashHost(6, start + 20'000);
  world.fabric.SetFaultInjector(&injector);

  FillInputs(group.get(), 4096);
  const Status failed = RunOp(&world, [&](DoneCallback done) {
    group->AllReduce(4096, std::move(done));
  });
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(IsTypedTransportFailure(failed)) << failed;
  EXPECT_LE(world.simulator.Now(), start + 4 * options.op_timeout_ns);
}

// In-network + fail-stop: the switch stage refuses the window whose
// contributor is dead, naming the host; the failure is typed and the
// simulator never hangs between aggregation rounds.
TEST(HierarchicalChaosTest, ContributorCrashFailsInNetworkTypedNamingHost) {
  World world(8, RackTopo(4, /*switch_reduce=*/true));
  CollectiveOptions options;
  options.algorithm = collective::Algorithm::kInNetwork;
  options.op_timeout_ns = 50'000'000;
  auto group = world.MakeGroup(8, 4096, options);
  FillInputs(group.get(), 4096);
  ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                group->AllReduce(4096, std::move(done));
              }).ok());

  FaultInjector injector(FaultSeedFromEnv(43));
  const int64_t start = world.simulator.Now();
  injector.CrashHost(3, start + 10'000);
  world.fabric.SetFaultInjector(&injector);

  FillInputs(group.get(), 4096);
  const Status failed = RunOp(&world, [&](DoneCallback done) {
    group->AllReduce(4096, std::move(done));
  });
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(IsTypedTransportFailure(failed)) << failed;
  EXPECT_NE(failed.ToString().find("host3"), std::string::npos) << failed;
  EXPECT_LE(world.simulator.Now(), start + 4 * options.op_timeout_ns);
}

// Schedule-space exploration harness (ISSUE 9). `ctest -R fault_test_explore`
// runs Explore* with RDMADL_EXPLORE=16: the body below is replayed across tie
// permutations and bounded timing perturbations, each replay under a fresh
// RdmaCheck, and must stay clean on every schedule. Payload integrity is
// asserted inside the body so a retry path that corrupted bytes under some
// reordering would fail even though the canonical schedule passes.
TEST(ExploreHarnessTest, ExploreDroppedSegmentsRetryToCleanDelivery) {
  sim::ExploreResult result = check::ExploreForTest(
      "fault.drop-retry", [](sim::Simulator& simulator) -> Status {
        // Declared before the fabric so it outlives the raw pointer the
        // fabric keeps.
        sim::FaultInjector injector(/*seed=*/5);
        sim::LinkFaultSpec spec;
        spec.drop_first_n = 2;
        injector.SetLinkFault(0, 1, spec);
        net::CostModel cost;
        net::Fabric fabric(&simulator, cost, /*num_hosts=*/2);
        fabric.SetFaultInjector(&injector);
        rdma::RdmaFabric rdma(&fabric);
        device::DeviceDirectory directory(&rdma);
        auto src_dev = device::RdmaDevice::Create(&directory, /*num_cqs=*/2,
                                                  /*num_qps_per_peer=*/2, Endpoint{0, 7000});
        auto dst_dev = device::RdmaDevice::Create(&directory, /*num_cqs=*/2,
                                                  /*num_qps_per_peer=*/2, Endpoint{1, 7000});
        if (!src_dev.ok()) return src_dev.status();
        if (!dst_dev.ok()) return dst_dev.status();
        constexpr uint64_t kBytes = 256 << 10;
        auto src = (*src_dev)->AllocateMemRegion(kBytes);
        auto dst = (*dst_dev)->AllocateMemRegion(kBytes);
        if (!src.ok()) return src.status();
        if (!dst.ok()) return dst.status();
        std::memset(src->data(), 0xa5, kBytes);
        std::memset(dst->data(), 0, kBytes);
        auto channel = (*src_dev)->GetChannel((*dst_dev)->endpoint(), /*qp_idx=*/0);
        if (!channel.ok()) return channel.status();
        auto done = std::make_shared<bool>(false);
        auto status = std::make_shared<Status>(OkStatus());
        (*channel)->Memcpy(src->data(), src->lkey(), dst->Remote().addr, dst->rkey(), kBytes,
                           device::Direction::kLocalToRemote,
                           [done, status](const Status& s) {
                             *status = s;
                             *done = true;
                           });
        Status run = simulator.RunUntilPredicate([done] { return *done; });
        if (!run.ok()) return run;
        if (!status->ok()) return *status;
        const uint8_t* bytes = dst->data();
        for (uint64_t i = 0; i < kBytes; ++i) {
          if (bytes[i] != 0xa5) {
            return Internal(StrCat("byte ", i, " corrupt after transport retry"));
          }
        }
        return OkStatus();
      });
  EXPECT_FALSE(result.failure_found) << result.Summary();
  EXPECT_GE(result.stats.schedules_run, 1);
}

}  // namespace
}  // namespace rdmadl
