#include "src/comm/transfer_engine.h"

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/check/testing.h"
#include "src/collective/collective.h"
#include "src/net/fabric.h"
#include "src/rdma/verbs.h"
#include "src/sim/trace.h"
#include "src/tensor/extent_cache.h"

namespace rdmadl {
namespace comm {
namespace {

RDMADL_REGISTER_PROTOCOL_CHECK_LISTENER();

// Two-host world with one sending device (4 QP lanes) and one receiving
// device, both with real memory so delivered bytes can be inspected.
struct World {
  World() : fabric(&simulator, cost, 2), rdma(&fabric), directory(&rdma) {}
  explicit World(const net::CostModel& custom_cost)
      : cost(custom_cost), fabric(&simulator, cost, 2), rdma(&fabric), directory(&rdma) {}

  std::unique_ptr<device::RdmaDevice> MakeDevice(int host, int num_qps = 4) {
    auto dev = device::RdmaDevice::Create(&directory, /*num_cqs=*/2, num_qps,
                                          Endpoint{host, 7000});
    CHECK(dev.ok()) << dev.status();
    return std::move(dev).value();
  }

  sim::Simulator simulator;
  net::CostModel cost;
  net::Fabric fabric;
  rdma::RdmaFabric rdma;
  device::DeviceDirectory directory;
};

// The §3.2 contract every engine route must preserve: whenever the flag byte
// reads 1, the full payload has already landed.
struct FlagInvariant {
  World* world = nullptr;
  const uint8_t* flag = nullptr;
  const uint8_t* dst = nullptr;
  const uint8_t* expected = nullptr;
  uint64_t bytes = 0;
  const bool* stop = nullptr;
  bool flag_observed = false;
};

// Polls the invariant every 500 ns of virtual time until *stop. Each queued
// event owns a shared_ptr to the state (no self-referencing cycle), so a
// simulator torn down mid-poll frees everything.
void SchedulePoll(std::shared_ptr<FlagInvariant> inv) {
  sim::Simulator* simulator = &inv->world->simulator;
  simulator->ScheduleAfter(500, [inv]() {
    if (*inv->stop) return;
    if (*inv->flag == 1) {
      inv->flag_observed = true;
      EXPECT_EQ(std::memcmp(inv->dst, inv->expected, inv->bytes), 0)
          << "flag visible before the payload fully landed";
    }
    SchedulePoll(inv);
  });
}

std::shared_ptr<FlagInvariant> WatchFlag(World* world, const uint8_t* flag,
                                         const uint8_t* dst, const uint8_t* expected,
                                         uint64_t bytes, const bool* stop) {
  auto inv = std::make_shared<FlagInvariant>();
  inv->world = world;
  inv->flag = flag;
  inv->dst = dst;
  inv->expected = expected;
  inv->bytes = bytes;
  inv->stop = stop;
  SchedulePoll(inv);
  return inv;
}

TEST(TransferEngineTest, StripedWriteReassemblesExactlyAndFlagTrailsPayload) {
  net::CostModel cost;
  cost.rdma_qp_engine_bytes_per_sec = 12e9;  // Striping engages only with a
                                             // finite per-QP engine rate.
  World world(cost);
  auto src_dev = world.MakeDevice(0);
  auto dst_dev = world.MakeDevice(1);

  constexpr uint64_t kBytes = 8ull << 20;
  auto src = src_dev->AllocateMemRegion(kBytes);
  auto dst = dst_dev->AllocateMemRegion(kBytes);
  auto src_flag = src_dev->AllocateMemRegion(1);
  auto dst_flag = dst_dev->AllocateMemRegion(1);
  ASSERT_TRUE(src.ok() && dst.ok() && src_flag.ok() && dst_flag.ok());
  for (uint64_t i = 0; i < kBytes; ++i) src->data()[i] = static_cast<uint8_t>(i * 31 + 7);
  std::memset(dst->data(), 0, kBytes);
  src_flag->data()[0] = 1;
  dst_flag->data()[0] = 0;

  TransferEngineOptions options;
  options.stripe_threshold_bytes = 1 << 20;
  TransferEngine engine(src_dev.get(), options);

  TransferEngine::WriteDesc payload{src->data(), src->lkey(), dst->Remote().addr,
                                    dst->rkey(), kBytes, /*copy_bytes=*/true};
  TransferEngine::WriteDesc flag{src_flag->data(), src_flag->lkey(), dst_flag->Remote().addr,
                                 dst_flag->rkey(), 1, /*copy_bytes=*/true};

  bool done = false;
  bool stop = false;
  Status result = Internal("callback never fired");
  auto inv = WatchFlag(&world, dst_flag->data(), dst->data(), src->data(), kBytes, &stop);
  TransferEngine::Route route = engine.WriteWithFlag(
      dst_dev->endpoint(), payload, flag, /*lane_hint=*/0, [&](const Status& s) {
        done = true;
        result = s;
      });
  EXPECT_EQ(route, TransferEngine::Route::kStriped);
  ASSERT_TRUE(world.simulator.RunUntilPredicate([&] { return done; }).ok());
  // Let the poller observe the settled state, then stop it.
  ASSERT_TRUE(world.simulator.RunUntil(world.simulator.Now() + 1000).ok());
  stop = true;

  EXPECT_TRUE(result.ok()) << result;
  EXPECT_EQ(std::memcmp(dst->data(), src->data(), kBytes), 0);
  EXPECT_EQ(dst_flag->data()[0], 1);
  EXPECT_TRUE(inv->flag_observed);
  EXPECT_EQ(engine.stats().striped_writes, 1);
  // 8 MiB over 4 lanes at 2 MiB per MTU-aligned stripe.
  EXPECT_EQ(engine.stats().stripe_lane_writes, 4);
}

TEST(TransferEngineTest, CoalescedBatchSharesOneDoorbellAndKeepsFlagSemantics) {
  World world;
  auto src_dev = world.MakeDevice(0);
  auto dst_dev = world.MakeDevice(1);

  constexpr int kWrites = 4;
  constexpr uint64_t kSmall = 256;
  auto src = src_dev->AllocateMemRegion(kWrites * kSmall);
  auto dst = dst_dev->AllocateMemRegion(kWrites * kSmall);
  auto src_flag = src_dev->AllocateMemRegion(1);
  auto dst_flags = dst_dev->AllocateMemRegion(kWrites);
  ASSERT_TRUE(src.ok() && dst.ok() && src_flag.ok() && dst_flags.ok());
  for (uint64_t i = 0; i < kWrites * kSmall; ++i) {
    src->data()[i] = static_cast<uint8_t>(i * 13 + 5);
  }
  std::memset(dst->data(), 0, kWrites * kSmall);
  std::memset(dst_flags->data(), 0, kWrites);
  src_flag->data()[0] = 1;

  TransferEngine engine(src_dev.get(), TransferEngineOptions{});
  const uint64_t doorbells_before = src_dev->nic()->stats().doorbell_batches;

  int completions = 0;
  bool stop = false;
  std::vector<std::shared_ptr<FlagInvariant>> invariants;
  for (int i = 0; i < kWrites; ++i) {
    invariants.push_back(WatchFlag(&world, dst_flags->data() + i, dst->data() + i * kSmall,
                                   src->data() + i * kSmall, kSmall, &stop));
  }
  for (int i = 0; i < kWrites; ++i) {
    TransferEngine::WriteDesc payload{src->data() + i * kSmall, src->lkey(),
                                      dst->Remote().addr + i * kSmall, dst->rkey(), kSmall,
                                      /*copy_bytes=*/true};
    TransferEngine::WriteDesc flag{src_flag->data(), src_flag->lkey(),
                                   dst_flags->Remote().addr + i, dst_flags->rkey(), 1,
                                   /*copy_bytes=*/true};
    TransferEngine::Route route = engine.WriteWithFlag(
        dst_dev->endpoint(), payload, flag, /*lane_hint=*/i, [&](const Status& s) {
          EXPECT_TRUE(s.ok()) << s;
          ++completions;
        });
    EXPECT_EQ(route, TransferEngine::Route::kCoalesced);
  }
  ASSERT_TRUE(
      world.simulator.RunUntilPredicate([&] { return completions == kWrites; }).ok());
  ASSERT_TRUE(world.simulator.RunUntil(world.simulator.Now() + 1000).ok());
  stop = true;

  EXPECT_EQ(std::memcmp(dst->data(), src->data(), kWrites * kSmall), 0);
  for (int i = 0; i < kWrites; ++i) {
    EXPECT_EQ(dst_flags->data()[i], 1) << "flag " << i;
    EXPECT_TRUE(invariants[i]->flag_observed) << "flag " << i;
  }
  EXPECT_EQ(engine.stats().coalesced_writes, kWrites);
  EXPECT_EQ(engine.stats().coalesced_batches, 1);
  // All four payload+flag pairs rode one doorbell chain.
  EXPECT_EQ(src_dev->nic()->stats().doorbell_batches, doorbells_before + 1);
}

TEST(TransferEngineTest, CoalesceFlushesImmediatelyAtMaxBatch) {
  World world;
  auto src_dev = world.MakeDevice(0);
  auto dst_dev = world.MakeDevice(1);
  auto src = src_dev->AllocateMemRegion(1024);
  auto dst = dst_dev->AllocateMemRegion(1024);
  ASSERT_TRUE(src.ok() && dst.ok());
  src->data()[0] = 1;  // Doubles as the flag source.

  TransferEngineOptions options;
  options.max_coalesce_batch = 2;
  TransferEngine engine(src_dev.get(), options);

  for (int i = 0; i < 2; ++i) {
    TransferEngine::WriteDesc payload{src->data(), src->lkey(),
                                      dst->Remote().addr + i * 64, dst->rkey(), 64,
                                      /*copy_bytes=*/true};
    TransferEngine::WriteDesc flag{src->data(), src->lkey(), dst->Remote().addr + 512 + i,
                                   dst->rkey(), 1, /*copy_bytes=*/true};
    engine.WriteWithFlag(dst_dev->endpoint(), payload, flag, 0, nullptr);
  }
  // The second enqueue hits max_coalesce_batch and flushes synchronously,
  // without waiting for the coalesce window.
  EXPECT_EQ(engine.stats().coalesced_batches, 1);
  ASSERT_TRUE(world.simulator.Run().ok());
  EXPECT_EQ(dst->data()[512], 1);
  EXPECT_EQ(dst->data()[513], 1);
}

TEST(TransferEngineTest, ResetTransientStateDropsQueuedWritesWithoutCallbacks) {
  World world;
  auto src_dev = world.MakeDevice(0);
  auto dst_dev = world.MakeDevice(1);
  auto src = src_dev->AllocateMemRegion(1024);
  auto dst = dst_dev->AllocateMemRegion(1024);
  ASSERT_TRUE(src.ok() && dst.ok());

  TransferEngine engine(src_dev.get(), TransferEngineOptions{});
  bool fired = false;
  TransferEngine::WriteDesc payload{src->data(), src->lkey(), dst->Remote().addr, dst->rkey(),
                                    64, /*copy_bytes=*/true};
  TransferEngine::WriteDesc flag{src->data(), src->lkey(), dst->Remote().addr + 512,
                                 dst->rkey(), 1, /*copy_bytes=*/true};
  engine.WriteWithFlag(dst_dev->endpoint(), payload, flag, 0,
                       [&](const Status&) { fired = true; });
  engine.ResetTransientState();
  ASSERT_TRUE(world.simulator.Run().ok());
  // The queued write was dropped before its window flush; the stale flush
  // event is a generation no-op and the callback never runs.
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.stats().coalesced_batches, 0);
}

TEST(TransferEngineTest, MrCacheHitsEvictsAndHonorsEpochPinning) {
  World world;
  auto dev = world.MakeDevice(0);
  TransferEngineOptions options;
  options.mr_cache_capacity = 2;
  TransferEngine engine(dev.get(), options);

  // Page-separated buffers carved out of one backing block so extents never
  // share a page.
  std::vector<uint8_t> backing(1 << 20);
  uint8_t* a = backing.data();
  uint8_t* b = backing.data() + (64 << 10);
  uint8_t* c = backing.data() + (128 << 10);

  engine.BeginEpoch(1);
  auto ha = engine.GetOrRegisterMr(a, 4096);
  auto hb = engine.GetOrRegisterMr(b, 4096);
  ASSERT_TRUE(ha.ok() && hb.ok());
  EXPECT_FALSE(ha->hit);
  EXPECT_GT(ha->register_ns, 0);
  auto ha2 = engine.GetOrRegisterMr(a, 4096);
  ASSERT_TRUE(ha2.ok());
  EXPECT_TRUE(ha2->hit);
  EXPECT_EQ(ha2->register_ns, 0);
  EXPECT_EQ(ha2->lkey, ha->lkey);

  // Same-epoch entries are pinned: capacity pressure must not evict a region
  // that may be the target of an in-flight remote read.
  auto hc = engine.GetOrRegisterMr(c, 4096);
  ASSERT_TRUE(hc.ok());
  EXPECT_EQ(hc->evictions, 0);
  EXPECT_EQ(engine.mr_cache_size(), 3);

  // Next epoch: the same registration pressure now evicts the LRU entry (b:
  // a was re-touched after b).
  engine.BeginEpoch(2);
  uint8_t* d = backing.data() + (192 << 10);
  auto hd = engine.GetOrRegisterMr(d, 4096);
  ASSERT_TRUE(hd.ok());
  EXPECT_GT(hd->evictions, 0);
  EXPECT_LE(engine.mr_cache_size(), 3);
  auto hb2 = engine.GetOrRegisterMr(b, 4096);
  ASSERT_TRUE(hb2.ok());
  EXPECT_FALSE(hb2->hit);  // b was the eviction victim.

  EXPECT_EQ(engine.stats().mr_cache_hits, 1);
  EXPECT_GT(engine.stats().mr_cache_evictions, 0);
}

TEST(TransferEngineTest, MrCacheRespectsNicRegionLimit) {
  net::CostModel cost;
  cost.max_memory_regions = 8;
  World world(cost);
  auto dev = world.MakeDevice(0);
  TransferEngineOptions options;
  options.mr_cache_capacity = 64;  // Larger than the NIC limit allows.
  TransferEngine engine(dev.get(), options);

  std::vector<uint8_t> backing(4 << 20);
  for (int i = 0; i < 32; ++i) {
    engine.BeginEpoch(i);  // Each round's entries are evictable next round.
    auto handle = engine.GetOrRegisterMr(backing.data() + i * (64 << 10), 4096);
    ASSERT_TRUE(handle.ok()) << handle.status();
    EXPECT_LE(dev->nic()->num_registered_regions(), 8) << "round " << i;
  }
  EXPECT_GT(engine.stats().mr_cache_evictions, 0);
}

TEST(TransferEngineTest, TeardownDeregistersCachedRegions) {
  World world;
  auto dev = world.MakeDevice(0);
  std::vector<uint8_t> backing(1 << 20);
  const int regions_before = dev->nic()->num_registered_regions();
  {
    TransferEngine engine(dev.get(), TransferEngineOptions{});
    engine.BeginEpoch(1);
    ASSERT_TRUE(engine.GetOrRegisterMr(backing.data(), 4096).ok());
    ASSERT_TRUE(engine.GetOrRegisterMr(backing.data() + (64 << 10), 4096).ok());
    EXPECT_EQ(dev->nic()->num_registered_regions(), regions_before + 2);
  }
  // Engine teardown returns the NIC to its prior region count, so cached MRs
  // never surface as RdmaCheck teardown leaks.
  EXPECT_EQ(dev->nic()->num_registered_regions(), regions_before);
}

TEST(ExtentLruCacheTest, CoversLookupsAndEvictsLeastRecentlyUsed) {
  tensor::ExtentLruCache<int> cache;
  cache.Insert(4096, 8192, 1);
  cache.Insert(32768, 4096, 2);

  ASSERT_NE(cache.Lookup(4096, 8192), nullptr);
  auto* interior = cache.Lookup(8000, 100);  // Interior slice.
  ASSERT_NE(interior, nullptr);
  EXPECT_EQ(interior->value, 1);
  EXPECT_EQ(cache.Lookup(4000, 10), nullptr);     // Before the extent.
  EXPECT_EQ(cache.Lookup(12000, 1000), nullptr);  // Runs past the end.
  EXPECT_EQ(cache.Lookup(20000, 16), nullptr);    // Gap between extents.

  // Entry 2 is now least recently used (every hit above touched entry 1).
  auto victim = cache.EvictLru([](const auto&) { return true; });
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->value, 2);
  EXPECT_EQ(cache.size(), 1u);

  // A predicate that rejects everything evicts nothing.
  EXPECT_FALSE(cache.EvictLru([](const auto&) { return false; }).has_value());
  EXPECT_EQ(cache.size(), 1u);
}

// Same seed, same schedule: the striping and coalescing paths must not
// introduce any pointer- or wall-clock-dependent ordering. Two fresh worlds
// running an identical striped collective must emit byte-identical traces.
TEST(TransferEngineTest, PooledLaneEvictionIsTransparentToTheEngine) {
  // One RPC QP plus at most two data lanes fit per NIC, but the engine
  // rotates over four lanes: every few writes the pool must evict the LRU
  // idle lane and transparently reconnect it on the next acquire. The engine
  // notices nothing — its channel cache is invalidated by the pool
  // generation bump and re-resolves through the pool.
  net::CostModel cost;
  cost.max_queue_pairs = 3;
  World world(cost);
  auto src_dev = world.MakeDevice(0);
  auto dst_dev = world.MakeDevice(1);

  constexpr int kWrites = 6;
  constexpr uint64_t kBytes = 16 << 10;  // Above the coalesce threshold: direct.
  auto src = src_dev->AllocateMemRegion(kWrites * kBytes);
  auto dst = dst_dev->AllocateMemRegion(kWrites * kBytes);
  auto src_flag = src_dev->AllocateMemRegion(1);
  auto dst_flags = dst_dev->AllocateMemRegion(kWrites);
  ASSERT_TRUE(src.ok() && dst.ok() && src_flag.ok() && dst_flags.ok());
  for (uint64_t i = 0; i < kWrites * kBytes; ++i) {
    src->data()[i] = static_cast<uint8_t>(i * 23 + 11);
  }
  std::memset(dst->data(), 0, kWrites * kBytes);
  std::memset(dst_flags->data(), 0, kWrites);
  src_flag->data()[0] = 1;

  TransferEngine engine(src_dev.get(), TransferEngineOptions{});
  rdma::QpPool* pool = src_dev->qp_pool();
  for (int i = 0; i < kWrites; ++i) {
    TransferEngine::WriteDesc payload{src->data() + i * kBytes, src->lkey(),
                                      dst->Remote().addr + i * kBytes, dst->rkey(), kBytes,
                                      /*copy_bytes=*/true};
    TransferEngine::WriteDesc flag{src_flag->data(), src_flag->lkey(),
                                   dst_flags->Remote().addr + i, dst_flags->rkey(), 1,
                                   /*copy_bytes=*/true};
    bool done = false;
    Status result = Internal("callback never fired");
    TransferEngine::Route route =
        engine.WriteWithFlag(dst_dev->endpoint(), payload, flag, /*lane_hint=*/i,
                             [&](const Status& s) {
                               done = true;
                               result = s;
                             });
    EXPECT_EQ(route, TransferEngine::Route::kDirect);
    ASSERT_TRUE(world.simulator.RunUntilPredicate([&] { return done; }).ok());
    ASSERT_TRUE(result.ok()) << "write " << i << ": " << result;
    // The cap held at every step, RPC QPs included.
    EXPECT_LE(world.rdma.nic(0)->num_queue_pairs(), 3);
    EXPECT_LE(world.rdma.nic(1)->num_queue_pairs(), 3);
  }
  EXPECT_EQ(std::memcmp(dst->data(), src->data(), kWrites * kBytes), 0);
  for (int i = 0; i < kWrites; ++i) EXPECT_EQ(dst_flags->data()[i], 1);
  // Four lanes through two slots: evictions and reconnects actually happened.
  EXPECT_GT(pool->stats().evictions, 0u);
  EXPECT_GT(pool->stats().reconnects, 0u);

  // After a recovery-style reset the engine drops its lane cache and the
  // next write re-acquires from the pool.
  engine.ResetTransientState();
  bool done = false;
  Status result = Internal("callback never fired");
  TransferEngine::WriteDesc payload{src->data(), src->lkey(), dst->Remote().addr,
                                    dst->rkey(), kBytes, /*copy_bytes=*/true};
  TransferEngine::WriteDesc flag{src_flag->data(), src_flag->lkey(),
                                 dst_flags->Remote().addr, dst_flags->rkey(), 1,
                                 /*copy_bytes=*/true};
  engine.WriteWithFlag(dst_dev->endpoint(), payload, flag, /*lane_hint=*/3,
                       [&](const Status& s) {
                         done = true;
                         result = s;
                       });
  ASSERT_TRUE(world.simulator.RunUntilPredicate([&] { return done; }).ok());
  EXPECT_TRUE(result.ok()) << result;
}

TEST(TransferEngineDeterminismTest, StripedCollectiveTracesAreByteIdentical) {
  auto run_once = [](std::string* json) {
    sim::Tracer tracer;
    sim::Tracer::Install(&tracer);
    sim::Simulator simulator;
    net::CostModel cost;
    cost.rdma_qp_engine_bytes_per_sec = 12e9;  // Makes lane timing observable.
    net::Fabric fabric(&simulator, cost, 4);
    rdma::RdmaFabric rdma(&fabric);
    device::DeviceDirectory directory(&rdma);

    collective::CollectiveOptions options;
    options.engine.stripe_threshold_bytes = 64 << 10;
    const uint64_t count = 1 << 20;  // 4 MiB of floats: chunks stripe.
    auto group =
        collective::CollectiveGroup::Create(&directory, {0, 1, 2, 3}, count, options);
    CHECK(group.ok()) << group.status();
    for (int r = 0; r < 4; ++r) {
      float* data = (*group)->data(r);
      for (uint64_t i = 0; i < count; ++i) {
        data[i] = static_cast<float>((r + 1) * (i % 7 + 1));
      }
    }
    bool fired = false;
    Status status = Internal("done never ran");
    (*group)->AllReduce(count, [&](const Status& s) {
      fired = true;
      status = s;
    });
    CHECK_OK(simulator.Run());
    CHECK(fired);
    CHECK_OK(status);
    for (int r = 0; r < 4; ++r) {
      const float* data = (*group)->data(r);
      for (uint64_t i = 0; i < count; i += 997) {
        CHECK(data[i] == static_cast<float>((i % 7 + 1) * 10))
            << "rank " << r << " i " << i;
      }
    }
    sim::Tracer::Install(nullptr);
    *json = tracer.ToJson();
  };

  std::string first;
  std::string second;
  run_once(&first);
  run_once(&second);
  EXPECT_GT(first.size(), 0u);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace comm
}  // namespace rdmadl
