// Collective conformance suite (ISSUE 7): every all-reduce schedule — flat
// ring, topology-aware hierarchical, in-network switch reduction, naive
// gather — must produce byte-for-byte the result of a scalar reference
// reduction, across topology shapes (flat, even racks, uneven fills, odd
// host counts, single-rack degenerate) and tensor sizes (including counts
// not aligned to chunks, lanes, or aggregation windows). Same-seed runs must
// also be byte-identical end to end: the suite compares full Chrome-trace
// captures and completion times across repeated runs.
//
// `ctest -L conformance` runs this binary plain and with RDMADL_CHECK=1
// (the protocol checker installed per test); any checker diagnostic fails
// the run via the listener below.
#include "src/collective/collective.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/check/explore.h"
#include "src/check/testing.h"
#include "src/net/fabric.h"
#include "src/net/topology.h"
#include "src/rdma/verbs.h"
#include "src/sim/trace.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace collective {
namespace {

RDMADL_REGISTER_PROTOCOL_CHECK_LISTENER();

// A self-contained simulated cluster over an arbitrary topology.
struct World {
  World(int num_hosts, const net::TopologyConfig& topo)
      : fabric(&simulator, cost, num_hosts, topo), rdma(&fabric), directory(&rdma) {}

  std::unique_ptr<CollectiveGroup> MakeGroup(int n, uint64_t max_elements,
                                             CollectiveOptions options = {}) {
    std::vector<int> hosts;
    for (int i = 0; i < n; ++i) hosts.push_back(i);
    auto group = CollectiveGroup::Create(&directory, hosts, max_elements, options);
    CHECK(group.ok()) << group.status();
    return std::move(group).value();
  }

  sim::Simulator simulator;
  net::CostModel cost;
  net::Fabric fabric;
  rdma::RdmaFabric rdma;
  device::DeviceDirectory directory;
};

// Integer-valued inputs so float sums are exact and order-independent:
// rank r element i holds (r + 1) * ((i % 7) + 1).
void FillInputs(CollectiveGroup* group, uint64_t count) {
  for (int r = 0; r < group->size(); ++r) {
    float* data = group->data(r);
    ASSERT_NE(data, nullptr);
    for (uint64_t i = 0; i < group->max_elements(); ++i) {
      data[i] = i < count ? static_cast<float>((r + 1) * (i % 7 + 1)) : -1.0f;
    }
  }
}

// Scalar reference: what a plain serial loop over all ranks computes.
float ReferenceSum(int n, uint64_t i) {
  float sum = 0.0f;
  for (int r = 0; r < n; ++r) sum += static_cast<float>((r + 1) * (i % 7 + 1));
  return sum;
}

Status RunOp(World* world, const std::function<void(DoneCallback)>& op) {
  bool fired = false;
  Status status = Internal("done callback never ran");
  op([&](const Status& s) {
    fired = true;
    status = s;
  });
  Status run = world->simulator.Run();
  CHECK_OK(run);
  CHECK(fired);
  return status;
}

struct Shape {
  const char* name;
  int hosts;
  int hosts_per_rack;  // 0 = flat fabric (no topology object).
};

// Topology matrix: flat, even fills, uneven last rack, odd host count with
// odd rack sizes, and the single-rack degenerate (rack larger than the
// group).
const Shape kShapes[] = {
    {"flat", 8, 0},            //
    {"even-4x2", 8, 4},        // Two full racks.
    {"uneven-4/4/2", 10, 4},   // Last rack half full.
    {"odd-3/3/1", 7, 3},       // Odd members per rack, one singleton rack.
    {"single-rack", 5, 8},     // Degenerate: one (partial) rack.
};

net::TopologyConfig MakeTopo(const Shape& shape, bool switch_reduce) {
  net::TopologyConfig config;
  config.hosts_per_rack = shape.hosts_per_rack;
  config.oversubscription = 4.0;
  config.switch_reduce = switch_reduce;
  // Tiny aggregation windows (256 floats) so even small tensors exercise
  // multi-round streaming with a ragged tail.
  config.switch_reduce_window_bytes = 1024;
  return config;
}

void ExpectExact(CollectiveGroup* group, uint64_t count, const std::string& label) {
  for (int r = 0; r < group->size(); ++r) {
    const float* data = group->data(r);
    for (uint64_t i = 0; i < count; ++i) {
      ASSERT_EQ(data[i], ReferenceSum(group->size(), i))
          << label << " rank=" << r << " i=" << i;
    }
    if (count < group->max_elements()) {
      ASSERT_EQ(data[count], -1.0f) << label << " rank=" << r << " wrote past count";
    }
  }
}

// The full equivalence matrix: algorithms x topology shapes x tensor sizes.
// 1031 is prime (never divides chunks, lanes, or windows); 3 leaves most
// lanes and ring chunks empty; 4096 is every power-of-two boundary at once;
// 255/257 straddle the 256-float aggregation window.
TEST(CollectiveConformanceTest, AllAlgorithmsMatchScalarReferenceAcrossShapes) {
  const Algorithm algorithms[] = {Algorithm::kRing, Algorithm::kHierarchical,
                                  Algorithm::kInNetwork, Algorithm::kNaiveGather};
  const char* algorithm_names[] = {"ring", "hierarchical", "in-network", "naive"};
  const uint64_t counts[] = {4096, 1031, 257, 255, 3};
  for (const Shape& shape : kShapes) {
    for (size_t a = 0; a < 4; ++a) {
      const Algorithm algorithm = algorithms[a];
      if (algorithm == Algorithm::kInNetwork && shape.hosts_per_rack == 0) {
        continue;  // Requires a switch-reduce stage; covered below.
      }
      for (uint64_t count : counts) {
        World world(shape.hosts, MakeTopo(shape, algorithm == Algorithm::kInNetwork));
        CollectiveOptions options;
        options.algorithm = algorithm;
        auto group = world.MakeGroup(shape.hosts, 4096, options);
        FillInputs(group.get(), count);
        const std::string label =
            StrCat(shape.name, " ", algorithm_names[a], " count=", count);
        ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                      group->AllReduce(count, std::move(done));
                    }).ok())
            << label;
        ExpectExact(group.get(), count, label);
        EXPECT_EQ(group->stats().allreduces, 1) << label;
      }
    }
  }
}

// Congested variant of the topology: tiny queue budgets so even the 4-16KB
// conformance tensors overflow them, PFC-style pauses instead of drops (the
// schedules must finish, just later), and DCQCN reacting to the marks. Data
// integrity must be unaffected: congestion moves bytes in time, never in
// space.
net::TopologyConfig MakeCongestedTopo(const Shape& shape, bool switch_reduce) {
  net::TopologyConfig config = MakeTopo(shape, switch_reduce);
  config.congestion.queue_capacity_bytes = 16 << 10;
  config.congestion.ecn_threshold_bytes = 2 << 10;
  config.congestion.pause_on_overflow = true;
  config.congestion.dcqcn = true;
  return config;
}

// ISSUE 8: the full equivalence matrix again with congestion control live.
// Every algorithm on every topology shape must still match the scalar
// reference bit-for-bit while queues fill, ECN marks flow, and DCQCN
// throttles the lanes. The aggregate mark count proves the run was not
// vacuously uncongested.
TEST(CollectiveConformanceTest, AllAlgorithmsStayExactUnderCongestion) {
  const Algorithm algorithms[] = {Algorithm::kRing, Algorithm::kHierarchical,
                                  Algorithm::kInNetwork, Algorithm::kNaiveGather};
  const char* algorithm_names[] = {"ring", "hierarchical", "in-network", "naive"};
  const uint64_t counts[] = {4096, 1031, 257, 255, 3};
  uint64_t total_marks = 0;
  uint64_t total_drops = 0;
  for (const Shape& shape : kShapes) {
    for (size_t a = 0; a < 4; ++a) {
      const Algorithm algorithm = algorithms[a];
      if (algorithm == Algorithm::kInNetwork && shape.hosts_per_rack == 0) {
        continue;
      }
      for (uint64_t count : counts) {
        World world(shape.hosts,
                    MakeCongestedTopo(shape, algorithm == Algorithm::kInNetwork));
        CollectiveOptions options;
        options.algorithm = algorithm;
        auto group = world.MakeGroup(shape.hosts, 4096, options);
        FillInputs(group.get(), count);
        const std::string label = StrCat("congested ", shape.name, " ",
                                         algorithm_names[a], " count=", count);
        ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                      group->AllReduce(count, std::move(done));
                    }).ok())
            << label;
        ExpectExact(group.get(), count, label);
        total_marks += world.fabric.congestion_totals().ecn_marks;
        total_drops += world.fabric.congestion_totals().overflow_drops;
      }
    }
  }
  EXPECT_GT(total_marks, 0u);   // The queues genuinely filled somewhere.
  EXPECT_EQ(total_drops, 0u);   // Pause mode never drops.
}

// Same-seed determinism holds with congestion control in the loop: pauses,
// marks, and DCQCN rate state are all pure functions of the event order.
TEST(CollectiveConformanceTest, CongestedSameSeedRunsAreByteIdentical) {
  for (Algorithm algorithm : {Algorithm::kRing, Algorithm::kHierarchical,
                              Algorithm::kInNetwork}) {
    std::string first_trace;
    int64_t first_now = -1;
    std::vector<float> first_data;
    for (int run = 0; run < 2; ++run) {
      Shape shape{"uneven-4/4/2", 10, 4};
      World world(shape.hosts,
                  MakeCongestedTopo(shape, algorithm == Algorithm::kInNetwork));
      sim::Tracer tracer;
      sim::Tracer::Install(&tracer);
      CollectiveOptions options;
      options.algorithm = algorithm;
      const uint64_t count = 1031;
      auto group = world.MakeGroup(shape.hosts, count, options);
      FillInputs(group.get(), count);
      ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                    group->AllReduce(count, std::move(done));
                  }).ok());
      sim::Tracer::Install(nullptr);
      std::vector<float> data(group->data(0), group->data(0) + count);
      if (run == 0) {
        first_trace = tracer.ToJson();
        first_now = world.simulator.Now();
        first_data = std::move(data);
      } else {
        EXPECT_EQ(tracer.ToJson(), first_trace);
        EXPECT_EQ(world.simulator.Now(), first_now);
        EXPECT_EQ(data, first_data);
      }
    }
  }
}

// Pipeline depth changes the lane partition but never the result.
TEST(CollectiveConformanceTest, HierarchicalExactAcrossPipelineDepths) {
  for (int depth : {1, 3, 8}) {
    Shape shape{"uneven-4/4/2", 10, 4};
    World world(shape.hosts, MakeTopo(shape, false));
    CollectiveOptions options;
    options.algorithm = Algorithm::kHierarchical;
    options.pipeline_depth = depth;
    const uint64_t count = 997;  // Prime: uneven against every lane count.
    auto group = world.MakeGroup(shape.hosts, count, options);
    FillInputs(group.get(), count);
    ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                  group->AllReduce(count, std::move(done));
                }).ok())
        << "depth=" << depth;
    ExpectExact(group.get(), count, StrCat("depth=", depth));
  }
}

// Tiny and boundary counts through both multi-level schedules: a count of 1
// leaves every lane but one empty; W and W+1 straddle the in-network window.
TEST(CollectiveConformanceTest, MultiLevelSchedulesHandleDegenerateCounts) {
  for (uint64_t count : {1ull, 2ull, 256ull, 511ull}) {
    for (Algorithm algorithm : {Algorithm::kHierarchical, Algorithm::kInNetwork}) {
      Shape shape{"odd-3/3/1", 7, 3};
      World world(shape.hosts, MakeTopo(shape, algorithm == Algorithm::kInNetwork));
      CollectiveOptions options;
      options.algorithm = algorithm;
      auto group = world.MakeGroup(shape.hosts, 1024, options);
      FillInputs(group.get(), count);
      ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                    group->AllReduce(count, std::move(done));
                  }).ok())
          << "count=" << count;
      ExpectExact(group.get(), count, StrCat("degenerate count=", count));
    }
  }
}

// Same-seed determinism: two fresh worlds running the identical schedule
// must agree byte-for-byte — results, completion time, and the full
// Chrome-trace capture (every span on every track at every timestamp).
TEST(CollectiveConformanceTest, SameSeedRunsAreByteIdentical) {
  for (Algorithm algorithm : {Algorithm::kRing, Algorithm::kHierarchical,
                              Algorithm::kInNetwork}) {
    std::string first_trace;
    int64_t first_now = -1;
    std::vector<float> first_data;
    for (int run = 0; run < 2; ++run) {
      Shape shape{"uneven-4/4/2", 10, 4};
      World world(shape.hosts, MakeTopo(shape, algorithm == Algorithm::kInNetwork));
      sim::Tracer tracer;
      sim::Tracer::Install(&tracer);
      CollectiveOptions options;
      options.algorithm = algorithm;
      const uint64_t count = 1031;
      auto group = world.MakeGroup(shape.hosts, count, options);
      FillInputs(group.get(), count);
      ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                    group->AllReduce(count, std::move(done));
                  }).ok());
      sim::Tracer::Install(nullptr);
      std::vector<float> data(group->data(0), group->data(0) + count);
      if (run == 0) {
        first_trace = tracer.ToJson();
        first_now = world.simulator.Now();
        first_data = std::move(data);
      } else {
        EXPECT_EQ(tracer.ToJson(), first_trace);
        EXPECT_EQ(world.simulator.Now(), first_now);
        EXPECT_EQ(data, first_data);
      }
    }
  }
}

// kAuto resolves from topology shape and tensor size: flat fabrics stay on
// the ring, multi-rack fabrics go hierarchical, and small tensors take the
// switch path when the fabric offers one.
TEST(CollectiveConformanceTest, AutoSelectsByTopologyShapeAndTensorSize) {
  {
    World world(8, net::TopologyConfig());  // Flat.
    CollectiveOptions options;
    options.algorithm = Algorithm::kAuto;
    auto group = world.MakeGroup(8, 1024, options);
    EXPECT_EQ(group->algorithm(), Algorithm::kRing);
  }
  {
    Shape shape{"even-4x2", 8, 4};
    World world(shape.hosts, MakeTopo(shape, false));  // No switch stage.
    CollectiveOptions options;
    options.algorithm = Algorithm::kAuto;
    auto group = world.MakeGroup(shape.hosts, 1024, options);
    EXPECT_EQ(group->algorithm(), Algorithm::kHierarchical);
  }
  {
    Shape shape{"even-4x2", 8, 4};
    World world(shape.hosts, MakeTopo(shape, true));  // Small tensor + stage.
    CollectiveOptions options;
    options.algorithm = Algorithm::kAuto;
    auto group = world.MakeGroup(shape.hosts, 1024, options);
    EXPECT_EQ(group->algorithm(), Algorithm::kInNetwork);
  }
  {
    Shape shape{"even-4x2", 8, 4};
    World world(shape.hosts, MakeTopo(shape, true));  // Big tensor + stage.
    CollectiveOptions options;
    options.algorithm = Algorithm::kAuto;
    options.materialize = false;  // 16 MiB per rank: selection-only test.
    auto group = world.MakeGroup(shape.hosts, 4ull << 20, options);
    EXPECT_EQ(group->algorithm(), Algorithm::kHierarchical);
  }
  // The resolved choice still reduces exactly.
  {
    Shape shape{"even-4x2", 8, 4};
    World world(shape.hosts, MakeTopo(shape, true));
    CollectiveOptions options;
    options.algorithm = Algorithm::kAuto;
    const uint64_t count = 1031;
    auto group = world.MakeGroup(shape.hosts, 2048, options);
    FillInputs(group.get(), count);
    ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                  group->AllReduce(count, std::move(done));
                }).ok());
    ExpectExact(group.get(), count, "auto resolved");
  }
}

// Asking for the switch path on a fabric without one is a configuration
// error, reported at group creation — not a silent fallback.
TEST(CollectiveConformanceTest, InNetworkWithoutSwitchStageIsRejected) {
  World world(8, net::TopologyConfig());
  CollectiveOptions options;
  options.algorithm = Algorithm::kInNetwork;
  std::vector<int> hosts{0, 1, 2, 3};
  auto group = CollectiveGroup::Create(&world.directory, hosts, 1024, options);
  ASSERT_FALSE(group.ok());
  EXPECT_EQ(group.status().code(), StatusCode::kInvalidArgument);
}

// The hierarchical schedule on one rack degenerates to tree + broadcast with
// no spine traffic; with exactly one member per rack it degenerates to the
// pure leader ring. Both ends of the spectrum must stay exact.
TEST(CollectiveConformanceTest, HierarchicalDegeneratesCleanly) {
  {
    Shape shape{"single-rack", 5, 8};
    World world(shape.hosts, MakeTopo(shape, false));
    CollectiveOptions options;
    options.algorithm = Algorithm::kHierarchical;
    const uint64_t count = 1031;
    auto group = world.MakeGroup(shape.hosts, 2048, options);
    FillInputs(group.get(), count);
    ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                  group->AllReduce(count, std::move(done));
                }).ok());
    ExpectExact(group.get(), count, "single rack");
  }
  {
    Shape shape{"one-per-rack", 6, 1};  // Six racks of one: pure leader ring.
    World world(shape.hosts, MakeTopo(shape, false));
    CollectiveOptions options;
    options.algorithm = Algorithm::kHierarchical;
    const uint64_t count = 997;
    auto group = world.MakeGroup(shape.hosts, 2048, options);
    FillInputs(group.get(), count);
    ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                  group->AllReduce(count, std::move(done));
                }).ok());
    ExpectExact(group.get(), count, "one per rack");
  }
}

// Back-to-back ops on one group (flag reuse, declared-flag teardown, engine
// lane caps) stay exact and deterministic.
// The op budget is enforced across level handoffs: a multi-level op whose
// timeout expires mid-schedule (tree still feeding the spine ring, or an
// in-network round mid-stream) fails kDeadlineExceeded promptly instead of
// letting later levels keep polling virtual time forever. 1000ns is far
// below either schedule's completion time, so the cut always lands inside
// the op.
TEST(CollectiveConformanceTest, DeadlineCutsMultiLevelOpsTyped) {
  const Algorithm algorithms[] = {Algorithm::kHierarchical, Algorithm::kInNetwork};
  for (Algorithm algorithm : algorithms) {
    World world(8, MakeTopo(kShapes[1], /*switch_reduce=*/true));
    CollectiveOptions options;
    options.algorithm = algorithm;
    options.op_timeout_ns = 1'000;
    auto group = world.MakeGroup(8, 65536, options);
    FillInputs(group.get(), 65536);
    const int64_t start = world.simulator.Now();
    const Status failed = RunOp(&world, [&](DoneCallback done) {
      group->AllReduce(65536, std::move(done));
    });
    ASSERT_FALSE(failed.ok()) << "algorithm=" << static_cast<int>(algorithm);
    EXPECT_EQ(failed.code(), StatusCode::kDeadlineExceeded) << failed;
    // The failure lands at the deadline and nothing reschedules past it by
    // more than the pollers' bounded backoff drain.
    EXPECT_LE(world.simulator.Now(), start + 100 * options.op_timeout_ns);

    // A fresh group on the same fabric recovers: an op with a sane budget is
    // exact. (Release the endpoints before rebinding them.)
    group.reset();
    options.op_timeout_ns = 0;
    group = world.MakeGroup(8, 65536, options);
    FillInputs(group.get(), 1024);
    ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                  group->AllReduce(1024, std::move(done));
                }).ok());
    ExpectExact(group.get(), 1024, "post-deadline recovery");
  }
}

TEST(CollectiveConformanceTest, RepeatedOpsOnOneGroupStayExact) {
  Shape shape{"even-4x2", 8, 4};
  World world(shape.hosts, MakeTopo(shape, false));
  CollectiveOptions options;
  options.algorithm = Algorithm::kHierarchical;
  auto group = world.MakeGroup(shape.hosts, 2048, options);
  for (int iter = 0; iter < 3; ++iter) {
    const uint64_t count = 1031;
    FillInputs(group.get(), count);
    ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                  group->AllReduce(count, std::move(done));
                }).ok())
        << "iter=" << iter;
    ExpectExact(group.get(), count, StrCat("iter=", iter));
  }
  EXPECT_EQ(group->stats().allreduces, 3);
}

// Schedule-space exploration harness (ISSUE 9). With RDMADL_EXPLORE=16 (the
// collective_conformance_test_explore ctest entry) the body is replayed
// across tie permutations and timing perturbations, each replay under a
// fresh RdmaCheck. Exactness is asserted inside the body, so every explored
// schedule — not just the canonical one — must reduce to the scalar
// reference.
TEST(ExploreHarnessTest, ExploreFlatRingAllReduceStaysExact) {
  sim::ExploreResult result = check::ExploreForTest(
      "conformance.flat-ring", [](sim::Simulator& simulator) -> Status {
        constexpr uint64_t kCount = 1000;
        net::CostModel cost;
        net::Fabric fabric(&simulator, cost, /*num_hosts=*/3);
        rdma::RdmaFabric rdma(&fabric);
        device::DeviceDirectory directory(&rdma);
        CollectiveOptions options;
        options.pipeline_depth = 2;
        auto group = CollectiveGroup::Create(&directory, {0, 1, 2}, kCount, options);
        if (!group.ok()) return group.status();
        for (int r = 0; r < (*group)->size(); ++r) {
          float* data = (*group)->data(r);
          for (uint64_t i = 0; i < kCount; ++i) {
            data[i] = static_cast<float>((r + 1) * (i % 7 + 1));
          }
        }
        auto done = std::make_shared<bool>(false);
        auto status = std::make_shared<Status>(OkStatus());
        (*group)->AllReduce(kCount, [done, status](const Status& s) {
          *status = s;
          *done = true;
        });
        Status run = simulator.RunUntilPredicate([done] { return *done; });
        if (!run.ok()) return run;
        if (!status->ok()) return *status;
        for (int r = 0; r < (*group)->size(); ++r) {
          const float* data = (*group)->data(r);
          for (uint64_t i = 0; i < kCount; ++i) {
            if (data[i] != ReferenceSum(3, i)) {
              return Internal(StrCat("rank ", r, " element ", i,
                                     " diverged from the scalar reference"));
            }
          }
        }
        return OkStatus();
      });
  EXPECT_FALSE(result.failure_found) << result.Summary();
  EXPECT_GE(result.stats.schedules_run, 1);
}

}  // namespace
}  // namespace collective
}  // namespace rdmadl
