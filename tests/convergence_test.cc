#include <gtest/gtest.h>

#include "src/train/convergence.h"

namespace rdmadl {
namespace train {
namespace {

TEST(ConvergenceProfileTest, StartsAtInitialDecreasesToFloor) {
  ConvergenceProfile profile = Seq2SeqConvergence(/*tcp_samples_per_minute=*/1000);
  EXPECT_DOUBLE_EQ(profile.MetricAt(0), profile.initial);
  double prev = profile.initial;
  for (double samples = 1000; samples < 1e9; samples *= 10) {
    const double metric = profile.MetricAt(samples);
    EXPECT_LT(metric, prev);
    EXPECT_GT(metric, profile.floor);
    prev = metric;
  }
}

TEST(ConvergenceProfileTest, AnchoredToPaperTcpTime) {
  // The gRPC.TCP run must hit the target exactly at the paper's minute count.
  const double tcp_rate = 12345.0;
  ConvergenceProfile profile = Seq2SeqConvergence(tcp_rate);
  EXPECT_NEAR(MinutesToTarget(profile, tcp_rate), 220.0, 1e-6);
  EXPECT_NEAR(profile.MetricAt(220.0 * tcp_rate), profile.target, 1e-6);
}

TEST(ConvergenceProfileTest, FasterMechanismConvergesProportionally) {
  const double tcp_rate = 5000.0;
  ConvergenceProfile profile = CifarConvergence(tcp_rate);
  const double tcp_minutes = MinutesToTarget(profile, tcp_rate);
  const double rdma_minutes = MinutesToTarget(profile, tcp_rate * 2.6);
  EXPECT_NEAR(tcp_minutes / rdma_minutes, 2.6, 1e-9);
}

TEST(ConvergenceProfileTest, AllThreeApplicationProfilesAreSane) {
  for (auto factory : {Seq2SeqConvergence, CifarConvergence, SeConvergence}) {
    ConvergenceProfile profile = factory(1000.0);
    EXPECT_GT(profile.initial, profile.target);
    EXPECT_GT(profile.target, profile.floor);
    EXPECT_GT(profile.samples_to_target, 0);
    EXPECT_GT(profile.n0(), 0);
  }
}

TEST(ConvergenceCurveTest, CurveIsMonotoneAndEndsAtTarget) {
  ConvergenceProfile profile = SeConvergence(2000.0);
  auto curve = SimulateCurve(profile, 2000.0, 10);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_DOUBLE_EQ(curve.front().minutes, 0.0);
  EXPECT_NEAR(curve.back().metric, profile.target, 1e-6);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].minutes, curve[i - 1].minutes);
    EXPECT_LT(curve[i].metric, curve[i - 1].metric);
  }
}

TEST(ConvergenceCurveTest, SameSampleCountSameMetricRegardlessOfSpeed) {
  // Model quality depends only on samples processed, not the transport —
  // the property Figure 10 relies on (verified for real transports by the
  // mechanism-equivalence tests).
  ConvergenceProfile profile = CifarConvergence(1000.0);
  EXPECT_DOUBLE_EQ(profile.MetricAt(5e5), profile.MetricAt(5e5));
  const double slow = MinutesToTarget(profile, 1000.0);
  const double fast = MinutesToTarget(profile, 3000.0);
  EXPECT_NEAR(profile.MetricAt(slow * 1000.0), profile.MetricAt(fast * 3000.0), 1e-9);
}

}  // namespace
}  // namespace train
}  // namespace rdmadl
