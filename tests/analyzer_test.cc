#include <gtest/gtest.h>

#include "src/analyzer/allocation_tracer.h"
#include "src/analyzer/shape_inference.h"
#include "src/graph/graph.h"
#include "src/ops/kernel.h"

namespace rdmadl {
namespace analyzer {
namespace {

using graph::Graph;
using graph::Node;
using tensor::kUnknownDim;
using tensor::TensorShape;

class ShapeInferenceTest : public ::testing::Test {
 protected:
  void SetUp() override { ops::RegisterStandardOps(); }
  Graph g_;
};

TEST_F(ShapeInferenceTest, PropagatesStaticShapesThroughChain) {
  Node* w = *g_.AddNode("w", "Variable", std::vector<Node*>{});
  w->SetAttr("shape", TensorShape{64, 32});
  Node* x = *g_.AddNode("x", "Placeholder", std::vector<Node*>{});
  x->SetAttr("shape", TensorShape{16, 64});
  Node* h = *g_.AddNode("h", "MatMul", {x, w});
  Node* a = *g_.AddNode("a", "Sigmoid", {h});
  ASSERT_TRUE(RunShapeInference(&g_).ok());
  EXPECT_EQ(h->output_shape(), TensorShape({16, 32}));
  EXPECT_EQ(a->output_shape(), TensorShape({16, 32}));
  EXPECT_TRUE(a->has_static_shape());
}

TEST_F(ShapeInferenceTest, UnknownBatchDimStaysUnknown) {
  Node* x = *g_.AddNode("x", "Placeholder", std::vector<Node*>{});
  x->SetAttr("shape", TensorShape{kUnknownDim, 64});
  Node* w = *g_.AddNode("w", "Variable", std::vector<Node*>{});
  w->SetAttr("shape", TensorShape{64, 32});
  Node* h = *g_.AddNode("h", "MatMul", {x, w});
  ASSERT_TRUE(RunShapeInference(&g_).ok());
  EXPECT_FALSE(h->has_static_shape());
  EXPECT_EQ(h->output_shape().dim(1), 32);
  // But the weight itself is static: exactly the §3.2/§3.3 split.
  EXPECT_TRUE(w->has_static_shape());
}

TEST_F(ShapeInferenceTest, ReductionCollapsesUnknownToScalar) {
  Node* x = *g_.AddNode("x", "Placeholder", std::vector<Node*>{});
  x->SetAttr("shape", TensorShape{kUnknownDim, 64});
  Node* r = *g_.AddNode("r", "ReduceMax", {x});
  ASSERT_TRUE(RunShapeInference(&g_).ok());
  EXPECT_TRUE(r->has_static_shape());
  EXPECT_EQ(r->output_shape().num_dims(), 0);
}

TEST_F(ShapeInferenceTest, FailsOnUnregisteredOp) {
  ASSERT_TRUE(g_.AddNode("weird", "NotAnOp", std::vector<Node*>{}).ok());
  EXPECT_EQ(RunShapeInference(&g_).code(), StatusCode::kNotFound);
}

TEST_F(ShapeInferenceTest, StatsCountStaticAndDynamic) {
  Node* x = *g_.AddNode("x", "Placeholder", std::vector<Node*>{});
  x->SetAttr("shape", TensorShape{kUnknownDim, 8});
  Node* w = *g_.AddNode("w", "Variable", std::vector<Node*>{});
  w->SetAttr("shape", TensorShape{8, 8});
  Node* h = *g_.AddNode("h", "MatMul", {x, w});
  (void)h;
  ASSERT_TRUE(RunShapeInference(&g_).ok());
  ShapeInferenceStats stats = ComputeShapeStats(g_);
  EXPECT_EQ(stats.total_nodes, 3);
  EXPECT_EQ(stats.static_nodes, 1);
  EXPECT_EQ(stats.dynamic_nodes, 2);
}

TEST(AllocationTracerTest, RecordsLatestAllocationPerAddress) {
  AllocationSiteTracer tracer;
  tracer.set_tracing(true);
  int dummy1, dummy2;
  tracer.BeginNodeExecution(1);
  tracer.RecordAllocation(1, &dummy1, 64);
  // Same address reused by node 2: latest info wins (the paper's overwrite
  // rule).
  tracer.BeginNodeExecution(2);
  tracer.RecordAllocation(2, &dummy1, 64);
  tracer.RecordAllocation(2, &dummy2, 64);
  EXPECT_TRUE(tracer.RecordTransfer(&dummy1));
  EXPECT_TRUE(tracer.InHotSet(2));
  EXPECT_FALSE(tracer.InHotSet(1));
}

TEST(AllocationTracerTest, UnknownAddressNotPromoted) {
  AllocationSiteTracer tracer;
  int dummy;
  EXPECT_FALSE(tracer.RecordTransfer(&dummy));
  EXPECT_EQ(tracer.hot_set_size(), 0u);
}

TEST(AllocationTracerTest, TracingOffRecordsNothing) {
  AllocationSiteTracer tracer;
  tracer.set_tracing(false);
  int dummy;
  tracer.BeginNodeExecution(1);
  tracer.RecordAllocation(1, &dummy, 64);
  EXPECT_FALSE(tracer.RecordTransfer(&dummy));
}

TEST(AllocationTracerTest, TransferPromotionSurvivesTracingOff) {
  AllocationSiteTracer tracer;
  tracer.set_tracing(true);
  int dummy;
  tracer.BeginNodeExecution(7);
  tracer.RecordAllocation(7, &dummy, 64);
  tracer.set_tracing(false);
  // Transfers keep resolving against the recorded map even after the tracing
  // iteration ended.
  EXPECT_TRUE(tracer.RecordTransfer(&dummy));
  EXPECT_TRUE(tracer.InHotSet(7));
}

TEST(AllocationTracerTest, AllocationIndexDistinguishesSites) {
  AllocationSiteTracer tracer;
  tracer.set_tracing(true);
  int a, b;
  tracer.BeginNodeExecution(3);
  tracer.RecordAllocation(3, &a, 64);  // (3, 0)
  tracer.RecordAllocation(3, &b, 64);  // (3, 1)
  EXPECT_TRUE(tracer.RecordTransfer(&b));
  EXPECT_TRUE(tracer.InHotSet(3));
  EXPECT_EQ(tracer.hot_set_size(), 1u);
}

}  // namespace
}  // namespace analyzer
}  // namespace rdmadl
