#include <gtest/gtest.h>

#include <vector>

#include "src/net/fabric.h"
#include "src/net/topology.h"

namespace rdmadl {
namespace net {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  sim::Simulator simulator_;
  CostModel cost_;
};

TEST_F(FabricTest, ConstructsHosts) {
  Fabric fabric(&simulator_, cost_, 4);
  EXPECT_EQ(fabric.num_hosts(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(fabric.host(i)->id(), i);
  }
}

TEST_F(FabricTest, TransferCompletesAfterBandwidthAndLatency) {
  Fabric fabric(&simulator_, cost_, 2);
  const uint64_t bytes = 1 << 20;  // 1 MB
  int64_t completed_at = -1;
  fabric.Transfer(0, 1, bytes, Plane::kRdma, 0, nullptr,
                  [&](Status s) { completed_at = simulator_.Now(); });
  ASSERT_TRUE(simulator_.Run().ok());
  const int64_t wire_ns =
      static_cast<int64_t>(bytes / cost_.rdma_bandwidth_bytes_per_sec * 1e9);
  // Completion = serialization + one-way latency, within per-chunk rounding
  // (each 4 KB chunk may truncate up to 1 ns).
  EXPECT_GE(completed_at, wire_ns + cost_.rdma_one_way_latency_ns - 1000);
  EXPECT_LE(completed_at, wire_ns + cost_.rdma_one_way_latency_ns + 10'000);
}

TEST_F(FabricTest, ChunksArriveInAscendingOffsetOrder) {
  Fabric fabric(&simulator_, cost_, 2);
  std::vector<uint64_t> offsets;
  bool complete = false;
  fabric.Transfer(
      0, 1, 3 * cost_.rdma_mtu_bytes + 17, Plane::kRdma, 0,
      [&](uint64_t offset, uint64_t length) { offsets.push_back(offset); },
      [&](Status s) { complete = s.ok(); });
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_TRUE(complete);
  ASSERT_EQ(offsets.size(), 4u);
  for (size_t i = 1; i < offsets.size(); ++i) {
    EXPECT_GT(offsets[i], offsets[i - 1]);
  }
  EXPECT_EQ(offsets[0], 0u);
}

TEST_F(FabricTest, ChunkLengthsSumToTotal) {
  Fabric fabric(&simulator_, cost_, 2);
  const uint64_t bytes = 10 * cost_.rdma_mtu_bytes + 123;
  uint64_t sum = 0;
  fabric.Transfer(
      0, 1, bytes, Plane::kRdma, 0, [&](uint64_t, uint64_t length) { sum += length; },
      nullptr);
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_EQ(sum, bytes);
}

TEST_F(FabricTest, TcpPlaneIsSlowerThanRdma) {
  Fabric fabric(&simulator_, cost_, 2);
  const uint64_t bytes = 8 << 20;
  int64_t rdma_done = 0, tcp_done = 0;
  fabric.Transfer(0, 1, bytes, Plane::kRdma, 0, nullptr,
                  [&](Status s) { rdma_done = simulator_.Now(); });
  ASSERT_TRUE(simulator_.Run().ok());

  sim::Simulator sim2;
  Fabric fabric2(&sim2, cost_, 2);
  fabric2.Transfer(0, 1, bytes, Plane::kTcp, 0, nullptr,
                   [&](Status s) { tcp_done = sim2.Now(); });
  ASSERT_TRUE(sim2.Run().ok());
  EXPECT_GT(tcp_done, 2 * rdma_done);
}

TEST_F(FabricTest, ConcurrentTransfersShareEgressLink) {
  Fabric fabric(&simulator_, cost_, 3);
  const uint64_t bytes = 4 << 20;
  int64_t t1 = 0, t2 = 0;
  // Two transfers from host 0 contend on its egress.
  fabric.Transfer(0, 1, bytes, Plane::kRdma, 0, nullptr,
                  [&](Status s) { t1 = simulator_.Now(); });
  fabric.Transfer(0, 2, bytes, Plane::kRdma, 0, nullptr,
                  [&](Status s) { t2 = simulator_.Now(); });
  ASSERT_TRUE(simulator_.Run().ok());
  const int64_t one_wire_ns =
      static_cast<int64_t>(bytes / cost_.rdma_bandwidth_bytes_per_sec * 1e9);
  // The later one must take ~2x the single-transfer serialization time.
  const int64_t last = std::max(t1, t2);
  EXPECT_GE(last, 2 * one_wire_ns);
}

TEST_F(FabricTest, LoopbackDoesNotUseEgress) {
  Fabric fabric(&simulator_, cost_, 2);
  bool done = false;
  fabric.Transfer(0, 0, 1 << 20, Plane::kRdma, 0, nullptr, [&](Status s) { done = s.ok(); });
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_TRUE(done);
  EXPECT_EQ(fabric.host(0)->egress().busy_ns_total(), 0);
  EXPECT_GT(fabric.host(0)->loopback().busy_ns_total(), 0);
}

TEST_F(FabricTest, ZeroByteTransferStillCompletes) {
  Fabric fabric(&simulator_, cost_, 2);
  bool done = false;
  int chunks = 0;
  fabric.Transfer(
      0, 1, 0, Plane::kRdma, 0, [&](uint64_t, uint64_t) { ++chunks; },
      [&](Status s) { done = s.ok(); });
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_TRUE(done);
  EXPECT_EQ(chunks, 0);
}

TEST_F(FabricTest, InitiationDelayShiftsCompletion) {
  Fabric fabric(&simulator_, cost_, 2);
  int64_t t_no_delay = 0, t_delay = 0;
  {
    sim::Simulator s1;
    Fabric f1(&s1, cost_, 2);
    f1.Transfer(0, 1, 4096, Plane::kRdma, 0, nullptr, [&](Status s) { t_no_delay = s1.Now(); });
    ASSERT_TRUE(s1.Run().ok());
  }
  {
    sim::Simulator s2;
    Fabric f2(&s2, cost_, 2);
    f2.Transfer(0, 1, 4096, Plane::kRdma, 50'000, nullptr,
                [&](Status s) { t_delay = s2.Now(); });
    ASSERT_TRUE(s2.Run().ok());
  }
  EXPECT_EQ(t_delay - t_no_delay, 50'000);
}

TEST_F(FabricTest, StatsAccumulatePerPlane) {
  Fabric fabric(&simulator_, cost_, 2);
  fabric.Transfer(0, 1, 1000, Plane::kRdma, 0, nullptr, nullptr);
  fabric.Transfer(0, 1, 2000, Plane::kRdma, 0, nullptr, nullptr);
  fabric.Transfer(1, 0, 500, Plane::kTcp, 0, nullptr, nullptr);
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_EQ(fabric.stats(Plane::kRdma).transfers, 2u);
  EXPECT_EQ(fabric.stats(Plane::kRdma).bytes, 3000u);
  EXPECT_EQ(fabric.stats(Plane::kTcp).transfers, 1u);
  EXPECT_EQ(fabric.stats(Plane::kTcp).bytes, 500u);
}

TEST(LinkTest, ReserveSerializes) {
  Link link("test");
  EXPECT_EQ(link.Reserve(100, 50), 150);
  EXPECT_EQ(link.Reserve(100, 50), 200);  // Starts after the previous slot.
  EXPECT_EQ(link.Reserve(500, 50), 550);  // Idle gap allowed.
  EXPECT_EQ(link.busy_ns_total(), 150);
}

TEST(LinkTest, ReserveQueuesPastDownWindow) {
  Link link("test");
  link.AddDownWindow(1000, 5000);
  // A reservation that would start inside the window waits for the link to
  // come back up, then starts immediately.
  EXPECT_EQ(link.Reserve(2000, 100), 5100);
  // Before the window the link is usable...
  Link link2("test2");
  link2.AddDownWindow(1000, 5000);
  EXPECT_EQ(link2.Reserve(0, 100), 100);
  // ...and a slot that STARTS before the window may finish inside it (packets
  // in flight when the link drops are not clawed back).
  EXPECT_EQ(link2.Reserve(900, 300), 1200);
  // The backlog accumulated behind the window drains in FIFO order after it.
  EXPECT_EQ(link2.Reserve(1500, 100), 5100);
  EXPECT_EQ(link2.Reserve(1500, 100), 5200);
}

TEST(LinkTest, MultipleDownWindowsAllRespected) {
  Link link("test");
  link.AddDownWindow(100, 200);
  link.AddDownWindow(300, 400);
  // Starting inside window 1 pushes to 200; the slot [200, 250) fits between
  // the windows.
  EXPECT_EQ(link.Reserve(150, 50), 250);
  // Starting inside window 2 pushes past it.
  EXPECT_EQ(link.Reserve(350, 50), 450);
}

TEST(LinkTest, OverlappingDownWindowsCoalesce) {
  Link link("test");
  // Overlapping, touching, and contained windows added out of order must
  // behave as their union [100, 900).
  link.AddDownWindow(400, 600);
  link.AddDownWindow(100, 450);   // Overlaps the first on the left.
  link.AddDownWindow(600, 900);   // Touches on the right.
  link.AddDownWindow(200, 300);   // Fully contained.
  EXPECT_EQ(link.AvailableAt(50), 50);
  EXPECT_EQ(link.AvailableAt(100), 900);
  EXPECT_EQ(link.AvailableAt(599), 900);
  EXPECT_EQ(link.AvailableAt(899), 900);
  EXPECT_EQ(link.AvailableAt(900), 900);
  EXPECT_EQ(link.Reserve(250, 10), 910);
}

TEST(LinkTest, DisjointWindowsStayDisjointAndSorted) {
  Link link("test");
  link.AddDownWindow(500, 600);
  link.AddDownWindow(100, 200);
  link.AddDownWindow(300, 400);
  EXPECT_EQ(link.AvailableAt(150), 200);
  EXPECT_EQ(link.AvailableAt(350), 400);
  EXPECT_EQ(link.AvailableAt(550), 600);
  EXPECT_EQ(link.AvailableAt(250), 250);
  // A window bridging two existing ones merges all three.
  link.AddDownWindow(150, 550);
  EXPECT_EQ(link.AvailableAt(150), 600);
  EXPECT_EQ(link.AvailableAt(250), 600);
}

class TopologyTest : public ::testing::Test {
 protected:
  TopologyConfig Hierarchical(int hosts_per_rack, double oversubscription) {
    TopologyConfig config;
    config.hosts_per_rack = hosts_per_rack;
    config.oversubscription = oversubscription;
    return config;
  }

  sim::Simulator simulator_;
  CostModel cost_;
};

TEST_F(TopologyTest, FlatConfigMatchesThreeArgConstructorExactly) {
  // Same transfer schedule on a flat-config Fabric and on the plain
  // constructor must produce identical completion times: the topology path
  // is byte-identical when hosts_per_rack == 0.
  std::vector<int64_t> plain, flat;
  for (int variant = 0; variant < 2; ++variant) {
    sim::Simulator sim;
    std::vector<int64_t>& out = (variant == 0) ? plain : flat;
    std::unique_ptr<Fabric> fabric;
    if (variant == 0) {
      fabric = std::make_unique<Fabric>(&sim, cost_, 8);
    } else {
      fabric = std::make_unique<Fabric>(&sim, cost_, 8, TopologyConfig());
    }
    for (int src = 0; src < 4; ++src) {
      fabric->Transfer(src, 7 - src, (src + 1) << 20, Plane::kRdma, 100 * src, nullptr,
                       [&out, &sim](Status s) { out.push_back(sim.Now()); });
    }
    ASSERT_TRUE(sim.Run().ok());
  }
  EXPECT_EQ(plain, flat);
}

TEST_F(TopologyTest, RackAndSpineShape) {
  Topology topo(Hierarchical(32, 4.0), 1000);
  EXPECT_EQ(topo.num_racks(), 32);          // ceil(1000 / 32)
  EXPECT_EQ(topo.num_spine_links(), 32);    // Defaults to one per rack.
  EXPECT_EQ(topo.rack_of(0), 0);
  EXPECT_EQ(topo.rack_of(31), 0);
  EXPECT_EQ(topo.rack_of(32), 1);
  EXPECT_EQ(topo.rack_of(999), 31);
  EXPECT_DOUBLE_EQ(topo.shared_bandwidth_scale(), 8.0);  // 32 hosts / 4x oversub.
  // Intra-rack: no shared hops, no extra latency.
  Topology::Hop hops[3];
  EXPECT_EQ(topo.PathHops(0, 31, hops), 0);
  EXPECT_EQ(topo.ExtraLatencyNs(0, 31), 0);
  // Inter-rack: uplink -> spine -> downlink, two extra switch traversals.
  ASSERT_EQ(topo.PathHops(0, 32, hops), 3);
  EXPECT_EQ(hops[0].link, topo.rack_uplink(0));
  EXPECT_EQ(hops[2].link, topo.rack_downlink(1));
  EXPECT_EQ(topo.ExtraLatencyNs(0, 32), 2 * topo.config().per_hop_latency_ns);
  // Spine selection is deterministic per rack pair.
  EXPECT_EQ(topo.spine_index(0, 1), topo.spine_index(0, 1));
}

TEST_F(TopologyTest, InterRackTransferPaysExtraHopLatency) {
  const uint64_t bytes = 256;  // Sub-MTU: no shared-link queuing, pure latency.
  int64_t intra = 0, inter = 0;
  {
    sim::Simulator sim;
    Fabric fabric(&sim, cost_, 64, Hierarchical(32, 1.0));
    fabric.Transfer(0, 1, bytes, Plane::kRdma, 0, nullptr,
                    [&](Status s) { intra = sim.Now(); });
    ASSERT_TRUE(sim.Run().ok());
  }
  {
    sim::Simulator sim;
    Fabric fabric(&sim, cost_, 64, Hierarchical(32, 1.0));
    fabric.Transfer(0, 33, bytes, Plane::kRdma, 0, nullptr,
                    [&](Status s) { inter = sim.Now(); });
    ASSERT_TRUE(sim.Run().ok());
  }
  TopologyConfig config = Hierarchical(32, 1.0);
  EXPECT_EQ(inter - intra, 2 * config.per_hop_latency_ns);
}

TEST_F(TopologyTest, OversubscribedUplinkSerializesInterRackTransfers) {
  // Eight hosts in rack 0 each blast a bulk transfer to a distinct host in
  // rack 1. With a heavily oversubscribed uplink the shared link serializes
  // the aggregate; with a non-blocking fabric the transfers run in parallel.
  const uint64_t bytes = 4 << 20;
  auto run = [&](const TopologyConfig& config) {
    sim::Simulator sim;
    Fabric fabric(&sim, cost_, 16, config);
    int64_t last = 0;
    for (int i = 0; i < 8; ++i) {
      fabric.Transfer(i, 8 + i, bytes, Plane::kRdma, 0, nullptr,
                      [&last, &sim](Status s) { last = std::max(last, sim.Now()); });
    }
    EXPECT_TRUE(sim.Run().ok());
    return last;
  };
  const int64_t contended = run(Hierarchical(8, 8.0));   // Uplink = 1 host port.
  const int64_t nonblocking = run(Hierarchical(8, 1.0)); // Uplink = 8 host ports.
  // 8 flows through a single-port uplink serialize ~8x; require a clear gap.
  EXPECT_GT(contended, 4 * nonblocking);
  // Intra-rack traffic is unaffected by oversubscription.
  sim::Simulator sim;
  Fabric fabric(&sim, cost_, 16, Hierarchical(8, 8.0));
  int64_t t = 0;
  fabric.Transfer(0, 1, bytes, Plane::kRdma, 0, nullptr, [&](Status s) { t = sim.Now(); });
  ASSERT_TRUE(sim.Run().ok());
  sim::Simulator sim_flat;
  Fabric flat(&sim_flat, cost_, 16);
  int64_t t_flat = 0;
  flat.Transfer(0, 1, bytes, Plane::kRdma, 0, nullptr,
                [&](Status s) { t_flat = sim_flat.Now(); });
  ASSERT_TRUE(sim_flat.Run().ok());
  EXPECT_EQ(t, t_flat);
}

}  // namespace
}  // namespace net
}  // namespace rdmadl
