// Detailed transfer-mechanism tests: protocol selection, GPU staging vs
// GPUDirect, RPC fragmentation, arena hygiene, and failure modes.
#include <gtest/gtest.h>

#include <memory>

#include "src/comm/rpc_mechanism.h"
#include "src/comm/zerocopy_mechanism.h"
#include "src/runtime/session.h"

namespace rdmadl {
namespace comm {
namespace {

using graph::Graph;
using graph::Node;
using runtime::Cluster;
using runtime::ClusterOptions;
using runtime::DistributedSession;
using runtime::SessionOptions;
using tensor::DType;
using tensor::Tensor;
using tensor::TensorShape;

std::unique_ptr<Cluster> MakeCluster(int machines, ops::ComputeMode mode,
                                     bool workers_on_gpu = false, bool gdr = false) {
  ClusterOptions options;
  options.num_machines = machines;
  options.mode = mode;
  options.process_defaults.rdma_arena_bytes =
      mode == ops::ComputeMode::kReal ? (16ull << 20) : (4ull << 30);
  options.process_defaults.seed = 7;
  options.worker_tensors_on_gpu = workers_on_gpu;
  options.worker_gpudirect = gdr;
  auto cluster = std::make_unique<Cluster>(options);
  CHECK_OK(cluster->AddProcess("ps:0", 0).status());
  for (int m = 1; m < machines; ++m) {
    CHECK_OK(cluster->AddProcess(StrCat("worker:", m - 1), m).status());
  }
  return cluster;
}

// ps:0 variable -> consumer on worker:0; returns the graph.
std::unique_ptr<Graph> WeightConsumerGraph(uint64_t elements) {
  ops::RegisterStandardOps();
  auto graph = std::make_unique<Graph>();
  Node* w = *graph->AddNode("w", "Variable", std::vector<Node*>{});
  w->SetAttr("shape", TensorShape{static_cast<int64_t>(elements)});
  w->SetAttr("init", std::string("uniform"));
  w->set_device("ps:0");
  Node* consume = *graph->AddNode("consume", "ReduceSum", {w});
  consume->set_device("worker:0");
  return graph;
}

// worker:0 produces -> ps:0 consumes (gradient direction).
std::unique_ptr<Graph> GradientGraph(uint64_t elements) {
  ops::RegisterStandardOps();
  auto graph = std::make_unique<Graph>();
  Node* g = *graph->AddNode("g", "Const", std::vector<Node*>{});
  g->SetAttr("shape", TensorShape{static_cast<int64_t>(elements)});
  g->SetAttr("fill_value", 0.5);
  g->set_device("worker:0");
  Node* consume = *graph->AddNode("consume", "ReduceSum", {g});
  consume->set_device("ps:0");
  return graph;
}

TEST(ZeroCopyProtocolTest, StaticShapeUsesStaticProtocol) {
  auto cluster = MakeCluster(2, ops::ComputeMode::kReal);
  auto graph = WeightConsumerGraph(1024);
  ZeroCopyRdmaMechanism mech(cluster.get(), ZeroCopyOptions{});
  DistributedSession session(cluster.get(), &mech, graph.get(), SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  ASSERT_TRUE(session.RunStep().ok());
  EXPECT_EQ(mech.stats().static_transfers, 1);
  EXPECT_EQ(mech.stats().dynamic_transfers, 0);
}

TEST(ZeroCopyProtocolTest, RealModeBytesArriveIntact) {
  auto cluster = MakeCluster(2, ops::ComputeMode::kReal);
  auto graph = WeightConsumerGraph(4096);
  ZeroCopyRdmaMechanism mech(cluster.get(), ZeroCopyOptions{});
  DistributedSession session(cluster.get(), &mech, graph.get(), SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  ASSERT_TRUE(session.RunStep().ok());
  // Checksum: sum at the consumer must equal the sum of the source variable.
  const Tensor& w = cluster->host("ps:0")->resources()->GetVariable("w");
  double expected = 0;
  for (int64_t i = 0; i < w.num_elements(); ++i) expected += w.at<float>(i);
  const Tensor* out = session.executor_for("worker:0")->OutputOf("consume");
  EXPECT_NEAR(out->at<float>(0), expected, 1e-2);
}

TEST(ZeroCopyProtocolTest, StagingBuffersReturnToArenaEachStep) {
  auto cluster = MakeCluster(2, ops::ComputeMode::kReal);
  auto graph = GradientGraph(8192);
  ZeroCopyOptions options;
  options.graph_analysis = false;  // Force a staging copy every step.
  ZeroCopyRdmaMechanism mech(cluster.get(), options);
  DistributedSession session(cluster.get(), &mech, graph.get(), SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  auto arena = cluster->host("worker:0")->rdma_arena();
  ASSERT_TRUE(arena.ok());
  for (int step = 0; step < 4; ++step) {
    const int64_t before = (*arena)->allocator->stats().bytes_in_use;
    ASSERT_TRUE(session.RunStep().ok());
    // Static staging is freed when its write completes; usage must not grow
    // step over step.
    EXPECT_LE((*arena)->allocator->stats().bytes_in_use, before + 1);
  }
  EXPECT_EQ(mech.stats().staged_sends, 4);
}

TEST(ZeroCopyProtocolTest, ForceDynamicCarriesRealMetadata) {
  auto cluster = MakeCluster(2, ops::ComputeMode::kReal);
  auto graph = WeightConsumerGraph(2048);
  ZeroCopyOptions options;
  options.force_dynamic = true;
  ZeroCopyRdmaMechanism mech(cluster.get(), options);
  DistributedSession session(cluster.get(), &mech, graph.get(), SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(session.RunStep().ok());
  }
  EXPECT_EQ(mech.stats().dynamic_transfers, 3);
  // Dynamic receive allocates fresh storage per step from the RDMA arena and
  // frees it at step end: no monotonic growth.
  auto arena = cluster->host("worker:0")->rdma_arena();
  ASSERT_TRUE(arena.ok());
  EXPECT_LT((*arena)->allocator->stats().bytes_in_use, 64 * 1024);
}

TEST(ZeroCopyProtocolTest, GpuWithoutGdrPaysPcieStaging) {
  auto cluster = MakeCluster(2, ops::ComputeMode::kSimulated, /*gpu=*/true, /*gdr=*/false);
  auto graph = GradientGraph(1 << 20);
  ZeroCopyRdmaMechanism mech(cluster.get(), ZeroCopyOptions{});
  DistributedSession session(cluster.get(), &mech, graph.get(), SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  ASSERT_TRUE(session.RunStep().ok());
  EXPECT_GT(mech.stats().pcie_copies, 0);
  EXPECT_GT(mech.stats().pcie_bytes, 0u);
}

TEST(ZeroCopyProtocolTest, GdrSkipsPcieAndUsesDynamicProtocol) {
  auto cluster = MakeCluster(2, ops::ComputeMode::kSimulated, /*gpu=*/true, /*gdr=*/true);
  auto graph = GradientGraph(1 << 20);
  ZeroCopyRdmaMechanism mech(cluster.get(), ZeroCopyOptions{});
  DistributedSession session(cluster.get(), &mech, graph.get(), SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  ASSERT_TRUE(session.RunStep().ok());
  EXPECT_EQ(mech.stats().pcie_copies, 0);
  // §3.5: GPUDirect edges always use the dynamic protocol.
  EXPECT_EQ(mech.stats().static_transfers, 0);
  EXPECT_EQ(mech.stats().dynamic_transfers, 1);
  EXPECT_EQ(mech.stats().zero_copy_sends, 1);  // Straight from GPU memory.
}

TEST(ZeroCopyProtocolTest, GdrIsFasterThanStaging) {
  auto time_one = [](bool gdr) {
    auto cluster = MakeCluster(2, ops::ComputeMode::kSimulated, true, gdr);
    auto graph = GradientGraph(16 << 20);
    ZeroCopyRdmaMechanism mech(cluster.get(), ZeroCopyOptions{});
    DistributedSession session(cluster.get(), &mech, graph.get(), SessionOptions{});
    CHECK_OK(session.Setup());
    CHECK_OK(session.RunStep());
    CHECK_OK(session.RunStep());
    return session.last_step_duration_ns();
  };
  EXPECT_LT(time_one(true), time_one(false));
}

TEST(ZeroCopyProtocolTest, ManyWorkersShareOnePs) {
  auto cluster = MakeCluster(4, ops::ComputeMode::kReal);
  ops::RegisterStandardOps();
  Graph graph;
  Node* w = *graph.AddNode("w", "Variable", std::vector<Node*>{});
  w->SetAttr("shape", TensorShape{512});
  w->SetAttr("init", std::string("uniform"));
  w->set_device("ps:0");
  for (int i = 0; i < 3; ++i) {
    Node* consume = *graph.AddNode(StrCat("consume", i), "ReduceSum", {w});
    consume->set_device(StrCat("worker:", i));
  }
  ZeroCopyRdmaMechanism mech(cluster.get(), ZeroCopyOptions{});
  DistributedSession session(cluster.get(), &mech, &graph, SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  ASSERT_EQ(session.transfer_edges().size(), 3u);  // One edge per destination.
  ASSERT_TRUE(session.RunStep().ok());
  EXPECT_EQ(mech.stats().static_transfers, 3);
  // All three workers computed the same checksum.
  const Tensor* out0 = session.executor_for("worker:0")->OutputOf("consume0");
  const Tensor* out1 = session.executor_for("worker:1")->OutputOf("consume1");
  const Tensor* out2 = session.executor_for("worker:2")->OutputOf("consume2");
  EXPECT_EQ(out0->at<float>(0), out1->at<float>(0));
  EXPECT_EQ(out1->at<float>(0), out2->at<float>(0));
}

TEST(ZeroCopyProtocolTest, SetupRegistersFewMemoryRegions) {
  // §3.4: one big registration, not one per tensor. After setup + steps, the
  // NIC should hold only a handful of MRs (arena, meta arena, RPC slabs).
  auto cluster = MakeCluster(2, ops::ComputeMode::kReal);
  auto graph = WeightConsumerGraph(65536);
  ZeroCopyRdmaMechanism mech(cluster.get(), ZeroCopyOptions{});
  DistributedSession session(cluster.get(), &mech, graph.get(), SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(session.RunStep().ok());
  EXPECT_LE(cluster->host("ps:0")->rdma_device()->nic()->num_registered_regions(), 8);
  EXPECT_LE(cluster->host("worker:0")->rdma_device()->nic()->num_registered_regions(), 8);
}

TEST(RpcMechanismDetailTest, LargeMessagesFragmentOnRingBuffer) {
  ClusterOptions options;
  options.num_machines = 2;
  options.mode = ops::ComputeMode::kReal;
  options.cost.rpc_ring_buffer_bytes = 64 * 1024;  // Small ring for the test.
  options.process_defaults.rdma_arena_bytes = 16ull << 20;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.AddProcess("ps:0", 0).ok());
  ASSERT_TRUE(cluster.AddProcess("worker:0", 1).ok());
  auto graph = GradientGraph(1 << 16);  // 256 KB message over a 64 KB ring.
  RpcMechanism mech(&cluster, net::Plane::kTcp);
  DistributedSession session(&cluster, &mech, graph.get(), SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  ASSERT_TRUE(session.RunStep().ok());
  EXPECT_EQ(mech.stats().messages, 1);
  EXPECT_EQ(mech.stats().fragments, 4);
  // Fragmentation copies on both sides: > one message's worth.
  EXPECT_GT(mech.stats().copied_bytes, uint64_t{1} << 18);
  // Data integrity across fragmentation.
  const Tensor* out = session.executor_for("ps:0")->OutputOf("consume");
  EXPECT_NEAR(out->at<float>(0), 0.5 * (1 << 16), 1.0);
}

TEST(RpcMechanismDetailTest, SmallMessageSingleFragment) {
  auto cluster = MakeCluster(2, ops::ComputeMode::kReal);
  auto graph = GradientGraph(64);
  RpcMechanism mech(cluster.get(), net::Plane::kRdma);
  DistributedSession session(cluster.get(), &mech, graph.get(), SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  ASSERT_TRUE(session.RunStep().ok());
  EXPECT_EQ(mech.stats().fragments, 1);
}

TEST(RpcMechanismDetailTest, TcpHasNoSizeLimit) {
  // Only the gRPC.RDMA transport crashed on >1 GB; TCP carried them (slowly).
  ClusterOptions options;
  options.num_machines = 2;
  options.mode = ops::ComputeMode::kSimulated;  // 2 GB tensor: virtual memory.
  options.cost.rpc_rdma_max_message_bytes = 1ull << 30;
  options.process_defaults.rdma_arena_bytes = 16ull << 30;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.AddProcess("ps:0", 0).ok());
  ASSERT_TRUE(cluster.AddProcess("worker:0", 1).ok());
  auto graph = GradientGraph(1ull << 29);  // 2 GB of float32.
  RpcMechanism mech(&cluster, net::Plane::kTcp);
  DistributedSession session(&cluster, &mech, graph.get(), SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  EXPECT_TRUE(session.RunStep().ok());
}

TEST(MechanismTimingTest, DynamicProtocolSlowerThanStatic) {
  // The §3.3 path pays metadata write + allocation + read round trip.
  auto time_one = [](bool force_dynamic) {
    auto cluster = MakeCluster(2, ops::ComputeMode::kReal);
    auto graph = WeightConsumerGraph(1 << 18);
    ZeroCopyOptions options;
    options.force_dynamic = force_dynamic;
    ZeroCopyRdmaMechanism mech(cluster.get(), options);
    DistributedSession session(cluster.get(), &mech, graph.get(), SessionOptions{});
    CHECK_OK(session.Setup());
    CHECK_OK(session.RunStep());
    CHECK_OK(session.RunStep());
    return session.last_step_duration_ns();
  };
  EXPECT_GT(time_one(true), time_one(false));
}

TEST(MechanismTimingTest, LoopbackFasterThanCrossMachine) {
  // Worker and PS on the same machine (the 1-server distributed case of
  // Figure 11) short-cuts through loopback.
  auto time_one = [](int machines) {
    ClusterOptions options;
    options.num_machines = machines;
    options.mode = ops::ComputeMode::kReal;
    options.process_defaults.rdma_arena_bytes = 32ull << 20;
    Cluster cluster(options);
    CHECK_OK(cluster.AddProcess("ps:0", 0).status());
    CHECK_OK(cluster.AddProcess("worker:0", machines - 1).status());
    auto graph = WeightConsumerGraph(1 << 20);
    ZeroCopyRdmaMechanism mech(&cluster, ZeroCopyOptions{});
    DistributedSession session(&cluster, &mech, graph.get(), SessionOptions{});
    CHECK_OK(session.Setup());
    CHECK_OK(session.RunStep());
    CHECK_OK(session.RunStep());
    return session.last_step_duration_ns();
  };
  EXPECT_LT(time_one(1), time_one(2));
}

}  // namespace
}  // namespace comm
}  // namespace rdmadl
