#include <gtest/gtest.h>

#include <memory>
#include <fstream>

#include "src/comm/zerocopy_mechanism.h"
#include "src/runtime/session.h"
#include "src/sim/trace.h"

namespace rdmadl {
namespace sim {
namespace {

TEST(TracerTest, RecordsSpansAndInstants) {
  Tracer tracer;
  tracer.AddSpan("gpu", "matmul", 1000, 5000);
  tracer.AddInstant("net", "flag", 7000);
  EXPECT_EQ(tracer.num_events(), 2u);
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"name\":\"matmul\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":4"), std::string::npos);  // 4000 ns = 4 us.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(TracerTest, EscapesNames) {
  Tracer tracer;
  tracer.AddInstant("t", "quote\"back\\slash", 0);
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(TracerTest, EscapesControlCharacters) {
  // RFC 8259: all control characters below 0x20 must be escaped, not emitted
  // raw — a raw newline or tab in a span name breaks chrome://tracing.
  Tracer tracer;
  tracer.AddInstant("t", std::string("a\nb\tc\rd\x01") + "e\x1f" + "f", 0);
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("a\\nb\\tc\\rd\\u0001e\\u001ff"), std::string::npos);
  // No raw control bytes survive anywhere in the output.
  for (char c : json) {
    EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n') << static_cast<int>(c);
  }
}

TEST(TracerTest, HelpersNoOpWithoutInstall) {
  Tracer::Install(nullptr);
  TraceSpan("t", "x", 0, 1);  // Must not crash.
  TraceInstant("t", "y", 0);
}

TEST(TracerTest, WriteJsonRoundTrips) {
  Tracer tracer;
  tracer.AddSpan("a", "b", 0, 10);
  const std::string path = "/tmp/rdmadl_trace_test.json";
  ASSERT_TRUE(tracer.WriteJson(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("traceEvents"), std::string::npos);
}

TEST(TracerIntegrationTest, DistributedStepEmitsComputeAndSendSpans) {
  Tracer tracer;
  Tracer::Install(&tracer);

  runtime::ClusterOptions options;
  options.num_machines = 2;
  options.mode = ops::ComputeMode::kReal;
  options.process_defaults.rdma_arena_bytes = 8ull << 20;
  runtime::Cluster cluster(options);
  CHECK_OK(cluster.AddProcess("ps:0", 0).status());
  CHECK_OK(cluster.AddProcess("worker:0", 1).status());
  ops::RegisterStandardOps();
  graph::Graph graph;
  graph::Node* w = *graph.AddNode("w", "Variable", std::vector<graph::Node*>{});
  w->SetAttr("shape", tensor::TensorShape{1024});
  w->SetAttr("cost_ns", 50'000.0);
  w->set_device("ps:0");
  graph::Node* consume = *graph.AddNode("consume", "ReduceSum", {w});
  consume->SetAttr("cost_ns", 50'000.0);
  consume->set_device("worker:0");

  comm::ZeroCopyRdmaMechanism mech(&cluster, comm::ZeroCopyOptions{});
  runtime::DistributedSession session(&cluster, &mech, &graph, runtime::SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  ASSERT_TRUE(session.RunStep().ok());
  Tracer::Install(nullptr);

  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("ps:0 compute"), std::string::npos);
  EXPECT_NE(json.find("worker:0 compute"), std::string::npos);
  EXPECT_NE(json.find("ps:0 send"), std::string::npos);
  EXPECT_GT(tracer.num_events(), 2u);
}

TEST(RoceTest, RocePresetRunsEndToEndAndIsSlightlySlower) {
  auto time_with = [](const net::CostModel& cost) {
    runtime::ClusterOptions options;
    options.num_machines = 2;
    options.mode = ops::ComputeMode::kReal;
    options.cost = cost;
    options.process_defaults.rdma_arena_bytes = 32ull << 20;
    runtime::Cluster cluster(options);
    CHECK_OK(cluster.AddProcess("ps:0", 0).status());
    CHECK_OK(cluster.AddProcess("worker:0", 1).status());
    ops::RegisterStandardOps();
    graph::Graph graph;
    graph::Node* w = *graph.AddNode("w", "Variable", std::vector<graph::Node*>{});
    w->SetAttr("shape", tensor::TensorShape{1 << 20});
    w->set_device("ps:0");
    graph::Node* consume = *graph.AddNode("consume", "ReduceMax", {w});
    consume->set_device("worker:0");
    comm::ZeroCopyRdmaMechanism mech(&cluster, comm::ZeroCopyOptions{});
    runtime::DistributedSession session(&cluster, &mech, &graph,
                                        runtime::SessionOptions{});
    CHECK_OK(session.Setup());
    CHECK_OK(session.RunStep());
    CHECK_OK(session.RunStep());
    return session.last_step_duration_ns();
  };
  const int64_t ib = time_with(net::CostModel{});
  const int64_t roce = time_with(net::RoceCostModel());
  EXPECT_GT(roce, ib);
  EXPECT_LT(roce, ib * 2);  // Same order of magnitude: it works, just slower.
}

}  // namespace
}  // namespace sim
}  // namespace rdmadl
