// Unit + property tests for the elastic-recovery control plane (ISSUE 3):
//
//   * MembershipService confirms a fail-stop crash within its advertised
//     detection bound, and — the property test — latency spikes kept under
//     the lease timeout never cause even a suspicion, across a seed sweep;
//   * CheckpointManager round-trips variable bytes (snapshot -> clobber ->
//     restore) and retargets shards to a different device;
//   * CollectiveGroup::Reconfigure shrinks the ring and the next all-reduce
//     computes exact sums among the survivors;
//   * the zero-copy mechanism's per-edge degradation ladder demotes an edge
//     after repeated zero-copy failures, serves it over the staged RPC path,
//     and re-promotes after a clean probation span.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/collective/collective.h"
#include "src/comm/zerocopy_mechanism.h"
#include "src/control/checkpoint.h"
#include "src/control/membership.h"
#include "src/ops/kernel.h"
#include "src/sim/fault.h"
#include "src/sim/trace.h"

namespace rdmadl {
namespace {

using collective::CollectiveGroup;
using collective::CollectiveOptions;
using collective::DoneCallback;
using control::CheckpointManager;
using control::CheckpointOptions;
using control::MembershipOptions;
using control::MembershipService;
using control::MemberState;
using graph::Node;
using runtime::Cluster;
using runtime::ClusterOptions;
using runtime::DistributedSession;
using runtime::SessionOptions;
using sim::FaultInjector;
using sim::LinkFaultSpec;
using tensor::Tensor;
using tensor::TensorShape;

uint64_t FaultSeedFromEnv(uint64_t default_seed) {
  const char* env = std::getenv("RDMADL_FAULT_SEED");
  if (env == nullptr || *env == '\0') return default_seed;
  return std::strtoull(env, nullptr, 10);
}

// Bare fabric world (no HostRuntimes) for membership + collective tests.
struct World {
  explicit World(int num_hosts)
      : fabric(&simulator, cost, num_hosts), rdma(&fabric), directory(&rdma) {}

  sim::Simulator simulator;
  net::CostModel cost;
  net::Fabric fabric;
  rdma::RdmaFabric rdma;
  device::DeviceDirectory directory;
};

std::unique_ptr<MembershipService> MakeMembership(World* world, int n,
                                                  MembershipOptions options = {}) {
  std::vector<int> hosts;
  for (int i = 0; i < n; ++i) hosts.push_back(i);
  auto service = MembershipService::Create(&world->directory, hosts, options);
  CHECK(service.ok()) << service.status();
  return std::move(service).value();
}

// ---------------------------------------------------------------------------
// Detection: a fail-stop crash is confirmed within the advertised bound, and
// nobody else is even suspected.
// ---------------------------------------------------------------------------

TEST(MembershipTest, CrashConfirmedWithinDetectionBound) {
  const int n = 4;
  World world(n);
  FaultInjector injector(FaultSeedFromEnv(21));
  const int64_t t_crash = sim::Milliseconds(2);
  injector.CrashHost(2, t_crash);
  world.fabric.SetFaultInjector(&injector);

  auto membership = MakeMembership(&world, n);
  membership->Start();

  const int64_t deadline = t_crash + membership->detection_bound_ns();
  Status wait = world.simulator.RunUntilPredicateOrDeadline(
      [&] { return membership->any_dead(); }, deadline);
  ASSERT_TRUE(wait.ok() || wait.code() == StatusCode::kDeadlineExceeded) << wait;

  ASSERT_TRUE(membership->any_dead())
      << "crash not confirmed within the detection bound";
  EXPECT_EQ(membership->state(2), MemberState::kDead);
  EXPECT_EQ(membership->dead_hosts(), std::vector<int>{2});
  const int64_t confirmed = membership->confirmed_dead_at_ns(2);
  EXPECT_GE(confirmed, t_crash);
  EXPECT_LE(confirmed - t_crash, membership->detection_bound_ns());
  // The survivors stay clean.
  EXPECT_EQ(membership->alive_hosts(), (std::vector<int>{0, 1, 3}));
  for (int h : {0, 1, 3}) EXPECT_EQ(membership->state(h), MemberState::kAlive);
  EXPECT_EQ(membership->stats().deaths_confirmed, 1);
}

// ---------------------------------------------------------------------------
// Pause/Resume: a paused detector lets the simulator drain, and detection
// still works after resuming.
// ---------------------------------------------------------------------------

TEST(MembershipTest, PauseDrainsResumeStillDetects) {
  const int n = 3;
  World world(n);
  FaultInjector injector(FaultSeedFromEnv(22));
  world.fabric.SetFaultInjector(&injector);

  auto membership = MakeMembership(&world, n);
  membership->Start();
  ASSERT_TRUE(world.simulator
                  .RunUntil(world.simulator.Now() + sim::Milliseconds(1))
                  .ok());

  membership->Pause();
  // With the probe loop frozen, a full drain terminates.
  ASSERT_TRUE(world.simulator.Run().ok());
  EXPECT_FALSE(membership->any_dead());

  injector.CrashHost(1, world.simulator.Now() + sim::Microseconds(50));
  membership->Resume();
  const int64_t deadline =
      world.simulator.Now() + sim::Microseconds(50) + membership->detection_bound_ns();
  Status wait = world.simulator.RunUntilPredicateOrDeadline(
      [&] { return membership->any_dead(); }, deadline);
  ASSERT_TRUE(wait.ok() || wait.code() == StatusCode::kDeadlineExceeded) << wait;
  EXPECT_EQ(membership->state(1), MemberState::kDead);
}

// ---------------------------------------------------------------------------
// Property (seed sweep): latency spikes strictly below the lease timeout
// never produce a false positive — not even a suspicion.
// ---------------------------------------------------------------------------

TEST(MembershipPropertyTest, SpikesUnderLeaseTimeoutNeverCauseFalsePositives) {
  const uint64_t base_seed = FaultSeedFromEnv(23);
  for (uint64_t s = 0; s < 5; ++s) {
    const uint64_t seed = base_seed * 100 + s;
    World world(4);
    FaultInjector injector(seed);
    LinkFaultSpec spec;
    // Every message spikes, but the worst-case round trip stays well under
    // the 100 us lease: two frames x 30 us extra each leaves headroom for
    // the transfer itself.
    spec.spike_probability = 1.0;
    spec.spike_min_ns = sim::Microseconds(5);
    spec.spike_max_ns = sim::Microseconds(30);
    injector.SetDefaultLinkFault(spec);
    world.fabric.SetFaultInjector(&injector);

    auto membership = MakeMembership(&world, 4);
    membership->Start();
    ASSERT_TRUE(world.simulator
                    .RunUntil(world.simulator.Now() + sim::Milliseconds(20))
                    .ok());

    EXPECT_EQ(membership->stats().suspicions, 0)
        << "seed=" << seed << ": spiky-but-alive member suspected";
    EXPECT_FALSE(membership->any_dead()) << "seed=" << seed;
    EXPECT_GT(membership->stats().pongs_received, 0) << "seed=" << seed;
    membership->Pause();
    ASSERT_TRUE(world.simulator.Run().ok());
  }
}

// ---------------------------------------------------------------------------
// Checkpoint: snapshot -> clobber -> restore round-trips real bytes, and a
// shard can be retargeted to a surviving device.
// ---------------------------------------------------------------------------

struct CheckpointWorld {
  CheckpointWorld() {
    ClusterOptions options;
    options.num_machines = 2;
    options.mode = ops::ComputeMode::kReal;
    options.process_defaults.rdma_arena_bytes = 8ull << 20;
    cluster = std::make_unique<Cluster>(options);
    CHECK_OK(cluster->AddProcess("ps:0", 0).status());
    CHECK_OK(cluster->AddProcess("ps:1", 1).status());
    ops::RegisterStandardOps();
  }

  Tensor MakeVariable(const std::string& device, const std::string& name, int64_t n,
                      float fill) {
    runtime::HostRuntime* host = cluster->host(device);
    Tensor t(host->default_allocator(), tensor::DType::kFloat32, TensorShape{n});
    for (int64_t i = 0; i < n; ++i) t.at<float>(i) = fill + i;
    Tensor copy = t.Clone(host->default_allocator());
    host->resources()->PutVariable(name, std::move(t));
    return copy;
  }

  std::unique_ptr<Cluster> cluster;
};

TEST(CheckpointTest, SnapshotRestoreRoundTripsBytes) {
  CheckpointWorld world;
  Tensor golden_a = world.MakeVariable("ps:0", "var_a", 256, 1.0f);
  Tensor golden_b = world.MakeVariable("ps:1", "var_b", 128, 100.0f);

  CheckpointManager checkpoint(world.cluster.get(), CheckpointOptions{});
  ASSERT_TRUE(checkpoint.Snapshot(/*step=*/3, /*samples=*/96).ok());
  EXPECT_TRUE(checkpoint.has_checkpoint());
  EXPECT_EQ(checkpoint.step(), 3);
  EXPECT_EQ(checkpoint.stats().variables_captured, 2);
  EXPECT_EQ(checkpoint.stats().last_snapshot_bytes, (256 + 128) * sizeof(float));

  // Clobber both variables, then roll back.
  for (const char* dev : {"ps:0", "ps:1"}) {
    auto* rm = world.cluster->host(dev)->resources();
    for (const auto& [name, var] : rm->variables()) {
      for (int64_t i = 0; i < var.num_elements(); ++i) var.at<float>(i) = -7.0f;
    }
  }
  ASSERT_TRUE(checkpoint.Restore().ok());

  const Tensor& a = world.cluster->host("ps:0")->resources()->GetVariable("var_a");
  const Tensor& b = world.cluster->host("ps:1")->resources()->GetVariable("var_b");
  for (int64_t i = 0; i < 256; ++i) ASSERT_EQ(a.at<float>(i), golden_a.at<float>(i));
  for (int64_t i = 0; i < 128; ++i) ASSERT_EQ(b.at<float>(i), golden_b.at<float>(i));
}

TEST(CheckpointTest, RestoreRetargetsShardToSurvivor) {
  CheckpointWorld world;
  Tensor golden = world.MakeVariable("ps:0", "shard", 64, 5.0f);
  CheckpointManager checkpoint(world.cluster.get(), CheckpointOptions{});
  ASSERT_TRUE(checkpoint.Snapshot(/*step=*/1, /*samples=*/32).ok());

  // "ps:0 died": restore its shard onto ps:1, which has never held it.
  ASSERT_TRUE(checkpoint.Restore({{"shard", "ps:1"}}).ok());
  auto* rm = world.cluster->host("ps:1")->resources();
  ASSERT_TRUE(rm->HasVariable("shard"));
  const Tensor& restored = rm->GetVariable("shard");
  ASSERT_EQ(restored.num_elements(), 64);
  for (int64_t i = 0; i < 64; ++i)
    ASSERT_EQ(restored.at<float>(i), golden.at<float>(i));

  // Captured entries absent from the map are skipped, not an error.
  ASSERT_TRUE(checkpoint.Restore(std::map<std::string, std::string>{}).ok());
}

// ---------------------------------------------------------------------------
// Reconfigure: the ring shrinks to the survivors and the next all-reduce is
// exact among them (the chunk capacity grew; slots were reallocated).
// ---------------------------------------------------------------------------

Status RunOp(World* world, const std::function<void(DoneCallback)>& op) {
  bool fired = false;
  Status status = Internal("done callback never ran");
  op([&](const Status& s) {
    fired = true;
    status = s;
  });
  Status run = world->simulator.Run();
  CHECK_OK(run);
  CHECK(fired);
  return status;
}

void FillInputs(CollectiveGroup* group, uint64_t count) {
  for (int r = 0; r < group->size(); ++r) {
    float* data = group->data(r);
    ASSERT_NE(data, nullptr);
    for (uint64_t i = 0; i < group->max_elements(); ++i) {
      data[i] = i < count ? static_cast<float>((r + 1) * (i % 7 + 1)) : -1.0f;
    }
  }
}

float ExpectedRankSum(int n, uint64_t i) {
  return static_cast<float>((i % 7 + 1) * n * (n + 1) / 2);
}

TEST(ReconfigureTest, RingShrinksAndSurvivorSumsAreExact) {
  const uint64_t count = 1000;  // Not divisible by 3: survivor chunks uneven.
  World world(4);
  std::vector<int> hosts{0, 1, 2, 3};
  auto group_or = CollectiveGroup::Create(&world.directory, hosts, count);
  ASSERT_TRUE(group_or.ok()) << group_or.status();
  auto group = std::move(group_or).value();

  FillInputs(group.get(), count);
  ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                group->AllReduce(count, std::move(done));
              }).ok());

  // Host 2 is confirmed dead; the group rebuilds over the survivors.
  ASSERT_TRUE(group->Reconfigure({0, 1, 3}).ok());
  EXPECT_EQ(group->size(), 3);
  EXPECT_EQ(group->hosts(), (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(group->stats().reconfigurations, 1);

  // The next collective re-runs the address exchange and is exact over the
  // new 3-way chunking.
  FillInputs(group.get(), count);
  ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                group->AllReduce(count, std::move(done));
              }).ok());
  for (int r = 0; r < 3; ++r) {
    const float* data = group->data(r);
    for (uint64_t i = 0; i < count; ++i) {
      ASSERT_EQ(data[i], ExpectedRankSum(3, i)) << "rank=" << r << " i=" << i;
    }
  }

  // Shrinking further still works (repeat reconfigurations compose).
  ASSERT_TRUE(group->Reconfigure({0, 3}).ok());
  FillInputs(group.get(), count);
  ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                group->AllReduce(count, std::move(done));
              }).ok());
  for (int r = 0; r < 2; ++r) {
    const float* data = group->data(r);
    for (uint64_t i = 0; i < count; ++i) {
      ASSERT_EQ(data[i], ExpectedRankSum(2, i)) << "rank=" << r << " i=" << i;
    }
  }
}

TEST(ReconfigureTest, RejectsNonSubsetAndBusyGroups) {
  World world(3);
  auto group_or = CollectiveGroup::Create(&world.directory, {0, 1, 2}, 64);
  ASSERT_TRUE(group_or.ok()) << group_or.status();
  auto group = std::move(group_or).value();
  EXPECT_FALSE(group->Reconfigure({0, 1, 5}).ok());  // 5 was never a member.
  EXPECT_FALSE(group->Reconfigure({}).ok());
  EXPECT_FALSE(group->Reconfigure({0, 0, 1}).ok());  // Duplicate.
  EXPECT_EQ(group->size(), 3);  // Failed validation left the group intact.
}

// ---------------------------------------------------------------------------
// Degradation ladder: repeated zero-copy failures demote the edge to the
// staged RPC path; a clean probation span re-promotes it.
// ---------------------------------------------------------------------------

struct LadderWorld {
  explicit LadderWorld(int64_t elements) {
    ClusterOptions options;
    options.num_machines = 2;
    options.mode = ops::ComputeMode::kReal;
    options.process_defaults.rdma_arena_bytes = 32ull << 20;
    cluster = std::make_unique<Cluster>(options);
    CHECK_OK(cluster->AddProcess("ps:0", 0).status());
    CHECK_OK(cluster->AddProcess("worker:0", 1).status());
    ops::RegisterStandardOps();
    Node* w = *graph.AddNode("w", "Variable", std::vector<Node*>{});
    w->SetAttr("shape", TensorShape{elements});
    w->SetAttr("init", std::string("uniform"));
    w->set_device("ps:0");
    Node* consume = *graph.AddNode("consume", "ReduceSum", {w});
    consume->set_device("worker:0");
  }

  Status QuiesceAndRecover(comm::ZeroCopyRdmaMechanism* mechanism) {
    RDMADL_RETURN_IF_ERROR(cluster->simulator()->Run());
    for (const std::string& device : cluster->device_names()) {
      RDMADL_RETURN_IF_ERROR(cluster->host(device)->rdma_device()->RecoverChannels());
    }
    mechanism->ResetTransientState();
    return OkStatus();
  }

  std::unique_ptr<Cluster> cluster;
  graph::Graph graph;
};

TEST(LadderTest, RepeatedFailuresDemoteThenCleanProbationPromotes) {
  LadderWorld world(50'000);
  comm::ZeroCopyOptions options;
  options.ladder_demote_after = 2;
  options.ladder_probation_after = 3;
  auto mechanism =
      std::make_unique<comm::ZeroCopyRdmaMechanism>(world.cluster.get(), options);
  DistributedSession session(world.cluster.get(), mechanism.get(), &world.graph,
                             SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  ASSERT_TRUE(session.RunStep().ok());  // Tracing step.
  ASSERT_TRUE(session.RunStep().ok());  // First zero-copy transfer.
  ASSERT_EQ(session.transfer_edges().size(), 1u);
  const std::string edge_key = session.transfer_edges()[0].key;
  EXPECT_EQ(mechanism->edge_path(edge_key), comm::EdgePath::kZeroCopy);

  // Burn the transport retry budget twice: enough forced drops that two
  // consecutive steps exhaust their 7-retry budget and fail the send.
  FaultInjector injector(FaultSeedFromEnv(24));
  LinkFaultSpec spec;
  spec.drop_first_n = 40;
  injector.SetLinkFault(0, 1, spec);
  world.cluster->fabric()->SetFaultInjector(&injector);

  int failed_steps = 0;
  for (int i = 0; i < 8 && mechanism->edge_path(edge_key) != comm::EdgePath::kDegraded;
       ++i) {
    Status s = session.RunStep();
    if (!s.ok()) {
      ++failed_steps;
      ASSERT_TRUE(world.QuiesceAndRecover(mechanism.get()).ok());
    }
  }
  ASSERT_EQ(mechanism->edge_path(edge_key), comm::EdgePath::kDegraded)
      << "edge never demoted after " << failed_steps << " failed steps";
  EXPECT_GE(mechanism->stats().ladder_demotions, 1);

  // Degraded service: steps now complete over the staged path with exact
  // bytes, and after a clean probation span the edge is promoted back.
  int promoted_at = -1;
  for (int i = 0; i < 40; ++i) {
    Status s = session.RunStep();
    if (!s.ok()) {
      // Residual forced drops also hit the degraded (TCP) path; they reset
      // the probation streak but never fail the edge back to zero-copy.
      ASSERT_TRUE(world.QuiesceAndRecover(mechanism.get()).ok());
      continue;
    }
    const Tensor* out = session.executor_for("worker:0")->OutputOf("consume");
    ASSERT_NE(out, nullptr);
    const Tensor& source = world.cluster->host("ps:0")->resources()->GetVariable("w");
    double expected = 0;
    for (int64_t j = 0; j < source.num_elements(); ++j) expected += source.at<float>(j);
    EXPECT_NEAR(out->at<float>(0), expected, std::abs(expected) * 1e-5 + 1e-3);
    if (mechanism->edge_path(edge_key) == comm::EdgePath::kZeroCopy) {
      promoted_at = i;
      break;
    }
  }
  ASSERT_GE(promoted_at, 0) << "edge never promoted back to zero-copy";
  EXPECT_GE(mechanism->stats().degraded_sends, options.ladder_probation_after);
  EXPECT_GE(mechanism->stats().ladder_promotions, 1);
  EXPECT_GE(mechanism->stats().probation_probes, 1);

  // And the promoted edge keeps working zero-copy.
  ASSERT_TRUE(session.RunStep().ok());
  EXPECT_EQ(mechanism->edge_path(edge_key), comm::EdgePath::kZeroCopy);
}

TEST(LadderTest, ArenaExhaustionDemotesImmediatelyAndServesDegraded) {
  // RDMA.cp (graph analysis off) stages every send through the sender's RDMA
  // arena. An arena too small for the payload would fail the send outright —
  // with the ladder it is served over the staged RPC path instead.
  LadderWorld world(200'000);  // 800 KB payload.
  comm::ZeroCopyOptions options;
  options.graph_analysis = false;
  auto mechanism =
      std::make_unique<comm::ZeroCopyRdmaMechanism>(world.cluster.get(), options);
  // Shrink the sender's arena below the payload size after setup buffers are
  // carved out, by burning it with a large allocation.
  DistributedSession session(world.cluster.get(), mechanism.get(), &world.graph,
                             SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  ASSERT_TRUE(session.RunStep().ok());
  ASSERT_EQ(session.transfer_edges().size(), 1u);
  const std::string edge_key = session.transfer_edges()[0].key;

  // Exhaust the ps:0 RDMA staging arena (64 KB chunks leave no hole big
  // enough for the 800 KB payload) so the staging copy cannot be placed.
  runtime::HostRuntime* ps = world.cluster->host("ps:0");
  auto arena_or = ps->rdma_arena();
  ASSERT_TRUE(arena_or.ok()) << arena_or.status();
  while ((*arena_or)->allocator->Allocate(64ull << 10) != nullptr) {
  }

  const auto before = mechanism->stats().ladder_demotions;
  ASSERT_TRUE(session.RunStep().ok())
      << "send should be served degraded, not failed";
  EXPECT_EQ(mechanism->edge_path(edge_key), comm::EdgePath::kDegraded);
  EXPECT_EQ(mechanism->stats().ladder_demotions, before + 1);
  EXPECT_GE(mechanism->stats().degraded_sends, 1);

  const Tensor* out = session.executor_for("worker:0")->OutputOf("consume");
  ASSERT_NE(out, nullptr);
  const Tensor& source = ps->resources()->GetVariable("w");
  double expected = 0;
  for (int64_t j = 0; j < source.num_elements(); ++j) expected += source.at<float>(j);
  EXPECT_NEAR(out->at<float>(0), expected, std::abs(expected) * 1e-5 + 1e-3);
}

}  // namespace
}  // namespace rdmadl
