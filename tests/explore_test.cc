// Schedule-space model checker (ISSUE 9): tie-permutation replay semantics,
// DFS enumeration, partial-order reduction, the seeded protocol mutations the
// explorer must catch (self-validation), the deadlock/livelock stall detector
// with its typed "what was the run waiting on" diagnostic, delta-debugging
// trace minimization, and replayable JSON artifacts.
#include "src/sim/explore.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/check/explore.h"
#include "src/check/mutation.h"
#include "src/check/rdma_check.h"
#include "src/check/testing.h"
#include "src/collective/collective.h"
#include "src/device/rdma_device.h"
#include "src/net/fabric.h"
#include "src/rdma/verbs.h"
#include "src/sim/fault.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace sim {
namespace {

RDMADL_REGISTER_PROTOCOL_CHECK_LISTENER();

// A cluster built on an externally-owned simulator: exploration workloads
// rebuild their whole world on the fresh simulator of every replay, so a
// ScheduleTrace is the only state that survives between runs.
struct ExploreWorld {
  ExploreWorld(Simulator& simulator, int num_hosts, const net::CostModel& cost_model = {})
      : cost(cost_model), fabric(&simulator, cost, num_hosts), rdma(&fabric), directory(&rdma) {}

  std::unique_ptr<device::RdmaDevice> MakeDevice(int host, int num_qps = 4) {
    auto dev =
        device::RdmaDevice::Create(&directory, /*num_cqs=*/2, num_qps, Endpoint{host, 7000});
    CHECK(dev.ok()) << dev.status();
    return std::move(dev).value();
  }

  net::CostModel cost;
  net::Fabric fabric;
  rdma::RdmaFabric rdma;
  device::DeviceDirectory directory;
};

// An aggressive §3.2 receiver: polls a flag byte every 200 ns and acts on it
// the moment it reads nonzero. The scheduled events hold the only shared_ptr
// references (the poller owns no closure), so replays leak nothing.
struct FlagPoller {
  Simulator* simulator = nullptr;
  const uint8_t* flag = nullptr;
  int host = -1;
  bool trusted = false;

  static void Schedule(std::shared_ptr<FlagPoller> self, int64_t delay_ns) {
    Simulator* simulator = self->simulator;
    simulator->ScheduleAfterJittered(delay_ns, [self = std::move(self)] {
      if (self->trusted) return;
      if (*self->flag != 0) {
        check::OnFlagTrusted(self->host, self->flag, self->simulator->Now());
        self->trusted = true;
        return;
      }
      check::OnFlagPolled(self->host, self->flag, self->simulator->Now());
      Schedule(self, 200);
    });
  }
};

// ---- replay semantics -----------------------------------------------------

TEST(ReplayTest, ChoicesPermuteTieGroupsAndTailDefaultsToCanonical) {
  std::string order;
  ExploreWorkload workload = [&order](Simulator& s) {
    order.clear();
    s.ScheduleAt(5, [&order] { order += 'a'; });
    s.ScheduleAt(5, [&order] { order += 'b'; });
    s.ScheduleAt(5, [&order] { order += 'c'; });
    RunReport report;
    report.status = s.Run();
    return report;
  };
  Explorer explorer;

  EXPECT_TRUE(explorer.Replay(workload, ScheduleTrace{}).failure_class.empty());
  EXPECT_EQ(order, "abc");

  // Picking index 2 dispatches 'c'; the remaining pair re-ties and the
  // exhausted trace falls back to canonical order.
  ScheduleTrace pick_last;
  pick_last.choices = {2};
  explorer.Replay(workload, pick_last);
  EXPECT_EQ(order, "cab");

  ScheduleTrace rotate;
  rotate.choices = {1, 1};
  explorer.Replay(workload, rotate);
  EXPECT_EQ(order, "bca");

  // Out-of-range picks clamp to the last group member instead of crashing.
  ScheduleTrace wild;
  wild.choices = {9};
  explorer.Replay(workload, wild);
  EXPECT_EQ(order, "cab");
}

// ---- enumeration + minimization + artifacts -------------------------------

// Clean in canonical (time, seq) order, broken whenever the reader overtakes
// the writer it ties with: the smallest possible order-only bug.
ExploreWorkload OrderBugWorkload() {
  return [](Simulator& s) {
    auto wrote = std::make_shared<bool>(false);
    auto read_ok = std::make_shared<bool>(true);
    s.ScheduleAt(10, [wrote] { *wrote = true; });
    s.ScheduleAt(10, [wrote, read_ok] { *read_ok = *wrote; });
    RunReport report;
    report.status = s.Run();
    if (!*read_ok) report.failure_class = "order-bug";
    return report;
  };
}

TEST(ExplorerTest, FindsOrderOnlyBugMinimizesAndWritesReplayableArtifact) {
  ExploreOptions options;
  options.name = "order-bug";
  options.max_schedules = 16;
  options.artifact_path = ::testing::TempDir() + "rdmadl_order_bug.json";
  Explorer explorer(options);
  ExploreResult result = explorer.Explore(OrderBugWorkload());

  ASSERT_TRUE(result.failure_found) << result.Summary();
  EXPECT_EQ(result.first_failure.failure_class, "order-bug");
  EXPECT_LE(result.stats.schedules_run, 8u) << result.Summary();

  // ddmin: the single non-canonical choice is the whole reproducer.
  ASSERT_EQ(result.minimized_trace.choices.size(), 1u) << result.Summary();
  EXPECT_EQ(result.minimized_trace.choices[0], 1u);
  EXPECT_EQ(result.minimized_trace.jitter_seed, 0u);
  EXPECT_EQ(result.minimized_report.failure_class, "order-bug");

  // The dumped artifact replays to the same diagnostic, twice.
  auto trace_or = ReadTraceArtifact(options.artifact_path);
  ASSERT_TRUE(trace_or.ok()) << trace_or.status();
  EXPECT_EQ(trace_or->choices, result.minimized_trace.choices);
  Explorer replayer;
  EXPECT_EQ(replayer.Replay(OrderBugWorkload(), *trace_or).failure_class, "order-bug");
  EXPECT_EQ(replayer.Replay(OrderBugWorkload(), *trace_or).failure_class, "order-bug");
}

TEST(ArtifactTest, JsonRoundTripPreservesTheTrace) {
  ScheduleTrace trace;
  trace.choices = {0, 3, 1};
  trace.jitter_seed = 42;
  trace.jitter_bound_ns = 200;
  RunReport report;
  report.failure_class = "check:torn-read";
  auto parsed = TraceFromJson(TraceToJson("unit", trace, report));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->choices, trace.choices);
  EXPECT_EQ(parsed->jitter_seed, 42u);
  EXPECT_EQ(parsed->jitter_bound_ns, 200);
}

// ---- partial-order reduction ----------------------------------------------

// Two writes over disjoint links into disjoint hosts: every tie between their
// events commutes, so the reduction should discard (at least) half of the
// naive branch set. Run under CheckedWorkload so RdmaCheck feeds footprints.
check::WorkloadBody DisjointWritesBody() {
  return [](Simulator& s) -> Status {
    ExploreWorld world(s, 4);
    auto dev0 = world.MakeDevice(0);
    auto dev1 = world.MakeDevice(1);
    auto dev2 = world.MakeDevice(2);
    auto dev3 = world.MakeDevice(3);
    constexpr uint64_t kBytes = 64 << 10;
    auto src_a = dev0->AllocateMemRegion(kBytes);
    auto dst_a = dev1->AllocateMemRegion(kBytes);
    auto src_b = dev2->AllocateMemRegion(kBytes);
    auto dst_b = dev3->AllocateMemRegion(kBytes);
    CHECK(src_a.ok() && dst_a.ok() && src_b.ok() && dst_b.ok());
    auto chan_a = dev0->GetChannel(dev1->endpoint(), 0);
    auto chan_b = dev2->GetChannel(dev3->endpoint(), 0);
    CHECK(chan_a.ok() && chan_b.ok());

    auto done = std::make_shared<int>(0);
    auto failed = std::make_shared<Status>(OkStatus());
    auto on_done = [done, failed](const Status& status) {
      if (!status.ok() && failed->ok()) *failed = status;
      ++*done;
    };
    (*chan_a)->Memcpy(src_a->data(), src_a->lkey(), dst_a->Remote().addr, dst_a->rkey(),
                      kBytes, device::Direction::kLocalToRemote, on_done);
    (*chan_b)->Memcpy(src_b->data(), src_b->lkey(), dst_b->Remote().addr, dst_b->rkey(),
                      kBytes, device::Direction::kLocalToRemote, on_done);
    Status run = s.RunUntilPredicate([done] { return *done == 2; });
    if (!run.ok()) return run;
    return *failed;
  };
}

TEST(PartialOrderReductionTest, PrunesAtLeastHalfTheBranchesBetweenDisjointTransfers) {
  ExploreOptions options;
  options.name = "por-disjoint";
  options.max_schedules = 24;
  options.jitter_schedules = 0;
  options.minimize = false;
  Explorer with_por(options);
  ExploreResult reduced = with_por.Explore(check::CheckedWorkload(DisjointWritesBody()));
  EXPECT_FALSE(reduced.failure_found) << reduced.Summary();
  ASSERT_GT(reduced.stats.naive_branches, 0u) << reduced.Summary();
  EXPECT_GE(reduced.stats.branches_pruned * 2, reduced.stats.naive_branches)
      << reduced.Summary();

  // The same budget without the reduction enqueues strictly more work.
  options.use_por = false;
  Explorer naive(options);
  ExploreResult full = naive.Explore(check::CheckedWorkload(DisjointWritesBody()));
  EXPECT_FALSE(full.failure_found) << full.Summary();
  EXPECT_EQ(full.stats.branches_pruned, 0u);
  EXPECT_GT(full.stats.branches_enqueued, reduced.stats.branches_enqueued);
}

// ---- mutation self-validation ---------------------------------------------

// Striped 1 MB write whose first wire segment is force-dropped: the hit
// stripe redelivers a transport-retry backoff (20 us) later, long after its
// siblings. Correct code posts the flag only after the retry's completion;
// the kFlagBeforeLastStripe mutation posts it at the FIRST stripe completion,
// so the receiver trusts a payload with a whole stripe still undelivered.
check::WorkloadBody StripedFlagBody() {
  return [](Simulator& s) -> Status {
    net::CostModel cost;
    // Fast wire so all healthy stripes (and the flag) land well inside the
    // dropped stripe's retry backoff.
    cost.rdma_bandwidth_bytes_per_sec = 100e9;
    // Striping engages only with a finite per-QP engine rate (rate 0 means
    // an infinite engine, and the router falls back to the direct path).
    cost.rdma_qp_engine_bytes_per_sec = 50e9;
    FaultInjector injector(/*seed=*/1);
    LinkFaultSpec spec;
    spec.drop_first_n = 1;
    injector.SetLinkFault(0, 1, spec);

    ExploreWorld world(s, 2, cost);
    world.fabric.SetFaultInjector(&injector);
    auto src_dev = world.MakeDevice(0);
    auto dst_dev = world.MakeDevice(1);
    constexpr uint64_t kBytes = 1 << 20;
    auto src = src_dev->AllocateMemRegion(kBytes);
    auto dst = dst_dev->AllocateMemRegion(kBytes);
    auto src_flag = src_dev->AllocateMemRegion(1);
    auto dst_flag = dst_dev->AllocateMemRegion(1);
    CHECK(src.ok() && dst.ok() && src_flag.ok() && dst_flag.ok());
    std::memset(src->data(), 0x5a, kBytes);
    src_flag->data()[0] = 1;
    dst_flag->data()[0] = 0;

    comm::TransferEngineOptions engine_options;
    engine_options.stripe_threshold_bytes = 256 << 10;  // 4 stripes across 4 lanes.
    comm::TransferEngine engine(src_dev.get(), engine_options);

    // Declare the §3.2 contract: this flag guards the whole payload range.
    check::OnFlagLocation(1, dst_flag->data(), "explore.striped");
    check::OnFlagGuards(1, dst_flag->data(), dst->data(), kBytes);

    auto poller = std::make_shared<FlagPoller>();
    poller->simulator = &s;
    poller->flag = dst_flag->data();
    poller->host = 1;
    FlagPoller::Schedule(poller, 200);

    auto done = std::make_shared<bool>(false);
    auto result = std::make_shared<Status>(OkStatus());
    comm::TransferEngine::WriteDesc payload{src->data(), src->lkey(), dst->Remote().addr,
                                            dst->rkey(), kBytes, true};
    comm::TransferEngine::WriteDesc flag{src_flag->data(), src_flag->lkey(),
                                         dst_flag->Remote().addr, dst_flag->rkey(), 1, true};
    // The flag rides lane 1: lane 0 owns the dropped stripe, and a flag
    // queued on that QP would serialize behind the retry and hide the bug.
    engine.WriteWithFlag(dst_dev->endpoint(), payload, flag, /*lane_hint=*/1,
                         [done, result](const Status& status) {
                           *done = true;
                           if (!status.ok()) *result = status;
                         });
    Status run = s.RunUntilPredicate([done, poller] { return *done && poller->trusted; });
    if (!run.ok()) return run;
    return *result;
  };
}

TEST(MutationTest, ExplorerCatchesFlagPostedBeforeLastStripe) {
  {
    check::ScopedMutation mutation(check::kFlagBeforeLastStripe);
    ExploreOptions options;
    options.name = "flag-before-last-stripe";
    options.max_schedules = 24;
    Explorer explorer(options);
    ExploreResult result = explorer.Explore(check::CheckedWorkload(StripedFlagBody()));
    ASSERT_TRUE(result.failure_found) << result.Summary();
    EXPECT_EQ(result.first_failure.failure_class, "check:torn-read")
        << result.first_failure.details;
    // The minimized trace replays to the same diagnostic.
    EXPECT_EQ(result.minimized_report.failure_class, "check:torn-read") << result.Summary();
  }
  // Unmutated, the identical workload (drop, retry and all) explores clean.
  ExploreOptions options;
  options.name = "flag-after-last-stripe";
  options.max_schedules = 8;
  Explorer explorer(options);
  ExploreResult clean = explorer.Explore(check::CheckedWorkload(StripedFlagBody()));
  EXPECT_FALSE(clean.failure_found) << clean.Summary();
}

// Direct 256 KB write (64 wire segments) under a seeded per-segment drop
// probability. The kRetryKeepsCursor mutation makes the transport resume a
// retry from its delivered-byte cursor instead of offset 0, which the checker
// sees as a non-ascending segment the moment the retry redelivers.
check::WorkloadBody DroppyDirectWriteBody(uint64_t seed) {
  return [seed](Simulator& s) -> Status {
    FaultInjector injector(seed);
    LinkFaultSpec spec;
    spec.drop_probability = 0.05;
    injector.SetLinkFault(0, 1, spec);

    ExploreWorld world(s, 2);
    world.fabric.SetFaultInjector(&injector);
    auto src_dev = world.MakeDevice(0);
    auto dst_dev = world.MakeDevice(1);
    constexpr uint64_t kBytes = 256 << 10;
    auto src = src_dev->AllocateMemRegion(kBytes);
    auto dst = dst_dev->AllocateMemRegion(kBytes);
    CHECK(src.ok() && dst.ok());
    auto chan = src_dev->GetChannel(dst_dev->endpoint(), 0);
    CHECK(chan.ok());

    auto done = std::make_shared<bool>(false);
    // Heavy drop runs may exhaust the transport retries; either terminal
    // status is fine — the checker's verdict is what the test is after.
    (*chan)->Memcpy(src->data(), src->lkey(), dst->Remote().addr, dst->rkey(), kBytes,
                    device::Direction::kLocalToRemote,
                    [done](const Status&) { *done = true; });
    return s.RunUntilPredicate([done] { return *done; });
  };
}

TEST(MutationTest, ExplorerCatchesRetryThatResumesFromCursor) {
  check::ScopedMutation mutation(check::kRetryKeepsCursor);
  bool caught = false;
  for (uint64_t seed = 1; seed <= 32 && !caught; ++seed) {
    ExploreOptions options;
    options.name = "retry-keeps-cursor";
    // The bug is schedule-independent once a mid-transfer drop occurs, so
    // sweep fault seeds with a single canonical schedule each.
    options.max_schedules = 1;
    options.jitter_schedules = 0;
    options.minimize = false;
    Explorer explorer(options);
    ExploreResult result =
        explorer.Explore(check::CheckedWorkload(DroppyDirectWriteBody(seed)));
    if (result.failure_found) {
      EXPECT_EQ(result.first_failure.failure_class, "check:non-ascending-segment")
          << result.first_failure.details;
      caught = true;
    }
  }
  EXPECT_TRUE(caught) << "no seed in [1, 32] produced a mid-transfer drop";
}

// Two-rank ring all-reduce, the standard collective workload for the
// flag-protocol mutations below.
check::WorkloadBody SmallAllReduceBody(uint64_t count) {
  return [count](Simulator& s) -> Status {
    ExploreWorld world(s, 2);
    collective::CollectiveOptions options;
    options.pipeline_depth = 2;
    auto group =
        collective::CollectiveGroup::Create(&world.directory, {0, 1}, count, options);
    if (!group.ok()) return group.status();
    for (int r = 0; r < 2; ++r) {
      float* data = (*group)->data(r);
      for (uint64_t i = 0; i < count; ++i) data[i] = static_cast<float>(r + 1);
    }
    auto done = std::make_shared<bool>(false);
    auto result = std::make_shared<Status>(OkStatus());
    (*group)->AllReduce(count, [done, result](const Status& status) {
      *done = true;
      *result = status;
    });
    Status run = s.RunUntilPredicate([done] { return *done; }, /*max_events=*/400'000);
    if (!run.ok()) return run;
    return *result;
  };
}

TEST(MutationTest, ExplorerCatchesPrematureFlagTrust) {
  check::ScopedMutation mutation(check::kPrematureFlagTrust);
  ExploreOptions options;
  options.name = "premature-flag-trust";
  options.max_schedules = 8;
  Explorer explorer(options);
  ExploreResult result = explorer.Explore(check::CheckedWorkload(SmallAllReduceBody(4096)));
  ASSERT_TRUE(result.failure_found) << result.Summary();
  EXPECT_EQ(result.first_failure.failure_class, "check:premature-flag-read")
      << result.first_failure.details;
  EXPECT_EQ(result.minimized_report.failure_class, "check:premature-flag-read");
}

// ---- stall detection ------------------------------------------------------

TEST(StallDetectorTest, SuppressedFlagWriteLivelocksAndNamesTheStarvedFlag) {
  check::ScopedMutation mutation(check::kSkipFlagWrite);
  ExploreOptions options;
  options.name = "skip-flag-write";
  options.max_schedules = 4;
  options.jitter_schedules = 0;
  options.minimize = false;  // Every schedule stalls; shrinking buys nothing.
  Explorer explorer(options);
  ExploreResult result = explorer.Explore(check::CheckedWorkload(SmallAllReduceBody(1024)));
  ASSERT_TRUE(result.failure_found) << result.Summary();
  EXPECT_EQ(result.first_failure.failure_class, "stall:livelock");
  EXPECT_EQ(result.first_failure.stall.kind, StallKind::kLivelock);
  // The typed diagnostic names what the run starved on.
  EXPECT_NE(result.first_failure.stall.message.find("waiting on flag@0x"), std::string::npos)
      << result.first_failure.stall.message;
  EXPECT_NE(result.first_failure.stall.message.find("host"), std::string::npos)
      << result.first_failure.stall.message;
}

TEST(StallDetectorTest, DrainedQueueWithUntrustedFlagIsDeadlockNamingFlagAndHost) {
  auto flag = std::make_shared<uint8_t>(0);
  check::WorkloadBody body = [flag](Simulator& s) -> Status {
    auto trusted = std::make_shared<bool>(false);
    // One poll, no re-poll, and no writer anywhere: the queue drains with
    // the workload incomplete — a genuine deadlock, not a livelock.
    s.ScheduleAt(100, [&s, flag, trusted] {
      if (*flag != 0) {
        check::OnFlagTrusted(2, flag.get(), s.Now());
        *trusted = true;
        return;
      }
      check::OnFlagPolled(2, flag.get(), s.Now());
    });
    return s.RunUntilPredicate([trusted] { return *trusted; });
  };
  ExploreOptions options;
  options.name = "drained-deadlock";
  options.max_schedules = 2;
  options.jitter_schedules = 0;
  options.minimize = false;
  Explorer explorer(options);
  ExploreResult result = explorer.Explore(check::CheckedWorkload(body));
  ASSERT_TRUE(result.failure_found) << result.Summary();
  EXPECT_EQ(result.first_failure.failure_class, "stall:deadlock");
  EXPECT_EQ(result.first_failure.stall.kind, StallKind::kDeadlock);
  // The diagnostic names the waiting host and the starved flag's address.
  const std::string expected =
      StrCat("host2 waiting on flag@0x", Hex(reinterpret_cast<uint64_t>(flag.get())));
  EXPECT_NE(result.first_failure.stall.message.find(expected), std::string::npos)
      << result.first_failure.stall.message;
}

// ---- clean exploration + determinism --------------------------------------

TEST(ExplorerTest, UnmutatedCollectiveExploresCleanWithDeterministicSummary) {
  ExploreOptions options;
  options.name = "clean-all-reduce";
  options.max_schedules = 10;
  options.jitter_schedules = 2;
  Explorer first(options);
  ExploreResult a = first.Explore(check::CheckedWorkload(SmallAllReduceBody(1024)));
  EXPECT_FALSE(a.failure_found) << a.Summary();
  EXPECT_GT(a.stats.schedules_run, 1u);

  Explorer second(options);
  ExploreResult b = second.Explore(check::CheckedWorkload(SmallAllReduceBody(1024)));
  EXPECT_FALSE(b.failure_found) << b.Summary();
  EXPECT_EQ(a.Summary(), b.Summary());
}

TEST(ExploreForTestTest, HonorsEnvBound) {
  check::WorkloadBody body = [](Simulator& s) -> Status {
    s.ScheduleAt(1, [] {});
    s.ScheduleAt(1, [] {});
    return s.Run();
  };
  ExploreResult result = check::ExploreForTest("env-bound", body);
  EXPECT_FALSE(result.failure_found) << result.Summary();
  const int bound = ExploreBoundFromEnv();
  EXPECT_LE(result.stats.schedules_run, static_cast<uint64_t>(bound > 0 ? bound : 1));
  EXPECT_GE(result.stats.schedules_run, 1u);
}

TEST(MutationTest, ScopedMutationInstallsAndRestoresMasks) {
  EXPECT_FALSE(check::MutationEnabled(check::kSkipFlagWrite));
  {
    check::ScopedMutation outer(check::kSkipFlagWrite);
    EXPECT_TRUE(check::MutationEnabled(check::kSkipFlagWrite));
    {
      check::ScopedMutation inner(check::kPrematureFlagTrust);
      EXPECT_TRUE(check::MutationEnabled(check::kSkipFlagWrite));
      EXPECT_TRUE(check::MutationEnabled(check::kPrematureFlagTrust));
    }
    EXPECT_FALSE(check::MutationEnabled(check::kPrematureFlagTrust));
    EXPECT_TRUE(check::MutationEnabled(check::kSkipFlagWrite));
  }
  EXPECT_FALSE(check::MutationEnabled(check::kSkipFlagWrite));
}

}  // namespace
}  // namespace sim
}  // namespace rdmadl
