#include <gtest/gtest.h>

#include <vector>

#include "src/sim/rng.h"
#include "src/sim/simulator.h"

namespace rdmadl {
namespace sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.Now(), 0);
  EXPECT_TRUE(s.empty());
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(300, [&] { order.push_back(3); });
  s.ScheduleAt(100, [&] { order.push_back(1); });
  s.ScheduleAt(200, [&] { order.push_back(2); });
  ASSERT_TRUE(s.Run().ok());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 300);
}

TEST(SimulatorTest, EqualTimeEventsRunInScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.ScheduleAt(50, [&order, i] { order.push_back(i); });
  }
  ASSERT_TRUE(s.Run().ok());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator s;
  int64_t observed = -1;
  s.ScheduleAt(1000, [&] {
    s.ScheduleAfter(500, [&] { observed = s.Now(); });
  });
  ASSERT_TRUE(s.Run().ok());
  EXPECT_EQ(observed, 1500);
}

TEST(SimulatorTest, NestedSchedulingFromCallbacks) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 100) s.ScheduleAfter(10, recurse);
  };
  s.ScheduleAfter(0, recurse);
  ASSERT_TRUE(s.Run().ok());
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.Now(), 99 * 10);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.ScheduleAt(100, [&] { ++fired; });
  s.ScheduleAt(200, [&] { ++fired; });
  s.ScheduleAt(300, [&] { ++fired; });
  ASSERT_TRUE(s.RunUntil(250).ok());
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.Now(), 250);
  ASSERT_TRUE(s.Run().ok());
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, RunUntilAdvancesIdleTime) {
  Simulator s;
  ASSERT_TRUE(s.RunUntil(12345).ok());
  EXPECT_EQ(s.Now(), 12345);
}

TEST(SimulatorTest, RunUntilPredicate) {
  Simulator s;
  int count = 0;
  std::function<void()> tick = [&]() {
    ++count;
    s.ScheduleAfter(10, tick);
  };
  s.ScheduleAfter(10, tick);
  ASSERT_TRUE(s.RunUntilPredicate([&] { return count >= 5; }).ok());
  EXPECT_EQ(count, 5);
}

TEST(SimulatorTest, RunUntilPredicateFailsOnDrain) {
  Simulator s;
  s.ScheduleAfter(10, [] {});
  Status st = s.RunUntilPredicate([] { return false; });
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(SimulatorTest, EventCapDetectsLivelock) {
  Simulator s;
  std::function<void()> spin = [&]() { s.ScheduleAfter(1, spin); };
  s.ScheduleAfter(0, spin);
  Status st = s.Run(/*max_events=*/1000);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

TEST(SimulatorTest, StopEndsRun) {
  Simulator s;
  int fired = 0;
  s.ScheduleAt(10, [&] {
    ++fired;
    s.Stop();
  });
  s.ScheduleAt(20, [&] { ++fired; });
  ASSERT_TRUE(s.Run().ok());
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, CountsDispatchedEvents) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.ScheduleAfter(i, [] {});
  ASSERT_TRUE(s.Run().ok());
  EXPECT_EQ(s.events_dispatched(), 7u);
}

TEST(DurationHelpersTest, Conversions) {
  EXPECT_EQ(Microseconds(2.5), 2500);
  EXPECT_EQ(Milliseconds(1.0), 1'000'000);
  EXPECT_EQ(Seconds(0.001), 1'000'000);
  EXPECT_EQ(Nanoseconds(7), 7);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double v = r.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(13), 13u);
  }
  EXPECT_EQ(r.Uniform(0), 0u);
}

TEST(RngTest, NormalHasRoughlyZeroMeanUnitVariance) {
  Rng r(123);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = r.Normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

}  // namespace
}  // namespace sim
}  // namespace rdmadl
