#include "src/collective/collective.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/net/fabric.h"
#include "src/rdma/verbs.h"

namespace rdmadl {
namespace collective {
namespace {

// A self-contained simulated cluster sized for one test.
struct World {
  explicit World(int num_hosts)
      : fabric(&simulator, cost, num_hosts), rdma(&fabric), directory(&rdma) {}

  std::unique_ptr<CollectiveGroup> MakeGroup(int n, uint64_t max_elements,
                                             CollectiveOptions options = {}) {
    std::vector<int> hosts;
    for (int i = 0; i < n; ++i) hosts.push_back(i);
    auto group = CollectiveGroup::Create(&directory, hosts, max_elements, options);
    CHECK(group.ok()) << group.status();
    return std::move(group).value();
  }

  sim::Simulator simulator;
  net::CostModel cost;
  net::Fabric fabric;
  rdma::RdmaFabric rdma;
  device::DeviceDirectory directory;
};

// Integer-valued per-rank inputs so float sums are exact: rank r element i
// holds (r + 1) * ((i % 7) + 1).
void FillInputs(CollectiveGroup* group, uint64_t count) {
  for (int r = 0; r < group->size(); ++r) {
    float* data = group->data(r);
    ASSERT_NE(data, nullptr);
    for (uint64_t i = 0; i < group->max_elements(); ++i) {
      data[i] = i < count ? static_cast<float>((r + 1) * (i % 7 + 1)) : -1.0f;
    }
  }
}

float ExpectedSum(int n, uint64_t i) {
  return static_cast<float>((i % 7 + 1) * n * (n + 1) / 2);
}

Status RunOp(World* world, const std::function<void(DoneCallback)>& op) {
  bool fired = false;
  Status status = Internal("done callback never ran");
  op([&](const Status& s) {
    fired = true;
    status = s;
  });
  Status run = world->simulator.Run();
  CHECK_OK(run);
  CHECK(fired);
  return status;
}

TEST(CollectiveTest, RingAllReduceSumsExactlyAcrossGroupSizes) {
  for (int n : {2, 4, 8}) {
    World world(n);
    const uint64_t count = 1024;
    auto group = world.MakeGroup(n, count);
    FillInputs(group.get(), count);
    ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                  group->AllReduce(count, std::move(done));
                }).ok());
    for (int r = 0; r < n; ++r) {
      const float* data = group->data(r);
      for (uint64_t i = 0; i < count; ++i) {
        ASSERT_EQ(data[i], ExpectedSum(n, i)) << "n=" << n << " rank=" << r << " i=" << i;
      }
    }
    EXPECT_EQ(group->stats().allreduces, 1);
    EXPECT_GT(world.simulator.Now(), 0);
  }
}

TEST(CollectiveTest, RingAllReduceHandlesUnevenAndTinyCounts) {
  // Counts that are not divisible by N, smaller than N (empty ring chunks),
  // and not divisible by the lane count all must still sum exactly.
  for (uint64_t count : {1031ull, 10ull, 3ull, 1ull}) {
    World world(4);
    auto group = world.MakeGroup(4, 2048);
    FillInputs(group.get(), count);
    ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                  group->AllReduce(count, std::move(done));
                }).ok())
        << "count=" << count;
    for (int r = 0; r < 4; ++r) {
      const float* data = group->data(r);
      for (uint64_t i = 0; i < count; ++i) {
        ASSERT_EQ(data[i], ExpectedSum(4, i)) << "count=" << count << " rank=" << r;
      }
      // Elements beyond |count| are untouched.
      EXPECT_EQ(data[count], -1.0f);
    }
  }
}

TEST(CollectiveTest, RingAllReduceAcrossPipelineDepths) {
  for (int depth : {1, 3, 8}) {
    World world(4);
    CollectiveOptions options;
    options.pipeline_depth = depth;
    const uint64_t count = 997;  // Prime: uneven against every lane count.
    auto group = world.MakeGroup(4, count, options);
    FillInputs(group.get(), count);
    ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                  group->AllReduce(count, std::move(done));
                }).ok());
    for (int r = 0; r < 4; ++r) {
      const float* data = group->data(r);
      for (uint64_t i = 0; i < count; ++i) {
        ASSERT_EQ(data[i], ExpectedSum(4, i)) << "depth=" << depth << " rank=" << r;
      }
    }
  }
}

TEST(CollectiveTest, ReduceScatterLeavesRankOwningItsChunk) {
  World world(4);
  const uint64_t count = 1030;  // 1030 % 4 != 0.
  auto group = world.MakeGroup(4, count);
  FillInputs(group.get(), count);
  ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                group->ReduceScatter(count, std::move(done));
              }).ok());
  for (int r = 0; r < 4; ++r) {
    const auto [offset, length] = group->Chunk(count, r);
    const float* data = group->data(r);
    for (uint64_t i = offset; i < offset + length; ++i) {
      ASSERT_EQ(data[i], ExpectedSum(4, i)) << "rank=" << r << " i=" << i;
    }
  }
  EXPECT_EQ(group->stats().reduce_scatters, 1);
}

TEST(CollectiveTest, AllGatherDistributesEveryChunk) {
  World world(4);
  const uint64_t count = 1030;
  auto group = world.MakeGroup(4, count);
  // Rank r starts with only its own chunk valid.
  for (int r = 0; r < 4; ++r) {
    float* data = group->data(r);
    for (uint64_t i = 0; i < count; ++i) data[i] = -7.0f;
    const auto [offset, length] = group->Chunk(count, r);
    for (uint64_t i = offset; i < offset + length; ++i) {
      data[i] = static_cast<float>(1000 * r + i % 100);
    }
  }
  ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                group->AllGather(count, std::move(done));
              }).ok());
  for (int r = 0; r < 4; ++r) {
    const float* data = group->data(r);
    for (int owner = 0; owner < 4; ++owner) {
      const auto [offset, length] = group->Chunk(count, owner);
      for (uint64_t i = offset; i < offset + length; ++i) {
        ASSERT_EQ(data[i], static_cast<float>(1000 * owner + i % 100))
            << "rank=" << r << " owner=" << owner;
      }
    }
  }
  EXPECT_EQ(group->stats().all_gathers, 1);
}

TEST(CollectiveTest, BroadcastFromNonzeroRoot) {
  World world(5);
  const uint64_t count = 333;
  auto group = world.MakeGroup(5, count);
  for (int r = 0; r < 5; ++r) {
    float* data = group->data(r);
    for (uint64_t i = 0; i < count; ++i) {
      data[i] = r == 2 ? static_cast<float>(3 * i + 1) : 0.0f;
    }
  }
  ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                group->Broadcast(/*root=*/2, count, std::move(done));
              }).ok());
  for (int r = 0; r < 5; ++r) {
    const float* data = group->data(r);
    for (uint64_t i = 0; i < count; ++i) {
      ASSERT_EQ(data[i], static_cast<float>(3 * i + 1)) << "rank=" << r << " i=" << i;
    }
  }
  EXPECT_EQ(group->stats().broadcasts, 1);
}

TEST(CollectiveTest, NaiveGatherAlgorithmSumsExactly) {
  World world(4);
  CollectiveOptions options;
  options.algorithm = Algorithm::kNaiveGather;
  const uint64_t count = 513;
  auto group = world.MakeGroup(4, count, options);
  FillInputs(group.get(), count);
  ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                group->AllReduce(count, std::move(done));
              }).ok());
  for (int r = 0; r < 4; ++r) {
    const float* data = group->data(r);
    for (uint64_t i = 0; i < count; ++i) {
      ASSERT_EQ(data[i], ExpectedSum(4, i)) << "rank=" << r << " i=" << i;
    }
  }
}

TEST(CollectiveTest, TcpStagingTransportSumsExactly) {
  World world(4);
  CollectiveOptions options;
  options.transport = Transport::kTcpStaging;
  const uint64_t count = 777;
  auto group = world.MakeGroup(4, count, options);
  FillInputs(group.get(), count);
  ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                group->AllReduce(count, std::move(done));
              }).ok());
  for (int r = 0; r < 4; ++r) {
    const float* data = group->data(r);
    for (uint64_t i = 0; i < count; ++i) {
      ASSERT_EQ(data[i], ExpectedSum(4, i)) << "rank=" << r << " i=" << i;
    }
  }
}

TEST(CollectiveTest, TcpStagingIsSlowerThanZeroCopyRing) {
  const uint64_t count = 1u << 20;  // 4 MB.
  int64_t elapsed[2] = {0, 0};
  const Transport transports[2] = {Transport::kRdmaZeroCopy, Transport::kTcpStaging};
  for (int i = 0; i < 2; ++i) {
    World world(8);
    CollectiveOptions options;
    options.transport = transports[i];
    options.materialize = false;
    auto group = world.MakeGroup(8, count, options);
    ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                  group->AllReduce(count, std::move(done));
                }).ok());
    elapsed[i] = world.simulator.Now();
  }
  EXPECT_LT(elapsed[0], elapsed[1]);
}

TEST(CollectiveTest, RingBeatsNaiveGatherOnLargeTensors) {
  const uint64_t count = 1u << 20;
  int64_t elapsed[2] = {0, 0};
  const Algorithm algorithms[2] = {Algorithm::kRing, Algorithm::kNaiveGather};
  for (int i = 0; i < 2; ++i) {
    World world(8);
    CollectiveOptions options;
    options.algorithm = algorithms[i];
    options.materialize = false;
    auto group = world.MakeGroup(8, count, options);
    ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                  group->AllReduce(count, std::move(done));
                }).ok());
    elapsed[i] = world.simulator.Now();
  }
  EXPECT_LT(elapsed[0], elapsed[1]);
}

TEST(CollectiveTest, VirtualModeRunsWithoutMaterializing) {
  World world(8);
  CollectiveOptions options;
  options.materialize = false;
  const uint64_t count = 1u << 22;  // 16 MB per rank, never allocated.
  auto group = world.MakeGroup(8, count, options);
  EXPECT_EQ(group->data(0), nullptr);
  ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                group->AllReduce(count, std::move(done));
              }).ok());
  // Ring traffic: every rank sends 2(N-1) chunks of ~count/N elements.
  const uint64_t expected = 2ull * 7 * count * 4;  // Sum over the 8 ranks.
  EXPECT_NEAR(static_cast<double>(group->stats().bytes_sent),
              static_cast<double>(expected), static_cast<double>(expected) / 100);
  EXPECT_GT(world.simulator.Now(), 0);
}

TEST(CollectiveTest, TrivialAndInvalidOps) {
  World world(4);
  auto group = world.MakeGroup(4, 128);

  // Zero-element op completes immediately.
  EXPECT_TRUE(
      RunOp(&world, [&](DoneCallback done) { group->AllReduce(0, std::move(done)); }).ok());

  // Count above capacity is rejected.
  Status status = RunOp(&world, [&](DoneCallback done) {
    group->AllReduce(4096, std::move(done));
  });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  // Bad broadcast root is rejected.
  status = RunOp(&world, [&](DoneCallback done) {
    group->Broadcast(/*root=*/9, 16, std::move(done));
  });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  // A second collective while one is in flight is rejected.
  Status second = OkStatus();
  bool first_done = false;
  group->AllReduce(128, [&](const Status& s) {
    EXPECT_TRUE(s.ok());
    first_done = true;
  });
  group->AllReduce(128, [&](const Status& s) { second = s; });
  CHECK_OK(world.simulator.Run());
  EXPECT_TRUE(first_done);
  EXPECT_EQ(second.code(), StatusCode::kFailedPrecondition);
}

TEST(CollectiveTest, SingleRankGroupIsImmediate) {
  World world(1);
  auto group = world.MakeGroup(1, 64);
  float* data = group->data(0);
  for (int i = 0; i < 64; ++i) data[i] = static_cast<float>(i);
  EXPECT_TRUE(
      RunOp(&world, [&](DoneCallback done) { group->AllReduce(64, std::move(done)); }).ok());
  for (int i = 0; i < 64; ++i) EXPECT_EQ(data[i], static_cast<float>(i));
}

TEST(CollectiveTest, CreateValidatesArguments) {
  World world(4);
  EXPECT_FALSE(CollectiveGroup::Create(&world.directory, {}, 16).ok());
  EXPECT_FALSE(CollectiveGroup::Create(&world.directory, {0, 1}, 0).ok());
  EXPECT_FALSE(CollectiveGroup::Create(&world.directory, {0, 9}, 16).ok());
  EXPECT_FALSE(CollectiveGroup::Create(&world.directory, {0, 1, 1}, 16).ok());
}

TEST(CollectiveTest, BackToBackCollectivesReuseTheGroup) {
  World world(4);
  const uint64_t count = 256;
  auto group = world.MakeGroup(4, count);
  for (int round = 0; round < 3; ++round) {
    FillInputs(group.get(), count);
    ASSERT_TRUE(RunOp(&world, [&](DoneCallback done) {
                  group->AllReduce(count, std::move(done));
                }).ok());
    for (int r = 0; r < 4; ++r) {
      const float* data = group->data(r);
      for (uint64_t i = 0; i < count; ++i) {
        ASSERT_EQ(data[i], ExpectedSum(4, i)) << "round=" << round;
      }
    }
  }
  EXPECT_EQ(group->stats().allreduces, 3);
  // Address distribution ran exactly once, at the first collective, and only
  // over the ring-successor pairs the schedules write on (one per rank) —
  // not all n*(n-1) pairs.
  EXPECT_EQ(group->stats().setup_rpcs, 4);
}

}  // namespace
}  // namespace collective
}  // namespace rdmadl
