// End-to-end tests of the distributed runtime: executor scheduling, session
// step loop, and all transfer mechanisms in real-memory mode (bytes actually
// cross the simulated wire and numerics must survive).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/comm/rpc_mechanism.h"
#include "src/comm/zerocopy_mechanism.h"
#include "src/runtime/session.h"

namespace rdmadl {
namespace runtime {
namespace {

using graph::Graph;
using graph::Node;
using tensor::DType;
using tensor::Tensor;
using tensor::TensorShape;

std::unique_ptr<Cluster> MakeCluster(int machines) {
  ClusterOptions options;
  options.num_machines = machines;
  options.mode = ops::ComputeMode::kReal;
  options.process_defaults.rdma_arena_bytes = 8ull << 20;
  options.process_defaults.seed = 99;
  return std::make_unique<Cluster>(options);
}

// Builds the canonical PS/worker graph of Figure 3, small enough for real
// math:  ps:0 holds w [4,4]; worker computes g = Identity(MatMul(w, x)) and
// ships it back; ps applies SGD. The Identity exercises the allocation-site
// tracer (the transferred buffer is allocated by MatMul, not by _Send's
// direct predecessor).
struct PsWorkerGraph {
  std::unique_ptr<Graph> graph = std::make_unique<Graph>();
  Node* w = nullptr;
  Node* apply = nullptr;
};

PsWorkerGraph BuildPsWorkerGraph() {
  ops::RegisterStandardOps();
  PsWorkerGraph g;
  Graph* graph = g.graph.get();
  g.w = *graph->AddNode("w", "Variable", std::vector<Node*>{});
  g.w->SetAttr("shape", TensorShape{4, 4});
  g.w->SetAttr("init", std::string("uniform"));
  g.w->SetAttr("init_scale", 0.5);
  g.w->set_device("ps:0");

  Node* x = *graph->AddNode("x", "Placeholder", std::vector<Node*>{});
  x->SetAttr("shape", TensorShape{4, 4});
  x->set_device("worker:0");

  Node* h = *graph->AddNode("h", "MatMul", {g.w, x});
  h->set_device("worker:0");
  Node* pass = *graph->AddNode("pass", "Identity", {h});
  pass->set_device("worker:0");

  g.apply = *graph->AddNode("apply", "ApplySgd", {g.w, pass});
  g.apply->SetAttr("learning_rate", 0.25);
  g.apply->set_device("ps:0");
  return g;
}

Tensor Ones(const TensorShape& shape) {
  Tensor t(tensor::CpuAllocator::Get(), DType::kFloat32, shape);
  for (int64_t i = 0; i < t.num_elements(); ++i) t.at<float>(i) = 1.0f;
  return t;
}

// Runs |steps| steps of the PS/worker graph under |mechanism|, returning the
// final weights.
StatusOr<std::vector<float>> RunTraining(Cluster* cluster, TransferMechanism* mechanism,
                                         int steps) {
  PsWorkerGraph g = BuildPsWorkerGraph();
  DistributedSession session(cluster, mechanism, g.graph.get(), SessionOptions{});
  RDMADL_RETURN_IF_ERROR(session.Setup());
  std::unordered_map<std::string, Tensor> feeds;
  feeds["x"] = Ones(TensorShape{4, 4});
  for (int i = 0; i < steps; ++i) {
    RDMADL_RETURN_IF_ERROR(session.RunStep(feeds));
  }
  const Tensor& w = cluster->host("ps:0")->resources()->GetVariable("w");
  std::vector<float> out(w.num_elements());
  for (int64_t i = 0; i < w.num_elements(); ++i) out[i] = w.at<float>(i);
  return out;
}

TEST(SessionTest, SingleDeviceGraphRuns) {
  auto cluster = MakeCluster(1);
  ASSERT_TRUE(cluster->AddProcess("worker:0", 0).ok());
  ops::RegisterStandardOps();
  Graph graph;
  Node* a = *graph.AddNode("a", "Const", std::vector<Node*>{});
  a->SetAttr("shape", TensorShape{8});
  a->SetAttr("fill_value", 3.0);
  a->set_device("worker:0");
  Node* b = *graph.AddNode("b", "ReduceSum", {a});
  b->set_device("worker:0");

  comm::ZeroCopyRdmaMechanism mech(cluster.get(), comm::ZeroCopyOptions{});
  DistributedSession session(cluster.get(), &mech, &graph, SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  ASSERT_TRUE(session.RunStep().ok());
  const Tensor* out = session.executor_for("worker:0")->OutputOf("b");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->at<float>(0), 24.0f);
  EXPECT_GT(session.last_step_duration_ns(), 0);
}

TEST(SessionTest, StepDurationReflectsCostAnnotations) {
  auto cluster = MakeCluster(1);
  ASSERT_TRUE(cluster->AddProcess("worker:0", 0).ok());
  Graph graph;
  Node* a = *graph.AddNode("a", "Const", std::vector<Node*>{});
  a->SetAttr("shape", TensorShape{1});
  a->SetAttr("cost_ns", 5'000'000.0);  // 5 ms of simulated compute.
  a->set_device("worker:0");

  comm::ZeroCopyRdmaMechanism mech(cluster.get(), comm::ZeroCopyOptions{});
  DistributedSession session(cluster.get(), &mech, &graph, SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  ASSERT_TRUE(session.RunStep().ok());
  EXPECT_GE(session.last_step_duration_ns(), 5'000'000);
  EXPECT_LT(session.last_step_duration_ns(), 6'000'000);
}

TEST(SessionTest, BatchMultiplierScalesCompute) {
  auto cluster = MakeCluster(1);
  ASSERT_TRUE(cluster->AddProcess("worker:0", 0).ok());
  Graph graph;
  Node* a = *graph.AddNode("a", "Const", std::vector<Node*>{});
  a->SetAttr("shape", TensorShape{1});
  a->SetAttr("cost_ns", 1'000'000.0);
  a->set_device("worker:0");

  comm::ZeroCopyRdmaMechanism mech(cluster.get(), comm::ZeroCopyOptions{});
  SessionOptions options;
  options.executor.batch_multiplier = 4.0;
  DistributedSession session(cluster.get(), &mech, &graph, options);
  ASSERT_TRUE(session.Setup().ok());
  ASSERT_TRUE(session.RunStep().ok());
  EXPECT_GE(session.last_step_duration_ns(), 4'000'000);
}

TEST(SessionTest, ComputeSerializationModes) {
  // Cost-annotated ops model GPU kernels: with serialize_compute (the
  // default) they run one at a time on the device; with it off they overlap
  // across executor workers.
  auto run = [](bool serialize) {
    auto cluster = MakeCluster(1);
    CHECK_OK(cluster->AddProcess("worker:0", 0).status());
    Graph graph;
    for (int i = 0; i < 4; ++i) {
      Node* n = *graph.AddNode(StrCat("c", i), "Const", std::vector<Node*>{});
      n->SetAttr("shape", TensorShape{1});
      n->SetAttr("cost_ns", 1'000'000.0);
      n->set_device("worker:0");
    }
    comm::ZeroCopyRdmaMechanism mech(cluster.get(), comm::ZeroCopyOptions{});
    SessionOptions options;
    options.executor.num_workers = 4;
    options.executor.serialize_compute = serialize;
    DistributedSession session(cluster.get(), &mech, &graph, options);
    CHECK_OK(session.Setup());
    CHECK_OK(session.RunStep());
    return session.last_step_duration_ns();
  };
  EXPECT_GE(run(true), 4'000'000);   // Serial on the device.
  EXPECT_LT(run(false), 2'000'000);  // Overlapped on CPU workers.
}

TEST(SessionTest, MissingPlacementFailsSetup) {
  auto cluster = MakeCluster(1);
  ASSERT_TRUE(cluster->AddProcess("worker:0", 0).ok());
  Graph graph;
  Node* a = *graph.AddNode("a", "Const", std::vector<Node*>{});
  a->SetAttr("shape", TensorShape{1});
  comm::ZeroCopyRdmaMechanism mech(cluster.get(), comm::ZeroCopyOptions{});
  DistributedSession session(cluster.get(), &mech, &graph, SessionOptions{});
  EXPECT_FALSE(session.Setup().ok());
}

class MechanismEquivalenceTest : public ::testing::Test {};

TEST_F(MechanismEquivalenceTest, AllMechanismsProduceIdenticalTraining) {
  // The acid test: four transport stacks, byte-identical results. Any copy,
  // flag, ordering, or rendezvous bug shows up as weight divergence.
  std::vector<std::vector<float>> results;
  std::vector<std::string> names;

  {
    auto cluster = MakeCluster(2);
    ASSERT_TRUE(cluster->AddProcess("ps:0", 0).ok());
    ASSERT_TRUE(cluster->AddProcess("worker:0", 1).ok());
    comm::ZeroCopyRdmaMechanism mech(cluster.get(), comm::ZeroCopyOptions{});
    auto r = RunTraining(cluster.get(), &mech, 5);
    ASSERT_TRUE(r.ok()) << r.status();
    results.push_back(*r);
    names.push_back(mech.name());
    EXPECT_GT(mech.stats().static_transfers, 0);
  }
  {
    auto cluster = MakeCluster(2);
    ASSERT_TRUE(cluster->AddProcess("ps:0", 0).ok());
    ASSERT_TRUE(cluster->AddProcess("worker:0", 1).ok());
    comm::ZeroCopyOptions opts;
    opts.graph_analysis = false;  // RDMA.cp
    comm::ZeroCopyRdmaMechanism mech(cluster.get(), opts);
    auto r = RunTraining(cluster.get(), &mech, 5);
    ASSERT_TRUE(r.ok()) << r.status();
    results.push_back(*r);
    names.push_back(mech.name());
    EXPECT_GT(mech.stats().staged_sends, 0);
    EXPECT_EQ(mech.stats().zero_copy_sends, 0);
  }
  {
    auto cluster = MakeCluster(2);
    ASSERT_TRUE(cluster->AddProcess("ps:0", 0).ok());
    ASSERT_TRUE(cluster->AddProcess("worker:0", 1).ok());
    comm::ZeroCopyOptions opts;
    opts.force_dynamic = true;  // §3.3 protocol on static shapes.
    comm::ZeroCopyRdmaMechanism mech(cluster.get(), opts);
    auto r = RunTraining(cluster.get(), &mech, 5);
    ASSERT_TRUE(r.ok()) << r.status();
    results.push_back(*r);
    names.push_back("RDMA.zerocp-dynamic");
    EXPECT_GT(mech.stats().dynamic_transfers, 0);
    EXPECT_EQ(mech.stats().static_transfers, 0);
  }
  {
    auto cluster = MakeCluster(2);
    ASSERT_TRUE(cluster->AddProcess("ps:0", 0).ok());
    ASSERT_TRUE(cluster->AddProcess("worker:0", 1).ok());
    comm::RpcMechanism mech(cluster.get(), net::Plane::kTcp);
    auto r = RunTraining(cluster.get(), &mech, 5);
    ASSERT_TRUE(r.ok()) << r.status();
    results.push_back(*r);
    names.push_back(mech.name());
  }
  {
    auto cluster = MakeCluster(2);
    ASSERT_TRUE(cluster->AddProcess("ps:0", 0).ok());
    ASSERT_TRUE(cluster->AddProcess("worker:0", 1).ok());
    comm::RpcMechanism mech(cluster.get(), net::Plane::kRdma);
    auto r = RunTraining(cluster.get(), &mech, 5);
    ASSERT_TRUE(r.ok()) << r.status();
    results.push_back(*r);
    names.push_back(mech.name());
  }

  // Training must have moved the weights at all.
  bool moved = false;
  for (float v : results[0]) {
    if (std::abs(v) > 1e-6) moved = true;
  }
  EXPECT_TRUE(moved);

  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].size(), results[0].size());
    for (size_t j = 0; j < results[0].size(); ++j) {
      EXPECT_EQ(results[i][j], results[0][j])
          << names[i] << " diverged from " << names[0] << " at weight " << j;
    }
  }
}

TEST_F(MechanismEquivalenceTest, ZeroCopyIsFasterThanBaselines) {
  // Figure 8/9 shape at miniature scale: zerocp < cp < gRPC.RDMA < gRPC.TCP
  // in per-step time. Use a larger weight so transfer time dominates.
  auto build = [](Cluster* cluster) {
    ops::RegisterStandardOps();
    auto graph = std::make_unique<Graph>();
    Node* w = *graph->AddNode("w", "Variable", std::vector<Node*>{});
    w->SetAttr("shape", TensorShape{512, 512});  // 1 MB
    w->SetAttr("init", std::string("zeros"));
    w->set_device("ps:0");
    Node* g = *graph->AddNode("g", "Identity", {w});
    g->set_device("worker:0");
    Node* apply = *graph->AddNode("apply", "ApplySgd", {w, g});
    apply->SetAttr("learning_rate", 0.0);
    apply->set_device("ps:0");
    return graph;
  };
  auto time_with = [&](TransferMechanism* mech, Cluster* cluster) -> int64_t {
    auto graph = build(cluster);
    DistributedSession session(cluster, mech, graph.get(), SessionOptions{});
    CHECK_OK(session.Setup());
    CHECK_OK(session.RunStep());  // Warm-up (tracing step for zerocp).
    CHECK_OK(session.RunStep());
    return session.last_step_duration_ns();
  };

  int64_t t_zerocp, t_cp, t_rpc_rdma, t_rpc_tcp;
  {
    auto c = MakeCluster(2);
    ASSERT_TRUE(c->AddProcess("ps:0", 0).ok() && c->AddProcess("worker:0", 1).ok());
    comm::ZeroCopyRdmaMechanism m(c.get(), comm::ZeroCopyOptions{});
    t_zerocp = time_with(&m, c.get());
  }
  {
    auto c = MakeCluster(2);
    ASSERT_TRUE(c->AddProcess("ps:0", 0).ok() && c->AddProcess("worker:0", 1).ok());
    comm::ZeroCopyOptions o;
    o.graph_analysis = false;
    comm::ZeroCopyRdmaMechanism m(c.get(), o);
    t_cp = time_with(&m, c.get());
  }
  {
    auto c = MakeCluster(2);
    ASSERT_TRUE(c->AddProcess("ps:0", 0).ok() && c->AddProcess("worker:0", 1).ok());
    comm::RpcMechanism m(c.get(), net::Plane::kRdma);
    t_rpc_rdma = time_with(&m, c.get());
  }
  {
    auto c = MakeCluster(2);
    ASSERT_TRUE(c->AddProcess("ps:0", 0).ok() && c->AddProcess("worker:0", 1).ok());
    comm::RpcMechanism m(c.get(), net::Plane::kTcp);
    t_rpc_tcp = time_with(&m, c.get());
  }
  EXPECT_LT(t_zerocp, t_cp);
  EXPECT_LT(t_cp, t_rpc_rdma);
  EXPECT_LT(t_rpc_rdma, t_rpc_tcp);
}

TEST(ZeroCopyAnalysisTest, TracerPromotesAllocationSiteAfterFirstStep) {
  auto cluster = MakeCluster(2);
  ASSERT_TRUE(cluster->AddProcess("ps:0", 0).ok());
  ASSERT_TRUE(cluster->AddProcess("worker:0", 1).ok());
  comm::ZeroCopyRdmaMechanism mech(cluster.get(), comm::ZeroCopyOptions{});
  PsWorkerGraph g = BuildPsWorkerGraph();
  DistributedSession session(cluster.get(), &mech, g.graph.get(), SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  std::unordered_map<std::string, Tensor> feeds;
  feeds["x"] = Ones(TensorShape{4, 4});

  // Step 0: the worker's gradient buffer (allocated by MatMul, hidden behind
  // Identity) is not yet known to be hot -> staged copy. The PS's weight is a
  // static producer -> zero-copy from the start.
  ASSERT_TRUE(session.RunStep(feeds).ok());
  EXPECT_EQ(mech.stats().staged_sends, 1);
  EXPECT_EQ(mech.stats().zero_copy_sends, 1);

  // Step 1+: the tracer promoted MatMul's allocation site into set S; the
  // gradient is now allocated in the RDMA arena -> both directions zero-copy.
  ASSERT_TRUE(session.RunStep(feeds).ok());
  EXPECT_EQ(mech.stats().staged_sends, 1);
  EXPECT_EQ(mech.stats().zero_copy_sends, 3);
}

TEST(ZeroCopyAnalysisTest, DynamicShapeUsesDynamicProtocol) {
  auto cluster = MakeCluster(2);
  ASSERT_TRUE(cluster->AddProcess("ps:0", 0).ok());
  ASSERT_TRUE(cluster->AddProcess("worker:0", 1).ok());
  ops::RegisterStandardOps();
  Graph graph;
  // x has an unknown batch dimension -> h's shape is dynamic -> §3.3 path.
  Node* x = *graph.AddNode("x", "Placeholder", std::vector<Node*>{});
  x->SetAttr("shape", TensorShape{tensor::kUnknownDim, 4});
  x->set_device("worker:0");
  Node* w = *graph.AddNode("w", "Const", std::vector<Node*>{});
  w->SetAttr("shape", TensorShape{4, 2});
  w->SetAttr("fill_value", 1.0);
  w->set_device("worker:0");
  Node* h = *graph.AddNode("h", "MatMul", {x, w});
  h->set_device("worker:0");
  Node* sum = *graph.AddNode("sum", "ReduceSum", {h});
  sum->set_device("ps:0");

  comm::ZeroCopyRdmaMechanism mech(cluster.get(), comm::ZeroCopyOptions{});
  DistributedSession session(cluster.get(), &mech, &graph, SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());

  // Vary the batch size across steps, as an RNN with variable-length
  // sequences would (§3.3's motivation).
  for (int batch : {2, 5, 3}) {
    std::unordered_map<std::string, Tensor> feeds;
    feeds["x"] = Ones(TensorShape{batch, 4});
    ASSERT_TRUE(session.RunStep(feeds).ok());
    const Tensor* out = session.executor_for("ps:0")->OutputOf("sum");
    ASSERT_NE(out, nullptr);
    // sum(ones[batch,4] x ones[4,2]) = batch * 2 * 4.
    EXPECT_EQ(out->at<float>(0), static_cast<float>(batch * 8));
  }
  EXPECT_EQ(mech.stats().dynamic_transfers, 3);
  EXPECT_EQ(mech.stats().static_transfers, 0);
}

TEST(RpcMechanismTest, RdmaVariantCrashesAboveOneGigabyte) {
  // Reproduces TF r1.2's documented gRPC.RDMA failure (missing Figure 8
  // point) without allocating a real gigabyte: shrink the limit.
  ClusterOptions options;
  options.num_machines = 2;
  options.mode = ops::ComputeMode::kReal;
  options.cost.rpc_rdma_max_message_bytes = 1024;  // Scaled-down limit.
  options.process_defaults.rdma_arena_bytes = 8ull << 20;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.AddProcess("ps:0", 0).ok());
  ASSERT_TRUE(cluster.AddProcess("worker:0", 1).ok());

  ops::RegisterStandardOps();
  Graph graph;
  Node* w = *graph.AddNode("w", "Const", std::vector<Node*>{});
  w->SetAttr("shape", TensorShape{1024});  // 4 KB > the shrunken limit.
  w->set_device("worker:0");
  Node* sum = *graph.AddNode("sum", "ReduceSum", {w});
  sum->set_device("ps:0");

  comm::RpcMechanism mech(&cluster, net::Plane::kRdma);
  DistributedSession session(&cluster, &mech, &graph, SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  Status status = session.RunStep();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("1 GB"), std::string::npos);
}

TEST(ExecutorStatsTest, PollingAsyncRecvPollsMoreThanOnce) {
  auto cluster = MakeCluster(2);
  ASSERT_TRUE(cluster->AddProcess("ps:0", 0).ok());
  ASSERT_TRUE(cluster->AddProcess("worker:0", 1).ok());
  comm::ZeroCopyRdmaMechanism mech(cluster.get(), comm::ZeroCopyOptions{});
  PsWorkerGraph g = BuildPsWorkerGraph();
  DistributedSession session(cluster.get(), &mech, g.graph.get(), SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  std::unordered_map<std::string, Tensor> feeds;
  feeds["x"] = Ones(TensorShape{4, 4});
  ASSERT_TRUE(session.RunStep(feeds).ok());
  const ExecutorStats& stats = session.executor_for("worker:0")->stats();
  // The weight tensor takes ~microseconds to arrive; the polling-async recv
  // must have re-polled (failed polls re-enqueue at the queue tail, §4).
  EXPECT_GT(stats.poll_attempts, 1);
  EXPECT_GT(stats.failed_polls, 0);
}

}  // namespace
}  // namespace runtime
}  // namespace rdmadl
