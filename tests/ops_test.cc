#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/graph/graph.h"
#include "src/ops/kernel.h"
#include "src/tensor/tensor.h"

namespace rdmadl {
namespace ops {
namespace {

using graph::Graph;
using graph::Node;
using tensor::CpuAllocator;
using tensor::DType;
using tensor::Tensor;
using tensor::TensorShape;

class OpsTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardOps(); }

  Tensor MakeTensor(const TensorShape& shape, std::vector<float> values) {
    Tensor t(CpuAllocator::Get(), DType::kFloat32, shape);
    CHECK_EQ(static_cast<int64_t>(values.size()), t.num_elements());
    for (int64_t i = 0; i < t.num_elements(); ++i) t.at<float>(i) = values[i];
    return t;
  }

  // Runs one kernel standalone.
  StatusOr<Tensor> Run(Node* node, std::vector<Tensor> inputs,
                       ComputeMode mode = ComputeMode::kReal) {
    auto kernel = KernelRegistry::Global()->Create(*node);
    RDMADL_RETURN_IF_ERROR(kernel.status());
    OpKernelContext ctx(node, std::move(inputs), CpuAllocator::Get(), mode, &resources_,
                        &feeds_);
    RDMADL_RETURN_IF_ERROR((*kernel)->Compute(&ctx));
    return ctx.output();
  }

  Graph g_;
  ResourceManager resources_{42};
  std::unordered_map<std::string, Tensor> feeds_;
};

TEST_F(OpsTest, ConstFillsValue) {
  Node* n = *g_.AddNode("c", "Const", std::vector<Node*>{});
  n->SetAttr("shape", TensorShape{3});
  n->SetAttr("fill_value", 2.5);
  auto out = Run(n, {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->at<float>(0), 2.5f);
  EXPECT_EQ(out->at<float>(2), 2.5f);
}

TEST_F(OpsTest, PlaceholderReadsFeed) {
  Node* n = *g_.AddNode("x", "Placeholder", std::vector<Node*>{});
  n->SetAttr("shape", TensorShape{tensor::kUnknownDim, 2});
  feeds_["x"] = MakeTensor(TensorShape{1, 2}, {5, 6});
  auto out = Run(n, {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->at<float>(1), 6.0f);
}

TEST_F(OpsTest, PlaceholderRejectsBadShape) {
  Node* n = *g_.AddNode("x", "Placeholder", std::vector<Node*>{});
  n->SetAttr("shape", TensorShape{tensor::kUnknownDim, 3});
  feeds_["x"] = MakeTensor(TensorShape{1, 2}, {5, 6});
  EXPECT_EQ(Run(n, {}).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(OpsTest, PlaceholderWithoutFeedFails) {
  Node* n = *g_.AddNode("x", "Placeholder", std::vector<Node*>{});
  n->SetAttr("shape", TensorShape{2});
  EXPECT_EQ(Run(n, {}).status().code(), StatusCode::kNotFound);
}

TEST_F(OpsTest, VariablePersistsAcrossExecutions) {
  Node* n = *g_.AddNode("w", "Variable", std::vector<Node*>{});
  n->SetAttr("shape", TensorShape{4});
  n->SetAttr("init", std::string("zeros"));
  auto first = Run(n, {});
  ASSERT_TRUE(first.ok());
  first->at<float>(0) = 7.0f;  // Mutate the persistent buffer.
  auto second = Run(n, {});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->at<float>(0), 7.0f);
  EXPECT_EQ(first->raw_data(), second->raw_data());
}

TEST_F(OpsTest, VariableUniformInitWithinScale) {
  Node* n = *g_.AddNode("w", "Variable", std::vector<Node*>{});
  n->SetAttr("shape", TensorShape{100});
  n->SetAttr("init", std::string("uniform"));
  n->SetAttr("init_scale", 0.5);
  auto out = Run(n, {});
  ASSERT_TRUE(out.ok());
  bool nonzero = false;
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(std::abs(out->at<float>(i)), 0.5f);
    if (out->at<float>(i) != 0.0f) nonzero = true;
  }
  EXPECT_TRUE(nonzero);
}

TEST_F(OpsTest, IdentityAliasesInput) {
  Node* n = *g_.AddNode("id", "Identity", std::vector<Node*>{});
  Tensor in = MakeTensor(TensorShape{2}, {1, 2});
  auto out = Run(n, {in});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->raw_data(), in.raw_data());
}

TEST_F(OpsTest, MatMulComputesProduct) {
  Node* n = *g_.AddNode("mm", "MatMul", std::vector<Node*>{});
  Tensor a = MakeTensor(TensorShape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = MakeTensor(TensorShape{3, 2}, {7, 8, 9, 10, 11, 12});
  auto out = Run(n, {a, b});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), TensorShape({2, 2}));
  EXPECT_EQ(out->at<float>(0), 58.0f);   // 1*7+2*9+3*11
  EXPECT_EQ(out->at<float>(1), 64.0f);
  EXPECT_EQ(out->at<float>(2), 139.0f);
  EXPECT_EQ(out->at<float>(3), 154.0f);
}

TEST_F(OpsTest, MatMulTransposeVariantsAgree) {
  Tensor a = MakeTensor(TensorShape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = MakeTensor(TensorShape{3, 2}, {7, 8, 9, 10, 11, 12});
  Node* plain = *g_.AddNode("mm", "MatMul", std::vector<Node*>{});
  auto expected = Run(plain, {a, b});
  ASSERT_TRUE(expected.ok());

  // a^T stored transposed: compute (a^T)^T * b with transpose_a.
  Tensor at = MakeTensor(TensorShape{3, 2}, {1, 4, 2, 5, 3, 6});
  Node* ta = *g_.AddNode("mm_ta", "MatMul", std::vector<Node*>{});
  ta->SetAttr("transpose_a", true);
  auto got_a = Run(ta, {at, b});
  ASSERT_TRUE(got_a.ok());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got_a->at<float>(i), expected->at<float>(i));

  Tensor bt = MakeTensor(TensorShape{2, 3}, {7, 9, 11, 8, 10, 12});
  Node* tb = *g_.AddNode("mm_tb", "MatMul", std::vector<Node*>{});
  tb->SetAttr("transpose_b", true);
  auto got_b = Run(tb, {a, bt});
  ASSERT_TRUE(got_b.ok());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got_b->at<float>(i), expected->at<float>(i));
}

TEST_F(OpsTest, MatMulRejectsMismatch) {
  Node* n = *g_.AddNode("mm", "MatMul", std::vector<Node*>{});
  Tensor a = MakeTensor(TensorShape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = MakeTensor(TensorShape{2, 2}, {1, 2, 3, 4});
  EXPECT_FALSE(Run(n, {a, b}).ok());
}

TEST_F(OpsTest, BinaryOps) {
  Tensor a = MakeTensor(TensorShape{3}, {1, 2, 3});
  Tensor b = MakeTensor(TensorShape{3}, {10, 20, 30});
  auto add = Run(*g_.AddNode("add", "Add", std::vector<Node*>{}), {a, b});
  auto sub = Run(*g_.AddNode("sub", "Sub", std::vector<Node*>{}), {a, b});
  auto mul = Run(*g_.AddNode("mul", "Mul", std::vector<Node*>{}), {a, b});
  ASSERT_TRUE(add.ok() && sub.ok() && mul.ok());
  EXPECT_EQ(add->at<float>(2), 33.0f);
  EXPECT_EQ(sub->at<float>(2), -27.0f);
  EXPECT_EQ(mul->at<float>(2), 90.0f);
}

TEST_F(OpsTest, BiasAddBroadcastsOverRows) {
  Tensor x = MakeTensor(TensorShape{2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor b = MakeTensor(TensorShape{3}, {10, 20, 30});
  auto out = Run(*g_.AddNode("ba", "BiasAdd", std::vector<Node*>{}), {x, b});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->at<float>(0), 10.0f);
  EXPECT_EQ(out->at<float>(4), 21.0f);
}

TEST_F(OpsTest, ActivationsAndTheirGradients) {
  Tensor x = MakeTensor(TensorShape{3}, {-1, 0, 2});
  auto sig = Run(*g_.AddNode("sig", "Sigmoid", std::vector<Node*>{}), {x});
  ASSERT_TRUE(sig.ok());
  EXPECT_NEAR(sig->at<float>(1), 0.5f, 1e-6);
  EXPECT_NEAR(sig->at<float>(2), 1.0f / (1.0f + std::exp(-2.0f)), 1e-6);

  auto relu = Run(*g_.AddNode("relu", "Relu", std::vector<Node*>{}), {x});
  ASSERT_TRUE(relu.ok());
  EXPECT_EQ(relu->at<float>(0), 0.0f);
  EXPECT_EQ(relu->at<float>(2), 2.0f);

  auto tanh_out = Run(*g_.AddNode("tanh", "Tanh", std::vector<Node*>{}), {x});
  ASSERT_TRUE(tanh_out.ok());
  EXPECT_NEAR(tanh_out->at<float>(2), std::tanh(2.0f), 1e-6);

  // Sigmoid gradient check against finite differences at x=2.
  Tensor dy = MakeTensor(TensorShape{3}, {1, 1, 1});
  auto dsig = Run(*g_.AddNode("dsig", "SigmoidGrad", std::vector<Node*>{}), {*sig, dy});
  ASSERT_TRUE(dsig.ok());
  const float eps = 1e-3f;
  const float f1 = 1.0f / (1.0f + std::exp(-(2.0f + eps)));
  const float f0 = 1.0f / (1.0f + std::exp(-(2.0f - eps)));
  EXPECT_NEAR(dsig->at<float>(2), (f1 - f0) / (2 * eps), 1e-3);
}

TEST_F(OpsTest, SoftmaxRowsSumToOne) {
  Tensor x = MakeTensor(TensorShape{2, 3}, {1, 2, 3, 0, 0, 0});
  auto out = Run(*g_.AddNode("sm", "Softmax", std::vector<Node*>{}), {x});
  ASSERT_TRUE(out.ok());
  float row0 = out->at<float>(0) + out->at<float>(1) + out->at<float>(2);
  float row1 = out->at<float>(3) + out->at<float>(4) + out->at<float>(5);
  EXPECT_NEAR(row0, 1.0f, 1e-6);
  EXPECT_NEAR(row1, 1.0f, 1e-6);
  EXPECT_NEAR(out->at<float>(3), 1.0f / 3, 1e-6);
  EXPECT_GT(out->at<float>(2), out->at<float>(1));
}

TEST_F(OpsTest, SoftmaxXentLossMatchesHandComputation) {
  // Uniform logits, one-hot label: loss = log(C).
  Tensor logits = MakeTensor(TensorShape{1, 4}, {0, 0, 0, 0});
  Tensor labels = MakeTensor(TensorShape{1, 4}, {0, 1, 0, 0});
  auto loss = Run(*g_.AddNode("l", "SoftmaxXentLoss", std::vector<Node*>{}), {logits, labels});
  ASSERT_TRUE(loss.ok());
  EXPECT_NEAR(loss->at<float>(0), std::log(4.0f), 1e-5);
}

TEST_F(OpsTest, SoftmaxXentGradIsProbsMinusLabelsOverBatch) {
  Tensor logits = MakeTensor(TensorShape{1, 2}, {0, 0});
  Tensor labels = MakeTensor(TensorShape{1, 2}, {1, 0});
  auto grad = Run(*g_.AddNode("g", "SoftmaxXentGrad", std::vector<Node*>{}), {logits, labels});
  ASSERT_TRUE(grad.ok());
  EXPECT_NEAR(grad->at<float>(0), 0.5f - 1.0f, 1e-6);
  EXPECT_NEAR(grad->at<float>(1), 0.5f, 1e-6);
}

TEST_F(OpsTest, BiasAddGradSumsOverBatch) {
  Tensor dy = MakeTensor(TensorShape{2, 3}, {1, 2, 3, 4, 5, 6});
  auto out = Run(*g_.AddNode("bg", "BiasAddGrad", std::vector<Node*>{}), {dy});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), TensorShape({3}));
  EXPECT_EQ(out->at<float>(0), 5.0f);
  EXPECT_EQ(out->at<float>(2), 9.0f);
}

TEST_F(OpsTest, Reductions) {
  Tensor x = MakeTensor(TensorShape{4}, {3, -1, 7, 1});
  auto max = Run(*g_.AddNode("max", "ReduceMax", std::vector<Node*>{}), {x});
  auto sum = Run(*g_.AddNode("sum", "ReduceSum", std::vector<Node*>{}), {x});
  auto mean = Run(*g_.AddNode("mean", "ReduceMean", std::vector<Node*>{}), {x});
  ASSERT_TRUE(max.ok() && sum.ok() && mean.ok());
  EXPECT_EQ(max->at<float>(0), 7.0f);
  EXPECT_EQ(sum->at<float>(0), 10.0f);
  EXPECT_EQ(mean->at<float>(0), 2.5f);
}

TEST_F(OpsTest, ReshapeResolvesWildcard) {
  Node* n = *g_.AddNode("rs", "Reshape", std::vector<Node*>{});
  n->SetAttr("shape", TensorShape{tensor::kUnknownDim, 2});
  Tensor x = MakeTensor(TensorShape{2, 3}, {1, 2, 3, 4, 5, 6});
  auto out = Run(n, {x});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), TensorShape({3, 2}));
  EXPECT_EQ(out->raw_data(), x.raw_data());
}

TEST_F(OpsTest, ApplySgdUpdatesInPlace) {
  Node* n = *g_.AddNode("sgd", "ApplySgd", std::vector<Node*>{});
  n->SetAttr("learning_rate", 0.5);
  Tensor var = MakeTensor(TensorShape{2}, {1.0f, 2.0f});
  Tensor grad = MakeTensor(TensorShape{2}, {2.0f, 2.0f});
  auto out = Run(n, {var, grad});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(var.at<float>(0), 0.0f);
  EXPECT_EQ(var.at<float>(1), 1.0f);
  EXPECT_EQ(out->raw_data(), var.raw_data());
}

TEST_F(OpsTest, Conv2DIdentityFilterPreservesInput) {
  // 1x1 filter with a single 1.0: convolution is identity.
  Node* n = *g_.AddNode("conv", "Conv2D", std::vector<Node*>{});
  n->SetAttr("stride", int64_t{1});
  n->SetAttr("padding", std::string("same"));
  Tensor x = MakeTensor(TensorShape{1, 2, 2, 1}, {1, 2, 3, 4});
  Tensor f = MakeTensor(TensorShape{1, 1, 1, 1}, {1});
  auto out = Run(n, {x, f});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), TensorShape({1, 2, 2, 1}));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out->at<float>(i), x.at<float>(i));
}

TEST_F(OpsTest, Conv2DSumFilter) {
  // 2x2 valid convolution with all-ones filter sums each window.
  Node* n = *g_.AddNode("conv", "Conv2D", std::vector<Node*>{});
  n->SetAttr("stride", int64_t{1});
  n->SetAttr("padding", std::string("valid"));
  Tensor x = MakeTensor(TensorShape{1, 3, 3, 1}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor f = MakeTensor(TensorShape{2, 2, 1, 1}, {1, 1, 1, 1});
  auto out = Run(n, {x, f});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), TensorShape({1, 2, 2, 1}));
  EXPECT_EQ(out->at<float>(0), 12.0f);  // 1+2+4+5
  EXPECT_EQ(out->at<float>(3), 28.0f);  // 5+6+8+9
}

TEST_F(OpsTest, MaxPoolPicksWindowMax) {
  Node* n = *g_.AddNode("pool", "MaxPool", std::vector<Node*>{});
  n->SetAttr("ksize", int64_t{2});
  n->SetAttr("stride", int64_t{2});
  Tensor x = MakeTensor(TensorShape{1, 2, 2, 1}, {1, 9, 3, 4});
  auto out = Run(n, {x});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), TensorShape({1, 1, 1, 1}));
  EXPECT_EQ(out->at<float>(0), 9.0f);
}

TEST_F(OpsTest, SimOpProducesAttrShape) {
  Node* n = *g_.AddNode("sim", "SimOp", std::vector<Node*>{});
  n->SetAttr("shape", TensorShape{8, 16});
  auto out = Run(n, {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), TensorShape({8, 16}));
}

TEST_F(OpsTest, SimOpInheritsBatchDimFromInput) {
  Node* n = *g_.AddNode("sim", "SimOp", std::vector<Node*>{});
  n->SetAttr("shape", TensorShape{tensor::kUnknownDim, 16});
  Tensor in = MakeTensor(TensorShape{4, 2}, {0, 0, 0, 0, 0, 0, 0, 0});
  auto out = Run(n, {in});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), TensorShape({4, 16}));
}

TEST_F(OpsTest, SimulatedModeSkipsMathButAllocates) {
  Node* n = *g_.AddNode("mm", "MatMul", std::vector<Node*>{});
  Tensor a = MakeTensor(TensorShape{64, 64}, std::vector<float>(64 * 64, 1.0f));
  auto out = Run(n, {a, a}, ComputeMode::kSimulated);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), TensorShape({64, 64}));
  EXPECT_TRUE(out->valid());  // Buffer exists even though math was skipped.
}

TEST_F(OpsTest, UnknownOpHasNoKernel) {
  Node* n = *g_.AddNode("weird", "NoSuchOp", std::vector<Node*>{});
  EXPECT_EQ(KernelRegistry::Global()->Create(*n).status().code(), StatusCode::kNotFound);
}

TEST_F(OpsTest, SendRecvHaveNoRegisteredKernels) {
  // Transfer ops are handled by the runtime's transfer mechanism directly.
  EXPECT_FALSE(KernelRegistry::Global()->Has("_Send"));
  EXPECT_FALSE(KernelRegistry::Global()->Has("_Recv"));
}

}  // namespace
}  // namespace ops
}  // namespace rdmadl
