// Parameterized property tests: protocol invariants swept across mechanisms,
// tensor sizes, directions and fabric planes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <numeric>
#include <tuple>

#include "src/collective/collective.h"
#include "src/comm/rpc_mechanism.h"
#include "src/comm/zerocopy_mechanism.h"
#include "src/runtime/session.h"
#include "src/sim/fault.h"

namespace rdmadl {
namespace {

using graph::Graph;
using graph::Node;
using runtime::Cluster;
using runtime::ClusterOptions;
using runtime::DistributedSession;
using runtime::SessionOptions;
using tensor::Tensor;
using tensor::TensorShape;

enum class MechKind { kTcp, kRdmaRpc, kCp, kZeroCp, kZeroCpDynamic };

std::string MechName(MechKind kind) {
  switch (kind) {
    case MechKind::kTcp:
      return "grpc_tcp";
    case MechKind::kRdmaRpc:
      return "grpc_rdma";
    case MechKind::kCp:
      return "rdma_cp";
    case MechKind::kZeroCp:
      return "rdma_zerocp";
    case MechKind::kZeroCpDynamic:
      return "rdma_zerocp_dyn";
  }
  return "?";
}

std::unique_ptr<runtime::TransferMechanism> MakeMechanism(MechKind kind, Cluster* cluster) {
  switch (kind) {
    case MechKind::kTcp:
      return std::make_unique<comm::RpcMechanism>(cluster, net::Plane::kTcp);
    case MechKind::kRdmaRpc:
      return std::make_unique<comm::RpcMechanism>(cluster, net::Plane::kRdma);
    case MechKind::kCp: {
      comm::ZeroCopyOptions options;
      options.graph_analysis = false;
      return std::make_unique<comm::ZeroCopyRdmaMechanism>(cluster, options);
    }
    case MechKind::kZeroCp:
      return std::make_unique<comm::ZeroCopyRdmaMechanism>(cluster, comm::ZeroCopyOptions{});
    case MechKind::kZeroCpDynamic: {
      comm::ZeroCopyOptions options;
      options.force_dynamic = true;
      return std::make_unique<comm::ZeroCopyRdmaMechanism>(cluster, options);
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Property 1: any mechanism delivers exact bytes, for any size, repeatedly.
// ---------------------------------------------------------------------------

class TransferIntegrityTest
    : public ::testing::TestWithParam<std::tuple<MechKind, int64_t>> {};

TEST_P(TransferIntegrityTest, ChecksumSurvivesThreeSteps) {
  const auto [kind, elements] = GetParam();
  ClusterOptions options;
  options.num_machines = 2;
  options.mode = ops::ComputeMode::kReal;
  options.process_defaults.rdma_arena_bytes = 32ull << 20;
  options.process_defaults.seed = 5 + elements;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.AddProcess("ps:0", 0).ok());
  ASSERT_TRUE(cluster.AddProcess("worker:0", 1).ok());
  ops::RegisterStandardOps();

  Graph graph;
  Node* w = *graph.AddNode("w", "Variable", std::vector<Node*>{});
  w->SetAttr("shape", TensorShape{elements});
  w->SetAttr("init", std::string("uniform"));
  w->set_device("ps:0");
  Node* consume = *graph.AddNode("consume", "ReduceSum", {w});
  consume->set_device("worker:0");

  auto mechanism = MakeMechanism(kind, &cluster);
  DistributedSession session(&cluster, mechanism.get(), &graph, SessionOptions{});
  ASSERT_TRUE(session.Setup().ok());
  for (int step = 0; step < 3; ++step) {
    ASSERT_TRUE(session.RunStep().ok()) << MechName(kind) << " step " << step;
    const Tensor& source = cluster.host("ps:0")->resources()->GetVariable("w");
    double expected = 0;
    for (int64_t i = 0; i < source.num_elements(); ++i) expected += source.at<float>(i);
    const Tensor* out = session.executor_for("worker:0")->OutputOf("consume");
    ASSERT_NE(out, nullptr);
    EXPECT_NEAR(out->at<float>(0), expected, std::abs(expected) * 1e-5 + 1e-3)
        << MechName(kind) << " elements=" << elements << " step=" << step;
    // Mutate the source so each step transfers different bytes.
    source.at<float>(0) += 1.0f;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanismsAndSizes, TransferIntegrityTest,
    ::testing::Combine(::testing::Values(MechKind::kTcp, MechKind::kRdmaRpc, MechKind::kCp,
                                         MechKind::kZeroCp, MechKind::kZeroCpDynamic),
                       ::testing::Values<int64_t>(1, 63, 1024, 100'000)),
    [](const ::testing::TestParamInfo<std::tuple<MechKind, int64_t>>& info) {
      return MechName(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Property 2: fabric transfers conserve bytes and deliver ascending offsets
// for every plane and size.
// ---------------------------------------------------------------------------

class FabricConservationTest
    : public ::testing::TestWithParam<std::tuple<net::Plane, uint64_t>> {};

TEST_P(FabricConservationTest, ChunksSumAndAscend) {
  const auto [plane, bytes] = GetParam();
  sim::Simulator simulator;
  net::CostModel cost;
  net::Fabric fabric(&simulator, cost, 2);
  uint64_t delivered = 0;
  uint64_t last_end = 0;
  bool complete = false;
  fabric.Transfer(
      0, 1, bytes, plane, 0,
      [&](uint64_t offset, uint64_t length) {
        EXPECT_EQ(offset, last_end) << "gap or reorder in delivery";
        last_end = offset + length;
        delivered += length;
      },
      [&](Status s) { complete = s.ok(); });
  ASSERT_TRUE(simulator.Run().ok());
  EXPECT_TRUE(complete);
  EXPECT_EQ(delivered, bytes);
}

INSTANTIATE_TEST_SUITE_P(
    PlanesAndSizes, FabricConservationTest,
    ::testing::Combine(::testing::Values(net::Plane::kRdma, net::Plane::kTcp),
                       ::testing::Values<uint64_t>(1, 4095, 4096, 4097, 1 << 20,
                                                   (1 << 24) + 7)),
    [](const ::testing::TestParamInfo<std::tuple<net::Plane, uint64_t>>& info) {
      return std::string(std::get<0>(info.param) == net::Plane::kRdma ? "rdma" : "tcp") +
             "_" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Property 3: the arena allocator never hands out overlapping blocks and
// always restores full capacity, for any allocation-size distribution.
// ---------------------------------------------------------------------------

class ArenaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArenaPropertyTest, NoOverlapAndFullRecovery) {
  const uint64_t max_alloc = GetParam();
  std::vector<uint8_t> storage(4 << 20);
  tensor::ArenaAllocator arena(storage.data(), storage.size(), "prop");
  sim::Rng rng(max_alloc);
  struct Block {
    uint8_t* ptr;
    size_t size;
  };
  std::vector<Block> live;
  for (int round = 0; round < 3000; ++round) {
    if (live.empty() || rng.UniformDouble() < 0.55) {
      const size_t size = 1 + rng.Uniform(max_alloc);
      auto* p = static_cast<uint8_t*>(arena.Allocate(size));
      if (p == nullptr) continue;
      // Overlap check against all live blocks.
      for (const Block& b : live) {
        const bool disjoint = p + size <= b.ptr || b.ptr + b.size <= p;
        ASSERT_TRUE(disjoint) << "overlapping allocation";
      }
      live.push_back({p, size});
    } else {
      const size_t idx = rng.Uniform(live.size());
      arena.Deallocate(live[idx].ptr);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  for (const Block& b : live) arena.Deallocate(b.ptr);
  EXPECT_EQ(arena.largest_free_block(), storage.size());
  EXPECT_EQ(arena.stats().bytes_in_use, 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ArenaPropertyTest,
                         ::testing::Values<uint64_t>(64, 4096, 65536, 500'000));

// ---------------------------------------------------------------------------
// Property 4: virtual time is deterministic — identical runs give identical
// step durations, for every mechanism.
// ---------------------------------------------------------------------------

class DeterminismTest : public ::testing::TestWithParam<MechKind> {};

TEST_P(DeterminismTest, TwoRunsIdenticalTiming) {
  auto run_once = [&]() {
    ClusterOptions options;
    options.num_machines = 2;
    options.mode = ops::ComputeMode::kReal;
    options.process_defaults.rdma_arena_bytes = 16ull << 20;
    Cluster cluster(options);
    CHECK_OK(cluster.AddProcess("ps:0", 0).status());
    CHECK_OK(cluster.AddProcess("worker:0", 1).status());
    ops::RegisterStandardOps();
    Graph graph;
    Node* w = *graph.AddNode("w", "Variable", std::vector<Node*>{});
    w->SetAttr("shape", TensorShape{50'000});
    w->set_device("ps:0");
    Node* consume = *graph.AddNode("consume", "ReduceMax", {w});
    consume->set_device("worker:0");
    auto mechanism = MakeMechanism(GetParam(), &cluster);
    DistributedSession session(&cluster, mechanism.get(), &graph, SessionOptions{});
    CHECK_OK(session.Setup());
    std::vector<int64_t> durations;
    for (int i = 0; i < 3; ++i) {
      CHECK_OK(session.RunStep());
      durations.push_back(session.last_step_duration_ns());
    }
    return durations;
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, DeterminismTest,
                         ::testing::Values(MechKind::kTcp, MechKind::kRdmaRpc, MechKind::kCp,
                                           MechKind::kZeroCp, MechKind::kZeroCpDynamic),
                         [](const ::testing::TestParamInfo<MechKind>& info) {
                           return MechName(info.param);
                         });

// ---------------------------------------------------------------------------
// Property 5: for any fault schedule that eventually heals, a ring all-reduce
// retried over recovered channels produces the exact reduced tensor. The
// schedule is generated from the parameter seed: random per-link drop
// probabilities and forced-drop bursts plus a random flapping port, all of
// which are finite — forced drops are consumed, flap windows end, and the
// probabilistic drops are kept low enough that the bounded retry loop always
// reaches a clean pass.
// ---------------------------------------------------------------------------

class HealingFaultAllReduceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HealingFaultAllReduceTest, RetriedAllReduceConvergesToExactSums) {
  // scripts/check.sh --chaos sweeps RDMADL_FAULT_SEED; fold it into the
  // parameter seed so every sweep iteration exercises fresh schedules.
  uint64_t seed = GetParam();
  if (const char* env = std::getenv("RDMADL_FAULT_SEED")) {
    seed = seed * 7919 + std::strtoull(env, nullptr, 10);
  }
  const int n = 4;
  const uint64_t count = 768;

  sim::Simulator simulator;
  net::CostModel cost;
  net::Fabric fabric(&simulator, cost, n);
  rdma::RdmaFabric rdma(&fabric);
  device::DeviceDirectory directory(&rdma);

  // Derive a fault schedule from the seed. Every component heals: forced
  // drops are a finite burst, flap cycles end, and background drop
  // probability is small.
  sim::Rng schedule_rng(seed);
  sim::FaultInjector injector(seed);
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      sim::LinkFaultSpec spec;
      spec.drop_probability = 0.005 * schedule_rng.UniformDouble();
      spec.drop_first_n = static_cast<int>(schedule_rng.Uniform(3));
      spec.spike_probability = 0.25 * schedule_rng.UniformDouble();
      spec.spike_min_ns = 5'000;
      spec.spike_max_ns = 5'000 + static_cast<int64_t>(schedule_rng.Uniform(100'000));
      injector.SetLinkFault(src, dst, spec);
    }
  }
  injector.FlapLink(static_cast<int>(schedule_rng.Uniform(n)),
                    /*first_down_ns=*/10'000 + static_cast<int64_t>(schedule_rng.Uniform(50'000)),
                    /*down_ns=*/100'000, /*up_ns=*/80'000, /*cycles=*/2);
  fabric.SetFaultInjector(&injector);

  collective::CollectiveOptions options;
  options.op_timeout_ns = 2'000'000'000;
  std::vector<int> hosts;
  for (int i = 0; i < n; ++i) hosts.push_back(i);
  auto created = collective::CollectiveGroup::Create(&directory, hosts, count, options);
  ASSERT_TRUE(created.ok()) << created.status();
  auto group = std::move(created).value();

  bool succeeded = false;
  for (int attempt = 0; attempt < 6 && !succeeded; ++attempt) {
    // The ring reduces in place: re-seed every rank's vector per attempt.
    for (int r = 0; r < n; ++r) {
      float* data = group->data(r);
      ASSERT_NE(data, nullptr);
      for (uint64_t i = 0; i < count; ++i) {
        data[i] = static_cast<float>((r + 1) * (i % 5 + 1));
      }
    }
    bool fired = false;
    Status status = Internal("done callback never ran");
    group->AllReduce(count, [&](const Status& s) {
      fired = true;
      status = s;
    });
    ASSERT_TRUE(simulator.Run().ok());
    ASSERT_TRUE(fired);
    if (status.ok()) {
      for (int r = 0; r < n; ++r) {
        const float* data = group->data(r);
        for (uint64_t i = 0; i < count; ++i) {
          const float expected = static_cast<float>((i % 5 + 1) * n * (n + 1) / 2);
          ASSERT_EQ(data[i], expected)
              << "seed=" << seed << " attempt=" << attempt << " rank=" << r << " i=" << i;
        }
      }
      succeeded = true;
    } else {
      // Typed transport failure, then recover the channels and go again.
      EXPECT_TRUE(status.code() == StatusCode::kUnavailable ||
                  status.code() == StatusCode::kAborted ||
                  status.code() == StatusCode::kDeadlineExceeded)
          << "seed=" << seed << ": " << status;
      ASSERT_TRUE(group->ResetTransport().ok());
    }
  }
  EXPECT_TRUE(succeeded) << "seed=" << seed << " never converged";
}

INSTANTIATE_TEST_SUITE_P(Seeds, HealingFaultAllReduceTest,
                         ::testing::Values<uint64_t>(1, 2, 3, 17, 42));

}  // namespace
}  // namespace rdmadl
