// End-to-end elastic recovery tests (ISSUE 3 tentpole acceptance): a
// fail-stop crash mid-training is detected by the membership service within
// its bound, the cluster reconfigures (graph rebuilt over survivors, PS
// shards reassigned or the ring shrunk), the last checkpoint is restored,
// and the run completes on the survivors with the loss still decreasing.
// Same-seed runs produce byte-identical traces.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "src/check/testing.h"
#include "src/models/model_spec.h"
#include "src/sim/fault.h"
#include "src/sim/trace.h"
#include "src/train/convergence.h"
#include "src/train/ps_training.h"

namespace rdmadl {

// `ctest -L check` runs this suite with RDMADL_CHECK=1: every test executes
// under a fresh RdmaCheck and fails on any protocol diagnostic.
RDMADL_REGISTER_PROTOCOL_CHECK_LISTENER();

namespace {

using sim::FaultInjector;
using train::ElasticReport;
using train::TrainingConfig;
using train::TrainingDriver;

uint64_t FaultSeedFromEnv(uint64_t default_seed) {
  const char* env = std::getenv("RDMADL_FAULT_SEED");
  if (env == nullptr || *env == '\0') return default_seed;
  return std::strtoull(env, nullptr, 10);
}

TrainingConfig ElasticConfig(int num_workers, int num_ps) {
  TrainingConfig config;
  config.model = models::Fcn5();
  config.num_machines = num_workers;
  config.num_ps = num_ps;
  config.batch_size = 8;
  config.mechanism = train::MechanismKind::kRdmaZeroCopy;
  config.step_timeout_ns = 200'000'000;  // 200 ms virtual budget per step.
  config.max_step_retries = 2;
  config.elastic = true;
  config.checkpoint_interval_steps = 2;
  return config;
}

// Loss at the report's cumulative sample count, under the analytic
// convergence profile — "training still converges" means the curve kept
// moving down despite the rollback. The rate anchor only scales the sample
// axis; any positive value works for a monotonicity check.
train::ConvergenceProfile Profile() {
  return train::CifarConvergence(/*tcp_samples_per_minute=*/10'000);
}

double LossAt(const ElasticReport& report) {
  return Profile().MetricAt(report.samples_processed);
}

// ---------------------------------------------------------------------------
// Worker crash: 3 workers + 2 dedicated PS machines; worker 1 fail-stops
// mid-run. The run must complete all requested steps on the survivors.
// ---------------------------------------------------------------------------

TEST(ElasticTest, WorkerCrashDetectReconfigureRestoreComplete) {
  TrainingConfig config = ElasticConfig(/*num_workers=*/3, /*num_ps=*/2);
  TrainingDriver driver(config);
  ASSERT_TRUE(driver.Initialize().ok());
  ASSERT_EQ(driver.worker_machines(), (std::vector<int>{0, 1, 2}));
  ASSERT_EQ(driver.ps_devices(), (std::vector<std::string>{"ps:0", "ps:1"}));

  // Attach the injector after Initialize so warm-up runs fault-free; worker
  // machine 1 fail-stops shortly into the measured run.
  FaultInjector injector(FaultSeedFromEnv(31));
  const int64_t t_crash = driver.cluster()->simulator()->Now() + 50'000;
  injector.CrashHost(1, t_crash);
  driver.cluster()->fabric()->SetFaultInjector(&injector);

  auto report_or = driver.RunElastic(/*steps=*/8);
  ASSERT_TRUE(report_or.ok()) << report_or.status();
  const ElasticReport& report = report_or.value();

  EXPECT_EQ(report.completed_steps, 8);
  EXPECT_EQ(report.reconfigurations, 1);
  EXPECT_EQ(report.removed_hosts, std::vector<int>{1});
  EXPECT_EQ(driver.worker_machines(), (std::vector<int>{0, 2}));
  EXPECT_EQ(driver.ps_devices(), (std::vector<std::string>{"ps:0", "ps:1"}));

  // Detection happened through missed leases, within the advertised bound.
  EXPECT_GT(report.last_detection_latency_ns, 0);
  EXPECT_LE(report.last_detection_latency_ns,
            driver.membership()->detection_bound_ns());
  EXPECT_GT(report.last_recovery_ns, 0);

  // Rollback repeated some work, but the loss still moved down from init.
  EXPECT_GE(report.steps_rolled_back, 0);
  EXPECT_GT(report.samples_processed, 0);
  EXPECT_LT(LossAt(report), Profile().initial);

  // The reconfigured cluster keeps training.
  ASSERT_TRUE(driver.RunStep().ok());
}

// ---------------------------------------------------------------------------
// PS crash: the dedicated server carrying half the shards dies; its shards
// are reassigned to the survivor and restored from the checkpoint.
// ---------------------------------------------------------------------------

TEST(ElasticTest, PsCrashReassignsShardsToSurvivor) {
  TrainingConfig config = ElasticConfig(/*num_workers=*/2, /*num_ps=*/2);
  TrainingDriver driver(config);
  ASSERT_TRUE(driver.Initialize().ok());

  // Machine 2 is the first dedicated PS machine (workers are 0..1), i.e.
  // device "ps:0".
  FaultInjector injector(FaultSeedFromEnv(32));
  const int64_t t_crash = driver.cluster()->simulator()->Now() + 50'000;
  injector.CrashHost(2, t_crash);
  driver.cluster()->fabric()->SetFaultInjector(&injector);

  auto report_or = driver.RunElastic(/*steps=*/6);
  ASSERT_TRUE(report_or.ok()) << report_or.status();
  const ElasticReport& report = report_or.value();

  EXPECT_EQ(report.completed_steps, 6);
  EXPECT_EQ(report.reconfigurations, 1);
  EXPECT_EQ(report.removed_hosts, std::vector<int>{2});
  EXPECT_EQ(driver.worker_machines(), (std::vector<int>{0, 1}));
  EXPECT_EQ(driver.ps_devices(), (std::vector<std::string>{"ps:1"}));

  // Every variable in the rebuilt graph lives on the surviving server.
  const graph::Graph* graph = driver.graph();
  int variables = 0;
  for (const auto& node : graph->nodes()) {
    if (node->op() == "Variable") {
      ++variables;
      EXPECT_EQ(node->device(), "ps:1") << node->name();
    }
  }
  EXPECT_EQ(variables, config.model.NumVariables());
  EXPECT_LT(LossAt(report), Profile().initial);
}

// ---------------------------------------------------------------------------
// All-reduce mode: a worker death shrinks the collective ring and training
// completes with the smaller group.
// ---------------------------------------------------------------------------

TEST(ElasticTest, AllReduceWorkerCrashShrinksRing) {
  TrainingConfig config = ElasticConfig(/*num_workers=*/4, /*num_ps=*/0);
  config.mode = train::TrainingMode::kAllReduce;
  TrainingDriver driver(config);
  ASSERT_TRUE(driver.Initialize().ok());
  ASSERT_EQ(driver.collective()->size(), 4);

  FaultInjector injector(FaultSeedFromEnv(33));
  injector.CrashHost(3, driver.cluster()->simulator()->Now() + 50'000);
  driver.cluster()->fabric()->SetFaultInjector(&injector);

  auto report_or = driver.RunElastic(/*steps=*/6);
  ASSERT_TRUE(report_or.ok()) << report_or.status();
  const ElasticReport& report = report_or.value();

  EXPECT_EQ(report.completed_steps, 6);
  EXPECT_EQ(report.removed_hosts, std::vector<int>{3});
  EXPECT_EQ(driver.collective()->size(), 3);
  EXPECT_EQ(driver.collective()->hosts(), (std::vector<int>{0, 1, 2}));
  EXPECT_GE(driver.collective()->stats().reconfigurations, 1);
  EXPECT_LT(LossAt(report), Profile().initial);
}

// ---------------------------------------------------------------------------
// Hierarchical all-reduce mode (ISSUE 7): a rack *leader* dies mid-run on a
// two-rack fabric. Reconfigure must re-elect the next surviving member of
// that rack as leader (leaders are positional, not sticky) and training
// completes on the shrunken two-level schedule with the hierarchical
// algorithm still selected.
// ---------------------------------------------------------------------------

TEST(ElasticTest, HierarchicalRackLeaderCrashReelectsAndCompletes) {
  TrainingConfig config = ElasticConfig(/*num_workers=*/6, /*num_ps=*/0);
  config.mode = train::TrainingMode::kAllReduce;
  config.collective_algorithm = collective::Algorithm::kHierarchical;
  config.topology.hosts_per_rack = 3;  // Racks {0,1,2} and {3,4,5}.
  config.topology.oversubscription = 4.0;
  TrainingDriver driver(config);
  ASSERT_TRUE(driver.Initialize().ok());
  ASSERT_EQ(driver.collective()->size(), 6);
  ASSERT_EQ(driver.collective()->algorithm(), collective::Algorithm::kHierarchical);
  // Two racks of three: host 3 leads the second rack.
  ASSERT_EQ(driver.collective()->racks(),
            (std::vector<std::vector<int>>{{0, 1, 2}, {3, 4, 5}}));

  // Kill the second rack's leader (not host 0, which coordinates membership).
  FaultInjector injector(FaultSeedFromEnv(35));
  injector.CrashHost(3, driver.cluster()->simulator()->Now() + 50'000);
  driver.cluster()->fabric()->SetFaultInjector(&injector);

  auto report_or = driver.RunElastic(/*steps=*/6);
  ASSERT_TRUE(report_or.ok()) << report_or.status();
  const ElasticReport& report = report_or.value();

  EXPECT_EQ(report.completed_steps, 6);
  EXPECT_EQ(report.removed_hosts, std::vector<int>{3});
  EXPECT_EQ(driver.collective()->size(), 5);
  EXPECT_EQ(driver.collective()->hosts(), (std::vector<int>{0, 1, 2, 4, 5}));
  EXPECT_GE(driver.collective()->stats().reconfigurations, 1);
  // The survivors regroup into the same racks with host 4 (rank 3) promoted
  // to rack-1 leader, and the algorithm choice survives the reconfigure.
  EXPECT_EQ(driver.collective()->algorithm(), collective::Algorithm::kHierarchical);
  EXPECT_EQ(driver.collective()->racks(),
            (std::vector<std::vector<int>>{{0, 1, 2}, {3, 4}}));
  EXPECT_LT(LossAt(report), Profile().initial);
}

// ---------------------------------------------------------------------------
// No crash: the elastic loop is a plain training loop (no reconfigurations,
// no rollbacks) and the sample count is exact.
// ---------------------------------------------------------------------------

TEST(ElasticTest, NoFaultRunIsPlainTraining) {
  TrainingConfig config = ElasticConfig(/*num_workers=*/2, /*num_ps=*/0);
  TrainingDriver driver(config);
  ASSERT_TRUE(driver.Initialize().ok());

  auto report_or = driver.RunElastic(/*steps=*/5);
  ASSERT_TRUE(report_or.ok()) << report_or.status();
  const ElasticReport& report = report_or.value();
  EXPECT_EQ(report.completed_steps, 5);
  EXPECT_EQ(report.reconfigurations, 0);
  EXPECT_EQ(report.steps_rolled_back, 0);
  EXPECT_TRUE(report.removed_hosts.empty());
  EXPECT_EQ(report.samples_processed, 5.0 * config.batch_size * 2);
}

// ---------------------------------------------------------------------------
// Determinism: same config + same seed => byte-identical traces, identical
// virtual end time, identical reports.
// ---------------------------------------------------------------------------

TEST(ElasticTest, SameSeedProducesByteIdenticalTrace) {
  auto run_once = [](uint64_t seed, std::string* trace_json, int64_t* end_ns,
                     ElasticReport* report) {
    sim::Tracer tracer;
    sim::Tracer::Install(&tracer);
    TrainingConfig config = ElasticConfig(/*num_workers=*/3, /*num_ps=*/0);
    TrainingDriver driver(config);
    ASSERT_TRUE(driver.Initialize().ok());
    FaultInjector injector(seed);
    injector.CrashHost(2, driver.cluster()->simulator()->Now() + 50'000);
    driver.cluster()->fabric()->SetFaultInjector(&injector);
    auto report_or = driver.RunElastic(/*steps=*/6);
    ASSERT_TRUE(report_or.ok()) << report_or.status();
    *report = report_or.value();
    *trace_json = tracer.ToJson();
    *end_ns = driver.cluster()->simulator()->Now();
    sim::Tracer::Install(nullptr);
  };

  const uint64_t seed = FaultSeedFromEnv(34);
  std::string trace_a, trace_b;
  int64_t end_a = 0, end_b = 0;
  ElasticReport report_a, report_b;
  run_once(seed, &trace_a, &end_a, &report_a);
  run_once(seed, &trace_b, &end_b, &report_b);

  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(end_a, end_b);
  EXPECT_EQ(report_a.completed_steps, report_b.completed_steps);
  EXPECT_EQ(report_a.samples_processed, report_b.samples_processed);
  EXPECT_EQ(report_a.last_detection_latency_ns, report_b.last_detection_latency_ns);
  EXPECT_EQ(report_a.last_recovery_ns, report_b.last_recovery_ns);
  EXPECT_EQ(report_a.removed_hosts, report_b.removed_hosts);
}

}  // namespace
}  // namespace rdmadl
