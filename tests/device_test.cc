#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "src/device/rdma_device.h"
#include "src/sim/fault.h"

namespace rdmadl {
namespace device {
namespace {

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest()
      : fabric_(&simulator_, cost_, 4), rdma_(&fabric_), directory_(&rdma_) {}

  std::unique_ptr<RdmaDevice> MakeDevice(int host, uint16_t port, int num_cqs = 2,
                                         int num_qps = 2) {
    auto dev = RdmaDevice::Create(&directory_, num_cqs, num_qps, Endpoint{host, port});
    CHECK(dev.ok()) << dev.status();
    return std::move(dev).value();
  }

  sim::Simulator simulator_;
  net::CostModel cost_;
  net::Fabric fabric_;
  rdma::RdmaFabric rdma_;
  DeviceDirectory directory_;
};

TEST_F(DeviceTest, CreateValidatesArguments) {
  EXPECT_FALSE(RdmaDevice::Create(&directory_, 0, 1, Endpoint{0, 1}).ok());
  EXPECT_FALSE(RdmaDevice::Create(&directory_, 1, 0, Endpoint{0, 1}).ok());
  EXPECT_FALSE(RdmaDevice::Create(&directory_, 1, 1, Endpoint{99, 1}).ok());
}

TEST_F(DeviceTest, CreateRejectsDuplicateEndpoint) {
  auto dev = MakeDevice(0, 7000);
  auto dup = RdmaDevice::Create(&directory_, 1, 1, Endpoint{0, 7000});
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(DeviceTest, EndpointFreedOnDestruction) {
  { auto dev = MakeDevice(0, 7000); }
  auto again = RdmaDevice::Create(&directory_, 1, 1, Endpoint{0, 7000});
  EXPECT_TRUE(again.ok());
}

TEST_F(DeviceTest, AllocateMemRegionProvidesUsableMemory) {
  auto dev = MakeDevice(0, 7000);
  auto region = dev->AllocateMemRegion(1 << 16);
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region->size(), 1u << 16);
  ASSERT_NE(region->data(), nullptr);
  std::memset(region->data(), 0x7F, region->size());
  EXPECT_EQ(region->data()[100], 0x7F);
  EXPECT_NE(region->lkey(), 0u);
  EXPECT_NE(region->rkey(), 0u);
}

TEST_F(DeviceTest, AllocateMemRegionRejectsZeroSize) {
  auto dev = MakeDevice(0, 7000);
  EXPECT_FALSE(dev->AllocateMemRegion(0).ok());
}

TEST_F(DeviceTest, RemoteRegionRoundTripsThroughWireEncoding) {
  auto dev = MakeDevice(0, 7000);
  auto region = dev->AllocateMemRegion(4096);
  ASSERT_TRUE(region.ok());
  RemoteRegion remote = region->Remote();
  std::vector<uint8_t> wire;
  remote.EncodeTo(&wire);
  EXPECT_EQ(wire.size(), RemoteRegion::kWireSize);
  auto decoded = RemoteRegion::Decode(wire.data(), wire.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->addr, remote.addr);
  EXPECT_EQ(decoded->rkey, remote.rkey);
  EXPECT_EQ(decoded->length, remote.length);
}

TEST_F(DeviceTest, RemoteSliceBoundsChecked) {
  auto dev = MakeDevice(0, 7000);
  auto region = dev->AllocateMemRegion(1000);
  ASSERT_TRUE(region.ok());
  EXPECT_TRUE(region->RemoteSlice(0, 1000).ok());
  EXPECT_TRUE(region->RemoteSlice(500, 500).ok());
  EXPECT_FALSE(region->RemoteSlice(500, 501).ok());
  EXPECT_FALSE(region->RemoteSlice(1000, 1).ok());
  EXPECT_TRUE(region->RemoteSlice(1000, 0).ok());  // Empty slice at the end.
}

TEST_F(DeviceTest, RemoteSliceRejectsOverflowingOffsets) {
  // offset + length must not wrap around uint64 and sneak past the bounds
  // check.
  auto dev = MakeDevice(0, 7000);
  auto region = dev->AllocateMemRegion(1000);
  ASSERT_TRUE(region.ok());
  EXPECT_FALSE(region->RemoteSlice(UINT64_MAX, 1).ok());
  EXPECT_FALSE(region->RemoteSlice(UINT64_MAX, UINT64_MAX).ok());
  EXPECT_FALSE(region->RemoteSlice(1, UINT64_MAX).ok());
  EXPECT_FALSE(region->RemoteSlice(UINT64_MAX - 500, 501).ok());
}

TEST_F(DeviceTest, RemoteRegionDecodeRejectsTruncatedBuffers) {
  auto dev = MakeDevice(0, 7000);
  auto region = dev->AllocateMemRegion(4096);
  ASSERT_TRUE(region.ok());
  std::vector<uint8_t> wire;
  region->Remote().EncodeTo(&wire);
  ASSERT_EQ(wire.size(), RemoteRegion::kWireSize);
  for (size_t len = 0; len < RemoteRegion::kWireSize; ++len) {
    EXPECT_FALSE(RemoteRegion::Decode(wire.data(), len).ok()) << "len=" << len;
  }
  EXPECT_FALSE(RemoteRegion::Decode(nullptr, 0).ok());
}

TEST_F(DeviceTest, GetChannelValidatesIndexAndPeer) {
  auto a = MakeDevice(0, 7000, 2, 3);
  auto b = MakeDevice(1, 7000, 2, 3);
  EXPECT_FALSE(a->GetChannel(Endpoint{1, 7000}, -1).ok());
  EXPECT_FALSE(a->GetChannel(Endpoint{1, 7000}, 3).ok());
  EXPECT_EQ(a->GetChannel(Endpoint{2, 7000}, 0).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(a->GetChannel(Endpoint{0, 7000}, 0).ok());  // Self.
  auto chan = a->GetChannel(Endpoint{1, 7000}, 1);
  ASSERT_TRUE(chan.ok());
  EXPECT_EQ((*chan)->qp_index(), 1);
}

TEST_F(DeviceTest, MemcpyLocalToRemoteMovesBytes) {
  auto a = MakeDevice(0, 7000);
  auto b = MakeDevice(1, 7000);
  auto src = a->AllocateMemRegion(8192);
  auto dst = b->AllocateMemRegion(8192);
  ASSERT_TRUE(src.ok() && dst.ok());
  std::iota(src->data(), src->data() + 8192, 0);
  std::memset(dst->data(), 0, 8192);

  auto chan = a->GetChannel(Endpoint{1, 7000}, 0);
  ASSERT_TRUE(chan.ok());
  Status done_status = Internal("not called");
  (*chan)->Memcpy(reinterpret_cast<uint64_t>(src->data()), *src,
                  reinterpret_cast<uint64_t>(dst->data()), dst->Remote(), 8192,
                  Direction::kLocalToRemote, [&](const Status& s) { done_status = s; });
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_TRUE(done_status.ok()) << done_status;
  EXPECT_EQ(std::memcmp(src->data(), dst->data(), 8192), 0);
}

TEST_F(DeviceTest, MemcpyRemoteToLocalReadsBytes) {
  auto a = MakeDevice(0, 7000);
  auto b = MakeDevice(1, 7000);
  auto local = a->AllocateMemRegion(4096);
  auto remote = b->AllocateMemRegion(4096);
  ASSERT_TRUE(local.ok() && remote.ok());
  std::memset(remote->data(), 0x3C, 4096);
  std::memset(local->data(), 0, 4096);

  auto chan = a->GetChannel(Endpoint{1, 7000}, 0);
  ASSERT_TRUE(chan.ok());
  bool done = false;
  (*chan)->Memcpy(reinterpret_cast<uint64_t>(local->data()), *local,
                  reinterpret_cast<uint64_t>(remote->data()), remote->Remote(), 4096,
                  Direction::kRemoteToLocal, [&](const Status& s) {
                    EXPECT_TRUE(s.ok());
                    done = true;
                  });
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_TRUE(done);
  EXPECT_EQ(local->data()[0], 0x3C);
  EXPECT_EQ(local->data()[4095], 0x3C);
}

TEST_F(DeviceTest, MemcpyToInvalidRemoteFailsAsync) {
  auto a = MakeDevice(0, 7000);
  auto b = MakeDevice(1, 7000);
  auto src = a->AllocateMemRegion(128);
  ASSERT_TRUE(src.ok());
  auto chan = a->GetChannel(Endpoint{1, 7000}, 0);
  ASSERT_TRUE(chan.ok());
  RemoteRegion bogus{0xDEAD0000, 42, 128};
  Status result;
  (*chan)->Memcpy(reinterpret_cast<uint64_t>(src->data()), *src, bogus.addr, bogus, 128,
                  Direction::kLocalToRemote, [&](const Status& s) { result = s; });
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_FALSE(result.ok());
}

TEST_F(DeviceTest, ChannelsOnDifferentQpsTransferConcurrently) {
  auto a = MakeDevice(0, 7000, 4, 4);
  auto b = MakeDevice(1, 7000, 4, 4);
  const uint64_t size = 1 << 20;
  auto src = a->AllocateMemRegion(2 * size);
  auto dst = b->AllocateMemRegion(2 * size);
  ASSERT_TRUE(src.ok() && dst.ok());

  // Two transfers on one QP run back-to-back; on two QPs they pipeline the
  // NIC processing, so completion of the pair should not be slower.
  int completions = 0;
  for (int i = 0; i < 2; ++i) {
    auto chan = a->GetChannel(Endpoint{1, 7000}, i);
    ASSERT_TRUE(chan.ok());
    auto dst_slice = dst->RemoteSlice(i * size, size);
    ASSERT_TRUE(dst_slice.ok());
    (*chan)->Memcpy(reinterpret_cast<uint64_t>(src->data() + i * size), *src,
                    dst_slice->addr, *dst_slice, size, Direction::kLocalToRemote,
                    [&](const Status& s) {
                      EXPECT_TRUE(s.ok());
                      ++completions;
                    });
  }
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_EQ(completions, 2);
}

TEST_F(DeviceTest, RpcCallInvokesRemoteHandler) {
  auto a = MakeDevice(0, 7000);
  auto b = MakeDevice(1, 7000);
  b->RegisterRpcHandler("echo", [](const std::vector<uint8_t>& req) {
    std::vector<uint8_t> resp = req;
    for (auto& byte : resp) byte ^= 0xFF;
    return resp;
  });
  std::vector<uint8_t> payload = {1, 2, 3, 4};
  std::vector<uint8_t> response;
  Status status = Internal("not called");
  a->Call(Endpoint{1, 7000}, "echo", payload, [&](const Status& s, const std::vector<uint8_t>& r) {
    status = s;
    response = r;
  });
  ASSERT_TRUE(simulator_.Run().ok());
  ASSERT_TRUE(status.ok()) << status;
  ASSERT_EQ(response.size(), 4u);
  EXPECT_EQ(response[0], 0xFE);
  EXPECT_EQ(response[3], 0xFB);
}

TEST_F(DeviceTest, RpcUnknownMethodReturnsError) {
  auto a = MakeDevice(0, 7000);
  auto b = MakeDevice(1, 7000);
  Status status;
  a->Call(Endpoint{1, 7000}, "missing", {}, [&](const Status& s, const std::vector<uint8_t>&) {
    status = s;
  });
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(DeviceTest, RpcToUnknownEndpointFails) {
  auto a = MakeDevice(0, 7000);
  Status status;
  a->Call(Endpoint{3, 9999}, "x", {}, [&](const Status& s, const std::vector<uint8_t>&) {
    status = s;
  });
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(DeviceTest, ManyConcurrentRpcCallsAllComplete) {
  auto a = MakeDevice(0, 7000);
  auto b = MakeDevice(1, 7000);
  b->RegisterRpcHandler("inc", [](const std::vector<uint8_t>& req) {
    std::vector<uint8_t> resp = req;
    if (!resp.empty()) ++resp[0];
    return resp;
  });
  int completed = 0;
  const int kCalls = 64;
  for (int i = 0; i < kCalls; ++i) {
    a->Call(Endpoint{1, 7000}, "inc", {static_cast<uint8_t>(i)},
            [&completed, i](const Status& s, const std::vector<uint8_t>& r) {
              ASSERT_TRUE(s.ok());
              ASSERT_EQ(r.size(), 1u);
              EXPECT_EQ(r[0], static_cast<uint8_t>(i + 1));
              ++completed;
            });
  }
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_EQ(completed, kCalls);
}

TEST_F(DeviceTest, AddressDistributionPattern) {
  // End-to-end rehearsal of §3.2's setup phase: B allocates a receive tensor
  // region, distributes its address to A over the MiniRPC, then A writes a
  // payload straight into it with one-sided Memcpy.
  auto a = MakeDevice(0, 7000);
  auto b = MakeDevice(1, 7000);
  auto recv_region = b->AllocateMemRegion(64 * 1024);
  ASSERT_TRUE(recv_region.ok());
  std::memset(recv_region->data(), 0, recv_region->size());

  b->RegisterRpcHandler("get_tensor_addr", [&](const std::vector<uint8_t>&) {
    std::vector<uint8_t> out;
    recv_region->Remote().EncodeTo(&out);
    return out;
  });

  auto src = a->AllocateMemRegion(64 * 1024);
  ASSERT_TRUE(src.ok());
  std::memset(src->data(), 0x42, src->size());

  bool transfer_done = false;
  a->Call(Endpoint{1, 7000}, "get_tensor_addr", {},
          [&](const Status& s, const std::vector<uint8_t>& resp) {
            ASSERT_TRUE(s.ok());
            auto remote = RemoteRegion::Decode(resp.data(), resp.size());
            ASSERT_TRUE(remote.ok());
            auto chan = a->GetChannel(Endpoint{1, 7000}, 0);
            ASSERT_TRUE(chan.ok());
            (*chan)->Memcpy(reinterpret_cast<uint64_t>(src->data()), *src, remote->addr,
                            *remote, src->size(), Direction::kLocalToRemote,
                            [&](const Status& st) {
                              ASSERT_TRUE(st.ok());
                              transfer_done = true;
                            });
          });
  ASSERT_TRUE(simulator_.Run().ok());
  ASSERT_TRUE(transfer_done);
  EXPECT_EQ(recv_region->data()[0], 0x42);
  EXPECT_EQ(recv_region->data()[recv_region->size() - 1], 0x42);
}

TEST_F(DeviceTest, RecoverChannelsIsIdempotentWithFlushedRecvsInFlight) {
  // Regression for the elastic recovery path: RecoverChannels must be safe
  // to call repeatedly — including a second call issued while the first
  // call's flushed recv completions are still queued in the CQ — without
  // ever over- or under-filling the RPC recv ring.
  auto a = MakeDevice(0, 7000);
  auto b = MakeDevice(1, 7000);
  b->RegisterRpcHandler("echo", [](const std::vector<uint8_t>& req) { return req; });

  // Healthy round trip establishes the RPC QPs and fills both recv rings.
  bool ok_before = false;
  a->Call(Endpoint{1, 7000}, "echo", {1, 2, 3},
          [&](const Status& s, const std::vector<uint8_t>& r) {
            ASSERT_TRUE(s.ok());
            EXPECT_EQ(r.size(), 3u);
            ok_before = true;
          });
  ASSERT_TRUE(simulator_.Run().ok());
  ASSERT_TRUE(ok_before);
  EXPECT_EQ(a->rpc_recvs_posted(Endpoint{1, 7000}), RdmaDevice::rpc_recv_depth());
  EXPECT_EQ(b->rpc_recvs_posted(Endpoint{0, 7000}), RdmaDevice::rpc_recv_depth());

  // Exhaust the transport retry budget on 0 -> 1: the RPC send WR errors the
  // QP, and every posted recv on that QP flushes.
  sim::FaultInjector injector(1);
  sim::LinkFaultSpec spec;
  spec.drop_first_n = 100;
  injector.SetLinkFault(0, 1, spec);
  fabric_.SetFaultInjector(&injector);

  // A lost request never invokes the caller's callback (MiniRPC contract);
  // the observable effect is the errored QP flushing its recv ring. Stop the
  // simulator at the *first* flushed recv completion — the remaining flushes
  // are still queued in the CQ — and recover right there, twice.
  a->Call(Endpoint{1, 7000}, "echo", {9},
          [&](const Status&, const std::vector<uint8_t>&) {
            FAIL() << "callback must not fire for a lost request";
          });
  Status until = simulator_.RunUntilPredicate([&] {
    return a->rpc_recvs_posted(Endpoint{1, 7000}) < RdmaDevice::rpc_recv_depth();
  });
  ASSERT_TRUE(until.ok()) << until;
  ASSERT_TRUE(a->RecoverChannels().ok());
  ASSERT_TRUE(a->RecoverChannels().ok());
  // Draining the leftover flushed completions must not over-post: they find
  // the ring already at depth and release their slots instead.
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_EQ(a->rpc_recvs_posted(Endpoint{1, 7000}), RdmaDevice::rpc_recv_depth());

  // Another call after the drain: still idempotent, ring exactly full.
  ASSERT_TRUE(a->RecoverChannels().ok());
  ASSERT_TRUE(simulator_.Run().ok());
  EXPECT_EQ(a->rpc_recvs_posted(Endpoint{1, 7000}), RdmaDevice::rpc_recv_depth());

  // With the link healthy again, RPC service resumes.
  injector.SetLinkFault(0, 1, sim::LinkFaultSpec{});
  bool ok_after = false;
  a->Call(Endpoint{1, 7000}, "echo", {4, 5},
          [&](const Status& s, const std::vector<uint8_t>& r) {
            ASSERT_TRUE(s.ok()) << s;
            EXPECT_EQ(r.size(), 2u);
            ok_after = true;
          });
  ASSERT_TRUE(simulator_.Run().ok());
  ASSERT_TRUE(ok_after);
  EXPECT_EQ(a->rpc_recvs_posted(Endpoint{1, 7000}), RdmaDevice::rpc_recv_depth());
  EXPECT_EQ(b->rpc_recvs_posted(Endpoint{0, 7000}), RdmaDevice::rpc_recv_depth());
}

TEST_F(DeviceTest, PooledLanesEvictAndCachedChannelsReattach) {
  // Cap each NIC at 3 QP contexts: with two RPC QPs on host 0 (peers b and
  // c), only one data lane fits at a time, so connecting to a second peer
  // evicts the first peer's lanes. Cached RdmaChannel pointers must survive
  // the eviction and transparently reconnect on the next Memcpy — this is
  // the contract the zero-copy mechanism's per-edge channel cache relies on.
  net::CostModel tight = cost_;
  tight.max_queue_pairs = 3;
  net::Fabric fabric(&simulator_, tight, 4);
  rdma::RdmaFabric rdma(&fabric);
  DeviceDirectory directory(&rdma);
  auto make = [&](int host) {
    auto dev = RdmaDevice::Create(&directory, /*num_cqs=*/1, /*num_qps_per_peer=*/2,
                                  Endpoint{host, 7000});
    CHECK(dev.ok()) << dev.status();
    return std::move(dev).value();
  };
  auto a = make(0);
  auto b = make(1);
  auto c = make(2);

  auto src = a->AllocateMemRegion(8192);
  auto dst_b = b->AllocateMemRegion(8192);
  auto dst_c = c->AllocateMemRegion(8192);
  ASSERT_TRUE(src.ok() && dst_b.ok() && dst_c.ok());
  std::iota(src->data(), src->data() + 8192, 0);
  std::memset(dst_b->data(), 0, 8192);
  std::memset(dst_c->data(), 0, 8192);

  auto copy = [&](RdmaChannel* chan, const MemRegion& dst) {
    bool done = false;
    Status result = Internal("never fired");
    chan->Memcpy(reinterpret_cast<uint64_t>(src->data()), *src, dst.Remote().addr,
                 dst.Remote(), 8192, Direction::kLocalToRemote, [&](const Status& s) {
                   done = true;
                   result = s;
                 });
    CHECK_OK(simulator_.Run());
    CHECK(done);
    return result;
  };

  // Both lanes toward b, then cache the channel pointers.
  auto ab0 = a->GetChannel(b->endpoint(), 0);
  auto ab1 = a->GetChannel(b->endpoint(), 1);
  ASSERT_TRUE(ab0.ok() && ab1.ok());
  ASSERT_TRUE(copy(*ab0, *dst_b).ok());
  EXPECT_EQ(std::memcmp(dst_b->data(), src->data(), 8192), 0);

  // Connecting toward c exhausts host 0's contexts: the pool evicts b-lanes.
  auto ac0 = a->GetChannel(c->endpoint(), 0);
  ASSERT_TRUE(ac0.ok());
  ASSERT_TRUE(copy(*ac0, *dst_c).ok());
  EXPECT_EQ(std::memcmp(dst_c->data(), src->data(), 8192), 0);
  rdma::QpPool* pool = directory.qp_pool();
  EXPECT_GT(pool->stats().evictions, 0u);
  EXPECT_LE(rdma.nic(0)->num_queue_pairs(), 3);

  // The stale cached pointer still works: the lane reattaches from the pool.
  std::memset(dst_b->data(), 0, 8192);
  ASSERT_TRUE(copy(*ab0, *dst_b).ok());
  EXPECT_EQ(std::memcmp(dst_b->data(), src->data(), 8192), 0);
  EXPECT_GT(pool->stats().reconnects, 0u);

  // Total QP usage stayed at the cap, not peers x lanes.
  for (int host = 0; host < 3; ++host) {
    EXPECT_LE(rdma.nic(host)->num_queue_pairs(), 3);
  }
}

TEST_F(DeviceTest, DeviceDestructionReturnsPooledLanes) {
  net::CostModel tight = cost_;
  tight.max_queue_pairs = 4;
  net::Fabric fabric(&simulator_, tight, 2);
  rdma::RdmaFabric rdma(&fabric);
  DeviceDirectory directory(&rdma);
  auto a = RdmaDevice::Create(&directory, 1, 2, Endpoint{0, 7000});
  ASSERT_TRUE(a.ok());
  {
    auto b = RdmaDevice::Create(&directory, 1, 2, Endpoint{1, 7000});
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE((*a)->GetChannel((*b)->endpoint(), 0).ok());
    ASSERT_TRUE((*a)->GetChannel((*b)->endpoint(), 1).ok());
    EXPECT_EQ(directory.qp_pool()->num_lanes(), 2);
  }
  // b is gone: its lanes were torn down and a's bindings dropped.
  EXPECT_EQ(directory.qp_pool()->num_lanes(), 0);
  // A fresh peer at the same endpoint connects from scratch.
  auto b2 = RdmaDevice::Create(&directory, 1, 2, Endpoint{1, 7000});
  ASSERT_TRUE(b2.ok());
  EXPECT_TRUE((*a)->GetChannel((*b2)->endpoint(), 0).ok());
}

}  // namespace
}  // namespace device
}  // namespace rdmadl
