// Congestion-control subsystem tests (ISSUE 8).
//
// Covers the four tentpole layers plus the satellite fixes:
//   * Link queue semantics: ECN marking, tail drop, PFC pause windows, and
//     the zero-config Admit == Reserve identity the byte-compat story rests
//     on;
//   * property test: AvailableAt's binary search against a linear-scan
//     reference while ECN pause windows interleave with fault-injected down
//     windows under one seed;
//   * CappedBackoffNs regression: exponential backoff saturates at the cap
//     instead of overflowing at deep retry counts;
//   * the deterministic latency histogram's bucket layout and percentiles;
//   * DCQCN end to end on a mini incast: CNPs flow, rates decrease, pacing
//     spreads the storm, and the QPs still deliver every byte;
//   * the RdmaCheck flag/ordering contract under throttled and paused
//     delivery, asserted non-vacuously (a run with zero congestion signals
//     would prove nothing);
//   * straggler/jitter chaos: same-seed runs are byte-identical, seeds 1-10
//     stay checker-clean with congestion and stragglers both enabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "src/check/explore.h"
#include "src/check/rdma_check.h"
#include "src/check/testing.h"
#include "src/collective/collective.h"
#include "src/models/model_spec.h"
#include "src/net/fabric.h"
#include "src/net/topology.h"
#include "src/rdma/verbs.h"
#include "src/sim/fault.h"
#include "src/sim/histogram.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/train/ps_training.h"
#include "src/util/strings.h"

namespace rdmadl {

RDMADL_REGISTER_PROTOCOL_CHECK_LISTENER();

namespace {

using net::CongestionConfig;
using net::Link;
using sim::LatencyHistogram;

// ---- CappedBackoffNs / transport retry schedule ---------------------------

TEST(BackoffTest, MatchesNaiveShiftInSafeRange) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(rdma::CappedBackoffNs(20'000, attempt, 2'560'000), 20'000ll << attempt);
  }
  EXPECT_EQ(rdma::CappedBackoffNs(20'000, 7, 2'560'000), 2'560'000);  // Exactly at cap.
}

TEST(BackoffTest, SaturatesAtCapInsteadOfOverflowing) {
  const int64_t cap = 2'560'000;
  // The naive `base << attempt` goes negative past attempt ~40; every deep
  // attempt must clamp to the cap and never schedule an event in the past.
  for (int attempt : {8, 20, 40, 62, 63, 64, 100, 1'000'000}) {
    EXPECT_EQ(rdma::CappedBackoffNs(20'000, attempt, cap), cap) << attempt;
  }
  // No cap: saturates at int64 max rather than wrapping.
  for (int attempt : {62, 63, 127}) {
    const int64_t v = rdma::CappedBackoffNs(3, attempt, 0);
    EXPECT_GT(v, 0) << attempt;
  }
  EXPECT_EQ(rdma::CappedBackoffNs(0, 5, 100), 0);    // Disabled base.
  EXPECT_EQ(rdma::CappedBackoffNs(200, -3, 100), 100);  // Base above cap.
}

TEST(BackoffTest, TransportScheduleReadsCostModel) {
  net::CostModel cost;
  EXPECT_EQ(rdma::TransportBackoffNs(cost, 0), cost.rdma_transport_retry_base_ns);
  // The stock schedule's deepest legal attempt lands exactly on the cap...
  EXPECT_EQ(rdma::TransportBackoffNs(cost, cost.rdma_transport_retry_count),
            cost.rdma_transport_retry_max_ns);
  // ...and a hypothetical deeper retry budget saturates there too.
  EXPECT_EQ(rdma::TransportBackoffNs(cost, 500), cost.rdma_transport_retry_max_ns);
}

// ---- Latency histogram ----------------------------------------------------

TEST(HistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (int64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(static_cast<int>(v)), v);
  }
  h.Record(7);
  EXPECT_EQ(h.P50(), 7);
  EXPECT_EQ(h.max_ns(), 7);
  EXPECT_EQ(h.mean_ns(), 7);
}

TEST(HistogramTest, BucketBoundsBracketEveryValue) {
  // Lower bound <= v, and v is strictly below the next bucket's lower bound:
  // the defining property of the log2/16-sub-bucket layout (<= 6.25% error).
  for (int64_t v : {16ll, 17ll, 31ll, 32ll, 1'000ll, 4'095ll, 4'096ll, 123'456'789ll,
                    (1ll << 40) + 12'345, (1ll << 62) + 1}) {
    const int idx = LatencyHistogram::BucketIndex(v);
    const int64_t lo = LatencyHistogram::BucketLowerBound(idx);
    EXPECT_LE(lo, v) << v;
    EXPECT_GT(LatencyHistogram::BucketLowerBound(idx + 1), v) << v;
    EXPECT_LE(v - lo, v / 16) << v;  // Relative error bound.
  }
}

TEST(HistogramTest, PercentilesAreNearestRankBucketLowerBounds) {
  LatencyHistogram h;
  // 1000 x 100ns, 10 x 100us: the tail is exactly the top 10/1010 ≈ 1%.
  for (int i = 0; i < 1000; ++i) h.Record(100);
  for (int i = 0; i < 10; ++i) h.Record(100'000);
  EXPECT_EQ(h.count(), 1010u);
  EXPECT_EQ(h.P50(), 100);
  EXPECT_EQ(h.Percentile(99.0), 100);  // Rank 1000 of 1010 is still a fast one.
  EXPECT_EQ(h.P999(), LatencyHistogram::BucketLowerBound(
                          LatencyHistogram::BucketIndex(100'000)));
  EXPECT_EQ(h.Percentile(0.0), 100);
  EXPECT_EQ(h.max_ns(), 100'000);
}

TEST(HistogramTest, MergeIsElementwise) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(50);
  for (int i = 0; i < 100; ++i) b.Record(5'000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.P50(), 50);
  EXPECT_EQ(a.Percentile(99.0),
            LatencyHistogram::BucketLowerBound(LatencyHistogram::BucketIndex(5'000)));
  EXPECT_EQ(a.min_ns(), 50);
  EXPECT_EQ(a.max_ns(), 5'000);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.P999(), 0);
}

// ---- Link queue semantics -------------------------------------------------

TEST(LinkCongestionTest, UnconfiguredAdmitIsExactlyReserve) {
  Link plain("plain"), admit("admit");
  sim::Rng rng(7);
  int64_t now = 0;
  for (int i = 0; i < 200; ++i) {
    now += static_cast<int64_t>(rng.Next() % 1'000);
    const int64_t dur = 1 + static_cast<int64_t>(rng.Next() % 5'000);
    const Link::Admission adm = admit.Admit(now, dur);
    EXPECT_EQ(adm.done_ns, plain.Reserve(now, dur));
    EXPECT_FALSE(adm.ecn);
    EXPECT_FALSE(adm.dropped);
  }
  EXPECT_EQ(admit.congestion_stats().ecn_marks, 0u);
  EXPECT_FALSE(admit.congested());
}

TEST(LinkCongestionTest, EcnMarksAboveThresholdOnly) {
  Link link("l");
  link.ConfigureCongestion(/*capacity_ns=*/0, /*ecn_threshold_ns=*/1'000,
                           /*pause_on_overflow=*/false, /*pause_ns=*/0);
  EXPECT_TRUE(link.congested());
  // Empty queue: no mark. Backlog builds at 400ns per admit from t=0.
  EXPECT_FALSE(link.Admit(0, 400).ecn);   // Backlog 0.
  EXPECT_FALSE(link.Admit(0, 400).ecn);   // Backlog 400.
  EXPECT_FALSE(link.Admit(0, 400).ecn);   // Backlog 800.
  EXPECT_TRUE(link.Admit(0, 400).ecn);    // Backlog 1200 >= threshold.
  EXPECT_EQ(link.congestion_stats().ecn_marks, 1u);
  EXPECT_EQ(link.congestion_stats().peak_backlog_ns, 1'200);
}

TEST(LinkCongestionTest, OverflowDropsReserveNothing) {
  Link link("l");
  link.ConfigureCongestion(/*capacity_ns=*/1'000, /*ecn_threshold_ns=*/500,
                           /*pause_on_overflow=*/false, /*pause_ns=*/0);
  while (link.next_free_ns() <= 1'000) link.Admit(0, 300);
  const int64_t before = link.next_free_ns();
  const Link::Admission dropped = link.Admit(0, 300);
  EXPECT_TRUE(dropped.dropped);
  EXPECT_FALSE(dropped.ecn);  // A dropped packet carries no mark home.
  EXPECT_EQ(link.next_free_ns(), before);  // Nothing reserved.
  EXPECT_EQ(link.congestion_stats().overflow_drops, 1u);
  // The queue drains with virtual time: the same admit later succeeds.
  const Link::Admission later = link.Admit(before, 300);
  EXPECT_FALSE(later.dropped);
}

TEST(LinkCongestionTest, PauseOpensDownWindowInsteadOfDropping) {
  Link link("l");
  link.ConfigureCongestion(/*capacity_ns=*/1'000, /*ecn_threshold_ns=*/0,
                           /*pause_on_overflow=*/true, /*pause_ns=*/5'000);
  while (link.next_free_ns() <= 1'000) link.Admit(0, 300);
  const int64_t backlog_end = link.next_free_ns();
  const Link::Admission paused = link.Admit(0, 300);
  EXPECT_FALSE(paused.dropped);  // Lossless: admitted after the pause window.
  EXPECT_EQ(paused.done_ns, backlog_end + 5'000 + 300);
  EXPECT_EQ(link.congestion_stats().pause_windows, 1u);
  EXPECT_EQ(link.congestion_stats().paused_ns_total, 5'000);
}

// ---- AvailableAt property test: pauses x fault down windows ---------------

// Linear-scan reference: earliest t' >= t not inside the union of windows,
// iterated to a fixpoint so overlapping unmerged intervals behave like their
// union. This is the semantics AvailableAt's binary search over *coalesced*
// windows must reproduce.
int64_t ReferenceAvailableAt(int64_t t, const std::vector<std::pair<int64_t, int64_t>>& ws) {
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& w : ws) {
      if (t >= w.first && t < w.second) {
        t = w.second;
        moved = true;
      }
    }
  }
  return t;
}

TEST(LinkCongestionTest, PauseWindowsInterleaveWithFaultDownWindows) {
  // One seeded storm drives both mechanisms against the same link: explicit
  // AddDownWindow calls (the fault injector's path) interleaved with
  // pause-mode admits whose overflow opens ECN pause windows internally.
  // Every window the test can know about goes into the reference list; the
  // binary search must agree with the linear scan at every probe.
  sim::Rng rng(1234);
  Link link("l");
  const int64_t pause_ns = 700;
  link.ConfigureCongestion(/*capacity_ns=*/2'000, /*ecn_threshold_ns=*/800,
                           /*pause_on_overflow=*/true, pause_ns);
  std::vector<std::pair<int64_t, int64_t>> reference;
  uint64_t pauses_seen = 0;
  int64_t now = 0;
  for (int i = 0; i < 2'000; ++i) {
    const uint64_t kind = rng.Next() % 3;
    if (kind == 0) {
      // Fault-injected down window, deliberately allowed to overlap/touch
      // existing windows so coalescing paths are exercised.
      const int64_t from = now + static_cast<int64_t>(rng.Next() % 4'000);
      const int64_t until = from + 1 + static_cast<int64_t>(rng.Next() % 2'000);
      link.AddDownWindow(from, until);
      reference.emplace_back(from, until);
    } else {
      now += static_cast<int64_t>(rng.Next() % 600);
      const int64_t dur = 1 + static_cast<int64_t>(rng.Next() % 900);
      // Predict the pause window from public state, mirroring Admit's own
      // backlog computation, so the reference knows the window even when it
      // immediately coalesces into a longer fault window.
      const int64_t pre_start = link.AvailableAt(std::max(now, link.next_free_ns()));
      const bool expect_pause = pre_start - now > 2'000;  // capacity_ns.
      const Link::Admission adm = link.Admit(now, dur);
      ASSERT_FALSE(adm.dropped);
      if (expect_pause) {
        reference.emplace_back(pre_start, pre_start + pause_ns);
      }
      EXPECT_EQ(link.congestion_stats().pause_windows, pauses_seen + (expect_pause ? 1 : 0))
          << "iteration " << i;
      pauses_seen = link.congestion_stats().pause_windows;
      // The reserved slot must not *start* inside any known window.
      EXPECT_EQ(ReferenceAvailableAt(adm.done_ns - dur, reference), adm.done_ns - dur)
          << "iteration " << i;
    }
    // Probe AvailableAt across the whole horizon against the reference.
    const int64_t probe = static_cast<int64_t>(rng.Next() % 20'000);
    EXPECT_EQ(link.AvailableAt(probe), ReferenceAvailableAt(probe, reference))
        << "iteration " << i << " probe " << probe;
  }
  EXPECT_GT(pauses_seen, 0u) << "storm never overflowed: the property is vacuous";
  EXPECT_GT(link.congestion_stats().ecn_marks, 0u);
}

// ---- DCQCN on a mini incast ----------------------------------------------

struct IncastResult {
  uint64_t drops = 0;
  uint64_t marks = 0;
  uint64_t cnps = 0;
  uint64_t rate_decreases = 0;
  uint64_t retransmissions = 0;
  int64_t pacing_delay_ns = 0;
  int64_t finish_ns = 0;
};

// |workers| QPs each RDMA_WRITE a 64KB message into host 0 simultaneously,
// for |rounds| rounds. Returns the congestion counters; CHECK-fails if any
// write errors (the retry budget is sized so the storm always drains).
IncastResult RunMiniIncast(int workers, bool dcqcn, int rounds = 4) {
  sim::Simulator simulator;
  net::CostModel cost;
  cost.rdma_transport_retry_count = 20;
  net::TopologyConfig topo;
  topo.congestion.queue_capacity_bytes = 256 << 10;
  topo.congestion.ecn_threshold_bytes = 64 << 10;
  topo.congestion.dcqcn = dcqcn;
  net::Fabric fabric(&simulator, cost, workers + 1, topo);
  rdma::RdmaFabric rdma(&fabric);

  constexpr uint64_t kBytes = 64 << 10;
  std::vector<uint8_t> dst(workers * kBytes), src(workers * kBytes);
  auto dst_mr = rdma.nic(0)->RegisterMemory(dst.data(), dst.size());
  CHECK_OK(dst_mr.status());
  rdma::CompletionQueue* agg_cq = rdma.nic(0)->CreateCompletionQueue();

  struct Worker {
    rdma::MemoryRegion mr;
    rdma::QueuePair* qp = nullptr;
    int completions = 0;
  };
  std::vector<Worker> state(workers);
  for (int w = 0; w < workers; ++w) {
    rdma::NicDevice* nic = rdma.nic(w + 1);
    auto mr = nic->RegisterMemory(src.data() + w * kBytes, kBytes);
    CHECK_OK(mr.status());
    state[w].mr = *mr;
    rdma::CompletionQueue* cq = nic->CreateCompletionQueue();
    cq->SetCompletionHandler([&state, w, cq]() {
      rdma::WorkCompletion wc;
      while (cq->Poll(&wc)) {
        CHECK_OK(wc.status);
        ++state[w].completions;
      }
    });
    state[w].qp = nic->CreateQueuePair(cq, cq);
    CHECK_OK(state[w].qp->Connect(rdma.nic(0)->CreateQueuePair(agg_cq, agg_cq)));
  }
  for (int r = 0; r < rounds; ++r) {
    for (int w = 0; w < workers; ++w) {
      rdma::SendWorkRequest wr;
      wr.wr_id = w;
      wr.opcode = rdma::Opcode::kWrite;
      wr.local_addr = state[w].mr.addr;
      wr.lkey = state[w].mr.lkey;
      wr.length = kBytes;
      wr.remote_addr = reinterpret_cast<uint64_t>(dst.data()) + w * kBytes;
      wr.rkey = dst_mr->rkey;
      wr.copy_bytes = false;
      CHECK_OK(state[w].qp->PostSend(wr));
    }
    CHECK_OK(simulator.Run());
  }

  IncastResult out;
  for (int w = 0; w < workers; ++w) {
    EXPECT_EQ(state[w].completions, rounds);
    const rdma::NicStats& s = rdma.nic(w + 1)->stats();
    out.cnps += s.cnps_received;
    out.rate_decreases += s.dcqcn_rate_decreases;
    out.retransmissions += s.retransmissions;
    out.marks += s.ecn_marked_segments;
    out.pacing_delay_ns += s.dcqcn_pacing_delay_ns_total;
  }
  out.drops = fabric.congestion_totals().overflow_drops;
  out.finish_ns = simulator.Now();
  // Clean teardown so the RDMADL_CHECK=1 run sees no leaked registrations.
  for (int w = 0; w < workers; ++w) {
    CHECK_OK(rdma.nic(w + 1)->DeregisterMemory(state[w].mr));
  }
  CHECK_OK(rdma.nic(0)->DeregisterMemory(*dst_mr));
  return out;
}

TEST(DcqcnTest, CcOffCollapsesAndNobodyReacts) {
  const IncastResult off = RunMiniIncast(16, /*dcqcn=*/false);
  EXPECT_GT(off.drops, 0u);            // The queue genuinely overflows.
  EXPECT_GT(off.marks, 0u);            // Marks are counted...
  EXPECT_EQ(off.cnps, 0u);             // ...but nobody reacts.
  EXPECT_EQ(off.rate_decreases, 0u);
  EXPECT_EQ(off.pacing_delay_ns, 0);
  EXPECT_EQ(off.retransmissions, off.drops);  // Every drop is retried.
}

TEST(DcqcnTest, ReactionPointThrottlesAndRecovers) {
  const IncastResult off = RunMiniIncast(16, /*dcqcn=*/false);
  const IncastResult on = RunMiniIncast(16, /*dcqcn=*/true);
  EXPECT_GT(on.cnps, 0u);
  EXPECT_GT(on.rate_decreases, 0u);
  EXPECT_GT(on.pacing_delay_ns, 0);
  // The whole point: the reaction point sheds most of the packet loss.
  EXPECT_LT(on.drops, off.drops / 2);
}

TEST(DcqcnTest, SameSeedIncastIsByteIdentical) {
  const IncastResult a = RunMiniIncast(12, /*dcqcn=*/true);
  const IncastResult b = RunMiniIncast(12, /*dcqcn=*/true);
  EXPECT_EQ(a.finish_ns, b.finish_ns);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.cnps, b.cnps);
  EXPECT_EQ(a.rate_decreases, b.rate_decreases);
  EXPECT_EQ(a.pacing_delay_ns, b.pacing_delay_ns);
}

// ---- Flag contract under throttled / paused delivery ----------------------

// A full zero-copy PS training step on a congested pause-mode fabric with the
// protocol checker installed: payload-before-flag must hold even when every
// stripe is rate limited and the aggregator's ingress keeps pausing. The
// congestion-signal counters make the pass non-vacuous.
TEST(CongestionCheckTest, FlagContractSurvivesRateLimitedDelivery) {
  // Under RDMADL_CHECK=1 the gtest listener already installed a per-test
  // checker; installing a second would abort. Piggyback on whichever is live
  // (the listener finalizes its own at test end).
  std::unique_ptr<check::RdmaCheck> owned;
  if (check::RdmaCheck::Current() == nullptr) {
    owned = std::make_unique<check::RdmaCheck>();
  }
  check::RdmaCheck& checker = *check::RdmaCheck::Current();
  {
    train::TrainingConfig config;
    config.model = models::Fcn5();
    config.num_machines = 4;
    config.batch_size = 8;
    config.mechanism = train::MechanismKind::kRdmaZeroCopy;
    config.topology.congestion.queue_capacity_bytes = 512 << 10;
    config.topology.congestion.ecn_threshold_bytes = 32 << 10;
    config.topology.congestion.pause_on_overflow = true;
    config.topology.congestion.dcqcn = true;
    train::TrainingDriver driver(std::move(config));
    ASSERT_TRUE(driver.Initialize(/*warmup_steps=*/1).ok());
    auto ms = driver.MeasureStepTimeMs(/*steps=*/2);
    ASSERT_TRUE(ms.ok()) << ms.status();
    EXPECT_GT(driver.step_latencies().count(), 0u);
  }
  if (owned != nullptr) {
    EXPECT_TRUE(checker.Finalize().empty()) << checker.Report();
  }
  // Non-vacuity: the fabric must actually have throttled something.
  EXPECT_GT(checker.congestion_signal_count(check::RdmaCheck::CongestionSignal::kEcnMark),
            0u);
  EXPECT_GT(checker.congestion_signal_count(check::RdmaCheck::CongestionSignal::kCnp), 0u);
  EXPECT_GT(
      checker.congestion_signal_count(check::RdmaCheck::CongestionSignal::kRateDecrease),
      0u);
}

// ---- Straggler / jitter chaos --------------------------------------------

TEST(StragglerTest, DilationsAreSeededAndDeterministic) {
  sim::StragglerSpec spec;
  spec.straggler_probability = 0.5;
  spec.dilation_min = 1.2;
  spec.dilation_max = 2.0;
  spec.jitter_max_ns = 1'000;

  sim::FaultInjector a(42), b(42), c(43);
  a.ConfigureStragglers(spec, 64);
  b.ConfigureStragglers(spec, 64);
  c.ConfigureStragglers(spec, 64);
  int stragglers = 0;
  bool seeds_differ = false;
  for (int h = 0; h < 64; ++h) {
    EXPECT_EQ(a.ComputeDilation(h), b.ComputeDilation(h)) << h;
    if (a.ComputeDilation(h) != c.ComputeDilation(h)) seeds_differ = true;
    if (a.ComputeDilation(h) > 1.0) {
      ++stragglers;
      EXPECT_GE(a.ComputeDilation(h), spec.dilation_min);
      EXPECT_LE(a.ComputeDilation(h), spec.dilation_max);
    }
  }
  EXPECT_GT(stragglers, 8);   // ~32 expected at p=0.5 over 64 hosts.
  EXPECT_LT(stragglers, 56);
  EXPECT_TRUE(seeds_differ);
  EXPECT_EQ(a.stats().stragglers, static_cast<uint64_t>(stragglers));
}

TEST(StragglerTest, UnconfiguredKnobConsumesNoRandomness) {
  // Two injectors, same seed: one consults jitter (unconfigured), the other
  // never does. Their subsequent spike draws must stay in lockstep — the
  // knob must not perturb pre-knob seeds.
  sim::LinkFaultSpec spikes;
  spikes.spike_probability = 1.0;
  spikes.spike_min_ns = 10;
  spikes.spike_max_ns = 10'000;
  sim::FaultInjector a(99), b(99);
  a.SetDefaultLinkFault(spikes);
  b.SetDefaultLinkFault(spikes);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.DrawJitterNs(0, 1), 0);
    EXPECT_EQ(a.DrawSpikeNs(0, 1), b.DrawSpikeNs(0, 1)) << i;
  }
  EXPECT_EQ(a.stats().jitter_draws, 0u);
}

TEST(StragglerTest, DilationSlowsTrainingDeterministically) {
  auto run = [](uint64_t seed, bool stragglers) -> double {
    train::TrainingConfig config;
    config.model = models::Fcn5();
    config.num_machines = 4;
    config.batch_size = 8;
    config.mechanism = train::MechanismKind::kRdmaZeroCopy;
    train::TrainingDriver driver(std::move(config));
    CHECK_OK(driver.Initialize(/*warmup_steps=*/1));
    sim::FaultInjector injector(seed);
    if (stragglers) {
      sim::StragglerSpec spec;
      spec.straggler_probability = 1.0;  // Every host drags.
      spec.dilation_min = 1.5;
      spec.dilation_max = 1.5;
      injector.ConfigureStragglers(spec, 4);
    }
    driver.cluster()->fabric()->SetFaultInjector(&injector);
    auto ms = driver.MeasureStepTimeMs(/*steps=*/1);
    CHECK(ms.ok()) << ms.status();
    return *ms;
  };
  const double baseline = run(5, false);
  const double dragged = run(5, true);
  const double dragged_again = run(5, true);
  EXPECT_EQ(dragged, dragged_again);  // Same seed: byte-identical.
  // Compute dilation 1.5x must slow the step, but communication is not
  // dilated so the step grows by less than 1.5x.
  EXPECT_GT(dragged, baseline * 1.05);
  EXPECT_LT(dragged, baseline * 1.5);
}

// Chaos seeds 1-10 with congestion AND stragglers enabled: a ring all-reduce
// completes checker-clean, delivers exact sums, and same-seed reruns are
// byte-identical (the acceptance sweep of ISSUE 8 in miniature; scripts/
// check.sh --congestion drives the full bench_scale version).
TEST(CongestionChaosTest, SeedsOneThroughTenAreCleanAndDeterministic) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    int64_t first_finish = -1;
    for (int run = 0; run < 2; ++run) {
      // Under RDMADL_CHECK=1 the listener's per-test checker is already
      // installed and finalizes at test end; only install our own otherwise.
      std::unique_ptr<check::RdmaCheck> checker;
      if (check::RdmaCheck::Current() == nullptr) {
        checker = std::make_unique<check::RdmaCheck>();
      }
      int64_t finish = -1;
      {
        sim::Simulator simulator;
        net::CostModel cost;
        net::TopologyConfig topo;
        topo.hosts_per_rack = 8;
        topo.oversubscription = 4.0;
        topo.congestion.queue_capacity_bytes = 1 << 20;
        topo.congestion.ecn_threshold_bytes = 128 << 10;
        topo.congestion.pause_on_overflow = true;
        topo.congestion.dcqcn = true;
        const int hosts = 16;
        net::Fabric fabric(&simulator, cost, hosts, topo);
        sim::FaultInjector injector(seed);
        sim::LinkFaultSpec spikes;
        spikes.spike_probability = 0.05;
        spikes.spike_min_ns = 1'000;
        spikes.spike_max_ns = 20'000;
        injector.SetDefaultLinkFault(spikes);
        sim::StragglerSpec straggle;
        straggle.straggler_probability = 0.25;
        straggle.dilation_min = 1.1;
        straggle.dilation_max = 1.4;
        straggle.jitter_max_ns = 2'000;
        injector.ConfigureStragglers(straggle, hosts);
        injector.SetLinkDown(static_cast<int>(seed % hosts), 50'000, 250'000);
        fabric.SetFaultInjector(&injector);

        rdma::RdmaFabric rdma(&fabric);
        device::DeviceDirectory directory(&rdma);
        std::vector<int> host_ids(hosts);
        std::iota(host_ids.begin(), host_ids.end(), 0);
        collective::CollectiveOptions options;
        options.algorithm = collective::Algorithm::kRing;
        const uint64_t elements = 64 * 1024;
        auto group =
            collective::CollectiveGroup::Create(&directory, host_ids, elements, options);
        ASSERT_TRUE(group.ok()) << group.status();
        for (int r = 0; r < hosts; ++r) {
          float* data = (*group)->data(r);
          for (uint64_t i = 0; i < elements; ++i) {
            data[i] = static_cast<float>((r + 1) * (i % 7 + 1));
          }
        }
        bool done = false;
        Status status = Internal("never completed");
        (*group)->AllReduce(elements, [&](const Status& s) {
          done = true;
          status = s;
        });
        ASSERT_TRUE(simulator.Run().ok()) << "seed " << seed;
        ASSERT_TRUE(done);
        ASSERT_TRUE(status.ok()) << "seed " << seed << ": " << status;
        for (uint64_t i = 0; i < elements; i += 1'000) {
          float want = 0;
          for (int r = 0; r < hosts; ++r) want += static_cast<float>((r + 1) * (i % 7 + 1));
          ASSERT_EQ((*group)->data(0)[i], want) << "seed " << seed << " i=" << i;
        }
        finish = simulator.Now();
      }
      if (checker != nullptr) {
        ASSERT_TRUE(checker->Finalize().empty())
            << "seed " << seed << ":\n" << checker->Report();
      }
      if (run == 0) {
        first_finish = finish;
      } else {
        EXPECT_EQ(finish, first_finish) << "seed " << seed << " diverged across reruns";
      }
    }
  }
}

// Schedule-space exploration harness (ISSUE 9). With RDMADL_EXPLORE=16 (the
// congestion_test_explore ctest entry) a mini incast with tail-drop queues,
// ECN marking, and DCQCN enabled is replayed across tie permutations and
// timing perturbations, each replay under a fresh RdmaCheck — reordering the
// CNP/pause/retry interleavings must never corrupt delivery or trip a
// protocol invariant.
TEST(ExploreHarnessTest, ExploreMiniIncastUnderDcqcnStaysClean) {
  sim::ExploreResult result = check::ExploreForTest(
      "congestion.mini-incast", [](sim::Simulator& simulator) -> Status {
        net::CostModel cost;
        cost.rdma_transport_retry_count = 20;
        net::TopologyConfig topo;
        topo.congestion.queue_capacity_bytes = 64 << 10;
        topo.congestion.ecn_threshold_bytes = 16 << 10;
        topo.congestion.dcqcn = true;
        net::Fabric fabric(&simulator, cost, /*num_hosts=*/3, topo);
        rdma::RdmaFabric rdma(&fabric);
        device::DeviceDirectory directory(&rdma);
        auto receiver = device::RdmaDevice::Create(&directory, /*num_cqs=*/2,
                                                   /*num_qps_per_peer=*/2, Endpoint{0, 7000});
        auto sender_a = device::RdmaDevice::Create(&directory, /*num_cqs=*/2,
                                                   /*num_qps_per_peer=*/2, Endpoint{1, 7000});
        auto sender_b = device::RdmaDevice::Create(&directory, /*num_cqs=*/2,
                                                   /*num_qps_per_peer=*/2, Endpoint{2, 7000});
        if (!receiver.ok()) return receiver.status();
        if (!sender_a.ok()) return sender_a.status();
        if (!sender_b.ok()) return sender_b.status();
        constexpr uint64_t kBytes = 128 << 10;
        auto dst_a = (*receiver)->AllocateMemRegion(kBytes);
        auto dst_b = (*receiver)->AllocateMemRegion(kBytes);
        auto src_a = (*sender_a)->AllocateMemRegion(kBytes);
        auto src_b = (*sender_b)->AllocateMemRegion(kBytes);
        if (!dst_a.ok()) return dst_a.status();
        if (!dst_b.ok()) return dst_b.status();
        if (!src_a.ok()) return src_a.status();
        if (!src_b.ok()) return src_b.status();
        std::memset(src_a->data(), 0x11, kBytes);
        std::memset(src_b->data(), 0x22, kBytes);
        auto chan_a = (*sender_a)->GetChannel((*receiver)->endpoint(), /*qp_idx=*/0);
        auto chan_b = (*sender_b)->GetChannel((*receiver)->endpoint(), /*qp_idx=*/0);
        if (!chan_a.ok()) return chan_a.status();
        if (!chan_b.ok()) return chan_b.status();
        auto done = std::make_shared<int>(0);
        auto failed = std::make_shared<Status>(OkStatus());
        auto on_done = [done, failed](const Status& s) {
          if (!s.ok() && failed->ok()) *failed = s;
          ++*done;
        };
        (*chan_a)->Memcpy(src_a->data(), src_a->lkey(), dst_a->Remote().addr, dst_a->rkey(),
                          kBytes, device::Direction::kLocalToRemote, on_done);
        (*chan_b)->Memcpy(src_b->data(), src_b->lkey(), dst_b->Remote().addr, dst_b->rkey(),
                          kBytes, device::Direction::kLocalToRemote, on_done);
        Status run = simulator.RunUntilPredicate([done] { return *done == 2; });
        if (!run.ok()) return run;
        if (!failed->ok()) return *failed;
        for (uint64_t i = 0; i < kBytes; ++i) {
          if (dst_a->data()[i] != 0x11 || dst_b->data()[i] != 0x22) {
            return Internal(StrCat("incast byte ", i, " corrupt after congested delivery"));
          }
        }
        return OkStatus();
      });
  EXPECT_FALSE(result.failure_found) << result.Summary();
  EXPECT_GE(result.stats.schedules_run, 1);
}

}  // namespace
}  // namespace rdmadl
