#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/sim/rng.h"
#include "src/tensor/arena_allocator.h"
#include "src/tensor/tensor.h"

namespace rdmadl {
namespace tensor {
namespace {

TEST(DTypeTest, SizesAndNames) {
  EXPECT_EQ(DTypeSize(DType::kFloat32), 4u);
  EXPECT_EQ(DTypeSize(DType::kFloat64), 8u);
  EXPECT_EQ(DTypeSize(DType::kInt32), 4u);
  EXPECT_EQ(DTypeSize(DType::kInt64), 8u);
  EXPECT_EQ(DTypeSize(DType::kUInt8), 1u);
  EXPECT_EQ(DTypeSize(DType::kInvalid), 0u);
  EXPECT_STREQ(DTypeName(DType::kFloat32), "float32");
}

TEST(ShapeTest, BasicProperties) {
  TensorShape s{2, 3, 4};
  EXPECT_EQ(s.num_dims(), 3);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_TRUE(s.IsFullyDefined());
  EXPECT_EQ(s.num_elements(), 24);
  EXPECT_EQ(s.ToString(), "[2,3,4]");
}

TEST(ShapeTest, ScalarShape) {
  TensorShape s;
  EXPECT_EQ(s.num_dims(), 0);
  EXPECT_TRUE(s.IsFullyDefined());
  EXPECT_EQ(s.num_elements(), 1);
  EXPECT_EQ(s.ToString(), "[]");
}

TEST(ShapeTest, UnknownDims) {
  TensorShape s{kUnknownDim, 128};
  EXPECT_FALSE(s.IsFullyDefined());
  EXPECT_EQ(s.ToString(), "[?,128]");
  s.set_dim(0, 32);
  EXPECT_TRUE(s.IsFullyDefined());
  EXPECT_EQ(s.num_elements(), 32 * 128);
}

TEST(ShapeTest, Compatibility) {
  TensorShape partial{kUnknownDim, 128};
  TensorShape full{32, 128};
  TensorShape wrong{32, 64};
  TensorShape other_rank{32};
  EXPECT_TRUE(partial.IsCompatibleWith(full));
  EXPECT_TRUE(full.IsCompatibleWith(partial));
  EXPECT_FALSE(full.IsCompatibleWith(wrong));
  EXPECT_FALSE(partial.IsCompatibleWith(wrong));  // Known dims still must match.
  EXPECT_TRUE(TensorShape({kUnknownDim, 64}).IsCompatibleWith(wrong));
  EXPECT_FALSE(partial.IsCompatibleWith(other_rank));
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(TensorShape({1, 2}), TensorShape({1, 2}));
  EXPECT_NE(TensorShape({1, 2}), TensorShape({2, 1}));
  EXPECT_NE(TensorShape({kUnknownDim}), TensorShape({1}));
}

TEST(CpuAllocatorTest, AllocatesAlignedMemory) {
  CpuAllocator* alloc = CpuAllocator::Get();
  void* p = alloc->Allocate(100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % Allocator::kAlignment, 0u);
  alloc->Deallocate(p);
}

TEST(CpuAllocatorTest, TracksStats) {
  CpuAllocator alloc;
  void* a = alloc.Allocate(1000);
  void* b = alloc.Allocate(2000);
  EXPECT_EQ(alloc.stats().allocations, 2);
  EXPECT_EQ(alloc.stats().bytes_in_use, 3000);
  alloc.Deallocate(a);
  EXPECT_EQ(alloc.stats().bytes_in_use, 2000);
  EXPECT_EQ(alloc.stats().peak_bytes_in_use, 3000);
  alloc.Deallocate(b);
  EXPECT_EQ(alloc.stats().bytes_in_use, 0);
}

class ArenaTest : public ::testing::Test {
 protected:
  ArenaTest() : storage_(1 << 20), arena_(storage_.data(), storage_.size(), "test") {}
  std::vector<uint8_t> storage_;
  ArenaAllocator arena_;
};

TEST_F(ArenaTest, AllocationsComeFromArena) {
  void* p = arena_.Allocate(4096);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(arena_.Contains(p));
  EXPECT_GE(p, storage_.data());
  EXPECT_LT(p, storage_.data() + storage_.size());
}

TEST_F(ArenaTest, ExhaustionReturnsNull) {
  void* p = arena_.Allocate(storage_.size());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena_.Allocate(64), nullptr);
  arena_.Deallocate(p);
  EXPECT_NE(arena_.Allocate(64), nullptr);
}

TEST_F(ArenaTest, FreeCoalescingAllowsFullReuse) {
  // Allocate the whole arena in pieces, free in a scattered order, then
  // allocate the whole arena again — only possible if coalescing works.
  std::vector<void*> blocks;
  const size_t piece = 1 << 14;
  while (void* p = arena_.Allocate(piece)) blocks.push_back(p);
  EXPECT_GT(blocks.size(), 10u);
  for (size_t i = 0; i < blocks.size(); i += 2) arena_.Deallocate(blocks[i]);
  for (size_t i = 1; i < blocks.size(); i += 2) arena_.Deallocate(blocks[i]);
  EXPECT_EQ(arena_.largest_free_block(), storage_.size());
  void* all = arena_.Allocate(storage_.size());
  EXPECT_NE(all, nullptr);
}

TEST_F(ArenaTest, BestFitPrefersSmallestBlock) {
  void* a = arena_.Allocate(1 << 18);  // 256 KB
  void* b = arena_.Allocate(64);       // Splits off after a.
  arena_.Deallocate(a);                // Now free: 256 KB hole + tail.
  void* c = arena_.Allocate(1 << 10);  // 1 KB: should land in the 256 KB hole.
  EXPECT_EQ(c, a);
  arena_.Deallocate(b);
  arena_.Deallocate(c);
}

TEST_F(ArenaTest, OffsetOf) {
  void* p = arena_.Allocate(128);
  EXPECT_EQ(arena_.OffsetOf(p),
            reinterpret_cast<uintptr_t>(p) - reinterpret_cast<uintptr_t>(storage_.data()));
  arena_.Deallocate(p);
}

TEST_F(ArenaTest, StatsTrackUsage) {
  void* p = arena_.Allocate(100);  // Rounded to 128.
  EXPECT_EQ(arena_.stats().bytes_in_use, 128);
  arena_.Deallocate(p);
  EXPECT_EQ(arena_.stats().bytes_in_use, 0);
  EXPECT_EQ(arena_.stats().allocations, 1);
  EXPECT_EQ(arena_.stats().deallocations, 1);
}

TEST_F(ArenaTest, ManyRandomAllocationsConserveSpace) {
  // Property: after freeing everything, the arena is one free block again.
  sim::Rng rng(99);
  std::vector<void*> live;
  for (int round = 0; round < 2000; ++round) {
    if (live.empty() || rng.UniformDouble() < 0.6) {
      void* p = arena_.Allocate(64 + rng.Uniform(8192));
      if (p != nullptr) live.push_back(p);
    } else {
      size_t idx = rng.Uniform(live.size());
      arena_.Deallocate(live[idx]);
      live.erase(live.begin() + idx);
    }
  }
  for (void* p : live) arena_.Deallocate(p);
  EXPECT_EQ(arena_.stats().bytes_in_use, 0);
  EXPECT_EQ(arena_.largest_free_block(), storage_.size());
}

TEST(TracingAllocatorTest, HooksFire) {
  CpuAllocator base;
  TracingAllocator tracing(&base);
  void* seen_ptr = nullptr;
  size_t seen_bytes = 0;
  void* freed_ptr = nullptr;
  tracing.set_alloc_hook([&](void* p, size_t b) {
    seen_ptr = p;
    seen_bytes = b;
  });
  tracing.set_free_hook([&](void* p) { freed_ptr = p; });
  void* p = tracing.Allocate(512);
  EXPECT_EQ(seen_ptr, p);
  EXPECT_EQ(seen_bytes, 512u);
  tracing.Deallocate(p);
  EXPECT_EQ(freed_ptr, p);
}

TEST(TensorTest, AllocatesAndAccesses) {
  Tensor t(CpuAllocator::Get(), DType::kFloat32, TensorShape{2, 3});
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.num_elements(), 6);
  EXPECT_EQ(t.TotalBytes(), 24u);
  for (int i = 0; i < 6; ++i) t.at<float>(i) = static_cast<float>(i);
  EXPECT_EQ(t.at<float>(4), 4.0f);
}

TEST(TensorTest, CopySharesBuffer) {
  Tensor a(CpuAllocator::Get(), DType::kFloat32, TensorShape{4});
  a.at<float>(0) = 1.0f;
  Tensor b = a;
  b.at<float>(0) = 2.0f;
  EXPECT_EQ(a.at<float>(0), 2.0f);
  EXPECT_EQ(a.raw_data(), b.raw_data());
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a(CpuAllocator::Get(), DType::kFloat32, TensorShape{4});
  a.at<float>(0) = 1.0f;
  Tensor b = a.Clone(CpuAllocator::Get());
  b.at<float>(0) = 2.0f;
  EXPECT_EQ(a.at<float>(0), 1.0f);
  EXPECT_NE(a.raw_data(), b.raw_data());
}

TEST(TensorTest, ReshapedAliasesStorage) {
  Tensor a(CpuAllocator::Get(), DType::kFloat32, TensorShape{2, 6});
  Tensor b = a.Reshaped(TensorShape{3, 4});
  EXPECT_EQ(a.raw_data(), b.raw_data());
  EXPECT_EQ(b.shape(), TensorShape({3, 4}));
}

TEST(TensorTest, BufferLargerThanTensorAllowed) {
  // Receiver-side tensors of the zero-copy protocol reserve a tail flag byte.
  auto buffer = std::make_shared<Buffer>(CpuAllocator::Get(), 4 * 10 + 1);
  Tensor t(buffer, DType::kFloat32, TensorShape{10});
  EXPECT_EQ(t.TotalBytes(), 40u);
  EXPECT_EQ(t.buffer()->size(), 41u);
}

TEST(TensorTest, DebugString) {
  Tensor t(CpuAllocator::Get(), DType::kFloat32, TensorShape{8});
  EXPECT_EQ(t.DebugString(), "Tensor<float32[8], 32 B>");
  EXPECT_EQ(Tensor().DebugString(), "Tensor<invalid>");
}

TEST(TensorTest, ExternalBufferNotFreed) {
  std::vector<uint8_t> storage(64);
  {
    auto buffer = std::make_shared<Buffer>(storage.data(), storage.size());
    Tensor t(buffer, DType::kUInt8, TensorShape{64});
    t.at<uint8_t>(0) = 0x55;
  }
  EXPECT_EQ(storage[0], 0x55);  // Still alive and written.
}

}  // namespace
}  // namespace tensor
}  // namespace rdmadl
