#include <gtest/gtest.h>

#include "src/util/endpoint.h"
#include "src/util/status.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad tensor shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad tensor shape");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad tensor shape");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ResourceExhausted("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPrecondition("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Unavailable("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Aborted("").code(), StatusCode::kAborted);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  RDMADL_ASSIGN_OR_RETURN(*out, Half(x));
  return OkStatus();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalf(7, &out).code(), StatusCode::kInvalidArgument);
}

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
  EXPECT_EQ(HumanBytes(uint64_t{3} * 1024 * 1024), "3.00 MB");
  EXPECT_EQ(HumanBytes(uint64_t{5} * 1024 * 1024 * 1024), "5.00 GB");
}

TEST(StringsTest, HumanDuration) {
  EXPECT_EQ(HumanDuration(500), "500 ns");
  EXPECT_EQ(HumanDuration(12'300), "12.30 us");
  EXPECT_EQ(HumanDuration(4'560'000), "4.56 ms");
  EXPECT_EQ(HumanDuration(2'000'000'000), "2.00 s");
}

TEST(StringsTest, StrSplit) {
  auto parts = StrSplit("a:b::c", ':');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
}

TEST(EndpointTest, EqualityAndOrdering) {
  Endpoint a{0, 1000};
  Endpoint b{0, 1001};
  Endpoint c{1, 1000};
  EXPECT_EQ(a, a);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_EQ(a.ToString(), "host0:1000");
}

TEST(EndpointTest, HashDistinguishes) {
  EndpointHash h;
  EXPECT_NE(h(Endpoint{0, 1}), h(Endpoint{1, 0}));
}

}  // namespace
}  // namespace rdmadl
