// Private state of CollectiveGroup, shared by the algorithm translation units
// (collective_group.cc, ring_allreduce.cc, naive_allreduce.cc, broadcast.cc).
// Not part of the public API.
#ifndef RDMADL_SRC_COLLECTIVE_INTERNAL_H_
#define RDMADL_SRC_COLLECTIVE_INTERNAL_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/collective/collective.h"
#include "src/comm/transfer_engine.h"
#include "src/device/rdma_device.h"

namespace rdmadl {
namespace collective {

// Per-rank resources, all set up once at group creation (§3.2 static
// placement: nothing on the collective critical path ever allocates or
// registers memory).
//
// Buffer layout per rank (addresses are real pointers when materialized,
// reserved never-dereferenced ranges otherwise):
//   data   max_elements floats — the user's vector; all-gather writes land
//          directly at their final offsets in here.
//   slots  ring: lanes x (N-1) x chunk_cap slots — reduce-scatter step s of
//          lane l lands in slot (l, s), so a sender running ahead can never
//          overwrite a slot its successor has not consumed.
//          naive: root only, N-1 x max_elements gather parking.
//   flags  ALWAYS real memory (the poller reads actual bytes): one byte per
//          expected arrival, written exactly once per op by the flag write
//          that trails its payload on the same QP, plus one constant source
//          byte (=1) at index |flag_capacity| that every flag write reads.
struct CollectiveGroup::Rank {
  int index = 0;
  Endpoint endpoint;
  std::unique_ptr<device::RdmaDevice> device;
  // Shared transfer engine (lane striping for big chunks; coalescing forced
  // off for collectives). Declared after |device|: it is torn down first.
  std::unique_ptr<comm::TransferEngine> engine;

  // Data buffer.
  uint64_t data_addr = 0;
  uint32_t data_lkey = 0;
  device::MemRegion data_region;  // Invalid in virtual mode.

  // Ring / gather slots.
  uint64_t slot_addr = 0;
  uint64_t slot_bytes = 0;
  uint32_t slot_lkey = 0;
  device::MemRegion slot_region;  // Invalid in virtual mode.

  // Virtual-mode registrations to drop on destruction.
  std::vector<rdma::MemoryRegion> virtual_mrs;

  // Flag block: flag_capacity bytes + 1 source byte.
  device::MemRegion flag_region;

  // What this rank knows about its peers after address distribution;
  // indexed by rank (the self entry is filled locally).
  struct PeerAddrs {
    device::RemoteRegion data;
    device::RemoteRegion slots;
    device::RemoteRegion flags;
  };
  std::vector<PeerAddrs> peers;

  float* data_ptr() const {
    return data_region.valid() ? reinterpret_cast<float*>(data_region.data()) : nullptr;
  }
  uint8_t* slot_ptr() const { return slot_region.valid() ? slot_region.data() : nullptr; }
  uint8_t* flags() const { return flag_region.data(); }
  uint64_t slot_offset_addr(uint64_t offset) const { return slot_addr + offset; }

  ~Rank() {
    for (const rdma::MemoryRegion& mr : virtual_mrs) {
      (void)device->nic()->DeregisterMemory(mr);
    }
  }
};

// One in-flight collective. Closures capture the op by shared_ptr so a
// completion that races with teardown (e.g. after a failure finished the op
// early) finds |finished| set and backs off instead of touching freed state.
struct CollectiveGroup::Op {
  enum class Kind { kAllReduce, kReduceScatter, kAllGather, kBroadcast };

  Kind kind = Kind::kAllReduce;
  uint64_t count = 0;  // Elements.
  int root = 0;        // Broadcast only.
  DoneCallback done;
  int64_t start_ns = 0;
  // Absolute virtual-time budget (0 = none). Begin arms a backstop timer at
  // this instant; the multi-level schedules additionally recheck it at every
  // level handoff (tree -> spine ring -> broadcast, in-network round issue)
  // so a blown budget fails with a message naming the level instead of the
  // generic timer text.
  int64_t deadline_ns = 0;

  bool finished = false;
  Status status;  // First failure, if any.

  // Completion accounting: the op finishes when every unit (one per
  // rank x lane for the ring, one per involved rank otherwise) is done.
  int pending_units = 0;

  // Lane partition of [0, count), in elements.
  std::vector<uint64_t> lane_offset;
  std::vector<uint64_t> lane_count;

  // Naive gather: virtual time at which the root's reduce core frees up
  // (arrivals reduce serially on one core).
  int64_t root_cpu_free_ns = 0;
  int naive_reduced = 0;

  // Flags declared to the protocol checker for this op, as (rank, index)
  // pairs; Finish/Fail forget them so the shadow state never outlives the op.
  std::vector<std::pair<int, int>> declared_flags;

  // In-network staging ("switch SRAM" shadow, materialize mode only):
  // [lane][rack partial 0..R-1, global R][window] floats.
  std::vector<float> innet_buf;
};

// A sequential flag poller: one per (rank, lane) for the ring, one per
// expected arrival group otherwise. Watches its flag bytes in index order
// with exponential backoff (§4: each idle retry is a discrete event, so the
// interval backs off up to the max and resets on progress).
struct CollectiveGroup::Waiter {
  int rank = 0;
  int flag_base = 0;
  int num_flags = 0;
  // handler(index, resume): performs the arrival's work (reduce, forward) and
  // calls resume() when the poller may advance to the next flag.
  std::function<void(int, std::function<void()>)> on_arrival;

  int next = 0;            // Next expected flag, relative to |flag_base|.
  int64_t backoff_ns = 0;  // Current idle retry interval (0 = fresh).
};

}  // namespace collective
}  // namespace rdmadl

#endif  // RDMADL_SRC_COLLECTIVE_INTERNAL_H_
