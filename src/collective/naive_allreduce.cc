// Naive gather-to-root all-reduce: the star-shaped pattern a parameter
// server induces, kept as an ablation baseline against the ring. Every
// non-root rank writes its full vector into a per-peer parking slot at rank
// 0; the root reduces the arrivals serially on one core, then writes the
// result back into every peer's data buffer. The root's ingress link and
// reduce core are the bottleneck — 2(N-1) full-vector transfers cross them,
// versus the ring's 2(N-1)/N per link.
#include <algorithm>
#include <memory>
#include <utility>

#include "src/collective/internal.h"
#include "src/sim/trace.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace collective {

void CollectiveGroup::StartNaiveGather(const std::shared_ptr<Op>& op) {
  const int n = size();
  CHECK_GT(n, 1);
  const uint64_t bytes = op->count * sizeof(float);
  // One unit per gather arrival at the root plus one per peer's result
  // arrival.
  op->pending_units = 2 * (n - 1);
  op->root_cpu_free_ns = simulator()->Now();

  // Peers push their full vector into their parking slot at the root.
  for (int k = 1; k < n; ++k) {
    Rank* peer = ranks_[k].get();
    const Rank::PeerAddrs& root_addrs = peer->peers[0];
    const uint64_t park =
        naive_slot_offset_ + static_cast<uint64_t>(k - 1) * max_elements_ * sizeof(float);
    PostChunk(op, k, /*dst_rank=*/0, /*qp_lane=*/k - 1, peer->data_addr, peer->data_lkey,
              root_addrs.slots.addr + park, root_addrs.slots.rkey, bytes, /*flag_index=*/k - 1);
  }

  // The root watches one flag per peer; arrivals reduce serially on the
  // root's reduce core (whoever lands first goes first, later arrivals queue
  // behind it).
  for (int k = 1; k < n; ++k) {
    StartWaiter(op, /*rank=*/0, /*flag_base=*/k - 1, /*num_flags=*/1,
                [this, op, k, n, bytes](int, std::function<void()> resume) {
                  const int64_t begin =
                      std::max(simulator()->Now(), op->root_cpu_free_ns);
                  const int64_t end = begin + ReduceNs(bytes);
                  op->root_cpu_free_ns = end;
                  simulator()->ScheduleAt(end, [this, op, k, n, bytes, begin,
                                                resume = std::move(resume)] {
                    if (op->finished) return;
                    Rank* root = ranks_[0].get();
                    if (root->data_region.valid() && op->count > 0) {
                      const uint64_t park =
                          naive_slot_offset_ +
                          static_cast<uint64_t>(k - 1) * max_elements_ * sizeof(float);
                      const float* src =
                          reinterpret_cast<const float*>(root->slot_ptr() + park);
                      float* dst = root->data_ptr();
                      for (uint64_t i = 0; i < op->count; ++i) dst[i] += src[i];
                    }
                    sim::TraceSpan(RankTrack(0), StrCat("reduce r", k), begin,
                                   simulator()->Now());
                    if (++op->naive_reduced == n - 1) {
                      // Result is final: scatter it back to every peer.
                      for (int j = 1; j < n; ++j) {
                        const Rank::PeerAddrs& peer = root->peers[j];
                        PostChunk(op, /*src_rank=*/0, j, /*qp_lane=*/j - 1, root->data_addr,
                                  root->data_lkey, peer.data.addr, peer.data.rkey, bytes,
                                  /*flag_index=*/0);
                      }
                    }
                    resume();
                  });
                });
  }

  // Each peer waits for the result write (flag 0 in its own block).
  for (int k = 1; k < n; ++k) {
    StartWaiter(op, k, /*flag_base=*/0, /*num_flags=*/1,
                [](int, std::function<void()> resume) { resume(); });
  }
}

}  // namespace collective
}  // namespace rdmadl
