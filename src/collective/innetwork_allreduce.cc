// In-network (switch-offloaded) all-reduce (ISSUE 7).
//
// NetReduce-style: every member streams its lane slice up to its ToR in
// aggregation windows sized to the switch engine's SRAM
// (TopologyConfig::switch_reduce_window_bytes); the ToR engine folds the
// rack's streams, the spine engine folds the R rack partials, and the final
// window fans back out down every downlink. The fabric-level stage
// (net::SwitchReduceStage) models all the wire and engine timing; this file
// owns the schedule, the arithmetic (the "switch SRAM" shadow lives in
// Op::innet_buf), and the flag/waiter plumbing.
//
// Per lane, windows are issued strictly one after another (round w+1 is
// issued from round w's completion): the switch engine holds exactly one
// window of state per lane, so a second in-flight window would overwrite it.
// Lanes run concurrently — the engine free-time serialization inside the
// stage is what actually paces them.
//
// The switch-reduce domain is lossless and credit-based, so there is no
// payload-then-flag wire contract to keep: delivery *is* the flag. Each rank
// polls one flag per (lane, window), set locally by the stage's delivery
// callback (check::OnFlagSetLocally keeps the protocol checker's shadow in
// step). Fail-stop crashes still apply: the stage fails the whole window
// when a contributor is dead, and that status (naming the failed host)
// fails the op.
#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "src/check/rdma_check.h"
#include "src/collective/internal.h"
#include "src/net/fabric.h"
#include "src/net/switch_reduce.h"
#include "src/sim/trace.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace collective {

namespace {

uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

void Partition(uint64_t count, int parts, std::vector<uint64_t>* offsets,
               std::vector<uint64_t>* counts) {
  offsets->resize(parts);
  counts->resize(parts);
  const uint64_t base = count / parts;
  const uint64_t rem = count % parts;
  uint64_t off = 0;
  for (int i = 0; i < parts; ++i) {
    const uint64_t len = base + (static_cast<uint64_t>(i) < rem ? 1 : 0);
    (*offsets)[i] = off;
    (*counts)[i] = len;
    off += len;
  }
}

}  // namespace

void CollectiveGroup::StartInNetwork(const std::shared_ptr<Op>& op) {
  const int n = size();
  CHECK_GT(n, 1);
  const int lanes = options_.pipeline_depth;
  Partition(op->count, lanes, &op->lane_offset, &op->lane_count);

  int active_lanes = 0;
  for (int l = 0; l < lanes; ++l) {
    if (op->lane_count[l] > 0) active_lanes++;
  }
  // One unit per (rank, lane): the per-rank poller over that lane's windows.
  op->pending_units = active_lanes * n;
  if (op->pending_units == 0) {
    Finish(op);
    return;
  }

  const int R = static_cast<int>(racks_.size());
  const uint64_t W = innet_window_elements_;
  if (options_.materialize) {
    // [lane][rack partial 0..R-1, global R][window] floats.
    op->innet_buf.assign(static_cast<size_t>(lanes) * (R + 1) * W, 0.0f);
  }

  for (int l = 0; l < lanes; ++l) {
    const uint64_t lane_cnt = op->lane_count[l];
    if (lane_cnt == 0) continue;
    const int rounds = static_cast<int>(CeilDiv(lane_cnt, W));
    const int fb = l * innet_rounds_cap_;
    for (int r = 0; r < n; ++r) {
      for (int w = 0; w < rounds; ++w) DeclareFlag(op, r, fb + w, "innet");
      // The poller does no work per window; delivery already wrote the final
      // values in place. It exists so completion is observed rank-side, in
      // flag order, exactly like every other schedule.
      StartWaiter(op, r, fb, rounds,
                  [](int, std::function<void()> resume) { resume(); });
    }
    IssueInNetworkRound(op, l, 0);
  }
}

void CollectiveGroup::IssueInNetworkRound(const std::shared_ptr<Op>& op, int lane, int round) {
  if (op->finished) return;
  if (!CheckDeadline(op, "in-network round issue")) return;
  net::SwitchReduceStage* stage = directory_->rdma_fabric()->fabric()->switch_reduce();
  CHECK(stage != nullptr);

  const int n = size();
  const int R = static_cast<int>(racks_.size());
  const uint64_t W = innet_window_elements_;
  const uint64_t lane_off = op->lane_offset[lane];
  const uint64_t lane_cnt = op->lane_count[lane];
  const uint64_t start = static_cast<uint64_t>(round) * W;
  const uint64_t cnt = std::min(W, lane_cnt - start);
  const uint64_t bytes = cnt * sizeof(float);
  const int rounds = static_cast<int>(CeilDiv(lane_cnt, W));
  const int flag_index = lane * innet_rounds_cap_ + round;
  const bool mat = options_.materialize;

  auto hosts_vec = std::make_shared<std::vector<int>>(hosts());
  stats_.bytes_sent += bytes * n;  // Every member streams its window uplink.

  float* buf = mat ? op->innet_buf.data() + static_cast<size_t>(lane) * (R + 1) * W : nullptr;
  auto phase_start = std::make_shared<int64_t>(simulator()->Now());

  stage->AllReduceChunk(
      *hosts_vec, bytes,
      /*rack_partial=*/
      [this, op, buf, lane_off, start, cnt, W](int rack_ordinal) {
        // ToR engine finished folding this rack's streams: materialize the
        // partial into the switch-SRAM shadow. The stage's rack ordinals are
        // rack-id ascending over the member list, which is exactly racks_.
        if (op->finished || buf == nullptr) return;
        float* partial = buf + static_cast<size_t>(rack_ordinal) * W;
        std::fill(partial, partial + cnt, 0.0f);
        for (int member : racks_[rack_ordinal]) {
          const float* src = ranks_[member]->data_ptr() + lane_off + start;
          for (uint64_t i = 0; i < cnt; ++i) partial[i] += src[i];
        }
      },
      /*aggregated=*/
      [op, buf, cnt, W, R] {
        // Spine engine folded the R partials into the global window.
        if (op->finished || buf == nullptr) return;
        float* global = buf + static_cast<size_t>(R) * W;
        std::fill(global, global + cnt, 0.0f);
        for (int rk = 0; rk < R; ++rk) {
          const float* partial = buf + static_cast<size_t>(rk) * W;
          for (uint64_t i = 0; i < cnt; ++i) global[i] += partial[i];
        }
      },
      /*deliver=*/
      [this, op, buf, lane_off, start, cnt, W, R, flag_index](int host) {
        if (op->finished) return;
        const int r = host_to_rank_[host];
        Rank* rank = ranks_[r].get();
        if (buf != nullptr && rank->data_region.valid()) {
          std::memcpy(rank->data_ptr() + lane_off + start,
                      buf + static_cast<size_t>(R) * W, cnt * sizeof(float));
        }
        rank->flags()[flag_index] = 1;
        check::OnFlagSetLocally(rank->endpoint.host_id, rank->flags() + flag_index,
                                simulator()->Now());
      },
      /*complete=*/
      [this, op, lane, round, rounds, lane_cnt, cnt, phase_start](Status status) {
        if (op->finished) return;
        if (!status.ok()) {
          Fail(op, status);
          return;
        }
        sim::TraceSpan(StrCat(options_.trace_prefix, " switch"),
                       StrCat("innet l", lane, " w", round, " ", cnt, "e"), *phase_start,
                       simulator()->Now());
        if (round + 1 < rounds) IssueInNetworkRound(op, lane, round + 1);
      });
}

}  // namespace collective
}  // namespace rdmadl
