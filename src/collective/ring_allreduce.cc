// Ring reduce-scatter / all-gather / fused all-reduce.
//
// The ring is the rank order 0..N-1 (rank r sends only to (r+1) % N). Each
// pipeline lane runs the schedule independently over its own slice of the
// vector; a lane's all-gather begins the moment its reduce-scatter finishes,
// so later lanes' reduce traffic overlaps earlier lanes' gather traffic.
//
// With shift parameter d (0 for the fused all-reduce, N-1 for standalone
// ops, so that standalone reduce-scatter leaves rank r owning chunk r):
//
//   reduce-scatter step s:  rank r sends lane-chunk (r - s + d) mod N into
//     its successor's per-step slot (lane, s); on the arrival of step s it
//     reduces slot (lane, s) into lane-chunk (r - s - 1 + d) mod N. After
//     N-1 steps rank r owns lane-chunk (r + 1 + d) mod N.
//   all-gather step t: rank r sends lane-chunk (owner - t) mod N, where
//     owner = (r + 1 + d) mod N, directly into its successor's data buffer
//     at the chunk's final offset — no landing slot and no receiver copy;
//     on arrival t it may immediately forward that chunk (step t+1).
//
// Per-step slots make the schedule self-throttling-free: a sender running
// ahead can never overwrite a slot its successor has not consumed, and the
// all-gather's in-place writes cannot race the receiver's reads because the
// write that lands chunk c is causally downstream of every read of c (the
// dependency chain runs once around the ring).
#include <algorithm>
#include <memory>
#include <utility>

#include "src/collective/internal.h"
#include "src/sim/trace.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace collective {

namespace {

// Near-equal partition of |count| elements into |parts|: piece i gets
// count/parts elements plus one of the first count%parts remainders.
void Partition(uint64_t count, int parts, std::vector<uint64_t>* offsets,
               std::vector<uint64_t>* counts) {
  offsets->resize(parts);
  counts->resize(parts);
  const uint64_t base = count / parts;
  const uint64_t rem = count % parts;
  uint64_t off = 0;
  for (int i = 0; i < parts; ++i) {
    const uint64_t len = base + (static_cast<uint64_t>(i) < rem ? 1 : 0);
    (*offsets)[i] = off;
    (*counts)[i] = len;
    off += len;
  }
}

struct ChunkRange {
  uint64_t offset = 0;  // Elements, relative to the lane start.
  uint64_t count = 0;   // Elements.
};

ChunkRange LaneChunk(uint64_t lane_count, int n, int c) {
  const uint64_t base = lane_count / n;
  const uint64_t rem = lane_count % n;
  const uint64_t idx = static_cast<uint64_t>(c);
  return ChunkRange{idx * base + std::min<uint64_t>(idx, rem),
                    base + (idx < rem ? 1 : 0)};
}

}  // namespace

void CollectiveGroup::StartRing(const std::shared_ptr<Op>& op, bool do_reduce_scatter,
                                bool do_all_gather) {
  const int n = size();
  CHECK_GT(n, 1);
  // Standalone ops run single-lane so their chunk c is the public N-way
  // partition (Chunk()); the fused all-reduce pipelines across lanes.
  const bool fused = do_reduce_scatter && do_all_gather;
  const int lanes = fused ? options_.pipeline_depth : 1;
  Partition(op->count, lanes, &op->lane_offset, &op->lane_count);

  const int steps_rs = do_reduce_scatter ? n - 1 : 0;
  const int steps_ag = do_all_gather ? n - 1 : 0;
  const int total_steps = steps_rs + steps_ag;
  const int delta = fused ? 0 : n - 1;

  int active_lanes = 0;
  for (int l = 0; l < lanes; ++l) {
    if (op->lane_count[l] > 0) active_lanes++;
  }
  op->pending_units = active_lanes * n;
  if (op->pending_units == 0) {
    Finish(op);
    return;
  }

  for (int r = 0; r < n; ++r) {
    for (int l = 0; l < lanes; ++l) {
      const uint64_t lane_off = op->lane_offset[l];
      const uint64_t lane_cnt = op->lane_count[l];
      if (lane_cnt == 0) continue;
      const int succ = (r + 1) % n;
      const int flag_base = l * total_steps;
      const int owner = (r + 1 + delta) % n;

      auto post_rs = [this, op, r, l, succ, lane_off, lane_cnt, delta, n, flag_base](int s) {
        const int send_chunk = ((r - s + delta) % n + n) % n;
        const ChunkRange chunk = LaneChunk(lane_cnt, n, send_chunk);
        Rank* self = ranks_[r].get();
        const Rank::PeerAddrs& peer = self->peers[succ];
        const uint64_t slot_off =
            (static_cast<uint64_t>(l) * (n - 1) + s) * chunk_cap_elements_ * sizeof(float);
        PostChunk(op, r, succ, l, self->data_addr + (lane_off + chunk.offset) * sizeof(float),
                  self->data_lkey, peer.slots.addr + slot_off, peer.slots.rkey,
                  chunk.count * sizeof(float), flag_base + s);
      };

      auto post_ag = [this, op, r, l, succ, lane_off, lane_cnt, owner, n, flag_base,
                      steps_rs](int t) {
        const int send_chunk = ((owner - t) % n + n) % n;
        const ChunkRange chunk = LaneChunk(lane_cnt, n, send_chunk);
        Rank* self = ranks_[r].get();
        const Rank::PeerAddrs& peer = self->peers[succ];
        const uint64_t byte_off = (lane_off + chunk.offset) * sizeof(float);
        PostChunk(op, r, succ, l, self->data_addr + byte_off, self->data_lkey,
                  peer.data.addr + byte_off, peer.data.rkey, chunk.count * sizeof(float),
                  flag_base + steps_rs + t);
      };

      if (steps_rs > 0) {
        post_rs(0);
      } else {
        post_ag(0);
      }

      auto phase_start = std::make_shared<int64_t>(simulator()->Now());
      auto on_arrival = [this, op, r, l, lane_off, lane_cnt, delta, n, steps_rs, steps_ag,
                         post_rs, post_ag,
                         phase_start](int index, std::function<void()> resume) {
        if (index < steps_rs) {
          // Reduce-scatter arrival s: fold slot (l, s) into the chunk it
          // carries, then (causally after the reduce) send the next step.
          const int s = index;
          const int recv_chunk = ((r - s - 1 + delta) % n + n) % n;
          const ChunkRange chunk = LaneChunk(lane_cnt, n, recv_chunk);
          const uint64_t bytes = chunk.count * sizeof(float);
          simulator()->ScheduleAfter(
              ReduceNs(bytes),
              [this, op, r, l, s, chunk, lane_off, lane_cnt, n, steps_rs, steps_ag, post_rs,
               post_ag, phase_start, resume = std::move(resume)] {
                if (op->finished) return;
                Rank* self = ranks_[r].get();
                if (self->data_region.valid() && chunk.count > 0) {
                  const uint64_t slot_off =
                      (static_cast<uint64_t>(l) * (n - 1) + s) * chunk_cap_elements_ *
                      sizeof(float);
                  const float* src =
                      reinterpret_cast<const float*>(self->slot_ptr() + slot_off);
                  float* dst = self->data_ptr() + lane_off + chunk.offset;
                  for (uint64_t i = 0; i < chunk.count; ++i) dst[i] += src[i];
                }
                if (s + 1 < steps_rs) {
                  post_rs(s + 1);
                } else {
                  sim::TraceSpan(RankTrack(r), StrCat("rs l", l, " ", lane_cnt, "e"),
                                 *phase_start, simulator()->Now());
                  *phase_start = simulator()->Now();
                  if (steps_ag > 0) post_ag(0);
                }
                resume();
              });
          return;
        }
        // All-gather arrival t: the chunk already sits at its final offset;
        // forward it unless this was the last step.
        const int t = index - steps_rs;
        if (t + 1 < steps_ag) {
          post_ag(t + 1);
        } else {
          sim::TraceSpan(RankTrack(r), StrCat("ag l", l, " ", lane_cnt, "e"), *phase_start,
                         simulator()->Now());
        }
        resume();
      };

      StartWaiter(op, r, flag_base, total_steps, std::move(on_arrival));
    }
  }
}

}  // namespace collective
}  // namespace rdmadl
