// CollectiveGroup core: resource setup (buffers, registration, address
// distribution), op lifecycle, the chunk-post primitive for both transports,
// and the flag pollers. The algorithm schedules live in ring_allreduce.cc,
// naive_allreduce.cc and broadcast.cc.
#include <algorithm>
#include <cstring>
#include <set>
#include <unordered_set>
#include <utility>

#include "src/check/mutation.h"
#include "src/check/rdma_check.h"
#include "src/collective/internal.h"
#include "src/net/fabric.h"
#include "src/net/switch_reduce.h"
#include "src/net/topology.h"
#include "src/sim/trace.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace collective {

namespace {

uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

int64_t CostNs(uint64_t bytes, double bytes_per_sec) {
  return static_cast<int64_t>(static_cast<double>(bytes) / bytes_per_sec * 1e9);
}

// Virtual-mode address windows: each rank reserves a 1 TB window far above
// the host runtime's windows (which sit at (index + 2) << 40); the data
// buffer lives at the window base and the slot area 512 GB above it. The
// addresses are registered with the NIC but never dereferenced.
constexpr uint64_t kVirtualBase = 1ull << 56;
constexpr uint64_t kVirtualWindowBytes = 1ull << 40;
constexpr uint64_t kVirtualSlotOffset = 1ull << 39;
uint64_t next_virtual_window = 0;

// kAuto picks the in-network schedule only when the whole tensor fits a
// modest multiple of the switch aggregation window: the serialized
// window-rounds through one spine engine beat host rings on latency for
// small tensors but lose to the hierarchical schedule's pipelined
// bandwidth once tensors grow.
constexpr uint64_t kAutoInNetworkMaxBytes = 8ull << 20;

}  // namespace

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kRing:
      return "ring";
    case Algorithm::kNaiveGather:
      return "naive-gather";
    case Algorithm::kHierarchical:
      return "hierarchical";
    case Algorithm::kInNetwork:
      return "in-network";
    case Algorithm::kAuto:
      return "auto";
  }
  return "unknown";
}

const char* TransportName(Transport transport) {
  switch (transport) {
    case Transport::kRdmaZeroCopy:
      return "rdma-zerocopy";
    case Transport::kTcpStaging:
      return "tcp-staging";
  }
  return "unknown";
}

CollectiveGroup::CollectiveGroup(device::DeviceDirectory* directory, uint64_t max_elements,
                                 CollectiveOptions options)
    : directory_(directory), max_elements_(max_elements), options_(std::move(options)) {}

CollectiveGroup::~CollectiveGroup() = default;

StatusOr<std::unique_ptr<CollectiveGroup>> CollectiveGroup::Create(
    device::DeviceDirectory* directory, const std::vector<int>& hosts, uint64_t max_elements,
    CollectiveOptions options) {
  if (hosts.empty()) {
    return InvalidArgument("collective group needs at least one host");
  }
  if (max_elements == 0) {
    return InvalidArgument("collective group max_elements must be positive");
  }
  const int num_hosts = directory->rdma_fabric()->fabric()->num_hosts();
  std::unordered_set<int> seen;
  for (int host : hosts) {
    if (host < 0 || host >= num_hosts) {
      return InvalidArgument(StrCat("host ", host, " outside fabric of ", num_hosts));
    }
    if (!seen.insert(host).second) {
      return InvalidArgument(StrCat("host ", host, " listed twice in collective group"));
    }
  }
  options.pipeline_depth = std::clamp(options.pipeline_depth, 1, 64);
  options.broadcast_segments = std::clamp(options.broadcast_segments, 1, 256);
  options.num_cqs = std::clamp(options.num_cqs, 1, 16);

  std::unique_ptr<CollectiveGroup> group(
      new CollectiveGroup(directory, max_elements, std::move(options)));
  RDMADL_RETURN_IF_ERROR(group->Init(hosts));
  return group;
}

void CollectiveGroup::BuildRacks(const std::vector<int>& hosts) {
  const int n = static_cast<int>(hosts.size());
  net::Topology* topo = directory_->rdma_fabric()->fabric()->topology();
  racks_.clear();
  rank_rack_.assign(n, 0);
  rank_pos_.assign(n, 0);
  // Group by rack id ascending, members in rank order; the first member of a
  // rack is its leader (so after Reconfigure drops dead ranks, the first
  // survivor is the leader automatically — re-election is positional).
  std::vector<int> rack_ids;
  for (int r = 0; r < n; ++r) {
    const int rid = topo != nullptr ? topo->rack_of(hosts[r]) : 0;
    auto it = std::lower_bound(rack_ids.begin(), rack_ids.end(), rid);
    const size_t pos = static_cast<size_t>(it - rack_ids.begin());
    if (it == rack_ids.end() || *it != rid) {
      rack_ids.insert(it, rid);
      racks_.insert(racks_.begin() + static_cast<long>(pos), std::vector<int>());
      // Earlier inserts shift later rack ordinals; recompute below.
    }
    racks_[pos].push_back(r);
  }
  for (int rk = 0; rk < static_cast<int>(racks_.size()); ++rk) {
    for (int p = 0; p < static_cast<int>(racks_[rk].size()); ++p) {
      rank_rack_[racks_[rk][p]] = rk;
      rank_pos_[racks_[rk][p]] = p;
    }
  }
}

void CollectiveGroup::ComputeLayout(int n) {
  const int lanes = options_.pipeline_depth;

  // Ring slot capacity is sized for the single-lane case (standalone
  // reduce-scatter / all-gather run unpipelined so chunk c matches the public
  // N-way partition); fused all-reduce lanes use strictly smaller chunks.
  chunk_cap_elements_ = CeilDiv(max_elements_, static_cast<uint64_t>(n));
  ring_slot_bytes_ = static_cast<uint64_t>(lanes) * (n > 1 ? n - 1 : 0) * chunk_cap_elements_ *
                     sizeof(float);
  naive_slot_offset_ = ring_slot_bytes_;

  // Hierarchical slot areas live after the ring slots (exclusive with the
  // naive root parking — the algorithms cannot coexist in one group): one
  // full-lane tree slot per (lane, round) and one leader-ring slot per
  // (lane, step). Every rank gets the same layout; non-leaders simply never
  // see their ring slots written.
  tree_rounds_ = 0;
  lane_cap_elements_ = 0;
  hier_extra_slot_bytes_ = 0;
  hier_tree_slot_offset_ = 0;
  hier_ring_slot_offset_ = 0;
  hier_ring_cap_elements_ = 0;
  hier_flags_per_lane_ = 0;
  int hier_flags = 0;
  if (options_.algorithm == Algorithm::kHierarchical) {
    int max_rack = 1;
    for (const auto& members : racks_) {
      max_rack = std::max(max_rack, static_cast<int>(members.size()));
    }
    while ((1 << tree_rounds_) < max_rack) ++tree_rounds_;
    const int num_racks = std::max(1, static_cast<int>(racks_.size()));
    lane_cap_elements_ = CeilDiv(max_elements_, static_cast<uint64_t>(lanes));
    hier_ring_cap_elements_ = CeilDiv(lane_cap_elements_, static_cast<uint64_t>(num_racks));
    hier_tree_slot_offset_ = ring_slot_bytes_;
    const uint64_t tree_bytes = static_cast<uint64_t>(lanes) * tree_rounds_ *
                                lane_cap_elements_ * sizeof(float);
    hier_ring_slot_offset_ = hier_tree_slot_offset_ + tree_bytes;
    const uint64_t ring_bytes = static_cast<uint64_t>(lanes) *
                                (num_racks > 1 ? num_racks - 1 : 0) *
                                hier_ring_cap_elements_ * sizeof(float);
    hier_extra_slot_bytes_ = tree_bytes + ring_bytes;
    hier_flags_per_lane_ = tree_rounds_ + 2 * (num_racks > 1 ? num_racks - 1 : 0) + 1;
    hier_flags = lanes * hier_flags_per_lane_;
  }

  // In-network rounds: one flag per (lane, aggregation window).
  innet_window_elements_ = 0;
  innet_rounds_cap_ = 0;
  int innet_flags = 0;
  if (options_.algorithm == Algorithm::kInNetwork) {
    net::Topology* topo = directory_->rdma_fabric()->fabric()->topology();
    CHECK(topo != nullptr);
    lane_cap_elements_ = CeilDiv(max_elements_, static_cast<uint64_t>(lanes));
    innet_window_elements_ =
        std::max<uint64_t>(1, topo->config().switch_reduce_window_bytes / sizeof(float));
    innet_rounds_cap_ =
        static_cast<int>(CeilDiv(lane_cap_elements_, innet_window_elements_));
    innet_flags = lanes * innet_rounds_cap_;
  }

  // One flag byte per expected arrival of the busiest op shape, rounded up so
  // the block and its trailing constant source byte share one registration.
  const int ring_flags = lanes * (n > 1 ? 2 * (n - 1) : 1);
  flag_capacity_ =
      std::max({ring_flags, n, options_.broadcast_segments, 1, hier_flags, innet_flags});
  flag_capacity_ = static_cast<int>(CeilDiv(flag_capacity_, 64) * 64);
}

void CollectiveGroup::InstallLaneLimitResolver() {
  if (options_.algorithm != Algorithm::kHierarchical &&
      options_.algorithm != Algorithm::kInNetwork) {
    return;
  }
  net::Topology* topo = directory_->rdma_fabric()->fabric()->topology();
  if (topo == nullptr) return;
  for (const auto& rank : ranks_) {
    const int my_rack = topo->rack_of(rank->endpoint.host_id);
    rank->engine->set_lane_limit_resolver([topo, my_rack](const Endpoint& remote) {
      // Cross-rack stripes all funnel through the same oversubscribed rack
      // uplink: fanning them across QP lanes buys no bandwidth and only
      // multiplies WQE-engine work, so cap to a single lane. Intra-rack
      // writes keep the full stripe fan-out.
      return topo->rack_of(remote.host_id) == my_rack ? 0 : 1;
    });
  }
}

Status CollectiveGroup::Init(const std::vector<int>& hosts) {
  const int n = static_cast<int>(hosts.size());
  const uint64_t data_bytes = max_elements_ * sizeof(float);

  BuildRacks(hosts);
  net::Fabric* fabric = directory_->rdma_fabric()->fabric();
  if (options_.algorithm == Algorithm::kAuto) {
    if (racks_.size() < 2) {
      options_.algorithm = Algorithm::kRing;
    } else if (fabric->switch_reduce() != nullptr && data_bytes <= kAutoInNetworkMaxBytes) {
      options_.algorithm = Algorithm::kInNetwork;
    } else {
      options_.algorithm = Algorithm::kHierarchical;
    }
  }
  if (options_.algorithm == Algorithm::kInNetwork && fabric->switch_reduce() == nullptr) {
    return InvalidArgument(
        "in-network collective requires a hierarchical topology with switch_reduce");
  }
  ComputeLayout(n);

  const int num_qps = std::clamp(options_.pipeline_depth, 1, 4);
  for (int i = 0; i < n; ++i) {
    auto rank = std::make_unique<Rank>();
    rank->index = i;
    rank->endpoint = Endpoint{hosts[i], options_.port};
    RDMADL_ASSIGN_OR_RETURN(
        rank->device,
        device::RdmaDevice::Create(directory_, options_.num_cqs, num_qps, rank->endpoint));
    comm::TransferEngineOptions engine_options = options_.engine;
    engine_options.enable_coalescing = false;  // Ring flags are per-slot.
    rank->engine = std::make_unique<comm::TransferEngine>(rank->device.get(), engine_options);

    // Flags are always real: the poller reads actual bytes (§3.2), even when
    // the payload buffers are virtual.
    RDMADL_ASSIGN_OR_RETURN(rank->flag_region,
                            rank->device->AllocateMemRegion(flag_capacity_ + 1));
    std::memset(rank->flag_region.data(), 0, flag_capacity_ + 1);
    rank->flag_region.data()[flag_capacity_] = 1;  // Constant flag source.

    uint64_t slot_bytes = ring_slot_bytes_ + hier_extra_slot_bytes_;
    if (options_.algorithm == Algorithm::kNaiveGather && i == 0 && n > 1) {
      slot_bytes += static_cast<uint64_t>(n - 1) * data_bytes;  // Gather parking.
    }
    rank->slot_bytes = slot_bytes;

    uint32_t data_rkey = 0;
    uint32_t slot_rkey = 0;
    if (options_.materialize) {
      RDMADL_ASSIGN_OR_RETURN(rank->data_region, rank->device->AllocateMemRegion(data_bytes));
      rank->data_addr = reinterpret_cast<uint64_t>(rank->data_region.data());
      rank->data_lkey = rank->data_region.lkey();
      data_rkey = rank->data_region.rkey();
      if (slot_bytes > 0) {
        RDMADL_ASSIGN_OR_RETURN(rank->slot_region, rank->device->AllocateMemRegion(slot_bytes));
        rank->slot_addr = reinterpret_cast<uint64_t>(rank->slot_region.data());
        rank->slot_lkey = rank->slot_region.lkey();
        slot_rkey = rank->slot_region.rkey();
      }
    } else {
      const uint64_t window = kVirtualBase + (next_virtual_window++) * kVirtualWindowBytes;
      rank->data_addr = window;
      RDMADL_ASSIGN_OR_RETURN(
          rdma::MemoryRegion data_mr,
          rank->device->nic()->RegisterMemory(reinterpret_cast<void*>(window), data_bytes));
      rank->data_lkey = data_mr.lkey;
      data_rkey = data_mr.rkey;
      rank->virtual_mrs.push_back(data_mr);
      if (slot_bytes > 0) {
        rank->slot_addr = window + kVirtualSlotOffset;
        RDMADL_ASSIGN_OR_RETURN(rdma::MemoryRegion slot_mr,
                                rank->device->nic()->RegisterMemory(
                                    reinterpret_cast<void*>(rank->slot_addr), slot_bytes));
        rank->slot_lkey = slot_mr.lkey;
        slot_rkey = slot_mr.rkey;
        rank->virtual_mrs.push_back(slot_mr);
      }
    }

    rank->peers.resize(n);
    rank->peers[i].data = device::RemoteRegion{rank->data_addr, data_rkey, data_bytes};
    rank->peers[i].slots = device::RemoteRegion{rank->slot_addr, slot_rkey, slot_bytes};
    rank->peers[i].flags = rank->flag_region.Remote();

    // Address distribution (§3.1): peers fetch the three descriptors over the
    // device library's vanilla RPC before the first collective.
    Rank* self = rank.get();
    rank->device->RegisterRpcHandler(
        "collective/addrs", [self, i](const std::vector<uint8_t>&) {
          std::vector<uint8_t> out;
          self->peers[i].data.EncodeTo(&out);
          self->peers[i].slots.EncodeTo(&out);
          self->peers[i].flags.EncodeTo(&out);
          return out;
        });

    ranks_.push_back(std::move(rank));
  }

  host_to_rank_.assign(fabric->num_hosts(), -1);
  for (int i = 0; i < n; ++i) host_to_rank_[hosts[i]] = i;
  InstallLaneLimitResolver();

  rank_tracks_.resize(n);
  return OkStatus();
}

sim::Simulator* CollectiveGroup::simulator() const {
  return directory_->rdma_fabric()->fabric()->simulator();
}

const net::CostModel& CollectiveGroup::cost() const {
  return directory_->rdma_fabric()->fabric()->cost();
}

float* CollectiveGroup::data(int rank) const {
  CHECK_GE(rank, 0);
  CHECK_LT(rank, size());
  return ranks_[rank]->data_ptr();
}

std::pair<uint64_t, uint64_t> CollectiveGroup::Chunk(uint64_t count, int c) const {
  const uint64_t n = size();
  const uint64_t base = count / n;
  const uint64_t rem = count % n;
  const uint64_t idx = static_cast<uint64_t>(c);
  const uint64_t length = base + (idx < rem ? 1 : 0);
  const uint64_t offset = idx * base + std::min<uint64_t>(idx, rem);
  return {offset, length};
}

int64_t CollectiveGroup::ReduceNs(uint64_t bytes) const {
  return CostNs(bytes, cost().reduce_bytes_per_sec);
}

const std::string& CollectiveGroup::RankTrack(int rank) const {
  std::string& track = rank_tracks_[rank];
  if (track.empty()) {
    track = StrCat("host", ranks_[rank]->endpoint.host_id, " ", options_.trace_prefix, "[", rank,
                   "]");
  }
  return track;
}

// ---------------------------------------------------------------------------
// Op lifecycle.

void CollectiveGroup::AllReduce(uint64_t count, DoneCallback done) {
  auto op = std::make_shared<Op>();
  op->kind = Op::Kind::kAllReduce;
  op->count = count;
  op->done = std::move(done);
  Begin(op, [this, op] {
    switch (options_.algorithm) {
      case Algorithm::kNaiveGather:
        StartNaiveGather(op);
        break;
      case Algorithm::kHierarchical:
        StartHierarchical(op);
        break;
      case Algorithm::kInNetwork:
        StartInNetwork(op);
        break;
      default:
        StartRing(op, /*do_reduce_scatter=*/true, /*do_all_gather=*/true);
        break;
    }
  });
}

void CollectiveGroup::ReduceScatter(uint64_t count, DoneCallback done) {
  auto op = std::make_shared<Op>();
  op->kind = Op::Kind::kReduceScatter;
  op->count = count;
  op->done = std::move(done);
  Begin(op, [this, op] { StartRing(op, /*do_reduce_scatter=*/true, /*do_all_gather=*/false); });
}

void CollectiveGroup::AllGather(uint64_t count, DoneCallback done) {
  auto op = std::make_shared<Op>();
  op->kind = Op::Kind::kAllGather;
  op->count = count;
  op->done = std::move(done);
  Begin(op, [this, op] { StartRing(op, /*do_reduce_scatter=*/false, /*do_all_gather=*/true); });
}

void CollectiveGroup::Broadcast(int root, uint64_t count, DoneCallback done) {
  auto op = std::make_shared<Op>();
  op->kind = Op::Kind::kBroadcast;
  op->count = count;
  op->root = root;
  op->done = std::move(done);
  if (root < 0 || root >= size()) {
    simulator()->ScheduleAfter(0, [op, root] {
      if (op->done) op->done(InvalidArgument(StrCat("broadcast root ", root, " out of range")));
    });
    return;
  }
  Begin(op, [this, op] { StartBroadcast(op); });
}

void CollectiveGroup::Begin(std::shared_ptr<Op> op, std::function<void()> start) {
  sim::Simulator* sim = simulator();
  if (op->count > max_elements_) {
    sim->ScheduleAfter(0, [op] {
      if (op->done) {
        op->done(InvalidArgument(StrCat("collective of ", op->count,
                                        " elements exceeds group capacity")));
      }
    });
    return;
  }
  if (op_) {
    sim->ScheduleAfter(0, [op] {
      if (op->done) op->done(FailedPrecondition("another collective is already in flight"));
    });
    return;
  }
  op_ = op;
  // Flags are single-use per op: each expected arrival has its own byte,
  // written exactly once, so reset is the only bulk flag write and happens
  // strictly before any chunk is posted.
  for (const auto& rank : ranks_) {
    std::memset(rank->flags(), 0, flag_capacity_);
  }
  if (options_.op_timeout_ns > 0) {
    op->deadline_ns = sim->Now() + options_.op_timeout_ns;
    sim->ScheduleAfter(options_.op_timeout_ns, [this, op] {
      if (op->finished) return;
      Fail(op, DeadlineExceeded(StrCat("collective did not complete within ",
                                       options_.op_timeout_ns, "ns")));
    });
  }
  if (op->count == 0 || size() == 1) {
    sim->ScheduleAfter(0, [this, op, sim] {
      op->start_ns = sim->Now();
      Finish(op);
    });
    return;
  }
  auto begin = [this, op, sim, start = std::move(start)] {
    if (op->finished) return;
    op->start_ns = sim->Now();
    start();
  };
  if (!exchanged_) {
    ExchangeAddresses(std::move(begin));
  } else {
    sim->ScheduleAfter(0, std::move(begin));
  }
}

std::vector<std::pair<int, int>> CollectiveGroup::RequiredAddressPairs() const {
  const int n = size();
  std::vector<std::pair<int, int>> pairs;
  if (n <= 1) return pairs;
  // Deduplicated, deterministically ordered: hierarchical tree edges can
  // coincide with ring-successor edges.
  std::set<std::pair<int, int>> set;
  // Ring successors: the ring reduce-scatter/all-gather schedules and the
  // chained broadcast (any root) only ever write rank -> (rank + 1) % n.
  for (int r = 0; r < n; ++r) set.emplace(r, (r + 1) % n);
  if (options_.algorithm == Algorithm::kNaiveGather) {
    // Star to and from the gather root.
    for (int r = 1; r < n; ++r) {
      set.emplace(0, r);
      set.emplace(r, 0);
    }
  }
  if (options_.algorithm == Algorithm::kHierarchical) {
    // Binomial tree edges within each rack, both directions (child -> parent
    // for the reduce, parent -> child for the broadcast), plus the leader
    // ring across racks. O(n) total: every non-leader has exactly one parent.
    const int num_racks = static_cast<int>(racks_.size());
    for (int rk = 0; rk < num_racks; ++rk) {
      const std::vector<int>& members = racks_[rk];
      for (int p = 1; p < static_cast<int>(members.size()); ++p) {
        int j = 0;
        while (((p >> j) & 1) == 0) ++j;
        const int parent = p - (1 << j);
        set.emplace(members[p], members[parent]);
        set.emplace(members[parent], members[p]);
      }
    }
    if (num_racks > 1) {
      for (int rk = 0; rk < num_racks; ++rk) {
        set.emplace(racks_[rk][0], racks_[(rk + 1) % num_racks][0]);
      }
    }
  }
  pairs.assign(set.begin(), set.end());
  return pairs;
}

void CollectiveGroup::ExchangeAddresses(std::function<void()> then) {
  const std::vector<std::pair<int, int>> pairs = RequiredAddressPairs();
  pending_exchanges_ = static_cast<int>(pairs.size());
  if (pending_exchanges_ == 0) {
    exchanged_ = true;
    then();
    return;
  }
  auto shared_then = std::make_shared<std::function<void()>>(std::move(then));
  for (const auto& [r, q] : pairs) {
    {
      Rank* self = ranks_[r].get();
      stats_.setup_rpcs++;
      self->device->Call(
          ranks_[q]->endpoint, "collective/addrs", {},
          [this, r, q, shared_then](const Status& status, const std::vector<uint8_t>& payload) {
            if (!status.ok()) {
              if (op_) Fail(op_, status);
              return;
            }
            constexpr size_t kOne = device::RemoteRegion::kWireSize;
            if (payload.size() < 3 * kOne) {
              if (op_) Fail(op_, Internal("short collective/addrs response"));
              return;
            }
            Rank::PeerAddrs& addrs = ranks_[r]->peers[q];
            auto data = device::RemoteRegion::Decode(payload.data(), kOne);
            auto slots = device::RemoteRegion::Decode(payload.data() + kOne, kOne);
            auto flags = device::RemoteRegion::Decode(payload.data() + 2 * kOne, kOne);
            if (!data.ok() || !slots.ok() || !flags.ok()) {
              if (op_) Fail(op_, Internal("bad collective/addrs response"));
              return;
            }
            addrs.data = *data;
            addrs.slots = *slots;
            addrs.flags = *flags;
            if (--pending_exchanges_ == 0) {
              exchanged_ = true;
              (*shared_then)();
            }
          });
    }
  }
}

void CollectiveGroup::Finish(const std::shared_ptr<Op>& op) {
  if (op->finished) return;
  op->finished = true;
  const int64_t now = simulator()->Now();
  const char* name = "collective";
  switch (op->kind) {
    case Op::Kind::kAllReduce:
      stats_.allreduces++;
      name = "allreduce";
      break;
    case Op::Kind::kReduceScatter:
      stats_.reduce_scatters++;
      name = "reduce-scatter";
      break;
    case Op::Kind::kAllGather:
      stats_.all_gathers++;
      name = "all-gather";
      break;
    case Op::Kind::kBroadcast:
      stats_.broadcasts++;
      name = "broadcast";
      break;
  }
  sim::TraceSpan("collective", StrCat(name, " ", op->count, " elems"), op->start_ns, now);
  ForgetDeclaredFlags(op);
  op_.reset();
  if (op->done) op->done(OkStatus());
}

void CollectiveGroup::Fail(const std::shared_ptr<Op>& op, const Status& status) {
  if (op->finished) return;
  op->finished = true;
  op->status = status;
  ForgetDeclaredFlags(op);
  op_.reset();
  sim::TraceInstant("collective", StrCat("failed: ", status.message()), simulator()->Now());
  if (op->done) op->done(status);
}

// Retires the op's flag declarations from the protocol checker so the shadow
// state never outlives the op (the flag block itself is reused by the next
// op after a memset).
void CollectiveGroup::ForgetDeclaredFlags(const std::shared_ptr<Op>& op) {
  for (const auto& [r, f] : op->declared_flags) {
    check::OnFlagForgotten(ranks_[r]->endpoint.host_id, ranks_[r]->flags() + f);
  }
  op->declared_flags.clear();
}

// Declares flag |flag_index| of |rank| to the protocol checker (no-op when no
// checker is installed) and records it on the op for Finish/Fail cleanup.
void CollectiveGroup::DeclareFlag(const std::shared_ptr<Op>& op, int rank, int flag_index,
                                  const char* kind) {
  if (check::RdmaCheck::Current() == nullptr) return;
  Rank* r = ranks_[rank].get();
  check::OnFlagLocation(r->endpoint.host_id, r->flags() + flag_index,
                        StrCat(options_.trace_prefix, " ", kind, " r", rank, " f", flag_index));
  op->declared_flags.emplace_back(rank, flag_index);
}

// Re-checks the op's virtual-time budget at a level handoff. Returns false
// (after failing the op with a message naming the handoff) when the deadline
// has passed; the Begin backstop timer would eventually fire too, but this
// surfaces *where* the budget was blown.
bool CollectiveGroup::CheckDeadline(const std::shared_ptr<Op>& op, const char* where) {
  if (op->finished) return false;
  if (op->deadline_ns > 0 && simulator()->Now() >= op->deadline_ns) {
    Fail(op, DeadlineExceeded(StrCat("collective deadline exceeded at ", where)));
    return false;
  }
  return true;
}

Status CollectiveGroup::ResetTransport() {
  for (const auto& rank : ranks_) {
    RDMADL_RETURN_IF_ERROR(rank->device->RecoverChannels());
  }
  return OkStatus();
}

std::vector<int> CollectiveGroup::hosts() const {
  std::vector<int> out;
  out.reserve(ranks_.size());
  for (const auto& rank : ranks_) out.push_back(rank->endpoint.host_id);
  return out;
}

Status CollectiveGroup::Reconfigure(const std::vector<int>& alive_hosts) {
  if (op_) return FailedPrecondition("cannot reconfigure with a collective in flight");
  if (alive_hosts.empty()) {
    return InvalidArgument("reconfigure needs at least one survivor");
  }
  std::unordered_set<int> alive(alive_hosts.begin(), alive_hosts.end());
  if (alive.size() != alive_hosts.size()) {
    return InvalidArgument("duplicate host in survivor list");
  }
  std::unordered_set<int> current;
  for (const auto& rank : ranks_) current.insert(rank->endpoint.host_id);
  for (int host : alive_hosts) {
    if (current.count(host) == 0) {
      return InvalidArgument(StrCat("host ", host, " is not a member of this group"));
    }
  }

  // Drop dead ranks. Destroying a rank's device unbinds its endpoint; the
  // NIC-owned QPs survivors hold toward it stay valid but are never used
  // again (the stale PeerConnection entries are inert). The quiesce
  // precondition guarantees no scheduled closure still references the device.
  std::vector<std::unique_ptr<Rank>> survivors;
  for (auto& rank : ranks_) {
    if (alive.count(rank->endpoint.host_id) > 0) {
      survivors.push_back(std::move(rank));
    } else {
      rank->device->DropPendingCallbacks();
    }
  }
  ranks_ = std::move(survivors);

  const int n = size();
  const uint64_t data_bytes = max_elements_ * sizeof(float);

  // Same layout math as Init, for the smaller membership: re-derive the rack
  // grouping (a whole rack may have died; the hierarchical leader of each
  // surviving rack is its first surviving member by position) and rerun the
  // shared layout. chunk_cap grows as n shrinks (ceil), so the slot area can
  // be *larger* per rank than before — slots and flags are reallocated; data
  // buffers persist.
  BuildRacks(hosts());
  ComputeLayout(n);

  for (int i = 0; i < n; ++i) {
    Rank* rank = ranks_[i].get();
    rank->index = i;

    RDMADL_ASSIGN_OR_RETURN(rank->flag_region,
                            rank->device->AllocateMemRegion(flag_capacity_ + 1));
    std::memset(rank->flag_region.data(), 0, flag_capacity_ + 1);
    rank->flag_region.data()[flag_capacity_] = 1;

    uint64_t slot_bytes = ring_slot_bytes_ + hier_extra_slot_bytes_;
    if (options_.algorithm == Algorithm::kNaiveGather && i == 0 && n > 1) {
      slot_bytes += static_cast<uint64_t>(n - 1) * data_bytes;
    }
    rank->slot_bytes = slot_bytes;

    uint32_t data_rkey = 0;
    uint32_t slot_rkey = 0;
    if (options_.materialize) {
      data_rkey = rank->data_region.rkey();
      rank->slot_region = device::MemRegion();
      rank->slot_addr = 0;
      rank->slot_lkey = 0;
      if (slot_bytes > 0) {
        RDMADL_ASSIGN_OR_RETURN(rank->slot_region,
                                rank->device->AllocateMemRegion(slot_bytes));
        rank->slot_addr = reinterpret_cast<uint64_t>(rank->slot_region.data());
        rank->slot_lkey = rank->slot_region.lkey();
        slot_rkey = rank->slot_region.rkey();
      }
    } else {
      // virtual_mrs[0] is the data registration; anything after it is the old
      // slot area, re-registered at the same window offset with the new size.
      CHECK(!rank->virtual_mrs.empty());
      data_rkey = rank->virtual_mrs[0].rkey;
      while (rank->virtual_mrs.size() > 1) {
        RDMADL_RETURN_IF_ERROR(
            rank->device->nic()->DeregisterMemory(rank->virtual_mrs.back()));
        rank->virtual_mrs.pop_back();
      }
      rank->slot_lkey = 0;
      if (slot_bytes > 0) {
        rank->slot_addr = rank->data_addr + kVirtualSlotOffset;
        RDMADL_ASSIGN_OR_RETURN(rdma::MemoryRegion slot_mr,
                                rank->device->nic()->RegisterMemory(
                                    reinterpret_cast<void*>(rank->slot_addr), slot_bytes));
        rank->slot_lkey = slot_mr.lkey;
        slot_rkey = slot_mr.rkey;
        rank->virtual_mrs.push_back(slot_mr);
      }
    }

    rank->peers.assign(n, Rank::PeerAddrs{});
    rank->peers[i].data = device::RemoteRegion{rank->data_addr, data_rkey, data_bytes};
    rank->peers[i].slots = device::RemoteRegion{rank->slot_addr, slot_rkey, slot_bytes};
    rank->peers[i].flags = rank->flag_region.Remote();

    // The address handler captures the rank's index by value; re-register it
    // (same method name replaces the old handler) with the new index.
    Rank* self = rank;
    rank->device->RegisterRpcHandler(
        "collective/addrs", [self, i](const std::vector<uint8_t>&) {
          std::vector<uint8_t> out;
          self->peers[i].data.EncodeTo(&out);
          self->peers[i].slots.EncodeTo(&out);
          self->peers[i].flags.EncodeTo(&out);
          return out;
        });
  }

  host_to_rank_.assign(directory_->rdma_fabric()->fabric()->num_hosts(), -1);
  for (int i = 0; i < n; ++i) host_to_rank_[ranks_[i]->endpoint.host_id] = i;
  InstallLaneLimitResolver();

  rank_tracks_.assign(n, std::string());
  exchanged_ = false;  // The next op re-runs the ring-buffer address exchange.
  pending_exchanges_ = 0;
  ++stats_.reconfigurations;
  sim::TraceInstant("collective",
                    StrCat("reconfigured to ", n, " ranks"), simulator()->Now());
  return OkStatus();
}

void CollectiveGroup::FinishUnit(const std::shared_ptr<Op>& op) {
  if (op->finished) return;
  CHECK_GT(op->pending_units, 0);
  if (--op->pending_units == 0) Finish(op);
}

// ---------------------------------------------------------------------------
// Chunk post: payload then trailing flag, over either transport.

void CollectiveGroup::PostChunk(const std::shared_ptr<Op>& op, int src_rank, int dst_rank,
                                int qp_lane, uint64_t local_addr, uint32_t local_lkey,
                                uint64_t remote_addr, uint32_t remote_rkey, uint64_t bytes,
                                int flag_index) {
  if (op->finished) return;
  Rank* src = ranks_[src_rank].get();
  Rank* dst = ranks_[dst_rank].get();
  stats_.ring_steps++;
  stats_.bytes_sent += bytes;

  if (options_.transport == Transport::kRdmaZeroCopy) {
    // Payload then flag through the shared transfer engine. On the direct
    // path the flag trails the payload on the same QP (RC FIFO ordering plus
    // ascending-address delivery make it the last byte to land, §3.2); on the
    // striped path the engine posts the flag only after every stripe's
    // completion, which preserves the same contract. The 1-byte flag source
    // is the constant at the tail of the flag block, so the delivery-time
    // read can never observe a stale staging value.
    const Rank::PeerAddrs& peer = src->peers[dst_rank];
    comm::TransferEngine::WriteDesc payload;
    payload.local_addr = reinterpret_cast<void*>(local_addr);
    payload.lkey = local_lkey;
    payload.remote_addr = remote_addr;
    payload.rkey = remote_rkey;
    payload.bytes = bytes;
    payload.copy_bytes = options_.materialize;
    comm::TransferEngine::WriteDesc flag;
    flag.local_addr = src->flags() + flag_capacity_;
    flag.lkey = src->flag_region.lkey();
    flag.remote_addr = peer.flags.addr + flag_index;
    flag.rkey = peer.flags.rkey;
    flag.bytes = 1;
    flag.copy_bytes = true;
    src->engine->WriteWithFlag(dst->endpoint, payload, flag, qp_lane,
                               [this, op](const Status& status) {
                                 if (!status.ok()) Fail(op, status);
                               });
    return;
  }

  // TCP staging path: gRPC-style dispatch + serialize on the sender, TCP
  // stream on the wire, deserialize + staging copy into the destination on
  // the receiver, then the receiver-side completion sets the flag byte. Same
  // ring schedule, so benchmarks isolate the transport effect.
  const net::CostModel& c = cost();
  const int64_t sender_ns =
      c.rpc_dispatch_overhead_ns + CostNs(bytes, c.serialize_bytes_per_sec);
  const int64_t receiver_ns = CostNs(bytes, c.deserialize_bytes_per_sec) +
                              CostNs(bytes, c.staging_memcpy_bytes_per_sec);
  net::Fabric* fabric = directory_->rdma_fabric()->fabric();
  const bool copy = options_.materialize && bytes > 0;
  fabric->Transfer(
      src->endpoint.host_id, dst->endpoint.host_id, std::max<uint64_t>(bytes, 1),
      net::Plane::kTcp, sender_ns, nullptr,
      [this, op, dst, local_addr, remote_addr, bytes, flag_index, receiver_ns,
       copy](Status status) {
        if (op->finished) return;
        if (!status.ok()) {
          Fail(op, status);
          return;
        }
        simulator()->ScheduleAfter(receiver_ns, [op, dst, local_addr, remote_addr, bytes,
                                                 flag_index, copy] {
          if (op->finished) return;
          if (copy) {
            // Source values are read at delivery time; the schedules only
            // ever post a chunk whose source is final (the causal chain that
            // triggers any later write to it runs through this delivery).
            std::memcpy(reinterpret_cast<void*>(remote_addr),
                        reinterpret_cast<const void*>(local_addr), bytes);
          }
          dst->flags()[flag_index] = 1;
          check::OnFlagSetLocally(dst->endpoint.host_id, dst->flags() + flag_index,
                                  dst->device->simulator()->Now());
        });
      });
}

// ---------------------------------------------------------------------------
// Flag pollers.

void CollectiveGroup::StartWaiter(const std::shared_ptr<Op>& op, int rank, int flag_base,
                                  int num_flags,
                                  std::function<void(int, std::function<void()>)> on_arrival) {
  if (num_flags == 0) {
    FinishUnit(op);
    return;
  }
  auto waiter = std::make_shared<Waiter>();
  waiter->rank = rank;
  waiter->flag_base = flag_base;
  waiter->num_flags = num_flags;
  waiter->on_arrival = std::move(on_arrival);
  // Jittered: poll cadence is scheduling noise, fair game for the explorer.
  simulator()->ScheduleAfterJittered(cost().flag_poll_cost_ns,
                                     [this, op, waiter] { PollWaiter(op, waiter); });
}

void CollectiveGroup::PollWaiter(std::shared_ptr<Op> op, std::shared_ptr<Waiter> waiter) {
  if (op->finished) return;
  Rank* rank = ranks_[waiter->rank].get();
  bool flag_set = rank->flags()[waiter->flag_base + waiter->next] != 0;
  if (!flag_set) {
    check::OnFlagPolled(rank->endpoint.host_id,
                        rank->flags() + waiter->flag_base + waiter->next, simulator()->Now());
    // Seeded bug (explorer self-validation): trust the flag on a miss.
    if (check::MutationEnabled(check::kPrematureFlagTrust)) flag_set = true;
  }
  if (flag_set) {
    check::OnFlagTrusted(rank->endpoint.host_id,
                         rank->flags() + waiter->flag_base + waiter->next, simulator()->Now());
    waiter->backoff_ns = 0;
    const int index = waiter->next;
    auto resume = [this, op, waiter] {
      if (op->finished) return;
      waiter->next++;
      if (waiter->next == waiter->num_flags) {
        FinishUnit(op);
        return;
      }
      simulator()->ScheduleAfterJittered(cost().flag_poll_cost_ns,
                                         [this, op, waiter] { PollWaiter(op, waiter); });
    };
    waiter->on_arrival(index, std::move(resume));
    return;
  }
  // Nothing yet: exponential backoff so an idle poller does not flood the
  // event queue, resetting to the base interval on any progress.
  waiter->backoff_ns = waiter->backoff_ns == 0
                           ? cost().idle_poll_interval_ns
                           : std::min(waiter->backoff_ns * 2, cost().idle_poll_max_interval_ns);
  simulator()->ScheduleAfterJittered(waiter->backoff_ns + cost().flag_poll_cost_ns,
                                     [this, op, waiter] { PollWaiter(op, waiter); });
}

}  // namespace collective
}  // namespace rdmadl
