// Pipelined chained broadcast (initial weight distribution): ranks form the
// chain root, root+1, ..., root-1; the root chops the vector into segments
// and streams them to its successor, and every intermediate rank forwards
// segment j to its own successor the moment j lands — so all N-1 hops
// transmit concurrently once the pipe fills, and the total time approaches
// one vector transfer plus (hops x segment) fill latency. Segments land
// directly at their final offsets in each receiver's data buffer.
#include <algorithm>
#include <memory>
#include <utility>

#include "src/collective/internal.h"
#include "src/sim/trace.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace collective {

void CollectiveGroup::StartBroadcast(const std::shared_ptr<Op>& op) {
  const int n = size();
  CHECK_GT(n, 1);
  const int root = op->root;
  const int segments =
      static_cast<int>(std::min<uint64_t>(options_.broadcast_segments, op->count));
  op->pending_units = n - 1;

  // Segment geometry, shared by every hop.
  auto segment = [count = op->count, segments](int j) {
    const uint64_t base = count / segments;
    const uint64_t rem = count % segments;
    const uint64_t idx = static_cast<uint64_t>(j);
    const uint64_t len = base + (idx < rem ? 1 : 0);
    const uint64_t off = idx * base + std::min<uint64_t>(idx, rem);
    return std::pair<uint64_t, uint64_t>{off, len};
  };

  auto forward = [this, op, segment](int from, int j) {
    const int to = (from + 1) % size();
    const auto [off, len] = segment(j);
    Rank* self = ranks_[from].get();
    const Rank::PeerAddrs& peer = self->peers[to];
    const uint64_t byte_off = off * sizeof(float);
    PostChunk(op, from, to, /*qp_lane=*/0, self->data_addr + byte_off, self->data_lkey,
              peer.data.addr + byte_off, peer.data.rkey, len * sizeof(float),
              /*flag_index=*/j);
  };

  // The root streams every segment to its successor; the QP serializes them
  // in order, which matches the receivers' sequential pollers.
  for (int j = 0; j < segments; ++j) forward(root, j);

  // Every other rank forwards each segment on arrival, except the last hop.
  for (int hop = 1; hop < n; ++hop) {
    const int r = (root + hop) % n;
    const bool last_hop = hop == n - 1;
    const int64_t start_ns = simulator()->Now();
    StartWaiter(op, r, /*flag_base=*/0, segments,
                [this, op, r, last_hop, segments, forward, start_ns](
                    int j, std::function<void()> resume) {
                  if (!last_hop) forward(r, j);
                  if (j + 1 == segments) {
                    sim::TraceSpan(RankTrack(r), StrCat("bcast ", op->count, "e"), start_ns,
                                   simulator()->Now());
                  }
                  resume();
                });
  }
}

}  // namespace collective
}  // namespace rdmadl
