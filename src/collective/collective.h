// Collective communication over the RDMA device library (ISSUE 1).
//
// The paper evaluates its zero-copy tensor transfer only in the
// parameter-server pattern (§3, Figure 3). This subsystem applies the same
// static-placement idea (§3.2) to ring collectives: every landing zone a
// collective will ever write — per-step ring slots, final chunk positions,
// completion flag bytes — is preallocated and NIC-registered once at group
// creation, and the addresses are distributed over the device library's
// vanilla RPC (off the critical path). Every data movement on the critical
// path is then a one-sided RdmaChannel::Memcpy write followed by a one-byte
// flag write on the same QP; RC FIFO ordering plus ascending-address delivery
// make the flag the last byte to land, so the receiver's poller observes
// arrival exactly as in the paper's §3.2 protocol.
//
// Implemented collectives, all virtual-time state machines driven by the
// simulation kernel:
//
//   ReduceScatter  — ring: N-1 steps; rank r ends owning the fully reduced
//                    chunk r of the vector.
//   AllGather      — ring: N-1 steps; every rank ends with every chunk.
//   AllReduce      — their composition, fused per pipeline lane (a lane's
//                    all-gather begins the moment its reduce-scatter ends; no
//                    global barrier between phases).
//   Broadcast      — chained ring pipeline from |root| (initial weight
//                    distribution), segmented so hop k forwards segment j
//                    while the root is still sending segment j+1.
//
// Chunked pipelining: the vector is split into |pipeline_depth| lanes that
// run the ring independently and concurrently, so the egress link of a host
// is transmitting one lane's chunk while the CPU reduces another's — links
// stay busy across ring steps.
//
// Ablation knobs: |algorithm| switches the transfer schedule between the
// bandwidth-optimal ring and a naive gather-to-root + scatter-from-root star
// (the PS-shaped pattern); |transport| switches the same schedule between
// zero-copy one-sided RDMA and a gRPC-over-TCP-style staged path (serialize +
// TCP stream + deserialize per hop), so benchmarks can separate
// algorithm-vs-transport effects.
//
// Memory fidelity follows the host runtime's two modes: with
// |materialize| = true the buffers are real and collectives compute
// bitwise-exact float sums (unit tests); with false the buffers are reserved,
// never-dereferenced registered ranges (virtual-memory benchmark mode — an
// 8-host 512 MB all-reduce does not materialize 4 GB), while flag bytes stay
// real so the polling protocol always reads actual memory.
#ifndef RDMADL_SRC_COLLECTIVE_COLLECTIVE_H_
#define RDMADL_SRC_COLLECTIVE_COLLECTIVE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/comm/transfer_engine.h"
#include "src/device/rdma_device.h"
#include "src/util/status.h"

namespace rdmadl {
namespace collective {

enum class Algorithm {
  kRing,         // Bandwidth-optimal ring (reduce-scatter + all-gather).
  kNaiveGather,  // Gather-to-root, reduce at root, scatter result (star).
  // Two-level topology-aware all-reduce (AllReduce only; the standalone
  // collectives keep their flat-ring schedules): binomial reduce trees
  // within each rack feed a fused ring over the rack leaders across the
  // spine, then binomial broadcast trees fan the result back out. Lanes
  // pipeline the level handoff: one lane's leader ring runs while another
  // lane's rack trees are still reducing. On a flat fabric the whole group
  // is one "rack", so this degenerates to a single binomial tree.
  kHierarchical,
  // NetReduce-style in-network reduction (AllReduce only): every rank
  // streams aggregation windows into its ToR's reduction engine; partials
  // cross the spine aggregator and the result streams back down. Requires a
  // topology with switch_reduce enabled.
  kInNetwork,
  // Resolved once at Create from the fabric shape and tensor size: flat or
  // single-rack groups run kRing; multi-rack groups run kInNetwork when the
  // fabric has a switch-reduce stage and the tensor fits the in-network
  // sweet spot, else kHierarchical. options().algorithm holds the result.
  kAuto,
};

enum class Transport {
  kRdmaZeroCopy,  // One-sided writes into preallocated slots (§3.2 idiom).
  kTcpStaging,    // gRPC-TCP-style: serialize + TCP stream + deserialize.
};

const char* AlgorithmName(Algorithm algorithm);
const char* TransportName(Transport transport);

struct CollectiveOptions {
  Algorithm algorithm = Algorithm::kRing;
  Transport transport = Transport::kRdmaZeroCopy;
  // Ring lanes that pipeline independently; slot memory scales with this.
  int pipeline_depth = 4;
  // Segments a Broadcast is chopped into for chained pipelining.
  int broadcast_segments = 8;
  // Port the group's per-rank devices bind on their hosts.
  uint16_t port = 7100;
  // Real payload memory (tests, examples) vs. virtual ranges (benchmarks).
  bool materialize = true;
  // Device-library parallelism for the group's devices.
  int num_cqs = 2;
  // Tracer track prefix for collective spans ("host0 ring[0]", ...).
  std::string trace_prefix = "ring";
  // Virtual-time budget for one collective; 0 = unlimited. A collective still
  // in flight when the budget elapses fails with kDeadlineExceeded instead of
  // hanging virtual time (e.g. a crashed peer whose flag never arrives).
  int64_t op_timeout_ns = 0;
  // Per-rank transfer-engine knobs (lane striping of big chunks). Coalescing
  // is always forced off here: ring flags are per-(lane, step) slots and the
  // chunks are medium-sized, so batching would only add latency.
  comm::TransferEngineOptions engine;
};

struct CollectiveStats {
  int64_t allreduces = 0;
  int64_t reduce_scatters = 0;
  int64_t all_gathers = 0;
  int64_t broadcasts = 0;
  int64_t ring_steps = 0;    // Chunk transfers posted (any algorithm).
  uint64_t bytes_sent = 0;   // Payload bytes put on the wire.
  int64_t setup_rpcs = 0;    // Address-distribution calls (setup only).
  int64_t reconfigurations = 0;  // Membership-change ring rebuilds.
};

using DoneCallback = std::function<void(const Status&)>;

// A group of N ranks, one per listed host, each owning an RdmaDevice bound to
// (host, options.port), a data buffer of |max_elements| floats, preallocated
// ring slots, and an always-real flag block. The whole group lives in one
// simulation; the public entry points drive all ranks' state machines in
// virtual time and invoke |done| when the collective has completed on every
// rank (or failed anywhere). One collective may be in flight at a time.
class CollectiveGroup {
 public:
  static StatusOr<std::unique_ptr<CollectiveGroup>> Create(
      device::DeviceDirectory* directory, const std::vector<int>& hosts,
      uint64_t max_elements, CollectiveOptions options = {});
  ~CollectiveGroup();

  CollectiveGroup(const CollectiveGroup&) = delete;
  CollectiveGroup& operator=(const CollectiveGroup&) = delete;

  int size() const { return static_cast<int>(ranks_.size()); }
  uint64_t max_elements() const { return max_elements_; }
  const CollectiveOptions& options() const { return options_; }
  // The concrete algorithm the group runs (kAuto is resolved at Create and
  // stays fixed across Reconfigure).
  Algorithm algorithm() const { return options_.algorithm; }
  // Rack partition the hierarchical/in-network schedules use: member ranks
  // per rack ordinal, members in rank order, leader first. A flat fabric is
  // one rack. Rebuilt by Reconfigure (the first surviving member of a rack
  // becomes its leader — re-election is positional, no extra protocol).
  const std::vector<std::vector<int>>& racks() const { return racks_; }
  sim::Simulator* simulator() const;

  // Rank r's local vector (|max_elements| floats). Null in virtual mode.
  float* data(int rank) const;

  // Element-wise sum over the first |count| elements of every rank's vector;
  // on completion every rank holds the full sum.
  void AllReduce(uint64_t count, DoneCallback done);

  // Ring reduce-scatter: rank r ends owning the reduced chunk r (chunks are
  // the near-equal N-way partition of [0, count)).
  void ReduceScatter(uint64_t count, DoneCallback done);

  // Ring all-gather: assumes rank r's chunk r is valid; every rank ends with
  // all chunks.
  void AllGather(uint64_t count, DoneCallback done);

  // Pipelined chained broadcast of |root|'s first |count| elements.
  void Broadcast(int root, uint64_t count, DoneCallback done);

  bool busy() const { return op_ != nullptr; }
  const CollectiveStats& stats() const { return stats_; }

  // Recovers every rank's errored QPs (after a failed/timed-out collective,
  // once the simulator has quiesced) so the next op starts on clean channels.
  Status ResetTransport();

  // Elastic membership change: shrinks the group to |alive_hosts| (which must
  // be a subset of the current members), destroying dead ranks' devices and
  // rebuilding the ring over the survivors. The per-step chunk capacity grows
  // as N shrinks (ceil(max_elements / N)), so ring slots and flag blocks are
  // reallocated and re-registered; the data buffers and their registrations
  // persist. The next collective re-runs the ring-buffer address exchange.
  // Preconditions: no collective in flight, simulator quiesced (no in-flight
  // closures may reference a dead rank's device).
  Status Reconfigure(const std::vector<int>& alive_hosts);

  // Host ids of the current members, in rank order.
  std::vector<int> hosts() const;

  // The N-way chunk partition used by ReduceScatter/AllGather/AllReduce
  // (chunk c of a |count|-element vector): {offset, length} in elements.
  std::pair<uint64_t, uint64_t> Chunk(uint64_t count, int c) const;

 private:
  struct Rank;
  struct Op;
  struct Waiter;

  CollectiveGroup(device::DeviceDirectory* directory, uint64_t max_elements,
                  CollectiveOptions options);

  Status Init(const std::vector<int>& hosts);

  // Validates and begins an op; |start| runs once address exchange is done.
  void Begin(std::shared_ptr<Op> op, std::function<void()> start);
  // Address distribution over the device library's vanilla RPC (§3.1), run
  // lazily before the first collective.
  void ExchangeAddresses(std::function<void()> then);
  // The (src, dst) rank pairs whose remote addresses the configured
  // schedules can ever post a write over. Every schedule is ring- or
  // star-shaped, so this is O(ranks) — exchanging (and connecting) all
  // n*(n-1) pairs would put hosts^2 queue pairs on the fabric at cluster
  // scale for no benefit.
  std::vector<std::pair<int, int>> RequiredAddressPairs() const;
  void Finish(const std::shared_ptr<Op>& op);
  void Fail(const std::shared_ptr<Op>& op, const Status& status);
  void FinishUnit(const std::shared_ptr<Op>& op);

  // Posts one chunk: payload (if |bytes| > 0) then the 1-byte completion flag
  // |flag_index| at |dst_rank|, over the configured transport.
  void PostChunk(const std::shared_ptr<Op>& op, int src_rank, int dst_rank,
                 int qp_lane, uint64_t local_addr, uint32_t local_lkey,
                 uint64_t remote_addr, uint32_t remote_rkey, uint64_t bytes,
                 int flag_index);

  // Sequential flag poller: watches flag bytes [flag_base, flag_base +
  // num_flags) at |rank| in order, invoking |on_arrival|(i, resume) for each;
  // the handler calls resume() when the poller may advance (§4-style
  // exponential-backoff polling).
  void StartWaiter(const std::shared_ptr<Op>& op, int rank, int flag_base,
                   int num_flags,
                   std::function<void(int, std::function<void()>)> on_arrival);
  void PollWaiter(std::shared_ptr<Op> op, std::shared_ptr<Waiter> waiter);

  // Virtual reduce cost of folding |bytes| into an accumulator.
  int64_t ReduceNs(uint64_t bytes) const;
  const net::CostModel& cost() const;

  // Algorithm entry points (ring_allreduce.cc, naive_allreduce.cc,
  // broadcast.cc, hierarchical_allreduce.cc, innetwork_allreduce.cc).
  void StartRing(const std::shared_ptr<Op>& op, bool do_reduce_scatter,
                 bool do_all_gather);
  void StartNaiveGather(const std::shared_ptr<Op>& op);
  void StartBroadcast(const std::shared_ptr<Op>& op);
  void StartHierarchical(const std::shared_ptr<Op>& op);
  void StartInNetwork(const std::shared_ptr<Op>& op);
  // One aggregation window of lane |lane| through the switch-reduce stage;
  // chains itself until the lane's rounds are exhausted.
  void IssueInNetworkRound(const std::shared_ptr<Op>& op, int lane, int round);

  // Groups the member hosts into racks_ / rank_rack_ / rank_pos_ from the
  // fabric topology (one rack when flat).
  void BuildRacks(const std::vector<int>& hosts);
  // Slot/flag layout shared by Init and Reconfigure (ring + naive + the
  // hierarchical tree/leader-ring areas and the in-network round flags).
  void ComputeLayout(int n);
  // Multi-level engine routing: cross-rack stripes funnel through one
  // oversubscribed uplink, so the per-rank engines cap their stripe fan-out
  // to 1 lane for cross-rack destinations (hierarchical/in-network only).
  void InstallLaneLimitResolver();
  // False (and fails the op with kDeadlineExceeded naming |where|) when the
  // op's deadline has passed at a level handoff.
  bool CheckDeadline(const std::shared_ptr<Op>& op, const char* where);
  // Registers flag (rank, index) with the protocol checker and records it on
  // the op for teardown (Finish/Fail forget every declared flag).
  void DeclareFlag(const std::shared_ptr<Op>& op, int rank, int flag_index,
                   const char* kind);
  // Retires every flag DeclareFlag registered for |op| from the checker.
  void ForgetDeclaredFlags(const std::shared_ptr<Op>& op);

  const std::string& RankTrack(int rank) const;

  device::DeviceDirectory* directory_;
  uint64_t max_elements_;
  CollectiveOptions options_;
  CollectiveStats stats_;

  uint64_t chunk_cap_elements_ = 0;  // Per-(lane, step) ring slot capacity.
  uint64_t ring_slot_bytes_ = 0;     // Ring slot area per rank.
  uint64_t naive_slot_offset_ = 0;   // Root gather parking starts here.
  int flag_capacity_ = 0;            // Flag bytes per rank.
  bool exchanged_ = false;
  int pending_exchanges_ = 0;

  // Hierarchical schedule state (rebuilt by Init/Reconfigure; empty unless
  // the resolved algorithm needs it).
  std::vector<std::vector<int>> racks_;  // Rack ordinal -> ranks, leader first.
  std::vector<int> rank_rack_;           // Rank -> rack ordinal.
  std::vector<int> rank_pos_;            // Rank -> position in rack (0=leader).
  int tree_rounds_ = 0;                  // ceil(log2(max rack size)).
  uint64_t lane_cap_elements_ = 0;       // ceil(max_elements / lanes).
  uint64_t hier_extra_slot_bytes_ = 0;   // Tree + leader-ring areas per rank.
  uint64_t hier_tree_slot_offset_ = 0;   // Tree slot (lane, round) area.
  uint64_t hier_ring_slot_offset_ = 0;   // Leader-ring per-step slot area.
  uint64_t hier_ring_cap_elements_ = 0;  // Leader-ring per-step slot capacity.
  int hier_flags_per_lane_ = 0;          // tree_rounds + 2(R-1) + 1.

  // In-network schedule state.
  uint64_t innet_window_elements_ = 0;  // Switch SRAM window, in floats.
  int innet_rounds_cap_ = 0;            // Max rounds of any lane.

  std::vector<int> host_to_rank_;  // Fabric host id -> rank, -1 elsewhere.

  std::vector<std::unique_ptr<Rank>> ranks_;
  mutable std::vector<std::string> rank_tracks_;
  std::shared_ptr<Op> op_;
};

}  // namespace collective
}  // namespace rdmadl

#endif  // RDMADL_SRC_COLLECTIVE_COLLECTIVE_H_
