// Topology-aware two-level all-reduce (ISSUE 7).
//
// Level 1 — intra-rack binomial reduce tree. Within each rack, member
// positions 0..m-1 (0 = leader) run a binomial reduce over the whole lane
// slice: position p sends its accumulated slice to parent p - 2^ctz(p) once
// it has folded in its own children, which arrive as consecutive receive
// rounds j = 0..RecvRounds(p)-1 (round j comes from p + 2^j). Every message
// stays inside the rack, so the oversubscribed uplink sees none of this
// traffic.
//
// Level 2 — inter-rack ring over the rack leaders. The R leaders run the
// fused ring reduce-scatter / all-gather (delta = 0, exactly the flat-ring
// schedule) over the rack-reduced slice; only these messages cross the
// spine, and the multi-level engine routing caps their stripe fan-out to one
// QP lane (they all funnel through the same uplink).
//
// Level 3 — intra-rack binomial broadcast, the mirror of level 1: the leader
// pushes the globally reduced slice down the tree (child q receives from
// q - 2^ctz(q) and forwards to q + 2^j for j < ctz(q)).
//
// Pipelined handoff: each lane hands off independently. Lane l's leader ring
// starts the moment lane l's local tree finishes, so early lanes' spine
// traffic overlaps late lanes' tree reduction, and likewise ring completion
// flows straight into that lane's broadcast. The op's deadline is re-checked
// at both handoffs (CheckDeadline) so a blown budget names the level.
//
// §3.2 contract everywhere: every payload lands via PostChunk (payload then
// trailing flag on the same QP / striped-with-fenced-flag path), receivers
// are sequential flag pollers, and slots are written exactly once per op —
// tree slot (lane, round) and ring slot (lane, step) each have a single
// writer, and the broadcast's in-place data writes are causally downstream
// of every read of the same range (the chain runs through the leader).
#include <algorithm>
#include <memory>
#include <utility>

#include "src/collective/internal.h"
#include "src/sim/trace.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace collective {

namespace {

// Near-equal partition of |count| elements into |parts| (same math as the
// flat ring so conformance can compare byte-for-byte).
void Partition(uint64_t count, int parts, std::vector<uint64_t>* offsets,
               std::vector<uint64_t>* counts) {
  offsets->resize(parts);
  counts->resize(parts);
  const uint64_t base = count / parts;
  const uint64_t rem = count % parts;
  uint64_t off = 0;
  for (int i = 0; i < parts; ++i) {
    const uint64_t len = base + (static_cast<uint64_t>(i) < rem ? 1 : 0);
    (*offsets)[i] = off;
    (*counts)[i] = len;
    off += len;
  }
}

struct ChunkRange {
  uint64_t offset = 0;  // Elements, relative to the lane start.
  uint64_t count = 0;   // Elements.
};

ChunkRange RingChunk(uint64_t lane_count, int n, int c) {
  const uint64_t base = lane_count / n;
  const uint64_t rem = lane_count % n;
  const uint64_t idx = static_cast<uint64_t>(c);
  return ChunkRange{idx * base + std::min<uint64_t>(idx, rem),
                    base + (idx < rem ? 1 : 0)};
}

int Ctz(int p) {
  int j = 0;
  while (((p >> j) & 1) == 0) ++j;
  return j;
}

// Number of tree receive rounds of position |p| in an m-member rack: the
// consecutive rounds j with p % 2^(j+1) == 0 and a live child p + 2^j < m.
int RecvRounds(int p, int m) {
  int t = 0;
  while (p % (1 << (t + 1)) == 0 && p + (1 << t) < m) ++t;
  return t;
}

}  // namespace

void CollectiveGroup::StartHierarchical(const std::shared_ptr<Op>& op) {
  const int n = size();
  CHECK_GT(n, 1);
  const int lanes = options_.pipeline_depth;
  const int R = static_cast<int>(racks_.size());
  Partition(op->count, lanes, &op->lane_offset, &op->lane_count);

  int active_lanes = 0;
  for (int l = 0; l < lanes; ++l) {
    if (op->lane_count[l] > 0) active_lanes++;
  }
  // Two units per (rank, lane): the tree waiter, and the per-rank tail (ring
  // waiter for leaders with R > 1, broadcast waiter for non-leaders, explicit
  // finish for a single-rack leader).
  op->pending_units = active_lanes * n * 2;
  if (op->pending_units == 0) {
    Finish(op);
    return;
  }

  const int ring_steps = R > 1 ? 2 * (R - 1) : 0;
  const int bcast_flag = tree_rounds_ + ring_steps;

  // Declare every flag this schedule will poll before anything is posted, so
  // the checker can flag a read that races its covering write.
  for (int r = 0; r < n; ++r) {
    const int p = rank_pos_[r];
    const int m = static_cast<int>(racks_[rank_rack_[r]].size());
    for (int l = 0; l < lanes; ++l) {
      if (op->lane_count[l] == 0) continue;
      const int fb = l * hier_flags_per_lane_;
      for (int j = 0; j < RecvRounds(p, m); ++j) DeclareFlag(op, r, fb + j, "tree");
      if (p == 0) {
        for (int s = 0; s < ring_steps; ++s) DeclareFlag(op, r, fb + tree_rounds_ + s, "ring");
      } else {
        DeclareFlag(op, r, fb + bcast_flag, "bcast");
      }
    }
  }

  for (int r = 0; r < n; ++r) {
    const int rk = rank_rack_[r];
    const int p = rank_pos_[r];
    const std::vector<int>& members = racks_[rk];
    const int m = static_cast<int>(members.size());
    const int recv_rounds = RecvRounds(p, m);

    for (int l = 0; l < lanes; ++l) {
      const uint64_t lane_off = op->lane_offset[l];
      const uint64_t lane_cnt = op->lane_count[l];
      if (lane_cnt == 0) continue;
      const int fb = l * hier_flags_per_lane_;
      const uint64_t lane_bytes = lane_cnt * sizeof(float);
      auto phase_start = std::make_shared<int64_t>(simulator()->Now());

      // Level-3 broadcast push: sends the (now final) lane slice to the
      // binomial descendants of position |pos|, deepest subtree first.
      auto post_bcast = [this, op, r, l, rk, m, lane_off, lane_bytes, fb, bcast_flag,
                         &members_ref = racks_[rk]](int pos, int max_j) {
        Rank* self = ranks_[r].get();
        for (int j = max_j; j >= 0; --j) {
          const int child = pos + (1 << j);
          if (child >= m) continue;
          const int child_rank = members_ref[child];
          const Rank::PeerAddrs& peer = self->peers[child_rank];
          const uint64_t byte_off = lane_off * sizeof(float);
          PostChunk(op, r, child_rank, l, self->data_addr + byte_off, self->data_lkey,
                    peer.data.addr + byte_off, peer.data.rkey, lane_bytes, fb + bcast_flag);
        }
      };

      // Level-2 leader ring (leaders only, R > 1): fused RS+AG over the rack
      // ordinals, rack rk at ring position g = rk.
      const int succ_leader = R > 1 ? racks_[(rk + 1) % R][0] : r;
      auto post_ring_rs = [this, op, r, l, rk, R, succ_leader, lane_off, lane_cnt, fb](int s) {
        const int send_chunk = ((rk - s) % R + R) % R;
        const ChunkRange chunk = RingChunk(lane_cnt, R, send_chunk);
        Rank* self = ranks_[r].get();
        const Rank::PeerAddrs& peer = self->peers[succ_leader];
        const uint64_t slot_off =
            hier_ring_slot_offset_ +
            (static_cast<uint64_t>(l) * (R - 1) + s) * hier_ring_cap_elements_ * sizeof(float);
        PostChunk(op, r, succ_leader, l,
                  self->data_addr + (lane_off + chunk.offset) * sizeof(float), self->data_lkey,
                  peer.slots.addr + slot_off, peer.slots.rkey, chunk.count * sizeof(float),
                  fb + tree_rounds_ + s);
      };
      auto post_ring_ag = [this, op, r, l, rk, R, succ_leader, lane_off, lane_cnt,
                           fb](int t) {
        const int owner = (rk + 1) % R;
        const int send_chunk = ((owner - t) % R + R) % R;
        const ChunkRange chunk = RingChunk(lane_cnt, R, send_chunk);
        Rank* self = ranks_[r].get();
        const Rank::PeerAddrs& peer = self->peers[succ_leader];
        const uint64_t byte_off = (lane_off + chunk.offset) * sizeof(float);
        PostChunk(op, r, succ_leader, l, self->data_addr + byte_off, self->data_lkey,
                  peer.data.addr + byte_off, peer.data.rkey, chunk.count * sizeof(float),
                  fb + tree_rounds_ + (R - 1) + t);
      };

      // Fires when lane |l|'s rack-local tree is fully folded at this rank:
      // non-leaders push up, leaders hand off to the spine ring (or straight
      // to the broadcast when there is only one rack).
      auto after_tree = [this, op, r, l, p, m, rk, R, lane_off, lane_bytes, fb, phase_start,
                         post_ring_rs, post_ring_ag, post_bcast, ring_steps, members,
                         lane_cnt]() {
        if (op->finished) return;
        sim::TraceSpan(RankTrack(r), StrCat("h-tree l", l, " ", lane_cnt, "e"), *phase_start,
                       simulator()->Now());
        *phase_start = simulator()->Now();
        if (p != 0) {
          // Push the rack-partial slice to the tree parent.
          const int parent = p - (1 << Ctz(p));
          const int parent_rank = members[parent];
          Rank* self = ranks_[r].get();
          const Rank::PeerAddrs& peer = self->peers[parent_rank];
          const uint64_t slot_off =
              hier_tree_slot_offset_ +
              (static_cast<uint64_t>(l) * tree_rounds_ + Ctz(p)) * lane_cap_elements_ *
                  sizeof(float);
          PostChunk(op, r, parent_rank, l, self->data_addr + lane_off * sizeof(float),
                    self->data_lkey, peer.slots.addr + slot_off, peer.slots.rkey, lane_bytes,
                    fb + Ctz(p));
          return;
        }
        if (!CheckDeadline(op, "intra-rack tree -> spine ring handoff")) return;
        if (R > 1) {
          // Leader ring for this lane: first send carries rack-reduced data,
          // and the ring waiter starts only now — a predecessor's early
          // arrival must not be folded into a slice still accumulating tree
          // contributions.
          post_ring_rs(0);
          StartWaiter(
              op, r, fb + tree_rounds_, ring_steps,
              [this, op, r, l, rk, R, lane_off, lane_cnt, phase_start, post_ring_rs,
               post_ring_ag, post_bcast, m](int index, std::function<void()> resume) {
                if (index < R - 1) {
                  // Reduce-scatter arrival s: fold ring slot (l, s) into the
                  // chunk it carries, then send the next step.
                  const int s = index;
                  const int recv_chunk = ((rk - s - 1) % R + R) % R;
                  const ChunkRange chunk = RingChunk(lane_cnt, R, recv_chunk);
                  const uint64_t bytes = chunk.count * sizeof(float);
                  simulator()->ScheduleAfter(
                      ReduceNs(bytes),
                      [this, op, r, l, s, R, chunk, lane_off, post_ring_rs, post_ring_ag,
                       resume = std::move(resume)] {
                        if (op->finished) return;
                        Rank* self = ranks_[r].get();
                        if (self->data_region.valid() && chunk.count > 0) {
                          const uint64_t slot_off =
                              hier_ring_slot_offset_ +
                              (static_cast<uint64_t>(l) * (R - 1) + s) *
                                  hier_ring_cap_elements_ * sizeof(float);
                          const float* src =
                              reinterpret_cast<const float*>(self->slot_ptr() + slot_off);
                          float* dst = self->data_ptr() + lane_off + chunk.offset;
                          for (uint64_t i = 0; i < chunk.count; ++i) dst[i] += src[i];
                        }
                        if (s + 1 < R - 1) {
                          post_ring_rs(s + 1);
                        } else {
                          post_ring_ag(0);
                        }
                        resume();
                      });
                  return;
                }
                // All-gather arrival t: the chunk sits at its final offset;
                // forward it, or on the last step hand off to the broadcast.
                const int t = index - (R - 1);
                if (t + 1 < R - 1) {
                  post_ring_ag(t + 1);
                } else {
                  sim::TraceSpan(RankTrack(r), StrCat("h-ring l", l, " ", lane_cnt, "e"),
                                 *phase_start, simulator()->Now());
                  *phase_start = simulator()->Now();
                  if (!CheckDeadline(op, "spine ring -> intra-rack broadcast handoff")) return;
                  if (m > 1) post_bcast(0, tree_rounds_ - 1);
                }
                resume();
              });
          return;
        }
        // Single rack: the tree result already is the global sum.
        if (!CheckDeadline(op, "spine ring -> intra-rack broadcast handoff")) return;
        if (m > 1) post_bcast(0, tree_rounds_ - 1);
        FinishUnit(op);
      };

      // Level-1 tree waiter (every rank): fold children as they arrive, then
      // run the handoff. Leaves have no receive rounds and hand off at once.
      if (recv_rounds == 0) {
        after_tree();
        StartWaiter(op, r, fb, 0, nullptr);
      } else {
        StartWaiter(
            op, r, fb, recv_rounds,
            [this, op, r, l, lane_off, lane_cnt, recv_rounds, after_tree](
                int j, std::function<void()> resume) {
              const uint64_t bytes = lane_cnt * sizeof(float);
              simulator()->ScheduleAfter(
                  ReduceNs(bytes), [this, op, r, l, j, lane_off, lane_cnt, recv_rounds,
                                    after_tree, resume = std::move(resume)] {
                    if (op->finished) return;
                    Rank* self = ranks_[r].get();
                    if (self->data_region.valid() && lane_cnt > 0) {
                      const uint64_t slot_off =
                          hier_tree_slot_offset_ +
                          (static_cast<uint64_t>(l) * tree_rounds_ + j) * lane_cap_elements_ *
                              sizeof(float);
                      const float* src =
                          reinterpret_cast<const float*>(self->slot_ptr() + slot_off);
                      float* dst = self->data_ptr() + lane_off;
                      for (uint64_t i = 0; i < lane_cnt; ++i) dst[i] += src[i];
                    }
                    if (j + 1 == recv_rounds) after_tree();
                    resume();
                  });
            });
      }

      // Per-rank tail unit: non-leaders wait for the broadcast push (started
      // now — the flag may land long before the poller's first look, which is
      // exactly the §3.2 pattern). Leaders' tail is the ring waiter (R > 1,
      // started at tree-done) or the explicit finish above (R == 1).
      if (p != 0) {
        StartWaiter(op, r, fb + bcast_flag, 1,
                    [this, op, r, l, p, post_bcast](int, std::function<void()> resume) {
                      // Forward the final slice down this position's subtree.
                      if (Ctz(p) > 0) post_bcast(p, Ctz(p) - 1);
                      resume();
                    });
      }
    }
  }
}

}  // namespace collective
}  // namespace rdmadl
