#include "src/graph/partition.h"

#include <map>
#include <unordered_map>

#include "src/util/strings.h"

namespace rdmadl {
namespace graph {

namespace {

// Copies a node's metadata (attrs, placement, inference results) onto a node
// freshly added to a partition.
void CopyNodeMeta(const Node& src, Node* dst) {
  dst->set_device(src.device());
  dst->set_output_dtype(src.output_dtype());
  dst->set_output_shape(src.output_shape());
  for (const auto& [key, value] : src.attrs()) {
    dst->SetAttr(key, value);
  }
}

}  // namespace

StatusOr<PartitionResult> PartitionGraph(const Graph& graph) {
  RDMADL_ASSIGN_OR_RETURN(std::vector<Node*> order, graph.TopologicalOrder());

  for (Node* node : order) {
    if (node->device().empty()) {
      return FailedPrecondition(StrCat("node ", node->name(), " has no device assignment"));
    }
    for (Node* ctrl : node->control_inputs()) {
      if (ctrl->device() != node->device()) {
        return Unimplemented(StrCat("control edge crosses devices: ", ctrl->name(), " -> ",
                                    node->name()));
      }
    }
  }

  PartitionResult result;
  std::map<std::string, Graph*> partition_by_device;
  auto get_partition = [&](const std::string& device) -> Graph* {
    auto it = partition_by_device.find(device);
    if (it != partition_by_device.end()) return it->second;
    result.partitions.push_back(GraphPartition{device, std::make_unique<Graph>()});
    Graph* g = result.partitions.back().graph.get();
    partition_by_device[device] = g;
    return g;
  };

  // Original node id -> its copy (in its own device's partition).
  std::unordered_map<int, Node*> copies;
  // (producer id, dst device) -> _Recv copy in the dst partition.
  std::map<std::pair<int, std::string>, Node*> recv_cache;

  for (Node* node : order) {
    Graph* part = get_partition(node->device());
    std::vector<NodeInput> inputs;
    inputs.reserve(node->inputs().size());

    for (const NodeInput& in : node->inputs()) {
      Node* producer = in.node;
      if (producer->device() == node->device()) {
        inputs.push_back(NodeInput{copies.at(producer->id()), in.index});
        continue;
      }
      // Cross-device edge: route through a _Send/_Recv pair, shared by all
      // consumers of |producer| on this device.
      auto cache_key = std::make_pair(producer->id(), node->device());
      auto cached = recv_cache.find(cache_key);
      if (cached != recv_cache.end()) {
        inputs.push_back(NodeInput{cached->second, 0});
        continue;
      }
      const std::string key =
          StrCat(producer->device(), "->", node->device(), ":", producer->name());

      Graph* src_part = get_partition(producer->device());
      RDMADL_ASSIGN_OR_RETURN(
          Node * send,
          src_part->AddNode(StrCat("_send_", producer->name(), "_to_", node->device()),
                            "_Send", std::vector<Node*>{copies.at(producer->id())}));
      send->set_device(producer->device());
      send->set_output_dtype(producer->output_dtype());
      send->set_output_shape(producer->output_shape());
      send->SetAttr("tensor_name", key);
      send->SetAttr("recv_device", node->device());

      RDMADL_ASSIGN_OR_RETURN(
          Node * recv, part->AddNode(StrCat("_recv_", producer->name(), "_at_",
                                            node->device()),
                                     "_Recv", std::vector<Node*>{}));
      recv->set_device(node->device());
      recv->set_output_dtype(producer->output_dtype());
      recv->set_output_shape(producer->output_shape());
      recv->SetAttr("tensor_name", key);
      recv->SetAttr("send_device", producer->device());

      TransferEdge edge;
      edge.key = key;
      edge.src_device = producer->device();
      edge.dst_device = node->device();
      edge.send_node = send->name();
      edge.recv_node = recv->name();
      edge.producer = producer->name();
      edge.dtype = producer->output_dtype();
      edge.shape = producer->output_shape();
      result.transfers.push_back(std::move(edge));

      recv_cache[cache_key] = recv;
      inputs.push_back(NodeInput{recv, 0});
    }

    RDMADL_ASSIGN_OR_RETURN(Node * copy, part->AddNodeWithInputs(node->name(), node->op(), inputs));
    CopyNodeMeta(*node, copy);
    copies[node->id()] = copy;
  }

  // Control edges (same-device by the check above).
  for (Node* node : order) {
    for (Node* ctrl : node->control_inputs()) {
      Graph* part = partition_by_device.at(node->device());
      RDMADL_RETURN_IF_ERROR(
          part->AddControlEdge(copies.at(ctrl->id()), copies.at(node->id())));
    }
  }

  return result;
}

}  // namespace graph
}  // namespace rdmadl
