// Typed attribute values attached to graph nodes (op parameters, placement
// hints, analyzer annotations like flops or rendezvous keys).
#ifndef RDMADL_SRC_GRAPH_ATTR_VALUE_H_
#define RDMADL_SRC_GRAPH_ATTR_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/tensor/dtype.h"
#include "src/tensor/shape.h"

namespace rdmadl {
namespace graph {

using AttrValue = std::variant<int64_t, double, std::string, bool, tensor::DType,
                               tensor::TensorShape, std::vector<int64_t>>;

}  // namespace graph
}  // namespace rdmadl

#endif  // RDMADL_SRC_GRAPH_ATTR_VALUE_H_
