#include "src/graph/op_registry.h"

#include <algorithm>

#include "src/util/strings.h"

namespace rdmadl {
namespace graph {

OpRegistry* OpRegistry::Global() {
  static OpRegistry* registry = new OpRegistry();
  return registry;
}

Status OpRegistry::Register(OpDef def) {
  if (def.name.empty()) {
    return InvalidArgument("op name must be non-empty");
  }
  if (ops_.count(def.name) > 0) {
    return AlreadyExists(StrCat("op already registered: ", def.name));
  }
  ops_[def.name] = std::move(def);
  return OkStatus();
}

const OpDef* OpRegistry::Find(const std::string& name) const {
  auto it = ops_.find(name);
  return it == ops_.end() ? nullptr : &it->second;
}

std::vector<std::string> OpRegistry::ListOps() const {
  std::vector<std::string> names;
  names.reserve(ops_.size());
  for (const auto& [name, def] : ops_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Status SameAsFirstInputShape(const Node& node,
                             const std::vector<tensor::TensorShape>& input_shapes,
                             tensor::TensorShape* output_shape) {
  if (input_shapes.empty()) {
    return InvalidArgument(StrCat("op ", node.op(), " expects at least one input"));
  }
  *output_shape = input_shapes[0];
  return OkStatus();
}

Status ShapeFromAttr(const Node& node, const std::vector<tensor::TensorShape>& input_shapes,
                     tensor::TensorShape* output_shape) {
  if (!node.HasAttr("shape")) {
    return InvalidArgument(StrCat("node ", node.name(), " missing 'shape' attr"));
  }
  *output_shape = node.GetAttr<tensor::TensorShape>("shape");
  return OkStatus();
}

Status ScalarShape(const Node& node, const std::vector<tensor::TensorShape>& input_shapes,
                   tensor::TensorShape* output_shape) {
  *output_shape = tensor::TensorShape{};
  return OkStatus();
}

}  // namespace graph
}  // namespace rdmadl
