// Registry of operator definitions: arity, statefulness, and the
// shape-inference function the analyzer uses to propagate static shapes
// through the graph (§3.4, "Preallocate data buffers").
#ifndef RDMADL_SRC_GRAPH_OP_REGISTRY_H_
#define RDMADL_SRC_GRAPH_OP_REGISTRY_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/graph.h"
#include "src/tensor/shape.h"
#include "src/util/status.h"

namespace rdmadl {
namespace graph {

// Computes the node's output shape from its input shapes. Input shapes may be
// partially unknown; the function should propagate what it can (emitting
// kUnknownDim where it cannot).
using ShapeFn = std::function<Status(const Node& node,
                                     const std::vector<tensor::TensorShape>& input_shapes,
                                     tensor::TensorShape* output_shape)>;

struct OpDef {
  std::string name;
  int min_inputs = 0;
  int max_inputs = 0;  // -1 = variadic.
  bool is_stateful = false;
  ShapeFn shape_fn;
};

class OpRegistry {
 public:
  static OpRegistry* Global();

  Status Register(OpDef def);
  const OpDef* Find(const std::string& name) const;
  std::vector<std::string> ListOps() const;

 private:
  std::unordered_map<std::string, OpDef> ops_;
};

// Helper for static registration blocks.
class OpRegistrar {
 public:
  explicit OpRegistrar(OpDef def) { CHECK_OK(OpRegistry::Global()->Register(std::move(def))); }
};

// ---- Reusable shape functions ----

// Output shape equals the first input's shape.
Status SameAsFirstInputShape(const Node& node,
                             const std::vector<tensor::TensorShape>& input_shapes,
                             tensor::TensorShape* output_shape);

// Output shape comes from the node's "shape" attribute.
Status ShapeFromAttr(const Node& node, const std::vector<tensor::TensorShape>& input_shapes,
                     tensor::TensorShape* output_shape);

// Scalar output.
Status ScalarShape(const Node& node, const std::vector<tensor::TensorShape>& input_shapes,
                   tensor::TensorShape* output_shape);

}  // namespace graph
}  // namespace rdmadl

#endif  // RDMADL_SRC_GRAPH_OP_REGISTRY_H_
