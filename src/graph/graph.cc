#include "src/graph/graph.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "src/util/strings.h"

namespace rdmadl {
namespace graph {

StatusOr<Node*> Graph::AddNodeWithInputs(const std::string& name, const std::string& op,
                                         std::vector<NodeInput> inputs) {
  if (name.empty()) {
    return InvalidArgument("node name must be non-empty");
  }
  if (by_name_.count(name) > 0) {
    return AlreadyExists(StrCat("duplicate node name: ", name));
  }
  for (const NodeInput& in : inputs) {
    if (in.node == nullptr) {
      return InvalidArgument(StrCat("null input to node ", name));
    }
  }
  auto node = std::unique_ptr<Node>(new Node(num_nodes(), name, op));
  node->inputs_ = std::move(inputs);
  for (const NodeInput& in : node->inputs_) {
    in.node->consumers_.push_back(node.get());
  }
  Node* raw = node.get();
  by_name_[name] = raw;
  nodes_.push_back(std::move(node));
  return raw;
}

StatusOr<Node*> Graph::AddNode(const std::string& name, const std::string& op,
                               std::vector<Node*> inputs) {
  std::vector<NodeInput> typed;
  typed.reserve(inputs.size());
  for (Node* n : inputs) typed.push_back(NodeInput{n, 0});
  return AddNodeWithInputs(name, op, std::move(typed));
}

Status Graph::AddControlEdge(Node* from, Node* to) {
  if (from == nullptr || to == nullptr) {
    return InvalidArgument("control edge endpoints must be non-null");
  }
  if (from == to) {
    return InvalidArgument("control edge to self");
  }
  to->control_inputs_.push_back(from);
  from->consumers_.push_back(to);
  return OkStatus();
}

Node* Graph::FindNode(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

StatusOr<std::vector<Node*>> Graph::TopologicalOrder() const {
  std::vector<int> in_degree(nodes_.size(), 0);
  for (const auto& node : nodes_) {
    in_degree[node->id()] =
        static_cast<int>(node->inputs().size() + node->control_inputs().size());
  }
  std::deque<Node*> ready;
  for (const auto& node : nodes_) {
    if (in_degree[node->id()] == 0) ready.push_back(node.get());
  }
  std::vector<Node*> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    Node* node = ready.front();
    ready.pop_front();
    order.push_back(node);
    for (Node* consumer : node->consumers()) {
      if (--in_degree[consumer->id()] == 0) ready.push_back(consumer);
    }
  }
  if (order.size() != nodes_.size()) {
    return FailedPrecondition("graph contains a cycle");
  }
  return order;
}

std::string Graph::DebugString() const {
  std::ostringstream os;
  os << "Graph{" << num_nodes() << " nodes\n";
  for (const auto& node : nodes_) {
    os << "  " << node->name() << " = " << node->op() << "(";
    for (size_t i = 0; i < node->inputs().size(); ++i) {
      if (i > 0) os << ", ";
      os << node->inputs()[i].node->name();
    }
    os << ")";
    if (!node->device().empty()) os << " @" << node->device();
    os << " " << node->output_shape().ToString() << "\n";
  }
  os << "}";
  return os.str();
}

}  // namespace graph
}  // namespace rdmadl
