// Graph partitioning (§2.1 / Figure 2): splits a placed graph into one
// subgraph per device and inserts paired _Send/_Recv nodes on every edge that
// crosses devices — exactly how TensorFlow materializes cross-server data
// flow. The returned TransferEdge records are what the RDMA-aware analyzer
// consumes to plan buffer preallocation and address distribution.
#ifndef RDMADL_SRC_GRAPH_PARTITION_H_
#define RDMADL_SRC_GRAPH_PARTITION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/status.h"

namespace rdmadl {
namespace graph {

struct GraphPartition {
  std::string device;
  std::unique_ptr<Graph> graph;
};

// One cross-device tensor edge, after partitioning.
struct TransferEdge {
  std::string key;          // Rendezvous key, unique per (producer, dst device).
  std::string src_device;
  std::string dst_device;
  std::string send_node;    // _Send node name in the source partition.
  std::string recv_node;    // _Recv node name in the destination partition.
  std::string producer;     // Original producer node name.
  tensor::DType dtype = tensor::DType::kFloat32;
  tensor::TensorShape shape;  // Static shape if the analyzer inferred one.
};

struct PartitionResult {
  std::vector<GraphPartition> partitions;
  std::vector<TransferEdge> transfers;
};

// Every node must have a device assigned. Control edges may not cross
// devices (the training drivers never create such edges; step-level
// synchronization is the session's job).
StatusOr<PartitionResult> PartitionGraph(const Graph& graph);

}  // namespace graph
}  // namespace rdmadl

#endif  // RDMADL_SRC_GRAPH_PARTITION_H_
