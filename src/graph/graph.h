// Data-flow graph: nodes are operator instances, edges carry tensors (§2.1).
//
// The graph is pure metadata — kernels live in src/ops/ and are instantiated
// by the executor. Shape/dtype annotations are filled in by the analyzer's
// static shape-inference pass (§3.4).
#ifndef RDMADL_SRC_GRAPH_GRAPH_H_
#define RDMADL_SRC_GRAPH_GRAPH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/attr_value.h"
#include "src/tensor/dtype.h"
#include "src/tensor/shape.h"
#include "src/util/status.h"

namespace rdmadl {
namespace graph {

class Graph;
class Node;

// A data input: output |index| of |node| (all current ops have one output,
// but the edge model keeps the index for fidelity).
struct NodeInput {
  Node* node = nullptr;
  int index = 0;
};

class Node {
 public:
  int id() const { return id_; }
  const std::string& name() const { return name_; }
  const std::string& op() const { return op_; }

  const std::vector<NodeInput>& inputs() const { return inputs_; }
  const std::vector<Node*>& control_inputs() const { return control_inputs_; }
  // Nodes consuming this node's output (including via control edges).
  const std::vector<Node*>& consumers() const { return consumers_; }

  // Placement: a device string like "worker:0" or "ps:1". Empty = unassigned.
  const std::string& device() const { return device_; }
  void set_device(std::string device) { device_ = std::move(device); }

  // ---- Attributes ----
  void SetAttr(const std::string& key, AttrValue value) { attrs_[key] = std::move(value); }
  bool HasAttr(const std::string& key) const { return attrs_.count(key) > 0; }
  template <typename T>
  T GetAttr(const std::string& key) const;
  template <typename T>
  T GetAttrOr(const std::string& key, T fallback) const;
  const std::map<std::string, AttrValue>& attrs() const { return attrs_; }

  // ---- Inference annotations (filled by the analyzer) ----
  tensor::DType output_dtype() const { return output_dtype_; }
  void set_output_dtype(tensor::DType dtype) { output_dtype_ = dtype; }
  const tensor::TensorShape& output_shape() const { return output_shape_; }
  void set_output_shape(tensor::TensorShape shape) { output_shape_ = std::move(shape); }
  // True when the output shape is fully known before execution starts.
  bool has_static_shape() const { return output_shape_.IsFullyDefined(); }

 private:
  friend class Graph;
  Node(int id, std::string name, std::string op)
      : id_(id), name_(std::move(name)), op_(std::move(op)) {}

  int id_;
  std::string name_;
  std::string op_;
  std::string device_;
  std::vector<NodeInput> inputs_;
  std::vector<Node*> control_inputs_;
  std::vector<Node*> consumers_;
  std::map<std::string, AttrValue> attrs_;
  tensor::DType output_dtype_ = tensor::DType::kFloat32;
  tensor::TensorShape output_shape_{tensor::kUnknownDim};  // Unknown until inferred.
};

class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // Adds a node; |name| must be unique within the graph.
  StatusOr<Node*> AddNode(const std::string& name, const std::string& op,
                          std::vector<Node*> inputs);
  // Variant taking explicit (node, output index) inputs.
  StatusOr<Node*> AddNodeWithInputs(const std::string& name, const std::string& op,
                                    std::vector<NodeInput> inputs);

  Status AddControlEdge(Node* from, Node* to);

  Node* FindNode(const std::string& name) const;
  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  // Nodes in a valid execution order; fails on cycles.
  StatusOr<std::vector<Node*>> TopologicalOrder() const;

  std::string DebugString() const;

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::string, Node*> by_name_;
};

// ---- Template implementations ----

template <typename T>
T Node::GetAttr(const std::string& key) const {
  auto it = attrs_.find(key);
  CHECK(it != attrs_.end()) << "node " << name_ << " missing attr '" << key << "'";
  const T* value = std::get_if<T>(&it->second);
  CHECK(value != nullptr) << "node " << name_ << " attr '" << key << "' has wrong type";
  return *value;
}

template <typename T>
T Node::GetAttrOr(const std::string& key, T fallback) const {
  auto it = attrs_.find(key);
  if (it == attrs_.end()) return fallback;
  const T* value = std::get_if<T>(&it->second);
  CHECK(value != nullptr) << "node " << name_ << " attr '" << key << "' has wrong type";
  return *value;
}

}  // namespace graph
}  // namespace rdmadl

#endif  // RDMADL_SRC_GRAPH_GRAPH_H_
