#include "src/models/model_spec.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace models {

using tensor::TensorShape;

uint64_t ModelSpec::TotalParamBytes() const {
  uint64_t total = 0;
  for (const LayerSpec& layer : layers) {
    for (const VariableSpec& var : layer.vars) total += var.bytes();
  }
  return total;
}

int ModelSpec::NumVariables() const {
  int count = 0;
  for (const LayerSpec& layer : layers) count += static_cast<int>(layer.vars.size());
  return count;
}

std::vector<VariableSpec> ModelSpec::AllVariables() const {
  std::vector<VariableSpec> out;
  for (const LayerSpec& layer : layers) {
    for (const VariableSpec& var : layer.vars) out.push_back(var);
  }
  return out;
}

namespace {

// Distributes per-sample compute time across layers proportionally to their
// parameter counts (with a floor so parameter-free paths still cost time).
void AssignCostShares(ModelSpec* spec) {
  double total = 0;
  std::vector<double> weights;
  for (const LayerSpec& layer : spec->layers) {
    double w = 0;
    for (const VariableSpec& var : layer.vars) {
      w += static_cast<double>(var.shape.num_elements());
    }
    w = std::max(w, 1000.0);
    weights.push_back(w);
    total += w;
  }
  for (size_t i = 0; i < spec->layers.size(); ++i) {
    spec->layers[i].cost_share = weights[i] / total;
  }
}

// Convenience: a layer holding one weight matrix + bias.
LayerSpec DenseLayer(const std::string& name, int64_t in, int64_t out) {
  LayerSpec layer;
  layer.name = name;
  layer.vars.push_back({name + "/W", TensorShape{in, out}});
  layer.vars.push_back({name + "/b", TensorShape{out}});
  layer.activation_dim = out;
  return layer;
}

LayerSpec ConvLayer(const std::string& name, int64_t k, int64_t cin, int64_t cout,
                    int64_t activation_dim) {
  LayerSpec layer;
  layer.name = name;
  layer.vars.push_back({name + "/W", TensorShape{k, k, cin, cout}});
  layer.vars.push_back({name + "/b", TensorShape{cout}});
  layer.activation_dim = activation_dim;
  return layer;
}

}  // namespace

ModelSpec AlexNet() {
  ModelSpec spec;
  spec.name = "AlexNet";
  spec.per_sample_time_ms = 7.61;
  spec.saturation_batch = 128;  // §5.2: execution time stable across batches.
  spec.table_size_mb = 176.42;
  spec.table_num_vars = 16;
  spec.input_dim = 224 * 224 * 3;
  spec.layers.push_back(ConvLayer("conv1", 11, 3, 96, 96 * 55 * 55));
  spec.layers.push_back(ConvLayer("conv2", 5, 96, 256, 256 * 27 * 27));
  spec.layers.push_back(ConvLayer("conv3", 3, 256, 384, 384 * 13 * 13));
  spec.layers.push_back(ConvLayer("conv4", 3, 384, 384, 384 * 13 * 13));
  spec.layers.push_back(ConvLayer("conv5", 3, 384, 256, 256 * 13 * 13));
  spec.layers.push_back(DenseLayer("fc6", 6400, 4096));
  spec.layers.push_back(DenseLayer("fc7", 4096, 3194));  // Width solved for 176.42 MB.
  spec.layers.push_back(DenseLayer("fc8", 3194, 1000));
  AssignCostShares(&spec);
  return spec;
}

ModelSpec InceptionV3() {
  // Inception-style generator at width multiplier 0.79: 5 stem convs, 11
  // blocks of 8 convs, 2x2 reduction convs, one classifier — 97 convs (W+b)
  // + fc (W+b) = 196 variables, 92.9 MB.
  constexpr double kWidth = 0.79;
  ModelSpec spec;
  spec.name = "Inception-v3";
  spec.per_sample_time_ms = 68.32;
  spec.saturation_batch = 32;
  spec.table_size_mb = 92.90;
  spec.table_num_vars = 196;
  spec.input_dim = 299 * 299 * 3;

  auto scaled = [](int c) { return std::max<int64_t>(8, static_cast<int64_t>(c * kWidth)); };
  int conv_index = 0;
  int64_t cin = 3;
  auto add_conv = [&](int64_t k, int64_t cout, int64_t spatial) {
    spec.layers.push_back(
        ConvLayer(StrCat("conv", conv_index++), k, cin, cout, cout * spatial));
    cin = cout;
  };
  // Stem.
  add_conv(3, scaled(32), 149 * 149);
  add_conv(3, scaled(32), 147 * 147);
  add_conv(3, scaled(64), 147 * 147);
  add_conv(1, scaled(80), 73 * 73);
  add_conv(3, scaled(192), 71 * 71);

  struct Block {
    int c1, c2, c3, c4;
  };
  const Block kBlocks[] = {{64, 96, 96, 32},    {64, 96, 96, 64},   {64, 96, 96, 64},
                           {128, 128, 192, 96}, {160, 160, 192, 96}, {160, 160, 192, 96},
                           {192, 192, 192, 96}, {192, 192, 256, 128}, {224, 224, 256, 128},
                           {256, 256, 320, 160}, {256, 256, 320, 160}};
  int64_t spatial = 35 * 35;
  for (int b = 0; b < 11; ++b) {
    const int64_t block_in = cin;
    const int64_t c1 = scaled(kBlocks[b].c1);
    const int64_t c2 = scaled(kBlocks[b].c2);
    const int64_t c3 = scaled(kBlocks[b].c3);
    const int64_t c4 = scaled(kBlocks[b].c4);
    // Branch 1: 1x1.
    cin = block_in;
    add_conv(1, c1, spatial);
    // Branch 2: 1x1 -> 3x3.
    cin = block_in;
    add_conv(1, c2, spatial);
    add_conv(3, c2, spatial);
    // Branch 3: 1x1 -> 3x3 -> 3x3.
    cin = block_in;
    add_conv(1, c3, spatial);
    add_conv(3, c3, spatial);
    add_conv(3, c3, spatial);
    // Branch 4: pool projection.
    cin = block_in;
    add_conv(1, c4, spatial);
    // Concatenated output fused by a 1x1.
    cin = c1 + c2 + c3 + c4;
    add_conv(1, cin, spatial);
    if (b == 3 || b == 7) {
      spatial /= 4;  // Grid reduction.
      add_conv(3, cin, spatial);
      add_conv(3, cin, spatial);
    }
  }
  spec.layers.push_back(DenseLayer("logits", cin, 1000));
  AssignCostShares(&spec);
  return spec;
}

ModelSpec Vgg16() {
  ModelSpec spec;
  spec.name = "VGGNet-16";
  spec.per_sample_time_ms = 30.92;
  spec.saturation_batch = 128;  // Communication-bound; flat compute (§5.2).
  spec.table_size_mb = 512.32;
  spec.table_num_vars = 32;
  spec.input_dim = 224 * 224 * 3;
  const int64_t channels[13][2] = {{3, 64},    {64, 64},   {64, 128},  {128, 128}, {128, 256},
                                   {256, 256}, {256, 256}, {256, 512}, {512, 512}, {512, 512},
                                   {512, 512}, {512, 512}, {512, 512}};
  const int64_t spatial[13] = {224 * 224, 224 * 224, 112 * 112, 112 * 112, 56 * 56,
                               56 * 56,   56 * 56,   28 * 28,   28 * 28,   28 * 28,
                               14 * 14,   14 * 14,   14 * 14};
  for (int i = 0; i < 13; ++i) {
    spec.layers.push_back(ConvLayer(StrCat("conv", i + 1), 3, channels[i][0], channels[i][1],
                                    channels[i][1] * spatial[i]));
  }
  spec.layers.push_back(DenseLayer("fc6", 24098, 4096));  // Input width solved for 512.32 MB.
  spec.layers.push_back(DenseLayer("fc7", 4096, 4096));
  spec.layers.push_back(DenseLayer("fc8", 4096, 1000));
  AssignCostShares(&spec);
  return spec;
}

namespace {

// Gated RNN builder shared by LSTM and GRU: |gates| x (W_x, W_h, b) with
// hidden width 1024, plus a 1000-way softmax.
ModelSpec GatedRnn(const std::string& name, int gates, double per_sample_ms,
                   double table_size_mb, int table_vars) {
  constexpr int64_t kHidden = 1024;
  ModelSpec spec;
  spec.name = name;
  spec.per_sample_time_ms = per_sample_ms;
  spec.saturation_batch = 32;
  spec.recurrent = true;
  spec.table_size_mb = table_size_mb;
  spec.table_num_vars = table_vars;
  spec.input_dim = kHidden;
  static const char* kGateNames[] = {"i", "f", "o", "c"};
  for (int g = 0; g < gates; ++g) {
    LayerSpec layer;
    layer.name = StrCat("gate_", kGateNames[g]);
    layer.vars.push_back({layer.name + "/Wx", TensorShape{kHidden, kHidden}});
    layer.vars.push_back({layer.name + "/Wh", TensorShape{kHidden, kHidden}});
    layer.vars.push_back({layer.name + "/b", TensorShape{kHidden}});
    layer.activation_dim = kHidden;
    spec.layers.push_back(layer);
  }
  spec.layers.push_back(DenseLayer("softmax", kHidden, 1000));
  AssignCostShares(&spec);
  return spec;
}

}  // namespace

ModelSpec Lstm() { return GatedRnn("LSTM", 4, 33.33, 35.93, 14); }
ModelSpec Gru() { return GatedRnn("GRU", 3, 30.44, 27.92, 11); }

ModelSpec Fcn5() {
  ModelSpec spec;
  spec.name = "FCN-5";
  spec.per_sample_time_ms = 4.88;
  spec.saturation_batch = 128;  // Communication-bound; flat compute (§5.2).
  spec.table_size_mb = 204.47;
  spec.table_num_vars = 10;
  spec.input_dim = 2342;  // Solved for 204.47 MB with hidden width 4096.
  spec.layers.push_back(DenseLayer("fc1", 2342, 4096));
  spec.layers.push_back(DenseLayer("fc2", 4096, 4096));
  spec.layers.push_back(DenseLayer("fc3", 4096, 4096));
  spec.layers.push_back(DenseLayer("fc4", 4096, 2048));
  spec.layers.push_back(DenseLayer("fc5", 2048, 1000));
  AssignCostShares(&spec);
  return spec;
}

std::vector<ModelSpec> AllBenchmarkModels() {
  return {AlexNet(), InceptionV3(), Vgg16(), Lstm(), Gru(), Fcn5()};
}

ModelSpec Cifar10() {
  // The TF CIFAR-10 tutorial model: 2 convs + 3 dense layers, ~4.5 MB —
  // small tensors, fast steps; convergence is compute/latency bound.
  ModelSpec spec;
  spec.name = "CIFAR";
  spec.per_sample_time_ms = 0.9;
  spec.saturation_batch = 128;
  spec.layers.push_back(ConvLayer("conv1", 5, 3, 64, 64 * 24 * 24));
  spec.layers.push_back(ConvLayer("conv2", 5, 64, 64, 64 * 12 * 12));
  spec.layers.push_back(DenseLayer("fc3", 2304, 384));
  spec.layers.push_back(DenseLayer("fc4", 384, 192));
  spec.layers.push_back(DenseLayer("fc5", 192, 10));
  spec.input_dim = 32 * 32 * 3;
  AssignCostShares(&spec);
  return spec;
}

ModelSpec Seq2Seq() {
  // Sequence-to-sequence translation (WMT-style): encoder + decoder LSTMs
  // with large embedding/softmax over a 40k vocabulary — communication-heavy
  // relative to its compute, like the paper's Figure 10(a) workload.
  constexpr int64_t kHidden = 1024;
  constexpr int64_t kVocab = 40000;
  ModelSpec spec;
  spec.name = "Seq2Seq";
  spec.per_sample_time_ms = 45.0;
  spec.saturation_batch = 32;
  spec.recurrent = true;
  spec.input_dim = kHidden;
  LayerSpec embed;
  embed.name = "embedding";
  embed.vars.push_back({"embedding/E", TensorShape{kVocab, kHidden}});
  embed.activation_dim = kHidden;
  spec.layers.push_back(embed);
  for (const char* side : {"enc", "dec"}) {
    for (int g = 0; g < 4; ++g) {
      LayerSpec layer;
      layer.name = StrCat(side, "_gate", g);
      layer.vars.push_back({layer.name + "/Wx", TensorShape{kHidden, kHidden}});
      layer.vars.push_back({layer.name + "/Wh", TensorShape{kHidden, kHidden}});
      layer.vars.push_back({layer.name + "/b", TensorShape{kHidden}});
      layer.activation_dim = kHidden;
      spec.layers.push_back(layer);
    }
  }
  spec.layers.push_back(DenseLayer("softmax", kHidden, kVocab));
  AssignCostShares(&spec);
  return spec;
}

ModelSpec SentenceEmbedding() {
  // The paper's production sentence-embedding task: two RNN towers over a
  // very large vocabulary. The 280k x 1024 embedding is a single 1.07 GB
  // variable tensor — the message that crashed TF's gRPC.RDMA path
  // (Figure 10(c) has no gRPC.RDMA curve).
  constexpr int64_t kHidden = 1024;
  constexpr int64_t kVocab = 280000;
  ModelSpec spec;
  spec.name = "SE";
  spec.per_sample_time_ms = 18.0;
  spec.saturation_batch = 32;
  spec.recurrent = true;
  spec.input_dim = kHidden;
  LayerSpec embed;
  embed.name = "embedding";
  embed.vars.push_back({"embedding/E", TensorShape{kVocab, kHidden}, /*shardable=*/false});
  embed.activation_dim = kHidden;
  spec.layers.push_back(embed);
  for (const char* tower : {"query", "doc"}) {
    for (int g = 0; g < 3; ++g) {
      LayerSpec layer;
      layer.name = StrCat(tower, "_gate", g);
      layer.vars.push_back({layer.name + "/Wx", TensorShape{kHidden, kHidden}});
      layer.vars.push_back({layer.name + "/Wh", TensorShape{kHidden, kHidden}});
      layer.vars.push_back({layer.name + "/b", TensorShape{kHidden}});
      layer.activation_dim = kHidden;
      spec.layers.push_back(layer);
    }
  }
  spec.layers.push_back(DenseLayer("proj", kHidden, 128));
  AssignCostShares(&spec);
  return spec;
}

}  // namespace models
}  // namespace rdmadl
