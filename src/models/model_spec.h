// Benchmark model zoo (Table 2 of the paper).
//
// Each ModelSpec describes a deep learning model as the communication layer
// sees it: the list of variable tensors (their shapes determine the exact
// per-step communication volume between workers and parameter servers), a
// per-layer structure used to build the data-flow graph, and a GPU compute
// profile (per-sample time + batch saturation) calibrated to Table 2.
//
// Layer dimensions were solved numerically so every model matches the paper's
// reported model size and variable-tensor count (tests assert < 0.5 % size
// error and exact variable counts):
//   AlexNet       176.42 MB, 16 vars  — classic 5-conv/3-fc AlexNet; fc7
//                 width solved to 3194.
//   Inception-v3   92.90 MB, 196 vars — inception-style generator (97 convs
//                 with W+b, one fc) at width multiplier 0.79.
//   VGGNet-16     512.32 MB, 32 vars  — standard 13-conv/3-fc VGG; fc6 input
//                 solved to 24098.
//   LSTM           35.93 MB, 14 vars  — hidden 1024, step 80: 4 gates ×
//                 (W_x, W_h, b) + softmax W/b. Matches exactly.
//   GRU            27.92 MB, 11 vars  — 3 gates × (W_x, W_h, b) + softmax.
//                 Matches exactly.
//   FCN-5         204.47 MB, 10 vars  — 5 weight layers, hidden 4096
//                 (input width solved to 2342).
#ifndef RDMADL_SRC_MODELS_MODEL_SPEC_H_
#define RDMADL_SRC_MODELS_MODEL_SPEC_H_

#include <string>
#include <vector>

#include "src/tensor/shape.h"

namespace rdmadl {
namespace models {

struct VariableSpec {
  std::string name;
  tensor::TensorShape shape;
  // Whether the training driver may partition this variable across parameter
  // servers (TF's min_max_variable_partitioner). The paper's production SE
  // model kept its >1 GB embedding as a single unpartitioned variable — which
  // is exactly what crashed the gRPC.RDMA transport (Figure 10c).
  bool shardable = true;

  uint64_t bytes() const { return shape.num_elements() * 4; }  // float32
};

struct LayerSpec {
  std::string name;
  std::vector<VariableSpec> vars;  // Parameters owned by this layer.
  int64_t activation_dim = 0;      // Output activation is [batch, activation_dim].
  double cost_share = 0.0;         // Fraction of the model's per-sample time.
};

struct ModelSpec {
  std::string name;
  std::vector<LayerSpec> layers;
  int64_t input_dim = 0;

  // GPU compute profile: per-sample time (Table 2) and the mini-batch size up
  // to which the GPU absorbs larger batches in constant time (§5.2:
  // AlexNet/VGG/FCN-5 stay flat through 64-128; Inception/LSTM/GRU grow past
  // 32).
  double per_sample_time_ms = 0.0;
  int saturation_batch = 32;

  // Recurrent models (BPTT over unrolled time steps): every weight gradient
  // accumulates across all time steps and only materializes after the full
  // backward pass, so gradient sends cannot overlap backward compute.
  bool recurrent = false;

  // Reference values from Table 2 (for verification and reports).
  double table_size_mb = 0.0;
  int table_num_vars = 0;

  uint64_t TotalParamBytes() const;
  int NumVariables() const;
  double SizeMb() const { return static_cast<double>(TotalParamBytes()) / (1024.0 * 1024.0); }
  std::vector<VariableSpec> AllVariables() const;
};

// The six Table 2 benchmarks.
ModelSpec AlexNet();
ModelSpec InceptionV3();
ModelSpec Vgg16();
ModelSpec Lstm();
ModelSpec Gru();
ModelSpec Fcn5();
std::vector<ModelSpec> AllBenchmarkModels();

// The three end-to-end convergence workloads of Figure 10. The SE model
// carries a >1 GB embedding variable, which is what crashed gRPC.RDMA in the
// paper.
ModelSpec Cifar10();
ModelSpec Seq2Seq();
ModelSpec SentenceEmbedding();

}  // namespace models
}  // namespace rdmadl

#endif  // RDMADL_SRC_MODELS_MODEL_SPEC_H_
