#include "src/train/ps_training.h"

#include <algorithm>
#include <utility>

#include "src/sim/fault.h"
#include "src/sim/trace.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace train {

using graph::Graph;
using graph::Node;
using models::LayerSpec;
using models::ModelSpec;
using models::VariableSpec;
using tensor::TensorShape;

const char* TrainingModeName(TrainingMode mode) {
  switch (mode) {
    case TrainingMode::kParameterServer:
      return "parameter-server";
    case TrainingMode::kAllReduce:
      return "all-reduce";
  }
  return "?";
}

const char* MechanismName(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kGrpcTcp:
      return "gRPC.TCP";
    case MechanismKind::kGrpcRdma:
      return "gRPC.RDMA";
    case MechanismKind::kRdmaCp:
      return "RDMA.cp";
    case MechanismKind::kRdmaZeroCopy:
      return "RDMA.zerocp";
  }
  return "?";
}

namespace {

// Per-sample forward/backward time split: the backward pass costs roughly
// twice the forward pass.
constexpr double kForwardFraction = 1.0 / 3.0;

// SGD-apply throughput (bytes/sec) used to annotate ApplySgd cost: on a
// parameter server the update is host-DRAM-bound (multi-threaded); in local
// mode it runs on the GPU at HBM rates and is nearly free.
constexpr double kPsApplyBytesPerSec = 20.0e9;
constexpr double kGpuApplyBytesPerSec = 300.0e9;

// A variable (shard) node and the device it lives on.
struct VarNode {
  Node* node;
  std::string device;
};

// Builds worker |w|'s replica — synthetic input, forward chain, backward
// chain with one gradient tensor per variable (shard), and an ApplySgd on
// each variable's own device — against the given variable placement. Shared
// by the parameter-server and all-reduce graph builders, which differ only in
// where the variables live.
Status BuildReplica(const ModelSpec& model, int w, int batch_size,
                    const std::vector<std::vector<VarNode>>& layer_vars,
                    double apply_bytes_per_sec, Graph* graph) {
  const double per_sample_ns = model.per_sample_time_ms * 1e6;
  const std::string dev = StrCat("worker:", w);
  auto name = [&](const std::string& suffix) { return StrCat("w", w, "/", suffix); };

  // Synthetic input (generated on the fly, §5.2 — no disk loading).
  RDMADL_ASSIGN_OR_RETURN(Node * input,
                          graph->AddNode(name("input"), "SimOp", std::vector<Node*>{}));
  input->SetAttr("shape", TensorShape{batch_size, model.input_dim});
  input->set_device(dev);

  // Forward chain. For recurrent models the very first unrolled time step
  // already touches every gate's weights, so forward compute cannot begin
  // until all recurrent weights have arrived (the softmax layer is outside
  // the recurrence).
  std::vector<Node*> activations;
  Node* prev = input;
  for (size_t l = 0; l < model.layers.size(); ++l) {
    const LayerSpec& layer = model.layers[l];
    std::vector<Node*> inputs{prev};
    for (const VarNode& var : layer_vars[l]) inputs.push_back(var.node);
    if (model.recurrent && l == 0) {
      for (size_t other = 1; other + 1 < model.layers.size(); ++other) {
        for (const VarNode& var : layer_vars[other]) inputs.push_back(var.node);
      }
    }
    RDMADL_ASSIGN_OR_RETURN(Node * fwd,
                            graph->AddNode(name(StrCat("fwd/", layer.name)), "SimOp", inputs));
    fwd->SetAttr("shape", TensorShape{batch_size, layer.activation_dim});
    fwd->SetAttr("cost_ns", per_sample_ns * layer.cost_share * kForwardFraction);
    fwd->set_device(dev);
    activations.push_back(fwd);
    prev = fwd;
  }

  // Loss gradient seed.
  RDMADL_ASSIGN_OR_RETURN(Node * d_top,
                          graph->AddNode(name("bwd/top"), "SimOp", std::vector<Node*>{prev}));
  d_top->SetAttr("shape", TensorShape{batch_size, model.layers.back().activation_dim});
  d_top->set_device(dev);

  // Backward chain: one gradient tensor per variable, plus the activation
  // gradient flowing to the previous layer. For recurrent models every
  // gradient accumulates over all unrolled time steps (BPTT), so grad
  // tensors only materialize once the whole backward chain has finished —
  // gradient sends then cannot overlap backward compute, matching real RNN
  // training. For feed-forward models gradients stream out layer by layer.
  Node* d_act = d_top;
  Node* bwd_tail = nullptr;
  std::vector<std::pair<Node*, const VarNode*>> deferred_grads;
  for (int l = static_cast<int>(model.layers.size()) - 1; l >= 0; --l) {
    const LayerSpec& layer = model.layers[l];
    Node* below = (l > 0) ? activations[l - 1] : input;
    const double layer_bwd_ns = per_sample_ns * layer.cost_share * (1.0 - kForwardFraction);
    const double per_grad_ns = layer_bwd_ns / (layer_vars[l].size() + 1);

    for (size_t v = 0; v < layer_vars[l].size(); ++v) {
      const VarNode& var = layer_vars[l][v];
      std::vector<Node*> grad_inputs{d_act, below};
      RDMADL_ASSIGN_OR_RETURN(
          Node * grad,
          graph->AddNode(name(StrCat("grad/", var.node->name())), "SimOp", grad_inputs));
      if (model.recurrent) deferred_grads.emplace_back(grad, &var);
      grad->SetAttr("shape", var.node->GetAttr<TensorShape>("shape"));
      grad->SetAttr("cost_ns", per_grad_ns);
      grad->set_device(dev);

      // The variable's owner applies this worker's gradient in place.
      RDMADL_ASSIGN_OR_RETURN(
          Node * apply, graph->AddNode(name(StrCat("apply/", var.node->name())), "ApplySgd",
                                       std::vector<Node*>{var.node, grad}));
      apply->SetAttr("learning_rate", 0.01);
      apply->SetAttr("cost_ns",
                     static_cast<double>(
                         var.node->GetAttr<TensorShape>("shape").num_elements()) *
                         4.0 / apply_bytes_per_sec * 1e9);
      apply->set_device(var.device);
    }
    if (l > 0) {
      std::vector<Node*> dx_inputs{d_act};
      for (const VarNode& var : layer_vars[l]) dx_inputs.push_back(var.node);
      RDMADL_ASSIGN_OR_RETURN(
          Node * dx, graph->AddNode(name(StrCat("bwd/", layer.name)), "SimOp", dx_inputs));
      dx->SetAttr("shape", TensorShape{batch_size, model.layers[l - 1].activation_dim});
      dx->SetAttr("cost_ns", per_grad_ns);
      dx->set_device(dev);
      d_act = dx;
      bwd_tail = dx;
    }
  }
  if (model.recurrent && bwd_tail != nullptr) {
    for (auto& [grad, var] : deferred_grads) {
      RDMADL_RETURN_IF_ERROR(graph->AddControlEdge(bwd_tail, grad));
    }
  }
  return OkStatus();
}

}  // namespace

// Variables larger than this are partitioned across parameter servers, as
// TensorFlow deployments of the era did with min_max_variable_partitioner:
// without it, a 400 MB fc layer turns one PS into the cluster hotspot.
constexpr uint64_t kMaxVariableShardBytes = 128ull << 20;

namespace {

// Shared core: variables sharded round-robin over |var_devices| (§5:
// "variable tensors ... are placed in parameter servers in a round-robin
// fashion"), one replica per listed worker machine (replica w<m> on device
// "worker:<m>" — the tag survives reconfiguration so checkpoint entries keep
// their names). Oversized variables are partitioned across the servers.
Status BuildShardedGraph(const ModelSpec& model, const std::vector<int>& worker_machines,
                         const std::vector<std::string>& var_devices, int batch_size,
                         double apply_bytes_per_sec, Graph* graph) {
  if (worker_machines.empty() || var_devices.empty() || batch_size < 1) {
    return InvalidArgument("workers, variable devices and batch size must be non-empty");
  }
  const int num_ps = static_cast<int>(var_devices.size());
  std::vector<std::vector<VarNode>> layer_vars(model.layers.size());
  int var_index = 0;
  for (size_t l = 0; l < model.layers.size(); ++l) {
    for (const VariableSpec& var : model.layers[l].vars) {
      const uint64_t total_elements = var.shape.num_elements();
      const int num_shards =
          !var.shardable
              ? 1
              : static_cast<int>(std::min<uint64_t>(
                    (var.bytes() + kMaxVariableShardBytes - 1) / kMaxVariableShardBytes,
                    std::max<uint64_t>(num_ps, 1)));
      const uint64_t base = total_elements / num_shards;
      uint64_t assigned = 0;
      for (int shard = 0; shard < num_shards; ++shard) {
        const uint64_t elements =
            (shard == num_shards - 1) ? total_elements - assigned : base;
        assigned += elements;
        const std::string shard_name =
            num_shards == 1 ? var.name : StrCat(var.name, "/part_", shard);
        const std::string& device = var_devices[var_index % num_ps];
        RDMADL_ASSIGN_OR_RETURN(
            Node * node, graph->AddNode(shard_name, "Variable", std::vector<Node*>{}));
        node->SetAttr("shape", TensorShape{static_cast<int64_t>(elements)});
        node->SetAttr("init", std::string("zeros"));
        node->set_device(device);
        layer_vars[l].push_back(VarNode{node, device});
        ++var_index;
      }
    }
  }

  for (int w : worker_machines) {
    RDMADL_RETURN_IF_ERROR(
        BuildReplica(model, w, batch_size, layer_vars, apply_bytes_per_sec, graph));
  }
  return OkStatus();
}

}  // namespace

Status BuildDataParallelGraph(const ModelSpec& model, int num_workers, int num_ps,
                              int batch_size, bool local_only, Graph* graph) {
  if (num_workers < 1 || num_ps < 1 || batch_size < 1) {
    return InvalidArgument("workers, ps and batch size must be positive");
  }
  if (local_only) {
    // The whole graph on one worker: variables unsharded, SGD at GPU rates.
    return BuildShardedGraph(model, {0}, {"worker:0"}, batch_size, kGpuApplyBytesPerSec,
                             graph);
  }
  std::vector<int> worker_machines(num_workers);
  for (int w = 0; w < num_workers; ++w) worker_machines[w] = w;
  std::vector<std::string> ps_devices;
  ps_devices.reserve(num_ps);
  for (int p = 0; p < num_ps; ++p) ps_devices.push_back(StrCat("ps:", p));
  return BuildShardedGraph(model, worker_machines, ps_devices, batch_size,
                           kPsApplyBytesPerSec, graph);
}

Status BuildDataParallelGraph(const ModelSpec& model,
                              const std::vector<int>& worker_machines,
                              const std::vector<std::string>& ps_devices, int batch_size,
                              Graph* graph) {
  return BuildShardedGraph(model, worker_machines, ps_devices, batch_size,
                           kPsApplyBytesPerSec, graph);
}

Status BuildAllReduceGraph(const ModelSpec& model,
                           const std::vector<int>& worker_machines, int batch_size,
                           Graph* graph) {
  if (worker_machines.empty() || batch_size < 1) {
    return InvalidArgument("workers and batch size must be positive");
  }
  // Every worker holds a private, unsharded replica of every variable and
  // applies SGD to it locally at GPU rates; the cross-worker gradient sum is
  // the driver's collective all-reduce, outside the graph.
  for (int w : worker_machines) {
    const std::string dev = StrCat("worker:", w);
    std::vector<std::vector<VarNode>> layer_vars(model.layers.size());
    for (size_t l = 0; l < model.layers.size(); ++l) {
      for (const VariableSpec& var : model.layers[l].vars) {
        RDMADL_ASSIGN_OR_RETURN(
            Node * node, graph->AddNode(StrCat("w", w, "/var/", var.name), "Variable",
                                        std::vector<Node*>{}));
        node->SetAttr("shape",
                      TensorShape{static_cast<int64_t>(var.shape.num_elements())});
        node->SetAttr("init", std::string("zeros"));
        node->set_device(dev);
        layer_vars[l].push_back(VarNode{node, dev});
      }
    }
    RDMADL_RETURN_IF_ERROR(
        BuildReplica(model, w, batch_size, layer_vars, kGpuApplyBytesPerSec, graph));
  }
  return OkStatus();
}

Status BuildAllReduceGraph(const ModelSpec& model, int num_workers, int batch_size,
                           Graph* graph) {
  if (num_workers < 1) return InvalidArgument("workers must be positive");
  std::vector<int> worker_machines(num_workers);
  for (int w = 0; w < num_workers; ++w) worker_machines[w] = w;
  return BuildAllReduceGraph(model, worker_machines, batch_size, graph);
}

TrainingDriver::TrainingDriver(TrainingConfig config) : config_(std::move(config)) {}
TrainingDriver::~TrainingDriver() = default;

void TrainingDriver::MakeMechanism() {
  session_.reset();  // The session references the mechanism; drop it first.
  zerocopy_.reset();
  rpc_.reset();
  mechanism_ = nullptr;
  switch (config_.mechanism) {
    case MechanismKind::kGrpcTcp:
      rpc_ = std::make_unique<comm::RpcMechanism>(cluster_.get(), net::Plane::kTcp);
      mechanism_ = rpc_.get();
      break;
    case MechanismKind::kGrpcRdma:
      rpc_ = std::make_unique<comm::RpcMechanism>(cluster_.get(), net::Plane::kRdma);
      mechanism_ = rpc_.get();
      break;
    case MechanismKind::kRdmaCp: {
      comm::ZeroCopyOptions options;
      options.graph_analysis = false;
      options.force_dynamic = config_.force_dynamic;
      zerocopy_ = std::make_unique<comm::ZeroCopyRdmaMechanism>(cluster_.get(), options);
      mechanism_ = zerocopy_.get();
      break;
    }
    case MechanismKind::kRdmaZeroCopy: {
      comm::ZeroCopyOptions options;
      options.force_dynamic = config_.force_dynamic;
      zerocopy_ = std::make_unique<comm::ZeroCopyRdmaMechanism>(cluster_.get(), options);
      mechanism_ = zerocopy_.get();
      break;
    }
  }
}

Status TrainingDriver::BuildAndSetupSession() {
  const bool all_reduce = config_.mode == TrainingMode::kAllReduce && !config_.local_only;
  graph_ = std::make_unique<Graph>();
  if (all_reduce) {
    RDMADL_RETURN_IF_ERROR(BuildAllReduceGraph(config_.model, worker_machines_,
                                               config_.batch_size, graph_.get()));
  } else if (config_.local_only) {
    RDMADL_RETURN_IF_ERROR(BuildDataParallelGraph(config_.model, 1, 1, config_.batch_size,
                                                  /*local_only=*/true, graph_.get()));
  } else {
    RDMADL_RETURN_IF_ERROR(BuildDataParallelGraph(config_.model, worker_machines_,
                                                  ps_devices_, config_.batch_size,
                                                  graph_.get()));
  }

  MakeMechanism();

  runtime::SessionOptions session_options;
  session_options.executor.num_workers = config_.executor_workers;
  session_options.executor.batch_multiplier = std::max(
      1.0, static_cast<double>(config_.batch_size) / config_.model.saturation_batch);
  session_options.step_timeout_ns = config_.step_timeout_ns;
  session_ = std::make_unique<runtime::DistributedSession>(cluster_.get(), mechanism_,
                                                           graph_.get(), session_options);
  return session_->Setup();
}

Status TrainingDriver::Initialize(int warmup_steps) {
  const bool all_reduce = config_.mode == TrainingMode::kAllReduce && !config_.local_only;
  const bool dedicated_ps =
      !all_reduce && !config_.local_only && config_.num_ps > 0;
  const int num_machines =
      config_.num_machines + (dedicated_ps ? config_.num_ps : 0);

  runtime::ClusterOptions cluster_options;
  cluster_options.num_machines = num_machines;
  cluster_options.cost = config_.cost;
  cluster_options.topology = config_.topology;
  cluster_options.mode = ops::ComputeMode::kSimulated;
  cluster_options.process_defaults.rdma_arena_bytes = 96ull << 30;  // Virtual.
  cluster_options.process_defaults.num_worker_contexts = config_.executor_workers;
  cluster_options.process_defaults.num_cqs = config_.num_cqs;
  cluster_options.process_defaults.num_qps_per_peer = config_.num_qps_per_peer;
  cluster_options.worker_tensors_on_gpu = config_.tensors_on_gpu;
  cluster_options.worker_gpudirect = config_.gpudirect;
  cluster_ = std::make_unique<runtime::Cluster>(cluster_options);

  worker_machines_.clear();
  ps_devices_.clear();
  ps_machine_of_.clear();
  for (int m = 0; m < config_.num_machines; ++m) {
    RDMADL_RETURN_IF_ERROR(cluster_->AddProcess(StrCat("worker:", m), m).status());
    worker_machines_.push_back(m);
    if (!config_.local_only && !all_reduce && !dedicated_ps) {
      const std::string ps_name = StrCat("ps:", m);
      RDMADL_RETURN_IF_ERROR(cluster_->AddProcess(ps_name, m).status());
      ps_devices_.push_back(ps_name);
      ps_machine_of_[ps_name] = m;
    }
  }
  if (dedicated_ps) {
    for (int p = 0; p < config_.num_ps; ++p) {
      const int machine = config_.num_machines + p;
      const std::string ps_name = StrCat("ps:", p);
      RDMADL_RETURN_IF_ERROR(cluster_->AddProcess(ps_name, machine).status());
      ps_devices_.push_back(ps_name);
      ps_machine_of_[ps_name] = machine;
    }
  }

  RDMADL_RETURN_IF_ERROR(BuildAndSetupSession());

  if (all_reduce) {
    allreduce_elements_ = config_.model.TotalParamBytes() / sizeof(float);
    collective::CollectiveOptions copts;
    copts.algorithm = config_.collective_algorithm;
    copts.transport = config_.mechanism == MechanismKind::kGrpcTcp
                          ? collective::Transport::kTcpStaging
                          : collective::Transport::kRdmaZeroCopy;
    copts.pipeline_depth = config_.collective_pipeline_depth;
    copts.materialize = false;  // Virtual gradient buffers: timing only.
    copts.num_cqs = config_.num_cqs;
    copts.op_timeout_ns = config_.step_timeout_ns;
    RDMADL_ASSIGN_OR_RETURN(
        collective_, collective::CollectiveGroup::Create(
                         cluster_->directory(), worker_machines_,
                         std::max<uint64_t>(allreduce_elements_, 1), copts));
  }

  if (config_.elastic) {
    std::vector<int> machines(num_machines);
    for (int m = 0; m < num_machines; ++m) machines[m] = m;
    RDMADL_ASSIGN_OR_RETURN(membership_,
                            control::MembershipService::Create(
                                cluster_->directory(), machines, config_.membership));
    membership_->Start();
    control::CheckpointOptions ckpt = config_.checkpoint;
    ckpt.interval_steps = config_.checkpoint_interval_steps;
    checkpoint_ = std::make_unique<control::CheckpointManager>(cluster_.get(), ckpt);
  }

  for (int i = 0; i < warmup_steps; ++i) {
    RDMADL_RETURN_IF_ERROR(RunStep());
  }
  return OkStatus();
}

namespace {

bool IsRetryableStepFailure(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kAborted ||
         status.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

Status TrainingDriver::RunStepOnce() {
  RDMADL_RETURN_IF_ERROR(session_->RunStep());
  if (collective_ == nullptr) return OkStatus();
  // Conservative bound: the all-reduce starts only after the whole compute
  // step (including local SGD applies) has finished.
  bool done = false;
  Status reduce_status;
  collective_->AllReduce(allreduce_elements_, [&](const Status& s) {
    reduce_status = s;
    done = true;
  });
  RDMADL_RETURN_IF_ERROR(
      cluster_->simulator()->RunUntilPredicate([&] { return done; }));
  return reduce_status;
}

Status TrainingDriver::QuiesceAfterFailedStep() {
  // Drain everything still scheduled: late completions of the dead step fire
  // into their epoch-guarded (no-op) closures instead of into the retry. The
  // failure detector's probe loop would re-arm forever, so it is paused for
  // the drain (its stale closures no-op too) and resumed after.
  if (membership_ != nullptr) membership_->Pause();
  RDMADL_RETURN_IF_ERROR(cluster_->simulator()->Run());
  for (const std::string& device : cluster_->device_names()) {
    RDMADL_RETURN_IF_ERROR(cluster_->host(device)->rdma_device()->RecoverChannels());
  }
  if (collective_ != nullptr) RDMADL_RETURN_IF_ERROR(collective_->ResetTransport());
  if (zerocopy_ != nullptr) zerocopy_->ResetTransientState();
  if (membership_ != nullptr) membership_->Resume();
  return OkStatus();
}

Status TrainingDriver::RunStep() {
  const int64_t step_start = cluster_->simulator()->Now();
  Status status = RunStepOnce();
  for (int attempt = 0; attempt < config_.max_step_retries; ++attempt) {
    if (status.ok() || !IsRetryableStepFailure(status)) break;
    // Fail-stop crash: the host never comes back, so a retry can only time
    // out again. Surface the typed error immediately.
    const sim::FaultInjector* injector = cluster_->fabric()->fault_injector();
    if (injector != nullptr) {
      const int64_t now = cluster_->simulator()->Now();
      for (const auto& [host, at_ns] : injector->crash_times()) {
        if (at_ns <= now) {
          // Drain abandoned events before surfacing the error so the cluster
          // is left quiescent (in-flight closures fire into their
          // epoch-guarded no-ops instead of lingering in the queue).
          Status quiesce = QuiesceAfterFailedStep();
          if (!quiesce.ok()) {
            LOG(WARNING) << "quiesce after crash detection failed: " << quiesce;
          }
          return Unavailable(
                     StrCat("host", host, " crashed at t=", at_ns,
                            "ns; step cannot complete (", status.message(), ")"))
              .WithFailedHost(host)
              .WithContextFrom(status);
        }
      }
    }
    LOG(WARNING) << "step failed (" << status << "); retry " << attempt + 1 << "/"
                 << config_.max_step_retries;
    RDMADL_RETURN_IF_ERROR(QuiesceAfterFailedStep());
    status = RunStepOnce();
  }
  // Completed steps feed the tail-latency histogram; the recorded duration
  // includes any retries (that is the latency a training loop observes).
  if (status.ok()) {
    step_latencies_.Record(cluster_->simulator()->Now() - step_start);
  }
  return status;
}

void TrainingDriver::PurgeMovedVariables(
    const std::string& device, const std::map<std::string, std::string>& var_device) {
  runtime::HostRuntime* host = cluster_->host(device);
  if (host == nullptr) return;
  ops::ResourceManager* rm = host->resources();
  std::vector<std::string> moved;
  for (const auto& [name, var] : rm->variables()) {
    auto it = var_device.find(name);
    if (it != var_device.end() && it->second != device) moved.push_back(name);
  }
  std::sort(moved.begin(), moved.end());
  for (const std::string& name : moved) rm->RemoveVariable(name);
}

Status TrainingDriver::RecoverFromFailure(ElasticReport* report) {
  // Freeze the detector and drain so the rebuild starts from a quiescent
  // cluster: no in-flight closure may touch a device we are about to replace.
  membership_->Pause();
  RDMADL_RETURN_IF_ERROR(cluster_->simulator()->Run());
  const int64_t recovery_start = cluster_->simulator()->Now();

  std::vector<int> dead;
  for (int d : membership_->dead_hosts()) {
    if (std::find(report->removed_hosts.begin(), report->removed_hosts.end(), d) ==
        report->removed_hosts.end()) {
      dead.push_back(d);
    }
  }
  for (int d : dead) {
    report->removed_hosts.push_back(d);
    worker_machines_.erase(
        std::remove(worker_machines_.begin(), worker_machines_.end(), d),
        worker_machines_.end());
    for (auto it = ps_devices_.begin(); it != ps_devices_.end();) {
      if (ps_machine_of_.at(*it) == d) {
        it = ps_devices_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (worker_machines_.empty()) {
    return FailedPrecondition("elastic recovery impossible: no surviving workers");
  }
  const bool all_reduce = config_.mode == TrainingMode::kAllReduce && !config_.local_only;
  if (!all_reduce && !config_.local_only && ps_devices_.empty()) {
    return FailedPrecondition("elastic recovery impossible: no surviving parameter servers");
  }

  // Detection latency for the report: confirmation time minus the injected
  // crash time (reporting only — recovery never consults the injector).
  const sim::FaultInjector* injector = cluster_->fabric()->fault_injector();
  if (injector != nullptr) {
    for (int d : dead) {
      auto it = injector->crash_times().find(d);
      if (it != injector->crash_times().end()) {
        report->last_detection_latency_ns =
            membership_->confirmed_dead_at_ns(d) - it->second;
      }
    }
  }

  // Clean channels on every survivor before the new session's setup traffic.
  for (int m : worker_machines_) {
    RDMADL_RETURN_IF_ERROR(
        cluster_->host(StrCat("worker:", m))->rdma_device()->RecoverChannels());
  }
  for (const std::string& ps : ps_devices_) {
    RDMADL_RETURN_IF_ERROR(cluster_->host(ps)->rdma_device()->RecoverChannels());
  }

  // Rebuild graph + mechanism + session over the survivors. PS shards
  // reassign by the round-robin over the shrunken ps_devices_; all-reduce
  // replicas of dead workers simply disappear.
  RDMADL_RETURN_IF_ERROR(BuildAndSetupSession());
  if (collective_ != nullptr) {
    RDMADL_RETURN_IF_ERROR(collective_->Reconfigure(worker_machines_));
  }

  // Roll back to the last consistent cut, retargeted to the new placement.
  // Reassignment can move a shard between two *surviving* servers (the
  // round-robin re-deals over the shrunken list), so first purge any copy a
  // survivor holds for a variable that now lives elsewhere — otherwise the
  // next snapshot would see the same name on two live devices.
  std::map<std::string, std::string> var_device;
  for (const auto& node : graph_->nodes()) {
    if (node->op() == "Variable") var_device[node->name()] = node->device();
  }
  for (int m : worker_machines_) {
    PurgeMovedVariables(StrCat("worker:", m), var_device);
  }
  for (const std::string& ps : ps_devices_) {
    PurgeMovedVariables(ps, var_device);
  }
  if (checkpoint_->has_checkpoint()) {
    RDMADL_RETURN_IF_ERROR(checkpoint_->Restore(var_device));
  }

  ++report->reconfigurations;
  membership_->Resume();
  report->last_recovery_ns = cluster_->simulator()->Now() - recovery_start;
  sim::TraceInstant("elastic",
                    StrCat("reconfigured: ", worker_machines_.size(), " workers, ",
                           ps_devices_.size(), " ps"),
                    cluster_->simulator()->Now());
  return OkStatus();
}

StatusOr<ElasticReport> TrainingDriver::RunElastic(int steps) {
  if (!config_.elastic || membership_ == nullptr || checkpoint_ == nullptr) {
    return FailedPrecondition("RunElastic requires TrainingConfig::elastic");
  }
  CHECK_GT(steps, 0);
  ElasticReport report;
  report.requested_steps = steps;
  const int64_t run_start = cluster_->simulator()->Now();

  // Snapshots are scoped to the surviving membership: a dead server's
  // ResourceManager still holds the shards that were reassigned away from it.
  auto live_devices = [&] {
    std::vector<std::string> devices;
    for (int m : worker_machines_) devices.push_back(StrCat("worker:", m));
    for (const std::string& ps : ps_devices_) devices.push_back(ps);
    return devices;
  };

  // A checkpoint always exists, so the first rollback never restarts from
  // scratch further back than the beginning of this run.
  if (!checkpoint_->has_checkpoint()) {
    RDMADL_RETURN_IF_ERROR(
        checkpoint_->Snapshot(/*step=*/0, /*samples=*/0, live_devices()));
  }

  // Hosts already reconfigured away stay kDead in the membership view
  // forever; only a death we have not yet handled triggers (re)recovery.
  auto unhandled_death = [&] {
    for (int d : membership_->dead_hosts()) {
      if (std::find(report.removed_hosts.begin(), report.removed_hosts.end(), d) ==
          report.removed_hosts.end()) {
        return true;
      }
    }
    return false;
  };

  int completed = 0;
  double samples = 0;
  int transient_retries = 0;
  while (completed < steps) {
    // A death confirmed during (or right after) a successful step still
    // requires reconfiguration before the next step can run.
    if (unhandled_death()) {
      const int before = completed;
      RDMADL_RETURN_IF_ERROR(RecoverFromFailure(&report));
      completed = static_cast<int>(checkpoint_->step());
      samples = checkpoint_->samples();
      report.steps_rolled_back += before - completed;
      continue;
    }

    Status status = RunStepOnce();
    if (status.ok()) {
      ++completed;
      transient_retries = 0;
      samples += static_cast<double>(config_.batch_size) * worker_machines_.size();
      if (checkpoint_->ShouldSnapshot(completed)) {
        RDMADL_RETURN_IF_ERROR(checkpoint_->Snapshot(completed, samples, live_devices()));
      }
      continue;
    }
    if (!IsRetryableStepFailure(status)) return status;

    // Quiesce, then give the detector its bounded window to turn the step
    // failure into a confirmed membership change. No injector peeking here:
    // the detector has to earn the verdict through missed leases.
    RDMADL_RETURN_IF_ERROR(QuiesceAfterFailedStep());
    if (!unhandled_death()) {
      const int64_t deadline =
          cluster_->simulator()->Now() + membership_->detection_bound_ns();
      Status wait = cluster_->simulator()->RunUntilPredicateOrDeadline(
          unhandled_death, deadline);
      if (!wait.ok() && wait.code() != StatusCode::kDeadlineExceeded &&
          wait.code() != StatusCode::kFailedPrecondition) {
        return wait;
      }
    }
    if (!unhandled_death()) {
      // Nobody died within the bound: transient failure, retry the step.
      if (transient_retries++ >= std::max(config_.max_step_retries, 1)) {
        return status;
      }
      LOG(WARNING) << "elastic step failed (" << status
                   << "); no death confirmed, retrying";
    }
    // Loop: either reconfigure (death confirmed) or retry the step.
  }

  report.completed_steps = completed;
  report.samples_processed = samples;
  report.elapsed_ns = cluster_->simulator()->Now() - run_start;
  return report;
}

StatusOr<double> TrainingDriver::MeasureStepTimeMs(int steps) {
  CHECK_GT(steps, 0);
  const int64_t start = cluster_->simulator()->Now();
  for (int i = 0; i < steps; ++i) {
    RDMADL_RETURN_IF_ERROR(RunStep());
  }
  const int64_t elapsed = cluster_->simulator()->Now() - start;
  return static_cast<double>(elapsed) / steps / 1e6;
}

StatusOr<double> TrainingDriver::MeasureThroughput(int steps) {
  RDMADL_ASSIGN_OR_RETURN(double ms, MeasureStepTimeMs(steps));
  return 1000.0 / ms;  // Mini-batches per second (per worker, synchronized).
}

}  // namespace train
}  // namespace rdmadl
