#include "src/train/ps_training.h"

#include <algorithm>
#include <utility>

#include "src/sim/fault.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace train {

using graph::Graph;
using graph::Node;
using models::LayerSpec;
using models::ModelSpec;
using models::VariableSpec;
using tensor::TensorShape;

const char* TrainingModeName(TrainingMode mode) {
  switch (mode) {
    case TrainingMode::kParameterServer:
      return "parameter-server";
    case TrainingMode::kAllReduce:
      return "all-reduce";
  }
  return "?";
}

const char* MechanismName(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kGrpcTcp:
      return "gRPC.TCP";
    case MechanismKind::kGrpcRdma:
      return "gRPC.RDMA";
    case MechanismKind::kRdmaCp:
      return "RDMA.cp";
    case MechanismKind::kRdmaZeroCopy:
      return "RDMA.zerocp";
  }
  return "?";
}

namespace {

// Per-sample forward/backward time split: the backward pass costs roughly
// twice the forward pass.
constexpr double kForwardFraction = 1.0 / 3.0;

// SGD-apply throughput (bytes/sec) used to annotate ApplySgd cost: on a
// parameter server the update is host-DRAM-bound (multi-threaded); in local
// mode it runs on the GPU at HBM rates and is nearly free.
constexpr double kPsApplyBytesPerSec = 20.0e9;
constexpr double kGpuApplyBytesPerSec = 300.0e9;

// A variable (shard) node and the device it lives on.
struct VarNode {
  Node* node;
  std::string device;
};

// Builds worker |w|'s replica — synthetic input, forward chain, backward
// chain with one gradient tensor per variable (shard), and an ApplySgd on
// each variable's own device — against the given variable placement. Shared
// by the parameter-server and all-reduce graph builders, which differ only in
// where the variables live.
Status BuildReplica(const ModelSpec& model, int w, int batch_size,
                    const std::vector<std::vector<VarNode>>& layer_vars,
                    double apply_bytes_per_sec, Graph* graph) {
  const double per_sample_ns = model.per_sample_time_ms * 1e6;
  const std::string dev = StrCat("worker:", w);
  auto name = [&](const std::string& suffix) { return StrCat("w", w, "/", suffix); };

  // Synthetic input (generated on the fly, §5.2 — no disk loading).
  RDMADL_ASSIGN_OR_RETURN(Node * input,
                          graph->AddNode(name("input"), "SimOp", std::vector<Node*>{}));
  input->SetAttr("shape", TensorShape{batch_size, model.input_dim});
  input->set_device(dev);

  // Forward chain. For recurrent models the very first unrolled time step
  // already touches every gate's weights, so forward compute cannot begin
  // until all recurrent weights have arrived (the softmax layer is outside
  // the recurrence).
  std::vector<Node*> activations;
  Node* prev = input;
  for (size_t l = 0; l < model.layers.size(); ++l) {
    const LayerSpec& layer = model.layers[l];
    std::vector<Node*> inputs{prev};
    for (const VarNode& var : layer_vars[l]) inputs.push_back(var.node);
    if (model.recurrent && l == 0) {
      for (size_t other = 1; other + 1 < model.layers.size(); ++other) {
        for (const VarNode& var : layer_vars[other]) inputs.push_back(var.node);
      }
    }
    RDMADL_ASSIGN_OR_RETURN(Node * fwd,
                            graph->AddNode(name(StrCat("fwd/", layer.name)), "SimOp", inputs));
    fwd->SetAttr("shape", TensorShape{batch_size, layer.activation_dim});
    fwd->SetAttr("cost_ns", per_sample_ns * layer.cost_share * kForwardFraction);
    fwd->set_device(dev);
    activations.push_back(fwd);
    prev = fwd;
  }

  // Loss gradient seed.
  RDMADL_ASSIGN_OR_RETURN(Node * d_top,
                          graph->AddNode(name("bwd/top"), "SimOp", std::vector<Node*>{prev}));
  d_top->SetAttr("shape", TensorShape{batch_size, model.layers.back().activation_dim});
  d_top->set_device(dev);

  // Backward chain: one gradient tensor per variable, plus the activation
  // gradient flowing to the previous layer. For recurrent models every
  // gradient accumulates over all unrolled time steps (BPTT), so grad
  // tensors only materialize once the whole backward chain has finished —
  // gradient sends then cannot overlap backward compute, matching real RNN
  // training. For feed-forward models gradients stream out layer by layer.
  Node* d_act = d_top;
  Node* bwd_tail = nullptr;
  std::vector<std::pair<Node*, const VarNode*>> deferred_grads;
  for (int l = static_cast<int>(model.layers.size()) - 1; l >= 0; --l) {
    const LayerSpec& layer = model.layers[l];
    Node* below = (l > 0) ? activations[l - 1] : input;
    const double layer_bwd_ns = per_sample_ns * layer.cost_share * (1.0 - kForwardFraction);
    const double per_grad_ns = layer_bwd_ns / (layer_vars[l].size() + 1);

    for (size_t v = 0; v < layer_vars[l].size(); ++v) {
      const VarNode& var = layer_vars[l][v];
      std::vector<Node*> grad_inputs{d_act, below};
      RDMADL_ASSIGN_OR_RETURN(
          Node * grad,
          graph->AddNode(name(StrCat("grad/", var.node->name())), "SimOp", grad_inputs));
      if (model.recurrent) deferred_grads.emplace_back(grad, &var);
      grad->SetAttr("shape", var.node->GetAttr<TensorShape>("shape"));
      grad->SetAttr("cost_ns", per_grad_ns);
      grad->set_device(dev);

      // The variable's owner applies this worker's gradient in place.
      RDMADL_ASSIGN_OR_RETURN(
          Node * apply, graph->AddNode(name(StrCat("apply/", var.node->name())), "ApplySgd",
                                       std::vector<Node*>{var.node, grad}));
      apply->SetAttr("learning_rate", 0.01);
      apply->SetAttr("cost_ns",
                     static_cast<double>(
                         var.node->GetAttr<TensorShape>("shape").num_elements()) *
                         4.0 / apply_bytes_per_sec * 1e9);
      apply->set_device(var.device);
    }
    if (l > 0) {
      std::vector<Node*> dx_inputs{d_act};
      for (const VarNode& var : layer_vars[l]) dx_inputs.push_back(var.node);
      RDMADL_ASSIGN_OR_RETURN(
          Node * dx, graph->AddNode(name(StrCat("bwd/", layer.name)), "SimOp", dx_inputs));
      dx->SetAttr("shape", TensorShape{batch_size, model.layers[l - 1].activation_dim});
      dx->SetAttr("cost_ns", per_grad_ns);
      dx->set_device(dev);
      d_act = dx;
      bwd_tail = dx;
    }
  }
  if (model.recurrent && bwd_tail != nullptr) {
    for (auto& [grad, var] : deferred_grads) {
      RDMADL_RETURN_IF_ERROR(graph->AddControlEdge(bwd_tail, grad));
    }
  }
  return OkStatus();
}

}  // namespace

// Variables larger than this are partitioned across parameter servers, as
// TensorFlow deployments of the era did with min_max_variable_partitioner:
// without it, a 400 MB fc layer turns one PS into the cluster hotspot.
constexpr uint64_t kMaxVariableShardBytes = 128ull << 20;

Status BuildDataParallelGraph(const ModelSpec& model, int num_workers, int num_ps,
                              int batch_size, bool local_only, Graph* graph) {
  if (num_workers < 1 || num_ps < 1 || batch_size < 1) {
    return InvalidArgument("workers, ps and batch size must be positive");
  }

  // Variables, sharded round-robin across parameter servers (§5: "variable
  // tensors ... are placed in parameter servers in a round-robin fashion"),
  // with oversized variables partitioned into <= 64 MB slices.
  std::vector<std::vector<VarNode>> layer_vars(model.layers.size());
  int var_index = 0;
  for (size_t l = 0; l < model.layers.size(); ++l) {
    for (const VariableSpec& var : model.layers[l].vars) {
      const uint64_t total_elements = var.shape.num_elements();
      const int num_shards =
          !var.shardable
              ? 1
              : static_cast<int>(std::min<uint64_t>(
                    (var.bytes() + kMaxVariableShardBytes - 1) / kMaxVariableShardBytes,
                    std::max<uint64_t>(local_only ? 1 : num_ps, 1)));
      const uint64_t base = total_elements / num_shards;
      uint64_t assigned = 0;
      for (int shard = 0; shard < num_shards; ++shard) {
        const uint64_t elements =
            (shard == num_shards - 1) ? total_elements - assigned : base;
        assigned += elements;
        const std::string shard_name =
            num_shards == 1 ? var.name : StrCat(var.name, "/part_", shard);
        const std::string device =
            local_only ? "worker:0" : StrCat("ps:", var_index % num_ps);
        RDMADL_ASSIGN_OR_RETURN(
            Node * node, graph->AddNode(shard_name, "Variable", std::vector<Node*>{}));
        node->SetAttr("shape", TensorShape{static_cast<int64_t>(elements)});
        node->SetAttr("init", std::string("zeros"));
        node->set_device(device);
        layer_vars[l].push_back(VarNode{node, device});
        ++var_index;
      }
    }
  }

  const int replicas = local_only ? 1 : num_workers;
  for (int w = 0; w < replicas; ++w) {
    RDMADL_RETURN_IF_ERROR(
        BuildReplica(model, w, batch_size, layer_vars,
                     local_only ? kGpuApplyBytesPerSec : kPsApplyBytesPerSec, graph));
  }
  return OkStatus();
}

Status BuildAllReduceGraph(const ModelSpec& model, int num_workers, int batch_size,
                           Graph* graph) {
  if (num_workers < 1 || batch_size < 1) {
    return InvalidArgument("workers and batch size must be positive");
  }
  // Every worker holds a private, unsharded replica of every variable and
  // applies SGD to it locally at GPU rates; the cross-worker gradient sum is
  // the driver's collective all-reduce, outside the graph.
  for (int w = 0; w < num_workers; ++w) {
    const std::string dev = StrCat("worker:", w);
    std::vector<std::vector<VarNode>> layer_vars(model.layers.size());
    for (size_t l = 0; l < model.layers.size(); ++l) {
      for (const VariableSpec& var : model.layers[l].vars) {
        RDMADL_ASSIGN_OR_RETURN(
            Node * node, graph->AddNode(StrCat("w", w, "/var/", var.name), "Variable",
                                        std::vector<Node*>{}));
        node->SetAttr("shape",
                      TensorShape{static_cast<int64_t>(var.shape.num_elements())});
        node->SetAttr("init", std::string("zeros"));
        node->set_device(dev);
        layer_vars[l].push_back(VarNode{node, dev});
      }
    }
    RDMADL_RETURN_IF_ERROR(
        BuildReplica(model, w, batch_size, layer_vars, kGpuApplyBytesPerSec, graph));
  }
  return OkStatus();
}

TrainingDriver::TrainingDriver(TrainingConfig config) : config_(std::move(config)) {}
TrainingDriver::~TrainingDriver() = default;

Status TrainingDriver::Initialize(int warmup_steps) {
  runtime::ClusterOptions cluster_options;
  cluster_options.num_machines = config_.num_machines;
  cluster_options.cost = config_.cost;
  cluster_options.mode = ops::ComputeMode::kSimulated;
  cluster_options.process_defaults.rdma_arena_bytes = 96ull << 30;  // Virtual.
  cluster_options.process_defaults.num_worker_contexts = config_.executor_workers;
  cluster_options.process_defaults.num_cqs = config_.num_cqs;
  cluster_options.process_defaults.num_qps_per_peer = config_.num_qps_per_peer;
  cluster_options.worker_tensors_on_gpu = config_.tensors_on_gpu;
  cluster_options.worker_gpudirect = config_.gpudirect;
  cluster_ = std::make_unique<runtime::Cluster>(cluster_options);

  const bool all_reduce = config_.mode == TrainingMode::kAllReduce && !config_.local_only;
  for (int m = 0; m < config_.num_machines; ++m) {
    RDMADL_RETURN_IF_ERROR(cluster_->AddProcess(StrCat("worker:", m), m).status());
    if (!config_.local_only && !all_reduce) {
      RDMADL_RETURN_IF_ERROR(cluster_->AddProcess(StrCat("ps:", m), m).status());
    }
  }

  graph_ = std::make_unique<Graph>();
  if (all_reduce) {
    RDMADL_RETURN_IF_ERROR(BuildAllReduceGraph(config_.model, config_.num_machines,
                                               config_.batch_size, graph_.get()));
  } else {
    RDMADL_RETURN_IF_ERROR(BuildDataParallelGraph(config_.model, config_.num_machines,
                                                  config_.num_machines, config_.batch_size,
                                                  config_.local_only, graph_.get()));
  }

  switch (config_.mechanism) {
    case MechanismKind::kGrpcTcp:
      rpc_ = std::make_unique<comm::RpcMechanism>(cluster_.get(), net::Plane::kTcp);
      mechanism_ = rpc_.get();
      break;
    case MechanismKind::kGrpcRdma:
      rpc_ = std::make_unique<comm::RpcMechanism>(cluster_.get(), net::Plane::kRdma);
      mechanism_ = rpc_.get();
      break;
    case MechanismKind::kRdmaCp: {
      comm::ZeroCopyOptions options;
      options.graph_analysis = false;
      options.force_dynamic = config_.force_dynamic;
      zerocopy_ = std::make_unique<comm::ZeroCopyRdmaMechanism>(cluster_.get(), options);
      mechanism_ = zerocopy_.get();
      break;
    }
    case MechanismKind::kRdmaZeroCopy: {
      comm::ZeroCopyOptions options;
      options.force_dynamic = config_.force_dynamic;
      zerocopy_ = std::make_unique<comm::ZeroCopyRdmaMechanism>(cluster_.get(), options);
      mechanism_ = zerocopy_.get();
      break;
    }
  }

  runtime::SessionOptions session_options;
  session_options.executor.num_workers = config_.executor_workers;
  session_options.executor.batch_multiplier = std::max(
      1.0, static_cast<double>(config_.batch_size) / config_.model.saturation_batch);
  session_options.step_timeout_ns = config_.step_timeout_ns;
  session_ = std::make_unique<runtime::DistributedSession>(cluster_.get(), mechanism_,
                                                           graph_.get(), session_options);
  RDMADL_RETURN_IF_ERROR(session_->Setup());

  if (all_reduce) {
    allreduce_elements_ = config_.model.TotalParamBytes() / sizeof(float);
    std::vector<int> hosts(config_.num_machines);
    for (int m = 0; m < config_.num_machines; ++m) hosts[m] = m;
    collective::CollectiveOptions copts;
    copts.algorithm = config_.collective_algorithm;
    copts.transport = config_.mechanism == MechanismKind::kGrpcTcp
                          ? collective::Transport::kTcpStaging
                          : collective::Transport::kRdmaZeroCopy;
    copts.pipeline_depth = config_.collective_pipeline_depth;
    copts.materialize = false;  // Virtual gradient buffers: timing only.
    copts.num_cqs = config_.num_cqs;
    copts.op_timeout_ns = config_.step_timeout_ns;
    RDMADL_ASSIGN_OR_RETURN(
        collective_, collective::CollectiveGroup::Create(
                         cluster_->directory(), hosts,
                         std::max<uint64_t>(allreduce_elements_, 1), copts));
  }

  for (int i = 0; i < warmup_steps; ++i) {
    RDMADL_RETURN_IF_ERROR(RunStep());
  }
  return OkStatus();
}

namespace {

bool IsRetryableStepFailure(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kAborted ||
         status.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

Status TrainingDriver::RunStepOnce() {
  RDMADL_RETURN_IF_ERROR(session_->RunStep());
  if (collective_ == nullptr) return OkStatus();
  // Conservative bound: the all-reduce starts only after the whole compute
  // step (including local SGD applies) has finished.
  bool done = false;
  Status reduce_status;
  collective_->AllReduce(allreduce_elements_, [&](const Status& s) {
    reduce_status = s;
    done = true;
  });
  RDMADL_RETURN_IF_ERROR(
      cluster_->simulator()->RunUntilPredicate([&] { return done; }));
  return reduce_status;
}

Status TrainingDriver::QuiesceAfterFailedStep() {
  // Drain everything still scheduled: late completions of the dead step fire
  // into their epoch-guarded (no-op) closures instead of into the retry.
  RDMADL_RETURN_IF_ERROR(cluster_->simulator()->Run());
  for (const std::string& device : cluster_->device_names()) {
    RDMADL_RETURN_IF_ERROR(cluster_->host(device)->rdma_device()->RecoverChannels());
  }
  if (collective_ != nullptr) RDMADL_RETURN_IF_ERROR(collective_->ResetTransport());
  if (zerocopy_ != nullptr) zerocopy_->ResetTransientState();
  return OkStatus();
}

Status TrainingDriver::RunStep() {
  Status status = RunStepOnce();
  for (int attempt = 0; attempt < config_.max_step_retries; ++attempt) {
    if (status.ok() || !IsRetryableStepFailure(status)) break;
    // Fail-stop crash: the host never comes back, so a retry can only time
    // out again. Surface the typed error immediately.
    const sim::FaultInjector* injector = cluster_->fabric()->fault_injector();
    if (injector != nullptr) {
      const int64_t now = cluster_->simulator()->Now();
      for (const auto& [host, at_ns] : injector->crash_times()) {
        if (at_ns <= now) {
          // Drain abandoned events before surfacing the error so the cluster
          // is left quiescent (in-flight closures fire into their
          // epoch-guarded no-ops instead of lingering in the queue).
          Status quiesce = QuiesceAfterFailedStep();
          if (!quiesce.ok()) {
            LOG(WARNING) << "quiesce after crash detection failed: " << quiesce;
          }
          return Unavailable(
              StrCat("host", host, " crashed at t=", at_ns, "ns; step cannot complete (",
                     status.message(), ")"));
        }
      }
    }
    LOG(WARNING) << "step failed (" << status << "); retry " << attempt + 1 << "/"
                 << config_.max_step_retries;
    RDMADL_RETURN_IF_ERROR(QuiesceAfterFailedStep());
    status = RunStepOnce();
  }
  return status;
}

StatusOr<double> TrainingDriver::MeasureStepTimeMs(int steps) {
  CHECK_GT(steps, 0);
  const int64_t start = cluster_->simulator()->Now();
  for (int i = 0; i < steps; ++i) {
    RDMADL_RETURN_IF_ERROR(RunStep());
  }
  const int64_t elapsed = cluster_->simulator()->Now() - start;
  return static_cast<double>(elapsed) / steps / 1e6;
}

StatusOr<double> TrainingDriver::MeasureThroughput(int steps) {
  RDMADL_ASSIGN_OR_RETURN(double ms, MeasureStepTimeMs(steps));
  return 1000.0 / ms;  // Mini-batches per second (per worker, synchronized).
}

}  // namespace train
}  // namespace rdmadl
