#include "src/train/convergence.h"

#include <cmath>

#include "src/util/logging.h"

namespace rdmadl {
namespace train {

double ConvergenceProfile::n0() const {
  // Solve (1 + N/n0)^(-alpha) = (target - floor) / (initial - floor) for n0.
  const double ratio = (target - floor) / (initial - floor);
  CHECK_GT(ratio, 0.0);
  CHECK_LT(ratio, 1.0);
  const double factor = std::pow(ratio, -1.0 / alpha) - 1.0;
  return samples_to_target / factor;
}

double ConvergenceProfile::MetricAt(double samples) const {
  return floor + (initial - floor) * std::pow(1.0 + samples / n0(), -alpha);
}

namespace {

ConvergenceProfile Anchored(const char* metric, double initial, double floor, double target,
                            double paper_tcp_minutes, double tcp_samples_per_minute) {
  ConvergenceProfile profile;
  profile.metric_name = metric;
  profile.initial = initial;
  profile.floor = floor;
  profile.target = target;
  profile.samples_to_target = paper_tcp_minutes * tcp_samples_per_minute;
  return profile;
}

}  // namespace

ConvergenceProfile Seq2SeqConvergence(double tcp_samples_per_minute) {
  // Paper: "about 220 minutes to converge to perplexity under 20 with
  // gRPC.TCP".
  return Anchored("perplexity", 400.0, 8.0, 20.0, 220.0, tcp_samples_per_minute);
}

ConvergenceProfile CifarConvergence(double tcp_samples_per_minute) {
  // Paper reports a 2.6x speedup over gRPC.TCP; the absolute gRPC.TCP time in
  // Figure 10(b) is ~50 minutes to loss ~0.8.
  return Anchored("loss", 2.3, 0.3, 0.8, 50.0, tcp_samples_per_minute);
}

ConvergenceProfile SeConvergence(double tcp_samples_per_minute) {
  // Paper: "the SE model can converge to loss value of 4.5 within 185
  // minutes" with gRPC.TCP.
  return Anchored("loss", 9.0, 3.0, 4.5, 185.0, tcp_samples_per_minute);
}

std::vector<ConvergencePoint> SimulateCurve(const ConvergenceProfile& profile,
                                            double samples_per_minute, int points) {
  const double total_minutes = MinutesToTarget(profile, samples_per_minute);
  std::vector<ConvergencePoint> curve;
  curve.reserve(points + 1);
  for (int i = 0; i <= points; ++i) {
    const double minutes = total_minutes * i / points;
    curve.push_back({minutes, profile.MetricAt(minutes * samples_per_minute)});
  }
  return curve;
}

double MinutesToTarget(const ConvergenceProfile& profile, double samples_per_minute) {
  return profile.samples_to_target / samples_per_minute;
}

}  // namespace train
}  // namespace rdmadl
