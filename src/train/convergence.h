// Convergence simulation for the Figure 10 end-to-end study.
//
// Substitution note (see DESIGN.md): the paper trains on real datasets (WMT
// French-English, CIFAR-10, a private production corpus). Without those, we
// model the training metric as an analytic function of *samples processed* —
// a saturating power law, the standard empirical shape of SGD loss curves —
// and take wall-clock time from the simulated cluster. Figure 10's finding is
// that time-to-quality scales with step throughput (model quality at a given
// sample count is identical across transports, which our byte-identical
// mechanism tests verify at small scale); that property is preserved exactly.
//
// The curve is anchored so the gRPC.TCP run reaches the paper's reported
// target in the paper's reported time; every other mechanism's time then
// follows from its measured relative throughput.
#ifndef RDMADL_SRC_TRAIN_CONVERGENCE_H_
#define RDMADL_SRC_TRAIN_CONVERGENCE_H_

#include <string>
#include <vector>

namespace rdmadl {
namespace train {

struct ConvergenceProfile {
  std::string metric_name;  // "perplexity" or "loss".
  double initial = 0;       // Metric at step 0.
  double floor = 0;         // Asymptote.
  double target = 0;        // Paper's convergence point.
  double alpha = 0.7;       // Power-law exponent.
  double samples_to_target = 0;  // Samples at which the metric hits target.

  // metric(n) = floor + (initial - floor) * (1 + n/n0)^(-alpha), with n0
  // derived from samples_to_target.
  double MetricAt(double samples) const;
  double n0() const;
};

// Profiles for the three Figure 10 applications, anchored to the paper's
// reported convergence points. |tcp_samples_per_minute| is the measured
// gRPC.TCP training rate; the sample budget is chosen so the gRPC.TCP curve
// reaches the target in the paper's reported minutes.
ConvergenceProfile Seq2SeqConvergence(double tcp_samples_per_minute);
ConvergenceProfile CifarConvergence(double tcp_samples_per_minute);
ConvergenceProfile SeConvergence(double tcp_samples_per_minute);

struct ConvergencePoint {
  double minutes;
  double metric;
};

// Samples the metric curve at |points| evenly spaced times until the target
// is reached, given a training rate.
std::vector<ConvergencePoint> SimulateCurve(const ConvergenceProfile& profile,
                                            double samples_per_minute, int points = 12);

// Minutes of (virtual) training until the metric reaches the target.
double MinutesToTarget(const ConvergenceProfile& profile, double samples_per_minute);

}  // namespace train
}  // namespace rdmadl

#endif  // RDMADL_SRC_TRAIN_CONVERGENCE_H_
