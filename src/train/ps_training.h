// Data-parallel parameter-server training (Figure 3 of the paper).
//
// BuildDataParallelGraph replicates a model's data-flow graph onto N workers
// and shards its variables round-robin across N parameter servers. Each
// worker's replica is: synthetic input -> forward chain -> backward chain
// producing one gradient tensor per variable; gradients flow to the owning PS
// which applies SGD in place. Weights flow PS -> worker at the start of every
// step; gradients flow worker -> PS — each worker moves 2x the model size per
// mini-batch, exactly the communication pattern the paper evaluates.
//
// TrainingDriver wires a full benchmark run: simulated cluster (one worker
// process + one PS process per machine, as in §5), transfer mechanism,
// distributed session, and virtual-time step measurement.
#ifndef RDMADL_SRC_TRAIN_PS_TRAINING_H_
#define RDMADL_SRC_TRAIN_PS_TRAINING_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/collective/collective.h"
#include "src/comm/rpc_mechanism.h"
#include "src/comm/zerocopy_mechanism.h"
#include "src/control/checkpoint.h"
#include "src/control/membership.h"
#include "src/models/model_spec.h"
#include "src/net/topology.h"
#include "src/runtime/session.h"
#include "src/sim/histogram.h"

namespace rdmadl {
namespace train {

enum class MechanismKind {
  kGrpcTcp,       // gRPC over TCP (TF default).
  kGrpcRdma,      // gRPC abstraction over verbs (TF r1.0+ RDMA path).
  kRdmaCp,        // One-sided RDMA with sender staging copy (analysis off).
  kRdmaZeroCopy,  // The paper's mechanism (§3).
};

const char* MechanismName(MechanismKind kind);

// How gradients are aggregated across machines.
enum class TrainingMode {
  kParameterServer,  // Figure 3: weights/gradients ship worker <-> PS.
  kAllReduce,        // Data-parallel SGD with a gradient ring all-reduce.
};

const char* TrainingModeName(TrainingMode mode);

struct TrainingConfig {
  models::ModelSpec model;
  int num_machines = 8;  // Each runs one worker + one PS process (§5).
  int batch_size = 32;   // Per-worker mini-batch.
  MechanismKind mechanism = MechanismKind::kRdmaZeroCopy;
  // kAllReduce drops the PS processes: every worker holds a full replica of
  // the variables and the per-step gradients are summed with a collective
  // all-reduce (ring or naive, over zero-copy RDMA or TCP staging depending
  // on |mechanism|). The collective is modeled back-to-back with the compute
  // step — a conservative bound that does not overlap it with backprop.
  TrainingMode mode = TrainingMode::kParameterServer;
  collective::Algorithm collective_algorithm = collective::Algorithm::kRing;
  int collective_pipeline_depth = 4;
  // Local mode: the whole graph on one worker, no PS, no communication (the
  // "Local" line of Figure 11).
  bool local_only = false;
  // GPUDirect study (§3.5 / Table 3): keep worker tensors in GPU memory.
  bool tensors_on_gpu = false;
  bool gpudirect = false;
  // Force the §3.3 dynamic protocol (ablation).
  bool force_dynamic = false;
  net::CostModel cost;
  // Fabric shape (flat by default; rack/spine for cluster-scale studies).
  net::TopologyConfig topology;
  int executor_workers = 4;
  int num_cqs = 4;           // §5: "4 CQs per device and 4 QPs per connection".
  int num_qps_per_peer = 4;
  // ---- Fault tolerance (pair with sim::FaultInjector on the fabric) ----
  // Virtual-time budget per step: a session step (or collective op) still
  // incomplete after this long is aborted with kDeadlineExceeded instead of
  // hanging virtual time. 0 = no deadline.
  int64_t step_timeout_ns = 0;
  // After a retryable failure (kUnavailable / kAborted / kDeadlineExceeded)
  // the driver quiesces the simulator, recovers every errored QP and resets
  // mechanism/collective transient state, then re-runs the step — up to this
  // many times before surfacing the error. Steps retried this way repeat
  // their compute, so throughput numbers degrade gracefully under faults.
  int max_step_retries = 0;
  // ---- Elastic recovery (failure detection + checkpoint/rollback) ----
  // With |elastic| = true, Initialize additionally starts a MembershipService
  // heartbeating every machine and a CheckpointManager snapshotting the
  // variables every |checkpoint_interval_steps| completed steps; RunElastic
  // then survives fail-stop crashes: a confirmed death shrinks the cluster
  // (graph rebuilt over the survivors, PS shards reassigned, collective ring
  // reconfigured), the last checkpoint is restored, and training continues.
  bool elastic = false;
  int checkpoint_interval_steps = 5;
  control::MembershipOptions membership;
  control::CheckpointOptions checkpoint;  // interval_steps is overridden above.
  // Parameter-server placement: 0 = one PS process colocated with the worker
  // on each machine (the paper's §5 deployment, the default); > 0 = that many
  // dedicated PS machines appended after the workers (machines
  // num_machines .. num_machines+num_ps-1), so elastic tests can crash a
  // worker and a parameter server independently.
  int num_ps = 0;
};

// Builds the placed graph. |graph| must be empty.
Status BuildDataParallelGraph(const models::ModelSpec& model, int num_workers, int num_ps,
                              int batch_size, bool local_only, graph::Graph* graph);

// Elastic overload: replicates onto the listed worker machines (replica w<m>
// runs on device "worker:<m>", keeping its original machine tag across
// reconfigurations) and shards the variables round-robin over |ps_devices|.
// Rebuilding with the survivor lists after a confirmed death is how the
// driver reassigns a dead server's shards.
Status BuildDataParallelGraph(const models::ModelSpec& model,
                              const std::vector<int>& worker_machines,
                              const std::vector<std::string>& ps_devices, int batch_size,
                              graph::Graph* graph);

// All-reduce variant: every worker holds its own replica of all variables and
// applies SGD locally (at GPU rates); there are no parameter servers and no
// cross-device edges. Gradient aggregation is the TrainingDriver's collective
// all-reduce, not part of the graph.
Status BuildAllReduceGraph(const models::ModelSpec& model, int num_workers, int batch_size,
                           graph::Graph* graph);

// Elastic overload over an explicit worker machine list.
Status BuildAllReduceGraph(const models::ModelSpec& model,
                           const std::vector<int>& worker_machines, int batch_size,
                           graph::Graph* graph);

// Outcome of an elastic run (TrainingDriver::RunElastic).
struct ElasticReport {
  int requested_steps = 0;
  int completed_steps = 0;      // Steps standing after the final rollback.
  double samples_processed = 0;  // Cumulative samples behind completed_steps.
  int reconfigurations = 0;
  int steps_rolled_back = 0;  // Completed work repeated due to rollbacks.
  std::vector<int> removed_hosts;         // Machine ids, in confirmation order.
  int64_t last_detection_latency_ns = 0;  // Crash -> confirmed dead.
  int64_t last_recovery_ns = 0;           // Confirmed dead -> training resumed.
  int64_t elapsed_ns = 0;                 // Virtual time for the whole run.
};

class TrainingDriver {
 public:
  explicit TrainingDriver(TrainingConfig config);
  ~TrainingDriver();

  // Builds the cluster, graph and session; runs mechanism setup and warm-up
  // steps (step 0 is the zero-copy mechanism's allocation-tracing step).
  Status Initialize(int warmup_steps = 2);

  // One training step: a session step, plus (in kAllReduce mode) the gradient
  // all-reduce of every parameter element. Under fault injection, transient
  // transport failures are retried per TrainingConfig::max_step_retries; a
  // crashed host short-circuits to a typed kUnavailable error (fail-stop
  // hosts never heal, so retrying would only burn virtual time).
  Status RunStep();

  // Runs |steps| steps and returns the mean virtual step time in ms.
  StatusOr<double> MeasureStepTimeMs(int steps);

  // Aggregate throughput in mini-batches per second (per worker step rate).
  StatusOr<double> MeasureThroughput(int steps);

  // Elastic training loop (requires config.elastic). Runs until |steps|
  // post-warmup steps stand completed. A retryable step failure quiesces the
  // cluster and gives the failure detector its bounded window; a confirmed
  // death triggers recovery (shrink membership, rebuild the graph/session
  // over the survivors, reconfigure the collective ring, restore the last
  // checkpoint, roll the step/sample counters back) and the loop continues on
  // the survivors. Undetected (transient) failures retry the step as RunStep
  // does. Fails if every worker — or, in PS mode, every parameter server —
  // is lost.
  StatusOr<ElasticReport> RunElastic(int steps);

  runtime::Cluster* cluster() { return cluster_.get(); }
  runtime::DistributedSession* session() { return session_.get(); }
  // Current placed graph (rebuilt on every elastic reconfiguration).
  const graph::Graph* graph() const { return graph_.get(); }
  const TrainingConfig& config() const { return config_; }
  // Non-null when the mechanism is one of the RDMA zero-copy family.
  const comm::ZeroCopyRdmaMechanism* zerocopy_mechanism() const { return zerocopy_.get(); }
  const comm::RpcMechanism* rpc_mechanism() const { return rpc_.get(); }
  // Non-null in kAllReduce mode (after Initialize).
  collective::CollectiveGroup* collective() { return collective_.get(); }
  // Non-null when config.elastic (after Initialize).
  control::MembershipService* membership() { return membership_.get(); }
  control::CheckpointManager* checkpoint() { return checkpoint_.get(); }
  // Per-step virtual latency of every completed RunStep (retries included),
  // for tail-latency analysis; never reset across elastic reconfigurations.
  const sim::LatencyHistogram& step_latencies() const { return step_latencies_; }
  // Machine ids currently carrying workers (shrinks as hosts die).
  const std::vector<int>& worker_machines() const { return worker_machines_; }
  // Device names currently carrying variables, in shard round-robin order.
  const std::vector<std::string>& ps_devices() const { return ps_devices_; }

 private:
  Status RunStepOnce();
  // Post-failure cleanup: drains the simulator (stale events fire into their
  // epoch-guarded no-op closures), recovers errored QPs on every process and
  // clears mechanism/collective transient state.
  Status QuiesceAfterFailedStep();
  // Instantiates the transfer mechanism for the current graph (fresh edge
  // state — called at Initialize and again per reconfiguration).
  void MakeMechanism();
  // Builds graph + session over the current worker_machines_/ps_devices_ and
  // runs mechanism setup.
  Status BuildAndSetupSession();
  // Removes the confirmed-dead hosts from the membership lists and rebuilds
  // everything over the survivors; restores the checkpoint.
  Status RecoverFromFailure(ElasticReport* report);
  // Drops variables a surviving device still holds but whose shard the new
  // placement assigns elsewhere (keeps names unique for snapshots).
  void PurgeMovedVariables(const std::string& device,
                           const std::map<std::string, std::string>& var_device);

  TrainingConfig config_;
  std::unique_ptr<runtime::Cluster> cluster_;
  std::unique_ptr<graph::Graph> graph_;
  std::unique_ptr<comm::ZeroCopyRdmaMechanism> zerocopy_;
  std::unique_ptr<comm::RpcMechanism> rpc_;
  runtime::TransferMechanism* mechanism_ = nullptr;
  std::unique_ptr<runtime::DistributedSession> session_;
  std::unique_ptr<collective::CollectiveGroup> collective_;
  std::unique_ptr<control::MembershipService> membership_;
  std::unique_ptr<control::CheckpointManager> checkpoint_;
  sim::LatencyHistogram step_latencies_;
  // Current (elastic) membership. worker_machines_[i] hosts "worker:<id>";
  // ps_devices_ lists the PS device names still alive, paired with the
  // machines that host them in ps_machine_of_.
  std::vector<int> worker_machines_;
  std::vector<std::string> ps_devices_;
  std::map<std::string, int> ps_machine_of_;
  uint64_t allreduce_elements_ = 0;  // Gradient elements summed per step.
};

}  // namespace train
}  // namespace rdmadl

#endif  // RDMADL_SRC_TRAIN_PS_TRAINING_H_
