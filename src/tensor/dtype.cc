#include "src/tensor/dtype.h"

namespace rdmadl {
namespace tensor {

size_t DTypeSize(DType dtype) {
  switch (dtype) {
    case DType::kInvalid:
      return 0;
    case DType::kFloat32:
      return 4;
    case DType::kFloat64:
      return 8;
    case DType::kInt32:
      return 4;
    case DType::kInt64:
      return 8;
    case DType::kUInt8:
      return 1;
  }
  return 0;
}

const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kInvalid:
      return "invalid";
    case DType::kFloat32:
      return "float32";
    case DType::kFloat64:
      return "float64";
    case DType::kInt32:
      return "int32";
    case DType::kInt64:
      return "int64";
    case DType::kUInt8:
      return "uint8";
  }
  return "?";
}

}  // namespace tensor
}  // namespace rdmadl
