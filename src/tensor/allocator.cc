#include "src/tensor/allocator.h"

#include <cstdlib>
#include <new>
#include <unordered_map>

#include "src/util/logging.h"

namespace rdmadl {
namespace tensor {

namespace {
// Size bookkeeping for CpuAllocator stats (aligned_alloc has no usable_size
// portably).
std::unordered_map<void*, size_t>& CpuSizes() {
  static auto* sizes = new std::unordered_map<void*, size_t>();
  return *sizes;
}
}  // namespace

void* CpuAllocator::Allocate(size_t bytes) {
  if (bytes == 0) bytes = 1;
  const size_t rounded = (bytes + kAlignment - 1) / kAlignment * kAlignment;
  void* ptr = std::aligned_alloc(kAlignment, rounded);
  if (ptr == nullptr) return nullptr;
  CpuSizes()[ptr] = bytes;
  ++stats_.allocations;
  stats_.bytes_in_use += static_cast<int64_t>(bytes);
  stats_.peak_bytes_in_use = std::max(stats_.peak_bytes_in_use, stats_.bytes_in_use);
  return ptr;
}

void CpuAllocator::Deallocate(void* ptr) {
  if (ptr == nullptr) return;
  auto it = CpuSizes().find(ptr);
  CHECK(it != CpuSizes().end()) << "Deallocate of unknown pointer";
  ++stats_.deallocations;
  stats_.bytes_in_use -= static_cast<int64_t>(it->second);
  CpuSizes().erase(it);
  std::free(ptr);
}

CpuAllocator* CpuAllocator::Get() {
  static CpuAllocator* instance = new CpuAllocator();
  return instance;
}

}  // namespace tensor
}  // namespace rdmadl
