// Tensor element types. Deep learning tensors are plain byte arrays plus a
// small schema (shape + element type) — §2.1 of the paper.
#ifndef RDMADL_SRC_TENSOR_DTYPE_H_
#define RDMADL_SRC_TENSOR_DTYPE_H_

#include <cstddef>
#include <cstdint>

namespace rdmadl {
namespace tensor {

enum class DType : uint8_t {
  kInvalid = 0,
  kFloat32 = 1,
  kFloat64 = 2,
  kInt32 = 3,
  kInt64 = 4,
  kUInt8 = 5,
};

size_t DTypeSize(DType dtype);
const char* DTypeName(DType dtype);

// Maps C++ types to DType tags for typed accessors.
template <typename T>
struct DTypeOf;
template <>
struct DTypeOf<float> {
  static constexpr DType value = DType::kFloat32;
};
template <>
struct DTypeOf<double> {
  static constexpr DType value = DType::kFloat64;
};
template <>
struct DTypeOf<int32_t> {
  static constexpr DType value = DType::kInt32;
};
template <>
struct DTypeOf<int64_t> {
  static constexpr DType value = DType::kInt64;
};
template <>
struct DTypeOf<uint8_t> {
  static constexpr DType value = DType::kUInt8;
};

}  // namespace tensor
}  // namespace rdmadl

#endif  // RDMADL_SRC_TENSOR_DTYPE_H_
