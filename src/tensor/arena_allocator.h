// ArenaAllocator: a best-fit allocator with block coalescing over one
// contiguous byte range.
//
// The range is typically a single large RDMA memory region registered once
// with the NIC (§3.4: "preallocate a large enough memory buffer to register
// once to RDMA NIC... a memory allocator is used to manage the preallocated
// memory"). The arena itself is substrate-agnostic; the comm layer binds it
// to a registered MemRegion and can translate any pointer inside it into an
// (addr, rkey) pair for one-sided verbs.
#ifndef RDMADL_SRC_TENSOR_ARENA_ALLOCATOR_H_
#define RDMADL_SRC_TENSOR_ARENA_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/tensor/allocator.h"

namespace rdmadl {
namespace tensor {

class ArenaAllocator : public Allocator {
 public:
  // Manages [base, base + size). Does not own the storage.
  ArenaAllocator(void* base, size_t size, std::string name,
                 MemorySpace space = MemorySpace::kHost);
  // Notifies the protocol checker (when installed) so carve-outs still live
  // at destruction surface as leak diagnostics.
  ~ArenaAllocator() override;

  void* Allocate(size_t bytes) override;
  void Deallocate(void* ptr) override;
  std::string name() const override { return name_; }
  MemorySpace memory_space() const override { return space_; }
  const AllocatorStats& stats() const override { return stats_; }

  bool Contains(const void* ptr) const {
    auto p = reinterpret_cast<uintptr_t>(ptr);
    return p >= base_ && p < base_ + size_;
  }
  // Offset of |ptr| from the arena base (for rkey-relative addressing).
  uint64_t OffsetOf(const void* ptr) const;

  void* base() const { return reinterpret_cast<void*>(base_); }
  size_t size() const { return size_; }
  size_t largest_free_block() const;

 private:
  struct Block {
    size_t size = 0;
  };

  std::string name_;
  MemorySpace space_;
  uintptr_t base_;
  size_t size_;
  AllocatorStats stats_;
  // Free blocks by offset (for coalescing) and a size index (for best-fit).
  std::map<uint64_t, size_t> free_by_offset_;
  std::multimap<size_t, uint64_t> free_by_size_;
  // Live allocations: offset -> requested bytes (rounded).
  std::map<uint64_t, size_t> live_;

  void InsertFree(uint64_t offset, size_t size);
  void EraseFree(uint64_t offset, size_t size);
};

}  // namespace tensor
}  // namespace rdmadl

#endif  // RDMADL_SRC_TENSOR_ARENA_ALLOCATOR_H_
