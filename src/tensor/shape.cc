#include "src/tensor/shape.h"

#include <sstream>

namespace rdmadl {
namespace tensor {

std::string TensorShape::ToString() const {
  std::ostringstream os;
  os << "[";
  for (int i = 0; i < num_dims(); ++i) {
    if (i > 0) os << ",";
    if (dims_[i] == kUnknownDim) {
      os << "?";
    } else {
      os << dims_[i];
    }
  }
  os << "]";
  return os.str();
}

}  // namespace tensor
}  // namespace rdmadl
