// TensorShape: a list of dimension sizes. A dimension of -1 means "unknown
// until runtime" — the static shape-inference pass (§3.4) distinguishes fully
// defined shapes (transfer with static placement, §3.2) from partially
// defined ones (transfer with dynamic allocation, §3.3).
#ifndef RDMADL_SRC_TENSOR_SHAPE_H_
#define RDMADL_SRC_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/util/logging.h"

namespace rdmadl {
namespace tensor {

inline constexpr int64_t kUnknownDim = -1;

class TensorShape {
 public:
  TensorShape() = default;
  TensorShape(std::initializer_list<int64_t> dims) : dims_(dims) { Validate(); }
  explicit TensorShape(std::vector<int64_t> dims) : dims_(std::move(dims)) { Validate(); }

  int num_dims() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const {
    CHECK_GE(i, 0);
    CHECK_LT(i, num_dims());
    return dims_[i];
  }
  const std::vector<int64_t>& dims() const { return dims_; }

  void set_dim(int i, int64_t value) {
    CHECK_GE(i, 0);
    CHECK_LT(i, num_dims());
    CHECK(value >= 0 || value == kUnknownDim);
    dims_[i] = value;
  }
  void add_dim(int64_t value) {
    CHECK(value >= 0 || value == kUnknownDim);
    dims_.push_back(value);
  }

  // True when every dimension is known (>= 0). Scalars (rank 0) are defined.
  bool IsFullyDefined() const {
    for (int64_t d : dims_) {
      if (d < 0) return false;
    }
    return true;
  }

  // Element count; requires IsFullyDefined().
  int64_t num_elements() const {
    CHECK(IsFullyDefined()) << "num_elements() on partially-unknown shape " << ToString();
    int64_t n = 1;
    for (int64_t d : dims_) n *= d;
    return n;
  }

  // Same rank and each dimension equal or at least one side unknown.
  bool IsCompatibleWith(const TensorShape& other) const {
    if (num_dims() != other.num_dims()) return false;
    for (int i = 0; i < num_dims(); ++i) {
      if (dims_[i] >= 0 && other.dims_[i] >= 0 && dims_[i] != other.dims_[i]) return false;
    }
    return true;
  }

  bool operator==(const TensorShape& other) const { return dims_ == other.dims_; }
  bool operator!=(const TensorShape& other) const { return !(*this == other); }

  std::string ToString() const;

 private:
  void Validate() {
    for (int64_t d : dims_) {
      CHECK(d >= 0 || d == kUnknownDim) << "bad dimension " << d;
    }
  }

  std::vector<int64_t> dims_;
};

}  // namespace tensor
}  // namespace rdmadl

#endif  // RDMADL_SRC_TENSOR_SHAPE_H_
