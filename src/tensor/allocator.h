// Tensor memory allocators.
//
// The runtime uses two allocator kinds, mirroring §3.4 of the paper:
//   * a normal allocator (CpuAllocator) for tensors that never cross servers;
//   * an ArenaAllocator carving tensors out of one large pre-registered
//     RDMA-accessible region, so to-be-transferred tensors need no extra copy
//     and no per-tensor NIC registration.
// A TracingAllocator wrapper implements the dynamic allocation-site analysis:
// it reports every allocation to a hook so the graph analyzer can map buffer
// addresses to the graph node that allocated them (first training iteration),
// then redirect those nodes' allocations to the RDMA arena afterwards.
#ifndef RDMADL_SRC_TENSOR_ALLOCATOR_H_
#define RDMADL_SRC_TENSOR_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace rdmadl {
namespace tensor {

enum class MemorySpace { kHost, kGpu };

struct AllocatorStats {
  int64_t allocations = 0;
  int64_t deallocations = 0;
  int64_t bytes_in_use = 0;
  int64_t peak_bytes_in_use = 0;
};

class Allocator {
 public:
  virtual ~Allocator() = default;

  // Returns 64-byte-aligned storage or nullptr when exhausted.
  virtual void* Allocate(size_t bytes) = 0;
  virtual void Deallocate(void* ptr) = 0;

  virtual std::string name() const = 0;
  virtual MemorySpace memory_space() const { return MemorySpace::kHost; }
  virtual const AllocatorStats& stats() const = 0;

  static constexpr size_t kAlignment = 64;
};

// Malloc-backed allocator for tensors that stay local.
class CpuAllocator : public Allocator {
 public:
  void* Allocate(size_t bytes) override;
  void Deallocate(void* ptr) override;
  std::string name() const override { return "cpu"; }
  const AllocatorStats& stats() const override { return stats_; }

  // Process-wide default instance.
  static CpuAllocator* Get();

 private:
  AllocatorStats stats_;
};

// Wraps another allocator and reports each allocation/deallocation to hooks.
// Used by the graph executor during the first mini-batch iteration (§3.4).
class TracingAllocator : public Allocator {
 public:
  using AllocHook = std::function<void(void* ptr, size_t bytes)>;
  using FreeHook = std::function<void(void* ptr)>;

  explicit TracingAllocator(Allocator* base) : base_(base) {}

  void set_alloc_hook(AllocHook hook) { alloc_hook_ = std::move(hook); }
  void set_free_hook(FreeHook hook) { free_hook_ = std::move(hook); }

  void* Allocate(size_t bytes) override {
    void* ptr = base_->Allocate(bytes);
    if (ptr != nullptr && alloc_hook_) alloc_hook_(ptr, bytes);
    return ptr;
  }
  void Deallocate(void* ptr) override {
    if (ptr != nullptr && free_hook_) free_hook_(ptr);
    base_->Deallocate(ptr);
  }
  std::string name() const override { return "tracing(" + base_->name() + ")"; }
  MemorySpace memory_space() const override { return base_->memory_space(); }
  const AllocatorStats& stats() const override { return base_->stats(); }

 private:
  Allocator* base_;
  AllocHook alloc_hook_;
  FreeHook free_hook_;
};

}  // namespace tensor
}  // namespace rdmadl

#endif  // RDMADL_SRC_TENSOR_ALLOCATOR_H_
