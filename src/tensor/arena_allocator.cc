#include "src/tensor/arena_allocator.h"

#include <algorithm>

#include "src/check/rdma_check.h"
#include "src/util/logging.h"

namespace rdmadl {
namespace tensor {

ArenaAllocator::ArenaAllocator(void* base, size_t size, std::string name, MemorySpace space)
    : name_(std::move(name)), space_(space), base_(reinterpret_cast<uintptr_t>(base)),
      size_(size) {
  CHECK(base != nullptr);
  CHECK_GT(size, 0u);
  InsertFree(0, size);
}

ArenaAllocator::~ArenaAllocator() { check::OnArenaDestroyed(this); }

void ArenaAllocator::InsertFree(uint64_t offset, size_t size) {
  free_by_offset_[offset] = size;
  free_by_size_.emplace(size, offset);
}

void ArenaAllocator::EraseFree(uint64_t offset, size_t size) {
  free_by_offset_.erase(offset);
  auto range = free_by_size_.equal_range(size);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == offset) {
      free_by_size_.erase(it);
      return;
    }
  }
  LOG(FATAL) << "arena free-index corruption at offset " << offset;
}

void* ArenaAllocator::Allocate(size_t bytes) {
  if (bytes == 0) bytes = 1;
  const size_t rounded = (bytes + kAlignment - 1) / kAlignment * kAlignment;
  // Best fit: smallest free block that holds the request.
  auto it = free_by_size_.lower_bound(rounded);
  if (it == free_by_size_.end()) return nullptr;
  const size_t block_size = it->first;
  const uint64_t offset = it->second;
  EraseFree(offset, block_size);
  if (block_size > rounded) {
    InsertFree(offset + rounded, block_size - rounded);
  }
  live_[offset] = rounded;
  ++stats_.allocations;
  stats_.bytes_in_use += static_cast<int64_t>(rounded);
  stats_.peak_bytes_in_use = std::max(stats_.peak_bytes_in_use, stats_.bytes_in_use);
  check::OnArenaBlockAllocated(this, name_, offset, rounded);
  return reinterpret_cast<void*>(base_ + offset);
}

void ArenaAllocator::Deallocate(void* ptr) {
  if (ptr == nullptr) return;
  CHECK(Contains(ptr)) << "Deallocate of pointer outside arena " << name_;
  const uint64_t offset = reinterpret_cast<uintptr_t>(ptr) - base_;
  auto it = live_.find(offset);
  CHECK(it != live_.end()) << "double free or bad pointer in arena " << name_;
  size_t size = it->second;
  live_.erase(it);
  ++stats_.deallocations;
  stats_.bytes_in_use -= static_cast<int64_t>(size);
  check::OnArenaBlockFreed(this, offset);

  uint64_t merged_offset = offset;
  size_t merged_size = size;
  // Coalesce with the following free block.
  auto next = free_by_offset_.find(offset + size);
  if (next != free_by_offset_.end()) {
    merged_size += next->second;
    EraseFree(next->first, next->second);
  }
  // Coalesce with the preceding free block.
  auto prev = free_by_offset_.lower_bound(offset);
  if (prev != free_by_offset_.begin()) {
    --prev;
    if (prev->first + prev->second == offset) {
      merged_offset = prev->first;
      merged_size += prev->second;
      EraseFree(prev->first, prev->second);
    }
  }
  InsertFree(merged_offset, merged_size);
}

uint64_t ArenaAllocator::OffsetOf(const void* ptr) const {
  CHECK(Contains(ptr));
  return reinterpret_cast<uintptr_t>(ptr) - base_;
}

size_t ArenaAllocator::largest_free_block() const {
  if (free_by_size_.empty()) return 0;
  return free_by_size_.rbegin()->first;
}

}  // namespace tensor
}  // namespace rdmadl
