#include "src/tensor/tensor.h"

#include <sstream>

#include "src/util/strings.h"

namespace rdmadl {
namespace tensor {

std::string Tensor::DebugString() const {
  if (!valid()) return "Tensor<invalid>";
  std::ostringstream os;
  os << "Tensor<" << DTypeName(dtype_) << shape_.ToString() << ", "
     << HumanBytes(TotalBytes()) << ">";
  return os.str();
}

}  // namespace tensor
}  // namespace rdmadl
