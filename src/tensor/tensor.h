// Tensor: dtype + shape + reference-counted buffer.
//
// The buffer may be larger than the tensor needs: receiver-side tensors of
// the zero-copy protocol reserve one extra tail byte for the completion flag
// (§3.2), and dynamically transferred tensors park their metadata block in
// front. Copying a Tensor shares the buffer (aliasing semantics, like
// TensorFlow).
#ifndef RDMADL_SRC_TENSOR_TENSOR_H_
#define RDMADL_SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include "src/tensor/allocator.h"
#include "src/tensor/dtype.h"
#include "src/tensor/shape.h"
#include "src/util/logging.h"

namespace rdmadl {
namespace tensor {

// Reference-counted storage. Deallocates through its allocator when the last
// reference drops.
class Buffer {
 public:
  Buffer(Allocator* allocator, size_t size)
      : allocator_(allocator), size_(size), data_(allocator->Allocate(size)) {}
  // Wraps storage owned elsewhere (allocator == nullptr -> no deallocation).
  Buffer(void* data, size_t size) : allocator_(nullptr), size_(size), data_(data) {}
  ~Buffer() {
    if (allocator_ != nullptr && data_ != nullptr) allocator_->Deallocate(data_);
  }
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  void* data() const { return data_; }
  size_t size() const { return size_; }
  Allocator* allocator() const { return allocator_; }
  bool valid() const { return data_ != nullptr; }
  MemorySpace memory_space() const {
    return allocator_ != nullptr ? allocator_->memory_space() : MemorySpace::kHost;
  }

 private:
  Allocator* allocator_;
  size_t size_;
  void* data_;
};

class Tensor {
 public:
  // Empty (invalid) tensor.
  Tensor() = default;

  // Allocates storage for |shape| (must be fully defined) from |allocator|.
  Tensor(Allocator* allocator, DType dtype, const TensorShape& shape)
      : dtype_(dtype), shape_(shape) {
    CHECK(shape.IsFullyDefined()) << "allocating tensor with unknown shape";
    buffer_ = std::make_shared<Buffer>(allocator, TotalBytes());
    CHECK(buffer_->valid()) << "allocation of " << TotalBytes() << " bytes failed from "
                            << allocator->name();
  }

  // Wraps an existing buffer; |buffer|->size() must cover the tensor bytes.
  Tensor(std::shared_ptr<Buffer> buffer, DType dtype, const TensorShape& shape)
      : dtype_(dtype), shape_(shape), buffer_(std::move(buffer)) {
    CHECK(shape.IsFullyDefined());
    CHECK_GE(buffer_->size(), TotalBytes());
  }

  bool valid() const { return buffer_ != nullptr; }
  DType dtype() const { return dtype_; }
  const TensorShape& shape() const { return shape_; }
  int64_t num_elements() const { return shape_.num_elements(); }
  size_t TotalBytes() const {
    return static_cast<size_t>(shape_.num_elements()) * DTypeSize(dtype_);
  }

  void* raw_data() const {
    CHECK(valid());
    return buffer_->data();
  }
  const std::shared_ptr<Buffer>& buffer() const { return buffer_; }
  MemorySpace memory_space() const {
    return buffer_ != nullptr ? buffer_->memory_space() : MemorySpace::kHost;
  }

  template <typename T>
  T* data() const {
    CHECK(DTypeOf<T>::value == dtype_)
        << "type mismatch: tensor is " << DTypeName(dtype_);
    return static_cast<T*>(raw_data());
  }

  // Flat element accessors (host memory only).
  template <typename T>
  T& at(int64_t i) const {
    CHECK_GE(i, 0);
    CHECK_LT(i, num_elements());
    return data<T>()[i];
  }

  // Deep copy into freshly allocated storage.
  Tensor Clone(Allocator* allocator) const {
    Tensor out(allocator, dtype_, shape_);
    std::memcpy(out.raw_data(), raw_data(), TotalBytes());
    return out;
  }

  // Reinterprets the same storage under a new fully-defined shape with the
  // same element count.
  Tensor Reshaped(const TensorShape& new_shape) const {
    CHECK(new_shape.IsFullyDefined());
    CHECK_EQ(new_shape.num_elements(), num_elements());
    Tensor out = *this;
    out.shape_ = new_shape;
    return out;
  }

  std::string DebugString() const;

 private:
  DType dtype_ = DType::kInvalid;
  TensorShape shape_;
  std::shared_ptr<Buffer> buffer_;
};

}  // namespace tensor
}  // namespace rdmadl

#endif  // RDMADL_SRC_TENSOR_TENSOR_H_
