// Address-extent LRU cache.
//
// Maps [base, base+length) address ranges to a caller-supplied value and
// answers covering-range lookups: Lookup(addr, len) returns the value of any
// cached extent that fully contains [addr, addr+len). The transfer engine
// uses this in front of verbs memory registration (the §3.4 registration
// cache, after RDMAvisor): extents are page-aligned MR registrations, values
// carry the MemoryRegion plus pinning metadata.
//
// Recency is tracked with a strictly increasing internal tick — never with
// addresses — so eviction-victim selection is identical across runs even when
// the process allocator hands out different pointers (determinism contract of
// the simulation).
#ifndef RDMADL_SRC_TENSOR_EXTENT_CACHE_H_
#define RDMADL_SRC_TENSOR_EXTENT_CACHE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <utility>

namespace rdmadl {
namespace tensor {

template <typename V>
class ExtentLruCache {
 public:
  struct Entry {
    uint64_t base = 0;
    uint64_t length = 0;
    uint64_t last_use = 0;  // Internal tick; larger = more recent.
    V value{};
  };

  // Returns the entry of a cached extent covering [addr, addr+len), bumping
  // its recency, or nullptr on a miss. len == 0 matches any extent containing
  // addr.
  Entry* Lookup(uint64_t addr, uint64_t len) {
    Entry* e = Find(addr, len);
    if (e != nullptr) e->last_use = ++tick_;
    return e;
  }

  // Lookup without bumping recency.
  const Entry* Peek(uint64_t addr, uint64_t len) const {
    return const_cast<ExtentLruCache*>(this)->Find(addr, len);
  }

  // Inserts a new extent as most recently used. Overlapping extents are
  // allowed (registrations at different alignments); lookups return the
  // first cover found.
  void Insert(uint64_t base, uint64_t length, V value) {
    Entry e;
    e.base = base;
    e.length = length;
    e.last_use = ++tick_;
    e.value = std::move(value);
    by_base_[base] = std::move(e);
  }

  // Removes and returns the least-recently-used entry satisfying |evictable|
  // (e.g. "not used in the current step"); nullopt when none qualifies.
  template <typename Pred>
  std::optional<Entry> EvictLru(Pred evictable) {
    auto victim = by_base_.end();
    for (auto it = by_base_.begin(); it != by_base_.end(); ++it) {
      if (!evictable(it->second)) continue;
      if (victim == by_base_.end() || it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == by_base_.end()) return std::nullopt;
    Entry out = std::move(victim->second);
    by_base_.erase(victim);
    return out;
  }

  // Visits every entry (teardown: deregister all cached MRs).
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const auto& [base, entry] : by_base_) fn(entry);
  }

  void Clear() { by_base_.clear(); }
  size_t size() const { return by_base_.size(); }
  bool empty() const { return by_base_.empty(); }

 private:
  Entry* Find(uint64_t addr, uint64_t len) {
    if (by_base_.empty()) return nullptr;
    // Candidate extents start at or below addr: walk down from the greatest
    // base <= addr. Overlap means a farther-down extent can still cover addr,
    // so keep walking until bases fall below any possible cover... extents
    // are bounded, so stop at the first non-covering entry whose base plus
    // maximal length cannot reach addr. Cache sizes are small (tens of
    // entries); the scan is bounded by that.
    auto it = by_base_.upper_bound(addr);
    while (it != by_base_.begin()) {
      --it;
      const Entry& e = it->second;
      if (addr >= e.base && addr - e.base <= e.length &&
          len <= e.length - (addr - e.base)) {
        return &it->second;
      }
    }
    return nullptr;
  }

  std::map<uint64_t, Entry> by_base_;
  uint64_t tick_ = 0;
};

}  // namespace tensor
}  // namespace rdmadl

#endif  // RDMADL_SRC_TENSOR_EXTENT_CACHE_H_
