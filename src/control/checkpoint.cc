#include "src/control/checkpoint.h"

#include <algorithm>
#include <cstring>

#include "src/sim/trace.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace control {

void CheckpointManager::ChargeCopyCost(uint64_t bytes) {
  if (bytes == 0 || options_.snapshot_bytes_per_sec <= 0) return;
  const int64_t cost_ns = static_cast<int64_t>(
      static_cast<double>(bytes) / options_.snapshot_bytes_per_sec * 1e9);
  sim::Simulator* simulator = cluster_->simulator();
  Status run = simulator->RunUntil(simulator->Now() + cost_ns);
  if (!run.ok()) {
    LOG(ERROR) << "checkpoint copy-cost advance failed: " << run.ToString();
  }
}

Status CheckpointManager::Snapshot(int64_t step, double samples) {
  return Snapshot(step, samples, cluster_->device_names());
}

Status CheckpointManager::Snapshot(int64_t step, double samples,
                                   std::vector<std::string> devices) {
  entries_.clear();
  uint64_t total_bytes = 0;
  // Device names are iterated in sorted order so the capture order (and the
  // trace it produces) is deterministic.
  std::sort(devices.begin(), devices.end());
  for (const std::string& device : devices) {
    runtime::HostRuntime* host = cluster_->host(device);
    if (host == nullptr) continue;
    // Variables live in an unordered map; order them by name.
    std::map<std::string, const tensor::Tensor*> ordered;
    for (const auto& [name, var] : host->resources()->variables()) {
      ordered.emplace(name, &var);
    }
    for (const auto& [name, var] : ordered) {
      if (entries_.count(name) > 0) {
        return Internal(StrCat("variable '", name, "' exists on both ",
                               entries_[name].source_device, " and ", device));
      }
      Entry e;
      e.source_device = device;
      e.dtype = var->dtype();
      e.shape = var->shape();
      e.bytes = var->TotalBytes();
      if (host->real_memory()) {
        e.data.resize(e.bytes);
        std::memcpy(e.data.data(), var->raw_data(), e.bytes);
      }
      total_bytes += e.bytes;
      entries_.emplace(name, std::move(e));
    }
  }
  ChargeCopyCost(total_bytes);
  has_checkpoint_ = true;
  step_ = step;
  samples_ = samples;
  ++stats_.snapshots;
  stats_.bytes_captured += total_bytes;
  stats_.last_snapshot_bytes = total_bytes;
  stats_.variables_captured = static_cast<int64_t>(entries_.size());
  sim::TraceInstant("checkpoint",
                    StrCat("snapshot step ", step, ": ", entries_.size(),
                           " variables, ", total_bytes, " bytes"),
                    cluster_->simulator()->Now());
  return OkStatus();
}

Status CheckpointManager::Restore(const std::map<std::string, std::string>& var_device) {
  if (!has_checkpoint_) return FailedPrecondition("no checkpoint to restore");
  uint64_t total_bytes = 0;
  int64_t restored = 0;
  for (const auto& [name, entry] : entries_) {
    auto it = var_device.find(name);
    if (it == var_device.end()) continue;  // Variable's replica no longer exists.
    runtime::HostRuntime* host = cluster_->host(it->second);
    if (host == nullptr) {
      return NotFound(StrCat("restore target device '", it->second,
                             "' for variable '", name, "' not in cluster"));
    }
    ops::ResourceManager* rm = host->resources();
    if (rm->HasVariable(name)) {
      const tensor::Tensor& var = rm->GetVariable(name);
      if (var.TotalBytes() != entry.bytes) {
        return Internal(StrCat("variable '", name, "' is ", var.TotalBytes(),
                               " bytes but checkpoint holds ", entry.bytes));
      }
      if (host->real_memory() && !entry.data.empty()) {
        std::memcpy(var.raw_data(), entry.data.data(), entry.bytes);
      }
    } else {
      // The (re)assigned owner has not materialized the variable yet:
      // pre-create it so the next step's Variable kernel adopts the restored
      // state instead of running its initializer.
      tensor::Tensor var(host->default_allocator(), entry.dtype, entry.shape);
      if (host->real_memory() && !entry.data.empty()) {
        std::memcpy(var.raw_data(), entry.data.data(), entry.bytes);
      }
      rm->PutVariable(name, std::move(var));
    }
    total_bytes += entry.bytes;
    ++restored;
  }
  ChargeCopyCost(total_bytes);
  ++stats_.restores;
  stats_.variables_restored += restored;
  sim::TraceInstant("checkpoint",
                    StrCat("restore to step ", step_, ": ", restored,
                           " variables, ", total_bytes, " bytes"),
                    cluster_->simulator()->Now());
  return OkStatus();
}

Status CheckpointManager::Restore() {
  std::map<std::string, std::string> var_device;
  for (const auto& [name, entry] : entries_) {
    var_device.emplace(name, entry.source_device);
  }
  return Restore(var_device);
}

}  // namespace control
}  // namespace rdmadl
