// MembershipService: a virtual-time lease/heartbeat failure detector that
// converts fail-stop crashes (sim::FaultInjector::CrashHost) into *confirmed*
// membership changes with a bounded detection latency.
//
// Topology: the alive members form a sorted ring; each member probes its ring
// successor with a MiniRPC ping ("member/ping") over a small dedicated
// RdmaDevice bound to its own control port, so detector traffic rides the
// same simulated fabric (and suffers the same drops, spikes and crashes) as
// training traffic while keeping the message load linear in cluster size.
//
// Leases are *deadline driven*: an RPC call to a crashed host never completes
// (the fabric refuses the transfer and the send eventually flushes), so the
// detector arms an expiry event per probe instead of waiting for an error
// callback. A probe whose pong arrives before the deadline renews the lease;
// `missed_leases_to_confirm` consecutive expiries confirm the target dead and
// fire the on_death callback.
//
// False-positive guarantee: a probe only counts as missed when its round trip
// exceeds lease_timeout_ns. Latency spikes (or drop-triggered transport
// retransmissions) that keep the RTT under the lease timeout therefore never
// cause even a suspicion — the property test sweeps seeds over spiky links to
// pin this down.
//
// Fail-stop modeling: the simulator keeps executing every member's scheduled
// closures even after its host crashes, but a real crashed process stops
// running. Each member therefore checks its *own* liveness against the fault
// injector before acting and goes silent when dead. This is the only injector
// query the detector makes — live members never consult the oracle about
// anyone else; they must earn detection through missed leases.
#ifndef RDMADL_SRC_CONTROL_MEMBERSHIP_H_
#define RDMADL_SRC_CONTROL_MEMBERSHIP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/device/rdma_device.h"
#include "src/sim/simulator.h"
#include "src/util/status.h"

namespace rdmadl {
namespace control {

struct MembershipOptions {
  // Cadence of probes from each member to its ring successor. The effective
  // probe cycle is max(heartbeat_interval_ns, lease_timeout_ns).
  int64_t heartbeat_interval_ns = sim::Microseconds(200);
  // Per-probe response deadline. Must comfortably exceed the ping round trip
  // (two RPC frames) or healthy members get suspected.
  int64_t lease_timeout_ns = sim::Microseconds(100);
  // Consecutive missed leases before a suspect is confirmed dead.
  int missed_leases_to_confirm = 3;
  // Control-plane port for the per-member detector device (training uses
  // 7000/7001, collectives 7100).
  uint16_t port = 7200;
};

enum class MemberState { kAlive, kSuspected, kDead };

struct MembershipStats {
  int64_t probes_sent = 0;
  int64_t pongs_received = 0;
  int64_t missed_leases = 0;
  int64_t suspicions = 0;
  int64_t suspicions_cleared = 0;
  int64_t deaths_confirmed = 0;
};

class MembershipService {
 public:
  // One detector endpoint per monitored machine id in |hosts|.
  static StatusOr<std::unique_ptr<MembershipService>> Create(
      device::DeviceDirectory* directory, const std::vector<int>& hosts,
      const MembershipOptions& options);
  ~MembershipService();

  MembershipService(const MembershipService&) = delete;
  MembershipService& operator=(const MembershipService&) = delete;

  // Arms the first probe for every member. Idempotent.
  void Start();

  // Pause() invalidates every in-flight probe/lease closure (epoch guard) so
  // a full simulator drain terminates; Resume() re-arms probes for the alive
  // members. The elastic driver brackets its quiesce/reconfigure window with
  // these.
  void Pause();
  void Resume();

  MemberState state(int host) const;
  bool any_dead() const;
  std::vector<int> alive_hosts() const;
  std::vector<int> dead_hosts() const;
  // Virtual time the death of |host| was confirmed, -1 while alive.
  int64_t confirmed_dead_at_ns(int host) const;

  // Worst-case virtual time from a crash to its confirmation: the remainder
  // of the in-flight probe cycle, then one full cycle per required miss, plus
  // the final lease expiry.
  int64_t detection_bound_ns() const;

  // Invoked at most once per member, at confirmation time.
  void set_on_death(std::function<void(int host, int64_t now_ns)> cb) {
    on_death_ = std::move(cb);
  }

  const MembershipStats& stats() const { return stats_; }
  const MembershipOptions& options() const { return options_; }

 private:
  struct Member {
    int host = -1;
    Endpoint endpoint;
    std::unique_ptr<device::RdmaDevice> device;
    MemberState state = MemberState::kAlive;
    int missed = 0;               // Consecutive missed leases (as a target).
    uint64_t probe_seq = 0;       // Last probe id sent (as a monitor).
    uint64_t last_pong_seq = 0;   // Highest probe id answered (as a monitor).
    int64_t confirmed_dead_at_ns = -1;
  };

  MembershipService(device::DeviceDirectory* directory, MembershipOptions options);

  // The crashed-process-stops-executing rule (see file comment).
  bool SelfDead(int host) const;
  // Next alive member after |host| on the id-sorted ring; |host| itself when
  // it is the only survivor.
  int SuccessorOf(int host) const;
  void ArmProbe(int monitor, int64_t delay_ns);
  void SendProbe(int monitor);
  void OnLeaseExpiry(int monitor, int target, uint64_t seq);
  void ConfirmDead(int target);

  device::DeviceDirectory* directory_;
  MembershipOptions options_;
  sim::Simulator* simulator_ = nullptr;
  std::map<int, Member> members_;  // Ordered: probe scheduling is deterministic.
  MembershipStats stats_;
  std::function<void(int, int64_t)> on_death_;
  bool started_ = false;
  bool paused_ = false;
  // Bumped by Pause()/Resume(); scheduled closures from older epochs no-op.
  uint64_t epoch_ = 0;
};

}  // namespace control
}  // namespace rdmadl

#endif  // RDMADL_SRC_CONTROL_MEMBERSHIP_H_
