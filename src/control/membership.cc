#include "src/control/membership.h"

#include <algorithm>
#include <utility>

#include "src/net/fabric.h"
#include "src/sim/fault.h"
#include "src/sim/trace.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace control {
namespace {

constexpr char kPingMethod[] = "member/ping";

}  // namespace

MembershipService::MembershipService(device::DeviceDirectory* directory,
                                     MembershipOptions options)
    : directory_(directory), options_(options) {}

MembershipService::~MembershipService() = default;

StatusOr<std::unique_ptr<MembershipService>> MembershipService::Create(
    device::DeviceDirectory* directory, const std::vector<int>& hosts,
    const MembershipOptions& options) {
  if (hosts.empty()) return InvalidArgument("membership needs at least one host");
  if (options.heartbeat_interval_ns <= 0 || options.lease_timeout_ns <= 0 ||
      options.missed_leases_to_confirm <= 0) {
    return InvalidArgument("membership intervals and miss threshold must be positive");
  }
  auto svc = std::unique_ptr<MembershipService>(
      new MembershipService(directory, options));
  for (int host : hosts) {
    if (svc->members_.count(host) > 0) {
      return InvalidArgument(StrCat("duplicate membership host ", host));
    }
    Member m;
    m.host = host;
    m.endpoint = Endpoint{host, options.port};
    RDMADL_ASSIGN_OR_RETURN(m.device, device::RdmaDevice::Create(
                                          directory, /*num_cqs=*/1,
                                          /*num_qps_per_peer=*/1, m.endpoint));
    // Answering a ping is all the liveness protocol needs; the request never
    // reaches a crashed host (the fabric refuses the transfer), so reaching
    // this handler at all is the proof of life.
    m.device->RegisterRpcHandler(
        kPingMethod,
        [](const std::vector<uint8_t>&) { return std::vector<uint8_t>{1}; });
    svc->simulator_ = m.device->simulator();
    svc->members_.emplace(host, std::move(m));
  }
  return svc;
}

bool MembershipService::SelfDead(int host) const {
  sim::FaultInjector* injector =
      directory_->rdma_fabric()->fabric()->fault_injector();
  if (injector == nullptr) return false;
  return injector->HostDead(host, simulator_->Now());
}

int MembershipService::SuccessorOf(int host) const {
  auto it = members_.upper_bound(host);
  for (size_t i = 0; i < members_.size(); ++i, ++it) {
    if (it == members_.end()) it = members_.begin();
    if (it->second.state != MemberState::kDead) return it->first;
  }
  return host;
}

int64_t MembershipService::detection_bound_ns() const {
  const int64_t cycle =
      std::max(options_.heartbeat_interval_ns, options_.lease_timeout_ns);
  return (options_.missed_leases_to_confirm + 1) * cycle + options_.lease_timeout_ns;
}

void MembershipService::Start() {
  if (started_) return;
  started_ = true;
  paused_ = false;
  // Stagger first probes across the interval so n members do not all hit the
  // wire on the same virtual instant.
  const int64_t slice =
      options_.heartbeat_interval_ns / static_cast<int64_t>(members_.size());
  int i = 0;
  for (auto& [host, m] : members_) {
    (void)m;
    ArmProbe(host, options_.heartbeat_interval_ns + i * slice);
    ++i;
  }
}

void MembershipService::Pause() {
  ++epoch_;
  paused_ = true;
}

void MembershipService::Resume() {
  if (!started_) return;
  ++epoch_;
  paused_ = false;
  for (auto& [host, m] : members_) {
    if (m.state == MemberState::kDead) continue;
    ArmProbe(host, options_.heartbeat_interval_ns);
  }
}

void MembershipService::ArmProbe(int monitor, int64_t delay_ns) {
  const uint64_t epoch = epoch_;
  simulator_->ScheduleAfter(delay_ns, [this, monitor, epoch]() {
    if (epoch != epoch_ || paused_) return;
    SendProbe(monitor);
  });
}

void MembershipService::SendProbe(int monitor) {
  Member& mm = members_.at(monitor);
  if (mm.state == MemberState::kDead) return;
  // A crashed process stops executing: its monitor goes silent instead of
  // misinterpreting its own unreachable fabric as everyone else's death.
  if (SelfDead(monitor)) return;
  const int target = SuccessorOf(monitor);
  if (target == monitor) return;  // Sole survivor: nothing to watch.

  const uint64_t seq = ++mm.probe_seq;
  const uint64_t epoch = epoch_;
  ++stats_.probes_sent;
  mm.device->Call(members_.at(target).endpoint, kPingMethod, {},
                  [this, monitor, seq, epoch](const Status& s,
                                              const std::vector<uint8_t>&) {
                    if (epoch != epoch_) return;
                    // Any response — even an RPC-level error — proves the
                    // peer's process was alive to produce it.
                    (void)s;
                    Member& m = members_.at(monitor);
                    m.last_pong_seq = std::max(m.last_pong_seq, seq);
                    ++stats_.pongs_received;
                  });
  simulator_->ScheduleAfter(options_.lease_timeout_ns,
                            [this, monitor, target, seq, epoch]() {
                              if (epoch != epoch_ || paused_) return;
                              OnLeaseExpiry(monitor, target, seq);
                            });
}

void MembershipService::OnLeaseExpiry(int monitor, int target, uint64_t seq) {
  Member& mm = members_.at(monitor);
  if (mm.state == MemberState::kDead || SelfDead(monitor)) return;
  Member& tt = members_.at(target);
  const bool ponged = mm.last_pong_seq >= seq;
  // Only judge the target if this monitor is still responsible for it (a
  // confirmed death in between retargets the ring).
  if (tt.state != MemberState::kDead && SuccessorOf(monitor) == target) {
    if (ponged) {
      tt.missed = 0;
      if (tt.state == MemberState::kSuspected) {
        tt.state = MemberState::kAlive;
        ++stats_.suspicions_cleared;
        sim::TraceInstant("membership",
                          StrCat("host", target, " suspicion cleared"),
                          simulator_->Now());
      }
    } else {
      ++stats_.missed_leases;
      ++tt.missed;
      if (tt.state == MemberState::kAlive) {
        tt.state = MemberState::kSuspected;
        ++stats_.suspicions;
        sim::TraceInstant("membership",
                          StrCat("host", target, " suspected (missed lease ",
                                 tt.missed, ")"),
                          simulator_->Now());
      }
      if (tt.missed >= options_.missed_leases_to_confirm) {
        ConfirmDead(target);
      }
    }
  }
  // Keep the cadence: the next probe goes out one interval after the previous
  // send (the expiry fired lease_timeout after it).
  const int64_t gap =
      std::max<int64_t>(0, options_.heartbeat_interval_ns - options_.lease_timeout_ns);
  ArmProbe(monitor, gap);
}

void MembershipService::ConfirmDead(int target) {
  Member& tt = members_.at(target);
  if (tt.state == MemberState::kDead) return;
  tt.state = MemberState::kDead;
  tt.confirmed_dead_at_ns = simulator_->Now();
  ++stats_.deaths_confirmed;
  sim::TraceInstant("membership", StrCat("host", target, " confirmed dead"),
                    simulator_->Now());
  if (on_death_) on_death_(target, tt.confirmed_dead_at_ns);
}

MemberState MembershipService::state(int host) const {
  auto it = members_.find(host);
  CHECK(it != members_.end()) << "unknown membership host " << host;
  return it->second.state;
}

bool MembershipService::any_dead() const {
  for (const auto& [host, m] : members_) {
    (void)host;
    if (m.state == MemberState::kDead) return true;
  }
  return false;
}

std::vector<int> MembershipService::alive_hosts() const {
  std::vector<int> out;
  for (const auto& [host, m] : members_) {
    if (m.state != MemberState::kDead) out.push_back(host);
  }
  return out;
}

std::vector<int> MembershipService::dead_hosts() const {
  std::vector<int> out;
  for (const auto& [host, m] : members_) {
    if (m.state == MemberState::kDead) out.push_back(host);
  }
  return out;
}

int64_t MembershipService::confirmed_dead_at_ns(int host) const {
  auto it = members_.find(host);
  CHECK(it != members_.end()) << "unknown membership host " << host;
  return it->second.confirmed_dead_at_ns;
}

}  // namespace control
}  // namespace rdmadl
