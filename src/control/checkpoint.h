// CheckpointManager: periodic snapshots of model/optimizer state (the PS
// variable shards, or the per-replica variables in all-reduce mode) into
// host-local memory, so recovery after a confirmed failure is
// rollback-to-last-checkpoint instead of restart-from-scratch.
//
// Consistency: the training driver only snapshots *between* steps, after the
// simulator has quiesced, so every variable reflects the same completed step
// — a consistent cut by construction (synchronous data-parallel training has
// no in-flight updates between steps).
//
// Memory fidelity follows the cluster's compute mode: in kReal mode the
// snapshot deep-copies variable bytes into checkpoint buffers and Restore
// copies them back; in kSimulated mode buffers are virtual so the snapshot
// captures metadata (name/dtype/shape/placement) and the *time* cost of the
// copy, which is what the discrete-event model needs. Restore may retarget a
// variable to a different device than it was captured on (PS shard
// reassignment after a server death): it overwrites the variable in place
// when the new owner already holds it, and pre-creates it otherwise so the
// next step's Variable kernel adopts the restored state instead of
// re-initializing.
#ifndef RDMADL_SRC_CONTROL_CHECKPOINT_H_
#define RDMADL_SRC_CONTROL_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/runtime/session.h"
#include "src/util/status.h"

namespace rdmadl {
namespace control {

struct CheckpointOptions {
  // Snapshot every K completed steps (<= 0 disables periodic snapshots; the
  // driver still takes an initial one so a checkpoint always exists).
  int interval_steps = 5;
  // Modeled host-DRAM copy bandwidth; a snapshot or restore of B bytes
  // advances virtual time by B / this.
  double snapshot_bytes_per_sec = 20e9;
};

struct CheckpointStats {
  int64_t snapshots = 0;
  int64_t restores = 0;
  uint64_t bytes_captured = 0;       // Cumulative over all snapshots.
  uint64_t last_snapshot_bytes = 0;
  int64_t variables_captured = 0;    // In the latest snapshot.
  int64_t variables_restored = 0;    // Cumulative.
};

class CheckpointManager {
 public:
  CheckpointManager(runtime::Cluster* cluster, const CheckpointOptions& options)
      : cluster_(cluster), options_(options) {}

  bool ShouldSnapshot(int64_t completed_steps) const {
    return options_.interval_steps > 0 && completed_steps > 0 &&
           completed_steps % options_.interval_steps == 0;
  }

  // Captures every variable of every live process. |step| and |samples| tag
  // the checkpoint so the driver can roll its counters back on restore.
  // Replaces the previous checkpoint (single-slot, last-wins).
  Status Snapshot(int64_t step, double samples);

  // Capture restricted to |devices| — after an elastic reconfiguration a
  // dead server's ResourceManager still holds the shards that were reassigned
  // away from it, so the driver scopes the capture to the surviving
  // membership to keep variable names unique.
  Status Snapshot(int64_t step, double samples, std::vector<std::string> devices);

  // Restores the captured variables; |var_device| maps variable name to the
  // device that owns it in the *current* (possibly reconfigured) placement.
  // Captured variables absent from the map are skipped — they belonged to
  // replicas that no longer exist.
  Status Restore(const std::map<std::string, std::string>& var_device);

  // Convenience: restore every variable to the device it was captured on.
  Status Restore();

  bool has_checkpoint() const { return has_checkpoint_; }
  int64_t step() const { return step_; }
  double samples() const { return samples_; }
  const CheckpointStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::string source_device;
    tensor::DType dtype;
    tensor::TensorShape shape;
    uint64_t bytes = 0;
    std::vector<uint8_t> data;  // Empty in kSimulated mode.
  };

  // Advances virtual time by the modeled copy cost of |bytes|.
  void ChargeCopyCost(uint64_t bytes);

  runtime::Cluster* cluster_;
  CheckpointOptions options_;
  bool has_checkpoint_ = false;
  int64_t step_ = 0;
  double samples_ = 0;
  std::map<std::string, Entry> entries_;  // Ordered: deterministic restore.
  CheckpointStats stats_;
};

}  // namespace control
}  // namespace rdmadl

#endif  // RDMADL_SRC_CONTROL_CHECKPOINT_H_
