// Chrome-trace (about://tracing, Perfetto) event recording for the simulated
// cluster. Components emit named duration events on named tracks ("worker:0
// gpu", "host2 egress", ...) in virtual time; Tracer::WriteJson produces a
// trace-event-format file that loads directly into the Perfetto UI, making a
// step's compute/communication overlap visible at a glance.
//
// Tracing is off unless a Tracer is installed (zero overhead on the hot path
// beyond one pointer test).
#ifndef RDMADL_SRC_SIM_TRACE_H_
#define RDMADL_SRC_SIM_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace rdmadl {
namespace sim {

class Tracer {
 public:
  // Records a completed span on |track| from |start_ns| to |end_ns|.
  void AddSpan(const std::string& track, const std::string& name, int64_t start_ns,
               int64_t end_ns);

  // Records an instantaneous event.
  void AddInstant(const std::string& track, const std::string& name, int64_t at_ns);

  // Serializes in Chrome trace-event JSON (displayTimeUnit ns; timestamps in
  // microseconds as the format requires).
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  size_t num_events() const { return events_.size(); }
  void Clear() { events_.clear(); }

  // Process-wide tracer slot: components record via Tracer::Current() when
  // one is installed. Not thread-safe (the simulation is single-threaded).
  static Tracer* Current() { return current_; }
  static void Install(Tracer* tracer) { current_ = tracer; }

 private:
  struct Event {
    std::string track;
    std::string name;
    int64_t start_ns;
    int64_t end_ns;  // == start_ns for instants.
  };

  // Track name -> stable tid for the JSON output.
  int TidFor(const std::string& track);

  std::vector<Event> events_;
  std::map<std::string, int> tids_;
  static Tracer* current_;
};

// Convenience: record a span iff a tracer is installed.
inline void TraceSpan(const std::string& track, const std::string& name, int64_t start_ns,
                      int64_t end_ns) {
  if (Tracer* tracer = Tracer::Current()) {
    tracer->AddSpan(track, name, start_ns, end_ns);
  }
}

inline void TraceInstant(const std::string& track, const std::string& name, int64_t at_ns) {
  if (Tracer* tracer = Tracer::Current()) {
    tracer->AddInstant(track, name, at_ns);
  }
}

}  // namespace sim
}  // namespace rdmadl

#endif  // RDMADL_SRC_SIM_TRACE_H_
