// sim::Explorer: a stateless (CHESS/Coyote-style) model checker for the
// deterministic discrete-event simulator.
//
// A run of the simulator is fully determined by its inputs, so the *only*
// legal alternative histories are (a) permutations of events that tie at the
// same virtual timestamp — the (time, seq) tie-break is a modeling artifact,
// not physics — and (b) bounded perturbations of delays at sites that declare
// themselves scheduling noise via Simulator::ScheduleAfterJittered (poll
// intervals, NIC processing overheads). The explorer re-runs a workload once
// per schedule: a ScheduleTrace records, for each tie of two or more events,
// which member dispatched first, plus a jitter seed. Depth-first enumeration
// over decision prefixes covers the schedule tree without revisits; replaying
// any trace reproduces its run bit-for-bit.
//
// Partial-order reduction: each event observed in a tie group accumulates a
// footprint — the (host, address range) set it touched, reported by shadow
// checkers (RdmaCheck) through OnExploreAccess. A branch that would merely
// commute events with disjoint footprints is pruned: the reordered run would
// re-observe the parent's states. This is the classic stateless-MC
// approximation (footprints come from the parent run's observation, and
// events invisible to the checker are conservatively treated as conflicting —
// an event with an empty footprint is never pruned against).
//
// Failures are classified (checker diagnostic, deadlock, livelock, timeout,
// plain error) into a stable `failure_class` string; a delta-debugging
// minimizer then shrinks the failing trace — shortest failing prefix, then
// canonicalizing choices back to 0 — to a minimal reproducer that can be
// dumped as a replayable JSON artifact.
#ifndef RDMADL_SRC_SIM_EXPLORE_H_
#define RDMADL_SRC_SIM_EXPLORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/status.h"

namespace rdmadl {
namespace sim {

// One alternative history: at the k-th tie point of the run, dispatch the
// choices[k]-th member of the group (ascending-seq order); past the end of
// |choices| the canonical member (index 0) dispatches. jitter_seed != 0
// additionally perturbs every ScheduleAfterJittered delay by a deterministic
// draw in [-jitter_bound_ns, +jitter_bound_ns] (clamped so delays stay >= 0).
struct ScheduleTrace {
  std::vector<uint32_t> choices;
  uint64_t jitter_seed = 0;
  int64_t jitter_bound_ns = 0;
};

enum class StallKind {
  kNone = 0,
  kDeadlock,  // Event queue drained with the workload incomplete.
  kLivelock,  // Event cap hit: pollers rescheduling forever without progress.
  kTimeout,   // Virtual-time deadline elapsed with events still queued.
};
const char* StallKindName(StallKind kind);

// Typed stall diagnostic: what the run was waiting on when it stopped making
// progress (filled in by the check-layer harness from RdmaCheck's pending
// flag/WR shadow state).
struct StallDiagnostic {
  StallKind kind = StallKind::kNone;
  std::string message;
};

// What one replay produced. An empty failure_class means the run was clean;
// otherwise the class is a stable, schedule-independent label ("check:<kind>",
// "stall:deadlock", "fail:<status code>", ...) used to decide whether two
// schedules exhibit the same bug (the minimizer's equivalence relation).
struct RunReport {
  Status status = OkStatus();
  std::string failure_class;
  StallDiagnostic stall;
  std::string details;  // Full human-readable report (checker output etc).
};

// A workload builds its whole world on the supplied (fresh) simulator, runs
// it, and reports. It must be a pure function of the simulator's schedule:
// no wall-clock, no global mutable state carried across calls.
using ExploreWorkload = std::function<RunReport(Simulator&)>;

struct ExploreOptions {
  std::string name;        // For reports and artifacts.
  int max_schedules = 64;  // Replay budget for the enumeration phase.
  bool use_por = true;     // Prune commuting-only branches.
  // Jitter probes: schedules 2..2+jitter_schedules run the canonical choice
  // sequence under per-seed delay perturbation (and branch like any other).
  int jitter_schedules = 4;
  int64_t jitter_bound_ns = 200;
  bool minimize = true;      // Delta-debug the first failing trace.
  int minimize_budget = 96;  // Extra replays the minimizer may spend.
  std::string artifact_path;  // Non-empty: dump the minimized repro as JSON.
};

struct ExploreStats {
  uint64_t schedules_run = 0;
  uint64_t decision_points = 0;   // Tie groups of arity >= 2 encountered.
  uint64_t naive_branches = 0;    // Sum over decision points of (arity - 1).
  uint64_t branches_pruned = 0;   // Dropped by partial-order reduction.
  uint64_t branches_enqueued = 0;
  uint64_t frontier_dropped = 0;  // Dropped because the frontier hit its cap.
  uint64_t max_tie_arity = 0;
  uint64_t minimize_runs = 0;
  // Wall-clock throughput; excluded from Summary() so two-run diffs of
  // explorer output stay byte-identical (report it to stderr only).
  double schedules_per_sec = 0.0;
};

struct ExploreResult {
  bool failure_found = false;
  RunReport first_failure;
  ScheduleTrace failing_trace;    // As first encountered.
  ScheduleTrace minimized_trace;  // After ddmin (== failing_trace if off).
  RunReport minimized_report;     // From replaying minimized_trace.
  ExploreStats stats;

  // Deterministic multi-line report (no wall-clock content).
  std::string Summary() const;
};

class Explorer {
 public:
  explicit Explorer(ExploreOptions options = ExploreOptions{});
  ~Explorer();

  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  // Enumerates schedules until a failure is found or the budget is spent.
  ExploreResult Explore(const ExploreWorkload& workload);

  // Replays one schedule (e.g. a minimized artifact) and returns its report.
  RunReport Replay(const ExploreWorkload& workload, const ScheduleTrace& trace);

  // The explorer currently replaying a workload, if any (mirrors
  // RdmaCheck::Current): shadow checkers feed event footprints through this.
  static Explorer* Current() { return current_; }

  // Attributes [lo, hi) on |host| to the event being dispatched.
  void RecordAccess(int host, uint64_t lo, uint64_t hi);

  const ExploreOptions& options() const { return options_; }

 private:
  friend class ReplayPolicy;

  struct Decision {
    uint32_t arity = 0;
    uint32_t chosen = 0;
    std::vector<uint64_t> seqs;  // Ascending: the canonical group order.
  };
  struct AccessRange {
    int host = -1;
    uint64_t lo = 0;
    uint64_t hi = 0;
  };
  using Footprints = std::map<uint64_t, std::vector<AccessRange>>;  // By seq.
  struct RunOutcome {
    RunReport report;
    std::vector<Decision> decisions;
    Footprints footprints;
  };

  RunOutcome RunOne(const ExploreWorkload& workload, const ScheduleTrace& trace);
  // True if dispatching group member |alt| first provably commutes with every
  // member it overtakes (disjoint non-empty footprints).
  static bool IndependentOfEarlier(const Decision& decision, uint32_t alt,
                                   const Footprints& footprints);
  ScheduleTrace Minimize(const ExploreWorkload& workload, const ScheduleTrace& failing,
                         const std::string& failure_class, ExploreStats* stats);

  static Explorer* current_;

  ExploreOptions options_;
  // Set by ReplayPolicy for the duration of each event dispatch.
  std::vector<AccessRange>* current_event_accesses_ = nullptr;
};

// Hook for shadow checkers: attributes the access to the event currently
// being dispatched in an exploration replay. One pointer load when idle.
inline void OnExploreAccess(int host, uint64_t lo, uint64_t hi) {
  if (Explorer* e = Explorer::Current()) e->RecordAccess(host, lo, hi);
}

// RDMADL_EXPLORE=<bound> mirrors RDMADL_CHECK: 0 / unset / empty disables
// exploration (suites then run their canonical schedule once); a positive
// integer is the per-workload schedule budget.
int ExploreBoundFromEnv();

// ---- replayable artifacts -------------------------------------------------

// {"workload": ..., "choices": [...], "jitter_seed": N, "jitter_bound_ns": N,
//  "failure_class": ..., "status": ..., "stall": ...}
std::string TraceToJson(const std::string& workload_name, const ScheduleTrace& trace,
                        const RunReport& report);
StatusOr<ScheduleTrace> TraceFromJson(const std::string& json);
Status WriteTraceArtifact(const std::string& path, const std::string& workload_name,
                          const ScheduleTrace& trace, const RunReport& report);
StatusOr<ScheduleTrace> ReadTraceArtifact(const std::string& path);

}  // namespace sim
}  // namespace rdmadl

#endif  // RDMADL_SRC_SIM_EXPLORE_H_
