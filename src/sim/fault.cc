#include "src/sim/fault.h"

#include <algorithm>

namespace rdmadl {
namespace sim {

void FaultInjector::SetLinkFault(int src_host, int dst_host, const LinkFaultSpec& spec) {
  LinkState& state = links_[{src_host, dst_host}];
  state.spec = spec;
  state.forced_drops_remaining = spec.drop_first_n;
}

void FaultInjector::SetLinkDown(int host, int64_t from_ns, int64_t until_ns) {
  if (until_ns <= from_ns) return;
  std::vector<DownWindow>& windows = down_windows_[host];
  windows.push_back(DownWindow{from_ns, until_ns});
  std::sort(windows.begin(), windows.end(),
            [](const DownWindow& a, const DownWindow& b) { return a.from_ns < b.from_ns; });
}

void FaultInjector::FlapLink(int host, int64_t first_down_ns, int64_t down_ns,
                             int64_t up_ns, int cycles) {
  int64_t at = first_down_ns;
  for (int i = 0; i < cycles; ++i) {
    SetLinkDown(host, at, at + down_ns);
    at += down_ns + up_ns;
  }
}

void FaultInjector::CrashHost(int host, int64_t at_ns) {
  auto it = crash_times_.find(host);
  if (it == crash_times_.end() || at_ns < it->second) crash_times_[host] = at_ns;
}

void FaultInjector::ConfigureStragglers(const StragglerSpec& spec, int num_hosts) {
  straggler_spec_ = spec;
  dilations_.assign(static_cast<size_t>(num_hosts), 1.0);
  if (spec.straggler_probability <= 0.0) return;
  for (int host = 0; host < num_hosts; ++host) {
    if (rng_.UniformDouble() >= spec.straggler_probability) continue;
    double factor = spec.dilation_min;
    if (spec.dilation_max > spec.dilation_min) {
      factor += rng_.UniformDouble() * (spec.dilation_max - spec.dilation_min);
    }
    if (factor > 1.0) ++stats_.stragglers;
    dilations_[host] = factor;
  }
}

double FaultInjector::ComputeDilation(int host) const {
  if (host < 0 || static_cast<size_t>(host) >= dilations_.size()) return 1.0;
  return dilations_[host];
}

int64_t FaultInjector::DrawJitterNs(int, int) {
  if (straggler_spec_.jitter_max_ns <= 0) return 0;
  const int64_t jitter = static_cast<int64_t>(
      rng_.UniformDouble() * static_cast<double>(straggler_spec_.jitter_max_ns));
  if (jitter > 0) ++stats_.jitter_draws;
  return jitter;
}

int FaultInjector::FirstDeadHost(int src_host, int dst_host, int64_t now) const {
  if (HostDead(src_host, now)) return src_host;
  if (HostDead(dst_host, now)) return dst_host;
  return -1;
}

bool FaultInjector::HostDead(int host, int64_t now) const {
  auto it = crash_times_.find(host);
  return it != crash_times_.end() && now >= it->second;
}

FaultInjector::LinkState* FaultInjector::FindState(int src_host, int dst_host) {
  auto it = links_.find({src_host, dst_host});
  return it == links_.end() ? nullptr : &it->second;
}

const LinkFaultSpec& FaultInjector::SpecFor(int src_host, int dst_host) {
  LinkState* state = FindState(src_host, dst_host);
  return state != nullptr ? state->spec : default_spec_;
}

bool FaultInjector::ShouldDropSegment(int src_host, int dst_host) {
  LinkState* state = FindState(src_host, dst_host);
  if (state != nullptr && state->forced_drops_remaining > 0) {
    --state->forced_drops_remaining;
    ++stats_.forced_drops;
    ++stats_.dropped_segments;
    return true;
  }
  const LinkFaultSpec& spec = state != nullptr ? state->spec : default_spec_;
  if (spec.drop_probability <= 0.0) return false;
  if (rng_.UniformDouble() >= spec.drop_probability) return false;
  ++stats_.dropped_segments;
  return true;
}

int64_t FaultInjector::DrawSpikeNs(int src_host, int dst_host) {
  const LinkFaultSpec& spec = SpecFor(src_host, dst_host);
  if (spec.spike_probability <= 0.0) return 0;
  if (rng_.UniformDouble() >= spec.spike_probability) return 0;
  ++stats_.latency_spikes;
  if (spec.spike_max_ns <= spec.spike_min_ns) return spec.spike_min_ns;
  return spec.spike_min_ns +
         static_cast<int64_t>(rng_.UniformDouble() *
                              static_cast<double>(spec.spike_max_ns - spec.spike_min_ns));
}

const std::vector<DownWindow>& FaultInjector::down_windows(int host) const {
  static const std::vector<DownWindow>* empty = new std::vector<DownWindow>();
  auto it = down_windows_.find(host);
  return it == down_windows_.end() ? *empty : it->second;
}

}  // namespace sim
}  // namespace rdmadl
