// Seeded, deterministic fault injection for the simulated fabric.
//
// A FaultInjector is configured up front (drop probabilities, latency-spike
// distributions, link down/up windows, host crash times) and then attached to
// a net::Fabric with Fabric::SetFaultInjector. From that point the fabric
// consults it on every transfer:
//
//   * per-directed-link drop probability — each wire segment (chunk) draws
//     once; a dropped segment fails the transfer with kUnavailable at the
//     segment's delivery time (the ascending-offset prefix that already
//     landed stays delivered, matching a go-back-N transport);
//   * deterministic forced drops (drop_first_n) — the first N segments on a
//     link are lost regardless of probability, for seed-independent tests;
//   * latency spikes — with spike_probability, a transfer's propagation
//     latency is inflated by a uniform draw from [spike_min_ns, spike_max_ns];
//   * link down/up windows — installed onto the Link objects at attach time;
//     a reservation that would start inside a window queues until the link
//     recovers (transmissions already in flight when the link goes down are
//     allowed to finish);
//   * whole-host crashes — from crash time T every transfer touching the host
//     fails with kUnavailable (fail-stop from the fabric's point of view;
//     local compute in the simulation is unaffected).
//
// Determinism: all randomness comes from one sim::Rng seeded at construction,
// and draws happen in simulator event order, so two runs with the same seed
// and the same configuration produce byte-identical traces. A fabric with no
// injector attached never consumes randomness and behaves exactly as before.
#ifndef RDMADL_SRC_SIM_FAULT_H_
#define RDMADL_SRC_SIM_FAULT_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/sim/rng.h"

namespace rdmadl {
namespace sim {

// Fault behaviour of one directed link (src host -> dst host).
struct LinkFaultSpec {
  // Probability that any single wire segment is lost.
  double drop_probability = 0.0;
  // The first N segments on this link are dropped deterministically (consumed
  // before the probability draw). Seed-independent; ideal for tests.
  int drop_first_n = 0;
  // Probability that a transfer suffers a latency spike, and the spike's
  // uniform range. One draw per transfer, added to propagation latency.
  double spike_probability = 0.0;
  int64_t spike_min_ns = 0;
  int64_t spike_max_ns = 0;
};

struct DownWindow {
  int64_t from_ns = 0;
  int64_t until_ns = 0;  // Exclusive: the link is usable again at until_ns.
};

// Straggler/jitter knob: the chaos dimension where nothing *fails*, the
// cluster just gets slow and uneven. Per-host compute dilation is drawn once
// at configuration time (a straggler is a property of a host, not of an
// instant), per-transfer link jitter is drawn in event order like spikes.
struct StragglerSpec {
  // Probability that a host is a straggler; stragglers' compute costs are
  // multiplied by a uniform draw from [dilation_min, dilation_max].
  double straggler_probability = 0.0;
  double dilation_min = 1.0;
  double dilation_max = 1.0;
  // Uniform per-transfer propagation jitter in [0, jitter_max_ns], applied to
  // every transfer on every link. 0 disables (and consumes no randomness).
  int64_t jitter_max_ns = 0;
};

struct FaultInjectorStats {
  uint64_t dropped_segments = 0;
  uint64_t forced_drops = 0;
  uint64_t latency_spikes = 0;
  uint64_t crash_rejections = 0;  // Transfers refused because a host is dead.
  uint64_t stragglers = 0;        // Hosts dilated by ConfigureStragglers.
  uint64_t jitter_draws = 0;      // Non-zero jitter applied to a transfer.
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed), rng_(seed) {}

  // ---- Configuration (call before Fabric::SetFaultInjector) ----

  // Fault spec for the directed pair src_host -> dst_host.
  void SetLinkFault(int src_host, int dst_host, const LinkFaultSpec& spec);
  // Fallback spec for every directed pair without an explicit one.
  void SetDefaultLinkFault(const LinkFaultSpec& spec) { default_spec_ = spec; }

  // The host's NIC port is down in [from_ns, until_ns): nothing new starts
  // on its egress or ingress links until the window ends.
  void SetLinkDown(int host, int64_t from_ns, int64_t until_ns);
  // Flapping link: |cycles| down windows of |down_ns| each, separated by
  // |up_ns| of healthy time, starting at |first_down_ns|.
  void FlapLink(int host, int64_t first_down_ns, int64_t down_ns, int64_t up_ns,
                int cycles);

  // Fail-stop: every transfer touching |host| at or after |at_ns| fails.
  void CrashHost(int host, int64_t at_ns);

  // Draws each host's compute-dilation factor now (deterministically, in host
  // order) so later queries consume no randomness. Call before attaching, in
  // a fixed position of the configuration sequence.
  void ConfigureStragglers(const StragglerSpec& spec, int num_hosts);

  // ---- Queries (fabric side) ----

  // First dead endpoint of {src_host, dst_host} at |now|, or -1 if both live.
  int FirstDeadHost(int src_host, int dst_host, int64_t now) const;
  // True if |host| has crashed by |now|.
  bool HostDead(int host, int64_t now) const;
  // Consumes randomness. Deterministic given identical call order.
  bool ShouldDropSegment(int src_host, int dst_host);
  // Extra propagation latency for this transfer (0 = no spike). Consumes
  // randomness when the link's spike probability is non-zero.
  int64_t DrawSpikeNs(int src_host, int dst_host);
  // Straggler-knob jitter for one transfer (0 when unconfigured, consuming no
  // randomness so pre-knob seeds keep their draw order).
  int64_t DrawJitterNs(int src_host, int dst_host);
  // Compute-cost multiplier for |host|: 1.0 for healthy hosts and whenever
  // stragglers are unconfigured. Consumes no randomness (drawn up front).
  double ComputeDilation(int host) const;
  bool stragglers_configured() const { return !dilations_.empty(); }

  const std::vector<DownWindow>& down_windows(int host) const;
  const std::map<int, int64_t>& crash_times() const { return crash_times_; }

  uint64_t seed() const { return seed_; }
  const FaultInjectorStats& stats() const { return stats_; }

 private:
  struct LinkState {
    LinkFaultSpec spec;
    int forced_drops_remaining = 0;
  };

  // Mutable per-link state for the directed pair, or nullptr if none.
  LinkState* FindState(int src_host, int dst_host);
  const LinkFaultSpec& SpecFor(int src_host, int dst_host);

  uint64_t seed_;
  Rng rng_;
  LinkFaultSpec default_spec_;
  StragglerSpec straggler_spec_;
  std::vector<double> dilations_;  // Per-host; empty = knob off.
  std::map<std::pair<int, int>, LinkState> links_;
  std::map<int, std::vector<DownWindow>> down_windows_;
  std::map<int, int64_t> crash_times_;
  FaultInjectorStats stats_;
};

}  // namespace sim
}  // namespace rdmadl

#endif  // RDMADL_SRC_SIM_FAULT_H_
