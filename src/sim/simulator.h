// Deterministic discrete-event simulation kernel.
//
// All components of the simulated cluster (NIC engines, TCP stacks, executor
// worker contexts) are driven by one Simulator instance: they schedule
// callbacks at virtual times and the kernel dispatches them in (time, seq)
// order, so a run is fully deterministic and independent of wall-clock speed.
//
// Virtual time is int64 nanoseconds.
#ifndef RDMADL_SRC_SIM_SIMULATOR_H_
#define RDMADL_SRC_SIM_SIMULATOR_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/logging.h"
#include "src/util/status.h"

namespace rdmadl {
namespace sim {

// Duration helpers (all return nanoseconds).
constexpr int64_t Nanoseconds(int64_t n) { return n; }
constexpr int64_t Microseconds(double us) { return static_cast<int64_t>(us * 1e3); }
constexpr int64_t Milliseconds(double ms) { return static_cast<int64_t>(ms * 1e6); }
constexpr int64_t Seconds(double s) { return static_cast<int64_t>(s * 1e9); }

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() { heap_.reserve(kInitialEventCapacity); }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time in nanoseconds.
  int64_t Now() const { return now_; }

  // Schedules |cb| to run at absolute virtual time |time| (>= Now()).
  void ScheduleAt(int64_t time, Callback cb) {
    CHECK_GE(time, now_) << "cannot schedule into the past";
    heap_.push_back(Event{time, next_seq_++, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<Event>{});
  }

  // Schedules |cb| to run |delay| nanoseconds from now.
  void ScheduleAfter(int64_t delay, Callback cb) {
    CHECK_GE(delay, 0);
    ScheduleAt(now_ + delay, std::move(cb));
  }

  // Runs events until the queue drains, |max_events| fire, or Stop() is
  // called. Returns kDeadlineExceeded if the event cap was hit (usually a
  // livelock, e.g. two pollers rescheduling each other forever).
  Status Run(uint64_t max_events = kDefaultMaxEvents);

  // Runs until virtual time reaches |deadline| (events at t > deadline stay
  // queued), the queue drains, or the event cap is hit.
  Status RunUntil(int64_t deadline, uint64_t max_events = kDefaultMaxEvents);

  // Runs until |done| returns true (checked after every event).
  Status RunUntilPredicate(const std::function<bool()>& done,
                           uint64_t max_events = kDefaultMaxEvents);

  // Like RunUntilPredicate, but gives up with kDeadlineExceeded once the next
  // event lies past |deadline| (virtual time advances to the deadline so the
  // caller observes the elapsed budget). Events beyond the deadline stay
  // queued; the caller is expected to abort or drain them.
  Status RunUntilPredicateOrDeadline(const std::function<bool()>& done, int64_t deadline,
                                     uint64_t max_events = kDefaultMaxEvents);

  // Makes the current Run() call return after the in-flight event completes.
  void Stop() { stop_requested_ = true; }

  // Number of events dispatched since construction.
  uint64_t events_dispatched() const { return events_dispatched_; }

  bool empty() const { return heap_.empty(); }

  static constexpr uint64_t kDefaultMaxEvents = 500'000'000;

  // Backing storage reserved up front: a steady-state training step keeps
  // hundreds of events in flight, and reserving once avoids the repeated
  // grow-and-move reallocations in the first moments of every simulation.
  static constexpr size_t kInitialEventCapacity = 1024;

 private:
  struct Event {
    int64_t time;
    uint64_t seq;  // Tie-break so equal-time events run in schedule order.
    Callback cb;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  // Pops and dispatches one event. Returns false when the queue is empty.
  bool Step();

  // Earliest queued event (callers must check empty() first).
  const Event& NextEvent() const { return heap_.front(); }

  int64_t now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_dispatched_ = 0;
  bool stop_requested_ = false;
  // Min-heap on (time, seq) over an explicitly managed vector: identical
  // dispatch order to the std::priority_queue it replaces, but the capacity
  // is reserved up front, popping moves the callback out without the
  // const_cast a priority_queue's const top() forces, and the vector's
  // capacity survives drain/refill cycles.
  std::vector<Event> heap_;
};

}  // namespace sim
}  // namespace rdmadl

#endif  // RDMADL_SRC_SIM_SIMULATOR_H_
