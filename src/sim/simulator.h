// Deterministic discrete-event simulation kernel.
//
// All components of the simulated cluster (NIC engines, TCP stacks, executor
// worker contexts) are driven by one Simulator instance: they schedule
// callbacks at virtual times and the kernel dispatches them in (time, seq)
// order, so a run is fully deterministic and independent of wall-clock speed.
//
// Virtual time is int64 nanoseconds.
#ifndef RDMADL_SRC_SIM_SIMULATOR_H_
#define RDMADL_SRC_SIM_SIMULATOR_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/logging.h"
#include "src/util/status.h"

namespace rdmadl {
namespace sim {

// Duration helpers (all return nanoseconds).
constexpr int64_t Nanoseconds(int64_t n) { return n; }
constexpr int64_t Microseconds(double us) { return static_cast<int64_t>(us * 1e3); }
constexpr int64_t Milliseconds(double ms) { return static_cast<int64_t>(ms * 1e6); }
constexpr int64_t Seconds(double s) { return static_cast<int64_t>(s * 1e9); }

// Observes and steers the dispatch loop. The default dispatch order —
// ascending (time, seq) — is what every normal run uses; a policy exists so
// the schedule-space explorer (sim/explore.h) can (a) permute same-timestamp
// ties, the only reorderings that are legal under the cost model, and
// (b) perturb delays at sites that opted in via ScheduleAfterJittered.
// With no policy installed the simulator behaves byte-identically to a
// policy that always picks index 0 and never perturbs.
class SchedulePolicy {
 public:
  virtual ~SchedulePolicy();

  // |seqs| holds the seq numbers of every event ready at the earliest queued
  // time, in ascending order (the canonical dispatch order). Returns the
  // index of the event to dispatch next; out-of-range picks fall back to 0.
  // Called only when two or more events tie.
  virtual uint32_t PickTied(const std::vector<uint64_t>& seqs) = 0;

  // May adjust a delay passed to ScheduleAfterJittered (poll intervals, NIC
  // processing overheads — sites where the cost model is a point estimate of
  // a noisy quantity). Must return a value >= 0.
  virtual int64_t PerturbDelay(int64_t delay_ns) { return delay_ns; }

  // Bracket the dispatch of every event (tied or not), so a policy can
  // attribute side effects (e.g. checker-observed memory accesses) to the
  // event that produced them.
  virtual void BeginEvent(int64_t time, uint64_t seq);
  virtual void EndEvent(int64_t time, uint64_t seq);
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() { heap_.reserve(kInitialEventCapacity); }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time in nanoseconds.
  int64_t Now() const { return now_; }

  // Schedules |cb| to run at absolute virtual time |time| (>= Now()).
  void ScheduleAt(int64_t time, Callback cb) {
    CHECK_GE(time, now_) << "cannot schedule into the past";
    heap_.push_back(Event{time, next_seq_++, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<Event>{});
  }

  // Schedules |cb| to run |delay| nanoseconds from now.
  void ScheduleAfter(int64_t delay, Callback cb) {
    CHECK_GE(delay, 0);
    ScheduleAt(now_ + delay, std::move(cb));
  }

  // Like ScheduleAfter, but the installed SchedulePolicy (if any) may perturb
  // |delay| within its configured bound. Use at scheduling-noise sites only:
  // poll intervals, processing overheads — never for fabric segment
  // deliveries, whose relative times encode intra-transfer causality.
  void ScheduleAfterJittered(int64_t delay, Callback cb) {
    if (policy_ != nullptr && delay > 0) {
      delay = policy_->PerturbDelay(delay);
      CHECK_GE(delay, 0) << "SchedulePolicy::PerturbDelay returned a negative delay";
    }
    ScheduleAfter(delay, std::move(cb));
  }

  // Installs (or clears, with nullptr) the dispatch policy. The policy must
  // outlive every Run/Step call made while it is installed.
  void set_schedule_policy(SchedulePolicy* policy) { policy_ = policy; }
  SchedulePolicy* schedule_policy() const { return policy_; }

  // Runs events until the queue drains, |max_events| fire, or Stop() is
  // called. Returns kDeadlineExceeded if the event cap was hit (usually a
  // livelock, e.g. two pollers rescheduling each other forever).
  Status Run(uint64_t max_events = kDefaultMaxEvents);

  // Runs until virtual time reaches |deadline| (events at t > deadline stay
  // queued), the queue drains, or the event cap is hit.
  Status RunUntil(int64_t deadline, uint64_t max_events = kDefaultMaxEvents);

  // Runs until |done| returns true (checked after every event).
  Status RunUntilPredicate(const std::function<bool()>& done,
                           uint64_t max_events = kDefaultMaxEvents);

  // Like RunUntilPredicate, but gives up with kDeadlineExceeded once the next
  // event lies past |deadline| (virtual time advances to the deadline so the
  // caller observes the elapsed budget). Events beyond the deadline stay
  // queued; the caller is expected to abort or drain them.
  Status RunUntilPredicateOrDeadline(const std::function<bool()>& done, int64_t deadline,
                                     uint64_t max_events = kDefaultMaxEvents);

  // Makes the current Run() call return after the in-flight event completes.
  void Stop() { stop_requested_ = true; }

  // Number of events dispatched since construction.
  uint64_t events_dispatched() const { return events_dispatched_; }

  bool empty() const { return heap_.empty(); }

  static constexpr uint64_t kDefaultMaxEvents = 500'000'000;

  // Backing storage reserved up front: a steady-state training step keeps
  // hundreds of events in flight, and reserving once avoids the repeated
  // grow-and-move reallocations in the first moments of every simulation.
  static constexpr size_t kInitialEventCapacity = 1024;

 private:
  struct Event {
    int64_t time;
    uint64_t seq;  // Tie-break so equal-time events run in schedule order.
    Callback cb;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  // Pops and dispatches one event. Returns false when the queue is empty.
  bool Step();

  // Step() with a SchedulePolicy installed: gathers the group of events tied
  // at the earliest time and lets the policy pick which one runs.
  bool StepWithPolicy();

  // Earliest queued event (callers must check empty() first).
  const Event& NextEvent() const { return heap_.front(); }

  int64_t now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_dispatched_ = 0;
  bool stop_requested_ = false;
  // Min-heap on (time, seq) over an explicitly managed vector: identical
  // dispatch order to the std::priority_queue it replaces, but the capacity
  // is reserved up front, popping moves the callback out without the
  // const_cast a priority_queue's const top() forces, and the vector's
  // capacity survives drain/refill cycles.
  std::vector<Event> heap_;
  SchedulePolicy* policy_ = nullptr;
  // Scratch for StepWithPolicy, kept as members so their capacity survives
  // across steps (the policy path re-heapifies the unchosen tie members).
  std::vector<Event> tie_events_;
  std::vector<uint64_t> tie_seqs_;
};

}  // namespace sim
}  // namespace rdmadl

#endif  // RDMADL_SRC_SIM_SIMULATOR_H_
