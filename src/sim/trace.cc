#include "src/sim/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace rdmadl {
namespace sim {

Tracer* Tracer::current_ = nullptr;

void Tracer::AddSpan(const std::string& track, const std::string& name, int64_t start_ns,
                     int64_t end_ns) {
  events_.push_back(Event{track, name, start_ns, end_ns});
}

void Tracer::AddInstant(const std::string& track, const std::string& name, int64_t at_ns) {
  events_.push_back(Event{track, name, at_ns, at_ns});
}

int Tracer::TidFor(const std::string& track) {
  auto it = tids_.find(track);
  if (it == tids_.end()) {
    it = tids_.emplace(track, static_cast<int>(tids_.size()) + 1).first;
  }
  return it->second;
}

namespace {

// JSON string escaping for event/track names: quotes, backslashes and every
// control character (RFC 8259 requires escaping U+0000..U+001F; a raw newline
// or tab in a track name would corrupt the trace file).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string Tracer::ToJson() const {
  // TidFor mutates the tid map; serialization assigns tids on first use.
  Tracer* self = const_cast<Tracer*>(this);
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  for (const Event& event : events_) {
    if (!first) os << ",\n";
    first = false;
    const int tid = self->TidFor(event.track);
    const double ts_us = event.start_ns / 1e3;
    if (event.end_ns > event.start_ns) {
      const double dur_us = (event.end_ns - event.start_ns) / 1e3;
      os << "{\"name\":\"" << Escape(event.name) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
         << ",\"ts\":" << ts_us << ",\"dur\":" << dur_us << "}";
    } else {
      os << "{\"name\":\"" << Escape(event.name)
         << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << ts_us
         << "}";
    }
  }
  // Thread-name metadata so tracks show their component names.
  for (const auto& [track, tid] : tids_) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << Escape(track) << "\"}}";
  }
  os << "\n]}\n";
  return os.str();
}

Status Tracer::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Internal("cannot open trace file " + path);
  }
  out << ToJson();
  return out ? OkStatus() : Internal("short write to " + path);
}

}  // namespace sim
}  // namespace rdmadl
