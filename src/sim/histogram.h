// Deterministic fixed-bucket latency histogram (HdrHistogram-style).
//
// Tail percentiles are the whole point of the congestion work: a mean hides
// an incast collapse completely. This histogram is built for the simulator's
// determinism contract rather than for statistical finesse:
//
//   * the bucket layout is fixed at compile time — log2 major buckets with 16
//     linear sub-buckets each (≤ 6.25% relative error), so two same-seed runs
//     produce bit-identical percentiles on any platform;
//   * Percentile() returns a bucket's exact lower bound (an int64), never an
//     interpolated double, so printing it is stable across libm versions;
//   * no allocation after construction; Merge() is element-wise addition, so
//     per-worker histograms fold into cluster-wide ones.
#ifndef RDMADL_SRC_SIM_HISTOGRAM_H_
#define RDMADL_SRC_SIM_HISTOGRAM_H_

#include <array>
#include <bit>
#include <cstdint>

namespace rdmadl {
namespace sim {

class LatencyHistogram {
 public:
  // Values 0..15 get exact buckets; above that, 16 sub-buckets per power of
  // two up to 2^63. 60 major buckets x 16 = 960 counters.
  static constexpr int kSubBuckets = 16;
  static constexpr int kNumBuckets = 960;

  void Record(int64_t value_ns) {
    if (value_ns < 0) value_ns = 0;
    ++counts_[BucketIndex(value_ns)];
    ++count_;
    sum_ += value_ns;
    if (value_ns < min_ || count_ == 1) min_ = value_ns;
    if (value_ns > max_) max_ = value_ns;
  }

  uint64_t count() const { return count_; }
  int64_t min_ns() const { return count_ == 0 ? 0 : min_; }
  int64_t max_ns() const { return max_; }
  int64_t mean_ns() const {
    return count_ == 0 ? 0 : static_cast<int64_t>(sum_ / count_);
  }

  // The value at or below which at least |percentile| percent of recordings
  // fall (nearest-rank, reported as the bucket's lower bound). Deterministic:
  // pure integer arithmetic. Returns 0 on an empty histogram.
  int64_t Percentile(double percentile) const {
    if (count_ == 0) return 0;
    if (percentile <= 0.0) return min_ns();
    // Nearest-rank index, computed in integer space: rank = ceil(p/100 * n).
    uint64_t rank = (static_cast<uint64_t>(percentile * 1000.0) * count_ + 99'999) / 100'000;
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += counts_[i];
      if (seen >= rank) return BucketLowerBound(i);
    }
    return max_;
  }

  int64_t P50() const { return Percentile(50.0); }
  int64_t P99() const { return Percentile(99.0); }
  int64_t P999() const { return Percentile(99.9); }

  void Merge(const LatencyHistogram& other) {
    if (other.count_ == 0) return;
    for (int i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
  }

  void Reset() {
    counts_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
  }

  static int BucketIndex(int64_t v) {
    if (v < kSubBuckets) return static_cast<int>(v);
    // Major bucket = position of the MSB; sub-bucket = the next 4 bits.
    const int msb = 63 - std::countl_zero(static_cast<uint64_t>(v));
    const int sub = static_cast<int>((v >> (msb - 4)) & (kSubBuckets - 1));
    // msb == 4 (values 16..31) continues seamlessly after the 0..15 region.
    return (msb - 3) * kSubBuckets + sub;
  }

  static int64_t BucketLowerBound(int index) {
    if (index < kSubBuckets) return index;
    const int msb = index / kSubBuckets + 3;
    const int sub = index % kSubBuckets;
    return static_cast<int64_t>(kSubBuckets + sub) << (msb - 4);
  }

 private:
  std::array<uint64_t, kNumBuckets> counts_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace sim
}  // namespace rdmadl

#endif  // RDMADL_SRC_SIM_HISTOGRAM_H_
