#include "src/sim/simulator.h"

#include <utility>

namespace rdmadl {
namespace sim {

bool Simulator::Step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<Event>{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  CHECK_GE(ev.time, now_);
  now_ = ev.time;
  ++events_dispatched_;
  ev.cb();
  return true;
}

Status Simulator::Run(uint64_t max_events) {
  stop_requested_ = false;
  uint64_t fired = 0;
  while (!stop_requested_) {
    if (fired++ >= max_events) {
      return Status(StatusCode::kDeadlineExceeded,
                    "simulator event cap hit; likely a polling livelock");
    }
    if (!Step()) break;
  }
  return OkStatus();
}

Status Simulator::RunUntil(int64_t deadline, uint64_t max_events) {
  stop_requested_ = false;
  uint64_t fired = 0;
  while (!stop_requested_ && !heap_.empty() && NextEvent().time <= deadline) {
    if (fired++ >= max_events) {
      return Status(StatusCode::kDeadlineExceeded,
                    "simulator event cap hit; likely a polling livelock");
    }
    Step();
  }
  if (now_ < deadline && heap_.empty()) {
    now_ = deadline;  // Idle time passes even with nothing scheduled.
  } else if (now_ < deadline) {
    now_ = deadline;
  }
  return OkStatus();
}

Status Simulator::RunUntilPredicate(const std::function<bool()>& done, uint64_t max_events) {
  stop_requested_ = false;
  uint64_t fired = 0;
  while (!stop_requested_ && !done()) {
    if (fired++ >= max_events) {
      return Status(StatusCode::kDeadlineExceeded,
                    "simulator event cap hit; likely a polling livelock");
    }
    if (!Step()) {
      return Status(StatusCode::kFailedPrecondition,
                    "event queue drained before predicate became true");
    }
  }
  return OkStatus();
}

Status Simulator::RunUntilPredicateOrDeadline(const std::function<bool()>& done,
                                              int64_t deadline, uint64_t max_events) {
  stop_requested_ = false;
  uint64_t fired = 0;
  while (!stop_requested_ && !done()) {
    if (fired++ >= max_events) {
      return Status(StatusCode::kDeadlineExceeded,
                    "simulator event cap hit; likely a polling livelock");
    }
    if (heap_.empty()) {
      return Status(StatusCode::kFailedPrecondition,
                    "event queue drained before predicate became true");
    }
    if (NextEvent().time > deadline) {
      if (now_ < deadline) now_ = deadline;
      return Status(StatusCode::kDeadlineExceeded,
                    "virtual-time deadline reached before predicate became true");
    }
    Step();
  }
  return OkStatus();
}

}  // namespace sim
}  // namespace rdmadl
