#include "src/sim/simulator.h"

#include <utility>

namespace rdmadl {
namespace sim {

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; moving the callback out is safe because we
  // pop immediately and never compare the moved-from element again.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  CHECK_GE(ev.time, now_);
  now_ = ev.time;
  ++events_dispatched_;
  ev.cb();
  return true;
}

Status Simulator::Run(uint64_t max_events) {
  stop_requested_ = false;
  uint64_t fired = 0;
  while (!stop_requested_) {
    if (fired++ >= max_events) {
      return Status(StatusCode::kDeadlineExceeded,
                    "simulator event cap hit; likely a polling livelock");
    }
    if (!Step()) break;
  }
  return OkStatus();
}

Status Simulator::RunUntil(int64_t deadline, uint64_t max_events) {
  stop_requested_ = false;
  uint64_t fired = 0;
  while (!stop_requested_ && !queue_.empty() && queue_.top().time <= deadline) {
    if (fired++ >= max_events) {
      return Status(StatusCode::kDeadlineExceeded,
                    "simulator event cap hit; likely a polling livelock");
    }
    Step();
  }
  if (now_ < deadline && queue_.empty()) {
    now_ = deadline;  // Idle time passes even with nothing scheduled.
  } else if (now_ < deadline) {
    now_ = deadline;
  }
  return OkStatus();
}

Status Simulator::RunUntilPredicate(const std::function<bool()>& done, uint64_t max_events) {
  stop_requested_ = false;
  uint64_t fired = 0;
  while (!stop_requested_ && !done()) {
    if (fired++ >= max_events) {
      return Status(StatusCode::kDeadlineExceeded,
                    "simulator event cap hit; likely a polling livelock");
    }
    if (!Step()) {
      return Status(StatusCode::kFailedPrecondition,
                    "event queue drained before predicate became true");
    }
  }
  return OkStatus();
}

Status Simulator::RunUntilPredicateOrDeadline(const std::function<bool()>& done,
                                              int64_t deadline, uint64_t max_events) {
  stop_requested_ = false;
  uint64_t fired = 0;
  while (!stop_requested_ && !done()) {
    if (fired++ >= max_events) {
      return Status(StatusCode::kDeadlineExceeded,
                    "simulator event cap hit; likely a polling livelock");
    }
    if (queue_.empty()) {
      return Status(StatusCode::kFailedPrecondition,
                    "event queue drained before predicate became true");
    }
    if (queue_.top().time > deadline) {
      if (now_ < deadline) now_ = deadline;
      return Status(StatusCode::kDeadlineExceeded,
                    "virtual-time deadline reached before predicate became true");
    }
    Step();
  }
  return OkStatus();
}

}  // namespace sim
}  // namespace rdmadl
