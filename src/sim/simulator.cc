#include "src/sim/simulator.h"

#include <utility>

namespace rdmadl {
namespace sim {

SchedulePolicy::~SchedulePolicy() = default;
void SchedulePolicy::BeginEvent(int64_t /*time*/, uint64_t /*seq*/) {}
void SchedulePolicy::EndEvent(int64_t /*time*/, uint64_t /*seq*/) {}

bool Simulator::Step() {
  if (policy_ != nullptr) return StepWithPolicy();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<Event>{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  CHECK_GE(ev.time, now_);
  now_ = ev.time;
  ++events_dispatched_;
  ev.cb();
  return true;
}

bool Simulator::StepWithPolicy() {
  if (heap_.empty()) return false;
  // Gather every event tied at the earliest queued time. Heap pops among
  // equal times come out in ascending seq order, so index i of the group is
  // the i-th event of the canonical schedule.
  tie_events_.clear();
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<Event>{});
  tie_events_.push_back(std::move(heap_.back()));
  heap_.pop_back();
  const int64_t time = tie_events_.front().time;
  while (!heap_.empty() && heap_.front().time == time) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<Event>{});
    tie_events_.push_back(std::move(heap_.back()));
    heap_.pop_back();
  }
  uint32_t pick = 0;
  if (tie_events_.size() > 1) {
    tie_seqs_.clear();
    for (const Event& ev : tie_events_) tie_seqs_.push_back(ev.seq);
    pick = policy_->PickTied(tie_seqs_);
    if (pick >= tie_events_.size()) pick = 0;
  }
  Event ev = std::move(tie_events_[pick]);
  for (size_t i = 0; i < tie_events_.size(); ++i) {
    if (i == pick) continue;
    heap_.push_back(std::move(tie_events_[i]));
    std::push_heap(heap_.begin(), heap_.end(), std::greater<Event>{});
  }
  tie_events_.clear();
  CHECK_GE(ev.time, now_);
  now_ = ev.time;
  ++events_dispatched_;
  policy_->BeginEvent(ev.time, ev.seq);
  ev.cb();
  // The callback may legitimately uninstall the policy (end of a replay).
  if (policy_ != nullptr) policy_->EndEvent(ev.time, ev.seq);
  return true;
}

Status Simulator::Run(uint64_t max_events) {
  stop_requested_ = false;
  uint64_t fired = 0;
  while (!stop_requested_) {
    if (fired++ >= max_events) {
      return Status(StatusCode::kDeadlineExceeded,
                    "simulator event cap hit; likely a polling livelock");
    }
    if (!Step()) break;
  }
  return OkStatus();
}

Status Simulator::RunUntil(int64_t deadline, uint64_t max_events) {
  stop_requested_ = false;
  uint64_t fired = 0;
  while (!stop_requested_ && !heap_.empty() && NextEvent().time <= deadline) {
    if (fired++ >= max_events) {
      return Status(StatusCode::kDeadlineExceeded,
                    "simulator event cap hit; likely a polling livelock");
    }
    Step();
  }
  if (now_ < deadline && heap_.empty()) {
    now_ = deadline;  // Idle time passes even with nothing scheduled.
  } else if (now_ < deadline) {
    now_ = deadline;
  }
  return OkStatus();
}

Status Simulator::RunUntilPredicate(const std::function<bool()>& done, uint64_t max_events) {
  stop_requested_ = false;
  uint64_t fired = 0;
  while (!stop_requested_ && !done()) {
    if (fired++ >= max_events) {
      return Status(StatusCode::kDeadlineExceeded,
                    "simulator event cap hit; likely a polling livelock");
    }
    if (!Step()) {
      return Status(StatusCode::kFailedPrecondition,
                    "event queue drained before predicate became true");
    }
  }
  return OkStatus();
}

Status Simulator::RunUntilPredicateOrDeadline(const std::function<bool()>& done,
                                              int64_t deadline, uint64_t max_events) {
  stop_requested_ = false;
  uint64_t fired = 0;
  while (!stop_requested_ && !done()) {
    if (fired++ >= max_events) {
      return Status(StatusCode::kDeadlineExceeded,
                    "simulator event cap hit; likely a polling livelock");
    }
    if (heap_.empty()) {
      return Status(StatusCode::kFailedPrecondition,
                    "event queue drained before predicate became true");
    }
    if (NextEvent().time > deadline) {
      if (now_ < deadline) now_ = deadline;
      return Status(StatusCode::kDeadlineExceeded,
                    "virtual-time deadline reached before predicate became true");
    }
    Step();
  }
  return OkStatus();
}

}  // namespace sim
}  // namespace rdmadl
