// Deterministic pseudo-random number generator (splitmix64-seeded
// xorshift128+). Every stochastic choice in the simulation draws from an Rng
// with an explicit seed so runs are reproducible bit-for-bit.
#ifndef RDMADL_SRC_SIM_RNG_H_
#define RDMADL_SRC_SIM_RNG_H_

#include <cmath>
#include <cstdint>

namespace rdmadl {
namespace sim {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 to spread the seed across both words of state.
    uint64_t z = seed + 0x9E3779B97f4A7C15ULL;
    state_[0] = SplitMix(&z);
    state_[1] = SplitMix(&z);
    if (state_[0] == 0 && state_[1] == 0) state_[0] = 1;
  }

  // Uniform in [0, 2^64).
  uint64_t Next() {
    uint64_t s1 = state_[0];
    const uint64_t s0 = state_[1];
    state_[0] = s0;
    s1 ^= s1 << 23;
    state_[1] = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
    return state_[1] + s0;
  }

  // Uniform in [0, bound).
  uint64_t Uniform(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

  // Uniform double in [0, 1).
  double UniformDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) { return lo + (hi - lo) * UniformDouble(); }

  // Standard normal via Box-Muller.
  double Normal() {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

 private:
  static uint64_t SplitMix(uint64_t* z) {
    uint64_t r = (*z += 0x9E3779B97f4A7C15ULL);
    r = (r ^ (r >> 30)) * 0xBF58476D1CE4E5B9ULL;
    r = (r ^ (r >> 27)) * 0x94D049BB133111EBULL;
    return r ^ (r >> 31);
  }

  uint64_t state_[2];
};

}  // namespace sim
}  // namespace rdmadl

#endif  // RDMADL_SRC_SIM_RNG_H_
