#include "src/sim/explore.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace sim {

Explorer* Explorer::current_ = nullptr;

const char* StallKindName(StallKind kind) {
  switch (kind) {
    case StallKind::kNone:
      return "none";
    case StallKind::kDeadlock:
      return "deadlock";
    case StallKind::kLivelock:
      return "livelock";
    case StallKind::kTimeout:
      return "timeout";
  }
  return "?";
}

int ExploreBoundFromEnv() {
  const char* env = std::getenv("RDMADL_EXPLORE");
  if (env == nullptr || *env == '\0') return 0;
  const long value = std::strtol(env, nullptr, 10);
  return value > 0 ? static_cast<int>(value) : 0;
}

namespace {

// Deterministic per-trace jitter stream (splitmix64): the same seed always
// perturbs the same ScheduleAfterJittered call sequence identically, which is
// what makes a jittered schedule replayable.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::string ChoicesToString(const std::vector<uint32_t>& choices) {
  std::string out = "[";
  for (size_t i = 0; i < choices.size(); ++i) {
    if (i > 0) out += ",";
    out += StrCat(choices[i]);
  }
  out += "]";
  return out;
}

// "52.3%" without float formatting (keeps Summary() byte-deterministic).
std::string Permille(uint64_t part, uint64_t whole) {
  if (whole == 0) return "0.0%";
  const uint64_t pm = part * 1000 / whole;
  return StrCat(pm / 10, ".", pm % 10, "%");
}

}  // namespace

// Drives one replay: forces the trace's choices at each tie point, records
// the decision log, watches tie-group members' footprints, and perturbs
// jitter-site delays from the trace's seed.
class ReplayPolicy : public SchedulePolicy {
 public:
  ReplayPolicy(const ScheduleTrace& trace, Explorer* explorer)
      : trace_(trace), explorer_(explorer), rng_state_(trace.jitter_seed) {}

  uint32_t PickTied(const std::vector<uint64_t>& seqs) override {
    Explorer::Decision decision;
    decision.arity = static_cast<uint32_t>(seqs.size());
    decision.seqs = seqs;
    uint32_t pick = 0;
    if (cursor_ < trace_.choices.size()) {
      pick = std::min(trace_.choices[cursor_], decision.arity - 1);
    }
    ++cursor_;
    decision.chosen = pick;
    // Every member of a tie group becomes footprint-watched: its accesses
    // (whenever it eventually dispatches in this run) feed the POR check for
    // branches of this decision point.
    for (uint64_t seq : seqs) footprints_.try_emplace(seq);
    decisions_.push_back(std::move(decision));
    return pick;
  }

  int64_t PerturbDelay(int64_t delay_ns) override {
    if (trace_.jitter_seed == 0 || trace_.jitter_bound_ns <= 0 || delay_ns <= 0) {
      return delay_ns;
    }
    // Uniform in [-bound, +bound], bound capped at the delay itself so the
    // perturbed delay stays non-negative (relative order with unrelated
    // events may change — that is the point — but time never runs backward).
    const int64_t bound = std::min(trace_.jitter_bound_ns, delay_ns);
    const int64_t delta =
        static_cast<int64_t>(NextRandom(&rng_state_) % (2 * bound + 1)) - bound;
    return delay_ns + delta;
  }

  void BeginEvent(int64_t /*time*/, uint64_t seq) override {
    auto it = footprints_.find(seq);
    explorer_->current_event_accesses_ = it == footprints_.end() ? nullptr : &it->second;
  }

  void EndEvent(int64_t /*time*/, uint64_t /*seq*/) override {
    explorer_->current_event_accesses_ = nullptr;
  }

  std::vector<Explorer::Decision> TakeDecisions() { return std::move(decisions_); }
  Explorer::Footprints TakeFootprints() { return std::move(footprints_); }

 private:
  const ScheduleTrace& trace_;
  Explorer* explorer_;
  uint64_t rng_state_;
  size_t cursor_ = 0;
  std::vector<Explorer::Decision> decisions_;
  Explorer::Footprints footprints_;
};

Explorer::Explorer(ExploreOptions options) : options_(std::move(options)) {}

Explorer::~Explorer() { CHECK(current_ != this) << "Explorer destroyed mid-replay"; }

void Explorer::RecordAccess(int host, uint64_t lo, uint64_t hi) {
  if (current_event_accesses_ == nullptr || lo >= hi) return;
  // Coalesce the common pattern of repeated identical reports (flag polls).
  for (const AccessRange& r : *current_event_accesses_) {
    if (r.host == host && r.lo == lo && r.hi == hi) return;
  }
  current_event_accesses_->push_back(AccessRange{host, lo, hi});
}

Explorer::RunOutcome Explorer::RunOne(const ExploreWorkload& workload,
                                      const ScheduleTrace& trace) {
  CHECK(current_ == nullptr) << "nested schedule exploration is not supported";
  ReplayPolicy policy(trace, this);
  RunOutcome out;
  {
    Simulator simulator;
    simulator.set_schedule_policy(&policy);
    current_ = this;
    out.report = workload(simulator);
    current_ = nullptr;
    current_event_accesses_ = nullptr;
    simulator.set_schedule_policy(nullptr);
  }
  out.decisions = policy.TakeDecisions();
  out.footprints = policy.TakeFootprints();
  return out;
}

RunReport Explorer::Replay(const ExploreWorkload& workload, const ScheduleTrace& trace) {
  return RunOne(workload, trace).report;
}

bool Explorer::IndependentOfEarlier(const Decision& decision, uint32_t alt,
                                    const Footprints& footprints) {
  const auto find = [&footprints](uint64_t seq) -> const std::vector<AccessRange>* {
    auto it = footprints.find(seq);
    return it == footprints.end() ? nullptr : &it->second;
  };
  // Dispatching member |alt| first reorders it ahead of members 0..alt-1
  // only (the rest keep their relative order). The branch is redundant when
  // |alt| commutes with each of them: all footprints known, non-empty, and
  // pairwise disjoint. An event the checkers saw nothing from is treated as
  // conflicting — its effects are unknown, so the branch is kept.
  const std::vector<AccessRange>* a = find(decision.seqs[alt]);
  if (a == nullptr || a->empty()) return false;
  for (uint32_t i = 0; i < alt; ++i) {
    const std::vector<AccessRange>* b = find(decision.seqs[i]);
    if (b == nullptr || b->empty()) return false;
    for (const AccessRange& ra : *a) {
      for (const AccessRange& rb : *b) {
        if (ra.host == rb.host && ra.lo < rb.hi && rb.lo < ra.hi) return false;
      }
    }
  }
  return true;
}

ExploreResult Explorer::Explore(const ExploreWorkload& workload) {
  ExploreResult result;
  ExploreStats& stats = result.stats;
  const auto wall_start = std::chrono::steady_clock::now();

  // LIFO frontier. The canonical schedule is pushed last so it runs first;
  // jitter probes follow, then DFS over tie-choice branches.
  std::vector<ScheduleTrace> frontier;
  for (int j = options_.jitter_schedules; j >= 1; --j) {
    ScheduleTrace probe;
    probe.jitter_seed = static_cast<uint64_t>(j);
    probe.jitter_bound_ns = options_.jitter_bound_ns;
    frontier.push_back(std::move(probe));
  }
  frontier.push_back(ScheduleTrace{});
  const size_t frontier_cap =
      std::max<size_t>(256, 8 * static_cast<size_t>(options_.max_schedules));

  while (!frontier.empty() &&
         stats.schedules_run < static_cast<uint64_t>(options_.max_schedules)) {
    ScheduleTrace trace = std::move(frontier.back());
    frontier.pop_back();
    RunOutcome out = RunOne(workload, trace);
    ++stats.schedules_run;
    if (!out.report.failure_class.empty()) {
      result.failure_found = true;
      result.first_failure = std::move(out.report);
      result.failing_trace = std::move(trace);
      break;
    }
    // Branch at every decision point this run reached beyond its forced
    // prefix. Points inside the prefix belong to ancestor runs (counting
    // them again would double-book the tree).
    for (size_t k = trace.choices.size(); k < out.decisions.size(); ++k) {
      const Decision& decision = out.decisions[k];
      ++stats.decision_points;
      stats.max_tie_arity = std::max<uint64_t>(stats.max_tie_arity, decision.arity);
      stats.naive_branches += decision.arity - 1;
      for (uint32_t alt = 1; alt < decision.arity; ++alt) {
        if (options_.use_por && IndependentOfEarlier(decision, alt, out.footprints)) {
          ++stats.branches_pruned;
          continue;
        }
        if (frontier.size() >= frontier_cap) {
          ++stats.frontier_dropped;
          continue;
        }
        ScheduleTrace child;
        child.jitter_seed = trace.jitter_seed;
        child.jitter_bound_ns = trace.jitter_bound_ns;
        child.choices.reserve(k + 1);
        for (size_t i = 0; i < k; ++i) child.choices.push_back(out.decisions[i].chosen);
        child.choices.push_back(alt);
        frontier.push_back(std::move(child));
        ++stats.branches_enqueued;
      }
    }
  }

  if (result.failure_found) {
    result.minimized_trace = result.failing_trace;
    if (options_.minimize) {
      result.minimized_trace =
          Minimize(workload, result.failing_trace, result.first_failure.failure_class, &stats);
    }
    result.minimized_report = Replay(workload, result.minimized_trace);
    if (!options_.artifact_path.empty()) {
      const Status written = WriteTraceArtifact(options_.artifact_path, options_.name,
                                                result.minimized_trace,
                                                result.minimized_report);
      if (!written.ok()) {
        LOG(ERROR) << "failed to write explore artifact: " << written;
      }
    }
  }

  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  const uint64_t total_runs =
      stats.schedules_run + stats.minimize_runs + (result.failure_found ? 1 : 0);
  stats.schedules_per_sec = wall_s > 0 ? static_cast<double>(total_runs) / wall_s : 0.0;
  return result;
}

ScheduleTrace Explorer::Minimize(const ExploreWorkload& workload, const ScheduleTrace& failing,
                                 const std::string& failure_class, ExploreStats* stats) {
  const auto fails = [&](const ScheduleTrace& candidate) {
    if (stats->minimize_runs >= static_cast<uint64_t>(options_.minimize_budget)) return false;
    ++stats->minimize_runs;
    return RunOne(workload, candidate).report.failure_class == failure_class;
  };

  ScheduleTrace best = failing;
  // Pass 1: drop the jitter dimension when the tie choices alone reproduce.
  if (best.jitter_seed != 0) {
    ScheduleTrace candidate = best;
    candidate.jitter_seed = 0;
    candidate.jitter_bound_ns = 0;
    if (fails(candidate)) best = std::move(candidate);
  }
  // Pass 2: shortest failing prefix. Every successful probe verified the
  // truncated trace, so the final resize is to a verified-failing length.
  size_t lo = 0;
  size_t hi = best.choices.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    ScheduleTrace candidate = best;
    candidate.choices.resize(mid);
    if (fails(candidate)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  best.choices.resize(hi);
  // Pass 3: canonicalize choices back to 0 where the failure persists.
  for (size_t i = 0; i < best.choices.size(); ++i) {
    if (best.choices[i] == 0) continue;
    ScheduleTrace candidate = best;
    candidate.choices[i] = 0;
    if (fails(candidate)) best = std::move(candidate);
  }
  // Trailing zeros are the canonical default — dropping them changes nothing.
  while (!best.choices.empty() && best.choices.back() == 0) best.choices.pop_back();
  return best;
}

std::string ExploreResult::Summary() const {
  std::string out = StrCat("schedules run: ", stats.schedules_run, "\n");
  out += StrCat("decision points: ", stats.decision_points,
                " (max tie arity ", stats.max_tie_arity, ")\n");
  out += StrCat("naive branches: ", stats.naive_branches, ", por pruned: ",
                stats.branches_pruned, " (", Permille(stats.branches_pruned, stats.naive_branches),
                "), enqueued: ", stats.branches_enqueued, ", frontier dropped: ",
                stats.frontier_dropped, "\n");
  if (!failure_found) {
    out += "result: clean\n";
    return out;
  }
  out += StrCat("result: FAILURE class=", first_failure.failure_class, "\n");
  out += StrCat("failing trace: choices=", ChoicesToString(failing_trace.choices),
                " jitter_seed=", failing_trace.jitter_seed, "\n");
  out += StrCat("minimized (", stats.minimize_runs, " probe(s)): choices=",
                ChoicesToString(minimized_trace.choices), " jitter_seed=",
                minimized_trace.jitter_seed, " -> class=", minimized_report.failure_class,
                "\n");
  if (minimized_report.stall.kind != StallKind::kNone) {
    out += StrCat("stall: ", StallKindName(minimized_report.stall.kind), ": ",
                  minimized_report.stall.message, "\n");
  }
  return out;
}

// ---- replayable artifacts -------------------------------------------------

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string TraceToJson(const std::string& workload_name, const ScheduleTrace& trace,
                        const RunReport& report) {
  std::string json = "{\n";
  json += StrCat("  \"workload\": \"", JsonEscape(workload_name), "\",\n");
  json += "  \"choices\": [";
  for (size_t i = 0; i < trace.choices.size(); ++i) {
    if (i > 0) json += ", ";
    json += StrCat(trace.choices[i]);
  }
  json += "],\n";
  json += StrCat("  \"jitter_seed\": ", trace.jitter_seed, ",\n");
  json += StrCat("  \"jitter_bound_ns\": ", trace.jitter_bound_ns, ",\n");
  json += StrCat("  \"failure_class\": \"", JsonEscape(report.failure_class), "\",\n");
  json += StrCat("  \"status\": \"", JsonEscape(report.status.ToString()), "\",\n");
  json += StrCat("  \"stall\": \"", JsonEscape(StrCat(StallKindName(report.stall.kind),
                                                      report.stall.message.empty() ? "" : ": ",
                                                      report.stall.message)),
                 "\"\n");
  json += "}\n";
  return json;
}

StatusOr<ScheduleTrace> TraceFromJson(const std::string& json) {
  // Minimal parser for the artifact's own fixed shape: three known scalar
  // keys plus one flat integer array. Not a general JSON reader.
  const auto find_number = [&json](std::string_view key, int64_t* out) -> bool {
    const std::string needle = StrCat("\"", key, "\":");
    const size_t at = json.find(needle);
    if (at == std::string::npos) return false;
    *out = std::strtoll(json.c_str() + at + needle.size(), nullptr, 10);
    return true;
  };
  ScheduleTrace trace;
  const size_t choices_at = json.find("\"choices\":");
  if (choices_at == std::string::npos) {
    return Status(StatusCode::kInvalidArgument, "artifact has no \"choices\" key");
  }
  const size_t open = json.find('[', choices_at);
  const size_t close = json.find(']', choices_at);
  if (open == std::string::npos || close == std::string::npos || close < open) {
    return Status(StatusCode::kInvalidArgument, "malformed \"choices\" array");
  }
  std::istringstream items(json.substr(open + 1, close - open - 1));
  std::string item;
  while (std::getline(items, item, ',')) {
    if (item.find_first_not_of(" \t\n") == std::string::npos) continue;
    trace.choices.push_back(static_cast<uint32_t>(std::strtoul(item.c_str(), nullptr, 10)));
  }
  int64_t value = 0;
  if (find_number("jitter_seed", &value)) trace.jitter_seed = static_cast<uint64_t>(value);
  if (find_number("jitter_bound_ns", &value)) trace.jitter_bound_ns = value;
  return trace;
}

Status WriteTraceArtifact(const std::string& path, const std::string& workload_name,
                          const ScheduleTrace& trace, const RunReport& report) {
  std::ofstream out(path);
  if (!out) return Status(StatusCode::kInternal, StrCat("cannot open ", path));
  out << TraceToJson(workload_name, trace, report);
  out.close();
  if (!out) return Status(StatusCode::kInternal, StrCat("failed writing ", path));
  return OkStatus();
}

StatusOr<ScheduleTrace> ReadTraceArtifact(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status(StatusCode::kNotFound, StrCat("cannot open ", path));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TraceFromJson(buffer.str());
}

}  // namespace sim
}  // namespace rdmadl
