// Endpoint: (host, port) address of a simulated server process, used both by
// the RDMA device library (Table 1 of the paper) and the RPC baselines.
#ifndef RDMADL_SRC_UTIL_ENDPOINT_H_
#define RDMADL_SRC_UTIL_ENDPOINT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/util/strings.h"

namespace rdmadl {

struct Endpoint {
  int32_t host_id = -1;  // Index of the simulated host ("IP address").
  uint16_t port = 0;     // Process port on that host.

  bool operator==(const Endpoint& other) const {
    return host_id == other.host_id && port == other.port;
  }
  bool operator!=(const Endpoint& other) const { return !(*this == other); }
  bool operator<(const Endpoint& other) const {
    return host_id != other.host_id ? host_id < other.host_id : port < other.port;
  }

  std::string ToString() const { return StrCat("host", host_id, ":", port); }
};

struct EndpointHash {
  size_t operator()(const Endpoint& ep) const {
    return std::hash<int64_t>()((static_cast<int64_t>(ep.host_id) << 16) | ep.port);
  }
};

}  // namespace rdmadl

#endif  // RDMADL_SRC_UTIL_ENDPOINT_H_
