#include "src/util/logging.h"

#include <atomic>

namespace rdmadl {
namespace logging {
namespace {

std::atomic<Level> g_min_level{Level::kWarning};

}  // namespace

Level MinLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

void SetMinLogLevel(Level level) { g_min_level.store(level, std::memory_order_relaxed); }

}  // namespace logging
}  // namespace rdmadl
