// Minimal logging + check macros.
//
// LOG(INFO) << ...;  LOG(WARNING) << ...;  LOG(ERROR) << ...;
// CHECK(cond) << ...;  CHECK_EQ(a, b) << ...;  CHECK fails abort the process.
// Log verbosity is controlled by SetMinLogLevel (benchmarks silence INFO).
#ifndef RDMADL_SRC_UTIL_LOGGING_H_
#define RDMADL_SRC_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace rdmadl {
namespace logging {

enum class Level : int { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

// Returns the process-wide minimum level; messages below it are dropped.
Level MinLogLevel();
void SetMinLogLevel(Level level);

class LogMessage {
 public:
  LogMessage(Level level, const char* file, int line) : level_(level) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
  }

  ~LogMessage() {
    if (level_ >= MinLogLevel()) {
      std::cerr << stream_.str() << std::endl;
    }
    if (level_ == Level::kFatal) {
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* LevelName(Level level) {
    switch (level) {
      case Level::kInfo:
        return "INFO";
      case Level::kWarning:
        return "WARN";
      case Level::kError:
        return "ERROR";
      case Level::kFatal:
        return "FATAL";
    }
    return "?";
  }
  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  Level level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// operator& binds lower than operator<<, letting CHECK macros consume a whole
// stream chain inside a ternary branch.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace logging

#define LOG(severity) LOG_##severity
#define LOG_INFO \
  ::rdmadl::logging::LogMessage(::rdmadl::logging::Level::kInfo, __FILE__, __LINE__).stream()
#define LOG_WARNING \
  ::rdmadl::logging::LogMessage(::rdmadl::logging::Level::kWarning, __FILE__, __LINE__).stream()
#define LOG_ERROR \
  ::rdmadl::logging::LogMessage(::rdmadl::logging::Level::kError, __FILE__, __LINE__).stream()
#define LOG_FATAL \
  ::rdmadl::logging::LogMessage(::rdmadl::logging::Level::kFatal, __FILE__, __LINE__).stream()

#define CHECK(cond)                                                                         \
  (cond) ? (void)0                                                                          \
         : ::rdmadl::logging::Voidify() &                                                   \
               ::rdmadl::logging::LogMessage(::rdmadl::logging::Level::kFatal, __FILE__,    \
                                             __LINE__)                                      \
                       .stream()                                                            \
                   << "Check failed: " #cond " "

#define CHECK_OP(a, b, op)                                                                  \
  ((a)op(b)) ? (void)0                                                                      \
             : ::rdmadl::logging::Voidify() &                                               \
                   ::rdmadl::logging::LogMessage(::rdmadl::logging::Level::kFatal,          \
                                                 __FILE__, __LINE__)                        \
                           .stream()                                                        \
                       << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " << (b)   \
                       << ") "

#define CHECK_EQ(a, b) CHECK_OP(a, b, ==)
#define CHECK_NE(a, b) CHECK_OP(a, b, !=)
#define CHECK_LT(a, b) CHECK_OP(a, b, <)
#define CHECK_LE(a, b) CHECK_OP(a, b, <=)
#define CHECK_GT(a, b) CHECK_OP(a, b, >)
#define CHECK_GE(a, b) CHECK_OP(a, b, >=)

#define CHECK_OK(expr)                                            \
  do {                                                            \
    const ::rdmadl::Status _s = (expr);                           \
    CHECK(_s.ok()) << _s.ToString();                              \
  } while (0)

}  // namespace rdmadl

#endif  // RDMADL_SRC_UTIL_LOGGING_H_
