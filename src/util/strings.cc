#include "src/util/strings.h"

#include <cmath>
#include <cstdio>

namespace rdmadl {

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string HumanDuration(int64_t nanos) {
  char buf[32];
  double v = static_cast<double>(nanos);
  if (nanos < 1000) {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(nanos));
  } else if (nanos < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2f us", v / 1e3);
  } else if (nanos < 1000LL * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", v / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", v / 1e9);
  }
  return buf;
}

std::vector<std::string> StrSplit(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

}  // namespace rdmadl
