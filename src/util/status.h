// Status and StatusOr<T>: lightweight error propagation used across the library.
//
// Modeled after absl::Status but self-contained. All public APIs in this
// repository that can fail return Status (or StatusOr<T>) instead of throwing.
#ifndef RDMADL_SRC_UTIL_STATUS_H_
#define RDMADL_SRC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace rdmadl {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kResourceExhausted = 4,
  kFailedPrecondition = 5,
  kOutOfRange = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kUnavailable = 9,
  kAborted = 10,
  kDeadlineExceeded = 11,
};

const char* StatusCodeToString(StatusCode code);

// Value-type status: OK or an error code plus message, optionally annotated
// with structured failure context (which host or transport edge failed) so
// recovery code can dispatch on the payload instead of parsing messages.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Structured failure context. `failed_host` identifies the machine whose
  // fail-stop caused the error (-1 when unknown); `failed_edge` names the
  // comm-layer edge (transfer key) the error surfaced on (empty when unknown).
  // The context rides along through copies but is deliberately excluded from
  // ToString() and operator== so error text and trace output stay unchanged.
  Status WithFailedHost(int host) const {
    Status s = *this;
    s.failed_host_ = host;
    return s;
  }
  Status WithFailedEdge(std::string edge) const {
    Status s = *this;
    s.failed_edge_ = std::move(edge);
    return s;
  }
  // Copies the other status's context onto this one, keeping any context
  // already present. Used when one layer wraps a lower layer's error in a new
  // message but must not drop the payload (e.g. QP retry exhaustion wrapping
  // a fabric crash rejection).
  Status WithContextFrom(const Status& other) const {
    Status s = *this;
    if (s.failed_host_ < 0) s.failed_host_ = other.failed_host_;
    if (s.failed_edge_.empty()) s.failed_edge_ = other.failed_edge_;
    return s;
  }
  bool has_failed_host() const { return failed_host_ >= 0; }
  int failed_host() const { return failed_host_; }
  const std::string& failed_edge() const { return failed_edge_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeToString(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
  int failed_host_ = -1;
  std::string failed_edge_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status Aborted(std::string msg) {
  return Status(StatusCode::kAborted, std::move(msg));
}
inline Status DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}

// StatusOr<T>: either a value or an error status. Accessing the value of an
// errored StatusOr is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(const T& value) : value_(value) {}          // NOLINT: implicit by design
  StatusOr(T&& value) : value_(std::move(value)) {}    // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define RDMADL_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::rdmadl::Status _status = (expr);          \
    if (!_status.ok()) return _status;          \
  } while (0)

#define RDMADL_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()

#define RDMADL_CONCAT_INNER(a, b) a##b
#define RDMADL_CONCAT(a, b) RDMADL_CONCAT_INNER(a, b)

#define RDMADL_ASSIGN_OR_RETURN(lhs, rexpr) \
  RDMADL_ASSIGN_OR_RETURN_IMPL(RDMADL_CONCAT(_status_or_, __LINE__), lhs, rexpr)

}  // namespace rdmadl

#endif  // RDMADL_SRC_UTIL_STATUS_H_
