// Small string helpers: StrCat-style concatenation and human-readable sizes.
#ifndef RDMADL_SRC_UTIL_STRINGS_H_
#define RDMADL_SRC_UTIL_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace rdmadl {

namespace internal {
inline void StrAppendImpl(std::ostringstream&) {}
template <typename T, typename... Rest>
void StrAppendImpl(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  StrAppendImpl(os, rest...);
}
}  // namespace internal

// Concatenates all arguments with operator<<.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal::StrAppendImpl(os, args...);
  return os.str();
}

// Lowercase hex digits, no "0x" prefix (prepend it at the call site).
inline std::string Hex(uint64_t value) {
  std::ostringstream os;
  os << std::hex << value;
  return os.str();
}

// "1.50 KB", "2.00 MB", ... for byte counts.
std::string HumanBytes(uint64_t bytes);

// "12.3 us", "4.56 ms", ... for nanosecond durations.
std::string HumanDuration(int64_t nanos);

// Splits on a single character; empty pieces are kept.
std::vector<std::string> StrSplit(const std::string& s, char sep);

}  // namespace rdmadl

#endif  // RDMADL_SRC_UTIL_STRINGS_H_
