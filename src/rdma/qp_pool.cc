#include "src/rdma/qp_pool.h"

#include <algorithm>
#include <utility>

#include "src/util/strings.h"

namespace rdmadl {
namespace rdma {

Status QpPool::RegisterEndpoint(const Endpoint& ep, int host_id, CqProvider cqs,
                                EvictionObserver on_evict) {
  if (cqs == nullptr) return InvalidArgument("CQ provider required");
  if (endpoints_.count(ep) > 0) {
    return FailedPrecondition(StrCat("endpoint ", ep.ToString(), " already registered"));
  }
  endpoints_[ep] = EndpointState{host_id, std::move(cqs), std::move(on_evict)};
  return OkStatus();
}

void QpPool::UnregisterEndpoint(const Endpoint& ep) {
  bool destroyed = false;
  for (auto it = lanes_.begin(); it != lanes_.end();) {
    if (it->first.lo == ep || it->first.hi == ep) {
      TearDownLane(it->first, it->second);
      it = lanes_.erase(it);
      destroyed = true;
    } else {
      ++it;
    }
  }
  if (destroyed) ++generation_;
  endpoints_.erase(ep);
}

StatusOr<QueuePair*> QpPool::Acquire(const Endpoint& local, const Endpoint& remote,
                                     int lane) {
  if (local == remote) return InvalidArgument("lane endpoints must differ");
  if (lane < 0) return InvalidArgument("negative lane index");
  LaneKey key;
  key.lo = std::min(local, remote);
  key.hi = std::max(local, remote);
  key.lane = lane;

  auto it = lanes_.find(key);
  if (it != lanes_.end()) {
    ++stats_.hits;
    it->second.last_use = ++use_clock_;
    return local == key.lo ? it->second.lo_qp : it->second.hi_qp;
  }

  auto lo_state = endpoints_.find(key.lo);
  auto hi_state = endpoints_.find(key.hi);
  if (lo_state == endpoints_.end() || hi_state == endpoints_.end()) {
    return FailedPrecondition(
        StrCat("lane endpoints not registered with the pool: ",
               (lo_state == endpoints_.end() ? key.lo : key.hi).ToString()));
  }

  // Make room on both NICs before creating anything: a colocated pair needs
  // two free contexts on the same NIC.
  const int lo_host = lo_state->second.host_id;
  const int hi_host = hi_state->second.host_id;
  NicDevice* lo_nic = rdma_->nic(lo_host);
  NicDevice* hi_nic = rdma_->nic(hi_host);
  RDMADL_RETURN_IF_ERROR(ReserveCapacity(lo_host, lo_host == hi_host ? 2 : 1));
  if (lo_host != hi_host) {
    RDMADL_RETURN_IF_ERROR(ReserveCapacity(hi_host, 1));
  }

  StatusOr<QueuePair*> lo_qp = [&]() -> StatusOr<QueuePair*> {
    CompletionQueue* cq = lo_state->second.cqs();
    return lo_nic->TryCreateQueuePair(cq, cq);
  }();
  if (!lo_qp.ok()) return lo_qp.status();
  StatusOr<QueuePair*> hi_qp = [&]() -> StatusOr<QueuePair*> {
    CompletionQueue* cq = hi_state->second.cqs();
    return hi_nic->TryCreateQueuePair(cq, cq);
  }();
  if (!hi_qp.ok()) {
    (void)lo_nic->DestroyQueuePair(*lo_qp);
    return hi_qp.status();
  }
  Status connected = (*lo_qp)->Connect(*hi_qp);
  if (!connected.ok()) return connected;

  ++stats_.creates;
  if (!ever_connected_.insert(key).second) ++stats_.reconnects;
  Lane& entry = lanes_[key];
  entry.lo_qp = *lo_qp;
  entry.hi_qp = *hi_qp;
  entry.last_use = ++use_clock_;
  return local == key.lo ? entry.lo_qp : entry.hi_qp;
}

Status QpPool::ReserveCapacity(int host_id, int count) {
  NicDevice* nic = rdma_->nic(host_id);
  while (nic->num_queue_pairs() + count > nic->cost().max_queue_pairs) {
    Status evicted = EvictOneIdleLane(host_id);
    if (!evicted.ok()) {
      ++stats_.exhausted;
      return evicted;
    }
  }
  return OkStatus();
}

Status QpPool::EvictOneIdleLane(int host_id) {
  auto victim = lanes_.end();
  for (auto it = lanes_.begin(); it != lanes_.end(); ++it) {
    auto lo_state = endpoints_.find(it->first.lo);
    auto hi_state = endpoints_.find(it->first.hi);
    const bool touches = (lo_state != endpoints_.end() && lo_state->second.host_id == host_id) ||
                         (hi_state != endpoints_.end() && hi_state->second.host_id == host_id);
    if (!touches) continue;
    if (!it->second.lo_qp->idle() || !it->second.hi_qp->idle()) continue;
    if (victim == lanes_.end() || it->second.last_use < victim->second.last_use) {
      victim = it;
    }
  }
  if (victim == lanes_.end()) {
    return ResourceExhausted(
        StrCat("NIC QP limit reached on host", host_id, " and no pooled lane is idle"));
  }
  TearDownLane(victim->first, victim->second);
  lanes_.erase(victim);
  ++stats_.evictions;
  ++generation_;
  return OkStatus();
}

void QpPool::TearDownLane(const LaneKey& key, const Lane& lane) {
  auto lo_state = endpoints_.find(key.lo);
  auto hi_state = endpoints_.find(key.hi);
  if (lo_state != endpoints_.end() && lo_state->second.on_evict) {
    lo_state->second.on_evict(key.lo, key.hi, key.lane);
  }
  if (hi_state != endpoints_.end() && hi_state->second.on_evict) {
    hi_state->second.on_evict(key.hi, key.lo, key.lane);
  }
  if (lo_state != endpoints_.end()) {
    (void)rdma_->nic(lo_state->second.host_id)->DestroyQueuePair(lane.lo_qp);
  }
  if (hi_state != endpoints_.end()) {
    (void)rdma_->nic(hi_state->second.host_id)->DestroyQueuePair(lane.hi_qp);
  }
}

}  // namespace rdma
}  // namespace rdmadl
