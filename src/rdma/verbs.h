// ibverbs-style RDMA layer over the simulated fabric.
//
// One NicDevice per host exposes the verbs the paper's device library (§3.1)
// is built on: memory-region registration (with per-page pinning cost and a
// hardware count limit), queue pairs with one-sided RDMA_WRITE / RDMA_READ and
// two-sided SEND / RECV work requests, and completion queues.
//
// Semantics preserved from real reliable-connected (RC) transports:
//   * WRs on one QP execute in FIFO order.
//   * One-sided writes deliver bytes at the target in ascending address
//     order, segment by segment (the property §3.2's tail-flag protocol
//     needs). The segments are *actually copied* into the destination
//     buffer as virtual time advances, so a poller on the remote "CPU" can
//     observe partially-written tensors exactly as on real hardware.
//   * rkey and bounds checks happen at the target NIC; violations surface as
//     error completions, not crashes.
//   * SENDs require a posted RECV at the target; arrivals wait (RNR-style)
//     until one is posted. Overlong messages complete with an error.
#ifndef RDMADL_SRC_RDMA_VERBS_H_
#define RDMADL_SRC_RDMA_VERBS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/net/fabric.h"
#include "src/util/status.h"

namespace rdmadl {
namespace rdma {

// Capped exponential backoff: min(base << attempt, cap), safe for any attempt
// (the naive `base << attempt` overflows int64 past attempt ~40 and goes
// negative, which would schedule events in the past). Shared by the RC
// transport-retry schedule and the DCQCN CNP moderation timer.
inline int64_t CappedBackoffNs(int64_t base_ns, int attempt, int64_t cap_ns) {
  if (base_ns <= 0) return 0;
  if (cap_ns <= 0) cap_ns = std::numeric_limits<int64_t>::max();
  if (base_ns >= cap_ns) return cap_ns;
  // base << attempt overflows (or exceeds the cap) exactly when
  // base > cap >> attempt; attempt >= 63 always saturates.
  if (attempt < 0) attempt = 0;
  if (attempt >= 63 || base_ns > (cap_ns >> attempt)) return cap_ns;
  return base_ns << attempt;
}

// The transport retransmission delay before attempt |attempt| (0-based).
inline int64_t TransportBackoffNs(const net::CostModel& cost, int attempt) {
  return CappedBackoffNs(cost.rdma_transport_retry_base_ns, attempt,
                         cost.rdma_transport_retry_max_ns);
}

// A registered, RDMA-accessible memory region.
struct MemoryRegion {
  uint64_t addr = 0;     // Start address (process pointer value).
  uint64_t length = 0;   // Bytes covered.
  uint32_t lkey = 0;     // Local access key.
  uint32_t rkey = 0;     // Remote access key.

  bool Contains(uint64_t a, uint64_t len) const {
    return a >= addr && len <= length && a - addr <= length - len;
  }
};

enum class Opcode { kWrite, kRead, kSend, kRecv };

const char* OpcodeName(Opcode op);

struct SendWorkRequest {
  uint64_t wr_id = 0;
  Opcode opcode = Opcode::kWrite;
  uint64_t local_addr = 0;
  uint32_t lkey = 0;
  uint64_t length = 0;
  // For kWrite / kRead only:
  uint64_t remote_addr = 0;
  uint32_t rkey = 0;
  // When false, the payload memcpy is elided (virtual-memory benchmark mode);
  // timing, ordering and completion semantics are unchanged.
  bool copy_bytes = true;
};

struct RecvWorkRequest {
  uint64_t wr_id = 0;
  uint64_t addr = 0;
  uint32_t lkey = 0;
  uint64_t length = 0;
};

struct WorkCompletion {
  uint64_t wr_id = 0;
  Opcode opcode = Opcode::kWrite;
  Status status;
  uint64_t byte_len = 0;
  uint32_t qp_num = 0;
};

class QueuePair;
class NicDevice;

// Completion queue. Entries are polled non-blockingly; a completion handler
// can be installed to model a dedicated polling thread (the device library's
// CQ poller contexts use this).
class CompletionQueue {
 public:
  explicit CompletionQueue(NicDevice* nic) : nic_(nic) {}

  // Pops the oldest completion into |wc|; returns false if empty.
  bool Poll(WorkCompletion* wc);

  size_t depth() const { return entries_.size(); }

  // Invoked (at CQE-generation virtual time) whenever an entry is pushed.
  // The handler typically polls the queue dry.
  void SetCompletionHandler(std::function<void()> handler) { handler_ = std::move(handler); }

  NicDevice* nic() const { return nic_; }

 private:
  friend class QueuePair;
  void Push(WorkCompletion wc);

  NicDevice* nic_;
  std::deque<WorkCompletion> entries_;
  std::function<void()> handler_;
};

// QP lifecycle, collapsed from the ibverbs INIT/RTR/RTS/ERR diagram to the
// two states the simulation distinguishes: serving WRs, or errored (after
// transport retry exhaustion) with everything queued flushed.
enum class QpState { kReady, kError };

// Reliable-connected queue pair.
//
// Transport reliability: a wire-level segment loss (fault injection) is
// retransmitted transparently with exponential backoff up to
// cost.rdma_transport_retry_count attempts, like the RC retry_cnt machinery.
// Exhaustion transitions the QP to the error state: the failing WR completes
// with kUnavailable, every queued send/recv WR is flushed with a kAborted
// completion (in FIFO order, after the failing one), and later posts are
// accepted but immediately flush-completed — never silently dropped.
// Recover() returns an errored QP to service (the simulation's stand-in for
// tearing down and reconnecting the QP).
class QueuePair {
 public:
  QueuePair(NicDevice* nic, uint32_t qp_num, CompletionQueue* send_cq, CompletionQueue* recv_cq)
      : nic_(nic), qp_num_(qp_num), send_cq_(send_cq), recv_cq_(recv_cq) {}

  // One-time connection to a peer QP (done out-of-band, mirroring RDMA CM).
  Status Connect(QueuePair* peer);

  Status PostSend(const SendWorkRequest& wr);
  // Posts a doorbell-chained batch of RDMA_WRITE WRs: one post overhead and
  // one NIC processing pass for the whole chain (the WQEs are linked and rung
  // with a single doorbell), one wire stream carrying the concatenated
  // payloads in posting order, then one CQE per WR pushed in FIFO order. This
  // is the verbs-level mechanism behind small-tensor coalescing: the
  // per-message CPU overhead of the cost model is paid once per batch.
  // Entries must be kWrite with length > 0. The chain shares fate like a real
  // WQE list: a remote access violation or transport-retry exhaustion fails
  // every WR in the batch.
  Status PostSendBatch(std::vector<SendWorkRequest> wrs);
  Status PostRecv(const RecvWorkRequest& wr);

  // Returns an errored QP to kReady. Call only after the error has been
  // observed and drained (no WR may be in flight).
  Status Recover();

  uint32_t qp_num() const { return qp_num_; }
  bool connected() const { return peer_ != nullptr; }
  QpState state() const { return state_; }
  bool in_error() const { return state_ == QpState::kError; }
  // True when nothing is queued, in flight, or scheduled against this QP: no
  // simulator event holds a pointer to it, so it is safe to destroy. The QP
  // pool evicts only idle lanes.
  bool idle() const {
    return !engine_busy_ && send_queue_.empty() && recv_queue_.empty() &&
           inbound_.empty() && pending_events_ == 0;
  }
  QueuePair* peer() const { return peer_; }
  // The transport failure that moved the QP to kError (OK while kReady).
  const Status& error_cause() const { return error_cause_; }
  NicDevice* nic() const { return nic_; }
  CompletionQueue* send_cq() const { return send_cq_; }
  CompletionQueue* recv_cq() const { return recv_cq_; }

 private:
  friend class NicDevice;

  struct InboundMessage {
    const uint8_t* src = nullptr;
    uint64_t length = 0;
    bool copy_bytes = true;
  };

  // A doorbell-chained WQE list; singles are batches of one.
  using Batch = std::vector<SendWorkRequest>;

  // Starts the next queued send batch if the engine is idle. The in-flight
  // batch lives in |current_| (guarded by engine_busy_: exactly one per QP),
  // so every hot-path closure below captures only `this` — 8 trivially-
  // copyable bytes, inside std::function's inline buffer. Posting, executing,
  // retrying and completing a WR therefore allocates nothing per event.
  void MaybeStartNext();
  // Dispatches |current_| after the post overhead: singles via Execute, WQE
  // chains via ExecuteBatch.
  void ExecuteCurrent();
  void Execute(const SendWorkRequest& wr);
  void ExecuteWrite(const SendWorkRequest& wr);
  void ExecuteRead(const SendWorkRequest& wr);
  void ExecuteSend(const SendWorkRequest& wr);
  // Batch counterparts of ExecuteWrite/CompleteWire/FinishCurrent; all
  // operate on |current_| and the batch cursor members.
  void ExecuteBatch();
  void CompleteBatchWire(const Status& status);
  void FinishBatch(Status status, bool ok);
  // Extra initiation delay modeling the per-QP WQE-engine throughput ceiling
  // (cost.rdma_qp_engine_bytes_per_sec); 0 when the ceiling is disabled.
  int64_t EngineDelayNs(uint64_t bytes) const;

  // ---- DCQCN reaction point (active only when the fabric's
  // CongestionConfig has dcqcn set; zero-cost otherwise) ----
  // Pacing delay for sending |bytes| at the QP's current rate instead of line
  // rate, advancing the timer/byte-counter recovery stages first. Charged as
  // extra initiation delay on every execute, including retransmissions —
  // which is exactly how a throttled QP spreads an incast burst out.
  int64_t DcqcnDelayNs(uint64_t bytes);
  // Receiver-side NP: a delivered segment carried a CE mark. Moderates per
  // the CNP interval (with capped exponential backoff while the QP already
  // sits at the rate floor) and schedules the CNP one propagation latency
  // later.
  void OnEcnFeedback(int64_t deliver_ns);
  // Sender-side RP: the CNP arrived — multiplicative rate decrease.
  void ApplyCnp();
  // The decrease itself, also invoked (without a CNP) when a transport loss
  // is detected under DCQCN: a RoCE RP treats a timeout like severe
  // congestion, which is what de-synchronizes an incast's retry storms.
  void DcqcnDecrease();
  void FinishCurrent(const SendWorkRequest& wr, Status status, uint64_t bytes);
  // Wire completion for the in-flight WR (current_.front()): success finishes
  // it, a transport failure retries with backoff or errors the QP. When
  // |deliver_inbound| is set (SEND), the payload is handed to the peer's
  // receive matching before the completion.
  void CompleteWire(const Status& status, bool deliver_inbound);
  // Flushes all queued WRs with kAborted completions (the QP is in kError).
  void FlushQueues();
  // Schedules an immediate flush completion for a WR posted while errored.
  void FlushPostedSend(const SendWorkRequest& wr);
  void FlushPostedRecv(const RecvWorkRequest& wr);

  // Target side of a SEND: match against posted receives.
  void DeliverInbound(const uint8_t* src, uint64_t length, bool copy_bytes);
  void MatchInbound();

  NicDevice* nic_;
  uint32_t qp_num_;
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  QueuePair* peer_ = nullptr;

  QpState state_ = QpState::kReady;
  Status error_cause_;
  int retry_attempts_ = 0;  // Transport retries consumed by the in-flight WR.
  // Delivered-byte cursor of the in-flight single write, kept only to feed
  // the check::kRetryKeepsCursor mutation (resume-from-cursor-on-retry bug).
  uint64_t mutation_delivered_ = 0;

  // DCQCN per-QP rate state. Each striped lane is its own QP and so carries
  // its own rate — the striping×CC interaction the benches measure. Rate
  // updates are applied lazily on execute (no timer events), which keeps the
  // event stream, and thus determinism, independent of wall clock.
  struct Dcqcn {
    bool initialized = false;
    double current_rate = 0.0;  // Bytes/sec the QP may inject at.
    double target_rate = 0.0;   // Recovery ceiling (pre-decrease rate).
    double alpha = 1.0;         // Congestion-extent estimate.
    int64_t last_decrease_ns = -1;  // <0: never decreased, QP is at line rate.
    int64_t last_stage_ns = 0;      // Recovery-timer marker.
    uint64_t bytes_since_stage = 0; // Recovery byte counter.
    int stage = 0;                  // Completed stages since last decrease.
    int64_t last_cnp_ns = -1;       // NP-side moderation marker.
    int cnp_backoff = 0;            // Extra moderation shifts at the floor.
  };
  Dcqcn dcqcn_;
  bool engine_busy_ = false;
  Batch current_;             // In-flight batch; valid while engine_busy_.
  size_t batch_cursor_idx_ = 0;   // First WR of current_ not fully delivered.
  uint64_t batch_cursor_base_ = 0;  // Stream offset where that WR starts.
  WorkCompletion pending_wc_;     // Completion being finalized (cq_poll delay).
  Status pending_status_;         // Batch-wide completion status.
  bool pending_ok_ = false;
  // Scheduled events holding `this` outside the engine_busy_ window (flush
  // completions, recv-side CQE pushes); counted so idle() is exact.
  int pending_events_ = 0;
  std::deque<Batch> send_queue_;
  std::deque<RecvWorkRequest> recv_queue_;
  std::deque<InboundMessage> inbound_;
};

struct NicStats {
  uint64_t writes = 0;
  uint64_t reads = 0;
  uint64_t sends = 0;
  uint64_t write_bytes = 0;
  uint64_t read_bytes = 0;
  uint64_t send_bytes = 0;
  uint64_t registrations = 0;
  int64_t registration_cost_ns_total = 0;
  uint64_t rkey_violations = 0;
  uint64_t retransmissions = 0;    // Transport-level segment-loss retries.
  uint64_t flushed_wrs = 0;        // WRs flush-completed by an errored QP.
  uint64_t doorbell_batches = 0;   // Multi-WR chains rung with one doorbell.
  // ---- Congestion control (all zero unless the fabric models congestion) --
  uint64_t ecn_marked_segments = 0;   // Delivered segments of this NIC's
                                      // transfers that carried a CE mark.
  uint64_t cnps_received = 0;         // CNPs that reached this NIC's QPs.
  uint64_t dcqcn_rate_decreases = 0;  // Multiplicative decreases applied.
  uint64_t dcqcn_rate_increases = 0;  // Recovery stages completed.
  int64_t dcqcn_pacing_delay_ns_total = 0;  // Injection delay added by pacing.
};

// One RDMA NIC on one host.
class NicDevice {
 public:
  NicDevice(net::Fabric* fabric, int host_id);
  NicDevice(const NicDevice&) = delete;
  NicDevice& operator=(const NicDevice&) = delete;

  // Registers [addr, addr+length) for RDMA access. Fails with
  // kResourceExhausted once the hardware MR limit is reached. The pinning
  // cost (base + per page) is accounted in stats; callers on the critical
  // path should charge RegistrationCost(length) to their own timeline.
  StatusOr<MemoryRegion> RegisterMemory(void* addr, uint64_t length);
  Status DeregisterMemory(const MemoryRegion& mr);
  int64_t RegistrationCost(uint64_t length) const;

  CompletionQueue* CreateCompletionQueue();
  // CHECK-fails when the NIC's QP context limit (cost.max_queue_pairs) is
  // reached; capacity-aware callers (the QP pool) use TryCreateQueuePair.
  QueuePair* CreateQueuePair(CompletionQueue* send_cq, CompletionQueue* recv_cq);
  StatusOr<QueuePair*> TryCreateQueuePair(CompletionQueue* send_cq, CompletionQueue* recv_cq);
  // Destroys a QP, releasing its NIC context slot. The caller must ensure the
  // QP is idle (no WR queued/in flight, no scheduled event referencing it) —
  // destroying a QP with a write in flight raises a kQpDestroyedInFlight
  // diagnostic under RdmaCheck. The peer end, if still connected to this QP,
  // is disconnected (its posts fail with FailedPrecondition afterwards).
  Status DestroyQueuePair(QueuePair* qp);

  // Looks up the MR covering [addr, addr+len) with the given remote key.
  const MemoryRegion* FindRemoteRegion(uint32_t rkey, uint64_t addr, uint64_t len) const;
  const MemoryRegion* FindLocalRegion(uint32_t lkey, uint64_t addr, uint64_t len) const;

  int host_id() const { return host_id_; }
  net::Fabric* fabric() const { return fabric_; }
  sim::Simulator* simulator() const { return fabric_->simulator(); }
  const net::CostModel& cost() const { return fabric_->cost(); }
  const NicStats& stats() const { return stats_; }
  int num_registered_regions() const { return static_cast<int>(mrs_by_rkey_.size()); }
  int num_queue_pairs() const { return static_cast<int>(qps_.size()); }

 private:
  friend class QueuePair;

  net::Fabric* fabric_;
  int host_id_;
  uint32_t next_key_ = 1;
  uint32_t next_qp_num_ = 1;
  NicStats stats_;
  std::unordered_map<uint32_t, MemoryRegion> mrs_by_rkey_;
  std::unordered_map<uint32_t, MemoryRegion> mrs_by_lkey_;
  std::vector<std::unique_ptr<CompletionQueue>> cqs_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
};

// Owns one NicDevice per host of the underlying fabric.
class RdmaFabric {
 public:
  explicit RdmaFabric(net::Fabric* fabric);

  NicDevice* nic(int host_id) {
    CHECK_GE(host_id, 0);
    CHECK_LT(host_id, static_cast<int>(nics_.size()));
    return nics_[host_id].get();
  }
  net::Fabric* fabric() const { return fabric_; }

 private:
  net::Fabric* fabric_;
  std::vector<std::unique_ptr<NicDevice>> nics_;
};

}  // namespace rdma
}  // namespace rdmadl

#endif  // RDMADL_SRC_RDMA_VERBS_H_
