#include "src/rdma/verbs.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "src/check/mutation.h"
#include "src/check/rdma_check.h"
#include "src/sim/trace.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace rdma {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kWrite:
      return "RDMA_WRITE";
    case Opcode::kRead:
      return "RDMA_READ";
    case Opcode::kSend:
      return "SEND";
    case Opcode::kRecv:
      return "RECV";
  }
  return "?";
}

// ----------------------------------------------------------- CompletionQueue

bool CompletionQueue::Poll(WorkCompletion* wc) {
  if (entries_.empty()) return false;
  *wc = std::move(entries_.front());
  entries_.pop_front();
  return true;
}

void CompletionQueue::Push(WorkCompletion wc) {
  entries_.push_back(std::move(wc));
  if (handler_) {
    // The handler models the device library's CQ poller context picking the
    // entry up; the cq_poll_overhead is charged by the QP before pushing.
    handler_();
  }
}

// ----------------------------------------------------------------- QueuePair

Status QueuePair::Connect(QueuePair* peer) {
  if (peer_ != nullptr) {
    return FailedPrecondition("QP already connected");
  }
  if (peer == nullptr || peer == this) {
    return InvalidArgument("invalid peer QP");
  }
  peer_ = peer;
  if (peer->peer_ == nullptr) {
    peer->peer_ = this;
  } else if (peer->peer_ != this) {
    return FailedPrecondition("peer QP connected elsewhere");
  }
  return OkStatus();
}

Status QueuePair::PostSend(const SendWorkRequest& wr) {
  if (peer_ == nullptr) {
    return FailedPrecondition("QP not connected");
  }
  if (wr.opcode == Opcode::kRecv) {
    return InvalidArgument("RECV must be posted via PostRecv");
  }
  if (nic_->FindLocalRegion(wr.lkey, wr.local_addr, wr.length) == nullptr) {
    return InvalidArgument(StrCat("local buffer not registered: lkey=", wr.lkey, " addr=",
                                  wr.local_addr, " len=", wr.length));
  }
  if (state_ == QpState::kError) {
    // Real RC QPs accept posts in the error state and complete them with a
    // flush error; callers learn of the failure from the CQ, never silently.
    FlushPostedSend(wr);
    return OkStatus();
  }
  send_queue_.push_back(Batch{wr});
  MaybeStartNext();
  return OkStatus();
}

Status QueuePair::PostSendBatch(std::vector<SendWorkRequest> wrs) {
  if (peer_ == nullptr) {
    return FailedPrecondition("QP not connected");
  }
  if (wrs.empty()) {
    return InvalidArgument("empty WR batch");
  }
  for (const SendWorkRequest& wr : wrs) {
    if (wr.opcode != Opcode::kWrite) {
      return InvalidArgument("WR batches support RDMA_WRITE only");
    }
    if (wr.length == 0) {
      return InvalidArgument("zero-length WR in batch");
    }
    if (nic_->FindLocalRegion(wr.lkey, wr.local_addr, wr.length) == nullptr) {
      return InvalidArgument(StrCat("local buffer not registered: lkey=", wr.lkey, " addr=",
                                    wr.local_addr, " len=", wr.length));
    }
  }
  if (state_ == QpState::kError) {
    for (const SendWorkRequest& wr : wrs) FlushPostedSend(wr);
    return OkStatus();
  }
  send_queue_.push_back(std::move(wrs));
  MaybeStartNext();
  return OkStatus();
}

Status QueuePair::PostRecv(const RecvWorkRequest& wr) {
  if (nic_->FindLocalRegion(wr.lkey, wr.addr, wr.length) == nullptr) {
    return InvalidArgument("recv buffer not registered");
  }
  if (state_ == QpState::kError) {
    FlushPostedRecv(wr);
    return OkStatus();
  }
  recv_queue_.push_back(wr);
  MatchInbound();
  return OkStatus();
}

Status QueuePair::Recover() {
  if (peer_ == nullptr) return FailedPrecondition("QP not connected");
  if (state_ != QpState::kError) return OkStatus();
  if (engine_busy_) {
    return FailedPrecondition("cannot recover a QP with a work request in flight");
  }
  state_ = QpState::kReady;
  error_cause_ = OkStatus();
  retry_attempts_ = 0;
  return OkStatus();
}

void QueuePair::MaybeStartNext() {
  if (engine_busy_ || state_ == QpState::kError || send_queue_.empty()) return;
  engine_busy_ = true;
  current_ = std::move(send_queue_.front());
  send_queue_.pop_front();
  // Posting overhead (doorbell + WQE fetch) before the engine acts — charged
  // once per doorbell, whether it rings one WQE or a chained list. current_
  // stays put until the completion releases the engine, so the closure needs
  // only `this`. Jittered: the overhead is a point estimate of a noisy
  // quantity, so the schedule explorer may perturb it.
  nic_->simulator()->ScheduleAfterJittered(nic_->cost().rdma_post_overhead_ns,
                                           [this]() { ExecuteCurrent(); });
}

void QueuePair::ExecuteCurrent() {
  if (current_.size() == 1) {
    Execute(current_.front());
  } else {
    ExecuteBatch();
  }
}

int64_t QueuePair::EngineDelayNs(uint64_t bytes) const {
  const double rate = nic_->cost().rdma_qp_engine_bytes_per_sec;
  if (rate <= 0.0) return 0;
  return static_cast<int64_t>(static_cast<double>(bytes) / rate * 1e9);
}

int64_t QueuePair::DcqcnDelayNs(uint64_t bytes) {
  const net::CongestionConfig& cc = nic_->fabric()->congestion();
  if (!cc.dcqcn) return 0;
  Dcqcn& d = dcqcn_;
  const double line = nic_->cost().rdma_bandwidth_bytes_per_sec;
  if (!d.initialized) {
    d.initialized = true;
    d.current_rate = line;
    d.target_rate = line;
  }
  if (d.last_decrease_ns < 0) return 0;  // Never throttled: line rate.
  const int64_t now = nic_->simulator()->Now();
  // Timer + byte-counter recovery, applied lazily: whichever accumulated more
  // stages since the last marker drives the advance (both reset on a
  // decrease). The cap bounds the catch-up loop after a long idle gap.
  int stages = 0;
  if (cc.dcqcn_recovery_period_ns > 0) {
    stages = static_cast<int>(
        std::min<int64_t>((now - d.last_stage_ns) / cc.dcqcn_recovery_period_ns, 64));
  }
  if (cc.dcqcn_recovery_bytes > 0) {
    stages = std::max(stages, static_cast<int>(std::min<uint64_t>(
                                  d.bytes_since_stage / cc.dcqcn_recovery_bytes, 64)));
  }
  if (stages > 0) {
    for (int i = 0; i < stages; ++i) {
      ++d.stage;
      // Quiet-period alpha decay rides the same stage clock.
      d.alpha *= (1.0 - cc.dcqcn_alpha_g);
      if (d.stage > cc.dcqcn_fast_recovery_stages) {
        d.target_rate = std::min(line, d.target_rate + cc.dcqcn_rate_ai_bytes_per_sec);
      }
      d.current_rate = 0.5 * (d.current_rate + d.target_rate);
    }
    nic_->stats_.dcqcn_rate_increases += static_cast<uint64_t>(stages);
    d.last_stage_ns = now;
    d.bytes_since_stage = 0;
    d.cnp_backoff = 0;
    if (line - d.current_rate < 1.0e6) {
      // Fully recovered: back to untracked line rate.
      d.current_rate = line;
      d.target_rate = line;
      d.last_decrease_ns = -1;
      return 0;
    }
  }
  d.bytes_since_stage += bytes;
  const double delay =
      static_cast<double>(bytes) * 1e9 * (1.0 / d.current_rate - 1.0 / line);
  const int64_t delay_ns = delay > 0.0 ? static_cast<int64_t>(delay) : 0;
  nic_->stats_.dcqcn_pacing_delay_ns_total += delay_ns;
  return delay_ns;
}

void QueuePair::OnEcnFeedback(int64_t deliver_ns) {
  const net::CongestionConfig& cc = nic_->fabric()->congestion();
  ++nic_->stats_.ecn_marked_segments;
  check::OnCongestionSignal(check::RdmaCheck::CongestionSignal::kEcnMark);
  if (!cc.dcqcn) return;  // Nobody reacts: the CC-off collapse configuration.
  Dcqcn& d = dcqcn_;
  // NP-side CNP moderation. While the QP already sits at the rate floor,
  // further CNPs carry no new information, so the interval backs off
  // exponentially (capped at 16x) — a persistent hotspot must not become a
  // CNP storm. Shares CappedBackoffNs with the transport-retry schedule.
  const int64_t interval = CappedBackoffNs(cc.dcqcn_cnp_interval_ns, d.cnp_backoff,
                                           16 * cc.dcqcn_cnp_interval_ns);
  if (d.last_cnp_ns >= 0 && deliver_ns - d.last_cnp_ns < interval) return;
  d.last_cnp_ns = deliver_ns;
  if (d.initialized && d.current_rate <= cc.dcqcn_min_rate_bytes_per_sec * 1.001) {
    d.cnp_backoff = std::min(d.cnp_backoff + 1, 4);
  }
  // The CNP travels back to the sender; the RP reacts one propagation
  // latency later.
  ++pending_events_;
  nic_->simulator()->ScheduleAfter(nic_->cost().rdma_one_way_latency_ns, [this]() {
    --pending_events_;
    ApplyCnp();
  });
}

void QueuePair::ApplyCnp() {
  ++nic_->stats_.cnps_received;
  check::OnCongestionSignal(check::RdmaCheck::CongestionSignal::kCnp);
  DcqcnDecrease();
}

void QueuePair::DcqcnDecrease() {
  const net::CongestionConfig& cc = nic_->fabric()->congestion();
  Dcqcn& d = dcqcn_;
  const double line = nic_->cost().rdma_bandwidth_bytes_per_sec;
  if (!d.initialized) {
    d.initialized = true;
    d.current_rate = line;
    d.target_rate = line;
  }
  d.alpha = (1.0 - cc.dcqcn_alpha_g) * d.alpha + cc.dcqcn_alpha_g;
  d.target_rate = d.current_rate;
  d.current_rate =
      std::max(d.current_rate * (1.0 - d.alpha / 2.0), cc.dcqcn_min_rate_bytes_per_sec);
  d.stage = 0;
  d.bytes_since_stage = 0;
  const int64_t now = nic_->simulator()->Now();
  d.last_stage_ns = now;
  d.last_decrease_ns = now;
  ++nic_->stats_.dcqcn_rate_decreases;
  check::OnCongestionSignal(check::RdmaCheck::CongestionSignal::kRateDecrease);
}

void QueuePair::Execute(const SendWorkRequest& wr) {
  switch (wr.opcode) {
    case Opcode::kWrite:
      ExecuteWrite(wr);
      return;
    case Opcode::kRead:
      ExecuteRead(wr);
      return;
    case Opcode::kSend:
      ExecuteSend(wr);
      return;
    case Opcode::kRecv:
      break;
  }
  FinishCurrent(wr, Internal("bad opcode"), 0);
}

void QueuePair::ExecuteWrite(const SendWorkRequest& wr) {
  NicDevice* target_nic = peer_->nic_;
  check::OnWritePosted(nic_->host_id(), target_nic->host_id(), qp_num_, wr.wr_id,
                       wr.remote_addr, wr.length, wr.rkey, nic_->simulator()->Now());
  const MemoryRegion* target =
      target_nic->FindRemoteRegion(wr.rkey, wr.remote_addr, wr.length);
  if (target == nullptr) {
    ++target_nic->stats_.rkey_violations;
    check::OnWriteFinished(nic_->host_id(), qp_num_, wr.wr_id, nic_->simulator()->Now());
    FinishCurrent(wr,
                  Status(StatusCode::kInvalidArgument,
                         StrCat("remote access violation: rkey=", wr.rkey, " addr=",
                                wr.remote_addr, " len=", wr.length)),
                  0);
    return;
  }
  ++nic_->stats_.writes;
  nic_->stats_.write_bytes += wr.length;
  // Seeded bug (explorer self-validation): a retry that resumes from the
  // delivered cursor instead of rewriting from offset 0 violates the
  // ascending-delivery contract the flag protocol rests on.
  uint64_t resume_at = 0;
  if (check::MutationEnabled(check::kRetryKeepsCursor) && retry_attempts_ > 0 &&
      mutation_delivered_ < wr.length) {
    resume_at = mutation_delivered_;
  }
  mutation_delivered_ = resume_at;
  nic_->fabric()->Transfer(
      nic_->host_id(), target_nic->host_id(), wr.length - resume_at, net::Plane::kRdma,
      nic_->cost().rdma_nic_processing_ns + EngineDelayNs(wr.length - resume_at) +
          DcqcnDelayNs(wr.length - resume_at),
      // Segments land in ascending address order; each is copied for real so
      // a flag-byte poller on the target sees partial tensors faithfully.
      // The WR is read back out of current_ (valid for the wire's lifetime).
      [this, resume_at](uint64_t offset, uint64_t length) {
        const SendWorkRequest& cur = current_.front();
        check::OnWriteSegment(nic_->host_id(), qp_num_, cur.wr_id, resume_at + offset,
                              length, nic_->simulator()->Now());
        mutation_delivered_ = resume_at + offset + length;
        if (cur.copy_bytes) {
          std::memcpy(reinterpret_cast<uint8_t*>(cur.remote_addr) + resume_at + offset,
                      reinterpret_cast<const uint8_t*>(cur.local_addr) + resume_at + offset,
                      length);
        }
      },
      [this](Status status) { CompleteWire(status, /*deliver_inbound=*/false); },
      [this](int64_t deliver_ns) { OnEcnFeedback(deliver_ns); });
}

void QueuePair::ExecuteRead(const SendWorkRequest& wr) {
  NicDevice* target_nic = peer_->nic_;
  check::OnReadPosted(nic_->host_id(), target_nic->host_id(), qp_num_, wr.wr_id,
                      wr.remote_addr, wr.length, wr.rkey, nic_->simulator()->Now());
  const MemoryRegion* target =
      target_nic->FindRemoteRegion(wr.rkey, wr.remote_addr, wr.length);
  if (target == nullptr) {
    ++target_nic->stats_.rkey_violations;
    FinishCurrent(wr, InvalidArgument("remote access violation on RDMA read"), 0);
    return;
  }
  ++nic_->stats_.reads;
  nic_->stats_.read_bytes += wr.length;
  // The read request first travels to the target (one-way latency + remote
  // NIC processing), then the data streams back.
  const int64_t request_trip =
      nic_->cost().rdma_nic_processing_ns + nic_->cost().rdma_one_way_latency_ns +
      nic_->cost().rdma_nic_processing_ns + EngineDelayNs(wr.length) +
      DcqcnDelayNs(wr.length);
  nic_->fabric()->Transfer(
      target_nic->host_id(), nic_->host_id(), wr.length, net::Plane::kRdma, request_trip,
      [this](uint64_t offset, uint64_t length) {
        const SendWorkRequest& cur = current_.front();
        if (cur.copy_bytes) {
          std::memcpy(reinterpret_cast<uint8_t*>(cur.local_addr) + offset,
                      reinterpret_cast<const uint8_t*>(cur.remote_addr) + offset, length);
        }
      },
      [this](Status status) { CompleteWire(status, /*deliver_inbound=*/false); },
      [this](int64_t deliver_ns) { OnEcnFeedback(deliver_ns); });
}

void QueuePair::ExecuteSend(const SendWorkRequest& wr) {
  ++nic_->stats_.sends;
  nic_->stats_.send_bytes += wr.length;
  nic_->fabric()->Transfer(nic_->host_id(), peer_->nic_->host_id(), wr.length, net::Plane::kRdma,
                           nic_->cost().rdma_nic_processing_ns + DcqcnDelayNs(wr.length),
                           nullptr,
                           [this](Status status) {
                             CompleteWire(status, /*deliver_inbound=*/true);
                           },
                           [this](int64_t deliver_ns) { OnEcnFeedback(deliver_ns); });
}

void QueuePair::CompleteWire(const Status& status, bool deliver_inbound) {
  const SendWorkRequest& wr = current_.front();
  if (status.ok()) {
    retry_attempts_ = 0;
    if (wr.opcode == Opcode::kWrite) {
      // The completion-ordering happens-before edge: the write's bytes have
      // all landed, anything posted from here on is ordered behind it.
      check::OnWriteFinished(nic_->host_id(), qp_num_, wr.wr_id, nic_->simulator()->Now());
    }
    if (deliver_inbound && peer_ != nullptr) {
      peer_->DeliverInbound(reinterpret_cast<const uint8_t*>(wr.local_addr), wr.length,
                            wr.copy_bytes);
    }
    FinishCurrent(wr, OkStatus(), wr.length);
    return;
  }
  // Transport failure (lost segment, dead host): the RC transport retransmits
  // the work request with capped exponential backoff, transparently to the
  // consumer. Under DCQCN the loss doubles as a congestion signal — the RP
  // cuts its rate like on a CNP, so retransmissions into a hot queue arrive
  // paced instead of re-synchronized.
  if (retry_attempts_ < nic_->cost().rdma_transport_retry_count) {
    const int64_t backoff = TransportBackoffNs(nic_->cost(), retry_attempts_);
    ++retry_attempts_;
    ++nic_->stats_.retransmissions;
    if (nic_->fabric()->congestion().dcqcn) DcqcnDecrease();
    sim::TraceInstant(StrCat("host", nic_->host_id(), ".nic"),
                      StrCat("retransmit qp", qp_num_, " wr", wr.wr_id, " attempt ",
                             retry_attempts_),
                      nic_->simulator()->Now());
    nic_->simulator()->ScheduleAfter(backoff, [this]() { Execute(current_.front()); });
    return;
  }
  // Retry budget exhausted: the QP moves to the error state. The failing WR
  // completes with the transport error; everything queued flushes after it.
  if (wr.opcode == Opcode::kWrite) {
    check::OnWriteFinished(nic_->host_id(), qp_num_, wr.wr_id, nic_->simulator()->Now());
  }
  retry_attempts_ = 0;
  state_ = QpState::kError;
  error_cause_ = Unavailable(StrCat("transport retry limit (",
                                    nic_->cost().rdma_transport_retry_count,
                                    ") exhausted: ", status.message()))
                     .WithContextFrom(status);
  sim::TraceInstant(StrCat("host", nic_->host_id(), ".nic"),
                    StrCat("qp", qp_num_, " -> ERROR: ", status.message()),
                    nic_->simulator()->Now());
  FinishCurrent(wr, error_cause_, 0);
}

void QueuePair::FinishCurrent(const SendWorkRequest& wr, Status status, uint64_t bytes) {
  pending_wc_.wr_id = wr.wr_id;
  pending_wc_.opcode = wr.opcode;
  pending_wc_.status = std::move(status);
  pending_wc_.byte_len = bytes;
  pending_wc_.qp_num = qp_num_;
  // CQE generation + poller pickup overhead, then release the engine. The
  // completion is staged in pending_wc_ (one per QP suffices: the engine
  // serializes, and flush completions for posts-while-errored use their own
  // captured copies) so the closure fits the inline buffer.
  nic_->simulator()->ScheduleAfter(nic_->cost().cq_poll_overhead_ns, [this]() {
    engine_busy_ = false;
    send_cq_->Push(pending_wc_);
    if (state_ == QpState::kError) {
      FlushQueues();
      return;
    }
    MaybeStartNext();
  });
}

void QueuePair::ExecuteBatch() {
  NicDevice* target_nic = peer_->nic_;
  const int64_t now = nic_->simulator()->Now();
  for (const SendWorkRequest& wr : current_) {
    check::OnWritePosted(nic_->host_id(), target_nic->host_id(), qp_num_, wr.wr_id,
                         wr.remote_addr, wr.length, wr.rkey, now);
  }
  // A chained WQE list shares fate: validate every target before any byte
  // moves, and fail the whole batch on the first violation.
  uint64_t total = 0;
  for (const SendWorkRequest& wr : current_) {
    const MemoryRegion* target =
        target_nic->FindRemoteRegion(wr.rkey, wr.remote_addr, wr.length);
    if (target == nullptr) {
      ++target_nic->stats_.rkey_violations;
      for (const SendWorkRequest& w : current_) {
        check::OnWriteFinished(nic_->host_id(), qp_num_, w.wr_id, now);
      }
      FinishBatch(Status(StatusCode::kInvalidArgument,
                         StrCat("remote access violation in WR batch: rkey=", wr.rkey,
                                " addr=", wr.remote_addr, " len=", wr.length)),
                  /*ok=*/false);
      return;
    }
    total += wr.length;
  }
  nic_->stats_.writes += current_.size();
  nic_->stats_.write_bytes += total;
  ++nic_->stats_.doorbell_batches;
  // One wire stream carries the concatenated payloads in posting order;
  // segments are scattered back to the sub-WRs by a cursor walk (member
  // fields, reset here so a transport retransmission restarts the scatter).
  // Fabric delivery is ascending in stream offset, so each sub-WR still
  // receives its bytes in ascending address order (the §3.2 guarantee,
  // per WR).
  batch_cursor_idx_ = 0;
  batch_cursor_base_ = 0;
  nic_->fabric()->Transfer(
      nic_->host_id(), target_nic->host_id(), total, net::Plane::kRdma,
      nic_->cost().rdma_nic_processing_ns + EngineDelayNs(total) + DcqcnDelayNs(total),
      [this](uint64_t offset, uint64_t length) {
        while (length > 0) {
          const SendWorkRequest& wr = current_[batch_cursor_idx_];
          const uint64_t rel = offset - batch_cursor_base_;
          const uint64_t take = std::min<uint64_t>(length, wr.length - rel);
          check::OnWriteSegment(nic_->host_id(), qp_num_, wr.wr_id, rel, take,
                                nic_->simulator()->Now());
          if (wr.copy_bytes) {
            std::memcpy(reinterpret_cast<uint8_t*>(wr.remote_addr) + rel,
                        reinterpret_cast<const uint8_t*>(wr.local_addr) + rel, take);
          }
          offset += take;
          length -= take;
          if (rel + take == wr.length) {
            batch_cursor_base_ += wr.length;
            ++batch_cursor_idx_;
          }
        }
      },
      [this](Status status) { CompleteBatchWire(status); },
      [this](int64_t deliver_ns) { OnEcnFeedback(deliver_ns); });
}

void QueuePair::CompleteBatchWire(const Status& status) {
  if (status.ok()) {
    retry_attempts_ = 0;
    const int64_t now = nic_->simulator()->Now();
    for (const SendWorkRequest& wr : current_) {
      check::OnWriteFinished(nic_->host_id(), qp_num_, wr.wr_id, now);
    }
    FinishBatch(OkStatus(), /*ok=*/true);
    return;
  }
  // The RC transport retransmits the whole chain with capped exponential
  // backoff, mirroring the single-WR path (including the DCQCN
  // loss-as-congestion-signal decrease).
  if (retry_attempts_ < nic_->cost().rdma_transport_retry_count) {
    const int64_t backoff = TransportBackoffNs(nic_->cost(), retry_attempts_);
    ++retry_attempts_;
    ++nic_->stats_.retransmissions;
    if (nic_->fabric()->congestion().dcqcn) DcqcnDecrease();
    sim::TraceInstant(StrCat("host", nic_->host_id(), ".nic"),
                      StrCat("retransmit qp", qp_num_, " batch of ", current_.size(),
                             " attempt ", retry_attempts_),
                      nic_->simulator()->Now());
    nic_->simulator()->ScheduleAfter(backoff, [this]() { ExecuteBatch(); });
    return;
  }
  const int64_t now = nic_->simulator()->Now();
  for (const SendWorkRequest& wr : current_) {
    check::OnWriteFinished(nic_->host_id(), qp_num_, wr.wr_id, now);
  }
  retry_attempts_ = 0;
  state_ = QpState::kError;
  error_cause_ = Unavailable(StrCat("transport retry limit (",
                                    nic_->cost().rdma_transport_retry_count,
                                    ") exhausted: ", status.message()))
                     .WithContextFrom(status);
  sim::TraceInstant(StrCat("host", nic_->host_id(), ".nic"),
                    StrCat("qp", qp_num_, " -> ERROR: ", status.message()),
                    nic_->simulator()->Now());
  FinishBatch(error_cause_, /*ok=*/false);
}

void QueuePair::FinishBatch(Status status, bool ok) {
  pending_status_ = std::move(status);
  pending_ok_ = ok;
  // The chain's CQEs are generated together and picked up by one poller pass:
  // one cq_poll overhead for the batch, then per-WR completions in FIFO order.
  nic_->simulator()->ScheduleAfter(nic_->cost().cq_poll_overhead_ns, [this]() {
    engine_busy_ = false;
    // Move the chain out first: a CQ handler may post new work from inside
    // Push, which would overwrite current_ mid-iteration.
    Batch batch = std::move(current_);
    for (const SendWorkRequest& wr : batch) {
      WorkCompletion wc;
      wc.wr_id = wr.wr_id;
      wc.opcode = wr.opcode;
      wc.status = pending_status_;
      wc.byte_len = pending_ok_ ? wr.length : 0;
      wc.qp_num = qp_num_;
      send_cq_->Push(wc);
    }
    if (state_ == QpState::kError) {
      FlushQueues();
      return;
    }
    MaybeStartNext();
  });
}

void QueuePair::FlushQueues() {
  // FIFO order, after the completion that carried the error.
  while (!send_queue_.empty()) {
    Batch batch = std::move(send_queue_.front());
    send_queue_.pop_front();
    for (const SendWorkRequest& wr : batch) {
      ++nic_->stats_.flushed_wrs;
      WorkCompletion wc;
      wc.wr_id = wr.wr_id;
      wc.opcode = wr.opcode;
      wc.status = Aborted("WR flushed: QP in error state");
      wc.qp_num = qp_num_;
      send_cq_->Push(wc);
    }
  }
  while (!recv_queue_.empty()) {
    RecvWorkRequest wr = recv_queue_.front();
    recv_queue_.pop_front();
    ++nic_->stats_.flushed_wrs;
    WorkCompletion wc;
    wc.wr_id = wr.wr_id;
    wc.opcode = Opcode::kRecv;
    wc.status = Aborted("WR flushed: QP in error state");
    wc.qp_num = qp_num_;
    recv_cq_->Push(wc);
  }
}

void QueuePair::FlushPostedSend(const SendWorkRequest& wr) {
  ++nic_->stats_.flushed_wrs;
  WorkCompletion wc;
  wc.wr_id = wr.wr_id;
  wc.opcode = wr.opcode;
  wc.status = Aborted("WR flushed: QP in error state");
  wc.qp_num = qp_num_;
  ++pending_events_;
  nic_->simulator()->ScheduleAfter(nic_->cost().cq_poll_overhead_ns, [this, wc]() {
    --pending_events_;
    send_cq_->Push(wc);
  });
}

void QueuePair::FlushPostedRecv(const RecvWorkRequest& wr) {
  ++nic_->stats_.flushed_wrs;
  WorkCompletion wc;
  wc.wr_id = wr.wr_id;
  wc.opcode = Opcode::kRecv;
  wc.status = Aborted("WR flushed: QP in error state");
  wc.qp_num = qp_num_;
  ++pending_events_;
  nic_->simulator()->ScheduleAfter(nic_->cost().cq_poll_overhead_ns, [this, wc]() {
    --pending_events_;
    recv_cq_->Push(wc);
  });
}

void QueuePair::DeliverInbound(const uint8_t* src, uint64_t length, bool copy_bytes) {
  // An errored QP no longer matches inbound messages; the sender's completion
  // already carried the failure.
  if (state_ == QpState::kError) return;
  inbound_.push_back(InboundMessage{src, length, copy_bytes});
  MatchInbound();
}

void QueuePair::MatchInbound() {
  while (!inbound_.empty() && !recv_queue_.empty()) {
    InboundMessage msg = inbound_.front();
    inbound_.pop_front();
    RecvWorkRequest recv = recv_queue_.front();
    recv_queue_.pop_front();

    WorkCompletion wc;
    wc.wr_id = recv.wr_id;
    wc.opcode = Opcode::kRecv;
    wc.qp_num = qp_num_;
    if (msg.length > recv.length) {
      wc.status = InvalidArgument(
          StrCat("inbound SEND of ", msg.length, " bytes exceeds posted recv buffer of ",
                 recv.length, " bytes"));
      wc.byte_len = 0;
    } else {
      if (msg.length > 0 && msg.copy_bytes) {
        std::memcpy(reinterpret_cast<void*>(recv.addr), msg.src, msg.length);
      }
      wc.status = OkStatus();
      wc.byte_len = msg.length;
    }
    ++pending_events_;
    nic_->simulator()->ScheduleAfter(nic_->cost().cq_poll_overhead_ns, [this, wc]() {
      --pending_events_;
      recv_cq_->Push(wc);
    });
  }
}

// ------------------------------------------------------------------ NicDevice

NicDevice::NicDevice(net::Fabric* fabric, int host_id) : fabric_(fabric), host_id_(host_id) {}

StatusOr<MemoryRegion> NicDevice::RegisterMemory(void* addr, uint64_t length) {
  if (addr == nullptr || length == 0) {
    return InvalidArgument("cannot register empty region");
  }
  if (num_registered_regions() >= cost().max_memory_regions) {
    return ResourceExhausted(StrCat("NIC MR limit reached (", cost().max_memory_regions, ")"));
  }
  MemoryRegion mr;
  mr.addr = reinterpret_cast<uint64_t>(addr);
  mr.length = length;
  mr.lkey = next_key_++;
  mr.rkey = next_key_++;
  mrs_by_lkey_[mr.lkey] = mr;
  mrs_by_rkey_[mr.rkey] = mr;
  ++stats_.registrations;
  stats_.registration_cost_ns_total += RegistrationCost(length);
  check::OnMrRegistered(host_id_, mr.addr, mr.length, mr.lkey, mr.rkey, simulator()->Now());
  return mr;
}

Status NicDevice::DeregisterMemory(const MemoryRegion& mr) {
  const bool erased_l = mrs_by_lkey_.erase(mr.lkey) > 0;
  const bool erased_r = mrs_by_rkey_.erase(mr.rkey) > 0;
  if (!erased_l || !erased_r) {
    return NotFound("memory region not registered");
  }
  check::OnMrDeregistered(host_id_, mr.lkey, mr.rkey, simulator()->Now());
  return OkStatus();
}

int64_t NicDevice::RegistrationCost(uint64_t length) const {
  const uint64_t pages = (length + cost().mr_page_bytes - 1) / cost().mr_page_bytes;
  return cost().mr_register_base_ns +
         static_cast<int64_t>(pages) * cost().mr_register_per_page_ns;
}

CompletionQueue* NicDevice::CreateCompletionQueue() {
  cqs_.push_back(std::make_unique<CompletionQueue>(this));
  return cqs_.back().get();
}

QueuePair* NicDevice::CreateQueuePair(CompletionQueue* send_cq, CompletionQueue* recv_cq) {
  StatusOr<QueuePair*> qp = TryCreateQueuePair(send_cq, recv_cq);
  CHECK(qp.ok());
  return *qp;
}

StatusOr<QueuePair*> NicDevice::TryCreateQueuePair(CompletionQueue* send_cq,
                                                   CompletionQueue* recv_cq) {
  CHECK(send_cq != nullptr && recv_cq != nullptr);
  if (num_queue_pairs() >= cost().max_queue_pairs) {
    return ResourceExhausted(StrCat("NIC QP limit reached (", cost().max_queue_pairs,
                                    ") on host", host_id_));
  }
  qps_.push_back(std::make_unique<QueuePair>(this, next_qp_num_++, send_cq, recv_cq));
  return qps_.back().get();
}

Status NicDevice::DestroyQueuePair(QueuePair* qp) {
  if (qp == nullptr) return InvalidArgument("null QP");
  auto it = std::find_if(qps_.begin(), qps_.end(),
                         [qp](const std::unique_ptr<QueuePair>& p) { return p.get() == qp; });
  if (it == qps_.end()) return NotFound("QP not owned by this NIC");
  check::OnQpDestroyed(host_id_, qp->qp_num(), simulator()->Now());
  if (qp->peer_ != nullptr && qp->peer_->peer_ == qp) {
    qp->peer_->peer_ = nullptr;
  }
  qps_.erase(it);
  return OkStatus();
}

const MemoryRegion* NicDevice::FindRemoteRegion(uint32_t rkey, uint64_t addr,
                                                uint64_t len) const {
  auto it = mrs_by_rkey_.find(rkey);
  if (it == mrs_by_rkey_.end()) return nullptr;
  if (!it->second.Contains(addr, len)) return nullptr;
  return &it->second;
}

const MemoryRegion* NicDevice::FindLocalRegion(uint32_t lkey, uint64_t addr,
                                               uint64_t len) const {
  auto it = mrs_by_lkey_.find(lkey);
  if (it == mrs_by_lkey_.end()) return nullptr;
  if (!it->second.Contains(addr, len)) return nullptr;
  return &it->second;
}

// ------------------------------------------------------------------ RdmaFabric

RdmaFabric::RdmaFabric(net::Fabric* fabric) : fabric_(fabric) {
  nics_.reserve(fabric->num_hosts());
  for (int i = 0; i < fabric->num_hosts(); ++i) {
    nics_.push_back(std::make_unique<NicDevice>(fabric, i));
  }
}

}  // namespace rdma
}  // namespace rdmadl
