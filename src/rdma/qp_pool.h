// QpPool: on-demand, LRU-evictable shared queue-pair lanes.
//
// PR 5's transfer engine striped tensors over eagerly-created per-peer QP
// lanes: every connected peer pair paid num_qps_per_peer QPs up front, O(n²)
// across the cluster — the exact scaling wall RDMAvisor ("RDMA as a
// Service") documents for datacenter RDMA. The pool replaces eager creation
// with on-demand acquisition: a lane (a connected QP pair between two
// endpoints, indexed by stripe) is created the first time someone asks for
// it, tracked LRU, and evicted when either NIC runs out of QP contexts
// (cost.max_queue_pairs). Eviction destroys both ends and notifies both
// owners so cached channel bindings drop; a later acquire of the same lane
// key transparently reconnects. Only idle lanes (QueuePair::idle(): nothing
// queued, in flight, or scheduled) are evictable, so destruction never
// strands a simulator event — destroying a busy QP is the
// kQpDestroyedInFlight diagnostic under RdmaCheck.
//
// Every eviction bumps generation(); consumers that cache lane lookups
// (comm::TransferEngine) revalidate against it.
#ifndef RDMADL_SRC_RDMA_QP_POOL_H_
#define RDMADL_SRC_RDMA_QP_POOL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "src/rdma/verbs.h"
#include "src/util/endpoint.h"
#include "src/util/status.h"

namespace rdmadl {
namespace rdma {

struct QpPoolStats {
  uint64_t hits = 0;        // Acquire found a live lane.
  uint64_t creates = 0;     // Lane created (first connect or reconnect).
  uint64_t evictions = 0;   // Lanes destroyed to free NIC QP contexts.
  uint64_t reconnects = 0;  // Creates whose lane key had been evicted before.
  uint64_t exhausted = 0;   // Acquire failed: cap reached, nothing idle.
};

class QpPool {
 public:
  // Hands out a CQ for each newly created QP on that endpoint (the device's
  // round-robin NextCq).
  using CqProvider = std::function<CompletionQueue*()>;
  // Notifies an endpoint that its lane |lane| toward |remote| was evicted, so
  // it can drop cached channel->QP bindings. Runs synchronously inside
  // Acquire/UnregisterEndpoint, before the QPs are destroyed.
  using EvictionObserver =
      std::function<void(const Endpoint& local, const Endpoint& remote, int lane)>;

  explicit QpPool(RdmaFabric* rdma) : rdma_(rdma) {}

  QpPool(const QpPool&) = delete;
  QpPool& operator=(const QpPool&) = delete;

  // Endpoints must register before lanes touching them can be acquired.
  Status RegisterEndpoint(const Endpoint& ep, int host_id, CqProvider cqs,
                          EvictionObserver on_evict);
  // Destroys every lane touching |ep| (idle or not: the owner is going away)
  // and forgets the registration. Safe to call for an unknown endpoint.
  void UnregisterEndpoint(const Endpoint& ep);

  // Returns |local|'s end of lane |lane| between |local| and |remote|. Hit:
  // LRU-touch and return. Miss: create + connect a fresh QP pair, evicting
  // least-recently-used idle lanes if either NIC is at its QP cap. Fails
  // with kResourceExhausted when the cap is hit and nothing is evictable,
  // and kFailedPrecondition for unregistered endpoints.
  StatusOr<QueuePair*> Acquire(const Endpoint& local, const Endpoint& remote, int lane);

  // Evicts idle lanes until |count| more QP contexts fit on |host_id|'s NIC
  // (used before creating unpooled QPs — e.g. a device's RPC QP — so those,
  // too, honor cost.max_queue_pairs). kResourceExhausted if nothing idle.
  Status ReserveCapacity(int host_id, int count);

  // Bumped on every eviction (and unregister that destroyed lanes): any
  // cached lane lookup made before the bump may now dangle.
  uint64_t generation() const { return generation_; }
  const QpPoolStats& stats() const { return stats_; }
  int num_lanes() const { return static_cast<int>(lanes_.size()); }
  bool registered(const Endpoint& ep) const { return endpoints_.count(ep) > 0; }

 private:
  // Lanes are keyed by the unordered endpoint pair (stored ordered) plus the
  // stripe index; both directions of a transfer share one lane.
  struct LaneKey {
    Endpoint lo;
    Endpoint hi;
    int lane = 0;
    bool operator<(const LaneKey& o) const {
      if (lo != o.lo) return lo < o.lo;
      if (hi != o.hi) return hi < o.hi;
      return lane < o.lane;
    }
  };
  struct Lane {
    QueuePair* lo_qp = nullptr;  // End owned by lo's NIC.
    QueuePair* hi_qp = nullptr;
    uint64_t last_use = 0;       // LRU clock tick of the latest Acquire.
  };
  struct EndpointState {
    int host_id = -1;
    CqProvider cqs;
    EvictionObserver on_evict;
  };

  // Evicts the least-recently-used idle lane with an end on |host_id|.
  // Returns kResourceExhausted if every such lane is busy.
  Status EvictOneIdleLane(int host_id);
  // Notifies observers and destroys both QPs of a lane (map entry untouched).
  void TearDownLane(const LaneKey& key, const Lane& lane);

  RdmaFabric* rdma_;
  std::map<Endpoint, EndpointState> endpoints_;
  std::map<LaneKey, Lane> lanes_;       // Ordered: deterministic eviction scans.
  std::set<LaneKey> ever_connected_;    // Distinguishes reconnects from firsts.
  QpPoolStats stats_;
  uint64_t generation_ = 0;
  uint64_t use_clock_ = 0;
};

}  // namespace rdma
}  // namespace rdmadl

#endif  // RDMADL_SRC_RDMA_QP_POOL_H_
