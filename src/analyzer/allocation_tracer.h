// Dynamic allocation-site analysis (§3.4, "Decide tensor allocation site").
//
// During the first mini-batch iteration the executor's tensor allocator is
// instrumented: every allocation records (buffer address -> allocating graph
// node), latest write wins. When a _Send node transfers a tensor, the address
// map reveals which node actually allocated that buffer — which is not
// necessarily the _Send's direct predecessor, because ops like Identity,
// Reshape and ApplySgd pass buffers through without allocating. Those
// allocation sites form the set S; in subsequent iterations the runtime
// redirects allocations by nodes in S to the RDMA-registered arena, making
// every to-be-transferred tensor RDMA-accessible with no extra copy.
#ifndef RDMADL_SRC_ANALYZER_ALLOCATION_TRACER_H_
#define RDMADL_SRC_ANALYZER_ALLOCATION_TRACER_H_

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

namespace rdmadl {
namespace analyzer {

class AllocationSiteTracer {
 public:
  // An allocation site: (graph node id, i-th allocation within one execution
  // of that node). Our kernels allocate exactly one output, so the index is
  // almost always 0, but the pair is kept for fidelity to the paper.
  using Site = std::pair<int, int>;

  bool tracing() const { return tracing_; }
  void set_tracing(bool tracing) { tracing_ = tracing; }

  // Marks the start of one node execution (resets its allocation counter).
  void BeginNodeExecution(int node_id) { alloc_index_ = 0; }

  // Records one allocation by |node_id| at |ptr| (only while tracing).
  void RecordAllocation(int node_id, const void* ptr, size_t bytes) {
    if (!tracing_) return;
    by_addr_[ptr] = Site{node_id, alloc_index_++};  // Latest info wins.
  }

  // Called when a tensor at |ptr| is about to be transferred: promotes its
  // allocation site into set S. Returns true if the site was known.
  bool RecordTransfer(const void* ptr) {
    auto it = by_addr_.find(ptr);
    if (it == by_addr_.end()) return false;
    hot_sites_.insert(it->second);
    return true;
  }

  // Whether allocations of |node_id| should come from the RDMA arena.
  bool InHotSet(int node_id) const {
    // Any allocation index of the node qualifies (kernels allocate once).
    auto it = hot_sites_.lower_bound(Site{node_id, 0});
    return it != hot_sites_.end() && it->first == node_id;
  }

  size_t hot_set_size() const { return hot_sites_.size(); }
  size_t traced_addresses() const { return by_addr_.size(); }

 private:
  bool tracing_ = false;
  int alloc_index_ = 0;
  std::unordered_map<const void*, Site> by_addr_;
  std::set<Site> hot_sites_;
};

}  // namespace analyzer
}  // namespace rdmadl

#endif  // RDMADL_SRC_ANALYZER_ALLOCATION_TRACER_H_
