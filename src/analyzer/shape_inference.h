// Static shape inference (§3.4, "Preallocate data buffers", step 1):
// starting from the tensors whose shapes the program states explicitly
// (Variable/Const/Placeholder attrs), propagate shapes through every node's
// shape-inference function in topological order. Afterwards each node's
// output_shape() is either fully defined — eligible for the static-placement
// transfer of §3.2 — or partially unknown, requiring the dynamic-allocation
// transfer of §3.3.
#ifndef RDMADL_SRC_ANALYZER_SHAPE_INFERENCE_H_
#define RDMADL_SRC_ANALYZER_SHAPE_INFERENCE_H_

#include "src/graph/graph.h"
#include "src/util/status.h"

namespace rdmadl {
namespace analyzer {

// Annotates every node of |graph| with its inferred output shape.
Status RunShapeInference(graph::Graph* graph);

// Statistics over a graph's inferred shapes (used by reports and tests).
struct ShapeInferenceStats {
  int total_nodes = 0;
  int static_nodes = 0;   // Fully defined output shape.
  int dynamic_nodes = 0;  // At least one unknown dimension.
};
ShapeInferenceStats ComputeShapeStats(const graph::Graph& graph);

}  // namespace analyzer
}  // namespace rdmadl

#endif  // RDMADL_SRC_ANALYZER_SHAPE_INFERENCE_H_
