#include "src/analyzer/shape_inference.h"

#include <vector>

#include "src/graph/op_registry.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace analyzer {

Status RunShapeInference(graph::Graph* graph) {
  RDMADL_ASSIGN_OR_RETURN(std::vector<graph::Node*> order, graph->TopologicalOrder());
  for (graph::Node* node : order) {
    const graph::OpDef* def = graph::OpRegistry::Global()->Find(node->op());
    if (def == nullptr) {
      return NotFound(StrCat("op not registered: ", node->op()));
    }
    std::vector<tensor::TensorShape> input_shapes;
    input_shapes.reserve(node->inputs().size());
    for (const graph::NodeInput& in : node->inputs()) {
      input_shapes.push_back(in.node->output_shape());
    }
    tensor::TensorShape out;
    RDMADL_RETURN_IF_ERROR(def->shape_fn(*node, input_shapes, &out));
    node->set_output_shape(std::move(out));
  }
  return OkStatus();
}

ShapeInferenceStats ComputeShapeStats(const graph::Graph& graph) {
  ShapeInferenceStats stats;
  for (const auto& node : graph.nodes()) {
    ++stats.total_nodes;
    if (node->has_static_shape()) {
      ++stats.static_nodes;
    } else {
      ++stats.dynamic_nodes;
    }
  }
  return stats;
}

}  // namespace analyzer
}  // namespace rdmadl
