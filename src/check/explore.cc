#include "src/check/explore.h"

#include <string>
#include <utility>
#include <vector>

#include "src/check/rdma_check.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace check {

namespace {

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

// What was the run waiting on: the flags still being polled and the writes
// still in flight, straight from the checker's shadow state.
std::string StallMessage(const RdmaCheck& checker) {
  std::string msg;
  const std::vector<RdmaCheck::PendingFlag> flags = checker.PendingFlags();
  const std::vector<RdmaCheck::PendingWrite> writes = checker.PendingWrites();
  if (flags.empty() && writes.empty()) {
    return "no tracked flag or write was pending (stall outside the RDMA protocol layer)";
  }
  for (const RdmaCheck::PendingFlag& f : flags) {
    if (!msg.empty()) msg += "; ";
    msg += StrCat("host", f.host, " waiting on flag@0x", Hex(f.addr), " (edge '", f.edge_key,
                  "', ", f.polls, " missed poll(s), last at t=", f.last_poll_ns, "ns)");
  }
  for (const RdmaCheck::PendingWrite& w : writes) {
    if (!msg.empty()) msg += "; ";
    msg += StrCat("write host", w.src_host, "->host", w.dst_host, " qp", w.qp_num, " wr",
                  w.wr_id, " in flight (", w.delivered, "/", w.length, " bytes delivered)");
  }
  return msg;
}

}  // namespace

sim::ExploreWorkload CheckedWorkload(WorkloadBody body) {
  return [body = std::move(body)](sim::Simulator& simulator) -> sim::RunReport {
    RdmaCheckOptions options;
    options.track_polled_flags = true;
    RdmaCheck checker(options);
    sim::RunReport report;
    report.status = body(simulator);

    // Protocol diagnostics are the most specific verdict: a run that both
    // violated an invariant and then stalled is classified by the violation.
    const std::vector<Diagnostic>& diags = checker.Finalize();
    if (!diags.empty()) {
      report.failure_class = StrCat("check:", DiagKindName(diags.front().kind));
      report.details = checker.Report();
      return report;
    }
    if (report.status.ok()) return report;

    sim::StallKind kind = sim::StallKind::kNone;
    const std::string& message = report.status.message();
    if (report.status.code() == StatusCode::kFailedPrecondition &&
        Contains(message, "drained") && simulator.empty()) {
      kind = sim::StallKind::kDeadlock;
    } else if (report.status.code() == StatusCode::kDeadlineExceeded &&
               Contains(message, "event cap")) {
      kind = sim::StallKind::kLivelock;
    } else if (report.status.code() == StatusCode::kDeadlineExceeded) {
      kind = sim::StallKind::kTimeout;
    }
    if (kind == sim::StallKind::kNone) {
      report.failure_class = StrCat("fail:", StatusCodeToString(report.status.code()));
      report.details = report.status.ToString();
      return report;
    }
    report.stall.kind = kind;
    report.stall.message = StallMessage(checker);
    report.failure_class = StrCat("stall:", sim::StallKindName(kind));
    report.details = StrCat(report.status.ToString(), "\n", report.stall.message);
    return report;
  };
}

sim::ExploreResult ExploreForTest(const std::string& name, WorkloadBody body) {
  sim::ExploreOptions options;
  options.name = name;
  const int bound = sim::ExploreBoundFromEnv();
  if (bound > 0) {
    options.max_schedules = bound;
  } else {
    // No env opt-in: one canonical, fully-checked replay.
    options.max_schedules = 1;
    options.jitter_schedules = 0;
  }
  sim::Explorer explorer(options);
  return explorer.Explore(CheckedWorkload(std::move(body)));
}

}  // namespace check
}  // namespace rdmadl
