#include "src/check/rdma_check.h"

#include <algorithm>
#include <utility>

#include "src/sim/explore.h"
#include "src/sim/trace.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace check {

RdmaCheck* RdmaCheck::current_ = nullptr;

const char* DiagKindName(DiagKind kind) {
  switch (kind) {
    case DiagKind::kUseAfterDeregister:
      return "use-after-deregister";
    case DiagKind::kStaleRkey:
      return "stale-rkey";
    case DiagKind::kOutOfBounds:
      return "out-of-bounds";
    case DiagKind::kRemoteRace:
      return "remote-race";
    case DiagKind::kNonAscendingSegment:
      return "non-ascending-segment";
    case DiagKind::kPrematureFlagRead:
      return "premature-flag-read";
    case DiagKind::kLeakedMemoryRegion:
      return "leaked-memory-region";
    case DiagKind::kLeakedArenaBlock:
      return "leaked-arena-block";
    case DiagKind::kQpDestroyedInFlight:
      return "qp-destroyed-in-flight";
    case DiagKind::kTornRead:
      return "torn-read";
  }
  return "?";
}

RdmaCheck::RdmaCheck(RdmaCheckOptions options) : parent_(current_), options_(options) {
  current_ = this;
}

RdmaCheck::~RdmaCheck() {
  CHECK(current_ == this) << "RdmaCheck installs must nest LIFO";
  current_ = parent_;
}

void RdmaCheck::Emit(DiagKind kind, std::string message, int src_host, int dst_host,
                     uint32_t qp_num, uint64_t wr_id, int64_t now_ns) {
  Diagnostic d;
  d.kind = kind;
  d.message = std::move(message);
  d.src_host = src_host;
  d.dst_host = dst_host;
  d.qp_num = qp_num;
  d.wr_id = wr_id;
  d.vtime_ns = now_ns;
  // Trace-linked: the violation shows up on its own track at the exact
  // virtual time, next to the NIC/fault events that led to it.
  sim::TraceInstant("check", StrCat(DiagKindName(kind), ": ", d.message), now_ns);
  if (options_.fail_fast) {
    LOG(FATAL) << "RdmaCheck [" << DiagKindName(kind) << "] " << d.message;
  }
  diagnostics_.push_back(std::move(d));
}

// --------------------------------------------------------------- verbs layer

void RdmaCheck::MrRegistered(int host, uint64_t addr, uint64_t length, uint32_t lkey,
                             uint32_t rkey, int64_t now_ns) {
  live_mrs_[MrKey(host, rkey)] = MrShadow{addr, length, lkey, now_ns};
  dead_mrs_.erase(MrKey(host, rkey));
}

void RdmaCheck::MrDeregistered(int host, uint32_t lkey, uint32_t rkey, int64_t now_ns) {
  (void)lkey;
  auto it = live_mrs_.find(MrKey(host, rkey));
  if (it == live_mrs_.end()) return;  // Registered before the checker existed.
  dead_mrs_[MrKey(host, rkey)] = DeadMr{it->second.addr, it->second.length, now_ns};
  live_mrs_.erase(it);
}

bool RdmaCheck::CheckTarget(const char* verb, int src_host, int dst_host, uint32_t qp_num,
                            uint64_t wr_id, uint64_t remote_addr, uint64_t length,
                            uint32_t rkey, int64_t now_ns) {
  auto it = live_mrs_.find(MrKey(dst_host, rkey));
  if (it == live_mrs_.end()) {
    auto dead = dead_mrs_.find(MrKey(dst_host, rkey));
    if (dead != dead_mrs_.end()) {
      Emit(DiagKind::kStaleRkey,
           StrCat(verb, " host", src_host, "->host", dst_host, " qp", qp_num, " wr", wr_id,
                  " at t=", now_ns, "ns targets rkey=", rkey,
                  " deregistered at t=", dead->second.deregistered_at_ns,
                  "ns (held across a rebuild?)"),
           src_host, dst_host, qp_num, wr_id, now_ns);
    }
    // An rkey the checker has never seen belongs to an MR registered before
    // installation: not checkable, not reported.
    return false;
  }
  const MrShadow& mr = it->second;
  const bool in_bounds = remote_addr >= mr.addr && length <= mr.length &&
                         remote_addr - mr.addr <= mr.length - length;
  if (!in_bounds) {
    Emit(DiagKind::kOutOfBounds,
         StrCat(verb, " host", src_host, "->host", dst_host, " qp", qp_num, " wr", wr_id,
                " at t=", now_ns, "ns targets [", remote_addr, ", ", remote_addr + length,
                ") outside MR rkey=", rkey, " [", mr.addr, ", ", mr.addr + mr.length, ")"),
         src_host, dst_host, qp_num, wr_id, now_ns);
    return false;
  }
  return true;
}

void RdmaCheck::WritePosted(int src_host, int dst_host, uint32_t qp_num, uint64_t wr_id,
                            uint64_t remote_addr, uint64_t length, uint32_t rkey,
                            int64_t now_ns) {
  sim::OnExploreAccess(dst_host, remote_addr, remote_addr + length);
  const WriteKey key(src_host, qp_num, wr_id);
  auto existing = inflight_.find(key);
  if (existing != inflight_.end()) {
    // Transport retry of the same WR: the transfer restarts from offset 0
    // (the ascending-prefix contract), and no new race window opens — the
    // retry is FIFO-ordered behind the original post on the same QP.
    existing->second.delivered = 0;
    return;
  }
  CheckTarget("RDMA_WRITE", src_host, dst_host, qp_num, wr_id, remote_addr, length, rkey,
              now_ns);
  // Remote race: another write to an overlapping range of the same target
  // host is still in flight, and it is not ordered with this one. Same-QP
  // pairs are FIFO-ordered by the engine (one WR in flight per QP); a wire
  // completion removes the record, which is the completion-ordering HB edge.
  if (length > 0) {
    for (const auto& [other_key, w] : inflight_) {
      if (w.dst_host != dst_host || w.length == 0) continue;
      const auto& [o_src, o_qp, o_wr] = other_key;
      if (o_src == src_host && o_qp == qp_num) continue;  // FIFO on one QP.
      const bool overlaps =
          remote_addr < w.remote_addr + w.length && w.remote_addr < remote_addr + length;
      if (!overlaps) continue;
      Emit(DiagKind::kRemoteRace,
           StrCat("RDMA_WRITE host", src_host, "->host", dst_host, " qp", qp_num, " wr",
                  wr_id, " at t=", now_ns, "ns targets [", remote_addr, ", ",
                  remote_addr + length, ") overlapping in-flight write host", o_src, " qp",
                  o_qp, " wr", o_wr, " [", w.remote_addr, ", ", w.remote_addr + w.length,
                  ") posted at t=", w.posted_at_ns, "ns with no happens-before edge"),
           src_host, dst_host, qp_num, wr_id, now_ns);
    }
  }
  InflightWrite w;
  w.dst_host = dst_host;
  w.remote_addr = remote_addr;
  w.length = length;
  w.rkey = rkey;
  w.posted_at_ns = now_ns;
  inflight_[key] = w;
}

void RdmaCheck::WriteSegment(int src_host, uint32_t qp_num, uint64_t wr_id, uint64_t offset,
                             uint64_t length, int64_t now_ns) {
  auto it = inflight_.find(WriteKey(src_host, qp_num, wr_id));
  if (it == inflight_.end()) return;
  InflightWrite& w = it->second;
  sim::OnExploreAccess(w.dst_host, w.remote_addr + offset, w.remote_addr + offset + length);
  if (offset != w.delivered) {
    Emit(DiagKind::kNonAscendingSegment,
         StrCat("segment of RDMA_WRITE host", src_host, "->host", w.dst_host, " qp", qp_num,
                " wr", wr_id, " landed at offset ", offset, " at t=", now_ns,
                "ns; ascending order expected offset ", w.delivered),
         src_host, w.dst_host, qp_num, wr_id, now_ns);
  }
  w.delivered = std::max(w.delivered, offset + length);
  // Landing into a deregistered MR: the registration must outlive the
  // in-flight write, not just the post.
  if (!w.dead_mr_reported && live_mrs_.find(MrKey(w.dst_host, w.rkey)) == live_mrs_.end()) {
    auto dead = dead_mrs_.find(MrKey(w.dst_host, w.rkey));
    if (dead != dead_mrs_.end()) {
      w.dead_mr_reported = true;
      Emit(DiagKind::kUseAfterDeregister,
           StrCat("segment of RDMA_WRITE host", src_host, "->host", w.dst_host, " qp",
                  qp_num, " wr", wr_id, " landed at t=", now_ns, "ns in MR rkey=", w.rkey,
                  " deregistered at t=", dead->second.deregistered_at_ns, "ns"),
           src_host, w.dst_host, qp_num, wr_id, now_ns);
    }
  }
  CoverFlags(w.dst_host, w.remote_addr + offset, length);
}

void RdmaCheck::WriteFinished(int src_host, uint32_t qp_num, uint64_t wr_id, int64_t now_ns) {
  (void)now_ns;
  auto it = inflight_.find(WriteKey(src_host, qp_num, wr_id));
  if (it == inflight_.end()) return;
  const InflightWrite& w = it->second;
  sim::OnExploreAccess(w.dst_host, w.remote_addr, w.remote_addr + w.length);
  inflight_.erase(it);
}

void RdmaCheck::ReadPosted(int src_host, int target_host, uint32_t qp_num, uint64_t wr_id,
                           uint64_t remote_addr, uint64_t length, uint32_t rkey,
                           int64_t now_ns) {
  sim::OnExploreAccess(target_host, remote_addr, remote_addr + length);
  CheckTarget("RDMA_READ", src_host, target_host, qp_num, wr_id, remote_addr, length, rkey,
              now_ns);
}

void RdmaCheck::QpDestroyed(int host, uint32_t qp_num, int64_t now_ns) {
  for (const auto& [key, w] : inflight_) {
    if (std::get<0>(key) != host || std::get<1>(key) != qp_num) continue;
    Emit(DiagKind::kQpDestroyedInFlight,
         StrCat("host", host, " qp", qp_num, " destroyed with wr", std::get<2>(key),
                " in flight (", w.length, " bytes to host", w.dst_host, " addr=",
                w.remote_addr, ")"),
         host, w.dst_host, qp_num, std::get<2>(key), now_ns);
  }
}

// -------------------------------------------------------------- fabric layer

uint64_t RdmaCheck::TransferStarted(int src_host, int dst_host, uint64_t bytes,
                                    int64_t now_ns) {
  (void)bytes;
  (void)now_ns;
  const uint64_t id = next_transfer_id_++;
  transfers_[id] = TransferShadow{src_host, dst_host, 0};
  return id;
}

void RdmaCheck::TransferSegment(uint64_t transfer_id, uint64_t offset, uint64_t length,
                                int64_t now_ns) {
  auto it = transfers_.find(transfer_id);
  if (it == transfers_.end()) return;
  TransferShadow& t = it->second;
  if (offset != t.expected_offset) {
    Emit(DiagKind::kNonAscendingSegment,
         StrCat("fabric segment host", t.src_host, "->host", t.dst_host, " landed at offset ",
                offset, " at t=", now_ns, "ns; ascending order expected offset ",
                t.expected_offset),
         t.src_host, t.dst_host, /*qp_num=*/0, /*wr_id=*/0, now_ns);
  }
  t.expected_offset = std::max(t.expected_offset, offset + length);
}

void RdmaCheck::TransferFinished(uint64_t transfer_id) { transfers_.erase(transfer_id); }

// ----------------------------------------------------------- arena allocator

void RdmaCheck::ArenaBlockAllocated(const void* arena, const std::string& arena_name,
                                    uint64_t offset, size_t bytes) {
  ArenaShadow& shadow = arenas_[arena];
  if (shadow.name.empty()) shadow.name = arena_name;
  shadow.live[offset] = bytes;
}

void RdmaCheck::ArenaBlockFreed(const void* arena, uint64_t offset) {
  auto it = arenas_.find(arena);
  if (it == arenas_.end()) return;
  it->second.live.erase(offset);
}

void RdmaCheck::ArenaDestroyed(const void* arena) {
  auto it = arenas_.find(arena);
  if (it == arenas_.end()) return;
  ArenaShadow shadow = std::move(it->second);
  arenas_.erase(it);
  if (!options_.check_leaks || shadow.live.empty()) return;
  uint64_t bytes = 0;
  for (const auto& [offset, size] : shadow.live) bytes += size;
  std::string first;
  int listed = 0;
  for (const auto& [offset, size] : shadow.live) {
    if (listed++ == 4) {
      first += ", ...";
      break;
    }
    first += StrCat(listed > 1 ? ", " : "", "+", offset, " (", size, "B)");
  }
  Emit(DiagKind::kLeakedArenaBlock,
       StrCat("arena '", shadow.name, "' destroyed with ", shadow.live.size(),
              " live carve-out(s), ", bytes, " bytes un-returned: ", first),
       /*src_host=*/-1, /*dst_host=*/-1, /*qp_num=*/0, /*wr_id=*/0, /*now_ns=*/0);
}

// --------------------------------------------------------- flag-byte shadow

void RdmaCheck::FlagLocation(int dst_host, const void* flag_addr, const std::string& edge_key) {
  FlagShadow& f = flags_[{dst_host, reinterpret_cast<uint64_t>(flag_addr)}];
  f.edge_key = edge_key;
  f.landed = false;
}

void RdmaCheck::FlagSetLocally(int dst_host, const void* flag_addr, int64_t now_ns) {
  (void)now_ns;
  const uint64_t addr = reinterpret_cast<uint64_t>(flag_addr);
  sim::OnExploreAccess(dst_host, addr, addr + 1);
  auto it = flags_.find({dst_host, addr});
  if (it != flags_.end()) {
    it->second.landed = true;
    it->second.polls = 0;  // Progress: the receiver is no longer starved.
  }
}

void RdmaCheck::FlagCleared(int dst_host, const void* flag_addr) {
  const uint64_t addr = reinterpret_cast<uint64_t>(flag_addr);
  sim::OnExploreAccess(dst_host, addr, addr + 1);
  auto it = flags_.find({dst_host, addr});
  if (it != flags_.end()) it->second.landed = false;
}

void RdmaCheck::FlagTrusted(int dst_host, const void* flag_addr, int64_t now_ns) {
  const uint64_t addr = reinterpret_cast<uint64_t>(flag_addr);
  sim::OnExploreAccess(dst_host, addr, addr + 1);
  auto it = flags_.find({dst_host, addr});
  if (it == flags_.end()) return;  // Declared before the checker existed.
  FlagShadow& f = it->second;
  f.polls = 0;
  if (!f.landed) {
    Emit(DiagKind::kPrematureFlagRead,
         StrCat("edge ", f.edge_key, " host", dst_host, " trusted flag at addr=", addr,
                " at t=", now_ns, "ns before any write covering the flag byte landed"),
         /*src_host=*/-1, dst_host, /*qp_num=*/0, /*wr_id=*/0, now_ns);
    return;
  }
  if (f.guard_lo >= f.guard_hi) return;
  // Torn read: the flag byte has landed but some write into the guarded
  // payload range still has undelivered bytes. Only the *undelivered suffix*
  // counts — a doorbell batch posts every WR at once, and fully-delivered
  // but not-yet-completed writes are not torn.
  for (const auto& [key, w] : inflight_) {
    if (w.dst_host != dst_host || w.delivered >= w.length) continue;
    const uint64_t undeliv_lo = w.remote_addr + w.delivered;
    const uint64_t undeliv_hi = w.remote_addr + w.length;
    if (undeliv_lo < f.guard_hi && f.guard_lo < undeliv_hi) {
      Emit(DiagKind::kTornRead,
           StrCat("edge ", f.edge_key, " host", dst_host, " trusted flag at addr=", addr,
                  " at t=", now_ns, "ns while write host", std::get<0>(key), " qp",
                  std::get<1>(key), " wr", std::get<2>(key), " into guarded range [",
                  f.guard_lo, ", ", f.guard_hi, ") has ", w.length - w.delivered,
                  " undelivered byte(s) at [", undeliv_lo, ", ", undeliv_hi, ")"),
           std::get<0>(key), dst_host, std::get<1>(key), std::get<2>(key), now_ns);
    }
  }
}

void RdmaCheck::FlagForgotten(int dst_host, const void* flag_addr) {
  flags_.erase({dst_host, reinterpret_cast<uint64_t>(flag_addr)});
}

void RdmaCheck::FlagPolled(int dst_host, const void* flag_addr, int64_t now_ns) {
  const uint64_t addr = reinterpret_cast<uint64_t>(flag_addr);
  sim::OnExploreAccess(dst_host, addr, addr + 1);
  auto it = flags_.find({dst_host, addr});
  if (it == flags_.end()) {
    if (!options_.track_polled_flags) return;
    it = flags_.emplace(std::make_pair(dst_host, addr), FlagShadow{}).first;
    it->second.edge_key = "(auto:polled)";
  }
  ++it->second.polls;
  it->second.last_poll_ns = now_ns;
}

void RdmaCheck::FlagGuards(int dst_host, const void* flag_addr, const void* guard_base,
                           uint64_t guard_bytes) {
  auto it = flags_.find({dst_host, reinterpret_cast<uint64_t>(flag_addr)});
  if (it == flags_.end()) return;  // Guards attach to declared flags only.
  it->second.guard_lo = reinterpret_cast<uint64_t>(guard_base);
  it->second.guard_hi = it->second.guard_lo + guard_bytes;
}

void RdmaCheck::CoverFlags(int dst_host, uint64_t addr, uint64_t len) {
  if (len == 0 || flags_.empty()) return;
  auto it = flags_.lower_bound({dst_host, addr});
  for (; it != flags_.end(); ++it) {
    if (it->first.first != dst_host || it->first.second >= addr + len) break;
    it->second.landed = true;
    it->second.polls = 0;  // Progress: the awaited write arrived.
  }
}

// --------------------------------------------------------- stall introspection

std::vector<RdmaCheck::PendingFlag> RdmaCheck::PendingFlags() const {
  std::vector<PendingFlag> pending;
  for (const auto& [key, f] : flags_) {
    if (f.polls == 0) continue;
    PendingFlag p;
    p.host = key.first;
    p.addr = key.second;
    p.edge_key = f.edge_key;
    p.polls = f.polls;
    p.last_poll_ns = f.last_poll_ns;
    pending.push_back(std::move(p));
  }
  return pending;
}

std::vector<RdmaCheck::PendingWrite> RdmaCheck::PendingWrites() const {
  std::vector<PendingWrite> pending;
  for (const auto& [key, w] : inflight_) {
    PendingWrite p;
    p.src_host = std::get<0>(key);
    p.qp_num = std::get<1>(key);
    p.wr_id = std::get<2>(key);
    p.dst_host = w.dst_host;
    p.remote_addr = w.remote_addr;
    p.length = w.length;
    p.delivered = w.delivered;
    p.posted_at_ns = w.posted_at_ns;
    pending.push_back(p);
  }
  return pending;
}

// ------------------------------------------------------------------ teardown

const std::vector<Diagnostic>& RdmaCheck::Finalize() {
  if (finalized_) return diagnostics_;
  finalized_ = true;
  if (options_.check_leaks) {
    for (const auto& [key, mr] : live_mrs_) {
      Emit(DiagKind::kLeakedMemoryRegion,
           StrCat("host", key.first, " MR rkey=", key.second, " lkey=", mr.lkey, " [",
                  mr.addr, ", ", mr.addr + mr.length, ") registered at t=",
                  mr.registered_at_ns, "ns never deregistered"),
           /*src_host=*/-1, key.first, /*qp_num=*/0, /*wr_id=*/0, mr.registered_at_ns);
    }
  }
  return diagnostics_;
}

int RdmaCheck::count(DiagKind kind) const {
  int n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.kind == kind) ++n;
  }
  return n;
}

std::string RdmaCheck::Report() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += StrCat("[", DiagKindName(d.kind), "] ", d.message, "\n");
  }
  return out;
}

}  // namespace check
}  // namespace rdmadl
