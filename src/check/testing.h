// Env-gated gtest integration for RdmaCheck: the checker CI mode.
//
// A test binary that calls RDMADL_REGISTER_PROTOCOL_CHECK_LISTENER() at
// namespace scope runs every test under a fresh RdmaCheck whenever the
// RDMADL_CHECK environment variable is set (to anything but "0" or empty).
// At the end of each test the checker is finalized; any diagnostic — a
// protocol violation during the test or a leak at teardown — fails that
// test with the full report. With the variable unset the listener is inert
// and the binary behaves exactly as before, so the same executable serves
// both the plain suites and `ctest -L check` / `scripts/check.sh --verify`.
//
// Header-only and gtest-dependent by design: only test binaries include it,
// the rdmadl_check library itself stays gtest-free.
#ifndef RDMADL_SRC_CHECK_TESTING_H_
#define RDMADL_SRC_CHECK_TESTING_H_

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string_view>

#include "src/check/rdma_check.h"

namespace rdmadl {
namespace check {

inline bool CheckEnabledFromEnv() {
  const char* env = std::getenv("RDMADL_CHECK");
  return env != nullptr && *env != '\0' && std::string_view(env) != "0";
}

class ProtocolCheckListener : public ::testing::EmptyTestEventListener {
 public:
  void OnTestStart(const ::testing::TestInfo& /*info*/) override {
    if (CheckEnabledFromEnv()) checker_ = std::make_unique<RdmaCheck>();
  }

  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (checker_ == nullptr) return;
    const auto& diags = checker_->Finalize();
    EXPECT_TRUE(diags.empty()) << "RdmaCheck found " << diags.size()
                               << " protocol violation(s) in " << info.test_suite_name()
                               << "." << info.name() << ":\n"
                               << checker_->Report();
    checker_.reset();
  }

 private:
  std::unique_ptr<RdmaCheck> checker_;
};

inline int RegisterProtocolCheckListener() {
  ::testing::UnitTest::GetInstance()->listeners().Append(new ProtocolCheckListener);
  return 0;
}

}  // namespace check
}  // namespace rdmadl

// Registers the listener at static-initialization time (before main runs
// InitGoogleTest, which is fine: the listener list outlives both).
#define RDMADL_REGISTER_PROTOCOL_CHECK_LISTENER()                   \
  static const int rdmadl_protocol_check_listener_registered =      \
      ::rdmadl::check::RegisterProtocolCheckListener()

#endif  // RDMADL_SRC_CHECK_TESTING_H_
