// Check-layer glue for the schedule explorer (sim/explore.h).
//
// The sim layer enumerates schedules but cannot judge them — the protocol
// invariants live in RdmaCheck, which the sim library must not depend on.
// CheckedWorkload closes the loop: it wraps a workload body so that every
// replay runs under a fresh RdmaCheck (with poll tracking on, so the stall
// detector knows which flag bytes a stuck run was starving on) and converts
// what happened into the explorer's schedule-independent failure classes:
//
//   "check:<diag-kind>"  a protocol invariant fired (premature-flag-read, ...)
//   "stall:deadlock"     event queue drained with the workload incomplete
//   "stall:livelock"     event cap hit (pollers spinning without progress)
//   "stall:timeout"      virtual-time deadline elapsed
//   "fail:<status-code>" any other non-OK status
//   ""                   clean run
//
// Stalls carry a typed diagnostic naming the flags still being polled (host,
// address, edge, miss count) and the writes still in flight — the concrete
// answer to "what was the run waiting on".
#ifndef RDMADL_SRC_CHECK_EXPLORE_H_
#define RDMADL_SRC_CHECK_EXPLORE_H_

#include <functional>
#include <string>

#include "src/sim/explore.h"
#include "src/sim/simulator.h"
#include "src/util/status.h"

namespace rdmadl {
namespace check {

// A workload body: builds its world on the fresh simulator, runs it, and
// returns the terminal status (RunUntilPredicate's result, typically).
using WorkloadBody = std::function<Status(sim::Simulator&)>;

// Wraps |body| with per-replay RdmaCheck shadowing + failure classification.
sim::ExploreWorkload CheckedWorkload(WorkloadBody body);

// Suite entry point mirroring RDMADL_CHECK's opt-in shape: with
// RDMADL_EXPLORE=<bound> set, explores up to <bound> schedules; otherwise
// replays only the canonical schedule (still fully checked), so the wired
// suites cost one extra run by default.
sim::ExploreResult ExploreForTest(const std::string& name, WorkloadBody body);

}  // namespace check
}  // namespace rdmadl

#endif  // RDMADL_SRC_CHECK_EXPLORE_H_
