// RdmaCheck: an opt-in shadow-state validator for the RDMA protocol stack.
//
// The zero-copy mechanism (§3.2/§3.3) is safe only because of a delicate
// protocol contract: memory regions stay registered while remote writes are
// in flight, one-sided writes land in MTU segments at ascending addresses,
// and the receiver polls a flag byte whose validity depends on that ordering.
// RdmaCheck exploits the deterministic discrete-event fabric to check that
// contract exactly, the way TSan-style vector-clock checkers validate
// shared-memory protocols:
//
//   (a) every remote write/read targets a live MR with a matching rkey —
//       use-after-deregister, stale-rkey-after-rebuild and out-of-bounds
//       RemoteSlices are distinct diagnostic kinds;
//   (b) no two in-flight one-sided writes target overlapping remote ranges
//       without a happens-before edge. In the simulated RC transport the HB
//       edges are exactly (1) same-QP FIFO execution (one WR in flight per
//       QP engine) and (2) wire completion: a WR's bytes have all landed
//       before its completion, and anything posted after observing that
//       completion is ordered behind it. A write posted while an
//       overlapping write from a *different* QP is still in flight has no
//       such edge — a remote race;
//   (c) segments land at ascending addresses within each WR and each fabric
//       transfer, and a receiver never trusts a completion flag before a
//       write covering the flag byte has actually landed;
//   (d) at teardown no MR stays registered and no arena carve-out is still
//       live when its arena is destroyed.
//
// Violations produce deterministic, trace-linked diagnostics (host, edge,
// WR id, virtual timestamp) and fail the run. The checker is installed
// process-wide (mirroring sim::Tracer); when not installed every hook is a
// single pointer-load-and-branch, so the disabled cost is near zero.
#ifndef RDMADL_SRC_CHECK_RDMA_CHECK_H_
#define RDMADL_SRC_CHECK_RDMA_CHECK_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace rdmadl {
namespace check {

enum class DiagKind {
  kUseAfterDeregister,   // Segment landed after the target MR was deregistered.
  kStaleRkey,            // Write/read posted with an rkey that is no longer (or
                         // was never) live — e.g. held across an arena rebuild.
  kOutOfBounds,          // Target range escapes the MR the rkey names.
  kRemoteRace,           // Overlapping in-flight writes with no HB edge.
  kNonAscendingSegment,  // Segment landed out of ascending-address order.
  kPrematureFlagRead,    // Completion flag trusted before its byte landed.
  kLeakedMemoryRegion,   // MR still registered at Finalize().
  kLeakedArenaBlock,     // Arena destroyed with live carve-outs.
  kQpDestroyedInFlight,  // QP destroyed (e.g. pool eviction) with a WR in
                         // flight: its wire events would touch freed state.
  kTornRead,             // Flag trusted while a write into its guarded payload
                         // range still had undelivered bytes: the reader would
                         // observe a half-written payload.
};

const char* DiagKindName(DiagKind kind);

struct Diagnostic {
  DiagKind kind = DiagKind::kUseAfterDeregister;
  std::string message;  // Full human-readable report (host, edge, WR, time).
  int src_host = -1;    // Initiator (-1 when not applicable).
  int dst_host = -1;    // Target host of the access (-1 when not applicable).
  uint32_t qp_num = 0;
  uint64_t wr_id = 0;
  int64_t vtime_ns = 0;  // Virtual time of the violating event.
};

struct RdmaCheckOptions {
  bool fail_fast = false;   // LOG(FATAL) on the first diagnostic.
  bool check_leaks = true;  // MR / arena-carve-out accounting at teardown.
  // Auto-register flag bytes at their first observed poll miss (FlagPolled)
  // even without a FlagLocation declaration, and count polls. Off by default:
  // the collective planes set flags through paths the verbs hooks never see
  // (in-network emulation, staged TCP), and tracking those would manufacture
  // premature-read false positives. The schedule explorer's harness enables
  // it — under exploration every world is built with the checker installed,
  // so every flag's covering write *is* visible.
  bool track_polled_flags = false;
};

// The checker itself. Construction installs it as the process-wide current
// checker; destruction uninstalls. Installs nest LIFO: constructing a second
// checker shadows the first until the second is destroyed (the schedule
// explorer installs a fresh checker per replay under the env-gated test
// listener's checker; the outer checker simply observes nothing meanwhile).
// All hooks below route through Current(), so everything built before the
// checker existed is simply invisible to it — installing mid-world is safe,
// events about untracked objects are ignored.
class RdmaCheck {
 public:
  explicit RdmaCheck(RdmaCheckOptions options = RdmaCheckOptions{});
  ~RdmaCheck();

  RdmaCheck(const RdmaCheck&) = delete;
  RdmaCheck& operator=(const RdmaCheck&) = delete;

  static RdmaCheck* Current() { return current_; }

  // ---- verbs layer (NicDevice / QueuePair) ----
  void MrRegistered(int host, uint64_t addr, uint64_t length, uint32_t lkey, uint32_t rkey,
                    int64_t now_ns);
  void MrDeregistered(int host, uint32_t lkey, uint32_t rkey, int64_t now_ns);
  // A one-sided write entered the QP engine. Re-posts of the same
  // (src, qp, wr_id) are transport retries: the delivered prefix resets (a
  // retry rewrites from offset 0) and no new race window opens.
  void WritePosted(int src_host, int dst_host, uint32_t qp_num, uint64_t wr_id,
                   uint64_t remote_addr, uint64_t length, uint32_t rkey, int64_t now_ns);
  // A segment of an in-flight write landed at the target.
  void WriteSegment(int src_host, uint32_t qp_num, uint64_t wr_id, uint64_t offset,
                    uint64_t length, int64_t now_ns);
  // Wire completion (success or retry-exhaustion error): the HB edge that
  // closes the write's race window.
  void WriteFinished(int src_host, uint32_t qp_num, uint64_t wr_id, int64_t now_ns);
  // A one-sided read entered the QP engine (validated against the MR shadow
  // only; reads race with nothing in this model).
  void ReadPosted(int src_host, int target_host, uint32_t qp_num, uint64_t wr_id,
                  uint64_t remote_addr, uint64_t length, uint32_t rkey, int64_t now_ns);
  // A QP was destroyed (pool eviction, device teardown). Destroying a QP
  // whose write is still in flight is a protocol violation: the pending wire
  // events reference the dead QP.
  void QpDestroyed(int host, uint32_t qp_num, int64_t now_ns);

  // ---- fabric layer ----
  // Tracks ascending-address delivery per transfer (covers the TCP plane and
  // anything else that bypasses the verbs hooks). Returns a nonzero id.
  uint64_t TransferStarted(int src_host, int dst_host, uint64_t bytes, int64_t now_ns);
  void TransferSegment(uint64_t transfer_id, uint64_t offset, uint64_t length, int64_t now_ns);
  void TransferFinished(uint64_t transfer_id);

  // ---- arena allocator ----
  void ArenaBlockAllocated(const void* arena, const std::string& arena_name, uint64_t offset,
                           size_t bytes);
  void ArenaBlockFreed(const void* arena, uint64_t offset);
  void ArenaDestroyed(const void* arena);

  // ---- flag-byte protocol (§3.2 tail flag / §3.3 metadata tail flag) ----
  // Declares |flag_addr| on |dst_host| a completion flag for |edge_key|.
  void FlagLocation(int dst_host, const void* flag_addr, const std::string& edge_key);
  // The degraded (staged-TCP) path sets the flag locally: a legitimate HB
  // edge — the payload memcpy happened-before on the same simulated thread.
  void FlagSetLocally(int dst_host, const void* flag_addr, int64_t now_ns);
  void FlagCleared(int dst_host, const void* flag_addr);
  // The receiver observed the flag nonzero and is about to act on the
  // payload. Valid only if a tracked write covering the flag byte has landed
  // (or the flag was set locally) since the last clear — and, when a guard
  // range is declared, no in-flight write into that range still has
  // undelivered bytes (torn read).
  void FlagTrusted(int dst_host, const void* flag_addr, int64_t now_ns);
  void FlagForgotten(int dst_host, const void* flag_addr);
  // The receiver polled the flag and saw it still zero — a miss. With
  // track_polled_flags set this auto-registers the flag byte and counts the
  // miss; the poll counters feed the stall detector's "what was the run
  // waiting on" diagnostic and reset whenever the flag makes progress.
  void FlagPolled(int dst_host, const void* flag_addr, int64_t now_ns);
  // Declares [guard_base, guard_base + guard_bytes) the payload protected by
  // |flag_addr|: trusting the flag asserts the whole range has landed.
  void FlagGuards(int dst_host, const void* flag_addr, const void* guard_base,
                  uint64_t guard_bytes);

  // ---- congestion control ----
  // Records ECN/DCQCN activity so congestion-era tests can assert both that
  // the flag contract held *and* that throttling actually happened — a pass
  // with zero signals would be vacuous. Pure counters: rate limiting changes
  // timing, never ordering, so there is nothing further to shadow.
  enum class CongestionSignal { kEcnMark = 0, kCnp = 1, kRateDecrease = 2 };
  void CongestionEvent(CongestionSignal signal) {
    ++congestion_signals_[static_cast<int>(signal)];
  }
  uint64_t congestion_signal_count(CongestionSignal signal) const {
    return congestion_signals_[static_cast<int>(signal)];
  }

  // ---- stall introspection (schedule explorer's deadlock detector) ----
  // Flags the receivers are still polling for (missed at least one poll since
  // the flag last made progress) and writes still in flight: together, what a
  // stuck run was waiting on.
  struct PendingFlag {
    int host = -1;
    uint64_t addr = 0;
    std::string edge_key;
    uint64_t polls = 0;       // Misses since the last cover/local-set.
    int64_t last_poll_ns = 0;
  };
  struct PendingWrite {
    int src_host = -1;
    int dst_host = -1;
    uint32_t qp_num = 0;
    uint64_t wr_id = 0;
    uint64_t remote_addr = 0;
    uint64_t length = 0;
    uint64_t delivered = 0;
    int64_t posted_at_ns = 0;
  };
  std::vector<PendingFlag> PendingFlags() const;
  std::vector<PendingWrite> PendingWrites() const;

  // Runs the teardown checks (leaked MRs) once and returns every diagnostic
  // recorded so far. Idempotent.
  const std::vector<Diagnostic>& Finalize();

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  int count(DiagKind kind) const;
  // All diagnostics, one per line, for test failure messages.
  std::string Report() const;

 private:
  struct MrShadow {
    uint64_t addr = 0;
    uint64_t length = 0;
    uint32_t lkey = 0;
    int64_t registered_at_ns = 0;
  };
  struct DeadMr {
    uint64_t addr = 0;
    uint64_t length = 0;
    int64_t deregistered_at_ns = 0;
  };
  struct InflightWrite {
    int dst_host = -1;
    uint64_t remote_addr = 0;
    uint64_t length = 0;
    uint32_t rkey = 0;
    uint64_t delivered = 0;  // Ascending prefix landed so far.
    int64_t posted_at_ns = 0;
    bool dead_mr_reported = false;  // One use-after-deregister per WR.
  };
  struct TransferShadow {
    int src_host = -1;
    int dst_host = -1;
    uint64_t expected_offset = 0;
  };
  struct ArenaShadow {
    std::string name;
    std::map<uint64_t, size_t> live;  // offset -> rounded bytes
  };
  struct FlagShadow {
    std::string edge_key;
    bool landed = false;  // A covering write landed (or local set) since clear.
    uint64_t guard_lo = 0;  // Guarded payload range; lo == hi means no guard.
    uint64_t guard_hi = 0;
    uint64_t polls = 0;  // Misses since the flag last made progress.
    int64_t last_poll_ns = 0;
  };

  using WriteKey = std::tuple<int, uint32_t, uint64_t>;  // (src_host, qp, wr_id)
  using MrKey = std::pair<int, uint32_t>;                // (host, rkey)

  void Emit(DiagKind kind, std::string message, int src_host, int dst_host, uint32_t qp_num,
            uint64_t wr_id, int64_t now_ns);
  // Checks a posted one-sided target range against the MR shadow; emits
  // kStaleRkey / kOutOfBounds. Returns true if the target is valid.
  bool CheckTarget(const char* verb, int src_host, int dst_host, uint32_t qp_num,
                   uint64_t wr_id, uint64_t remote_addr, uint64_t length, uint32_t rkey,
                   int64_t now_ns);
  // Marks any watched flag bytes covered by [addr, addr+len) as landed.
  void CoverFlags(int dst_host, uint64_t addr, uint64_t len);

  static RdmaCheck* current_;

  RdmaCheck* parent_ = nullptr;  // Shadowed checker restored at destruction.
  RdmaCheckOptions options_;
  std::vector<Diagnostic> diagnostics_;
  bool finalized_ = false;
  uint64_t next_transfer_id_ = 1;

  std::map<MrKey, MrShadow> live_mrs_;
  std::map<MrKey, DeadMr> dead_mrs_;  // rkey graveyard: classifies stale rkeys.
  std::map<WriteKey, InflightWrite> inflight_;
  std::map<uint64_t, TransferShadow> transfers_;
  std::map<const void*, ArenaShadow> arenas_;
  uint64_t congestion_signals_[3] = {0, 0, 0};
  // (host, flag address) -> shadow bit.
  std::map<std::pair<int, uint64_t>, FlagShadow> flags_;
};

// ---- dispatch hooks -------------------------------------------------------
// One pointer load + branch when no checker is installed.

inline void OnMrRegistered(int host, uint64_t addr, uint64_t length, uint32_t lkey,
                           uint32_t rkey, int64_t now_ns) {
  if (RdmaCheck* c = RdmaCheck::Current()) c->MrRegistered(host, addr, length, lkey, rkey, now_ns);
}
inline void OnMrDeregistered(int host, uint32_t lkey, uint32_t rkey, int64_t now_ns) {
  if (RdmaCheck* c = RdmaCheck::Current()) c->MrDeregistered(host, lkey, rkey, now_ns);
}
inline void OnWritePosted(int src_host, int dst_host, uint32_t qp_num, uint64_t wr_id,
                          uint64_t remote_addr, uint64_t length, uint32_t rkey,
                          int64_t now_ns) {
  if (RdmaCheck* c = RdmaCheck::Current()) {
    c->WritePosted(src_host, dst_host, qp_num, wr_id, remote_addr, length, rkey, now_ns);
  }
}
inline void OnWriteSegment(int src_host, uint32_t qp_num, uint64_t wr_id, uint64_t offset,
                           uint64_t length, int64_t now_ns) {
  if (RdmaCheck* c = RdmaCheck::Current()) {
    c->WriteSegment(src_host, qp_num, wr_id, offset, length, now_ns);
  }
}
inline void OnWriteFinished(int src_host, uint32_t qp_num, uint64_t wr_id, int64_t now_ns) {
  if (RdmaCheck* c = RdmaCheck::Current()) c->WriteFinished(src_host, qp_num, wr_id, now_ns);
}
inline void OnReadPosted(int src_host, int target_host, uint32_t qp_num, uint64_t wr_id,
                         uint64_t remote_addr, uint64_t length, uint32_t rkey, int64_t now_ns) {
  if (RdmaCheck* c = RdmaCheck::Current()) {
    c->ReadPosted(src_host, target_host, qp_num, wr_id, remote_addr, length, rkey, now_ns);
  }
}
inline void OnQpDestroyed(int host, uint32_t qp_num, int64_t now_ns) {
  if (RdmaCheck* c = RdmaCheck::Current()) c->QpDestroyed(host, qp_num, now_ns);
}
inline uint64_t OnTransferStarted(int src_host, int dst_host, uint64_t bytes, int64_t now_ns) {
  if (RdmaCheck* c = RdmaCheck::Current()) {
    return c->TransferStarted(src_host, dst_host, bytes, now_ns);
  }
  return 0;
}
inline void OnTransferSegment(uint64_t transfer_id, uint64_t offset, uint64_t length,
                              int64_t now_ns) {
  if (transfer_id == 0) return;
  if (RdmaCheck* c = RdmaCheck::Current()) {
    c->TransferSegment(transfer_id, offset, length, now_ns);
  }
}
inline void OnTransferFinished(uint64_t transfer_id) {
  if (transfer_id == 0) return;
  if (RdmaCheck* c = RdmaCheck::Current()) c->TransferFinished(transfer_id);
}
inline void OnArenaBlockAllocated(const void* arena, const std::string& arena_name,
                                  uint64_t offset, size_t bytes) {
  if (RdmaCheck* c = RdmaCheck::Current()) {
    c->ArenaBlockAllocated(arena, arena_name, offset, bytes);
  }
}
inline void OnArenaBlockFreed(const void* arena, uint64_t offset) {
  if (RdmaCheck* c = RdmaCheck::Current()) c->ArenaBlockFreed(arena, offset);
}
inline void OnArenaDestroyed(const void* arena) {
  if (RdmaCheck* c = RdmaCheck::Current()) c->ArenaDestroyed(arena);
}
inline void OnFlagLocation(int dst_host, const void* flag_addr, const std::string& edge_key) {
  if (RdmaCheck* c = RdmaCheck::Current()) c->FlagLocation(dst_host, flag_addr, edge_key);
}
inline void OnFlagSetLocally(int dst_host, const void* flag_addr, int64_t now_ns) {
  if (RdmaCheck* c = RdmaCheck::Current()) c->FlagSetLocally(dst_host, flag_addr, now_ns);
}
inline void OnFlagCleared(int dst_host, const void* flag_addr) {
  if (RdmaCheck* c = RdmaCheck::Current()) c->FlagCleared(dst_host, flag_addr);
}
inline void OnFlagTrusted(int dst_host, const void* flag_addr, int64_t now_ns) {
  if (RdmaCheck* c = RdmaCheck::Current()) c->FlagTrusted(dst_host, flag_addr, now_ns);
}
inline void OnFlagForgotten(int dst_host, const void* flag_addr) {
  if (RdmaCheck* c = RdmaCheck::Current()) c->FlagForgotten(dst_host, flag_addr);
}
inline void OnFlagPolled(int dst_host, const void* flag_addr, int64_t now_ns) {
  if (RdmaCheck* c = RdmaCheck::Current()) c->FlagPolled(dst_host, flag_addr, now_ns);
}
inline void OnFlagGuards(int dst_host, const void* flag_addr, const void* guard_base,
                         uint64_t guard_bytes) {
  if (RdmaCheck* c = RdmaCheck::Current()) {
    c->FlagGuards(dst_host, flag_addr, guard_base, guard_bytes);
  }
}
inline void OnCongestionSignal(RdmaCheck::CongestionSignal signal) {
  if (RdmaCheck* c = RdmaCheck::Current()) c->CongestionEvent(signal);
}

}  // namespace check
}  // namespace rdmadl

#endif  // RDMADL_SRC_CHECK_RDMA_CHECK_H_
