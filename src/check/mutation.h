// Seeded protocol mutations for explorer self-validation.
//
// A model checker that has never caught a bug proves nothing: maybe the
// protocol is correct, maybe the checker is blind. Each mutation here
// re-introduces a real class of zero-copy protocol bug at its natural seam
// in the product code (transfer engine, QP engine, flag pollers); the
// explorer test suite turns one on, explores, and asserts the bug is caught
// within a bounded number of schedules. Production behavior is untouched:
// every seam is a branch on a process-wide bitmask that is zero except
// inside a ScopedMutation.
#ifndef RDMADL_SRC_CHECK_MUTATION_H_
#define RDMADL_SRC_CHECK_MUTATION_H_

#include <cstdint>

namespace rdmadl {
namespace check {

enum Mutation : uint32_t {
  // Transfer engine posts the completion flag after the FIRST stripe
  // completes instead of the last: the receiver can trust the flag while
  // sibling stripes are still landing (§3.2 payload-before-flag violated).
  kFlagBeforeLastStripe = 1u << 0,
  // QP engine resumes a retried write from its delivery cursor instead of
  // rewriting from offset 0: segments land at a non-zero offset after the
  // shadow cursor reset (ascending-delivery contract violated).
  kRetryKeepsCursor = 1u << 1,
  // Receiver acts on the payload after a poll miss, as if the flag were
  // already set (premature flag trust).
  kPrematureFlagTrust = 1u << 2,
  // Sender silently skips the flag write: the receiver polls forever — the
  // stall detector's bread and butter.
  kSkipFlagWrite = 1u << 3,
};

constexpr uint32_t kAllMutations =
    kFlagBeforeLastStripe | kRetryKeepsCursor | kPrematureFlagTrust | kSkipFlagWrite;

inline const char* MutationName(Mutation m) {
  switch (m) {
    case kFlagBeforeLastStripe:
      return "flag-before-last-stripe";
    case kRetryKeepsCursor:
      return "retry-keeps-cursor";
    case kPrematureFlagTrust:
      return "premature-flag-trust";
    case kSkipFlagWrite:
      return "skip-flag-write";
  }
  return "?";
}

namespace internal {
inline uint32_t& ActiveMutations() {
  static uint32_t active = 0;
  return active;
}
}  // namespace internal

// The product-code seam: one load + test when no mutation is armed.
inline bool MutationEnabled(Mutation m) {
  return (internal::ActiveMutations() & m) != 0;
}

// Arms |mask| for the current scope (nests by OR-ing; restores on exit).
class ScopedMutation {
 public:
  explicit ScopedMutation(uint32_t mask) : saved_(internal::ActiveMutations()) {
    internal::ActiveMutations() = saved_ | mask;
  }
  ~ScopedMutation() { internal::ActiveMutations() = saved_; }

  ScopedMutation(const ScopedMutation&) = delete;
  ScopedMutation& operator=(const ScopedMutation&) = delete;

 private:
  uint32_t saved_;
};

}  // namespace check
}  // namespace rdmadl

#endif  // RDMADL_SRC_CHECK_MUTATION_H_
