#include "src/runtime/host_runtime.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/util/strings.h"

namespace rdmadl {
namespace runtime {

namespace {

// Virtual address layout for kSimulated mode: each process gets a disjoint
// 1 TB window starting at (index + 2) << 40, carved into sub-ranges. These
// addresses are never dereferenced — allocators only do arithmetic on them —
// and a stray dereference faults loudly instead of corrupting state.
constexpr uint64_t kVirtualWindowBits = 40;
constexpr uint64_t kVirtualDefaultArenaBytes = 512ull << 30;  // 512 GB
constexpr uint64_t kVirtualRdmaOffset = 512ull << 30;
constexpr uint64_t kVirtualGpuOffset = 768ull << 30;

uint64_t VirtualWindowBase(int index) {
  return static_cast<uint64_t>(index + 2) << kVirtualWindowBits;
}

}  // namespace

HostRuntime::HostRuntime(device::DeviceDirectory* directory, const HostRuntimeOptions& options,
                         int index)
    : directory_(directory), options_(options), index_(index), resources_(options.seed) {}

HostRuntime::~HostRuntime() {
  // This body runs before member destruction. Callbacks abandoned inside the
  // device by an aborted step may own tensors whose buffers deallocate
  // through the arenas and tracing wrappers owned below — drop them while
  // those allocators are still alive.
  if (rdma_device_ != nullptr) rdma_device_->DropPendingCallbacks();
  // Arenas registered with the NIC directly (virtual-mode data arenas, the
  // meta arena) bypass MemRegion's RAII deregistration — undo them here, or
  // the NIC keeps rkeys naming memory about to be freed (found by RdmaCheck).
  if (rdma_device_ != nullptr) {
    for (RdmaArena* arena : {&rdma_arena_, &gpu_arena_, &meta_arena_}) {
      if (arena->raw_mr.lkey != 0) {
        (void)rdma_device_->nic()->DeregisterMemory(arena->raw_mr);
        arena->raw_mr = rdma::MemoryRegion();
      }
    }
  }
}

tensor::TracingAllocator* HostRuntime::tracing_allocator(tensor::Allocator* base) {
  auto it = tracing_wrappers_.find(base);
  if (it == tracing_wrappers_.end()) {
    it = tracing_wrappers_.emplace(base, std::make_unique<tensor::TracingAllocator>(base)).first;
  }
  return it->second.get();
}

StatusOr<std::unique_ptr<HostRuntime>> HostRuntime::Create(device::DeviceDirectory* directory,
                                                           const HostRuntimeOptions& options,
                                                           int index) {
  auto runtime = std::unique_ptr<HostRuntime>(new HostRuntime(directory, options, index));
  RDMADL_ASSIGN_OR_RETURN(
      runtime->rdma_device_,
      device::RdmaDevice::Create(directory, options.num_cqs, options.num_qps_per_peer,
                                 options.endpoint));
  if (runtime->real_memory()) {
    runtime->default_allocator_ = tensor::CpuAllocator::Get();
  } else {
    runtime->virtual_default_allocator_ = std::make_unique<tensor::ArenaAllocator>(
        reinterpret_cast<void*>(VirtualWindowBase(index)), kVirtualDefaultArenaBytes,
        StrCat("virt-host-mem:", options.device_name));
    runtime->default_allocator_ = runtime->virtual_default_allocator_.get();
  }
  return runtime;
}

StatusOr<RdmaArena> HostRuntime::MakeArena(uint64_t size, uint64_t virtual_base,
                                           const char* label) {
  RdmaArena arena;
  arena.size = size;
  if (real_memory()) {
    RDMADL_ASSIGN_OR_RETURN(arena.region, rdma_device_->AllocateMemRegion(size));
    arena.base_addr = reinterpret_cast<uint64_t>(arena.region.data());
    arena.lkey = arena.region.lkey();
    arena.rkey = arena.region.rkey();
    arena.allocator = std::make_unique<tensor::ArenaAllocator>(
        arena.region.data(), size, StrCat(label, ":", options_.device_name));
  } else {
    void* base = reinterpret_cast<void*>(virtual_base);
    RDMADL_ASSIGN_OR_RETURN(rdma::MemoryRegion mr,
                            rdma_device_->nic()->RegisterMemory(base, size));
    arena.base_addr = virtual_base;
    arena.lkey = mr.lkey;
    arena.rkey = mr.rkey;
    arena.raw_mr = mr;
    arena.allocator = std::make_unique<tensor::ArenaAllocator>(
        base, size, StrCat(label, ":", options_.device_name));
  }
  return arena;
}

StatusOr<RdmaArena*> HostRuntime::rdma_arena() { return EnsureRdmaArena(0); }

StatusOr<RdmaArena*> HostRuntime::EnsureRdmaArena(uint64_t min_bytes) {
  if (!rdma_arena_init_) {
    // Headroom over the planner's minimum: transient staging buffers and
    // fragmentation.
    const uint64_t size = std::max(options_.rdma_arena_bytes, min_bytes + min_bytes / 2);
    RDMADL_ASSIGN_OR_RETURN(
        rdma_arena_, MakeArena(size, VirtualWindowBase(index_) + kVirtualRdmaOffset, "rdma"));
    rdma_arena_init_ = true;
  } else if (rdma_arena_.size < min_bytes) {
    return FailedPrecondition(
        StrCat("RDMA arena of ", rdma_arena_.size, " bytes already created; planner now needs ",
               min_bytes));
  }
  return &rdma_arena_;
}

StatusOr<RdmaArena*> HostRuntime::meta_arena() {
  if (!meta_arena_init_) {
    constexpr uint64_t kMetaArenaBytes = 8ull << 20;
    auto storage = std::make_unique<uint8_t[]>(kMetaArenaBytes);
    std::memset(storage.get(), 0, kMetaArenaBytes);
    RDMADL_ASSIGN_OR_RETURN(rdma::MemoryRegion mr,
                            rdma_device_->nic()->RegisterMemory(storage.get(), kMetaArenaBytes));
    meta_arena_.size = kMetaArenaBytes;
    meta_arena_.base_addr = reinterpret_cast<uint64_t>(storage.get());
    meta_arena_.lkey = mr.lkey;
    meta_arena_.rkey = mr.rkey;
    meta_arena_.raw_mr = mr;
    meta_arena_.allocator = std::make_unique<tensor::ArenaAllocator>(
        storage.get(), kMetaArenaBytes, StrCat("meta:", options_.device_name));
    meta_storage_ = std::move(storage);
    meta_arena_init_ = true;
  }
  return &meta_arena_;
}

StatusOr<RdmaArena*> HostRuntime::gpu_arena() {
  if (!gpu_arena_init_) {
    // GPU memory is a tagged arena. Under GPUDirect it is registered with the
    // NIC exactly like host memory (§3.5: allocate in mapped pinned mode and
    // register); without GDR it stays unregistered and transfers stage
    // through host memory over PCIe.
    const uint64_t size = options_.rdma_arena_bytes;
    const uint64_t vbase = VirtualWindowBase(index_) + kVirtualGpuOffset;
    if (options_.gpudirect) {
      RDMADL_ASSIGN_OR_RETURN(gpu_arena_, MakeArena(size, vbase, "gpu-gdr"));
    } else {
      gpu_arena_.size = size;
      if (real_memory()) {
        gpu_arena_.region = device::MemRegion();
        auto storage = std::make_unique<uint8_t[]>(size);
        gpu_arena_.base_addr = reinterpret_cast<uint64_t>(storage.get());
        gpu_arena_.allocator = std::make_unique<tensor::ArenaAllocator>(
            storage.get(), size, StrCat("gpu:", options_.device_name),
            tensor::MemorySpace::kGpu);
        gpu_storage_ = std::move(storage);
      } else {
        gpu_arena_.base_addr = vbase;
        gpu_arena_.allocator = std::make_unique<tensor::ArenaAllocator>(
            reinterpret_cast<void*>(vbase), size, StrCat("gpu:", options_.device_name),
            tensor::MemorySpace::kGpu);
      }
    }
    gpu_arena_init_ = true;
  }
  return &gpu_arena_;
}

StatusOr<const RdmaArena*> HostRuntime::ArenaFor(const void* ptr) const {
  if (rdma_arena_init_ && rdma_arena_.Contains(ptr)) return &rdma_arena_;
  if (gpu_arena_init_ && gpu_arena_.Contains(ptr) && gpu_arena_.lkey != 0) return &gpu_arena_;
  if (meta_arena_init_ && meta_arena_.Contains(ptr)) return &meta_arena_;
  return FailedPrecondition("pointer is not inside a registered RDMA arena");
}

}  // namespace runtime
}  // namespace rdmadl
