// Cluster: one simulated deployment — the event kernel, fabric, NICs, device
// directory and the per-process HostRuntimes (paper §5: each machine runs one
// worker process and one parameter-server process).
//
// DistributedSession: runs one placed data-flow graph across the cluster —
// partitions it, runs the analyzer's static shape inference, hands the
// cross-device edges to the transfer mechanism for setup (buffer
// preallocation + address distribution), then executes synchronous
// mini-batch steps.
#ifndef RDMADL_SRC_RUNTIME_SESSION_H_
#define RDMADL_SRC_RUNTIME_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/partition.h"
#include "src/net/topology.h"
#include "src/runtime/executor.h"
#include "src/runtime/host_runtime.h"
#include "src/runtime/transfer.h"

namespace rdmadl {
namespace runtime {

struct ClusterOptions {
  int num_machines = 1;
  net::CostModel cost;
  // Fabric shape; the default (flat, full bisection) reproduces the paper's
  // single-switch testbed, a hierarchical config adds rack/spine hops.
  net::TopologyConfig topology;
  ops::ComputeMode mode = ops::ComputeMode::kReal;
  // Defaults applied to every process created by AddProcess.
  HostRuntimeOptions process_defaults;
  // Worker-process overrides (the GPUDirect experiments of §3.5/Table 3 keep
  // worker tensors in GPU memory; PS processes stay on the host CPU).
  bool worker_tensors_on_gpu = false;
  bool worker_gpudirect = false;
};

class Cluster {
 public:
  explicit Cluster(const ClusterOptions& options);

  // Creates the process hosting |device_name| ("worker:3", "ps:1") on machine
  // |machine|. Worker processes bind port 7000, PS processes port 7001.
  StatusOr<HostRuntime*> AddProcess(const std::string& device_name, int machine);

  HostRuntime* host(const std::string& device_name) const;
  const std::vector<std::string>& device_names() const { return device_names_; }

  sim::Simulator* simulator() { return &simulator_; }
  net::Fabric* fabric() { return &fabric_; }
  rdma::RdmaFabric* rdma_fabric() { return &rdma_fabric_; }
  device::DeviceDirectory* directory() { return &directory_; }
  const ClusterOptions& options() const { return options_; }
  ops::ComputeMode mode() const { return options_.mode; }

 private:
  // Declaration order is destruction-critical: the simulator is declared
  // LAST so it is destroyed FIRST — events abandoned after a failed step hold
  // Tensor closures whose buffers deallocate into the hosts' arenas, so the
  // hosts must still be alive when the event queue is torn down. (The fabric
  // constructor only stores &simulator_, so initializing it before the
  // simulator member is safe.)
  ClusterOptions options_;
  net::Fabric fabric_;
  rdma::RdmaFabric rdma_fabric_;
  device::DeviceDirectory directory_;
  std::map<std::string, std::unique_ptr<HostRuntime>> hosts_;
  std::vector<std::string> device_names_;
  sim::Simulator simulator_;
};

struct SessionOptions {
  ExecutorOptions executor;
  // Simulator event budget per step (guards against protocol deadlocks).
  uint64_t max_events_per_step = 400'000'000;
  // Virtual-time budget per step. If > 0 and a step is still incomplete at
  // now + step_timeout_ns, RunStep aborts every in-flight executor and
  // returns kDeadlineExceeded instead of hanging virtual time (e.g. after a
  // host crash under fault injection). 0 = no deadline.
  int64_t step_timeout_ns = 0;
};

class DistributedSession {
 public:
  // |graph| must be fully placed. The mechanism outlives the session.
  DistributedSession(Cluster* cluster, TransferMechanism* mechanism, graph::Graph* graph,
                     SessionOptions options);

  // Shape inference -> partition -> executors -> mechanism setup. Runs the
  // simulator until setup completes.
  Status Setup();

  // Runs one synchronous step on every partition; returns once all have
  // completed, in virtual time. |feeds| is keyed by placeholder node name.
  Status RunStep(const std::unordered_map<std::string, tensor::Tensor>& feeds = {});

  // Virtual duration of the most recent step.
  int64_t last_step_duration_ns() const { return last_step_duration_ns_; }
  int64_t steps_run() const { return steps_run_; }

  const std::vector<graph::TransferEdge>& transfer_edges() const { return edges_; }
  Executor* executor_for(const std::string& device) const;
  Cluster* cluster() const { return cluster_; }

 private:
  Cluster* cluster_;
  TransferMechanism* mechanism_;
  graph::Graph* graph_;
  SessionOptions options_;

  bool setup_done_ = false;
  graph::PartitionResult partition_;
  std::vector<graph::TransferEdge> edges_;
  std::unordered_map<std::string, graph::TransferEdge> edges_by_key_;
  std::map<std::string, std::unique_ptr<Executor>> executors_;
  int64_t last_step_duration_ns_ = 0;
  int64_t steps_run_ = 0;
};

}  // namespace runtime
}  // namespace rdmadl

#endif  // RDMADL_SRC_RUNTIME_SESSION_H_
