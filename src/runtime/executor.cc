#include "src/runtime/executor.h"

#include <algorithm>
#include <utility>

#include "src/sim/trace.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace runtime {

using graph::Node;
using tensor::Tensor;

Executor::Executor(HostRuntime* host, const graph::Graph* graph, TransferMechanism* mechanism,
                   const std::unordered_map<std::string, graph::TransferEdge>* edges_by_key,
                   ExecutorOptions options)
    : host_(host),
      graph_(graph),
      mechanism_(mechanism),
      edges_by_key_(edges_by_key),
      options_(options) {
  CHECK_GT(options_.num_workers, 0);
  kernels_.resize(graph->num_nodes());
  total_deps_.resize(graph->num_nodes(), 0);
  edge_of_node_.resize(graph->num_nodes(), nullptr);
  for (const auto& node : graph->nodes()) {
    total_deps_[node->id()] =
        static_cast<int>(node->inputs().size() + node->control_inputs().size());
    if (node->op() == "_Send" || node->op() == "_Recv") {
      // Resolve the rendezvous key once; polling hits this on every attempt.
      const std::string key = node->GetAttr<std::string>("tensor_name");
      auto it = edges_by_key->find(key);
      CHECK(it != edges_by_key->end()) << "unknown transfer edge " << key;
      edge_of_node_[node->id()] = &it->second;
      continue;
    }
    auto kernel = ops::KernelRegistry::Global()->Create(*node);
    CHECK(kernel.ok()) << kernel.status();
    kernels_[node->id()] = std::move(kernel).value();
  }
}

Executor::~Executor() {
  for (tensor::TracingAllocator* wrapper : hooked_wrappers_) {
    wrapper->set_alloc_hook(nullptr);
  }
}

tensor::Allocator* Executor::Wrap(tensor::Allocator* base) {
  tensor::TracingAllocator* wrapper = host_->tracing_allocator(base);
  wrapper->set_alloc_hook([this](void* ptr, size_t bytes) {
    if (current_node_ != nullptr) {
      mechanism_->OnAllocation(host_, *current_node_, ptr, bytes);
    }
  });
  hooked_wrappers_.push_back(wrapper);
  return wrapper;
}

int64_t Executor::CostOf(const Node& node) const {
  const double per_sample_ns = node.GetAttrOr<double>("cost_ns", 0.0);
  double multiplier = options_.batch_multiplier;
  // Straggler knob: a chaos-configured host runs its compute slower by the
  // fault injector's per-host dilation factor (1.0 everywhere when the knob
  // is off, so the arithmetic below is unchanged byte for byte).
  const sim::FaultInjector* injector =
      host_->rdma_device()->nic()->fabric()->fault_injector();
  if (injector != nullptr && injector->stragglers_configured()) {
    multiplier *= injector->ComputeDilation(host_->rdma_device()->nic()->host_id());
  }
  return options_.op_dispatch_ns + static_cast<int64_t>(per_sample_ns * multiplier);
}

const graph::TransferEdge& Executor::EdgeOf(const Node& node) const {
  const graph::TransferEdge* edge = edge_of_node_[node.id()];
  CHECK(edge != nullptr) << "node " << node.name() << " is not a transfer op";
  return *edge;
}

void Executor::RunStepAsync(const std::unordered_map<std::string, Tensor>* feeds,
                            std::function<void(Status)> on_done) {
  CHECK(!in_flight_) << "step already running on " << host_->device_name();
  ++epoch_;
  in_flight_ = true;
  feeds_ = feeds;
  on_done_ = std::move(on_done);
  outputs_.assign(graph_->num_nodes(), Tensor());
  pending_ = total_deps_;
  ready_.clear();
  remaining_ = graph_->num_nodes();
  free_workers_ = options_.num_workers;
  failed_ = false;
  failed_polls_in_row_ = 0;
  delayed_kick_scheduled_ = false;  // A kick from an aborted step is stale.
  poll_interval_ns_ = host_->cost().idle_poll_interval_ns;
  for (const auto& node : graph_->nodes()) {
    if (pending_[node->id()] == 0) ready_.push_back(node.get());
  }
  if (remaining_ == 0) {
    const uint64_t epoch = epoch_;
    host_->simulator()->ScheduleAfter(0, [this, epoch]() {
      if (epoch != epoch_) return;
      in_flight_ = false;
      auto done = std::move(on_done_);
      done(OkStatus());
    });
    return;
  }
  MaybeDispatch();
}

void Executor::Abort(const Status& status) {
  if (!in_flight_) return;
  ++epoch_;  // Invalidate every scheduled event of the aborted step.
  failed_ = true;
  in_flight_ = false;
  ready_.clear();
  auto done = std::move(on_done_);
  if (done) done(status);
}

const Tensor* Executor::OutputOf(const Node* node) const {
  if (node == nullptr || node->id() >= static_cast<int>(outputs_.size())) return nullptr;
  return &outputs_[node->id()];
}

const Tensor* Executor::OutputOf(const std::string& node_name) const {
  return OutputOf(graph_->FindNode(node_name));
}

void Executor::MaybeDispatch() {
  while (!failed_ && !ready_.empty()) {
    // Polling-async fairness/livelock guard (§4): when every queued node is a
    // poll that already failed this pass, yield and retry after the (backed-
    // off) poll interval instead of spinning at the current instant.
    if (failed_polls_in_row_ >= static_cast<int>(ready_.size())) {
      if (!delayed_kick_scheduled_) {
        delayed_kick_scheduled_ = true;
        const uint64_t epoch = epoch_;
        host_->simulator()->ScheduleAfter(poll_interval_ns_, [this, epoch]() {
          if (epoch != epoch_) return;
          delayed_kick_scheduled_ = false;
          failed_polls_in_row_ = 0;
          // Exponential backoff while nothing arrives (see CostModel).
          poll_interval_ns_ =
              std::min(poll_interval_ns_ * 2, host_->cost().idle_poll_max_interval_ns);
          MaybeDispatch();
        });
      }
      return;
    }
    Node* node = ready_.front();
    // Polling receives are handled inline by the scheduler's polling pass and
    // do not consume an executor worker: a poll attempt is ~100 ns, and a
    // failed one re-enqueues the node at the tail of the ready queue.
    if (node->op() == "_Recv" &&
        mechanism_->recv_mode() == TransferMechanism::RecvMode::kPolling) {
      ready_.pop_front();
      PollRecv(node);
      continue;
    }
    if (free_workers_ == 0) return;
    ready_.pop_front();
    --free_workers_;
    StartNode(node);
  }
}

void Executor::StartNode(Node* node) {
  if (node->op() == "_Send") {
    StartSend(node);
  } else if (node->op() == "_Recv") {
    StartRecv(node);
  } else {
    failed_polls_in_row_ = 0;
    StartCompute(node);
  }
}

void Executor::StartCompute(Node* node) {
  ++stats_.nodes_executed;
  mechanism_->OnNodeBegin(host_, *node);

  std::vector<Tensor> inputs;
  inputs.reserve(node->inputs().size());
  for (const graph::NodeInput& in : node->inputs()) {
    inputs.push_back(outputs_[in.node->id()]);
  }
  tensor::Allocator* base =
      mechanism_->AllocatorForNode(host_, *node, host_->default_allocator());
  current_node_ = node;
  ops::OpKernelContext ctx(node, std::move(inputs), Wrap(base), host_->mode(),
                           host_->resources(), feeds_);
  Status status = kernels_[node->id()]->Compute(&ctx);
  current_node_ = nullptr;
  if (!status.ok()) {
    FailStep(Status(status.code(),
                    StrCat(node->name(), " (", node->op(), "): ", status.message())));
    return;
  }
  Tensor output = ctx.output();
  const int64_t cost = CostOf(*node);
  if (options_.serialize_compute && cost > options_.op_dispatch_ns) {
    // The kernel runs on the accelerator: reserve device time, free the
    // dispatching CPU worker after the launch overhead.
    const int64_t done_at = host_->compute_unit()->Reserve(
        host_->simulator()->Now() + options_.op_dispatch_ns, cost - options_.op_dispatch_ns);
    sim::TraceSpan(host_->device_name() + " compute", node->name(),
                   done_at - (cost - options_.op_dispatch_ns), done_at);
    const uint64_t epoch = epoch_;
    host_->simulator()->ScheduleAfter(options_.op_dispatch_ns, [this, epoch]() {
      if (epoch != epoch_) return;
      ReleaseWorker();
    });
    host_->simulator()->ScheduleAt(done_at, [this, node, output, epoch]() {
      if (epoch != epoch_) return;
      FinishNode(node, output);
    });
    return;
  }
  const uint64_t epoch = epoch_;
  host_->simulator()->ScheduleAfter(cost, [this, node, output, epoch]() {
    if (epoch != epoch_) return;
    ReleaseWorker();
    FinishNode(node, output);
  });
}

void Executor::StartSend(Node* node) {
  failed_polls_in_row_ = 0;
  ++stats_.nodes_executed;
  const graph::TransferEdge& edge = EdgeOf(*node);
  Tensor tensor = outputs_[node->inputs()[0].node->id()];
  const int64_t send_start = host_->simulator()->Now();
  const uint64_t epoch = epoch_;
  const int64_t sync_cost =
      mechanism_->Send(edge, tensor, [this, node, tensor, send_start, &edge, epoch](Status status) {
        if (epoch != epoch_) return;
        if (!status.ok()) {
          FailStep(status);
          return;
        }
        sim::TraceSpan(host_->device_name() + " send", edge.key, send_start,
                       host_->simulator()->Now());
        FinishNode(node, tensor);
      });
  host_->simulator()->ScheduleAfter(options_.op_dispatch_ns + sync_cost, [this, epoch]() {
    if (epoch != epoch_) return;
    ReleaseWorker();
  });
}

void Executor::StartRecv(Node* node) {
  ++stats_.nodes_executed;
  failed_polls_in_row_ = 0;
  const graph::TransferEdge& edge = EdgeOf(*node);
  const uint64_t epoch = epoch_;
  mechanism_->RecvAsync(edge, [this, node, epoch](const Status& status, Tensor tensor) {
    if (epoch != epoch_) return;
    if (!status.ok()) {
      FailStep(status);
      return;
    }
    FinishNode(node, std::move(tensor));
  });
  host_->simulator()->ScheduleAfter(options_.op_dispatch_ns, [this, epoch]() {
    if (epoch != epoch_) return;
    ReleaseWorker();
  });
}

void Executor::PollRecv(Node* node) {
  ++stats_.poll_attempts;
  const graph::TransferEdge& edge = EdgeOf(*node);
  Tensor received;
  const bool ready = mechanism_->TryRecv(edge, &received);
  const int64_t poll_cost = host_->cost().flag_poll_cost_ns;
  if (ready) {
    ++stats_.nodes_executed;
    failed_polls_in_row_ = 0;
    poll_interval_ns_ = host_->cost().idle_poll_interval_ns;
    // Clear-flag + dependent activation cost, then complete.
    const uint64_t epoch = epoch_;
    host_->simulator()->ScheduleAfter(poll_cost, [this, node, received, epoch]() {
      if (epoch != epoch_) return;
      FinishNode(node, received);
    });
    return;
  }
  // Failed poll: back to the tail of the ready queue, synchronously (§4).
  ++stats_.failed_polls;
  ++failed_polls_in_row_;
  ready_.push_back(node);
}

void Executor::FinishNode(Node* node, Tensor output) {
  if (failed_) return;
  outputs_[node->id()] = std::move(output);
  for (Node* consumer : node->consumers()) {
    if (--pending_[consumer->id()] == 0) {
      ready_.push_back(consumer);
      failed_polls_in_row_ = 0;
    }
  }
  if (--remaining_ == 0) {
    in_flight_ = false;
    ++stats_.steps;
    auto done = std::move(on_done_);
    done(OkStatus());
    return;
  }
  MaybeDispatch();
}

void Executor::FailStep(const Status& status) {
  if (failed_) return;
  failed_ = true;
  in_flight_ = false;
  auto done = std::move(on_done_);
  done(status);
}

void Executor::ReleaseWorker() {
  ++free_workers_;
  if (!failed_) MaybeDispatch();
}

}  // namespace runtime
}  // namespace rdmadl
