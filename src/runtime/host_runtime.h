// HostRuntime: the per-process execution environment of one simulated server
// process (a worker or a parameter server). It owns the process's allocators,
// its persistent variable state, and its handle to the RDMA device library.
//
// Memory fidelity has two modes, tied to the compute mode:
//   * kReal      — tensor buffers are real memory; RDMA verbs move real bytes
//                  (unit tests, examples, the Figure 8 micro-benchmark).
//   * kSimulated — tensor buffers are *virtual*: allocators hand out addresses
//                  from reserved, never-dereferenced ranges, so an 8-server
//                  VGG-16 run does not materialize gigabytes. All allocator
//                  arithmetic, registration bookkeeping, transfer timing and
//                  protocol state machines run identically; only payload
//                  memcpys are elided (CostModel::copy_payload == false).
#ifndef RDMADL_SRC_RUNTIME_HOST_RUNTIME_H_
#define RDMADL_SRC_RUNTIME_HOST_RUNTIME_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "src/device/rdma_device.h"
#include "src/ops/kernel.h"
#include "src/tensor/arena_allocator.h"
#include "src/util/endpoint.h"
#include "src/util/status.h"

namespace rdmadl {
namespace runtime {

// An RDMA-registered allocation arena: the §3.4 "preallocate a large enough
// memory buffer to register once" pattern, with key material for one-sided
// access.
struct RdmaArena {
  std::unique_ptr<tensor::ArenaAllocator> allocator;
  uint64_t base_addr = 0;
  uint64_t size = 0;
  uint32_t lkey = 0;
  uint32_t rkey = 0;
  device::MemRegion region;  // Keeps real-mode storage alive (invalid when virtual).
  // Raw NIC registration for arenas that bypass MemRegion (virtual-mode and
  // meta arenas); deregistered by ~HostRuntime. lkey == 0 when unused.
  rdma::MemoryRegion raw_mr;

  bool Contains(const void* ptr) const { return allocator && allocator->Contains(ptr); }
};

struct HostRuntimeOptions {
  std::string device_name;                      // e.g. "worker:0", "ps:1".
  Endpoint endpoint;
  ops::ComputeMode mode = ops::ComputeMode::kReal;
  int num_worker_contexts = 4;                  // Inter-op parallelism.
  uint64_t seed = 1;
  uint64_t rdma_arena_bytes = 256ull << 20;     // Sized by the memory planner.
  bool tensors_on_gpu = false;                  // Worker tensors in GPU memory.
  bool gpudirect = false;                       // GDR enabled (§3.5).
  // Device-library parallelism (§3.1; the paper uses 4 CQs / 4 QPs per peer).
  int num_cqs = 4;
  int num_qps_per_peer = 4;
};

class HostRuntime {
 public:
  // |index| is this process's rank among all processes (used to carve
  // disjoint virtual address ranges).
  static StatusOr<std::unique_ptr<HostRuntime>> Create(device::DeviceDirectory* directory,
                                                       const HostRuntimeOptions& options,
                                                       int index);
  ~HostRuntime();

  const std::string& device_name() const { return options_.device_name; }
  const Endpoint& endpoint() const { return options_.endpoint; }
  const HostRuntimeOptions& options() const { return options_; }
  ops::ComputeMode mode() const { return options_.mode; }
  bool real_memory() const { return options_.mode == ops::ComputeMode::kReal; }

  device::RdmaDevice* rdma_device() const { return rdma_device_.get(); }
  sim::Simulator* simulator() const { return rdma_device_->simulator(); }
  const net::CostModel& cost() const { return rdma_device_->cost(); }
  ops::ResourceManager* resources() { return &resources_; }

  // Default allocator for tensors that never leave the process.
  tensor::Allocator* default_allocator() { return default_allocator_; }
  // The pre-registered RDMA arena (created on first use).
  StatusOr<RdmaArena*> rdma_arena();
  // GPU-memory arena (registered to the NIC only under GPUDirect).
  StatusOr<RdmaArena*> gpu_arena();

  // Ensures the RDMA arena exists and can hold at least |min_bytes| (the
  // memory planner calls this with the analyzer's sizing before first use).
  StatusOr<RdmaArena*> EnsureRdmaArena(uint64_t min_bytes);

  // Small always-real, always-registered arena for protocol control state:
  // dynamic-transfer metadata blocks and flag bytes (§3.2/§3.3). Kept real
  // even in virtual-memory mode so flag polling and metadata parsing run on
  // actual bytes in every configuration.
  StatusOr<RdmaArena*> meta_arena();

  // A communication-side CPU thread (RPC serialization/deserialization,
  // staging memcpys). gRPC runs several such threads per process; each call
  // returns the next lane round-robin — callers keep the returned pointer for
  // all work belonging to one message so intra-message work stays ordered.
  net::Link* comm_cpu() {
    net::Link* lane = &comm_cpu_[next_comm_lane_];
    next_comm_lane_ = (next_comm_lane_ + 1) % kCommCpuLanes;
    return lane;
  }
  static constexpr int kCommCpuLanes = 2;
  // The receive-side completion thread: TF's gRPC/RDMA path drained inbound
  // messages on a single thread per process, so receive-side copies and
  // deserialization serialize here.
  net::Link* comm_cpu_rx() { return &comm_cpu_[0]; }

  // Serialization point for the process's accelerator: annotated compute ops
  // (GPU kernels) execute one at a time on the device, while CPU-side ops
  // (sends, receives, bookkeeping) overlap freely on the worker contexts.
  net::Link* compute_unit() { return &compute_unit_; }

  // Stable TracingAllocator wrapper around |base|, owned by this runtime so
  // it outlives every tensor allocated through it (tensors deallocate via
  // the wrapper). The executor installs/clears the allocation hook.
  tensor::TracingAllocator* tracing_allocator(tensor::Allocator* base);

  // Translates a pointer inside one of the registered arenas into the
  // (lkey, rkey) needed for one-sided verbs; fails for unregistered memory.
  StatusOr<const RdmaArena*> ArenaFor(const void* ptr) const;

 private:
  HostRuntime(device::DeviceDirectory* directory, const HostRuntimeOptions& options, int index);

  StatusOr<RdmaArena> MakeArena(uint64_t size, uint64_t virtual_base, const char* label);

  // NOTE: declaration order is destruction-critical. Members are destroyed
  // in reverse order, and tensor Buffers deallocate through their allocator
  // at destruction: resources_ (variable tensors) must die before the arenas
  // and wrappers they allocate from, and the wrappers before their base
  // arenas would be wrong — hence wrappers first, arenas next, resources last.
  device::DeviceDirectory* directory_;
  HostRuntimeOptions options_;
  int index_;
  std::unique_ptr<device::RdmaDevice> rdma_device_;
  std::unordered_map<tensor::Allocator*, std::unique_ptr<tensor::TracingAllocator>>
      tracing_wrappers_;

  tensor::Allocator* default_allocator_ = nullptr;
  std::unique_ptr<tensor::ArenaAllocator> virtual_default_allocator_;
  RdmaArena rdma_arena_;
  RdmaArena gpu_arena_;
  RdmaArena meta_arena_;
  std::unique_ptr<uint8_t[]> gpu_storage_;  // Real-mode non-GDR GPU backing.
  std::unique_ptr<uint8_t[]> meta_storage_;
  bool rdma_arena_init_ = false;
  bool gpu_arena_init_ = false;
  bool meta_arena_init_ = false;
  net::Link comm_cpu_[kCommCpuLanes] = {net::Link("comm-cpu0"), net::Link("comm-cpu1")};
  int next_comm_lane_ = 0;
  net::Link compute_unit_{"gpu"};
  ops::ResourceManager resources_;
};

}  // namespace runtime
}  // namespace rdmadl

#endif  // RDMADL_SRC_RUNTIME_HOST_RUNTIME_H_
