#include "src/runtime/session.h"

#include <utility>

#include "src/analyzer/shape_inference.h"
#include "src/ops/kernel.h"
#include "src/sim/trace.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace runtime {

Cluster::Cluster(const ClusterOptions& options)
    : options_(options),
      fabric_(&simulator_, options.cost, options.num_machines, options.topology),
      rdma_fabric_(&fabric_),
      directory_(&rdma_fabric_) {
  ops::RegisterStandardOps();
}

StatusOr<HostRuntime*> Cluster::AddProcess(const std::string& device_name, int machine) {
  if (hosts_.count(device_name) > 0) {
    return AlreadyExists(StrCat("process already exists: ", device_name));
  }
  if (machine < 0 || machine >= options_.num_machines) {
    return InvalidArgument(StrCat("machine index out of range: ", machine));
  }
  HostRuntimeOptions opts = options_.process_defaults;
  opts.device_name = device_name;
  opts.mode = options_.mode;
  const bool is_worker = device_name.rfind("worker", 0) == 0;
  opts.endpoint = Endpoint{machine, static_cast<uint16_t>(is_worker ? 7000 : 7001)};
  if (is_worker) {
    opts.tensors_on_gpu = options_.worker_tensors_on_gpu;
    opts.gpudirect = options_.worker_gpudirect;
  }
  opts.seed = options_.process_defaults.seed + hosts_.size() * 7919 + 1;
  RDMADL_ASSIGN_OR_RETURN(
      std::unique_ptr<HostRuntime> host,
      HostRuntime::Create(&directory_, opts, static_cast<int>(hosts_.size())));
  HostRuntime* raw = host.get();
  hosts_[device_name] = std::move(host);
  device_names_.push_back(device_name);
  return raw;
}

HostRuntime* Cluster::host(const std::string& device_name) const {
  auto it = hosts_.find(device_name);
  CHECK(it != hosts_.end()) << "unknown device " << device_name;
  return it->second.get();
}

DistributedSession::DistributedSession(Cluster* cluster, TransferMechanism* mechanism,
                                       graph::Graph* graph, SessionOptions options)
    : cluster_(cluster), mechanism_(mechanism), graph_(graph), options_(options) {}

Status DistributedSession::Setup() {
  CHECK(!setup_done_);
  // §3.4 step 1: static shape inference before partitioning, so _Send/_Recv
  // nodes inherit (possibly static) producer shapes.
  RDMADL_RETURN_IF_ERROR(analyzer::RunShapeInference(graph_));
  RDMADL_ASSIGN_OR_RETURN(partition_, graph::PartitionGraph(*graph_));
  edges_ = partition_.transfers;
  for (const graph::TransferEdge& edge : edges_) {
    edges_by_key_[edge.key] = edge;
  }
  for (graph::GraphPartition& part : partition_.partitions) {
    executors_[part.device] = std::make_unique<Executor>(
        cluster_->host(part.device), part.graph.get(), mechanism_, &edges_by_key_,
        options_.executor);
  }

  // Mechanism setup: receive-buffer preallocation + address distribution.
  bool done = false;
  Status setup_status;
  mechanism_->Setup(edges_, [&](Status s) {
    setup_status = std::move(s);
    done = true;
  });
  RDMADL_RETURN_IF_ERROR(cluster_->simulator()->RunUntilPredicate(
      [&] { return done; }, options_.max_events_per_step));
  RDMADL_RETURN_IF_ERROR(setup_status);
  setup_done_ = true;
  return OkStatus();
}

Status DistributedSession::RunStep(const std::unordered_map<std::string, tensor::Tensor>& feeds) {
  CHECK(setup_done_) << "call Setup() first";
  const int64_t start = cluster_->simulator()->Now();
  mechanism_->BeginStep(steps_run_);

  int pending = static_cast<int>(executors_.size());
  Status step_status;
  for (auto& [device, executor] : executors_) {
    executor->RunStepAsync(&feeds, [&pending, &step_status](Status s) {
      if (!s.ok() && step_status.ok()) step_status = std::move(s);
      --pending;
    });
  }
  // Stop as soon as every executor finished or any of them failed (a failed
  // executor would leave its peers waiting forever on dead transfers).
  const auto step_done = [&] { return pending == 0 || !step_status.ok(); };
  Status sim_status =
      options_.step_timeout_ns > 0
          ? cluster_->simulator()->RunUntilPredicateOrDeadline(
                step_done, start + options_.step_timeout_ns, options_.max_events_per_step)
          : cluster_->simulator()->RunUntilPredicate(step_done, options_.max_events_per_step);
  if (!step_status.ok() || !sim_status.ok()) {
    // The step is dead. Abort every executor still in flight NOW: their
    // scheduled events capture this frame's |pending|/|step_status| by
    // reference and must be invalidated before we return.
    const Status abort_status =
        !step_status.ok() ? step_status
                          : Status(sim_status.code(),
                                   StrCat("step did not complete: ", sim_status.message(),
                                          " (mechanism=", mechanism_->name(), ")"));
    for (auto& [device, executor] : executors_) {
      if (executor->step_in_flight()) executor->Abort(abort_status);
    }
    return abort_status;
  }
  ++steps_run_;
  last_step_duration_ns_ = cluster_->simulator()->Now() - start;
  sim::TraceSpan("session", StrCat("step ", steps_run_ - 1), start,
                 cluster_->simulator()->Now());
  return OkStatus();
}

Executor* DistributedSession::executor_for(const std::string& device) const {
  auto it = executors_.find(device);
  return it == executors_.end() ? nullptr : it->second.get();
}

}  // namespace runtime
}  // namespace rdmadl
