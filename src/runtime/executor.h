// Executor: runs one graph partition on one process, one mini-batch step at
// a time, over simulated worker contexts.
//
// Scheduling model (mirrors TensorFlow's, §4 of the paper):
//   * nodes whose inputs are all ready sit in a ready queue; a fixed pool of
//     worker contexts pops and executes them;
//   * synchronous ops occupy a worker for their compute cost (from the node's
//     "cost_ns" annotation, scaled by the batch multiplier);
//   * _Send is asynchronous: the worker is held only for the mechanism's
//     synchronous CPU portion; the node completes when the transfer does;
//   * _Recv under a polling mechanism uses the paper's *polling-async* mode:
//     a poll attempt is cheap; on failure the node is re-enqueued at the TAIL
//     of the ready queue so polling never starves ready work. If only failed
//     polls remain, the next attempt is delayed by idle_poll_interval (this
//     both models a polling thread yielding and keeps the discrete-event
//     simulation live).
#ifndef RDMADL_SRC_RUNTIME_EXECUTOR_H_
#define RDMADL_SRC_RUNTIME_EXECUTOR_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/graph/graph.h"
#include "src/ops/kernel.h"
#include "src/runtime/host_runtime.h"
#include "src/runtime/transfer.h"
#include "src/util/status.h"

namespace rdmadl {
namespace runtime {

struct ExecutorOptions {
  int num_workers = 4;
  // Compute-time scale: node cost = op_dispatch_ns + cost_ns_attr * batch_multiplier.
  // The training driver sets the multiplier from the model's GPU-saturation
  // law (flat until the saturation batch, then linear).
  double batch_multiplier = 1.0;
  // Fixed per-op dispatch overhead (kernel launch, scheduling).
  int64_t op_dispatch_ns = 1'500;
  // Cost-annotated ops serialize on the host's single accelerator
  // (HostRuntime::compute_unit); the dispatching CPU worker is released after
  // op_dispatch_ns, so communication ops overlap with device compute exactly
  // as in TensorFlow.
  bool serialize_compute = true;
};

struct ExecutorStats {
  int64_t steps = 0;
  int64_t nodes_executed = 0;
  int64_t poll_attempts = 0;
  int64_t failed_polls = 0;
};

class Executor {
 public:
  Executor(HostRuntime* host, const graph::Graph* graph, TransferMechanism* mechanism,
           const std::unordered_map<std::string, graph::TransferEdge>* edges_by_key,
           ExecutorOptions options);

  // Runs the partition once. |feeds| must outlive the step. |on_done| fires
  // in virtual time when every node has completed (or on first error).
  void RunStepAsync(const std::unordered_map<std::string, tensor::Tensor>* feeds,
                    std::function<void(Status)> on_done);

  // Cancels the in-flight step: on_done fires immediately with |status| and
  // every already-scheduled event of the step becomes a no-op (the step epoch
  // advances). Needed when a peer executor fails or a step deadline expires —
  // otherwise late events would touch the dead step's state.
  void Abort(const Status& status);

  bool step_in_flight() const { return in_flight_; }
  const ExecutorStats& stats() const { return stats_; }
  HostRuntime* host() const { return host_; }
  const graph::Graph* graph() const { return graph_; }

  // Tensor produced by |node| during the current/most recent step. |node|
  // must belong to this executor's partition graph.
  const tensor::Tensor* OutputOf(const graph::Node* node) const;
  // Looks the node up by name in the partition graph.
  const tensor::Tensor* OutputOf(const std::string& node_name) const;

 private:
  // Allocation interception: installs this executor's hook on the host-owned
  // TracingAllocator wrapper for |base|.
  tensor::Allocator* Wrap(tensor::Allocator* base);

  int64_t CostOf(const graph::Node& node) const;
  const graph::TransferEdge& EdgeOf(const graph::Node& node) const;

  void MaybeDispatch();
  void StartNode(graph::Node* node);
  void StartCompute(graph::Node* node);
  void StartSend(graph::Node* node);
  void StartRecv(graph::Node* node);
  void PollRecv(graph::Node* node);
  void FinishNode(graph::Node* node, tensor::Tensor output);
  void FailStep(const Status& status);
  void ReleaseWorker();

  HostRuntime* host_;
  const graph::Graph* graph_;
  TransferMechanism* mechanism_;
  const std::unordered_map<std::string, graph::TransferEdge>* edges_by_key_;
  ExecutorOptions options_;
  ExecutorStats stats_;

  // Immutable after construction.
  std::vector<std::unique_ptr<ops::OpKernel>> kernels_;  // By node id (null for _Send/_Recv).
  std::vector<int> total_deps_;                          // Inputs + control inputs per node.
  std::vector<const graph::TransferEdge*> edge_of_node_;  // By node id (transfer ops only).

  // Per-step state.
  // Step epoch: advanced by RunStepAsync and Abort. Scheduled closures and
  // mechanism callbacks capture the epoch they were created in and return
  // early if the step has since completed/aborted, so stale events cannot
  // corrupt a later step.
  uint64_t epoch_ = 0;
  bool in_flight_ = false;
  const std::unordered_map<std::string, tensor::Tensor>* feeds_ = nullptr;
  std::function<void(Status)> on_done_;
  std::vector<tensor::Tensor> outputs_;
  std::vector<int> pending_;
  std::deque<graph::Node*> ready_;
  int remaining_ = 0;
  int free_workers_ = 0;
  bool failed_ = false;
  int failed_polls_in_row_ = 0;
  bool delayed_kick_scheduled_ = false;
  int64_t poll_interval_ns_ = 1'000;  // Adaptive; see CostModel.

  // Allocation tracing plumbing. Wrappers are owned by the HostRuntime (they
  // must outlive tensors); this executor only installs hooks and clears them
  // on destruction.
  const graph::Node* current_node_ = nullptr;
  std::vector<tensor::TracingAllocator*> hooked_wrappers_;

 public:
  ~Executor();
};

}  // namespace runtime
}  // namespace rdmadl

#endif  // RDMADL_SRC_RUNTIME_EXECUTOR_H_
