// TransferMechanism: how tensors cross process boundaries.
//
// One mechanism instance coordinates *both ends* of every cross-device edge
// of a distributed graph (it holds per-edge state such as preallocated
// receive buffers and distributed remote addresses). Implementations:
//
//   comm::RpcTcpMechanism        — gRPC-over-TCP baseline (serialize + ring
//                                  buffer copies over the TCP plane).
//   comm::RpcRdmaMechanism       — gRPC-over-RDMA baseline (same RPC stack,
//                                  verbs transport; still copies+serializes).
//   comm::ZeroCopyRdmaMechanism  — the paper's mechanism: static placement
//                                  (§3.2), dynamic allocation (§3.3), graph-
//                                  analyzer integration (§3.4), optional
//                                  sender-copy mode (RDMA.cp) and GPUDirect
//                                  (§3.5).
#ifndef RDMADL_SRC_RUNTIME_TRANSFER_H_
#define RDMADL_SRC_RUNTIME_TRANSFER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/graph/partition.h"
#include "src/runtime/host_runtime.h"
#include "src/tensor/tensor.h"
#include "src/util/status.h"

namespace rdmadl {
namespace runtime {

class TransferMechanism {
 public:
  virtual ~TransferMechanism() = default;
  virtual std::string name() const = 0;

  // How _Recv nodes complete:
  //   kAsync   — the mechanism invokes a callback when the tensor arrives
  //              (message-based mechanisms; TF's RPC rendezvous).
  //   kPolling — the executor re-polls TryRecv under the polling-async
  //              scheduling of §4 (flag-byte mechanisms).
  enum class RecvMode { kAsync, kPolling };
  virtual RecvMode recv_mode() const = 0;

  // One-time setup after partitioning and shape inference: preallocates
  // receive-side buffers and distributes their addresses (§3.2/§3.3 setup
  // phase, which runs over the device library's vanilla RPC and is off the
  // critical path). |done| fires in virtual time.
  virtual void Setup(const std::vector<graph::TransferEdge>& edges,
                     std::function<void(Status)> done) = 0;

  // Step boundary hook (step index is 0-based).
  virtual void BeginStep(int64_t step) {}

  // Executes a _Send node: ships |tensor| toward the edge's receiver.
  // Returns the synchronous CPU nanoseconds consumed on the calling executor
  // worker (serialization, staging copies, verb posting); the transfer itself
  // proceeds asynchronously and |on_sent| fires when the send completes
  // locally.
  virtual int64_t Send(const graph::TransferEdge& edge, const tensor::Tensor& tensor,
                       std::function<void(Status)> on_sent) = 0;

  // kPolling only: one poll attempt; on success fills |out| (consuming the
  // arrival, i.e. clearing the flag) and returns true.
  virtual bool TryRecv(const graph::TransferEdge& edge, tensor::Tensor* out) {
    return false;
  }

  // kAsync only: registers the one-shot arrival callback for this step.
  virtual void RecvAsync(const graph::TransferEdge& edge,
                         std::function<void(const Status&, tensor::Tensor)> done) {}

  // ---- Graph-analyzer integration (§3.4); no-ops for RPC baselines ----

  // Which allocator node |node| on |host| should allocate its output from.
  virtual tensor::Allocator* AllocatorForNode(HostRuntime* host, const graph::Node& node,
                                              tensor::Allocator* default_allocator) {
    return default_allocator;
  }
  // Allocation-site tracing hooks, driven by the executor.
  virtual void OnNodeBegin(HostRuntime* host, const graph::Node& node) {}
  virtual void OnAllocation(HostRuntime* host, const graph::Node& node, const void* ptr,
                            size_t bytes) {}
};

}  // namespace runtime
}  // namespace rdmadl

#endif  // RDMADL_SRC_RUNTIME_TRANSFER_H_
