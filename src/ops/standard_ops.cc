// Built-in operator definitions (shape inference) and CPU kernels.
//
// Math kernels implement real float32 computation, used by the unit tests and
// the runnable examples; in ComputeMode::kSimulated the executor elides the
// math loops and only the allocation/data-flow side effects happen.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>

#include "src/graph/op_registry.h"
#include "src/ops/kernel.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace ops {
namespace {

using graph::Node;
using graph::OpDef;
using graph::OpRegistry;
using tensor::DType;
using tensor::kUnknownDim;
using tensor::Tensor;
using tensor::TensorShape;

// ---------------------------------------------------------------------------
// Shape functions
// ---------------------------------------------------------------------------

Status MatMulShape(const Node& node, const std::vector<TensorShape>& in, TensorShape* out) {
  if (in.size() != 2 || in[0].num_dims() != 2 || in[1].num_dims() != 2) {
    return InvalidArgument(StrCat("MatMul ", node.name(), " expects two rank-2 inputs"));
  }
  const bool ta = node.GetAttrOr<bool>("transpose_a", false);
  const bool tb = node.GetAttrOr<bool>("transpose_b", false);
  const int64_t m = ta ? in[0].dim(1) : in[0].dim(0);
  const int64_t ka = ta ? in[0].dim(0) : in[0].dim(1);
  const int64_t kb = tb ? in[1].dim(1) : in[1].dim(0);
  const int64_t n = tb ? in[1].dim(0) : in[1].dim(1);
  if (ka >= 0 && kb >= 0 && ka != kb) {
    return InvalidArgument(StrCat("MatMul ", node.name(), " inner dims mismatch: ", ka,
                                  " vs ", kb));
  }
  *out = TensorShape{m, n};
  return OkStatus();
}

Status Conv2DShape(const Node& node, const std::vector<TensorShape>& in, TensorShape* out) {
  if (in.size() != 2 || in[0].num_dims() != 4 || in[1].num_dims() != 4) {
    return InvalidArgument("Conv2D expects NHWC input and KKCF filter");
  }
  const int64_t stride = node.GetAttrOr<int64_t>("stride", 1);
  const std::string padding = node.GetAttrOr<std::string>("padding", "same");
  const int64_t n = in[0].dim(0);
  const int64_t h = in[0].dim(1);
  const int64_t w = in[0].dim(2);
  const int64_t kh = in[1].dim(0);
  const int64_t kw = in[1].dim(1);
  const int64_t f = in[1].dim(3);
  auto out_dim = [&](int64_t size, int64_t k) -> int64_t {
    if (size < 0) return kUnknownDim;
    if (padding == "same") return (size + stride - 1) / stride;
    return (size - k) / stride + 1;
  };
  *out = TensorShape{n, out_dim(h, kh), out_dim(w, kw), f};
  return OkStatus();
}

Status MaxPoolShape(const Node& node, const std::vector<TensorShape>& in, TensorShape* out) {
  if (in.size() != 1 || in[0].num_dims() != 4) {
    return InvalidArgument("MaxPool expects one NHWC input");
  }
  const int64_t k = node.GetAttrOr<int64_t>("ksize", 2);
  const int64_t stride = node.GetAttrOr<int64_t>("stride", 2);
  auto out_dim = [&](int64_t size) -> int64_t {
    if (size < 0) return kUnknownDim;
    return (size - k) / stride + 1;
  };
  *out = TensorShape{in[0].dim(0), out_dim(in[0].dim(1)), out_dim(in[0].dim(2)), in[0].dim(3)};
  return OkStatus();
}

Status BiasAddGradShape(const Node& node, const std::vector<TensorShape>& in,
                        TensorShape* out) {
  if (in.size() != 1 || in[0].num_dims() < 1) {
    return InvalidArgument("BiasAddGrad expects one input of rank >= 1");
  }
  *out = TensorShape{in[0].dim(in[0].num_dims() - 1)};
  return OkStatus();
}

Status ReshapeShape(const Node& node, const std::vector<TensorShape>& in, TensorShape* out) {
  if (in.size() != 1) return InvalidArgument("Reshape expects one input");
  TensorShape target = node.GetAttr<TensorShape>("shape");
  // Resolve a single -1 dimension if the input element count is known.
  int unknown_index = -1;
  int64_t known_product = 1;
  for (int i = 0; i < target.num_dims(); ++i) {
    if (target.dim(i) == kUnknownDim) {
      if (unknown_index >= 0) return InvalidArgument("Reshape with multiple -1 dims");
      unknown_index = i;
    } else {
      known_product *= target.dim(i);
    }
  }
  if (unknown_index >= 0 && in[0].IsFullyDefined() && known_product > 0) {
    target.set_dim(unknown_index, in[0].num_elements() / known_product);
  }
  *out = target;
  return OkStatus();
}

// _Recv: the partitioner annotated the node with the producer's shape.
Status RecvShape(const Node& node, const std::vector<TensorShape>& in, TensorShape* out) {
  *out = node.output_shape();
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

class ConstKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const TensorShape shape = ctx->node().GetAttr<TensorShape>("shape");
    const double fill = ctx->node().GetAttrOr<double>("fill_value", 0.0);
    Tensor* out = ctx->AllocateOutput(DType::kFloat32, shape);
    if (ctx->real_compute()) {
      float* data = out->data<float>();
      std::fill(data, data + out->num_elements(), static_cast<float>(fill));
    }
    return OkStatus();
  }
};

class PlaceholderKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    RDMADL_ASSIGN_OR_RETURN(Tensor fed, ctx->feed(ctx->node().name()));
    const TensorShape declared = ctx->node().GetAttr<TensorShape>("shape");
    if (!declared.IsCompatibleWith(fed.shape())) {
      return InvalidArgument(StrCat("feed for ", ctx->node().name(), " has shape ",
                                    fed.shape().ToString(), ", expected ",
                                    declared.ToString()));
    }
    ctx->set_output(std::move(fed));
    return OkStatus();
  }
};

class VariableKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    ResourceManager* rm = ctx->resources();
    const std::string& name = ctx->node().name();
    if (!rm->HasVariable(name)) {
      const TensorShape shape = ctx->node().GetAttr<TensorShape>("shape");
      Tensor var(ctx->allocator(), DType::kFloat32, shape);
      if (ctx->real_compute()) {
        const std::string init = ctx->node().GetAttrOr<std::string>("init", "zeros");
        float* data = var.data<float>();
        const int64_t n = var.num_elements();
        if (init == "zeros") {
          std::fill(data, data + n, 0.0f);
        } else if (init == "uniform") {
          const double scale = ctx->node().GetAttrOr<double>("init_scale", 0.1);
          for (int64_t i = 0; i < n; ++i) {
            data[i] = static_cast<float>(rm->rng().UniformDouble(-scale, scale));
          }
        } else if (init == "normal") {
          const double scale = ctx->node().GetAttrOr<double>("init_scale", 0.1);
          for (int64_t i = 0; i < n; ++i) {
            data[i] = static_cast<float>(rm->rng().Normal(0.0, scale));
          }
        } else {
          return InvalidArgument(StrCat("unknown variable init: ", init));
        }
      }
      rm->PutVariable(name, std::move(var));
    }
    ctx->set_output(rm->GetVariable(name));  // Shares the persistent buffer.
    return OkStatus();
  }
};

class IdentityKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    // Pass-through: the output aliases the input buffer. This is exactly the
    // in-place behaviour that defeats naive "allocated by my predecessor"
    // reasoning and motivates the dynamic allocation-site analysis (§3.4).
    ctx->set_output(ctx->input(0));
    return OkStatus();
  }
};

class MatMulKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& a = ctx->input(0);
    const Tensor& b = ctx->input(1);
    const bool ta = ctx->node().GetAttrOr<bool>("transpose_a", false);
    const bool tb = ctx->node().GetAttrOr<bool>("transpose_b", false);
    const int64_t m = ta ? a.shape().dim(1) : a.shape().dim(0);
    const int64_t k = ta ? a.shape().dim(0) : a.shape().dim(1);
    const int64_t kb = tb ? b.shape().dim(1) : b.shape().dim(0);
    const int64_t n = tb ? b.shape().dim(0) : b.shape().dim(1);
    if (k != kb) {
      return InvalidArgument(StrCat("MatMul inner dimension mismatch: ", k, " vs ", kb));
    }
    Tensor* out = ctx->AllocateOutput(DType::kFloat32, TensorShape{m, n});
    if (!ctx->real_compute()) return OkStatus();
    const float* pa = a.data<float>();
    const float* pb = b.data<float>();
    float* po = out->data<float>();
    const int64_t lda = a.shape().dim(1);
    const int64_t ldb = b.shape().dim(1);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0;
        for (int64_t x = 0; x < k; ++x) {
          const float va = ta ? pa[x * lda + i] : pa[i * lda + x];
          const float vb = tb ? pb[j * ldb + x] : pb[x * ldb + j];
          acc += va * vb;
        }
        po[i * n + j] = acc;
      }
    }
    return OkStatus();
  }
};

class Conv2DKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& x = ctx->input(0);   // [N,H,W,C]
    const Tensor& f = ctx->input(1);   // [KH,KW,C,F]
    const int64_t stride = ctx->node().GetAttrOr<int64_t>("stride", 1);
    const std::string padding = ctx->node().GetAttrOr<std::string>("padding", "same");
    std::vector<TensorShape> in_shapes{x.shape(), f.shape()};
    TensorShape out_shape;
    RDMADL_RETURN_IF_ERROR(Conv2DShape(ctx->node(), in_shapes, &out_shape));
    Tensor* out = ctx->AllocateOutput(DType::kFloat32, out_shape);
    if (!ctx->real_compute()) return OkStatus();

    const int64_t n = x.shape().dim(0), h = x.shape().dim(1), w = x.shape().dim(2),
                  c = x.shape().dim(3);
    const int64_t kh = f.shape().dim(0), kw = f.shape().dim(1), nf = f.shape().dim(3);
    const int64_t oh = out_shape.dim(1), ow = out_shape.dim(2);
    const int64_t pad_h = (padding == "same") ? ((oh - 1) * stride + kh - h) / 2 : 0;
    const int64_t pad_w = (padding == "same") ? ((ow - 1) * stride + kw - w) / 2 : 0;
    const float* px = x.data<float>();
    const float* pf = f.data<float>();
    float* po = out->data<float>();
    for (int64_t b = 0; b < n; ++b) {
      for (int64_t i = 0; i < oh; ++i) {
        for (int64_t j = 0; j < ow; ++j) {
          for (int64_t of = 0; of < nf; ++of) {
            float acc = 0;
            for (int64_t ki = 0; ki < kh; ++ki) {
              const int64_t yi = i * stride + ki - pad_h;
              if (yi < 0 || yi >= h) continue;
              for (int64_t kj = 0; kj < kw; ++kj) {
                const int64_t xj = j * stride + kj - pad_w;
                if (xj < 0 || xj >= w) continue;
                for (int64_t ci = 0; ci < c; ++ci) {
                  acc += px[((b * h + yi) * w + xj) * c + ci] *
                         pf[((ki * kw + kj) * c + ci) * nf + of];
                }
              }
            }
            po[((b * oh + i) * ow + j) * nf + of] = acc;
          }
        }
      }
    }
    return OkStatus();
  }
};

class MaxPoolKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& x = ctx->input(0);
    const int64_t k = ctx->node().GetAttrOr<int64_t>("ksize", 2);
    const int64_t stride = ctx->node().GetAttrOr<int64_t>("stride", 2);
    std::vector<TensorShape> in_shapes{x.shape()};
    TensorShape out_shape;
    RDMADL_RETURN_IF_ERROR(MaxPoolShape(ctx->node(), in_shapes, &out_shape));
    Tensor* out = ctx->AllocateOutput(DType::kFloat32, out_shape);
    if (!ctx->real_compute()) return OkStatus();
    const int64_t n = x.shape().dim(0), h = x.shape().dim(1), w = x.shape().dim(2),
                  c = x.shape().dim(3);
    const int64_t oh = out_shape.dim(1), ow = out_shape.dim(2);
    const float* px = x.data<float>();
    float* po = out->data<float>();
    for (int64_t b = 0; b < n; ++b) {
      for (int64_t i = 0; i < oh; ++i) {
        for (int64_t j = 0; j < ow; ++j) {
          for (int64_t ci = 0; ci < c; ++ci) {
            float best = -1e30f;
            for (int64_t ki = 0; ki < k; ++ki) {
              for (int64_t kj = 0; kj < k; ++kj) {
                const int64_t yi = i * stride + ki;
                const int64_t xj = j * stride + kj;
                if (yi >= h || xj >= w) continue;
                best = std::max(best, px[((b * h + yi) * w + xj) * c + ci]);
              }
            }
            po[((b * oh + i) * ow + j) * c + ci] = best;
          }
        }
      }
    }
    return OkStatus();
  }
};

enum class BinaryOp { kAdd, kSub, kMul };

template <BinaryOp kOp>
class BinaryKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& a = ctx->input(0);
    const Tensor& b = ctx->input(1);
    if (a.shape() != b.shape()) {
      return InvalidArgument(StrCat("elementwise op shape mismatch: ", a.shape().ToString(),
                                    " vs ", b.shape().ToString()));
    }
    Tensor* out = ctx->AllocateOutput(DType::kFloat32, a.shape());
    if (!ctx->real_compute()) return OkStatus();
    const float* pa = a.data<float>();
    const float* pb = b.data<float>();
    float* po = out->data<float>();
    const int64_t n = a.num_elements();
    for (int64_t i = 0; i < n; ++i) {
      if constexpr (kOp == BinaryOp::kAdd) po[i] = pa[i] + pb[i];
      if constexpr (kOp == BinaryOp::kSub) po[i] = pa[i] - pb[i];
      if constexpr (kOp == BinaryOp::kMul) po[i] = pa[i] * pb[i];
    }
    return OkStatus();
  }
};

class BiasAddKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& x = ctx->input(0);
    const Tensor& bias = ctx->input(1);
    const int64_t c = x.shape().dim(x.shape().num_dims() - 1);
    if (bias.shape().num_dims() != 1 || bias.shape().dim(0) != c) {
      return InvalidArgument("BiasAdd: bias must be rank-1 matching the last dim");
    }
    Tensor* out = ctx->AllocateOutput(DType::kFloat32, x.shape());
    if (!ctx->real_compute()) return OkStatus();
    const float* px = x.data<float>();
    const float* pb = bias.data<float>();
    float* po = out->data<float>();
    const int64_t n = x.num_elements();
    for (int64_t i = 0; i < n; ++i) po[i] = px[i] + pb[i % c];
    return OkStatus();
  }
};

enum class UnaryOp { kSigmoid, kTanh, kRelu };

template <UnaryOp kOp>
class UnaryKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& x = ctx->input(0);
    Tensor* out = ctx->AllocateOutput(DType::kFloat32, x.shape());
    if (!ctx->real_compute()) return OkStatus();
    const float* px = x.data<float>();
    float* po = out->data<float>();
    const int64_t n = x.num_elements();
    for (int64_t i = 0; i < n; ++i) {
      if constexpr (kOp == UnaryOp::kSigmoid) po[i] = 1.0f / (1.0f + std::exp(-px[i]));
      if constexpr (kOp == UnaryOp::kTanh) po[i] = std::tanh(px[i]);
      if constexpr (kOp == UnaryOp::kRelu) po[i] = px[i] > 0 ? px[i] : 0.0f;
    }
    return OkStatus();
  }
};

class SoftmaxKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& x = ctx->input(0);
    if (x.shape().num_dims() != 2) return InvalidArgument("Softmax expects rank-2 input");
    Tensor* out = ctx->AllocateOutput(DType::kFloat32, x.shape());
    if (!ctx->real_compute()) return OkStatus();
    const int64_t rows = x.shape().dim(0), cols = x.shape().dim(1);
    const float* px = x.data<float>();
    float* po = out->data<float>();
    for (int64_t r = 0; r < rows; ++r) {
      const float* row = px + r * cols;
      float* orow = po + r * cols;
      float max_v = row[0];
      for (int64_t c = 1; c < cols; ++c) max_v = std::max(max_v, row[c]);
      float sum = 0;
      for (int64_t c = 0; c < cols; ++c) {
        orow[c] = std::exp(row[c] - max_v);
        sum += orow[c];
      }
      for (int64_t c = 0; c < cols; ++c) orow[c] /= sum;
    }
    return OkStatus();
  }
};

// Mean cross-entropy of softmax(logits) against one-hot (or soft) labels.
class SoftmaxXentLossKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& logits = ctx->input(0);
    const Tensor& labels = ctx->input(1);
    if (logits.shape() != labels.shape() || logits.shape().num_dims() != 2) {
      return InvalidArgument("SoftmaxXentLoss expects matching rank-2 inputs");
    }
    Tensor* out = ctx->AllocateOutput(DType::kFloat32, TensorShape{});
    if (!ctx->real_compute()) return OkStatus();
    const int64_t rows = logits.shape().dim(0), cols = logits.shape().dim(1);
    const float* pl = logits.data<float>();
    const float* py = labels.data<float>();
    double total = 0;
    for (int64_t r = 0; r < rows; ++r) {
      const float* row = pl + r * cols;
      float max_v = row[0];
      for (int64_t c = 1; c < cols; ++c) max_v = std::max(max_v, row[c]);
      double sum = 0;
      for (int64_t c = 0; c < cols; ++c) sum += std::exp(row[c] - max_v);
      const double log_sum = std::log(sum) + max_v;
      for (int64_t c = 0; c < cols; ++c) {
        total += py[r * cols + c] * (log_sum - row[c]);
      }
    }
    out->data<float>()[0] = static_cast<float>(total / rows);
    return OkStatus();
  }
};

// d(mean xent)/d(logits) = (softmax(logits) - labels) / batch.
class SoftmaxXentGradKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& logits = ctx->input(0);
    const Tensor& labels = ctx->input(1);
    Tensor* out = ctx->AllocateOutput(DType::kFloat32, logits.shape());
    if (!ctx->real_compute()) return OkStatus();
    const int64_t rows = logits.shape().dim(0), cols = logits.shape().dim(1);
    const float* pl = logits.data<float>();
    const float* py = labels.data<float>();
    float* po = out->data<float>();
    for (int64_t r = 0; r < rows; ++r) {
      const float* row = pl + r * cols;
      float max_v = row[0];
      for (int64_t c = 1; c < cols; ++c) max_v = std::max(max_v, row[c]);
      double sum = 0;
      for (int64_t c = 0; c < cols; ++c) sum += std::exp(row[c] - max_v);
      for (int64_t c = 0; c < cols; ++c) {
        const float p = static_cast<float>(std::exp(row[c] - max_v) / sum);
        po[r * cols + c] = (p - py[r * cols + c]) / static_cast<float>(rows);
      }
    }
    return OkStatus();
  }
};

// Activation gradients: dx from (activation output y or input x, upstream dy).
enum class GradOp { kSigmoid, kTanh, kRelu };

template <GradOp kOp>
class ActivationGradKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& y = ctx->input(0);
    const Tensor& dy = ctx->input(1);
    if (y.shape() != dy.shape()) return InvalidArgument("activation grad shape mismatch");
    Tensor* out = ctx->AllocateOutput(DType::kFloat32, y.shape());
    if (!ctx->real_compute()) return OkStatus();
    const float* py = y.data<float>();
    const float* pd = dy.data<float>();
    float* po = out->data<float>();
    const int64_t n = y.num_elements();
    for (int64_t i = 0; i < n; ++i) {
      if constexpr (kOp == GradOp::kSigmoid) po[i] = pd[i] * py[i] * (1.0f - py[i]);
      if constexpr (kOp == GradOp::kTanh) po[i] = pd[i] * (1.0f - py[i] * py[i]);
      if constexpr (kOp == GradOp::kRelu) po[i] = py[i] > 0 ? pd[i] : 0.0f;
    }
    return OkStatus();
  }
};

class BiasAddGradKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& dy = ctx->input(0);
    const int64_t c = dy.shape().dim(dy.shape().num_dims() - 1);
    Tensor* out = ctx->AllocateOutput(DType::kFloat32, TensorShape{c});
    if (!ctx->real_compute()) return OkStatus();
    const float* pd = dy.data<float>();
    float* po = out->data<float>();
    std::fill(po, po + c, 0.0f);
    const int64_t n = dy.num_elements();
    for (int64_t i = 0; i < n; ++i) po[i % c] += pd[i];
    return OkStatus();
  }
};

enum class ReduceOp { kMax, kSum, kMean };

template <ReduceOp kOp>
class ReduceKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& x = ctx->input(0);
    Tensor* out = ctx->AllocateOutput(DType::kFloat32, TensorShape{});
    if (!ctx->real_compute()) return OkStatus();
    const float* px = x.data<float>();
    const int64_t n = x.num_elements();
    if (n == 0) return InvalidArgument("reduction over empty tensor");
    double acc = (kOp == ReduceOp::kMax) ? px[0] : 0.0;
    for (int64_t i = 0; i < n; ++i) {
      if constexpr (kOp == ReduceOp::kMax) {
        acc = std::max(acc, static_cast<double>(px[i]));
      } else {
        acc += px[i];
      }
    }
    if constexpr (kOp == ReduceOp::kMean) acc /= n;
    out->data<float>()[0] = static_cast<float>(acc);
    return OkStatus();
  }
};

class ReshapeKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& x = ctx->input(0);
    std::vector<TensorShape> in_shapes{x.shape()};
    TensorShape out_shape;
    RDMADL_RETURN_IF_ERROR(ReshapeShape(ctx->node(), in_shapes, &out_shape));
    if (!out_shape.IsFullyDefined() || out_shape.num_elements() != x.num_elements()) {
      return InvalidArgument(StrCat("Reshape cannot map ", x.shape().ToString(), " to ",
                                    out_shape.ToString()));
    }
    ctx->set_output(x.Reshaped(out_shape));  // Buffer alias, no copy.
    return OkStatus();
  }
};

// In-place SGD update: var -= lr * grad. Mutates the variable's persistent
// buffer; outputs the variable tensor.
class ApplySgdKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& var = ctx->input(0);
    const Tensor& grad = ctx->input(1);
    if (var.shape() != grad.shape()) {
      return InvalidArgument(StrCat("ApplySgd shape mismatch: ", var.shape().ToString(),
                                    " vs ", grad.shape().ToString()));
    }
    if (ctx->real_compute()) {
      const double lr = ctx->node().GetAttrOr<double>("learning_rate", 0.01);
      float* pv = var.data<float>();
      const float* pg = grad.data<float>();
      const int64_t n = var.num_elements();
      for (int64_t i = 0; i < n; ++i) pv[i] -= static_cast<float>(lr) * pg[i];
    }
    ctx->set_output(var);
    return OkStatus();
  }
};

// Generic benchmark-only node: produces a tensor of the attr-given shape
// after consuming its inputs; the executor charges its "flops" attr to the
// virtual clock. Real mode fills zeros (the examples never use it).
class SimOpKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    TensorShape shape = ctx->node().GetAttr<TensorShape>("shape");
    // An unknown leading (batch) dimension takes the first input's.
    if (!shape.IsFullyDefined() && shape.num_dims() > 0 && ctx->num_inputs() > 0 &&
        shape.dim(0) == kUnknownDim) {
      shape.set_dim(0, ctx->input(0).shape().dim(0));
    }
    Tensor* out = ctx->AllocateOutput(DType::kFloat32, shape);
    if (ctx->real_compute()) {
      float* data = out->data<float>();
      std::fill(data, data + out->num_elements(), 0.0f);
    }
    return OkStatus();
  }
};

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

template <typename KernelT>
KernelFactory MakeFactory() {
  return [](const Node&) -> std::unique_ptr<OpKernel> { return std::make_unique<KernelT>(); };
}

void RegisterAll() {
  OpRegistry* ops = OpRegistry::Global();
  KernelRegistry* kernels = KernelRegistry::Global();
  auto reg = [&](OpDef def, KernelFactory factory) {
    CHECK_OK(ops->Register(def));
    if (factory) CHECK_OK(kernels->Register(def.name, std::move(factory)));
  };

  reg({"Const", 0, 0, false, graph::ShapeFromAttr}, MakeFactory<ConstKernel>());
  reg({"Placeholder", 0, 0, false, graph::ShapeFromAttr}, MakeFactory<PlaceholderKernel>());
  reg({"Variable", 0, 0, true, graph::ShapeFromAttr}, MakeFactory<VariableKernel>());
  reg({"Identity", 1, 1, false, graph::SameAsFirstInputShape}, MakeFactory<IdentityKernel>());
  reg({"MatMul", 2, 2, false, MatMulShape}, MakeFactory<MatMulKernel>());
  reg({"Conv2D", 2, 2, false, Conv2DShape}, MakeFactory<Conv2DKernel>());
  reg({"MaxPool", 1, 1, false, MaxPoolShape}, MakeFactory<MaxPoolKernel>());
  reg({"Add", 2, 2, false, graph::SameAsFirstInputShape},
      MakeFactory<BinaryKernel<BinaryOp::kAdd>>());
  reg({"Sub", 2, 2, false, graph::SameAsFirstInputShape},
      MakeFactory<BinaryKernel<BinaryOp::kSub>>());
  reg({"Mul", 2, 2, false, graph::SameAsFirstInputShape},
      MakeFactory<BinaryKernel<BinaryOp::kMul>>());
  reg({"BiasAdd", 2, 2, false, graph::SameAsFirstInputShape}, MakeFactory<BiasAddKernel>());
  reg({"Sigmoid", 1, 1, false, graph::SameAsFirstInputShape},
      MakeFactory<UnaryKernel<UnaryOp::kSigmoid>>());
  reg({"Tanh", 1, 1, false, graph::SameAsFirstInputShape},
      MakeFactory<UnaryKernel<UnaryOp::kTanh>>());
  reg({"Relu", 1, 1, false, graph::SameAsFirstInputShape},
      MakeFactory<UnaryKernel<UnaryOp::kRelu>>());
  reg({"Softmax", 1, 1, false, graph::SameAsFirstInputShape}, MakeFactory<SoftmaxKernel>());
  reg({"SoftmaxXentLoss", 2, 2, false, graph::ScalarShape},
      MakeFactory<SoftmaxXentLossKernel>());
  reg({"SoftmaxXentGrad", 2, 2, false, graph::SameAsFirstInputShape},
      MakeFactory<SoftmaxXentGradKernel>());
  reg({"SigmoidGrad", 2, 2, false, graph::SameAsFirstInputShape},
      MakeFactory<ActivationGradKernel<GradOp::kSigmoid>>());
  reg({"TanhGrad", 2, 2, false, graph::SameAsFirstInputShape},
      MakeFactory<ActivationGradKernel<GradOp::kTanh>>());
  reg({"ReluGrad", 2, 2, false, graph::SameAsFirstInputShape},
      MakeFactory<ActivationGradKernel<GradOp::kRelu>>());
  reg({"BiasAddGrad", 1, 1, false, BiasAddGradShape}, MakeFactory<BiasAddGradKernel>());
  reg({"ReduceMax", 1, 1, false, graph::ScalarShape},
      MakeFactory<ReduceKernel<ReduceOp::kMax>>());
  reg({"ReduceSum", 1, 1, false, graph::ScalarShape},
      MakeFactory<ReduceKernel<ReduceOp::kSum>>());
  reg({"ReduceMean", 1, 1, false, graph::ScalarShape},
      MakeFactory<ReduceKernel<ReduceOp::kMean>>());
  reg({"Reshape", 1, 1, false, ReshapeShape}, MakeFactory<ReshapeKernel>());
  reg({"ApplySgd", 2, 2, true, graph::SameAsFirstInputShape}, MakeFactory<ApplySgdKernel>());
  reg({"SimOp", 0, -1, false, graph::ShapeFromAttr}, MakeFactory<SimOpKernel>());

  // Framework transfer ops: kernels are provided by the runtime's transfer
  // mechanism, not the kernel registry.
  reg({"_Send", 1, 1, false, graph::SameAsFirstInputShape}, nullptr);
  reg({"_Recv", 0, 0, false, RecvShape}, nullptr);
}

}  // namespace

void RegisterStandardOps() {
  static std::once_flag once;
  std::call_once(once, RegisterAll);
}

}  // namespace ops
}  // namespace rdmadl
