#include "src/ops/kernel.h"

#include "src/util/strings.h"

namespace rdmadl {
namespace ops {

KernelRegistry* KernelRegistry::Global() {
  static KernelRegistry* registry = new KernelRegistry();
  return registry;
}

Status KernelRegistry::Register(const std::string& op, KernelFactory factory) {
  if (factories_.count(op) > 0) {
    return AlreadyExists(StrCat("kernel already registered for op ", op));
  }
  factories_[op] = std::move(factory);
  return OkStatus();
}

StatusOr<std::unique_ptr<OpKernel>> KernelRegistry::Create(const graph::Node& node) const {
  auto it = factories_.find(node.op());
  if (it == factories_.end()) {
    return NotFound(StrCat("no kernel for op ", node.op(), " (node ", node.name(), ")"));
  }
  return it->second(node);
}

}  // namespace ops
}  // namespace rdmadl
