// Operator kernel interface.
//
// Kernels are instantiated per node by the executor. Every kernel allocates
// its output through OpKernelContext::AllocateOutput, which routes through
// the allocator the runtime chose for that node — this is the hook the
// RDMA-aware analyzer uses to redirect to-be-transferred tensors into the
// pre-registered RDMA arena (§3.4, "Decide tensor allocation site").
//
// Kernels run in one of two compute modes:
//   kReal      — full numeric computation (unit tests, examples);
//   kSimulated — allocation and data-flow only, math elided (paper-scale
//                benchmarks, where time comes from the executor's cost model).
#ifndef RDMADL_SRC_OPS_KERNEL_H_
#define RDMADL_SRC_OPS_KERNEL_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/graph.h"
#include "src/sim/rng.h"
#include "src/tensor/allocator.h"
#include "src/tensor/tensor.h"
#include "src/util/status.h"

namespace rdmadl {
namespace ops {

enum class ComputeMode { kReal, kSimulated };

// Per-device persistent state: variable storage and an init RNG. Lives for
// the whole training session, across mini-batch iterations.
class ResourceManager {
 public:
  explicit ResourceManager(uint64_t seed) : rng_(seed) {}

  bool HasVariable(const std::string& name) const { return variables_.count(name) > 0; }
  const tensor::Tensor& GetVariable(const std::string& name) const {
    auto it = variables_.find(name);
    CHECK(it != variables_.end()) << "unknown variable " << name;
    return it->second;
  }
  void PutVariable(const std::string& name, tensor::Tensor tensor) {
    variables_[name] = std::move(tensor);
  }
  // Drops a variable (no-op when absent). Elastic reconfiguration uses this
  // to purge copies whose shard was reassigned to another device.
  void RemoveVariable(const std::string& name) { variables_.erase(name); }
  sim::Rng& rng() { return rng_; }
  const std::unordered_map<std::string, tensor::Tensor>& variables() const {
    return variables_;
  }

 private:
  std::unordered_map<std::string, tensor::Tensor> variables_;
  sim::Rng rng_;
};

class OpKernelContext {
 public:
  OpKernelContext(const graph::Node* node, std::vector<tensor::Tensor> inputs,
                  tensor::Allocator* allocator, ComputeMode mode, ResourceManager* resources,
                  const std::unordered_map<std::string, tensor::Tensor>* feeds)
      : node_(node),
        inputs_(std::move(inputs)),
        allocator_(allocator),
        mode_(mode),
        resources_(resources),
        feeds_(feeds) {}

  const graph::Node& node() const { return *node_; }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  const tensor::Tensor& input(int i) const {
    CHECK_GE(i, 0);
    CHECK_LT(i, num_inputs());
    return inputs_[i];
  }

  tensor::Allocator* allocator() const { return allocator_; }
  bool real_compute() const { return mode_ == ComputeMode::kReal; }
  ComputeMode mode() const { return mode_; }
  ResourceManager* resources() const { return resources_; }

  // Allocates the output tensor through the node's allocator and sets it.
  tensor::Tensor* AllocateOutput(tensor::DType dtype, const tensor::TensorShape& shape) {
    output_ = tensor::Tensor(allocator_, dtype, shape);
    return &output_;
  }
  // Forwards an existing tensor (buffer sharing; used by Identity, Variable,
  // in-place updates) — no new allocation happens.
  void set_output(tensor::Tensor t) { output_ = std::move(t); }
  const tensor::Tensor& output() const { return output_; }

  // Session feed for Placeholder nodes (keyed by node name).
  StatusOr<tensor::Tensor> feed(const std::string& name) const {
    if (feeds_ != nullptr) {
      auto it = feeds_->find(name);
      if (it != feeds_->end()) return it->second;
    }
    return NotFound("no feed for placeholder " + name);
  }

 private:
  const graph::Node* node_;
  std::vector<tensor::Tensor> inputs_;
  tensor::Allocator* allocator_;
  ComputeMode mode_;
  ResourceManager* resources_;
  const std::unordered_map<std::string, tensor::Tensor>* feeds_;
  tensor::Tensor output_;
};

class OpKernel {
 public:
  virtual ~OpKernel() = default;
  virtual Status Compute(OpKernelContext* ctx) = 0;
};

using KernelFactory = std::function<std::unique_ptr<OpKernel>(const graph::Node&)>;

class KernelRegistry {
 public:
  static KernelRegistry* Global();

  Status Register(const std::string& op, KernelFactory factory);
  StatusOr<std::unique_ptr<OpKernel>> Create(const graph::Node& node) const;
  bool Has(const std::string& op) const { return factories_.count(op) > 0; }

 private:
  std::unordered_map<std::string, KernelFactory> factories_;
};

class KernelRegistrar {
 public:
  KernelRegistrar(const std::string& op, KernelFactory factory) {
    CHECK_OK(KernelRegistry::Global()->Register(op, std::move(factory)));
  }
};

// Forces registration of all built-in ops and kernels (safe to call more than
// once). Call before building graphs.
void RegisterStandardOps();

}  // namespace ops
}  // namespace rdmadl

#endif  // RDMADL_SRC_OPS_KERNEL_H_
