#include "src/net/topology.h"

#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace net {

Topology::Topology(const TopologyConfig& config, int num_hosts) : config_(config) {
  CHECK_GT(config.hosts_per_rack, 0);
  CHECK_GT(config.oversubscription, 0.0);
  num_racks_ = (num_hosts + config.hosts_per_rack - 1) / config.hosts_per_rack;
  const int spine_count = config.spine_links > 0 ? config.spine_links : num_racks_;
  rack_up_.reserve(num_racks_);
  rack_down_.reserve(num_racks_);
  for (int r = 0; r < num_racks_; ++r) {
    rack_up_.emplace_back(StrCat("rack", r, ".uplink"));
    rack_down_.emplace_back(StrCat("rack", r, ".downlink"));
  }
  spine_.reserve(spine_count);
  for (int s = 0; s < spine_count; ++s) {
    spine_.emplace_back(StrCat("spine", s));
  }
}

int Topology::PathHops(int src, int dst, Hop hops[3]) {
  const int src_rack = rack_of(src);
  const int dst_rack = rack_of(dst);
  if (src_rack == dst_rack) return 0;
  hops[0].link = &rack_up_[src_rack];
  hops[1].link = &spine_[spine_index(src_rack, dst_rack)];
  hops[2].link = &rack_down_[dst_rack];
  return 3;
}

int Topology::spine_index(int src_rack, int dst_rack) const {
  const uint64_t h = static_cast<uint64_t>(src_rack) * 0x9E3779B97F4A7C15ull +
                     static_cast<uint64_t>(dst_rack) * 0xBF58476D1CE4E5B9ull;
  return static_cast<int>(h % spine_.size());
}

}  // namespace net
}  // namespace rdmadl
