// Simulated cluster fabric: hosts connected by a full-bisection network.
//
// Each host has one egress and one ingress link; a transfer occupies the
// source egress and destination ingress for bytes/bandwidth seconds (chunked
// at a configurable granularity so concurrent transfers share bandwidth
// fairly), then lands after the plane's one-way latency. Both the RDMA plane
// and the TCP plane run over the same physical links but with different
// effective bandwidths and latencies from the CostModel.
#ifndef RDMADL_SRC_NET_FABRIC_H_
#define RDMADL_SRC_NET_FABRIC_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/net/congestion.h"
#include "src/net/cost_model.h"
#include "src/sim/fault.h"
#include "src/sim/simulator.h"
#include "src/util/logging.h"
#include "src/util/status.h"

namespace rdmadl {
namespace net {

struct TopologyConfig;
class Topology;
class SwitchReduceStage;

namespace internal {
struct TransferProgress;
}  // namespace internal

// A unidirectional serialization point (a NIC port direction). Transfers
// reserve time on the link; the link hands back the completion time.
class Link {
 public:
  explicit Link(std::string name) : name_(std::move(name)) {}

  // Reserves |duration_ns| of link time starting no earlier than |now|.
  // Returns the time at which the reserved slot *ends*. A slot may not start
  // inside a down window: the reservation queues until the link recovers.
  // (Slots already started when a window opens are allowed to finish —
  // in-flight packets are not clawed back.)
  int64_t Reserve(int64_t now, int64_t duration_ns) {
    const int64_t start = AvailableAt(std::max(now, next_free_ns_));
    next_free_ns_ = start + duration_ns;
    busy_ns_total_ += duration_ns;
    return next_free_ns_;
  }

  // Marks the link unusable in [from_ns, until_ns): reservations queue past
  // the window. Overlapping (or touching) windows are coalesced at insert, so
  // the vector stays minimal under chaos schedules that flap a link for an
  // entire run and AvailableAt can treat the windows as disjoint. Installed
  // by Fabric::SetFaultInjector.
  void AddDownWindow(int64_t from_ns, int64_t until_ns) {
    if (until_ns <= from_ns) return;
    // Every existing window that ends at/after our start and starts at/before
    // our end overlaps (or touches) the new one; merge the whole run.
    auto first = std::lower_bound(
        down_windows_.begin(), down_windows_.end(), from_ns,
        [](const std::pair<int64_t, int64_t>& w, int64_t t) { return w.second < t; });
    auto last = first;
    while (last != down_windows_.end() && last->first <= until_ns) {
      from_ns = std::min(from_ns, last->first);
      until_ns = std::max(until_ns, last->second);
      ++last;
    }
    down_windows_.insert(down_windows_.erase(first, last), {from_ns, until_ns});
  }

  // Earliest time >= |t| at which the link is up. The windows are sorted and
  // disjoint (coalesced at insert), so |t| can fall inside at most one:
  // binary-search it instead of scanning — this is on every Reserve, which
  // at 1000 hosts under chaos seeds dominates the fabric's hot path.
  int64_t AvailableAt(int64_t t) const {
    auto it = std::upper_bound(
        down_windows_.begin(), down_windows_.end(), t,
        [](int64_t t, const std::pair<int64_t, int64_t>& w) { return t < w.first; });
    if (it == down_windows_.begin()) return t;
    --it;
    return t < it->second ? it->second : t;
  }

  // Bounds this link's queue. All values are in wire time (Fabric converts
  // CongestionConfig's byte thresholds using the link's bandwidth). Zero
  // capacity and threshold leave the link unbounded and unmarked — Admit then
  // behaves exactly like Reserve.
  void ConfigureCongestion(int64_t capacity_ns, int64_t ecn_threshold_ns,
                           bool pause_on_overflow, int64_t pause_ns) {
    capacity_ns_ = capacity_ns;
    ecn_threshold_ns_ = ecn_threshold_ns;
    pause_on_overflow_ = pause_on_overflow;
    pause_ns_ = pause_ns;
  }

  struct Admission {
    int64_t done_ns = 0;  // Slot end; for a drop, where the slot would have started.
    bool ecn = false;     // Queue stood above the ECN threshold at enqueue.
    bool dropped = false; // Queue was full (drop policy): nothing was reserved.
  };

  // Reserve with queue accounting: the backlog is the wire time between |now|
  // (the packet's arrival at the queue) and the earliest slot start. Above the
  // ECN threshold the admission is marked; above capacity it is either tail
  // dropped (nothing reserved) or, under the pause policy, the link opens a
  // pause window at the end of the backlog — upstream stalls, the queue
  // drains, nothing is lost. Pause windows go through AddDownWindow and so
  // coalesce with fault-injected down windows.
  Admission Admit(int64_t now, int64_t duration_ns) {
    Admission adm;
    if (capacity_ns_ > 0 || ecn_threshold_ns_ > 0) {
      const int64_t start = AvailableAt(std::max(now, next_free_ns_));
      const int64_t backlog = start - now;
      if (backlog > cstats_.peak_backlog_ns) cstats_.peak_backlog_ns = backlog;
      if (capacity_ns_ > 0 && backlog > capacity_ns_) {
        if (!pause_on_overflow_) {
          ++cstats_.overflow_drops;
          adm.dropped = true;
          adm.done_ns = start;
          return adm;
        }
        ++cstats_.pause_windows;
        cstats_.paused_ns_total += pause_ns_;
        AddDownWindow(start, start + pause_ns_);
      }
      if (ecn_threshold_ns_ > 0 && backlog >= ecn_threshold_ns_) {
        ++cstats_.ecn_marks;
        adm.ecn = true;
      }
    }
    adm.done_ns = Reserve(now, duration_ns);
    return adm;
  }

  // True when this link's queue is bounded or marking (Admit != Reserve).
  bool congested() const { return capacity_ns_ > 0 || ecn_threshold_ns_ > 0; }

  int64_t next_free_ns() const { return next_free_ns_; }
  int64_t busy_ns_total() const { return busy_ns_total_; }
  const std::string& name() const { return name_; }
  const CongestionStats& congestion_stats() const { return cstats_; }

 private:
  std::string name_;
  int64_t next_free_ns_ = 0;
  int64_t busy_ns_total_ = 0;  // For utilization accounting.
  // Congestion bounds (wire-time units); zero = unbounded, see Admit.
  int64_t capacity_ns_ = 0;
  int64_t ecn_threshold_ns_ = 0;
  bool pause_on_overflow_ = false;
  int64_t pause_ns_ = 0;
  CongestionStats cstats_;
  std::vector<std::pair<int64_t, int64_t>> down_windows_;  // Sorted by start.
};

// One simulated server.
class Host {
 public:
  Host(int id, sim::Simulator* simulator, const CostModel* cost);

  int id() const { return id_; }
  sim::Simulator* simulator() const { return simulator_; }
  const CostModel& cost() const { return *cost_; }

  Link& egress() { return egress_; }
  Link& ingress() { return ingress_; }
  // The loopback path has its own serialization point so same-host traffic
  // does not contend with the wire.
  Link& loopback() { return loopback_; }
  // PCIe link to the (simulated) GPU, used for staging copies and GDR.
  Link& pcie() { return pcie_; }

 private:
  int id_;
  sim::Simulator* simulator_;
  const CostModel* cost_;
  Link egress_;
  Link ingress_;
  Link loopback_;
  Link pcie_;
};

// Which plane a transfer runs on; selects bandwidth/latency constants.
enum class Plane { kRdma, kTcp };

struct TransferStats {
  uint64_t transfers = 0;
  uint64_t bytes = 0;
};

class Fabric {
 public:
  Fabric(sim::Simulator* simulator, const CostModel& cost, int num_hosts);
  // Builds a hierarchical rack/spine fabric when |topology| is hierarchical;
  // a default (flat) config is byte-identical to the three-arg constructor.
  Fabric(sim::Simulator* simulator, const CostModel& cost, int num_hosts,
         const TopologyConfig& topology);
  ~Fabric();

  Host* host(int id) {
    CHECK_GE(id, 0);
    CHECK_LT(id, static_cast<int>(hosts_.size()));
    return hosts_[id].get();
  }
  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  sim::Simulator* simulator() const { return simulator_; }
  const CostModel& cost() const { return cost_; }

  // Moves |bytes| from |src| to |dst| on |plane|. Bytes are delivered in
  // ascending offset order: |on_chunk| (optional) fires once per delivered
  // segment with (offset, length); |on_complete| fires when the last segment
  // has landed (OkStatus), or when a fault kills the transfer (kUnavailable;
  // the ascending prefix that already landed stays delivered). The transfer
  // starts after |initiation_delay_ns| of sender-side processing (e.g. NIC
  // WQE fetch) from the current virtual time.
  //
  // |on_ecn| (optional) fires once per delivered segment that was ECN-marked
  // by a congested queue on its path, at the segment's delivery time — the
  // hook the RDMA layer uses to generate CNPs back to the sending QP. Never
  // fires for dropped segments (a lost packet carries no mark home) and never
  // fires on a fabric whose CongestionConfig is disabled.
  void Transfer(int src, int dst, uint64_t bytes, Plane plane, int64_t initiation_delay_ns,
                std::function<void(uint64_t offset, uint64_t length)> on_chunk,
                std::function<void(Status)> on_complete,
                std::function<void(int64_t deliver_ns)> on_ecn = nullptr);

  // Attaches a fault injector (nullptr to detach). Down windows configured on
  // the injector are installed onto the hosts' egress/ingress links at attach
  // time, so configure the injector fully before attaching. With no injector
  // the fabric consumes no randomness and behaves exactly as before.
  void SetFaultInjector(sim::FaultInjector* injector);
  sim::FaultInjector* fault_injector() const { return fault_; }

  const TransferStats& stats(Plane plane) const {
    return plane == Plane::kRdma ? rdma_stats_ : tcp_stats_;
  }

  // Null for flat fabrics.
  Topology* topology() const { return topology_.get(); }
  // Null unless the topology is hierarchical with switch_reduce enabled.
  SwitchReduceStage* switch_reduce() const { return switch_reduce_.get(); }

  // The congestion model this fabric was built with (all-zero = disabled).
  // Works on flat fabrics too: incast is a host-ingress pathology and needs
  // no racks. The RDMA layer reads dcqcn parameters from here.
  const CongestionConfig& congestion() const { return congestion_; }
  // Congestion counters summed over every host port and shared topology link.
  CongestionStats congestion_totals() const;

 private:
  friend struct internal::TransferProgress;

  // Bulk transfers recycle their per-transfer progress blocks through a
  // fabric-owned freelist instead of new/delete per transfer: at 1000 hosts
  // the allocator churn in Transfer dominates simulator throughput. Blocks
  // keep their segment-vector capacity across reuse.
  internal::TransferProgress* AcquireProgress();
  void RecycleProgress(internal::TransferProgress* progress);

  sim::Simulator* simulator_;
  CostModel cost_;
  CongestionConfig congestion_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::unique_ptr<Topology> topology_;  // Null for flat fabrics.
  std::unique_ptr<SwitchReduceStage> switch_reduce_;  // Null unless enabled.
  sim::FaultInjector* fault_ = nullptr;  // Not owned.
  TransferStats rdma_stats_;
  TransferStats tcp_stats_;
  std::vector<std::unique_ptr<internal::TransferProgress>> progress_pool_;
  std::vector<internal::TransferProgress*> progress_free_;
};

}  // namespace net
}  // namespace rdmadl

#endif  // RDMADL_SRC_NET_FABRIC_H_
