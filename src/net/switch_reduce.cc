#include "src/net/switch_reduce.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/check/rdma_check.h"
#include "src/net/fabric.h"
#include "src/net/topology.h"
#include "src/sim/fault.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace net {

SwitchReduceStage::SwitchReduceStage(Fabric* fabric, Topology* topology)
    : fabric_(fabric), topology_(topology) {
  rack_engine_free_.assign(topology_->num_racks(), 0);
}

int64_t SwitchReduceStage::EngineAluNs(uint64_t bytes) const {
  const TopologyConfig& config = topology_->config();
  return std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(std::max<uint64_t>(bytes, 1)) /
                              config.switch_reduce_bytes_per_sec * 1e9));
}

void SwitchReduceStage::AllReduceChunk(const std::vector<int>& hosts, uint64_t bytes,
                                       std::function<void(int rack_ordinal)> rack_partial,
                                       std::function<void()> aggregated,
                                       std::function<void(int host)> deliver,
                                       std::function<void(Status)> complete) {
  sim::Simulator* simulator = fabric_->simulator();
  const CostModel& cost = fabric_->cost();
  const TopologyConfig& config = topology_->config();
  const int64_t now = simulator->Now();
  ++windows_;

  // Fail-stop contributors poison the whole window: the switch engine counts
  // contributions per window and a missing stream stalls it until the control
  // plane tears the group down. Surface that as an immediate typed failure
  // after one propagation latency, mirroring Fabric::Transfer's refusal path.
  if (sim::FaultInjector* fault = fabric_->fault_injector()) {
    for (int h : hosts) {
      if (fault->HostDead(h, now)) {
        sim::TraceInstant("fault",
                          StrCat("switch-reduce refused: host", h, " crashed"), now);
        if (complete) {
          simulator->ScheduleAt(
              now + cost.rdma_one_way_latency_ns,
              [h, complete_cb = std::move(complete)]() {
                complete_cb(
                    Unavailable(StrCat("host", h, " crashed")).WithFailedHost(h));
              });
        }
        return;
      }
    }
  }

  const int64_t host_wire_ns = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(std::max<uint64_t>(bytes, 1)) /
                              cost.rdma_bandwidth_bytes_per_sec * 1e9));
  const int64_t hop_wire_ns = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(std::max<uint64_t>(bytes, 1)) /
                              (cost.rdma_bandwidth_bytes_per_sec *
                               topology_->shared_bandwidth_scale()) *
                              1e9));
  const int64_t alu_ns = EngineAluNs(bytes);

  // Group the contributors by rack, ascending rack id, members in the
  // caller's order. Participating-rack ordinal (not global rack id) indexes
  // the rack_partial callback so callers can keep dense partial buffers.
  std::vector<int> rack_ids;
  std::vector<std::vector<int>> members;
  for (int h : hosts) {
    const int rack = topology_->rack_of(h);
    auto it = std::lower_bound(rack_ids.begin(), rack_ids.end(), rack);
    const size_t pos = static_cast<size_t>(it - rack_ids.begin());
    if (it == rack_ids.end() || *it != rack) {
      rack_ids.insert(it, rack);
      members.insert(members.begin() + static_cast<long>(pos), std::vector<int>());
    }
    members[pos].push_back(h);
  }
  const int num_racks = static_cast<int>(rack_ids.size());

  // Phase 1: every contributor streams its window up to its ToR engine. The
  // engine is a serialization point: it folds one stream at a time, in the
  // order streams become available at the switch.
  std::vector<int64_t> rack_done(num_racks, 0);
  for (int rk = 0; rk < num_racks; ++rk) {
    const int rack = rack_ids[rk];
    std::vector<int64_t> arrivals;
    arrivals.reserve(members[rk].size());
    for (int h : members[rk]) {
      const int64_t egress_done = fabric_->host(h)->egress().Reserve(now, host_wire_ns);
      const int64_t uplink_done =
          topology_->rack_uplink(rack)->Reserve(egress_done, hop_wire_ns);
      arrivals.push_back(uplink_done + cost.rdma_one_way_latency_ns);
    }
    // Fold in arrival order: the engine starts on whichever stream lands
    // first. Stable sort keeps ties in member order for determinism.
    std::stable_sort(arrivals.begin(), arrivals.end());
    int64_t engine_free = rack_engine_free_[rack];
    for (int64_t arrival : arrivals) {
      engine_free = std::max(engine_free, arrival) + alu_ns;
    }
    engine_free += config.switch_engine_latency_ns;  // Pipeline drain.
    rack_engine_free_[rack] = engine_free;
    rack_done[rk] = engine_free;
    if (rack_partial) {
      simulator->ScheduleAt(engine_free, [rk, rack_partial]() { rack_partial(rk); });
    }
  }

  // Phase 2: rack partials cross their uplinks to the spine aggregator. With
  // a single participating rack the ToR partial already is the global sum.
  int64_t global_done;
  if (num_racks > 1) {
    std::vector<int64_t> partial_arrivals;
    partial_arrivals.reserve(static_cast<size_t>(num_racks));
    for (int rk = 0; rk < num_racks; ++rk) {
      const int64_t up_done =
          topology_->rack_uplink(rack_ids[rk])->Reserve(rack_done[rk], hop_wire_ns);
      partial_arrivals.push_back(up_done + config.per_hop_latency_ns);
    }
    std::stable_sort(partial_arrivals.begin(), partial_arrivals.end());
    int64_t engine_free = spine_engine_free_;
    for (int64_t arrival : partial_arrivals) {
      engine_free = std::max(engine_free, arrival) + alu_ns;
    }
    engine_free += config.switch_engine_latency_ns;
    spine_engine_free_ = engine_free;
    global_done = engine_free;
  } else {
    global_done = rack_done.empty() ? now : rack_done[0];
  }
  if (aggregated) {
    simulator->ScheduleAt(global_done, [aggregated]() { aggregated(); });
  }

  // Phase 3: the reduced window streams back down every participating rack
  // to every contributor. Deliveries are independent per host; the rack
  // downlink and the host ingress are the serialization points. Each
  // delivery is visible to the protocol checker as a one-segment transfer
  // from the fabric itself (src_host = -1: the data leaves a switch engine,
  // not a peer host), keeping ascending-address validation live on this
  // path.
  struct Fanout {
    std::function<void(int host)> deliver;
    std::function<void(Status)> complete;
    size_t remaining = 0;
  };
  auto fanout = std::make_shared<Fanout>();
  fanout->deliver = std::move(deliver);
  fanout->complete = std::move(complete);
  fanout->remaining = hosts.size();
  if (fanout->remaining == 0) {
    if (fanout->complete) {
      simulator->ScheduleAt(global_done,
                            [fanout]() { fanout->complete(OkStatus()); });
    }
    return;
  }
  for (int rk = 0; rk < num_racks; ++rk) {
    const int rack = rack_ids[rk];
    const int64_t spine_to_rack =
        num_racks > 1 ? global_done + config.per_hop_latency_ns : global_done;
    for (int h : members[rk]) {
      const int64_t down_done =
          topology_->rack_downlink(rack)->Reserve(spine_to_rack, hop_wire_ns);
      const int64_t ingress_done =
          fabric_->host(h)->ingress().Reserve(down_done, host_wire_ns);
      const int64_t deliver_at = ingress_done + cost.rdma_one_way_latency_ns;
      const uint64_t check_id = check::OnTransferStarted(-1, h, bytes, now);
      simulator->ScheduleAt(deliver_at, [h, bytes, check_id, deliver_at, fanout]() {
        if (bytes > 0) check::OnTransferSegment(check_id, 0, bytes, deliver_at);
        check::OnTransferFinished(check_id);
        if (fanout->deliver) fanout->deliver(h);
        if (--fanout->remaining == 0 && fanout->complete) {
          fanout->complete(OkStatus());
        }
      });
    }
  }
}

}  // namespace net
}  // namespace rdmadl
