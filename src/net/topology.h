// Two-level rack/spine fabric topology.
//
// The flat fabric models a single non-blocking switch: every host's egress
// and ingress ports are the only serialization points, and the plane's
// one-way latency covers the single switch traversal. TopologyConfig
// generalizes this to the classic datacenter shape: |hosts_per_rack| hosts
// share a top-of-rack (ToR) switch whose uplink into the spine carries
// hosts_per_rack / oversubscription host-ports worth of bandwidth, and racks
// are joined through spine links. The shared links are net::Link
// serialization points exactly like host ports, so inter-rack traffic
// contends for rack-uplink and spine capacity — the oversubscription tail
// effects a full-bisection fabric cannot show.
//
// The default config (hosts_per_rack == 0) is flat: Fabric behaves — to the
// byte — exactly as it did before this subsystem existed, so every existing
// figure and bench is unchanged unless a topology is asked for.
#ifndef RDMADL_SRC_NET_TOPOLOGY_H_
#define RDMADL_SRC_NET_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "src/net/fabric.h"

namespace rdmadl {
namespace net {

struct TopologyConfig {
  // Hosts per top-of-rack switch. 0 (the default) means flat full-bisection:
  // no racks, no shared links, byte-identical to pre-topology behavior.
  int hosts_per_rack = 0;
  // Ratio of rack-internal host bandwidth to rack-uplink bandwidth. 1.0 is a
  // non-blocking uplink; 4.0 means e.g. 32 hosts share 8 host-ports worth of
  // uplink. Must be > 0 when hierarchical.
  double oversubscription = 1.0;
  // Extra latency per additional switch traversal. An inter-rack path crosses
  // two more switches than the flat model's one, so it pays 2x this on top of
  // the plane's one-way latency.
  int64_t per_hop_latency_ns = 250;
  // Number of spine links joining the racks. 0 (the default) means one per
  // rack, i.e. a spine whose aggregate capacity grows with the cluster.
  int spine_links = 0;

  // ---- In-network (NetReduce-style) reduction stage --------------------
  // When true, the ToR switches carry streaming reduction engines and the
  // spine carries an aggregation engine: hosts stream contributions up their
  // rack, each ToR folds its rack's streams into one partial, partials cross
  // the rack uplinks to the spine aggregator, and the global result streams
  // back down every rack. Fabric constructs a SwitchReduceStage; the
  // collective layer drives it (Algorithm::kInNetwork).
  bool switch_reduce = false;
  // Streaming ALU rate of one reduction engine (per ToR, and the spine
  // aggregator). Tofino-class switches reduce at line rate; the default sits
  // above host reduce_bytes_per_sec so the switch is never the bottleneck.
  double switch_reduce_bytes_per_sec = 50.0e9;
  // Per-round SRAM aggregation window: one in-network round reduces at most
  // this many bytes (larger tensors are chunked into sequential rounds by
  // the caller, modeling the switch's limited on-chip aggregation memory).
  uint64_t switch_reduce_window_bytes = 256 * 1024;
  // Fixed per-round latency of one reduction engine (pipeline fill).
  int64_t switch_engine_latency_ns = 150;

  // ---- Congestion model ------------------------------------------------
  // Bounded queues / ECN / PFC / DCQCN knobs (src/net/congestion.h). The
  // all-zero default disables every mechanism. Applies to flat fabrics too:
  // incast is a host-ingress pathology and needs no racks, so Fabric
  // configures host ports from this regardless of hierarchical().
  CongestionConfig congestion;

  bool hierarchical() const { return hosts_per_rack > 0; }
};

// Owns the shared links of a two-level fabric and answers routing queries.
// Constructed by Fabric when its TopologyConfig is hierarchical; host ports
// stay owned by net::Host, this class owns only the rack/spine tier.
class Topology {
 public:
  Topology(const TopologyConfig& config, int num_hosts);

  int num_racks() const { return num_racks_; }
  int num_spine_links() const { return static_cast<int>(spine_.size()); }
  int rack_of(int host) const { return host / config_.hosts_per_rack; }

  // Bandwidth of a shared (rack-uplink / spine) link relative to a single
  // host port: hosts_per_rack / oversubscription host-ports worth.
  double shared_bandwidth_scale() const {
    return config_.hosts_per_rack / config_.oversubscription;
  }

  // Extra one-way latency of the src->dst path relative to the flat model:
  // zero within a rack, two additional switch traversals across racks.
  int64_t ExtraLatencyNs(int src, int dst) const {
    return rack_of(src) == rack_of(dst) ? 0 : 2 * config_.per_hop_latency_ns;
  }

  struct Hop {
    Link* link = nullptr;
  };
  // Fills |hops| with the shared serialization points on the src->dst path in
  // traversal order (rack uplink, spine link, rack downlink) and returns the
  // hop count: 0 intra-rack, 3 inter-rack.
  int PathHops(int src, int dst, Hop hops[3]);

  // Deterministic ECMP-style spine selection: a given rack pair always takes
  // the same spine link (flow affinity keeps the simulation reproducible),
  // while distinct pairs scatter across the spine.
  int spine_index(int src_rack, int dst_rack) const;

  Link* rack_uplink(int rack) { return &rack_up_[rack]; }
  Link* rack_downlink(int rack) { return &rack_down_[rack]; }
  Link* spine_link(int i) { return &spine_[i]; }
  const TopologyConfig& config() const { return config_; }

 private:
  TopologyConfig config_;
  int num_racks_ = 0;
  std::vector<Link> rack_up_;
  std::vector<Link> rack_down_;
  std::vector<Link> spine_;
};

}  // namespace net
}  // namespace rdmadl

#endif  // RDMADL_SRC_NET_TOPOLOGY_H_
