#include "src/net/fabric.h"

#include <algorithm>
#include <utility>

#include "src/util/strings.h"

namespace rdmadl {
namespace net {

Host::Host(int id, sim::Simulator* simulator, const CostModel* cost)
    : id_(id),
      simulator_(simulator),
      cost_(cost),
      egress_(StrCat("host", id, ".egress")),
      ingress_(StrCat("host", id, ".ingress")),
      loopback_(StrCat("host", id, ".loopback")),
      pcie_(StrCat("host", id, ".pcie")) {}

Fabric::Fabric(sim::Simulator* simulator, const CostModel& cost, int num_hosts)
    : simulator_(simulator), cost_(cost) {
  CHECK_GT(num_hosts, 0);
  hosts_.reserve(num_hosts);
  for (int i = 0; i < num_hosts; ++i) {
    hosts_.push_back(std::make_unique<Host>(i, simulator, &cost_));
  }
}

void Fabric::Transfer(int src, int dst, uint64_t bytes, Plane plane,
                      int64_t initiation_delay_ns,
                      std::function<void(uint64_t, uint64_t)> on_chunk,
                      std::function<void()> on_complete) {
  Host* src_host = host(src);
  Host* dst_host = host(dst);

  const bool loopback = (src == dst);
  double bandwidth;
  int64_t latency;
  if (loopback) {
    bandwidth = cost_.loopback_bandwidth_bytes_per_sec;
    latency = cost_.loopback_latency_ns;
  } else if (plane == Plane::kRdma) {
    bandwidth = cost_.rdma_bandwidth_bytes_per_sec;
    latency = cost_.rdma_one_way_latency_ns;
  } else {
    bandwidth = cost_.tcp_bandwidth_bytes_per_sec;
    latency = cost_.tcp_one_way_latency_ns;
  }

  TransferStats& stats = (plane == Plane::kRdma) ? rdma_stats_ : tcp_stats_;
  ++stats.transfers;
  stats.bytes += bytes;

  // Delivery granularity: MTU-sized for small transfers (fine-grained partial
  // visibility for the flag-byte protocol), scaled up for very large ones so
  // one transfer costs a bounded number of simulation events. Ascending-order
  // delivery semantics are identical either way.
  constexpr uint64_t kMaxChunksPerTransfer = 64;
  const uint64_t chunk_size =
      std::max<uint64_t>(cost_.rdma_mtu_bytes, bytes / kMaxChunksPerTransfer);
  const int64_t now = simulator_->Now() + initiation_delay_ns;

  // Sub-MTU messages (flag bytes, metadata blocks, RPC control frames) do not
  // serialize behind queued bulk transfers: a real NIC interleaves packets of
  // different QPs, so a one-byte write never waits for hundreds of megabytes
  // of unrelated traffic to drain. They pay their own wire time + latency.
  if (bytes <= cost_.rdma_mtu_bytes) {
    const int64_t wire_ns = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(std::max<uint64_t>(bytes, 1)) /
                                bandwidth * 1e9));
    auto chunk_cb = std::move(on_chunk);
    auto complete_cb = std::move(on_complete);
    simulator_->ScheduleAt(
        now + wire_ns + latency,
        [bytes, chunk_cb = std::move(chunk_cb), complete_cb = std::move(complete_cb)]() {
          if (chunk_cb && bytes > 0) chunk_cb(0, bytes);
          if (complete_cb) complete_cb();
        });
    return;
  }

  const uint64_t total = std::max<uint64_t>(bytes, 1);

  // Shared state across the per-chunk closures.
  struct Progress {
    uint64_t delivered = 0;
    uint64_t total_bytes;
    std::function<void(uint64_t, uint64_t)> on_chunk;
    std::function<void()> on_complete;
  };
  auto progress = std::make_shared<Progress>();
  progress->total_bytes = bytes;
  progress->on_chunk = std::move(on_chunk);
  progress->on_complete = std::move(on_complete);

  uint64_t offset = 0;
  int64_t cursor = now;  // Egress reservations are sequential per transfer.
  while (offset < total) {
    const uint64_t len = std::min<uint64_t>(chunk_size, total - offset);
    const int64_t wire_ns =
        std::max<int64_t>(1, static_cast<int64_t>(static_cast<double>(len) / bandwidth * 1e9));
    int64_t egress_done;
    if (loopback) {
      egress_done = src_host->loopback().Reserve(cursor, wire_ns);
    } else {
      egress_done = src_host->egress().Reserve(cursor, wire_ns);
      // Ingress occupancy mirrors egress; with a full-bisection fabric the
      // receiving port is busy for the same duration.
      dst_host->ingress().Reserve(egress_done - wire_ns + latency, wire_ns);
    }
    cursor = egress_done;
    const int64_t deliver_at = egress_done + latency;
    const uint64_t this_offset = offset;
    const uint64_t payload_len = (bytes == 0) ? 0 : len;
    simulator_->ScheduleAt(deliver_at, [progress, this_offset, payload_len]() {
      if (progress->on_chunk && payload_len > 0) {
        progress->on_chunk(this_offset, payload_len);
      }
      progress->delivered += payload_len;
      const bool done = progress->delivered >= progress->total_bytes;
      if (done && progress->on_complete) {
        auto complete = std::move(progress->on_complete);
        progress->on_complete = nullptr;
        complete();
      }
    });
    offset += len;
  }
}

}  // namespace net
}  // namespace rdmadl
