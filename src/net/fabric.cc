#include "src/net/fabric.h"

#include <algorithm>
#include <utility>

#include "src/check/rdma_check.h"
#include "src/net/switch_reduce.h"
#include "src/net/topology.h"
#include "src/sim/trace.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace net {

namespace internal {

// Shared state for one bulk transfer's per-segment delivery events. Plain
// pointer, not a shared_ptr: each event closure captures only
// {TransferProgress*, segment index} — 16 trivially-copyable bytes, which
// fits std::function's inline buffer — so scheduling a segment allocates
// nothing. Blocks are owned and recycled by the Fabric (its progress
// freelist); the last event to fire hands the block back.
struct TransferProgress {
  struct Segment {
    uint64_t offset = 0;
    uint64_t length = 0;  // 0 for dropped or zero-payload segments.
    int64_t deliver_at = 0;
    bool dropped = false;
    bool ecn = false;  // Marked CE by a congested queue on the path.
  };
  Fabric* fabric = nullptr;
  uint64_t delivered = 0;
  uint64_t total_bytes = 0;
  uint64_t check_id = 0;
  int src = 0;
  int dst = 0;
  uint32_t fired = 0;
  std::vector<Segment> segments;
  std::function<void(uint64_t, uint64_t)> on_chunk;
  std::function<void(Status)> on_complete;
  std::function<void(int64_t)> on_ecn;

  // Clears per-transfer state for reuse; keeps segment-vector capacity.
  void Reset() {
    delivered = 0;
    total_bytes = 0;
    check_id = 0;
    src = 0;
    dst = 0;
    fired = 0;
    segments.clear();
    on_chunk = nullptr;
    on_complete = nullptr;
    on_ecn = nullptr;
  }

  void Deliver(uint32_t index);
};

void TransferProgress::Deliver(uint32_t index) {
  const Segment& seg = segments[index];
  if (seg.dropped) {
    // A lost segment truncates the transfer: the in-order transport delivers
    // nothing past the gap, so earlier segments land normally and the
    // completion (fired at the lost segment's delivery time, when the
    // sender's retransmission timer would notice) carries the failure. A
    // retry rewrites from offset 0, preserving the ascending-prefix invariant
    // receivers rely on.
    check::OnTransferFinished(check_id);
    if (on_complete) {
      auto complete = std::move(on_complete);
      on_complete = nullptr;
      complete(Unavailable(
          StrCat("segment lost on host", src, "->host", dst, " at offset ", seg.offset)));
    }
  } else {
    if (seg.length > 0) {
      check::OnTransferSegment(check_id, seg.offset, seg.length, seg.deliver_at);
      if (on_chunk) on_chunk(seg.offset, seg.length);
    }
    // ECN feedback rides the delivered packet: the receiving NIC sees the CE
    // mark now and (one CNP-moderated hop later) the sender reacts.
    if (seg.ecn && on_ecn) on_ecn(seg.deliver_at);
    delivered += seg.length;
    if (delivered >= total_bytes) {
      check::OnTransferFinished(check_id);
      if (on_complete) {
        auto complete = std::move(on_complete);
        on_complete = nullptr;
        complete(OkStatus());
      }
    }
  }
  if (++fired == segments.size()) fabric->RecycleProgress(this);
}

}  // namespace internal

Host::Host(int id, sim::Simulator* simulator, const CostModel* cost)
    : id_(id),
      simulator_(simulator),
      cost_(cost),
      egress_(StrCat("host", id, ".egress")),
      ingress_(StrCat("host", id, ".ingress")),
      loopback_(StrCat("host", id, ".loopback")),
      pcie_(StrCat("host", id, ".pcie")) {}

Fabric::Fabric(sim::Simulator* simulator, const CostModel& cost, int num_hosts)
    : Fabric(simulator, cost, num_hosts, TopologyConfig()) {}

Fabric::Fabric(sim::Simulator* simulator, const CostModel& cost, int num_hosts,
               const TopologyConfig& topology)
    : simulator_(simulator), cost_(cost), congestion_(topology.congestion) {
  CHECK_GT(num_hosts, 0);
  if (topology.hierarchical()) {
    topology_ = std::make_unique<Topology>(topology, num_hosts);
    if (topology.switch_reduce) {
      switch_reduce_ = std::make_unique<SwitchReduceStage>(this, topology_.get());
    }
  }
  hosts_.reserve(num_hosts);
  for (int i = 0; i < num_hosts; ++i) {
    hosts_.push_back(std::make_unique<Host>(i, simulator, &cost_));
  }
  if (congestion_.enabled()) {
    // Byte thresholds become per-link wire time at host-port bandwidth, so
    // every queue bounds the same queuing *delay*: shared rack/spine links
    // (N× the bandwidth) implicitly hold N× the bytes, as their fatter
    // buffers would. Loopback and PCIe stay unbounded — congestion is a
    // network phenomenon here, not a memory-bus one.
    const double bw = cost_.rdma_bandwidth_bytes_per_sec;
    auto to_ns = [bw](uint64_t bytes) -> int64_t {
      if (bytes == 0) return 0;
      return std::max<int64_t>(1, static_cast<int64_t>(static_cast<double>(bytes) / bw * 1e9));
    };
    const int64_t cap_ns = to_ns(congestion_.queue_capacity_bytes);
    const int64_t ecn_ns = to_ns(congestion_.ecn_threshold_bytes);
    auto configure = [&](Link& link) {
      link.ConfigureCongestion(cap_ns, ecn_ns, congestion_.pause_on_overflow,
                               congestion_.pause_ns);
    };
    for (auto& host : hosts_) {
      configure(host->egress());
      configure(host->ingress());
    }
    if (topology_ != nullptr) {
      for (int r = 0; r < topology_->num_racks(); ++r) {
        configure(*topology_->rack_uplink(r));
        configure(*topology_->rack_downlink(r));
      }
      for (int s = 0; s < topology_->num_spine_links(); ++s) {
        configure(*topology_->spine_link(s));
      }
    }
  }
}

Fabric::~Fabric() = default;

CongestionStats Fabric::congestion_totals() const {
  CongestionStats totals;
  for (const auto& host : hosts_) {
    totals.MergeFrom(host->egress().congestion_stats());
    totals.MergeFrom(host->ingress().congestion_stats());
  }
  if (topology_ != nullptr) {
    for (int r = 0; r < topology_->num_racks(); ++r) {
      totals.MergeFrom(topology_->rack_uplink(r)->congestion_stats());
      totals.MergeFrom(topology_->rack_downlink(r)->congestion_stats());
    }
    for (int s = 0; s < topology_->num_spine_links(); ++s) {
      totals.MergeFrom(topology_->spine_link(s)->congestion_stats());
    }
  }
  return totals;
}

internal::TransferProgress* Fabric::AcquireProgress() {
  if (progress_free_.empty()) {
    progress_pool_.push_back(std::make_unique<internal::TransferProgress>());
    progress_pool_.back()->fabric = this;
    return progress_pool_.back().get();
  }
  internal::TransferProgress* progress = progress_free_.back();
  progress_free_.pop_back();
  return progress;
}

void Fabric::RecycleProgress(internal::TransferProgress* progress) {
  progress->Reset();
  progress_free_.push_back(progress);
}

void Fabric::SetFaultInjector(sim::FaultInjector* injector) {
  fault_ = injector;
  if (injector == nullptr) return;
  for (auto& host : hosts_) {
    for (const sim::DownWindow& w : injector->down_windows(host->id())) {
      host->egress().AddDownWindow(w.from_ns, w.until_ns);
      host->ingress().AddDownWindow(w.from_ns, w.until_ns);
      sim::TraceSpan("fault", StrCat("host", host->id(), " link down"), w.from_ns,
                     w.until_ns);
    }
  }
  for (const auto& [host_id, at_ns] : injector->crash_times()) {
    sim::TraceInstant("fault", StrCat("host", host_id, " crash"), at_ns);
  }
}

void Fabric::Transfer(int src, int dst, uint64_t bytes, Plane plane,
                      int64_t initiation_delay_ns,
                      std::function<void(uint64_t, uint64_t)> on_chunk,
                      std::function<void(Status)> on_complete,
                      std::function<void(int64_t)> on_ecn) {
  Host* src_host = host(src);
  Host* dst_host = host(dst);

  const bool loopback = (src == dst);
  double bandwidth;
  int64_t latency;
  if (loopback) {
    bandwidth = cost_.loopback_bandwidth_bytes_per_sec;
    latency = cost_.loopback_latency_ns;
  } else if (plane == Plane::kRdma) {
    bandwidth = cost_.rdma_bandwidth_bytes_per_sec;
    latency = cost_.rdma_one_way_latency_ns;
  } else {
    bandwidth = cost_.tcp_bandwidth_bytes_per_sec;
    latency = cost_.tcp_one_way_latency_ns;
  }

  // With a hierarchical topology, inter-rack transfers cross extra switches
  // (latency) and contend for the shared rack-uplink/spine/rack-downlink
  // serialization points (reserved per chunk below). Intra-rack and loopback
  // traffic, and every transfer on a flat fabric, take the original path.
  Topology::Hop hops[3];
  int num_hops = 0;
  double shared_bandwidth = bandwidth;
  if (topology_ != nullptr && !loopback) {
    latency += topology_->ExtraLatencyNs(src, dst);
    num_hops = topology_->PathHops(src, dst, hops);
    shared_bandwidth = bandwidth * topology_->shared_bandwidth_scale();
  }

  TransferStats& stats = (plane == Plane::kRdma) ? rdma_stats_ : tcp_stats_;
  ++stats.transfers;
  stats.bytes += bytes;

  const int64_t now = simulator_->Now() + initiation_delay_ns;

  // Shadow id for the checker's per-transfer ascending-address tracking
  // (0 when no checker is installed; every downstream hook no-ops on 0).
  const uint64_t check_id = check::OnTransferStarted(src, dst, bytes, simulator_->Now());

  if (fault_ != nullptr) {
    // Fail-stop hosts: the transfer is refused after one propagation latency
    // (the initiator learns nothing arrived), never silently swallowed, so
    // callers waiting on completion always make progress.
    const int dead = fault_->FirstDeadHost(src, dst, now);
    if (dead >= 0) {
      sim::TraceInstant("fault", StrCat("transfer refused: host", dead, " crashed"), now);
      check::OnTransferFinished(check_id);
      if (on_complete) {
        simulator_->ScheduleAt(
            now + latency, [dead, complete_cb = std::move(on_complete)]() {
              complete_cb(
                  Unavailable(StrCat("host", dead, " crashed")).WithFailedHost(dead));
            });
      }
      return;
    }
    const int64_t spike_ns = fault_->DrawSpikeNs(src, dst);
    if (spike_ns > 0) {
      sim::TraceInstant("fault",
                        StrCat("latency spike +", spike_ns, "ns host", src, "->host", dst),
                        now);
      latency += spike_ns;
    }
    // Straggler-knob link jitter: a small per-transfer latency wobble, drawn
    // only when the knob is configured so existing seeds keep their exact
    // random-draw order (and thus byte-identical traces).
    latency += fault_->DrawJitterNs(src, dst);
  }

  // Delivery granularity: MTU-sized for small transfers (fine-grained partial
  // visibility for the flag-byte protocol), scaled up for very large ones so
  // one transfer costs a bounded number of simulation events. Ascending-order
  // delivery semantics are identical either way.
  constexpr uint64_t kMaxChunksPerTransfer = 64;
  const uint64_t chunk_size =
      std::max<uint64_t>(cost_.rdma_mtu_bytes, bytes / kMaxChunksPerTransfer);

  // Sub-MTU messages (flag bytes, metadata blocks, RPC control frames) do not
  // serialize behind queued bulk transfers: a real NIC interleaves packets of
  // different QPs, so a one-byte write never waits for hundreds of megabytes
  // of unrelated traffic to drain. They pay their own wire time + latency —
  // but still queue behind link down windows.
  if (bytes <= cost_.rdma_mtu_bytes) {
    const int64_t wire_ns = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(std::max<uint64_t>(bytes, 1)) /
                                bandwidth * 1e9));
    int64_t start = now;
    if (!loopback) {
      start = std::max(src_host->egress().AvailableAt(start),
                       dst_host->ingress().AvailableAt(start));
    }
    const bool dropped = fault_ != nullptr && fault_->ShouldDropSegment(src, dst);
    const int64_t deliver_at = start + wire_ns + latency;
    if (dropped) {
      sim::TraceInstant("fault", StrCat("drop host", src, "->host", dst, " offset=0"),
                        deliver_at);
    }
    auto chunk_cb = std::move(on_chunk);
    auto complete_cb = std::move(on_complete);
    simulator_->ScheduleAt(
        deliver_at, [bytes, src, dst, dropped, check_id, deliver_at,
                     chunk_cb = std::move(chunk_cb), complete_cb = std::move(complete_cb)]() {
          if (dropped) {
            check::OnTransferFinished(check_id);
            if (complete_cb) {
              complete_cb(Unavailable(
                  StrCat("segment lost on host", src, "->host", dst, " at offset 0")));
            }
            return;
          }
          if (bytes > 0) check::OnTransferSegment(check_id, 0, bytes, deliver_at);
          if (chunk_cb && bytes > 0) chunk_cb(0, bytes);
          check::OnTransferFinished(check_id);
          if (complete_cb) complete_cb(OkStatus());
        });
    return;
  }

  const uint64_t total = std::max<uint64_t>(bytes, 1);

  internal::TransferProgress* progress = AcquireProgress();
  progress->total_bytes = bytes;
  progress->check_id = check_id;
  progress->src = src;
  progress->dst = dst;
  progress->on_chunk = std::move(on_chunk);
  progress->on_complete = std::move(on_complete);
  progress->on_ecn = std::move(on_ecn);
  progress->segments.reserve(static_cast<size_t>((total + chunk_size - 1) / chunk_size));

  uint64_t offset = 0;
  int64_t cursor = now;  // Egress reservations are sequential per transfer.
  while (offset < total) {
    const uint64_t len = std::min<uint64_t>(chunk_size, total - offset);
    const int64_t wire_ns =
        std::max<int64_t>(1, static_cast<int64_t>(static_cast<double>(len) / bandwidth * 1e9));

    internal::TransferProgress::Segment seg;
    seg.offset = offset;
    seg.length = (bytes == 0) ? 0 : len;

    if (loopback) {
      const int64_t done = src_host->loopback().Reserve(cursor, wire_ns);
      cursor = done;
      seg.deliver_at = done + latency;
    } else {
      // With a disabled CongestionConfig, Admit is exactly Reserve: no marks,
      // no drops, identical slot arithmetic. With queues bounded, any point
      // on the path — egress port, shared rack/spine hop, ingress port — may
      // mark the segment CE or (drop policy) tail-drop it; a drop truncates
      // the transfer like a fault-injected loss and the RC transport's
      // retransmission pays the recovery cost. This is the incast mechanism.
      const Link::Admission eg = src_host->egress().Admit(cursor, wire_ns);
      seg.ecn = eg.ecn;
      if (eg.dropped) {
        seg.dropped = true;
        // Nothing was transmitted; the sender notices when the bytes should
        // have landed.
        seg.deliver_at = eg.done_ns + wire_ns + latency;
      } else {
        cursor = eg.done_ns;
        int64_t path_done = eg.done_ns;
        if (num_hops > 0) {
          // Each chunk crosses the shared rack-uplink, spine, and
          // rack-downlink serialization points after leaving the host port;
          // an oversubscribed link stretches the chunk's wire time by the
          // bandwidth ratio, and queuing on any hop delays everything
          // downstream of it.
          const int64_t hop_wire_ns = std::max<int64_t>(
              1, static_cast<int64_t>(static_cast<double>(len) / shared_bandwidth * 1e9));
          for (int h = 0; h < num_hops && !seg.dropped; ++h) {
            const Link::Admission hop = hops[h].link->Admit(path_done, hop_wire_ns);
            seg.ecn |= hop.ecn;
            if (hop.dropped) {
              seg.dropped = true;
              seg.deliver_at = hop.done_ns + hop_wire_ns + latency;
            } else {
              path_done = hop.done_ns;
            }
          }
        }
        if (!seg.dropped) {
          // Ingress occupancy mirrors the sending port: the receiving port is
          // busy for the chunk's own wire time, ending at delivery. On an
          // unbounded link the reservation is pure accounting and delivery
          // stays at path_done + latency (the admitted slot ends exactly
          // there when the queue is empty). With a bounded queue the segment
          // genuinely waits its turn — many senders into one port drain
          // serially, which is the incast bottleneck itself.
          const Link::Admission in =
              dst_host->ingress().Admit(path_done - wire_ns + latency, wire_ns);
          seg.ecn |= in.ecn;
          seg.dropped = in.dropped;
          seg.deliver_at = seg.dropped ? in.done_ns + wire_ns
                          : dst_host->ingress().congested() ? in.done_ns
                                                            : path_done + latency;
        }
      }
      if (seg.dropped) {
        sim::TraceInstant(
            "congestion",
            StrCat("queue drop host", src, "->host", dst, " offset=", seg.offset),
            seg.deliver_at);
      }
    }

    if (!seg.dropped && fault_ != nullptr && fault_->ShouldDropSegment(src, dst)) {
      seg.dropped = true;
      sim::TraceInstant("fault",
                        StrCat("drop host", src, "->host", dst, " offset=", seg.offset),
                        seg.deliver_at);
    }
    if (seg.dropped) seg.length = 0;
    progress->segments.push_back(seg);
    // No segment is delivered past a drop (Deliver turns it into the failed
    // completion at its delivery time).
    if (seg.dropped) break;
    offset += len;
  }

  for (uint32_t i = 0; i < progress->segments.size(); ++i) {
    simulator_->ScheduleAt(progress->segments[i].deliver_at,
                           [progress, i]() { progress->Deliver(i); });
  }
}

}  // namespace net
}  // namespace rdmadl
