// Congestion model of the simulated RoCE fabric (ISSUE 8).
//
// The pre-congestion fabric serializes transfers on links but never pushes
// back: a link's queue is unbounded, so a 256-into-1 incast reports a clean
// mean and hides the pathology a real PFC/ECN fabric would produce. This
// header is the one knob bundle that turns congestion on:
//
//   * every host port and shared rack/spine link gets a bounded egress queue
//     (tracked in wire-time units; capacity/threshold below are bytes and
//     converted per link bandwidth);
//   * occupancy above |ecn_threshold_bytes| marks the segment ECN (CE), which
//     the receiving NIC turns into a CNP back to the sending queue pair;
//   * occupancy above |queue_capacity_bytes| either drops the segment
//     deterministically (RoCE without PFC: the RC transport retransmits with
//     backoff — the incast-collapse mechanism) or, with |pause_on_overflow|,
//     opens a PFC-style pause window on the link (lossless but
//     throughput-degrading; pause windows feed the same down-window machinery
//     fault injection uses, and coalesce with it);
//   * |dcqcn| enables the per-QP DCQCN reaction point in rdma::QueuePair:
//     multiplicative rate decrease on CNP, timer + byte-counter staged
//     recovery back toward line rate.
//
// The all-zero default disables every mechanism: a fabric constructed with a
// default CongestionConfig behaves — to the byte — exactly as before this
// subsystem existed.
#ifndef RDMADL_SRC_NET_CONGESTION_H_
#define RDMADL_SRC_NET_CONGESTION_H_

#include <cstdint>

namespace rdmadl {
namespace net {

struct CongestionConfig {
  // ---- Switch/port queues -------------------------------------------------
  // Egress queue capacity of one host-port's worth of bandwidth, in bytes.
  // 0 (the default) means unbounded: no drops, no pauses, byte-identical to
  // the pre-congestion fabric. Shared rack/spine links scale this by their
  // bandwidth ratio so capacity is expressed in *time*, as switch buffers
  // effectively are.
  uint64_t queue_capacity_bytes = 0;
  // ECN marking threshold (RED-style, at enqueue), same unit and scaling as
  // the capacity. 0 disables marking.
  uint64_t ecn_threshold_bytes = 0;
  // Overflow policy: false = deterministic tail drop (RoCE without PFC; the
  // RC transport's go-back-N retransmission pays for it), true = PFC-style
  // pause (lossless: the link opens a |pause_ns| dead window instead — head
  // of line blocking and wasted slots, but nothing is lost).
  bool pause_on_overflow = false;
  int64_t pause_ns = 5'000;

  // ---- DCQCN reaction point (per queue pair) ------------------------------
  // Enables the rate limiter in rdma::QueuePair. Disabled, ECN marks are
  // still counted but nobody reacts ("CC off": the configuration that
  // reproduces incast collapse).
  bool dcqcn = false;
  // Rate floor: DCQCN never throttles a QP below this (1% of line rate).
  double dcqcn_min_rate_bytes_per_sec = 0.12e9;
  // EWMA gain g of the alpha (congestion-extent) estimator:
  // alpha <- (1-g) alpha + g on CNP, alpha <- (1-g) alpha per quiet period.
  double dcqcn_alpha_g = 1.0 / 16.0;
  // NP-side CNP moderation: at most one CNP per QP per this interval.
  int64_t dcqcn_cnp_interval_ns = 50'000;
  // Rate-increase stage period (the RP timer) and byte counter: whichever
  // accumulates more stages since the last decrease drives recovery.
  int64_t dcqcn_recovery_period_ns = 55'000;
  uint64_t dcqcn_recovery_bytes = 10ull << 20;
  // Stages 1..N halve toward the pre-decrease target (fast recovery); later
  // stages additionally grow the target by rate_ai (additive increase).
  int dcqcn_fast_recovery_stages = 5;
  double dcqcn_rate_ai_bytes_per_sec = 40.0e6;

  // True when any queue mechanism is active (marking or bounded occupancy).
  bool enabled() const { return queue_capacity_bytes > 0 || ecn_threshold_bytes > 0; }
};

// Aggregated congestion counters (per link, summed by Fabric).
struct CongestionStats {
  uint64_t ecn_marks = 0;        // Segments marked CE at enqueue.
  uint64_t overflow_drops = 0;   // Segments tail-dropped by a full queue.
  uint64_t pause_windows = 0;    // PFC pause windows opened.
  int64_t paused_ns_total = 0;   // Total dead time from pause windows.
  int64_t peak_backlog_ns = 0;   // Deepest queue (in wire time) ever seen.

  void MergeFrom(const CongestionStats& o) {
    ecn_marks += o.ecn_marks;
    overflow_drops += o.overflow_drops;
    pause_windows += o.pause_windows;
    paused_ns_total += o.paused_ns_total;
    if (o.peak_backlog_ns > peak_backlog_ns) peak_backlog_ns = o.peak_backlog_ns;
  }
};

}  // namespace net
}  // namespace rdmadl

#endif  // RDMADL_SRC_NET_CONGESTION_H_
