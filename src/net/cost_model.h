// CostModel: every calibration constant of the simulated cluster in one place.
//
// The defaults model the paper's testbed (EuroSys '19, §5): dual Xeon
// E5-2690v4 servers with 100 Gbps Mellanox MT27700 InfiniBand NICs and Tesla
// P100 GPUs. The constants were tuned so the micro-benchmark (Figure 8) and
// the end-to-end benchmarks (Figure 9/11/12, Table 3) reproduce the paper's
// *ratios*; see EXPERIMENTS.md for measured-vs-paper numbers.
#ifndef RDMADL_SRC_NET_COST_MODEL_H_
#define RDMADL_SRC_NET_COST_MODEL_H_

#include <cstdint>

namespace rdmadl {
namespace net {

struct CostModel {
  // ---------------------------------------------------------------- RDMA NIC
  // 100 Gbps line rate, ~12 GB/s effective payload bandwidth after headers.
  double rdma_bandwidth_bytes_per_sec = 12.0e9;
  // One-way wire+switch latency; round-trip ~2 us as reported for MT27700.
  int64_t rdma_one_way_latency_ns = 900;
  // CPU cost to post a verb (doorbell, WQE build) plus NIC WQE fetch.
  int64_t rdma_post_overhead_ns = 250;
  // NIC-side processing per work request before bytes hit the wire.
  int64_t rdma_nic_processing_ns = 350;
  // Completion-queue entry generation + poller pickup.
  int64_t cq_poll_overhead_ns = 150;
  // Delivery granularity of one-sided operations: bytes land at the target in
  // ascending address order, one segment at a time (per §3.2, matching the
  // ordering guarantee of Mellanox NICs that the flag-byte protocol relies on).
  uint64_t rdma_mtu_bytes = 4096;

  // Per-QP WQE-engine throughput ceiling: a single queue pair's processing
  // pipeline (WQE fetch, DMA scheduling, segmentation) tops out below link
  // rate on large transfers, which is what makes multi-QP lane striping pay
  // off on real NICs. Modeled as an extra initiation delay of length/rate
  // before the wire transfer starts; 0 disables the ceiling (single QP
  // reaches full link rate, the pre-striping behavior).
  double rdma_qp_engine_bytes_per_sec = 0.0;

  // IB RC transport reliability: on a lost segment the QP retransmits the
  // work request with exponential backoff (base << attempt, capped at
  // rdma_transport_retry_max_ns so a raised retry budget cannot overflow the
  // shift or stall a run for virtual hours), up to the retry count (the
  // 3-bit retry_cnt field caps at 7); exhaustion moves the QP to the error
  // state and flushes queued work requests. The default cap equals
  // base << 7, so the stock 7-attempt schedule is unchanged.
  int rdma_transport_retry_count = 7;
  int64_t rdma_transport_retry_base_ns = 20'000;
  int64_t rdma_transport_retry_max_ns = 2'560'000;

  // Memory-region registration (§3.4): pinning pages via the kernel.
  int64_t mr_register_base_ns = 40'000;     // Syscall + driver entry.
  int64_t mr_register_per_page_ns = 220;    // Per 4 KB page pinned.
  uint64_t mr_page_bytes = 4096;
  // Hardware limit on simultaneously registered regions (models the
  // "unexpected errors due to hardware resource limit" of §3.4).
  int max_memory_regions = 2048;
  // Hardware limit on live queue pairs per NIC. Real NICs degrade sharply
  // once the QP context cache misses (RDMAvisor's motivating observation);
  // here it is a hard cap so the QP pool's evict-and-reconnect machinery is
  // actually exercised at scale. Sized so a 256-host parameter-server job
  // fits (2 RPC QPs per peer edge plus the pooled data lanes).
  int max_queue_pairs = 2048;

  // ----------------------------------------------------------------- TCP/IP
  // Effective gRPC-over-TCP goodput for large tensors (IPoIB-era TF 1.x
  // numbers: single stream + kernel stack + gRPC framing land in the low
  // Gbps; this is what makes the paper's 25-61x gaps possible).
  double tcp_bandwidth_bytes_per_sec = 0.30e9;
  // Kernel + interrupt one-way latency.
  int64_t tcp_one_way_latency_ns = 18'000;
  // Per-message socket send/recv software cost on each side.
  int64_t tcp_per_message_overhead_ns = 9'000;

  // -------------------------------------------------------------------- CPU
  // Streaming memcpy bandwidth (RPC-side copies, which pipeline across
  // buffers).
  double memcpy_bytes_per_sec = 20.0e9;
  // The RdmaSend staging copy (RDMA.cp path, §3.4): a single cold
  // tensor-sized memcpy on the op's own thread.
  double staging_memcpy_bytes_per_sec = 11.0e9;
  // Element-wise reduction (gradient summation) throughput: a streaming
  // read-read-write float-add loop, roughly memcpy-bound on one core.
  double reduce_bytes_per_sec = 20.0e9;
  // Protobuf-style serialization / deserialization throughput for tensor
  // payloads (gRPC baselines only; the zero-copy path never serializes).
  double serialize_bytes_per_sec = 8.5e9;
  double deserialize_bytes_per_sec = 8.5e9;
  // Effective fixed software cost of one RPC tensor transfer on each
  // endpoint: gRPC dispatch plus TF's per-tensor rendezvous bookkeeping
  // (request/meta round trips in the r1.x RDMA path). Occupies the comm
  // thread handling the call.
  int64_t rpc_dispatch_overhead_ns = 110'000;
  // Fixed in-library receive ring buffer per RPC channel (§2.2): messages
  // larger than this are fragmented at the sender (extra copy) and
  // re-assembled at the receiver (extra copy).
  uint64_t rpc_ring_buffer_bytes = 4 * 1024 * 1024;
  // TF r1.2's gRPC+RDMA path crashed on messages above 1 GB; reproduced as a
  // structured error (see Figure 8's missing point).
  uint64_t rpc_rdma_max_message_bytes = 1ull << 30;

  // The device library's vanilla send/recv RPC (§3.1) used for address
  // distribution: per-call handler dispatch cost on each side. Much lighter
  // than the gRPC baseline because it does no serialization framework work.
  int64_t mini_rpc_dispatch_ns = 1'500;

  // Heap allocation costs.
  int64_t malloc_overhead_ns = 400;             // Normal allocator.
  int64_t arena_alloc_overhead_ns = 120;        // Pre-registered RDMA arena.

  // Polling-async scheduling (§4): cost of one flag check, and the idle retry
  // interval when the ready queue has nothing else to run. On real hardware a
  // poller simply spins on an idle core; in the discrete-event simulation
  // each retry is an event, so the interval backs off exponentially up to the
  // max while nothing arrives (resetting on any progress). The max bounds the
  // added latency at a value negligible against multi-ms tensor transfers.
  int64_t flag_poll_cost_ns = 80;
  int64_t idle_poll_interval_ns = 1'000;
  int64_t idle_poll_max_interval_ns = 16'000;

  // ------------------------------------------------------------------- PCIe
  // Host<->GPU staging copies (used when GPUDirect is off, §3.5 / Table 3).
  double pcie_bandwidth_bytes_per_sec = 10.0e9;
  int64_t pcie_latency_ns = 1'300;
  // GPUDirect reads run at a slightly lower rate than host-memory RDMA
  // (P100-era GDR read bandwidth penalty).
  double gdr_bandwidth_bytes_per_sec = 9.5e9;

  // --------------------------------------------------------------- Loopback
  // Same-host transfers (worker <-> PS colocated on one machine) short-cut
  // through the NIC's loopback path.
  double loopback_bandwidth_bytes_per_sec = 16.0e9;
  int64_t loopback_latency_ns = 400;
};

// RoCE (RDMA over Converged Ethernet) preset: the paper notes its mechanism,
// unlike TF's IB-specific gRPC+RDMA path, also runs over RoCE NICs. Same
// verbs semantics; slightly higher latency and lower effective payload rate
// than native InfiniBand.
inline CostModel RoceCostModel() {
  CostModel cost;
  cost.rdma_bandwidth_bytes_per_sec = 11.0e9;  // 100 GbE minus Ethernet framing.
  cost.rdma_one_way_latency_ns = 1'400;        // PFC/ECN-managed Ethernet switch.
  cost.rdma_nic_processing_ns = 450;
  return cost;
}

}  // namespace net
}  // namespace rdmadl

#endif  // RDMADL_SRC_NET_COST_MODEL_H_
