// NetReduce-style in-network reduction stage.
//
// When TopologyConfig::switch_reduce is set on a hierarchical fabric, the
// ToR switches carry streaming reduction engines and the spine carries an
// aggregation engine. One AllReduceChunk call models a single aggregation
// window flowing through the fabric:
//
//   host egress --> rack uplink --> ToR engine (folds the rack's streams)
//     --> rack uplink --> spine engine (folds the rack partials)
//     --> rack downlink --> host ingress
//
// The stage is a pure *timing* model: it decides WHEN each phase completes
// and invokes caller-supplied callbacks at those virtual times; the caller
// (the collective layer) performs the arithmetic on its own buffers inside
// the callbacks. This keeps the fabric data-agnostic — exactly like
// Fabric::Transfer — while the shared links (rack uplinks/downlinks) remain
// ordinary net::Link serialization points, so in-network traffic contends
// with host-side transfers crossing the same rack.
//
// The switch fabric is modeled as a lossless credit-based domain (real
// in-network reduction deployments run on PFC-enabled lossless fabrics):
// segment drops and latency spikes from the fault injector do not apply, but
// fail-stop host crashes do — a window with a dead contributor fails with
// kUnavailable carrying the dead host, and link down windows still delay
// reservations on the shared links.
#ifndef RDMADL_SRC_NET_SWITCH_REDUCE_H_
#define RDMADL_SRC_NET_SWITCH_REDUCE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/status.h"

namespace rdmadl {
namespace net {

class Fabric;
class Topology;

class SwitchReduceStage {
 public:
  // |fabric| and |topology| must outlive the stage; both are owned by the
  // Fabric that constructs it.
  SwitchReduceStage(Fabric* fabric, Topology* topology);

  // Runs one aggregation window of |bytes| contributed by every host in
  // |hosts| (each contributes the same |bytes|; the window must fit the
  // switch SRAM, i.e. bytes <= TopologyConfig::switch_reduce_window_bytes).
  //
  // Callbacks fire in virtual-time order:
  //   rack_partial(rack_ordinal) — the ToR engine of the rack_ordinal-th
  //       participating rack (ascending rack id) finished folding its
  //       members' streams. Fired once per participating rack.
  //   aggregated()               — the spine engine finished folding the rack
  //       partials (fires at the last rack_partial time when only one rack
  //       participates: there is nothing to aggregate across).
  //   deliver(host)              — the reduced window landed in |host|'s
  //       memory. Fired once per host, each as its downlink+ingress frees.
  //   complete(status)           — all deliveries done (OkStatus), or a
  //       contributor was dead at issue time (kUnavailable with the failed
  //       host attached; no other callback fires in that case).
  //
  // Deterministic: consumes no randomness, only Link::Reserve bookkeeping
  // plus per-engine serialization state held by the stage.
  void AllReduceChunk(const std::vector<int>& hosts, uint64_t bytes,
                      std::function<void(int rack_ordinal)> rack_partial,
                      std::function<void()> aggregated,
                      std::function<void(int host)> deliver,
                      std::function<void(Status)> complete);

  // Serialized streaming cost of folding |bytes| through one engine.
  int64_t EngineAluNs(uint64_t bytes) const;

  uint64_t windows() const { return windows_; }

 private:
  Fabric* fabric_;      // Not owned.
  Topology* topology_;  // Not owned.
  // Next-free times of the per-ToR reduction engines and the spine
  // aggregation engine: each is a serialization point exactly like a Link,
  // but without down windows (engines sit inside the switch ASIC).
  std::vector<int64_t> rack_engine_free_;
  int64_t spine_engine_free_ = 0;
  uint64_t windows_ = 0;
};

}  // namespace net
}  // namespace rdmadl

#endif  // RDMADL_SRC_NET_SWITCH_REDUCE_H_
