// The paper's zero-copy RDMA tensor-transfer mechanism (§3).
//
// Per cross-device edge, one of two protocols:
//
//   Static placement (§3.2) — when the analyzer proved the tensor shape
//   static: the receiver preallocates the tensor in its RDMA arena once and
//   distributes its address over the device library's vanilla RPC. Every
//   step, the sender one-sided-writes the payload and then a one-byte
//   completion flag on the same QP (FIFO ordering + the NIC's ascending-
//   address delivery guarantee make the flag the last byte to land). The
//   receiver's RdmaRecv op polls the flag under the executor's polling-async
//   scheduling, clears it, and reactivates the dependents. In real-memory
//   mode the flag lives at the tail of the receive buffer exactly as in the
//   paper; in virtual-memory benchmark mode it lives in the (always-real)
//   metadata arena so polling still reads actual bytes.
//
//   Dynamic allocation (§3.3) — when the shape varies per mini-batch: the
//   tensor rank is still fixed, so a fixed-size metadata block (dims, dtype,
//   source address/rkey, tail flag) is preallocated at the receiver and its
//   address distributed. The sender writes the metadata; the receiver polls
//   its flag, allocates the tensor storage from its RDMA arena, and pulls the
//   payload with a one-sided RDMA read.
//
// Graph-analyzer integration (§3.4):
//   * producers that feed _Send nodes are allocated from the RDMA arena from
//     step 0 (static analysis);
//   * during step 0 a TracingAllocator maps buffer address -> allocating
//     node; each transferred buffer promotes its true allocation site into
//     set S (catching Identity/Reshape/ApplySgd pass-throughs), and from
//     step 1 those sites allocate from the arena too;
//   * with graph analysis off (options.graph_analysis = false) every send
//     pays a staging copy into the arena — the paper's RDMA.cp baseline.
//
// GPUDirect (§3.5): when the sending process keeps tensors in GPU memory,
// non-GDR sends stage through host memory over PCIe (and receives stage
// back); with GDR the GPU arena is NIC-registered and every GPU-side edge
// uses the dynamic protocol with metadata polled in host memory, as the
// paper prescribes.
#ifndef RDMADL_SRC_COMM_ZEROCOPY_MECHANISM_H_
#define RDMADL_SRC_COMM_ZEROCOPY_MECHANISM_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <set>
#include <utility>
#include <vector>

#include "src/analyzer/allocation_tracer.h"
#include "src/comm/transfer_engine.h"
#include "src/runtime/session.h"
#include "src/runtime/transfer.h"

namespace rdmadl {
namespace comm {

struct ZeroCopyOptions {
  // §3.4 analysis on; turning it off yields the RDMA.cp baseline (sender-side
  // staging copy on every transfer).
  bool graph_analysis = true;
  // Force the §3.3 dynamic protocol even for statically known shapes
  // (ablation: measures the metadata + read overhead).
  bool force_dynamic = false;
  // ---- Per-edge transport degradation ladder (the paper's §3.3 fallback to
  // the RPC mechanism, made dynamic). Repeated zero-copy failures demote an
  // edge to an RPC-style staged transfer over the TCP plane; arena or
  // MR-registration exhaustion demotes immediately (the send that hit the
  // wall is itself served degraded). After |ladder_probation_after| clean
  // degraded sends the next send re-probes zero-copy and promotes back on
  // success. Ladder state deliberately survives ResetTransientState: the
  // whole point is remembering that an edge is unhealthy across retries.
  bool enable_ladder = true;
  int ladder_demote_after = 2;     // Consecutive zero-copy failures to demote.
  int ladder_probation_after = 3;  // Clean degraded sends before re-probing.
  // ---- Transfer-engine fast path (ISSUE 5): per-sender lane striping for
  // large writes and doorbell coalescing for small ones. Both default on;
  // disable individual paths here for ablations.
  TransferEngineOptions engine;
  // MR registration cache: unregistered send buffers are registered through
  // an extent-based LRU cache instead of being staged-copied into the arena,
  // so repeated dynamic-protocol sends of the same buffer pay the §3.4
  // pinning cost once. Off by default: staging is the paper's baseline
  // behavior (RDMA.cp) and the cache changes which path such sends take.
  bool use_mr_cache = false;
};

struct ZeroCopyStats {
  int64_t static_transfers = 0;
  int64_t dynamic_transfers = 0;
  int64_t zero_copy_sends = 0;
  int64_t staged_sends = 0;
  uint64_t staged_bytes = 0;
  int64_t pcie_copies = 0;
  uint64_t pcie_bytes = 0;
  // Degradation ladder.
  int64_t ladder_demotions = 0;
  int64_t ladder_promotions = 0;
  int64_t degraded_sends = 0;
  uint64_t degraded_bytes = 0;
  int64_t probation_probes = 0;
  // Transfer engine.
  int64_t striped_sends = 0;     // Sends split across QP lanes.
  int64_t coalesced_sends = 0;   // Sends merged into doorbell batches.
  int64_t mr_cache_sends = 0;    // Sends served by a cache-registered MR.
  int64_t mr_cache_hits = 0;
  int64_t mr_cache_misses = 0;
  int64_t mr_cache_evictions = 0;
};

// Which transport a degradable edge is currently on.
enum class EdgePath {
  kZeroCopy,   // Healthy: one-sided RDMA (static or dynamic protocol).
  kDegraded,   // Demoted: RPC-style staged transfer over the TCP plane.
  kProbation,  // Re-probing zero-copy after a span of clean degraded sends.
};

class ZeroCopyRdmaMechanism : public runtime::TransferMechanism {
 public:
  ZeroCopyRdmaMechanism(runtime::Cluster* cluster, ZeroCopyOptions options);
  ~ZeroCopyRdmaMechanism() override;

  std::string name() const override {
    return options_.graph_analysis ? "RDMA.zerocp" : "RDMA.cp";
  }
  RecvMode recv_mode() const override { return RecvMode::kPolling; }

  void Setup(const std::vector<graph::TransferEdge>& edges,
             std::function<void(Status)> done) override;
  void BeginStep(int64_t step) override;

  int64_t Send(const graph::TransferEdge& edge, const tensor::Tensor& tensor,
               std::function<void(Status)> on_sent) override;
  bool TryRecv(const graph::TransferEdge& edge, tensor::Tensor* out) override;

  tensor::Allocator* AllocatorForNode(runtime::HostRuntime* host, const graph::Node& node,
                                      tensor::Allocator* default_allocator) override;
  void OnNodeBegin(runtime::HostRuntime* host, const graph::Node& node) override;
  void OnAllocation(runtime::HostRuntime* host, const graph::Node& node, const void* ptr,
                    size_t bytes) override;

  const ZeroCopyStats& stats() const { return stats_; }

  // Current ladder position of |edge_key| (tests and diagnostics).
  EdgePath edge_path(const std::string& edge_key) const;

  // Fault recovery: discards every edge's in-flight receive state (completion
  // flags, dynamic metadata blocks, partially received tensors, sender
  // holds). Call after a failed step has been aborted and the simulator has
  // quiesced, before retrying the step — a half-delivered transfer must not
  // be mistaken for a fresh arrival.
  void ResetTransientState();

 private:
  enum class Protocol { kStatic, kDynamic };
  enum class RecvPhase { kWaiting, kTransferring, kStaging, kReady };

  struct EdgeState;

  Status SetupEdge(EdgeState* state);
  // Static protocol: payload write followed by the flag-byte write, on the
  // same QP. |src_ptr| must lie inside a registered arena covered by |lkey|.
  void PostWrites(EdgeState* state, const void* src_ptr, uint32_t lkey, uint64_t bytes,
                  std::function<void(Status)> on_sent);
  // Dynamic protocol: metadata write with the tail flag as its last byte.
  // |data_rkey| overrides the rkey advertised for the payload (cache-
  // registered MRs live outside the arenas); 0 derives it from ArenaFor.
  void PostMetadataWrite(EdgeState* state, const void* data_ptr, uint32_t lkey,
                         uint64_t bytes, const tensor::Tensor& tensor,
                         std::function<void(Status)> on_sent, uint32_t data_rkey = 0);
  void StartDynamicRead(EdgeState* state);
  // The 1-byte "flag = 1" source buffer in |host|'s meta arena.
  uint8_t* FlagSource(runtime::HostRuntime* host);

  // ---- Degradation ladder ----
  // Serves one send over the staged TCP path (serialize -> TCP stream ->
  // deserialize + staging copy, then the receiver-side arrival is surfaced
  // through the same TryRecv states as an RDMA arrival). Returns the
  // sender-side blocking time in ns.
  int64_t SendDegraded(EdgeState* state, const tensor::Tensor& tensor,
                       std::function<void(Status)> on_sent);
  void LadderDemote(EdgeState* state, const char* why);
  void LadderPromote(EdgeState* state);
  // Wraps a zero-copy on_sent callback with ladder bookkeeping (success
  // clears the failure streak / promotes a probation edge; failure counts
  // toward demotion and tags the status with the edge key).
  std::function<void(Status)> WrapLadder(EdgeState* state,
                                         std::function<void(Status)> on_sent);

  // Host-side per-device analyzer state.
  struct DeviceAnalysis {
    analyzer::AllocationSiteTracer tracer;
    std::set<std::string> static_producers;
  };
  DeviceAnalysis& analysis(runtime::HostRuntime* host) { return analysis_[host]; }

  // Per-sending-device transfer engine, created lazily. Kept in creation
  // order (not keyed by pointer value) so iteration is run-to-run stable.
  TransferEngine* engine_for(runtime::HostRuntime* src);

  runtime::Cluster* cluster_;
  ZeroCopyOptions options_;
  ZeroCopyStats stats_;
  std::unordered_map<std::string, std::unique_ptr<EdgeState>> edges_;
  std::map<runtime::HostRuntime*, DeviceAnalysis> analysis_;
  std::map<runtime::HostRuntime*, uint8_t*> flag_sources_;
  std::vector<std::pair<runtime::HostRuntime*, std::unique_ptr<TransferEngine>>> engines_;
  int64_t step_ = -1;
  bool tracing_step_ = false;
};

}  // namespace comm
}  // namespace rdmadl

#endif  // RDMADL_SRC_COMM_ZEROCOPY_MECHANISM_H_
