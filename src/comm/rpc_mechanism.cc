#include "src/comm/rpc_mechanism.h"

#include <algorithm>
#include <utility>

#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace comm {

using runtime::HostRuntime;
using tensor::Tensor;

RpcMechanism::RpcMechanism(runtime::Cluster* cluster, net::Plane plane)
    : cluster_(cluster), plane_(plane) {}

void RpcMechanism::Setup(const std::vector<graph::TransferEdge>& edges,
                         std::function<void(Status)> done) {
  for (const graph::TransferEdge& edge : edges) {
    mailboxes_[edge.key];  // Create empty mailbox.
  }
  // RPC needs no address distribution; connections are implicit.
  cluster_->simulator()->ScheduleAfter(0, [done = std::move(done)]() { done(OkStatus()); });
}

void RpcMechanism::BeginStep(int64_t step) {
  for (auto& [key, box] : mailboxes_) {
    if (box.has_tensor || box.waiter || !box.error.ok()) {
      // A failed/aborted step can strand a delivery, a waiter (whose step
      // epoch has since advanced, making it a no-op), or a parked error.
      // Clear them so the retried step starts from a clean rendezvous.
      LOG(WARNING) << "mailbox " << key << " carried state across a step boundary; clearing";
      box.has_tensor = false;
      box.tensor = tensor::Tensor();
      box.error = OkStatus();
      box.waiter = nullptr;
    }
  }
}

int64_t RpcMechanism::Send(const graph::TransferEdge& edge, const Tensor& tensor,
                           std::function<void(Status)> on_sent) {
  HostRuntime* src = cluster_->host(edge.src_device);
  HostRuntime* dst = cluster_->host(edge.dst_device);
  const net::CostModel& cost = src->cost();
  sim::Simulator* simulator = src->simulator();
  const uint64_t bytes = tensor.TotalBytes();

  // TF r1.2's gRPC+RDMA path crashed on messages above 1 GB (observed in the
  // paper's Figure 8 and the SE model of Figure 10); reproduce it faithfully.
  if (plane_ == net::Plane::kRdma && bytes >= cost.rpc_rdma_max_message_bytes) {
    simulator->ScheduleAfter(0, [on_sent = std::move(on_sent), bytes]() {
      on_sent(Internal(StrCat("gRPC.RDMA transport crashed: message of ", bytes,
                              " bytes exceeds the 1 GB limit")));
    });
    return cost.rpc_dispatch_overhead_ns;
  }

  ++stats_.messages;
  stats_.bytes += bytes;

  const uint64_t ring = cost.rpc_ring_buffer_bytes;
  const uint64_t num_fragments = std::max<uint64_t>(1, (bytes + ring - 1) / ring);
  const bool fragmented = num_fragments > 1;

  // Shared completion state across fragment closures. Each message pins one
  // comm-CPU lane per endpoint so its own work is ordered while different
  // messages use gRPC's other threads.
  struct Flight {
    uint64_t fragments_remaining;
    uint64_t total_bytes;
    graph::TransferEdge edge;
    Tensor tensor;  // Keeps the source buffer alive for the snapshot copy.
    std::function<void(Status)> on_sent;
    net::Link* src_cpu = nullptr;
    net::Link* dst_cpu = nullptr;
  };
  auto flight = std::make_shared<Flight>();
  flight->fragments_remaining = num_fragments;
  flight->total_bytes = bytes;
  flight->edge = edge;
  flight->tensor = tensor;
  flight->on_sent = std::move(on_sent);
  flight->src_cpu = src->comm_cpu();
  flight->dst_cpu = dst->comm_cpu_rx();

  const int64_t per_msg_delay = (plane_ == net::Plane::kTcp)
                                    ? cost.tcp_per_message_overhead_ns
                                    : cost.rdma_post_overhead_ns + cost.rdma_nic_processing_ns;

  // Sender pipeline: gRPC worker threads serialize fragment i (plus the
  // fragmentation copy when the message does not fit the ring buffer), then
  // hand it to the transport. Fragments of one message serialize back-to-back
  // on the sender's comm CPU.
  const int64_t start = simulator->Now() + cost.rpc_dispatch_overhead_ns;
  int64_t cpu_cursor = start;
  for (uint64_t i = 0; i < num_fragments; ++i) {
    const uint64_t frag_bytes = std::min<uint64_t>(ring, bytes - i * ring);
    ++stats_.fragments;
    int64_t prep_ns = static_cast<int64_t>(frag_bytes / cost.serialize_bytes_per_sec * 1e9);
    if (i == 0) prep_ns += cost.rpc_dispatch_overhead_ns;  // Per-call dispatch on this thread.
    if (fragmented) {
      prep_ns += static_cast<int64_t>(frag_bytes / cost.memcpy_bytes_per_sec * 1e9);
      stats_.copied_bytes += frag_bytes;
    }
    const int64_t ser_end = flight->src_cpu->Reserve(cpu_cursor, std::max<int64_t>(prep_ns, 1));
    cpu_cursor = ser_end;
    const bool last = (i == num_fragments - 1);

    simulator->ScheduleAt(ser_end, [this, src, dst, flight, frag_bytes, per_msg_delay, last]() {
      sim::Simulator* simulator = src->simulator();
      src->rdma_device()->nic()->fabric()->Transfer(
          src->endpoint().host_id, dst->endpoint().host_id, frag_bytes, plane_, per_msg_delay,
          nullptr, [this, src, dst, flight, frag_bytes, last, simulator](Status status) {
            if (!status.ok()) {
              // Lost fragment: gRPC surfaces a failed call; the whole message
              // is dead (no transparent fragment retry in this baseline).
              FailDeliver(flight->edge,
                          Status(status.code(),
                                 StrCat("RPC transfer failed: ", status.message())));
              return;
            }
            const net::CostModel& cost = src->cost();
            // Receiver: copy out of the in-library ring buffer into the user
            // buffer (§2.2), serialized on the receiver's comm CPU.
            const int64_t copy_ns = std::max<int64_t>(
                static_cast<int64_t>(frag_bytes / cost.memcpy_bytes_per_sec * 1e9), 1);
            stats_.copied_bytes += frag_bytes;
            const int64_t copy_end = flight->dst_cpu->Reserve(simulator->Now(), copy_ns);
            if (!last) return;
            // Whole message re-assembled: deserialize + dispatch, then hand
            // the tensor to the rendezvous.
            // Deserialization plus the per-call dispatch both occupy the
            // receive thread.
            const int64_t deser_ns =
                static_cast<int64_t>(flight->total_bytes /
                                     cost.deserialize_bytes_per_sec * 1e9) +
                cost.rpc_dispatch_overhead_ns;
            const int64_t deser_end =
                flight->dst_cpu->Reserve(copy_end, std::max<int64_t>(deser_ns, 1));
            simulator->ScheduleAt(deser_end, [this, dst, flight]() {
                  Tensor out(dst->default_allocator(), flight->tensor.dtype(),
                             flight->tensor.shape());
                  if (dst->real_memory()) {
                    std::memcpy(out.raw_data(), flight->tensor.raw_data(),
                                flight->tensor.TotalBytes());
                  }
                  Deliver(flight->edge, std::move(out));
                });
          });
    });
  }

  // gRPC reports the send complete once the last fragment is handed to the
  // transport.
  simulator->ScheduleAt(cpu_cursor, [flight]() {
    auto cb = std::move(flight->on_sent);
    flight->on_sent = nullptr;
    cb(OkStatus());
  });

  // The executor worker is held only for the dispatch handoff; serialization
  // runs on gRPC's own threads (the comm CPU).
  return src->cost().rpc_dispatch_overhead_ns;
}

void RpcMechanism::Deliver(const graph::TransferEdge& edge, Tensor tensor) {
  Mailbox& box = mailboxes_[edge.key];
  if (box.waiter) {
    auto waiter = std::move(box.waiter);
    box.waiter = nullptr;
    waiter(OkStatus(), std::move(tensor));
    return;
  }
  box.tensor = std::move(tensor);
  box.has_tensor = true;
}

void RpcMechanism::FailDeliver(const graph::TransferEdge& edge, const Status& status) {
  Mailbox& box = mailboxes_[edge.key];
  if (box.waiter) {
    auto waiter = std::move(box.waiter);
    box.waiter = nullptr;
    waiter(status, Tensor());
    return;
  }
  box.error = status;
}

void RpcMechanism::RecvAsync(const graph::TransferEdge& edge,
                             std::function<void(const Status&, Tensor)> done) {
  Mailbox& box = mailboxes_[edge.key];
  CHECK(!box.waiter) << "duplicate RecvAsync for edge " << edge.key;
  if (!box.error.ok()) {
    Status err = box.error;
    box.error = OkStatus();
    cluster_->simulator()->ScheduleAfter(0, [done = std::move(done), err]() {
      done(err, Tensor());
    });
    return;
  }
  if (box.has_tensor) {
    Tensor t = std::move(box.tensor);
    box.has_tensor = false;
    box.tensor = Tensor();
    cluster_->simulator()->ScheduleAfter(0, [done = std::move(done), t]() mutable {
      done(OkStatus(), std::move(t));
    });
    return;
  }
  box.waiter = std::move(done);
}

}  // namespace comm
}  // namespace rdmadl
