// Shared transfer engine: the fast path under both the zero-copy PS
// mechanism and the collectives (ISSUE 5).
//
// One engine per sending device, three optimizations, all measurable in
// virtual time:
//
//   * Multi-QP lane striping — a large one-sided write is split into
//     contiguous stripes posted across the device's QP lanes to one peer, so
//     the transfer is not serialized behind a single QP's WQE-engine ceiling
//     (cost.rdma_qp_engine_bytes_per_sec). The trailing flag byte is posted
//     only after every stripe's completion has been observed, which preserves
//     the §3.2 contract: a receiver that sees the flag set can trust the
//     payload. Stripes target disjoint remote ranges and the flag is ordered
//     behind their wire completions, so the path is clean under
//     check::RdmaCheck's remote-race and flag-trust detectors.
//
//   * Small-tensor coalescing — payload+flag pairs below a threshold bound
//     for the same peer are queued and flushed as one doorbell-chained WR
//     batch (QueuePair::PostSendBatch): the per-message CPU overhead of the
//     cost model is paid once per batch, which is where the paper's Fig. 8
//     small-message gap comes from. The batch interleaves [payload, flag,
//     payload, flag, ...]; the wire delivers the chain in posting order, so
//     each flag still lands after its payload.
//
//   * MR registration cache — an extent-based LRU cache (tensor::
//     ExtentLruCache) in front of verbs registration, so the §3.3 dynamic
//     protocol stops paying the per-page pinning cost on every step
//     (registration pressure, §3.4 / RDMAvisor). Eviction honors the NIC's
//     MR-count limit and never removes an extent used in the current epoch
//     (its pages may be the target of an in-flight remote read). Cached MRs
//     are deregistered at engine teardown, so they never surface as RdmaCheck
//     leaks.
//
// Determinism: lane fan-out, flush scheduling, and eviction-victim selection
// depend only on posting order and virtual time — never on pointer values or
// unordered-container iteration — so same-seed runs produce byte-identical
// traces with every path enabled.
#ifndef RDMADL_SRC_COMM_TRANSFER_ENGINE_H_
#define RDMADL_SRC_COMM_TRANSFER_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/device/rdma_device.h"
#include "src/tensor/extent_cache.h"
#include "src/util/endpoint.h"
#include "src/util/status.h"

namespace rdmadl {
namespace comm {

struct TransferEngineOptions {
  // Lane striping for large writes.
  bool enable_striping = true;
  // QP lanes to stripe across; 0 = all of the device's QPs per peer.
  int stripe_lanes = 0;
  // Writes of at least this many bytes are striped.
  uint64_t stripe_threshold_bytes = 4ull << 20;

  // Doorbell coalescing for small writes.
  bool enable_coalescing = true;
  // Writes of at most this many bytes are coalesced.
  uint64_t coalesce_threshold_bytes = 8192;
  // How long a queued write may wait for peers to join its batch. 0 flushes
  // at the end of the current instant (same virtual timestamp), adding no
  // latency but batching only tensors issued together; the default is under
  // one wire latency, so lone senders lose less than a flight time while
  // bursts of small tensors share one doorbell.
  int64_t coalesce_window_ns = 400;
  // Flush immediately once a batch holds this many tensors.
  int max_coalesce_batch = 16;

  // MR registration cache (used only via GetOrRegisterMr; callers opt in).
  int mr_cache_capacity = 64;
};

class TransferEngine {
 public:
  // One side of a write: a registered local range and its remote target.
  struct WriteDesc {
    void* local_addr = nullptr;
    uint32_t lkey = 0;
    uint64_t remote_addr = 0;
    uint32_t rkey = 0;
    uint64_t bytes = 0;
    bool copy_bytes = true;
  };

  // How WriteWithFlag routed a request (callers keep their own stats).
  enum class Route { kDirect, kStriped, kCoalesced };

  struct Stats {
    int64_t direct_writes = 0;
    int64_t striped_writes = 0;
    int64_t stripe_lane_writes = 0;  // Individual stripes posted.
    int64_t coalesced_writes = 0;
    int64_t coalesced_batches = 0;   // Doorbells rung for those writes.
    int64_t mr_cache_hits = 0;
    int64_t mr_cache_misses = 0;
    int64_t mr_cache_evictions = 0;
  };

  // Result of an MR-cache lookup/registration.
  struct MrHandle {
    uint32_t lkey = 0;
    uint32_t rkey = 0;
    // Pinning cost to charge to the caller's timeline (0 on a hit).
    int64_t register_ns = 0;
    bool hit = false;
    // Entries evicted to make room for this registration.
    int evictions = 0;
  };

  TransferEngine(device::RdmaDevice* device, const TransferEngineOptions& options);
  ~TransferEngine();

  TransferEngine(const TransferEngine&) = delete;
  TransferEngine& operator=(const TransferEngine&) = delete;

  // Posts |payload| followed by its trailing |flag| byte toward |remote|,
  // routing through the striped, coalesced, or direct path by size. The §3.2
  // contract is preserved on every route: the flag lands only after the whole
  // payload. |on_done| fires once, at the flag's completion or at the first
  // error. |lane_hint| selects the QP lane for un-striped traffic (callers
  // keep their existing lane discipline).
  Route WriteWithFlag(const Endpoint& remote, const WriteDesc& payload,
                      const WriteDesc& flag, int lane_hint, device::MemcpyCallback on_done);

  // Flushes every pending coalesced batch now (end of a step's issue phase).
  void FlushCoalesced();

  // Drops queued-but-unposted coalesced writes without invoking callbacks
  // (teardown/abort aid, mirroring RdmaDevice::DropPendingCallbacks).
  void ResetTransientState();

  // Advances the MR-cache epoch. Extents used in the current epoch are
  // pinned: they may be the target of in-flight remote reads, so eviction
  // only considers entries from earlier epochs.
  void BeginEpoch(int64_t epoch);

  // Looks up [addr, addr+bytes) in the registration cache, registering a
  // page-aligned extent on a miss (evicting LRU entries from earlier epochs
  // to respect capacity and the NIC MR limit). Fails with kResourceExhausted
  // when the NIC cannot hold another region; callers fall back to staging.
  StatusOr<MrHandle> GetOrRegisterMr(const void* addr, uint64_t bytes);

  const Stats& stats() const { return stats_; }
  device::RdmaDevice* device() const { return device_; }
  int mr_cache_size() const { return static_cast<int>(mr_cache_.size()); }

  // Multi-level engine routing: caps the stripe fan-out per destination.
  // With a hierarchical fabric, stripes toward a cross-rack peer all funnel
  // through the same oversubscribed rack uplink, so spreading them over many
  // QP lanes buys no bandwidth and only multiplies WQE-engine work; the
  // topology-aware collectives install a resolver that returns 1 for
  // cross-rack destinations and the full lane count within a rack. Returns
  // <= 0 to mean "no cap". Null (the default) leaves every route untouched.
  void set_lane_limit_resolver(std::function<int(const Endpoint&)> resolver) {
    lane_limit_resolver_ = std::move(resolver);
  }

 private:
  struct PendingWrite {
    WriteDesc payload;
    WriteDesc flag;
    device::MemcpyCallback on_done;
  };
  struct PeerQueue {
    std::vector<PendingWrite> pending;
    bool flush_scheduled = false;
  };
  struct CachedMr {
    rdma::MemoryRegion mr;
    int64_t epoch = 0;
  };

  // Resolves the channel for (remote, lane) via a cache guarded by the QP
  // pool's generation: any eviction anywhere invalidates it, so a stale
  // binding is never used after the pool reshuffled lanes. The first use per
  // generation goes through RdmaDevice::GetChannel, which acquires (or
  // reconnects) the pooled lane; cache hits skip the pool lookup and rely on
  // the channel's own lazy reattach if its specific lane was since evicted.
  StatusOr<device::RdmaChannel*> Channel(const Endpoint& remote, int lane);
  Route PostDirect(const Endpoint& remote, const WriteDesc& payload, const WriteDesc& flag,
                   int lane_hint, device::MemcpyCallback on_done);
  void PostStriped(const Endpoint& remote, const WriteDesc& payload, const WriteDesc& flag,
                   int lane_hint, device::MemcpyCallback on_done);
  void Flush(const Endpoint& remote, PeerQueue* queue);
  void FailAsync(device::MemcpyCallback on_done, Status status);
  int LaneCount() const;
  // LaneCount clamped by the lane-limit resolver for |remote| (never < 1).
  int LaneCountFor(const Endpoint& remote) const;

  device::RdmaDevice* device_;
  TransferEngineOptions options_;
  Stats stats_;
  std::map<Endpoint, PeerQueue> queues_;
  // Bumped by ResetTransientState to invalidate scheduled flushes.
  uint64_t generation_ = 0;
  // Round-robin lane for coalesced batches.
  int next_batch_lane_ = 0;
  // Lane-binding cache; valid only while the pool generation matches.
  std::map<std::pair<Endpoint, int>, device::RdmaChannel*> channel_cache_;
  uint64_t pool_generation_ = 0;

  tensor::ExtentLruCache<CachedMr> mr_cache_;
  int64_t epoch_ = 0;
  std::function<int(const Endpoint&)> lane_limit_resolver_;
};

}  // namespace comm
}  // namespace rdmadl

#endif  // RDMADL_SRC_COMM_TRANSFER_ENGINE_H_
